module skinnymine

go 1.24.0
