package skinnymine

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"skinnymine/internal/graph"
	"skinnymine/internal/testutil"
)

// randomPublicDB builds a random transaction database through the
// public text-format reader, so label interning matches what any user
// of ReadGraphs sees.
func randomPublicDB(t *testing.T, seed int64, n int) []*Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	raw := make([]*graph.Graph, n)
	for i := range raw {
		v := 10 + rng.Intn(8)
		raw[i] = testutil.RandomConnectedGraph(rng, v, v/2, 4)
	}
	var buf bytes.Buffer
	if err := graph.WriteText(&buf, raw...); err != nil {
		t.Fatal(err)
	}
	db, err := ReadGraphs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// patternsBytes serializes only the patterns section of a result: the
// comparison form for constrained runs, where the pattern set is
// byte-identical across execution plans but the pushdown_rejects
// counter legitimately depends on WHERE the pruning ran (inside the
// Stage I joins for request-private unsharded mining, at seed selection
// for shared indexes and the sharded engine — the same split PR 4's
// constrained refguard pins for direct vs indexed mining).
func patternsBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, p := range res.Patterns {
		j := p.ToJSON()
		buf.WriteString(p.String())
		for _, e := range j.Edges {
			fmt.Fprintf(&buf, " %v", e)
		}
		fmt.Fprintf(&buf, " %v %v\n", j.Labels, j.Backbone)
	}
	return buf.Bytes()
}

// TestShardedMineRefguard is the public-API sharding refguard: on
// randomized databases, Options.Shards ∈ {1, 3, 8} and the sharded
// index must serve byte-identical ResultJSON to unsharded mining, for
// every support measure and under a Where constraint (whose pattern set
// — though not its plan-dependent pushdown counter — must also match
// request-private unsharded mining).
func TestShardedMineRefguard(t *testing.T) {
	variants := []struct {
		name string
		opt  Options
	}{
		{"embeddings", Options{Support: 2, Length: 3, Delta: 1}},
		{"graphs", Options{Support: 2, Length: 3, Delta: 1, Measure: GraphCount}},
		{"band+where", Options{Support: 2, Length: 4, MinLength: 2, Delta: 1,
			Where: "!contains(label='0') && vertices<=9"}},
	}
	for trial := int64(0); trial < 2; trial++ {
		db := randomPublicDB(t, 40+trial, 7)
		for _, v := range variants {
			want, err := MineDB(db, v.opt)
			if err != nil {
				t.Fatalf("trial %d %s: unsharded: %v", trial, v.name, err)
			}
			wantPatterns := patternsBytes(t, want)
			wantBytes := resultBytes(t, want)
			flat, err := BuildIndex(db, v.opt.Support)
			if err != nil {
				t.Fatal(err)
			}
			wantIx, err := flat.Mine(v.opt)
			if err != nil {
				t.Fatalf("trial %d %s: unsharded index: %v", trial, v.name, err)
			}
			wantIxBytes := resultBytes(t, wantIx)
			for _, p := range []int{1, 3, 8} {
				opt := v.opt
				opt.Shards = p
				got, err := MineDB(db, opt)
				if err != nil {
					t.Fatalf("trial %d %s shards=%d: %v", trial, v.name, p, err)
				}
				if !bytes.Equal(patternsBytes(t, got), wantPatterns) {
					t.Errorf("trial %d %s shards=%d: sharded MineDB pattern set differs", trial, v.name, p)
				}
				if v.opt.Where == "" && !bytes.Equal(resultBytes(t, got), wantBytes) {
					t.Errorf("trial %d %s shards=%d: sharded MineDB output differs", trial, v.name, p)
				}

				// The sharded index shares the shared-index execution
				// plan exactly, so the FULL result — stats counters
				// included — must match the unsharded index's.
				ix, err := BuildShardedIndex(db, v.opt.Support, p)
				if err != nil {
					t.Fatalf("trial %d %s shards=%d: BuildShardedIndex: %v", trial, v.name, p, err)
				}
				got, err = ix.Mine(v.opt)
				if err != nil {
					t.Fatalf("trial %d %s shards=%d: index mine: %v", trial, v.name, p, err)
				}
				if !bytes.Equal(resultBytes(t, got), wantIxBytes) {
					t.Errorf("trial %d %s shards=%d: sharded index output differs from unsharded index", trial, v.name, p)
				}
			}
		}
	}
}

func TestOptionsShardsValidation(t *testing.T) {
	opt := Options{Support: 2, Length: 3, Delta: 1, Shards: -1}
	if err := opt.Validate(); !errors.Is(err, ErrShards) {
		t.Fatalf("Shards=-1: got %v, want ErrShards", err)
	}
	db := randomPublicDB(t, 1, 2)
	if _, err := MineDB(db, opt); !errors.Is(err, ErrShards) {
		t.Fatalf("MineDB Shards=-1: got %v, want ErrShards", err)
	}
	// More shards than graphs clamps rather than failing.
	clamped := Options{Support: 2, Length: 2, Delta: 1, Shards: 64}
	if _, err := MineDB(db, clamped); err != nil {
		t.Fatalf("Shards=64 over 2 graphs: %v", err)
	}
}

// TestShardedSnapshotRoundTrip pins the sharded snapshot contract:
// manifest + per-shard files restore an index serving byte-identical
// results, and Save∘Load∘Save reproduces every file byte for byte.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	db := randomPublicDB(t, 9, 6)
	ix, err := BuildShardedIndex(db, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", ix.Shards())
	}
	opt := Options{Support: 2, Length: 3, Delta: 1}
	want, err := ix.Mine(opt)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := resultBytes(t, want)

	dir := t.TempDir()
	path := filepath.Join(dir, "db.idx")
	if err := ix.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if got := shardFiles(t, dir); len(got) != 3 {
		t.Fatalf("expected 3 shard files, got %v", got)
	}

	ix2, err := LoadIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Shards() != 3 || ix2.Sigma() != 2 || ix2.NumGraphs() != 6 {
		t.Fatalf("restored index: shards=%d sigma=%d graphs=%d", ix2.Shards(), ix2.Sigma(), ix2.NumGraphs())
	}
	got, err := ix2.Mine(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultBytes(t, got), wantBytes) {
		t.Error("restored sharded index serves a different result")
	}

	// Save∘Load∘Save: identical content yields identical
	// (content-addressed) file names and identical bytes, manifest
	// included.
	dir2 := t.TempDir()
	path2 := filepath.Join(dir2, "db.idx")
	if err := ix2.WriteSnapshotFile(path2); err != nil {
		t.Fatal(err)
	}
	names2 := append(shardFiles(t, dir2), "db.idx")
	if names1 := append(shardFiles(t, dir), "db.idx"); fmt.Sprint(names1) != fmt.Sprint(names2) {
		t.Fatalf("Save∘Load∘Save changed file names: %v vs %v", names1, names2)
	}
	for _, name := range names2 {
		a, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir2, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("Save∘Load∘Save changed %s", name)
		}
	}

	// Overwriting with a DIFFERENT generation (more materialized
	// levels) swaps manifest and shard files atomically — the old
	// generation's files are swept, the path keeps loading, and the
	// sweep never touches names that merely extend the prefix.
	stray := filepath.Join(dir2, "db.idx.shard_notes.txt")
	sibling := filepath.Join(dir2, "db.idx.sharded.shard0-01234567")
	for _, f := range []string{stray, sibling} {
		if err := os.WriteFile(f, []byte("keep me"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ix2.Mine(Options{Support: 2, Length: 5, Delta: 1}); err != nil {
		t.Fatal(err)
	}
	if err := ix2.WriteSnapshotFile(path2); err != nil {
		t.Fatal(err)
	}
	after := shardFiles(t, dir2)
	if len(after) != 3 {
		t.Fatalf("stale shard generations not swept: %v", after)
	}
	if fmt.Sprint(after) == fmt.Sprint(shardFiles(t, dir)) {
		t.Fatal("new generation reused the old generation's file names")
	}
	for _, f := range []string{stray, sibling} {
		if _, err := os.Stat(f); err != nil {
			t.Errorf("generation sweep removed unrelated file %s: %v", filepath.Base(f), err)
		}
	}
	ix4, err := LoadIndexFile(path2)
	if err != nil {
		t.Fatalf("re-saved snapshot does not load: %v", err)
	}
	got, err = ix4.Mine(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultBytes(t, got), wantBytes) {
		t.Error("re-saved snapshot serves a different result")
	}

	// An unsharded snapshot still loads through LoadIndexFile.
	flat, err := BuildIndex(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flat.Mine(opt); err != nil {
		t.Fatal(err)
	}
	flatPath := filepath.Join(dir, "flat.idx")
	if err := flat.WriteSnapshotFile(flatPath); err != nil {
		t.Fatal(err)
	}
	ix3, err := LoadIndexFile(flatPath)
	if err != nil {
		t.Fatal(err)
	}
	if ix3.Shards() != 1 {
		t.Fatalf("unsharded snapshot loaded with Shards() = %d", ix3.Shards())
	}
	got, err = ix3.Mine(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultBytes(t, got), wantBytes) {
		t.Error("unsharded snapshot serves a different result from the sharded one")
	}

	if err := ix.WriteSnapshot(&bytes.Buffer{}); err == nil {
		t.Error("WriteSnapshot on a sharded index should refuse a single stream")
	}

	// Overwriting the sharded path with an UNSHARDED snapshot sweeps
	// the orphaned shard files — nothing may suggest the path is still
	// sharded.
	if err := flat.WriteSnapshotFile(path2); err != nil {
		t.Fatal(err)
	}
	if left := shardFiles(t, dir2); len(left) != 0 {
		t.Errorf("unsharded overwrite left orphaned shard files: %v", left)
	}
	ix5, err := LoadIndexFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if ix5.Shards() != 1 {
		t.Errorf("unsharded overwrite loads with Shards() = %d", ix5.Shards())
	}
}

// writeSnapshotFixture saves a mined sharded snapshot into dir and
// returns the manifest path.
func writeSnapshotFixture(t *testing.T, dir string) string {
	t.Helper()
	db := randomPublicDB(t, 13, 5)
	ix, err := BuildShardedIndex(db, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Mine(Options{Support: 2, Length: 3, Delta: 1}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "db.idx")
	if err := ix.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestShardedSnapshotCorruption: every truncation and every single-byte
// flip of the manifest must be rejected, as must tampered, missing,
// or mismatched shard files.
func TestShardedSnapshotCorruption(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshotFixture(t, dir)
	manifest, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mutate func(work string) error) {
		t.Helper()
		work := t.TempDir()
		for _, e := range mustReadDir(t, dir) {
			copyFile(t, filepath.Join(dir, e), filepath.Join(work, e))
		}
		if err := mutate(work); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadIndexFile(filepath.Join(work, "db.idx")); err == nil {
			t.Errorf("%s: corrupted snapshot loaded without error", name)
		}
	}

	// Manifest truncation at every length.
	for cut := 0; cut < len(manifest); cut++ {
		cut := cut
		check("manifest truncated", func(work string) error {
			return os.WriteFile(filepath.Join(work, "db.idx"), manifest[:cut], 0o644)
		})
	}
	// Every single-byte manifest flip.
	for i := range manifest {
		i := i
		check("manifest byte flip", func(work string) error {
			bad := append([]byte(nil), manifest...)
			bad[i] ^= 0x40
			return os.WriteFile(filepath.Join(work, "db.idx"), bad, 0o644)
		})
	}
	// Shard file flips (spot-checked across the file).
	shards := shardFiles(t, dir)
	shard0, err := os.ReadFile(filepath.Join(dir, shards[0]))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(shard0); i += 37 {
		i := i
		check("shard byte flip", func(work string) error {
			bad := append([]byte(nil), shard0...)
			bad[i] ^= 0x40
			return os.WriteFile(filepath.Join(work, shards[0]), bad, 0o644)
		})
	}
	// Shard-count mismatch: a referenced shard file is gone.
	check("missing shard file", func(work string) error {
		return os.Remove(filepath.Join(work, shards[2]))
	})
	// Truncated shard file (size mismatch against the manifest).
	check("truncated shard file", func(work string) error {
		return os.WriteFile(filepath.Join(work, shards[1]),
			shard0[:len(shard0)/2], 0o644)
	})
	// A different generation's content under a referenced name.
	check("mixed-generation shard file", func(work string) error {
		other := t.TempDir()
		otherPath := writeSnapshotFixtureSeed(t, other, 99)
		otherShards := shardFiles(t, filepath.Dir(otherPath))
		return copyFileErr(filepath.Join(filepath.Dir(otherPath), otherShards[0]),
			filepath.Join(work, shards[0]))
	})
}

// shardFiles lists dir's files matching the generated shard-file shape
// for base "db.idx", sorted.
func shardFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if isShardFileName("db.idx", e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// writeSnapshotFixtureSeed is writeSnapshotFixture with a custom DB
// seed, for building a second, different snapshot generation.
func writeSnapshotFixtureSeed(t *testing.T, dir string, seed int64) string {
	t.Helper()
	db := randomPublicDB(t, seed, 5)
	ix, err := BuildShardedIndex(db, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Mine(Options{Support: 2, Length: 3, Delta: 1}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "db.idx")
	if err := ix.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func mustReadDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	if err := copyFileErr(src, dst); err != nil {
		t.Fatal(err)
	}
}

func copyFileErr(src, dst string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, data, 0o644)
}
