// DBLP: mine temporal collaboration patterns from author publication
// timelines — the paper's DBLP case study (Figures 21-22).
//
// Each graph is one author's career: a chain of year nodes, each year
// linked to nodes describing that year's collaborations ("P1" = one or
// two prolific co-authors, "S2" = three or four senior co-authors, and
// so on: category P/S/J/B x strength level 1-3). Frequent long skinny
// patterns across authors are shared career trajectories.
//
// Run: go run ./examples/dblp
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"skinnymine"
)

const (
	authors = 80
	years   = 15
)

func main() {
	rng := rand.New(rand.NewSource(3))
	corpus := skinnymine.NewCorpus()

	var db []*skinnymine.Graph
	for a := 0; a < authors; a++ {
		g := corpus.NewGraph()
		// Timeline backbone.
		var yearNodes []skinnymine.VertexID
		for y := 0; y < years; y++ {
			v := g.AddVertex("year")
			yearNodes = append(yearNodes, v)
			if y > 0 {
				must(g.AddEdge(yearNodes[y-1], v))
			}
		}
		switch {
		case a%4 == 0:
			// Archetype of Figure 21: collaborators grow more prolific
			// along the career (B -> J -> S -> P).
			for y, cat := range careerPhases(years, []string{"B1", "J1", "S2", "P3"}) {
				attach(g, yearNodes[y], cat)
			}
		case a%4 == 1:
			// Archetype of Figure 22: senior collaborators from the
			// start.
			for y := 0; y < years; y++ {
				cat := "S1"
				if y%3 == 0 {
					cat = "P1"
				}
				attach(g, yearNodes[y], cat)
			}
		default:
			// Background careers: random collaborations.
			for y := 0; y < years; y++ {
				for c := 0; c < rng.Intn(3); c++ {
					cat := fmt.Sprintf("%c%d", "PSJB"[rng.Intn(4)], 1+rng.Intn(3))
					attach(g, yearNodes[y], cat)
				}
			}
		}
		db = append(db, g)
	}

	res, err := skinnymine.MineDB(db, skinnymine.Options{
		Support:     2,
		Length:      years - 1, // patterns spanning the whole timeline
		Delta:       1,         // collaboration nodes hang one hop off
		Measure:     skinnymine.GraphCount,
		MaximalOnly: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d authors, %d temporal patterns spanning %d years\n\n",
		authors, len(res.Patterns), years)

	// Render the two largest patterns as year-by-year collaboration
	// timelines, the analogue of Figures 21 and 22.
	for i, p := range largestTwo(res.Patterns) {
		fmt.Printf("pattern %d (support %d): %d collaborations across the span\n",
			i+1, p.Support(), p.Vertices()-p.DiameterLength()-1)
		fmt.Printf("  %s\n\n", renderTimeline(p))
	}
}

// careerPhases spreads the phase labels across the years.
func careerPhases(years int, phases []string) []string {
	out := make([]string, years)
	for y := 0; y < years; y++ {
		out[y] = phases[y*len(phases)/years]
	}
	return out
}

func attach(g *skinnymine.Graph, year skinnymine.VertexID, label string) {
	v := g.AddVertex(label)
	if err := g.AddEdge(year, v); err != nil {
		log.Fatal(err)
	}
}

func largestTwo(ps []*skinnymine.Pattern) []*skinnymine.Pattern {
	var out []*skinnymine.Pattern
	for _, p := range ps {
		out = append(out, p)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].Vertices() > out[i].Vertices() {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	if len(out) > 2 {
		out = out[:2]
	}
	return out
}

// renderTimeline prints year slots with attached collaboration labels.
func renderTimeline(p *skinnymine.Pattern) string {
	l := p.DiameterLength()
	slots := make([][]string, l+1)
	onBackbone := func(v skinnymine.VertexID) bool { return int(v) <= l }
	for _, e := range p.EdgeList() {
		u, w := e[0], e[1]
		switch {
		case onBackbone(u) && !onBackbone(w):
			slots[u] = append(slots[u], p.VertexLabel(w))
		case onBackbone(w) && !onBackbone(u):
			slots[w] = append(slots[w], p.VertexLabel(u))
		}
	}
	var b strings.Builder
	for y, s := range slots {
		if y > 0 {
			b.WriteString("-")
		}
		if len(s) == 0 {
			b.WriteString("·")
		} else {
			b.WriteString("[" + strings.Join(s, ",") + "]")
		}
	}
	return b.String()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
