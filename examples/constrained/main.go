// Constrained mining: declare what you want, let the miner prune.
//
// The same toy city as examples/quickstart — two neighborhoods sharing
// a popular walking route with side attractions — but this time the
// question is narrower: routes that pass a bakery, never touch the
// warehouse district, and stay small. Instead of mining everything and
// filtering, the constraint is handed to the miner (Options.Where);
// its anti-monotone parts (the forbidden label, the size cap) prune
// inside both mining stages, the rest is checked at output, and the
// topk clause ranks what is left. The result is byte-identical to
// post-filtering the full result — just cheaper (compare the
// pushdown_rejects and extensions_tried stats between the two runs).
//
// Run: go run ./examples/constrained
package main

import (
	"fmt"
	"log"
	"strings"

	"skinnymine"
)

func main() {
	g := skinnymine.NewGraph()

	route := []string{"station", "cafe", "park", "museum", "theater", "plaza"}
	attractions := map[int]string{1: "bakery", 3: "gallery"}

	for copyi := 0; copyi < 2; copyi++ {
		var stops []skinnymine.VertexID
		for i, label := range route {
			v := g.AddVertex(label)
			stops = append(stops, v)
			if i > 0 {
				must(g.AddEdge(stops[i-1], v))
			}
		}
		for at, label := range attractions {
			a := g.AddVertex(label)
			must(g.AddEdge(stops[at], a))
		}
		// A warehouse hangs off each copy of the route: frequent, so
		// unconstrained mining happily reports patterns through it.
		w := g.AddVertex("warehouse")
		must(g.AddEdge(stops[4], w))
	}

	where := "contains(label='bakery') && !contains(label='warehouse') && vertices<=8 && topk(3, by=size)"
	base := skinnymine.Options{Support: 2, Length: 5, Delta: 1}

	// One unconstrained run, for comparison.
	all, err := skinnymine.Mine(g, base)
	if err != nil {
		log.Fatal(err)
	}

	// The constrained run: same options plus the Where clause.
	opt := base
	opt.Where = where
	res, err := skinnymine.Mine(g, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())
	fmt.Printf("unconstrained: %d patterns, %d extensions tried\n",
		len(all.Patterns), all.Stats.ExtensionsTried)
	fmt.Printf("constrained:   %d patterns, %d extensions tried, %d candidates pruned\n\n",
		len(res.Patterns), res.Stats.ExtensionsTried, res.Stats.PushdownRejects)

	fmt.Println("where:", where)
	for i, p := range res.Patterns {
		labels := make([]string, p.Vertices())
		for v := range labels {
			labels[v] = p.VertexLabel(skinnymine.VertexID(v))
		}
		fmt.Printf("%d. sup=%d |V|=%d |E|=%d backbone=%s vertices=[%s]\n",
			i+1, p.Support(), p.Vertices(), p.Edges(),
			strings.Join(p.Backbone(), "→"), strings.Join(labels, " "))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
