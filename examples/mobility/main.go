// Mobility: mine popular travel routes from location-based check-in
// trajectories — the paper's first motivating application.
//
// We synthesize a road network of point-of-interest vertices (labeled
// by venue category) and overlay user trajectories. A commuter corridor
// (home → transit → office, with coffee and gym stops) recurs across
// the city; SkinnyMine recovers it as an l-long δ-skinny pattern whose
// backbone is the corridor and whose twigs are the associated venues.
//
// Run: go run ./examples/mobility
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"skinnymine"
)

const (
	corridorLen = 8 // hops in the commuter corridor
	copies      = 3 // neighborhoods sharing the corridor shape
)

func main() {
	rng := rand.New(rand.NewSource(42))
	g := skinnymine.NewGraph()

	// Random street grid with generic venues.
	categories := []string{"shop", "bar", "bank", "school", "kiosk", "garage"}
	var grid []skinnymine.VertexID
	for i := 0; i < 120; i++ {
		grid = append(grid, g.AddVertex(categories[rng.Intn(len(categories))]))
	}
	for i := 1; i < len(grid); i++ {
		must(g.AddEdge(grid[rng.Intn(i)], grid[i]))
	}

	// The commuter corridor, recurring in several neighborhoods:
	// home - busstop - station - plaza - station2 - mall - busstop2 - office - park
	corridor := []string{"home", "busstop", "station", "plaza", "station", "mall", "busstop", "office", "park"}
	sideStops := map[int]string{2: "coffee", 5: "gym", 7: "lunch"}
	for c := 0; c < copies; c++ {
		var stops []skinnymine.VertexID
		for i, label := range corridor {
			v := g.AddVertex(label)
			stops = append(stops, v)
			if i > 0 {
				must(g.AddEdge(stops[i-1], v))
			}
		}
		for at, label := range sideStops {
			s := g.AddVertex(label)
			must(g.AddEdge(stops[at], s))
		}
		// Tie the corridor loosely into the grid.
		must(g.AddEdge(stops[0], grid[rng.Intn(len(grid))]))
	}

	fmt.Printf("city graph: %d venues, %d street segments\n", g.N(), g.M())

	// Direct mining deployment: one index, several constraint requests.
	ix, err := skinnymine.BuildIndex([]*skinnymine.Graph{g}, copies)
	if err != nil {
		log.Fatal(err)
	}
	for _, req := range []struct{ l, delta int }{
		{corridorLen, 0}, // just the corridors
		{corridorLen, 1}, // corridors with adjacent venues
	} {
		res, err := ix.Mine(skinnymine.Options{
			Support: copies, Length: req.l, Delta: req.delta, MaximalOnly: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nrequest l=%d δ=%d: %d maximal patterns\n", req.l, req.delta, len(res.Patterns))
		for _, p := range res.Patterns {
			if p.Vertices() < corridorLen {
				continue
			}
			fmt.Printf("  route (support %d): %s\n", p.Support(),
				strings.Join(p.Backbone(), " → "))
			if req.delta > 0 {
				fmt.Printf("    with %d associated venues within %d hop(s)\n",
					p.Vertices()-p.DiameterLength()-1, p.Skinniness())
			}
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
