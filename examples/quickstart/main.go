// Quickstart: mine l-long δ-skinny patterns from a toy city graph.
//
// Two neighborhoods share the same popular walking route
// (station → cafe → park → museum → theater → plaza) with side
// attractions hanging off it. SkinnyMine recovers the route (the
// pattern backbone) together with the attractions (the twigs).
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"skinnymine"
)

func main() {
	g := skinnymine.NewGraph()

	route := []string{"station", "cafe", "park", "museum", "theater", "plaza"}
	attractions := map[int]string{1: "bakery", 3: "gallery"}

	// Two copies of the route, each with its side attractions.
	for copyi := 0; copyi < 2; copyi++ {
		var stops []skinnymine.VertexID
		for i, label := range route {
			v := g.AddVertex(label)
			stops = append(stops, v)
			if i > 0 {
				must(g.AddEdge(stops[i-1], v))
			}
		}
		for at, label := range attractions {
			a := g.AddVertex(label)
			must(g.AddEdge(stops[at], a))
		}
	}
	// Some unrelated streets.
	x := g.AddVertex("warehouse")
	y := g.AddVertex("depot")
	must(g.AddEdge(x, y))

	res, err := skinnymine.Mine(g, skinnymine.Options{
		Support: 2, // appear at least twice
		Length:  5, // backbone of five hops
		Delta:   1, // attractions at most one hop off the route
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())
	fmt.Printf("found %d frequent 5-long 1-skinny patterns\n\n", len(res.Patterns))
	var largest *skinnymine.Pattern
	for _, p := range res.Patterns {
		if largest == nil || p.Vertices() > largest.Vertices() {
			largest = p
		}
	}
	fmt.Println("largest pattern:", largest)
	fmt.Println("backbone:       ", strings.Join(largest.Backbone(), " → "))
	fmt.Println("edges:          ", largest.EdgeList())
	fmt.Printf("\nstage timings: DiamMine=%v LevelGrow=%v\n",
		res.Stats.DiamMineTime, res.Stats.LevelGrowTime)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
