// Diffusion: mine information-diffusion patterns from microblog
// retweet conversations — the paper's second motivating application
// and its Sina Weibo case study (Figures 23-24).
//
// Each conversation is one graph: the original tweet's author is the
// root; every retweet or comment adds an edge from the acting user to
// the target user. Users carry one of four labels (root, follower,
// followee, other). Long skinny patterns across conversations are
// recurring diffusion chains; a root label reappearing mid-chain is
// the author re-engaging to promote the tweet.
//
// Run: go run ./examples/diffusion
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"skinnymine"
)

const (
	conversations = 60
	chainLength   = 10
)

func main() {
	rng := rand.New(rand.NewSource(7))
	corpus := skinnymine.NewCorpus()

	var db []*skinnymine.Graph
	for c := 0; c < conversations; c++ {
		g := corpus.NewGraph()
		root := g.AddVertex("root")
		// Random retweet tree.
		size := 8 + rng.Intn(25)
		users := []skinnymine.VertexID{root}
		for i := 1; i < size; i++ {
			label := "other"
			switch r := rng.Float64(); {
			case r < 0.4:
				label = "follower"
			case r < 0.5:
				label = "followee"
			}
			v := g.AddVertex(label)
			must(g.AddEdge(users[rng.Intn((len(users)*3)/4+1)], v))
			users = append(users, v)
		}
		// A fifth of the conversations carry the planted diffusion
		// chain: followers passing the tweet on, the root re-engaging
		// every fourth hop.
		if c%5 == 0 {
			prev := root
			for hop := 1; hop <= chainLength; hop++ {
				label := "follower"
				if hop%4 == 0 {
					label = "root"
				}
				v := g.AddVertex(label)
				must(g.AddEdge(prev, v))
				if label == "root" {
					for t := 0; t < 2; t++ {
						aud := g.AddVertex("follower")
						must(g.AddEdge(v, aud))
					}
				}
				prev = v
			}
		}
		db = append(db, g)
	}

	res, err := skinnymine.MineDB(db, skinnymine.Options{
		Support:     2,           // appear in at least two conversations
		Length:      chainLength, // diffusion chains of ten hops
		Delta:       2,           // audience twigs near the chain
		Measure:     skinnymine.GraphCount,
		MaximalOnly: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d conversations, %d frequent %d-hop diffusion patterns\n\n",
		conversations, len(res.Patterns), chainLength)
	shown := 0
	for _, p := range res.Patterns {
		chain := p.Backbone()
		if !contains(chain, "root") {
			continue // show the re-engagement chains, like Figure 24
		}
		fmt.Printf("diffusion chain (support %d, δ=%d):\n  %s\n",
			p.Support(), p.Skinniness(), strings.Join(chain, " → "))
		fmt.Printf("  %d audience members hang off the chain\n\n",
			p.Vertices()-p.DiameterLength()-1)
		shown++
		if shown == 3 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("no root re-engagement chain found (try another seed)")
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs[1:] { // skip the chain head, which is often root
		if x == want {
			return true
		}
	}
	return false
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
