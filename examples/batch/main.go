// Sharded mining + batch serving, end to end: shard a skewed synthetic
// transaction database, persist the sharded snapshot (manifest plus
// per-shard files), restore it, and fire a mixed batch — constrained
// and unconstrained requests, duplicates included — at the serving
// layer, asserting the batch accounting: duplicates collapse before
// any mining happens, and a repeated batch is answered entirely from
// the result cache.
//
// Run: go run ./examples/batch
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"

	"skinnymine"
	"skinnymine/internal/graph"
	"skinnymine/internal/server"
	"skinnymine/internal/synth"
)

func main() {
	// A transaction database of skewed graphs: Zipf background labels
	// plus planted rare-label skinny motifs (synth.Skew), written
	// through the text format so labels intern exactly as any user
	// database would.
	rng := rand.New(rand.NewSource(42))
	var buf bytes.Buffer
	for i := 0; i < 6; i++ {
		g := synth.Skew(rng, synth.SkewOptions{N: 120, Motifs: 2})
		if err := graph.WriteText(&buf, g); err != nil {
			log.Fatal(err)
		}
	}
	db, err := skinnymine.ReadGraphs(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// Shard it three ways. Stage I runs shard-parallel with an exact
	// cross-shard support merge; results are byte-identical to
	// unsharded mining.
	ix, err := skinnymine.BuildShardedIndex(db, 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sharded index: %d graphs, σ=%d, %d shards\n",
		ix.NumGraphs(), ix.Sigma(), ix.Shards())

	// Warm one length, persist the sharded snapshot, and restore it —
	// the daemon's `-index` path does exactly this.
	if _, err := ix.Mine(skinnymine.Options{Support: 2, Length: 4, Delta: 1}); err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "skinnymine-batch-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "skew.idx")
	if err := ix.WriteSnapshotFile(path); err != nil {
		log.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	fmt.Printf("snapshot files:")
	for _, e := range entries {
		fmt.Printf(" %s", e.Name())
	}
	fmt.Println()
	restored, err := skinnymine.LoadIndexFile(path)
	if err != nil {
		log.Fatal(err)
	}

	// Serve the restored index and fire a mixed batch: an unconstrained
	// request three times over, a constrained request twice (once with
	// frivolous whitespace — canonicalization still dedups it), and one
	// invalid entry that must fail inline without voiding the rest.
	srv, err := server.New(server.Config{Index: restored})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	batch := `{"requests":[
		{"length":4,"delta":1},
		{"length":4,"delta":1},
		{"length":4,"delta":1},
		{"length":4,"delta":1,"where":"contains(label='8') && vertices<=12"},
		{"length":4,"delta":1,"where":"contains(label='8')   &&   vertices<=12"},
		{"length":0,"delta":1}]}`

	first := postBatch(ts.URL, batch)
	fmt.Printf("first batch:  items=%d unique=%d cache_hits=%d sources=%v\n",
		first.Items, first.Unique, first.CacheHits, sources(first))
	assertf(first.Items == 6, "expected 6 items, got %d", first.Items)
	assertf(first.Unique == 2, "expected 2 unique requests after dedup, got %d", first.Unique)
	assertf(first.CacheHits == 0, "expected a cold cache, got %d hits", first.CacheHits)
	assertf(first.Results[5].Status == http.StatusBadRequest,
		"invalid entry should fail inline, got status %d", first.Results[5].Status)
	assertf(first.Results[4].Source == "duplicate",
		"whitespace variant should dedup, got %q", first.Results[4].Source)

	// The identical batch again: every unique request is now a cache
	// hit — zero additional mining.
	second := postBatch(ts.URL, batch)
	fmt.Printf("second batch: items=%d unique=%d cache_hits=%d sources=%v\n",
		second.Items, second.Unique, second.CacheHits, sources(second))
	assertf(second.CacheHits == 2, "expected 2 cache hits on repeat, got %d", second.CacheHits)

	// The /metrics ledger agrees: two mining runs total for 12 batched
	// request entries.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var m server.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metrics: batch items=%d unique=%d deduped=%d, mine runs=%d\n",
		m.Batch.Items, m.Batch.Unique, m.Batch.Deduped, m.Mine.Runs)
	assertf(m.Mine.Runs == 2, "expected exactly 2 mining runs, got %d", m.Mine.Runs)

	fmt.Println("ok: duplicates deduped, repeats cached, one bad entry contained")
}

func postBatch(url, body string) server.BatchResponse {
	resp, err := http.Post(url+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var br server.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		log.Fatal(err)
	}
	return br
}

func sources(br server.BatchResponse) []string {
	out := make([]string, len(br.Results))
	for i, r := range br.Results {
		if r.Source == "" {
			out[i] = fmt.Sprintf("error(%d)", r.Status)
			continue
		}
		out[i] = r.Source
	}
	return out
}

func assertf(ok bool, format string, args ...any) {
	if !ok {
		log.Fatalf("FAIL: "+format, args...)
	}
}
