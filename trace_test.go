package skinnymine

import (
	"bytes"
	"testing"
)

// TestTraceDoesNotChangeResults is the observability invariant's
// pinning test: attaching a Trace to a request changes what is visible
// about the run, never the mined bytes — at every shard count.
func TestTraceDoesNotChangeResults(t *testing.T) {
	db := randomPublicDB(t, 91, 7)
	opt := Options{Support: 2, Length: 3, Delta: 1}
	for _, p := range []int{1, 3, 8} {
		plain := opt
		plain.Shards = p
		want, err := MineDB(db, plain)
		if err != nil {
			t.Fatalf("shards=%d untraced: %v", p, err)
		}
		traced := plain
		traced.Trace = NewTrace()
		got, err := MineDB(db, traced)
		if err != nil {
			t.Fatalf("shards=%d traced: %v", p, err)
		}
		if !bytes.Equal(resultBytes(t, got), resultBytes(t, want)) {
			t.Errorf("shards=%d: traced result differs from untraced", p)
		}
		if len(traced.Trace.Spans()) == 0 {
			t.Errorf("shards=%d: traced run recorded no spans", p)
		}
	}
}

// TestTraceRecordsStages: a traced request records both mining stages,
// and a sharded one additionally records per-level shard work.
func TestTraceRecordsStages(t *testing.T) {
	db := randomPublicDB(t, 92, 6)
	tr := NewTrace()
	if _, err := MineDB(db, Options{Support: 2, Length: 3, Delta: 1, Shards: 3, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, s := range tr.Spans() {
		names[s.Name]++
	}
	for _, want := range []string{"stage1", "stage2", "stage1.shard.edges", "stage1.shard.recount"} {
		if names[want] == 0 {
			t.Errorf("no %q span recorded; got %v", want, names)
		}
	}
	// Span attributes carry the per-level candidate counts.
	for _, s := range tr.Spans() {
		if s.Name == "stage1.shard.edges" {
			if _, ok := s.Attrs["candidates"]; !ok {
				t.Errorf("stage1.shard.edges span lacks a candidates attr: %v", s.Attrs)
			}
		}
	}
}

// TestTraceSpansNest: the stage spans cover the run — each span's
// start offset and duration are non-negative, and stage1 completes
// before stage2 ends (Stage II consumes Stage I's seeds).
func TestTraceSpansNest(t *testing.T) {
	db := randomPublicDB(t, 93, 5)
	tr := NewTrace()
	if _, err := MineDB(db, Options{Support: 2, Length: 3, Delta: 1, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	var stage1End, stage2End int64 = -1, -1
	for _, s := range tr.Spans() {
		if s.StartUs < 0 || s.DurationUs < 0 {
			t.Errorf("span %s has negative timing: start=%d dur=%d", s.Name, s.StartUs, s.DurationUs)
		}
		switch s.Name {
		case "stage1":
			stage1End = s.StartUs + s.DurationUs
		case "stage2":
			stage2End = s.StartUs + s.DurationUs
		}
	}
	if stage1End < 0 || stage2End < 0 {
		t.Fatalf("missing stage spans (stage1End=%d stage2End=%d)", stage1End, stage2End)
	}
	if stage2End < stage1End {
		t.Errorf("stage2 ended (%dus) before stage1 (%dus)", stage2End, stage1End)
	}
}
