// Package skinnymine is a Go implementation of SkinnyMine, the direct
// mining algorithm for constrained graph pattern discovery of
//
//	Feida Zhu, Zequn Zhang, Qiang Qu.
//	"A Direct Mining Approach To Efficient Constrained Graph Pattern
//	Discovery." SIGMOD 2013.
//
// Given a vertex-labeled graph (or a database of graphs), a frequency
// threshold σ, a diameter length l and a skinniness bound δ, SkinnyMine
// finds the frequent l-long δ-skinny subgraph patterns: patterns whose
// canonical diameter — the lexicographically smallest path realizing
// the diameter — has length l, with every vertex within distance δ of
// it. Mining is direct: stage I pre-computes the minimal
// constraint-satisfying patterns (frequent l-paths, mined by doubling
// and merging), stage II grows them while preserving the canonical
// diameter through three locally-checked constraints.
//
// # Quick start
//
//	g := skinnymine.NewGraph()
//	a := g.AddVertex("station")
//	b := g.AddVertex("cafe")
//	_ = g.AddEdge(a, b)
//	// ... build the rest of the graph ...
//	res, err := skinnymine.Mine(g, skinnymine.Options{
//		Support: 2, Length: 6, Delta: 2,
//	})
//
// The package also ships an indexable form for the paper's direct
// mining deployment — pre-compute once, serve many (l, δ) requests:
//
//	ix, _ := skinnymine.BuildIndex([]*skinnymine.Graph{g}, 2)
//	res1, _ := ix.Mine(skinnymine.Options{Support: 2, Length: 10, Delta: 2})
//	res2, _ := ix.Mine(skinnymine.Options{Support: 2, Length: 12, Delta: 3})
//
// # Snapshots and serving
//
// An Index persists to a versioned binary snapshot and restores without
// repaying Stage I, so a serving process can pre-compute once and answer
// requests immediately after every restart:
//
//	var buf bytes.Buffer
//	_ = ix.WriteSnapshot(&buf)               // or a file
//	ix2, _ := skinnymine.LoadIndex(&buf)     // byte-identical mining results
//
// The cmd/skinnymined daemon serves a snapshot (or builds an index from
// a graph file) over HTTP — POST /v1/mine takes the Options fields as
// JSON and returns ResultJSON — with an LRU result cache, singleflight
// request coalescing and a bounded-concurrency admission gate
// (internal/server). cmd/skinnymine -snapshot emits snapshots from the
// command line.
//
// # Concurrency and determinism
//
// Mining is parallel by default: Options.Concurrency bounds a worker
// pool used by both stages (Stage I fans the path doubling/merging
// bucket joins, Stage II grows different canonical diameters
// concurrently against a shared, striped dedup set). 0 means one worker
// per available CPU; 1 reproduces the sequential path exactly. The
// result is deterministic: the pattern set, each pattern's support, and the
// output order — sorted by (diameter length, canonical DFS code) — are
// byte-identical for every Concurrency setting and scheduling. The one
// exception is MaxPatterns > 0 under Concurrency > 1, where which
// patterns win the budget race may vary (the count still honors the
// cap). Stats timings and search counters may also differ negligibly
// across runs. The guarantee rests on the exactness of the paper's
// constraint checks (Theorems 1–3); output validation (on by default)
// backstops any over-acceptance.
//
// Baseline miners from the paper's evaluation (gSpan, MoSS, SpiderMine,
// SUBDUE, SEuS, ORIGAMI), synthetic workload generators and the full
// experiment harness live under internal/ and are exercised by
// cmd/experiments and the benchmarks in bench_test.go.
package skinnymine

import (
	"fmt"
	"io"
	"strconv"

	"skinnymine/internal/core"
	"skinnymine/internal/graph"
	"skinnymine/internal/support"
)

// Graph is a vertex-labeled undirected simple graph with string labels.
type Graph struct {
	g  *graph.Graph
	lt *graph.LabelTable
}

// VertexID identifies a vertex within a Graph.
type VertexID = graph.V

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{g: graph.New(16), lt: graph.NewLabelTable()}
}

// AddVertex appends a vertex with the given label and returns its ID.
// Labels compare lexicographically by first-intern order; intern labels
// in sorted order if the paper's exact lexicographic tie-breaks matter.
func (g *Graph) AddVertex(label string) VertexID {
	return g.g.AddVertex(g.lt.Intern(label))
}

// AddEdge inserts an undirected edge; self-loops, duplicates and
// out-of-range endpoints are rejected.
func (g *Graph) AddEdge(u, w VertexID) error { return g.g.AddEdge(u, w) }

// N returns the number of vertices; M the number of edges.
func (g *Graph) N() int { return g.g.N() }

// M returns the number of edges.
func (g *Graph) M() int { return g.g.M() }

// Label returns the label of vertex v.
func (g *Graph) Label(v VertexID) string { return g.lt.Name(g.g.Label(v)) }

// Write serializes the graph in the repository's text format.
func (g *Graph) Write(w io.Writer) error { return graph.WriteText(w, g.g) }

// SupportMeasure selects how pattern frequency is counted.
type SupportMeasure int

const (
	// EmbeddingCount counts distinct embedding subgraphs, the paper's
	// |E[P]| for the single-graph setting (the default).
	EmbeddingCount SupportMeasure = iota
	// GraphCount counts database graphs containing the pattern
	// (the graph-transaction setting).
	GraphCount
)

// Options configures a mining request.
type Options struct {
	// Support is the frequency threshold σ (>= 1).
	Support int
	// Length is the canonical diameter length l (>= 1). If MinLength is
	// set, the band [MinLength, Length] is mined.
	Length    int
	MinLength int
	// Delta is the skinniness bound δ; negative means unbounded.
	Delta int
	// Measure selects support counting.
	Measure SupportMeasure
	// MaximalOnly grows each canonical diameter greedily to one maximal
	// pattern instead of enumerating every valid sub-pattern. Use it for
	// pattern discovery on large data; leave it off for the complete
	// result set of Definition 8.
	MaximalOnly bool
	// ClosedOnly keeps only closed patterns (Algorithm 3, line 12).
	ClosedOnly bool
	// MaxPatterns bounds how many patterns Stage II may generate
	// (0 = unlimited). Each emitted pattern reserves one budget slot
	// after dedup, and the cap is applied after validation/closed
	// filtering: the run returns min(MaxPatterns, generated) of the
	// filtered patterns. See the package README's "Support measures and
	// result budgets" section.
	MaxPatterns int
	// Concurrency bounds the worker pool both mining stages use: Stage I
	// path doubling/merging joins and Stage II seed growth. 0 (the
	// default) means one worker per available CPU; 1 forces the exact
	// sequential path. See the package comment for the determinism
	// guarantee.
	Concurrency int
}

func (o Options) toCore() core.Options {
	opt := core.DefaultOptions(o.Support, o.Length, o.Delta)
	opt.MinLength = o.MinLength
	opt.GreedyGrow = o.MaximalOnly
	opt.ClosedOnly = o.ClosedOnly
	opt.MaxPatterns = o.MaxPatterns
	opt.Concurrency = o.Concurrency
	if o.Measure == GraphCount {
		opt.Measure = support.GraphCount
	}
	return opt
}

// Pattern is one mined l-long δ-skinny pattern.
type Pattern struct {
	p  *core.Pattern
	lt *graph.LabelTable
}

// Vertices returns the number of pattern vertices.
func (p *Pattern) Vertices() int { return p.p.G.N() }

// Edges returns the number of pattern edges.
func (p *Pattern) Edges() int { return p.p.G.M() }

// Support returns the pattern's frequency.
func (p *Pattern) Support() int { return p.p.Support() }

// DiameterLength returns l, the canonical diameter length.
func (p *Pattern) DiameterLength() int { return int(p.p.DiamLen) }

// Skinniness returns the largest vertex level (<= δ).
func (p *Pattern) Skinniness() int { return int(p.p.MaxLevel()) }

// Backbone returns the canonical diameter's label sequence.
func (p *Pattern) Backbone() []string {
	seq := p.p.DiamSeq()
	out := make([]string, len(seq))
	for i, l := range seq {
		out[i] = p.lt.Name(l)
	}
	return out
}

// VertexLabel returns the label of pattern vertex v; vertices 0..l are
// the canonical diameter in order.
func (p *Pattern) VertexLabel(v VertexID) string { return p.lt.Name(p.p.G.Label(v)) }

// EdgeList returns the pattern's edges.
func (p *Pattern) EdgeList() [][2]VertexID {
	es := p.p.G.Edges()
	out := make([][2]VertexID, len(es))
	for i, e := range es {
		out[i] = [2]VertexID{e.U, e.W}
	}
	return out
}

// String renders a compact summary.
func (p *Pattern) String() string {
	return fmt.Sprintf("pattern |V|=%d |E|=%d l=%d δ=%d sup=%d",
		p.Vertices(), p.Edges(), p.DiameterLength(), p.Skinniness(), p.Support())
}

// Result is a mining run's output.
type Result struct {
	Patterns []*Pattern
	// Stats carries stage timings and search counters.
	Stats core.Stats
}

// Mine runs SkinnyMine on a single graph.
func Mine(g *Graph, opt Options) (*Result, error) {
	return MineDB([]*Graph{g}, opt)
}

// MineDB runs SkinnyMine on a graph database. All graphs must share a
// label table (build them via NewGraph and a common vocabulary, or use
// Corpus).
func MineDB(graphs []*Graph, opt Options) (*Result, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("skinnymine: no input graphs")
	}
	lt := graphs[0].lt
	raw := make([]*graph.Graph, len(graphs))
	for i, g := range graphs {
		if g.lt != lt {
			return nil, fmt.Errorf("skinnymine: graph %d uses a different label table; build the database with Corpus", i)
		}
		raw[i] = g.g
	}
	res, err := core.MineDB(raw, opt.toCore())
	if err != nil {
		return nil, err
	}
	return wrapResult(res, lt), nil
}

func wrapResult(res *core.Result, lt *graph.LabelTable) *Result {
	out := &Result{Stats: res.Stats}
	for _, p := range res.Patterns {
		out.Patterns = append(out.Patterns, &Pattern{p: p, lt: lt})
	}
	return out
}

// Corpus builds graphs that share one label vocabulary, as a graph
// database must.
type Corpus struct {
	lt *graph.LabelTable
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus { return &Corpus{lt: graph.NewLabelTable()} }

// NewGraph returns an empty graph bound to the corpus vocabulary.
func (c *Corpus) NewGraph() *Graph {
	return &Graph{g: graph.New(16), lt: c.lt}
}

// Index is the pre-computed minimal-pattern index of the direct mining
// framework (Figure 2): build once, serve many (l, δ) requests.
type Index struct {
	ix *core.DirectIndex
	lt *graph.LabelTable
}

// BuildIndex pre-computes the index over the graphs at threshold σ.
func BuildIndex(graphs []*Graph, sigma int) (*Index, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("skinnymine: no input graphs")
	}
	lt := graphs[0].lt
	raw := make([]*graph.Graph, len(graphs))
	for i, g := range graphs {
		if g.lt != lt {
			return nil, fmt.Errorf("skinnymine: graph %d uses a different label table", i)
		}
		raw[i] = g.g
	}
	ix, err := core.BuildIndex(raw, sigma)
	if err != nil {
		return nil, err
	}
	return &Index{ix: ix, lt: lt}, nil
}

// Mine serves one request from the index. Options.Support must equal
// the σ the index was built with.
func (ix *Index) Mine(opt Options) (*Result, error) {
	res, err := ix.ix.Mine(opt.toCore())
	if err != nil {
		return nil, err
	}
	return wrapResult(res, ix.lt), nil
}

// MinimalBackbones returns the label sequences of the frequent paths of
// length l — the minimal constraint-satisfying patterns Stage I mines,
// each the canonical diameter of every pattern grown from it.
func (ix *Index) MinimalBackbones(l int) ([][]string, error) {
	paths, err := ix.ix.MinimalPatterns(l)
	if err != nil {
		return nil, err
	}
	out := make([][]string, len(paths))
	for i, p := range paths {
		seq := make([]string, len(p.Seq))
		for j, lab := range p.Seq {
			seq[j] = ix.lt.Name(lab)
		}
		out[i] = seq
	}
	return out, nil
}

// ReadGraphs parses a graph database from the text format (see
// internal/graph: "t # i" / "v id label" / "e u w" records, integer
// labels). Each distinct numeric label is formatted and interned once
// per database — first-seen order, exactly as per-vertex interning
// would assign — then reused for every later vertex carrying it.
func ReadGraphs(r io.Reader) ([]*Graph, error) {
	raw, err := graph.ReadText(r)
	if err != nil {
		return nil, err
	}
	c := NewCorpus()
	interned := make(map[graph.Label]graph.Label)
	out := make([]*Graph, len(raw))
	for i, g := range raw {
		wrapped := c.NewGraph()
		for _, lab := range g.Labels() {
			cl, ok := interned[lab]
			if !ok {
				cl = c.lt.Intern(strconv.Itoa(int(lab)))
				interned[lab] = cl
			}
			wrapped.g.AddVertex(cl)
		}
		for _, e := range g.Edges() {
			wrapped.g.MustAddEdge(e.U, e.W)
		}
		out[i] = wrapped
	}
	return out, nil
}
