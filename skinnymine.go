// Package skinnymine is a Go implementation of SkinnyMine, the direct
// mining algorithm for constrained graph pattern discovery of
//
//	Feida Zhu, Zequn Zhang, Qiang Qu.
//	"A Direct Mining Approach To Efficient Constrained Graph Pattern
//	Discovery." SIGMOD 2013.
//
// Given a vertex-labeled graph (or a database of graphs), a frequency
// threshold σ, a diameter length l and a skinniness bound δ, SkinnyMine
// finds the frequent l-long δ-skinny subgraph patterns: patterns whose
// canonical diameter — the lexicographically smallest path realizing
// the diameter — has length l, with every vertex within distance δ of
// it. Mining is direct: stage I pre-computes the minimal
// constraint-satisfying patterns (frequent l-paths, mined by doubling
// and merging), stage II grows them while preserving the canonical
// diameter through three locally-checked constraints.
//
// # Quick start
//
//	g := skinnymine.NewGraph()
//	a := g.AddVertex("station")
//	b := g.AddVertex("cafe")
//	_ = g.AddEdge(a, b)
//	// ... build the rest of the graph ...
//	res, err := skinnymine.Mine(g, skinnymine.Options{
//		Support: 2, Length: 6, Delta: 2,
//	})
//
// The package also ships an indexable form for the paper's direct
// mining deployment — pre-compute once, serve many (l, δ) requests:
//
//	ix, _ := skinnymine.BuildIndex([]*skinnymine.Graph{g}, 2)
//	res1, _ := ix.Mine(skinnymine.Options{Support: 2, Length: 10, Delta: 2})
//	res2, _ := ix.Mine(skinnymine.Options{Support: 2, Length: 12, Delta: 3})
//
// # Snapshots and serving
//
// An Index persists to a versioned binary snapshot and restores without
// repaying Stage I, so a serving process can pre-compute once and answer
// requests immediately after every restart:
//
//	var buf bytes.Buffer
//	_ = ix.WriteSnapshot(&buf)               // or a file
//	ix2, _ := skinnymine.LoadIndex(&buf)     // byte-identical mining results
//
// The cmd/skinnymined daemon serves a snapshot (or builds an index from
// a graph file) over HTTP — POST /v1/mine takes the Options fields as
// JSON and returns ResultJSON, POST /v1/batch answers many requests in
// one deduplicated scheduling pass — with an LRU result cache,
// singleflight request coalescing and a bounded-concurrency admission
// gate (internal/server). cmd/skinnymine -snapshot emits snapshots from
// the command line.
//
// # Sharding
//
// A transaction database can be mined sharded: Options.Shards (or
// BuildShardedIndex for the serving deployment) partitions the graphs,
// runs Stage I shard-parallel with an exact cross-shard support merge,
// and grows the merged seeds — byte-identical output at every shard
// count (internal/shard). A sharded index persists to per-shard
// snapshot files under a CRC'd manifest; LoadIndexFile restores either
// snapshot kind.
//
// # Declarative constraints
//
// Beyond the paper's built-in constraints (σ, the diameter band, δ),
// requests carry an optional Where expression — label predicates, size
// and skinniness bounds, support comparisons, boolean combinators and
// a topk result clause:
//
//	res, _ := skinnymine.Mine(g, skinnymine.Options{
//		Support: 2, Length: 6, Delta: 2,
//		Where: "contains(label='A') && !contains(label='C') && vertices<=8 && topk(10, by=size)",
//	})
//
// Anti-monotone parts are pushed down into both mining stages as
// pruning; the rest is checked once per emitted pattern. The result is
// byte-identical to post-filtering the unconstrained result, except
// under MaximalOnly and MaxPatterns (see Options.Where for the two
// deliberate exceptions, internal/constraint for the language, and the
// README's "Constraint language" section).
//
// # Concurrency and determinism
//
// Mining is parallel by default: Options.Concurrency bounds a worker
// pool used by both stages (Stage I fans the path doubling/merging
// bucket joins, Stage II grows different canonical diameters
// concurrently against a shared, striped dedup set). 0 means one worker
// per available CPU; 1 reproduces the sequential path exactly. The
// result is deterministic: the pattern set, each pattern's support, and the
// output order — sorted by (diameter length, canonical DFS code) — are
// byte-identical for every Concurrency setting and scheduling. The one
// exception is MaxPatterns > 0 under Concurrency > 1, where which
// patterns win the budget race may vary (the count still honors the
// cap). Stats timings and search counters may also differ negligibly
// across runs. The guarantee rests on the exactness of the paper's
// constraint checks (Theorems 1–3); output validation (on by default)
// backstops any over-acceptance.
//
// Baseline miners from the paper's evaluation (gSpan, MoSS, SpiderMine,
// SUBDUE, SEuS, ORIGAMI), synthetic workload generators and the full
// experiment harness live under internal/ and are exercised by
// cmd/experiments and the benchmarks in bench_test.go.
package skinnymine

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"

	"skinnymine/internal/constraint"
	"skinnymine/internal/core"
	"skinnymine/internal/graph"
	"skinnymine/internal/shard"
	"skinnymine/internal/support"
)

// Graph is a vertex-labeled undirected simple graph with string labels.
type Graph struct {
	g  *graph.Graph
	lt *graph.LabelTable
}

// VertexID identifies a vertex within a Graph.
type VertexID = graph.V

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{g: graph.New(16), lt: graph.NewLabelTable()}
}

// AddVertex appends a vertex with the given label and returns its ID.
// Labels compare lexicographically by first-intern order; intern labels
// in sorted order if the paper's exact lexicographic tie-breaks matter.
func (g *Graph) AddVertex(label string) VertexID {
	return g.g.AddVertex(g.lt.Intern(label))
}

// AddEdge inserts an undirected edge; self-loops, duplicates and
// out-of-range endpoints are rejected.
func (g *Graph) AddEdge(u, w VertexID) error { return g.g.AddEdge(u, w) }

// N returns the number of vertices; M the number of edges.
func (g *Graph) N() int { return g.g.N() }

// M returns the number of edges.
func (g *Graph) M() int { return g.g.M() }

// Label returns the label of vertex v.
func (g *Graph) Label(v VertexID) string { return g.lt.Name(g.g.Label(v)) }

// Write serializes the graph in the repository's text format.
func (g *Graph) Write(w io.Writer) error { return graph.WriteText(w, g.g) }

// SupportMeasure selects how pattern frequency is counted.
type SupportMeasure int

const (
	// EmbeddingCount counts distinct embedding subgraphs, the paper's
	// |E[P]| for the single-graph setting (the default).
	EmbeddingCount SupportMeasure = iota
	// GraphCount counts database graphs containing the pattern
	// (the graph-transaction setting).
	GraphCount
)

// Options configures a mining request.
type Options struct {
	// Support is the frequency threshold σ (>= 1).
	Support int
	// Length is the canonical diameter length l (>= 1). If MinLength is
	// set, the band [MinLength, Length] is mined.
	Length    int
	MinLength int
	// Delta is the skinniness bound δ; negative means unbounded.
	Delta int
	// Measure selects support counting.
	Measure SupportMeasure
	// MaximalOnly grows each canonical diameter greedily to one maximal
	// pattern instead of enumerating every valid sub-pattern. Use it for
	// pattern discovery on large data; leave it off for the complete
	// result set of Definition 8.
	MaximalOnly bool
	// ClosedOnly keeps only closed patterns (Algorithm 3, line 12).
	ClosedOnly bool
	// MaxPatterns bounds how many patterns Stage II may generate
	// (0 = unlimited). Each emitted pattern reserves one budget slot
	// after dedup, and the cap is applied after validation/closed
	// filtering: the run returns min(MaxPatterns, generated) of the
	// filtered patterns. See the package README's "Support measures and
	// result budgets" section.
	MaxPatterns int
	// Concurrency bounds the worker pool both mining stages use: Stage I
	// path doubling/merging joins and Stage II seed growth. 0 (the
	// default) means one worker per available CPU; 1 forces the exact
	// sequential path. See the package comment for the determinism
	// guarantee.
	Concurrency int
	// SeedLengths, when non-empty, restricts mining to exactly the
	// canonical diameter lengths in the set: Stage I materializes and
	// Stage II grows only those levels, skipping the rest of the band
	// outright. Every entry must lie within [MinLength or Length,
	// Length]; Validate sorts and deduplicates the set in place. Because
	// patterns partition by their stamped diameter length, the result is
	// byte-identical to concatenating the per-length requests — the
	// fork-at-seed-selection hook the serving layer's shared-plan batch
	// execution builds on. Empty (the default) mines the whole band.
	SeedLengths []int
	// Where is a declarative constraint over the mined patterns, e.g.
	//
	//	"contains(label='A') && vertices<=8 && !contains(label='C') && topk(10, by=support)"
	//
	// (grammar: internal/constraint and the README's "Constraint
	// language" section). Anti-monotone parts — forbidden labels,
	// vertex/edge/skinniness caps, support floors — are pushed down
	// into both mining stages as pruning; the rest is checked once per
	// emitted pattern, and a topk clause finally keeps the K
	// best-ranked results. The result is byte-identical to mining
	// unconstrained and post-filtering, with three exceptions that
	// legitimately differ: MaximalOnly (pushdown steers the greedy
	// absorption toward *constrained* maximal patterns), MaxPatterns
	// (generated-but-filtered patterns consume budget slots, so
	// pushdown — which stops generating them — fits more satisfying
	// patterns under the same cap), and ClosedOnly (the filter runs
	// first, so closedness is judged within the constrained set — a
	// pattern is not shadowed by an equal-support super-pattern the
	// constraint excludes). Empty means unconstrained.
	Where string
	// WhereExpr is a pre-parsed constraint (ParseConstraint); when set
	// it takes precedence over Where. Pre-parsing lets a caller pay
	// parsing once per expression and reuse it across requests.
	WhereExpr *Constraint
	// NoPushdown evaluates the Where constraint at output only,
	// disabling the in-loop pruning. Results are identical either way
	// (except under MaximalOnly or MaxPatterns — see Where); the knob
	// exists to measure the pruning and to pin its equivalence in
	// tests. (ClosedOnly diverges from *external* post-filtering under
	// both modes equally: the output filter always precedes the closed
	// filter.)
	NoPushdown bool
	// Shards partitions the transaction database across that many
	// shards (hash-by-gid with size balancing, clamped to the graph
	// count): Stage I candidate generation runs shard-parallel with an
	// exact cross-shard support merge per path level, and Stage II
	// grows the merged seeds. 0 or 1 means unsharded. The result is
	// byte-identical at every shard count — sharding changes the
	// execution plan, never the output (see internal/shard and the
	// README's "Sharding and batch serving" section). Only Mine and
	// MineDB honor the field; an Index is sharded (or not) at build
	// time via BuildShardedIndex, and Index.Mine ignores it.
	Shards int
	// Trace, when non-nil, records per-stage spans for this request:
	// Stage I candidate generation per level, the cross-shard support
	// recount, Stage II growth, and worker RPCs on a distributed index.
	// Tracing never changes the mined bytes — only what is visible
	// about the run. See NewTrace.
	Trace *Trace
}

func (o Options) measure() support.Measure {
	if o.Measure == GraphCount {
		return support.GraphCount
	}
	return support.EmbeddingCount
}

func (o Options) toCore() core.Options {
	opt := core.DefaultOptions(o.Support, o.Length, o.Delta)
	opt.MinLength = o.MinLength
	opt.GreedyGrow = o.MaximalOnly
	opt.ClosedOnly = o.ClosedOnly
	opt.MaxPatterns = o.MaxPatterns
	opt.Concurrency = o.Concurrency
	if len(o.SeedLengths) > 0 {
		opt.SeedLengths = append([]int(nil), o.SeedLengths...)
	}
	opt.Measure = o.measure()
	if o.Trace != nil {
		opt.Tracer = o.Trace.t
	}
	return opt
}

// lower compiles the options onto the core engine: the basic field
// lowering of toCore plus, when a Where constraint is present, binding
// it to the label vocabulary and installing the pushdown and
// output-filter hooks. The returned TopK (nil when absent) is applied
// to the wrapped result by finishResult.
func (o Options) lower(lt *graph.LabelTable) (core.Options, *constraint.TopK, error) {
	copt := o.toCore()
	c, err := o.parsedWhere()
	if err != nil {
		return copt, nil, err
	}
	if c == nil {
		return copt, nil, nil
	}
	// Support atoms are anti-monotone (and so pushdown-eligible) only
	// under the graph-transaction measure; see internal/constraint.
	b := c.Bind(lt, o.Measure == GraphCount)
	// One attribute view feeds both hooks: pushdown and output
	// filtering must never judge a pattern against different facts.
	attrs := func(g *graph.Graph, skinniness int32, sup int) constraint.Attrs {
		return constraint.Attrs{
			Vertices: g.N(), Edges: g.M(),
			Skinniness: int(skinniness), Support: sup,
			Labels: g.Labels(),
		}
	}
	if !o.NoPushdown {
		if b.HasPathPushdown() {
			copt.PrunePath = b.RejectPath
		}
		if b.HasPushdown() {
			copt.PrunePattern = func(g *graph.Graph, skinniness int32, sup int) bool {
				return b.Reject(attrs(g, skinniness, sup))
			}
		}
	}
	if c.Expr != nil {
		copt.OutputFilter = func(g *graph.Graph, skinniness int32, sup int) bool {
			return b.Accept(attrs(g, skinniness, sup))
		}
	}
	return copt, c.TopK, nil
}

// Constraint is a parsed Where expression. Parsing is cheap but not
// free; callers issuing many requests with one expression can parse it
// once and set Options.WhereExpr.
type Constraint struct {
	c *constraint.Constraint
}

// ParseConstraint parses a constraint expression (see Options.Where for
// the language). Errors name the offending position and match ErrWhere
// (and the underlying *constraint.ParseError) under errors.Is/As — the
// exact error every surface reports, so the CLI, the library and the
// serving daemon reject a bad expression with one message.
func ParseConstraint(src string) (*Constraint, error) {
	c, err := constraint.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("skinnymine: %w: %w", ErrWhere, err)
	}
	return &Constraint{c: c}, nil
}

// String returns the canonical rendering: fixed spacing, minimal
// parentheses, topk clause last. Whitespace variants of one expression
// share a canonical form — the serving daemon keys its result cache on
// it.
func (c *Constraint) String() string { return c.c.String() }

// TopK reports the constraint's result clause: the pattern count, the
// ranking measure ("support", "skinniness" or "size") and whether a
// clause is present at all.
func (c *Constraint) TopK() (k int, by string, ok bool) {
	if c.c.TopK == nil {
		return 0, "", false
	}
	return c.c.TopK.K, c.c.TopK.By.String(), true
}

// Pattern is one mined l-long δ-skinny pattern.
type Pattern struct {
	p  *core.Pattern
	lt *graph.LabelTable
}

// Vertices returns the number of pattern vertices.
func (p *Pattern) Vertices() int { return p.p.G.N() }

// Edges returns the number of pattern edges.
func (p *Pattern) Edges() int { return p.p.G.M() }

// Support returns the pattern's frequency.
func (p *Pattern) Support() int { return p.p.Support() }

// DiameterLength returns l, the canonical diameter length.
func (p *Pattern) DiameterLength() int { return int(p.p.DiamLen) }

// Skinniness returns the largest vertex level (<= δ).
func (p *Pattern) Skinniness() int { return int(p.p.MaxLevel()) }

// Backbone returns the canonical diameter's label sequence.
func (p *Pattern) Backbone() []string {
	seq := p.p.DiamSeq()
	out := make([]string, len(seq))
	for i, l := range seq {
		out[i] = p.lt.Name(l)
	}
	return out
}

// VertexLabel returns the label of pattern vertex v; vertices 0..l are
// the canonical diameter in order.
func (p *Pattern) VertexLabel(v VertexID) string { return p.lt.Name(p.p.G.Label(v)) }

// EdgeList returns the pattern's edges.
func (p *Pattern) EdgeList() [][2]VertexID {
	es := p.p.G.Edges()
	out := make([][2]VertexID, len(es))
	for i, e := range es {
		out[i] = [2]VertexID{e.U, e.W}
	}
	return out
}

// String renders a compact summary.
func (p *Pattern) String() string {
	return fmt.Sprintf("pattern |V|=%d |E|=%d l=%d δ=%d sup=%d",
		p.Vertices(), p.Edges(), p.DiameterLength(), p.Skinniness(), p.Support())
}

// Result is a mining run's output.
type Result struct {
	Patterns []*Pattern
	// Stats carries stage timings and search counters.
	Stats core.Stats
}

// Mine runs SkinnyMine on a single graph.
func Mine(g *Graph, opt Options) (*Result, error) {
	return MineDB([]*Graph{g}, opt)
}

// MineDB runs SkinnyMine on a graph database. All graphs must share a
// label table (build them via NewGraph and a common vocabulary, or use
// Corpus).
func MineDB(graphs []*Graph, opt Options) (*Result, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("skinnymine: no input graphs")
	}
	if err := opt.stashWhere(); err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	lt := graphs[0].lt
	raw := make([]*graph.Graph, len(graphs))
	for i, g := range graphs {
		if g.lt != lt {
			return nil, fmt.Errorf("skinnymine: graph %d uses a different label table; build the database with Corpus", i)
		}
		raw[i] = g.g
	}
	copt, tk, err := opt.lower(lt)
	if err != nil {
		return nil, err
	}
	var res *core.Result
	if opt.Shards > 1 {
		// Request-private sharded engine. Stage I prunes at seed
		// selection (the shard level caches stay complete, like a
		// shared index); the pattern set is byte-identical either way.
		eng, err := shard.New(raw, opt.Support, opt.Shards)
		if err != nil {
			return nil, err
		}
		res, err = eng.Mine(copt)
		if err != nil {
			return nil, err
		}
	} else {
		res, err = core.MineDB(raw, copt)
		if err != nil {
			return nil, err
		}
	}
	return finishResult(res, lt, tk, opt), nil
}

func wrapResult(res *core.Result, lt *graph.LabelTable) *Result {
	out := &Result{Stats: res.Stats}
	for _, p := range res.Patterns {
		out.Patterns = append(out.Patterns, &Pattern{p: p, lt: lt})
	}
	return out
}

// finishResult wraps the core result and applies the constraint's topk
// clause, when present.
func finishResult(res *core.Result, lt *graph.LabelTable, tk *constraint.TopK, opt Options) *Result {
	out := wrapResult(res, lt)
	if tk != nil {
		out.Patterns = applyTopK(out.Patterns, tk, opt.measure())
	}
	return out
}

// applyTopK ranks patterns by the clause's measure and keeps the K
// best. Support and size rank descending; skinniness ranks ascending
// (the skinniest patterns are the constrained-discovery targets). Ties
// fall back to the canonical output order (diameter length, canonical
// DFS code), so the selection — and its order — stays byte-identical
// across Concurrency settings.
func applyTopK(ps []*Pattern, tk *constraint.TopK, m support.Measure) []*Pattern {
	sort.SliceStable(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		switch tk.By {
		case constraint.BySupport:
			if sa, sb := a.p.Embs.Count(m), b.p.Embs.Count(m); sa != sb {
				return sa > sb
			}
		case constraint.BySkinniness:
			if ka, kb := a.p.MaxLevel(), b.p.MaxLevel(); ka != kb {
				return ka < kb
			}
		case constraint.BySize:
			if a.Vertices() != b.Vertices() {
				return a.Vertices() > b.Vertices()
			}
			if a.Edges() != b.Edges() {
				return a.Edges() > b.Edges()
			}
		}
		if a.p.DiamLen != b.p.DiamLen {
			return a.p.DiamLen < b.p.DiamLen
		}
		return a.p.CodeKey() < b.p.CodeKey()
	})
	if tk.K < len(ps) {
		ps = ps[:tk.K]
	}
	return ps
}

// Corpus builds graphs that share one label vocabulary, as a graph
// database must.
type Corpus struct {
	lt *graph.LabelTable
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus { return &Corpus{lt: graph.NewLabelTable()} }

// NewGraph returns an empty graph bound to the corpus vocabulary.
func (c *Corpus) NewGraph() *Graph {
	return &Graph{g: graph.New(16), lt: c.lt}
}

// indexBackend is the engine behind an Index: the method set
// core.DirectIndex and shard.Engine share. Everything but snapshot
// writing and the shard count goes through it, so Index methods don't
// branch per engine kind.
type indexBackend interface {
	Mine(opt core.Options) (*core.Result, error)
	MinimalPatternsCtx(ctx context.Context, l int) ([]*core.PathPattern, error)
	Sigma() int
	NumGraphs() int
	SetConcurrency(n int)
	Concurrency() int
	MaterializedLevels() []int
}

// Index is the pre-computed minimal-pattern index of the direct mining
// framework (Figure 2): build once, serve many (l, δ) requests. A
// sharded index (BuildShardedIndex) answers the same requests with the
// same bytes, materializing Stage I shard-parallel.
type Index struct {
	back indexBackend
	ix   *core.DirectIndex // set iff unsharded
	eng  *shard.Engine     // set iff sharded
	lt   *graph.LabelTable
}

// BuildIndex pre-computes the index over the graphs at threshold σ.
func BuildIndex(graphs []*Graph, sigma int) (*Index, error) {
	lt, raw, err := rawGraphs(graphs)
	if err != nil {
		return nil, err
	}
	ix, err := core.BuildIndex(raw, sigma)
	if err != nil {
		return nil, err
	}
	return &Index{back: ix, ix: ix, lt: lt}, nil
}

// BuildShardedIndex pre-computes a sharded index: the database is
// partitioned across the given shard count (clamped to the graph
// count), Stage I levels materialize shard-parallel with an exact
// cross-shard support merge, and every request mines byte-identically
// to the unsharded index. shards <= 1 builds a plain index.
func BuildShardedIndex(graphs []*Graph, sigma, shards int) (*Index, error) {
	if shards <= 1 {
		return BuildIndex(graphs, sigma)
	}
	lt, raw, err := rawGraphs(graphs)
	if err != nil {
		return nil, err
	}
	eng, err := shard.New(raw, sigma, shards)
	if err != nil {
		return nil, err
	}
	return &Index{back: eng, eng: eng, lt: lt}, nil
}

// rawGraphs unwraps a database sharing one label table.
func rawGraphs(graphs []*Graph) (*graph.LabelTable, []*graph.Graph, error) {
	if len(graphs) == 0 {
		return nil, nil, fmt.Errorf("skinnymine: no input graphs")
	}
	lt := graphs[0].lt
	raw := make([]*graph.Graph, len(graphs))
	for i, g := range graphs {
		if g.lt != lt {
			return nil, nil, fmt.Errorf("skinnymine: graph %d uses a different label table", i)
		}
		raw[i] = g.g
	}
	return lt, raw, nil
}

// Mine serves one request from the index. Options.Support must equal
// the σ the index was built with. A Where constraint prunes at seed
// selection and inside Stage II growth; the index's shared Stage I
// level cache stays complete (and correct for every other request), so
// constrained and unconstrained requests coexist at one index.
func (ix *Index) Mine(opt Options) (*Result, error) {
	if err := opt.stashWhere(); err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	copt, tk, err := opt.lower(ix.lt)
	if err != nil {
		return nil, err
	}
	res, err := ix.back.Mine(copt)
	if err != nil {
		return nil, err
	}
	return finishResult(res, ix.lt, tk, opt), nil
}

// MinimalBackbones returns the label sequences of the frequent paths of
// length l — the minimal constraint-satisfying patterns Stage I mines,
// each the canonical diameter of every pattern grown from it.
func (ix *Index) MinimalBackbones(l int) ([][]string, error) {
	return ix.MinimalBackbonesContext(context.Background(), l)
}

// MinimalBackbonesContext is MinimalBackbones honoring request
// cancellation: a sharded index observes the context between shard
// materialization steps (and propagates its deadline into remote worker
// RPCs), an unsharded index checks it at the materialization boundary.
func (ix *Index) MinimalBackbonesContext(ctx context.Context, l int) ([][]string, error) {
	paths, err := ix.back.MinimalPatternsCtx(ctx, l)
	if err != nil {
		return nil, err
	}
	out := make([][]string, len(paths))
	for i, p := range paths {
		seq := make([]string, len(p.Seq))
		for j, lab := range p.Seq {
			seq[j] = ix.lt.Name(lab)
		}
		out[i] = seq
	}
	return out, nil
}

// ReadGraphs parses a graph database from the text format (see
// internal/graph: "t # i" / "v id label" / "e u w" records, integer
// labels). Each distinct numeric label is formatted and interned once
// per database — first-seen order, exactly as per-vertex interning
// would assign — then reused for every later vertex carrying it.
func ReadGraphs(r io.Reader) ([]*Graph, error) {
	raw, err := graph.ReadText(r)
	if err != nil {
		return nil, err
	}
	c := NewCorpus()
	interned := make(map[graph.Label]graph.Label)
	out := make([]*Graph, len(raw))
	for i, g := range raw {
		wrapped := c.NewGraph()
		for _, lab := range g.Labels() {
			cl, ok := interned[lab]
			if !ok {
				cl = c.lt.Intern(strconv.Itoa(int(lab)))
				interned[lab] = cl
			}
			wrapped.g.AddVertex(cl)
		}
		for _, e := range g.Edges() {
			wrapped.g.MustAddEdge(e.U, e.W)
		}
		out[i] = wrapped
	}
	return out, nil
}
