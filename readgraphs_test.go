package skinnymine

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestReadGraphsMultiGraphRoundTrip writes a three-graph database with
// Graph.Write and reads it back with ReadGraphs, checking structure,
// labels, and that the parsed graphs share one vocabulary.
func TestReadGraphsMultiGraphRoundTrip(t *testing.T) {
	c := NewCorpus()
	var db []*Graph
	for gi := 0; gi < 3; gi++ {
		g := c.NewGraph()
		n := 3 + gi
		var ids []VertexID
		for v := 0; v < n; v++ {
			// Numeric label names so the text format (integer labels)
			// round-trips the strings exactly.
			ids = append(ids, g.AddVertex([]string{"7", "3", "9"}[v%3]))
		}
		for v := 1; v < n; v++ {
			if err := g.AddEdge(ids[v-1], ids[v]); err != nil {
				t.Fatal(err)
			}
		}
		db = append(db, g)
	}
	var buf bytes.Buffer
	for _, g := range db {
		if err := g.Write(&buf); err != nil {
			t.Fatal(err)
		}
	}
	parsed, err := ReadGraphs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(db) {
		t.Fatalf("parsed %d graphs, want %d", len(parsed), len(db))
	}
	for i, g := range parsed {
		want := db[i]
		if g.N() != want.N() || g.M() != want.M() {
			t.Errorf("graph %d: %d/%d vertices/edges, want %d/%d", i, g.N(), g.M(), want.N(), want.M())
		}
		for v := 0; v < g.N(); v++ {
			// Write emits interned label IDs, so the parsed label is the
			// decimal ID of the original string label.
			wantLabel := strconv.Itoa(int(want.g.Label(VertexID(v))))
			if got := g.Label(VertexID(v)); got != wantLabel {
				t.Errorf("graph %d vertex %d label %q, want %q", i, v, got, wantLabel)
			}
		}
	}
	// The parsed database must be mineable as one corpus: shared labels
	// across graphs count toward transaction support.
	res, err := MineDB(parsed, Options{Support: 3, Length: 1, Delta: 0, Measure: GraphCount})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Error("shared edge pattern not found across parsed graphs")
	}
}

// TestReadGraphsInternsLabelsOnce checks the label fast path: each
// distinct numeric label maps to one vocabulary entry, in first-seen
// order, across graph boundaries.
func TestReadGraphsInternsLabelsOnce(t *testing.T) {
	input := `t # 0
v 0 5
v 1 3
v 2 5
e 0 1
e 1 2
t # 1
v 0 3
v 1 8
e 0 1
`
	graphs, err := ReadGraphs(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) != 2 {
		t.Fatalf("parsed %d graphs, want 2", len(graphs))
	}
	g0, g1 := graphs[0], graphs[1]
	for v, want := range []string{"5", "3", "5"} {
		if got := g0.Label(VertexID(v)); got != want {
			t.Errorf("graph 0 vertex %d label %q, want %q", v, got, want)
		}
	}
	for v, want := range []string{"3", "8"} {
		if got := g1.Label(VertexID(v)); got != want {
			t.Errorf("graph 1 vertex %d label %q, want %q", v, got, want)
		}
	}
	// First-seen intern order: 5, 3, 8 — shared across both graphs.
	if g0.lt != g1.lt {
		t.Fatal("graphs do not share a label table")
	}
	if g0.lt.Len() != 3 {
		t.Errorf("%d interned labels, want 3", g0.lt.Len())
	}
	for i, want := range []string{"5", "3", "8"} {
		if got := g0.lt.Names()[i]; got != want {
			t.Errorf("intern slot %d = %q, want %q", i, got, want)
		}
	}
}

func TestReadGraphsErrors(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"bad vertex id", "v x 1\n", "bad vertex id"},
		{"out of order vertex id", "v 0 1\nv 2 1\n", "out of order"},
		{"dangling edge endpoint", "v 0 1\ne 0 7\n", "out of range"},
		{"edge before vertices", "e 0 1\n", "out of range"},
		{"missing label", "v 0\n", "vertex needs id and label"},
		{"unknown record", "q 1 2\n", "unknown record"},
	}
	for _, tc := range cases {
		_, err := ReadGraphs(strings.NewReader(tc.input))
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestReadGraphsEmptyInput: no records is a valid, empty database —
// callers decide whether that is an error.
func TestReadGraphsEmptyInput(t *testing.T) {
	for _, input := range []string{"", "\n\n", "# only a comment\n"} {
		graphs, err := ReadGraphs(strings.NewReader(input))
		if err != nil {
			t.Errorf("input %q: %v", input, err)
		}
		if len(graphs) != 0 {
			t.Errorf("input %q: parsed %d graphs, want 0", input, len(graphs))
		}
	}
}
