package skinnymine

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// resultBytes serializes a result with the wall-clock timing fields
// zeroed: every other ResultJSON field is deterministic, timings are
// not, so this is the byte-comparison form.
func resultBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	res.Stats.DiamMineTime = 0
	res.Stats.LevelGrowTime = 0
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotRoundTripMine pins the snapshot contract: an index
// restored from a snapshot serves byte-identical results to the index
// it was taken from, sequentially and in parallel.
func TestSnapshotRoundTripMine(t *testing.T) {
	g := buildTrajectoryGraph(t)
	ix, err := BuildIndex([]*Graph{g}, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Support: 2, Length: 4, Delta: 1, Concurrency: 1}
	want, err := ix.Mine(opt) // also materializes levels into the snapshot
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := resultBytes(t, want)

	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, conc := range []int{1, 8} {
		req := opt
		req.Concurrency = conc
		got, err := ix2.Mine(req)
		if err != nil {
			t.Fatalf("concurrency %d: %v", conc, err)
		}
		if !bytes.Equal(resultBytes(t, got), wantBytes) {
			t.Errorf("concurrency %d: restored index result differs from original", conc)
		}
	}
}

// TestSnapshotServesUnmaterializedLengths checks a restored index can
// still mine lengths the snapshot never materialized (Stage I reruns
// from the persisted graphs).
func TestSnapshotServesUnmaterializedLengths(t *testing.T) {
	g := buildTrajectoryGraph(t)
	ix, err := BuildIndex([]*Graph{g}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Mine(Options{Support: 2, Length: 4, Delta: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ix.Mine(Options{Support: 2, Length: 3, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix2.Mine(Options{Support: 2, Length: 3, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultBytes(t, got), resultBytes(t, want)) {
		t.Error("unmaterialized length mined differently after restore")
	}
}

func TestSnapshotAccessors(t *testing.T) {
	g := buildTrajectoryGraph(t)
	ix, err := BuildIndex([]*Graph{g}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Sigma() != 2 || ix.NumGraphs() != 1 {
		t.Errorf("Sigma=%d NumGraphs=%d, want 2 and 1", ix.Sigma(), ix.NumGraphs())
	}
	if got := ix.MaterializedLevels(); len(got) != 0 {
		t.Errorf("fresh index has materialized levels %v", got)
	}
	if _, err := ix.Mine(Options{Support: 2, Length: 4, Delta: 1}); err != nil {
		t.Fatal(err)
	}
	got := ix.MaterializedLevels()
	if len(got) == 0 || got[len(got)-1] != 4 {
		t.Errorf("materialized levels %v should include 4", got)
	}
}

// TestWriteSnapshotFile checks the atomic file helper round-trips and
// leaves no temp files behind.
func TestWriteSnapshotFile(t *testing.T) {
	g := buildTrajectoryGraph(t)
	ix, err := BuildIndex([]*Graph{g}, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "city.idx")
	if err := ix.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := LoadIndex(f); err != nil {
		t.Fatalf("written file does not load: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("%d files in snapshot dir, want just city.idx", len(entries))
	}
}

func TestLoadIndexRejectsGarbage(t *testing.T) {
	if _, err := LoadIndex(bytes.NewReader([]byte("not a snapshot at all"))); err == nil {
		t.Fatal("garbage should not load")
	}
	g := buildTrajectoryGraph(t)
	ix, err := BuildIndex([]*Graph{g}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := LoadIndex(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated snapshot should not load")
	}
	raw[len(raw)-1] ^= 0xFF // corrupt the checksum
	if _, err := LoadIndex(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted snapshot should not load")
	}
}
