package skinnymine

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strings"

	"skinnymine/internal/core"
	"skinnymine/internal/graph"
	"skinnymine/internal/indexio"
	"skinnymine/internal/shard"
)

// WriteSnapshot serializes the index — label vocabulary, graph database,
// σ, and every frequent-path level materialized so far — in the
// versioned binary snapshot format of internal/indexio. A process that
// loads the snapshot with LoadIndex serves requests without repaying any
// already-materialized Stage I work.
//
// Snapshots are canonical: saving, loading and saving again produces
// byte-identical output. WriteSnapshot is safe to call concurrently
// with Mine requests — the level map is copied under the index's lock
// — but a materialization in progress holds that lock for its full
// Stage I cost, so a concurrent snapshot waits for it and then
// includes the new level.
//
// A sharded index persists to multiple files and therefore refuses a
// single stream; use WriteSnapshotFile, which writes the per-shard
// snapshot files plus the manifest.
func (ix *Index) WriteSnapshot(w io.Writer) error {
	if ix.eng != nil {
		return fmt.Errorf("skinnymine: a sharded index snapshots to per-shard files; use WriteSnapshotFile")
	}
	return indexio.Save(w, ix.ix.State(), ix.lt)
}

// WriteSnapshotFile persists the snapshot to path atomically: every
// file is written to a temporary name in the destination directory and
// renamed over the target, so a crash mid-write never clobbers an
// existing good snapshot.
//
// An unsharded index writes one v1 snapshot stream at path. A sharded
// index streams one v1 stream per shard next to path — named
// "<base>.shard<i>-<crc32>", so a new snapshot generation never
// overwrites the files a previous manifest references — and then the
// CRC'd manifest at path itself, LAST, so path always names either the
// old complete snapshot or the new one, never a half-written mix. After
// the manifest lands, shard files no generation references are removed
// best-effort (a crash beforehand leaves only harmless strays; the next
// successful save collects them). Saving identical content reproduces
// identical names and bytes, so Save∘Load∘Save is byte-stable. Load
// either kind with LoadIndexFile.
func (ix *Index) WriteSnapshotFile(path string) error {
	if ix.eng == nil {
		if err := writeFileAtomic(path, ix.WriteSnapshot); err != nil {
			return err
		}
		// Overwriting a formerly sharded snapshot: no generation is
		// live anymore, so orphaned shard files must not linger and
		// suggest the path is still sharded.
		sweepShardFiles(filepath.Dir(path), filepath.Base(path), nil)
		return nil
	}
	states := ix.eng.ShardStates()
	assign := ix.eng.Assignment()
	dir, base := filepath.Dir(path), filepath.Base(path)
	m := indexio.Manifest{
		Sigma:     ix.eng.Sigma(),
		NumGraphs: ix.eng.NumGraphs(),
		Shards:    make([]indexio.ShardRef, len(states)),
	}
	live := make(map[string]bool, len(states))
	for s, st := range states {
		ref, err := writeShardFile(dir, base, s, func(w io.Writer) error {
			return indexio.Save(w, st, ix.lt)
		})
		if err != nil {
			return err
		}
		ref.GIDs = assign[s]
		m.Shards[s] = ref
		live[ref.Name] = true
	}
	if err := writeFileAtomic(path, func(w io.Writer) error {
		return indexio.SaveManifest(w, m)
	}); err != nil {
		return err
	}
	// The new manifest is in place; sweep this snapshot's previous
	// generation.
	sweepShardFiles(dir, base, live)
	return nil
}

// sweepShardFiles best-effort-removes base's shard files in dir that
// the just-written snapshot does not reference (live; nil means none).
// Only names matching the exact generated shape — "<base>.shard<index>-
// <8 hex digits>" — are candidates, so user files and sibling snapshots
// whose paths merely extend the prefix (e.g. "<base>.sharded" and its
// own shard files) are never touched.
func sweepShardFiles(dir, base string, live map[string]bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if name := e.Name(); isShardFileName(base, name) && !live[name] {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// isShardFileName reports whether name has the exact shape
// writeShardFile generates for this base: "<base>.shard<digits>-<8
// lowercase hex digits>".
func isShardFileName(base, name string) bool {
	rest, ok := strings.CutPrefix(name, base+".shard")
	if !ok {
		return false
	}
	i := 0
	for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
		i++
	}
	if i == 0 || i >= len(rest) || rest[i] != '-' {
		return false
	}
	hex := rest[i+1:]
	if len(hex) != 8 {
		return false
	}
	for _, c := range []byte(hex) {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// castagnoli is the polynomial behind the manifest's whole-file shard
// checksums and the content-addressed shard names. It must differ from
// the IEEE polynomial of the v1 payload CRC: a stream ending in its own
// little-endian IEEE CRC has the constant whole-file IEEE value
// 0x2144df1c (the CRC-32 residue), so IEEE over the whole file could
// never tell one valid shard generation from another.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writeShardFile streams one shard's snapshot to a temporary file while
// folding the bytes into the CRC-32C and size the manifest records —
// the stream is never buffered in memory — then renames it to its
// content-addressed name.
func writeShardFile(dir, base string, s int, write func(io.Writer) error) (indexio.ShardRef, error) {
	var ref indexio.ShardRef
	tmp, err := os.CreateTemp(dir, ".skinnymine-*.shard")
	if err != nil {
		return ref, err
	}
	defer os.Remove(tmp.Name())
	crc := crc32.New(castagnoli)
	cw := &countingWriter{}
	if err := write(io.MultiWriter(tmp, crc, cw)); err != nil {
		tmp.Close()
		return ref, err
	}
	if err := tmp.Close(); err != nil {
		return ref, err
	}
	ref = indexio.ShardRef{
		Name: fmt.Sprintf("%s.shard%d-%08x", base, s, crc.Sum32()),
		Size: cw.n,
		CRC:  crc.Sum32(),
	}
	return ref, os.Rename(tmp.Name(), filepath.Join(dir, ref.Name))
}

// countingWriter counts bytes written through it.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// writeFileAtomic writes via a temporary file in the destination
// directory and renames it over the target.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".skinnymine-*.idx")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadIndex restores an index from a v1 snapshot stream written by
// WriteSnapshot. It rejects streams with a bad magic number, an
// unsupported version, a checksum mismatch, or internally inconsistent
// content, naming the failure in the returned error. Sharded snapshots
// span multiple files and load through LoadIndexFile instead.
func LoadIndex(r io.Reader) (*Index, error) {
	st, lt, err := indexio.Load(r)
	if err != nil {
		return nil, err
	}
	cx, err := core.RestoreIndex(st)
	if err != nil {
		return nil, err
	}
	return &Index{back: cx, ix: cx, lt: lt}, nil
}

// LoadIndexFile restores an index from a snapshot file of either kind,
// sniffing the magic bytes: a v1 stream loads as an unsharded index; a
// sharded manifest loads every referenced shard file (resolved relative
// to the manifest's directory, verified against the manifest's recorded
// size and CRC before parsing) and reassembles the sharded engine. All
// the v1 corruption rejection applies per shard file, plus the
// manifest's own: truncation, checksum mismatch, shard-count or
// shard-file mismatch, σ or label-vocabulary disagreement between
// shards, and graph assignments that fail to partition the database.
func LoadIndexFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	head := make([]byte, len(indexio.ManifestMagic))
	if _, err := io.ReadFull(f, head); err != nil {
		return nil, fmt.Errorf("skinnymine: reading snapshot magic: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if string(head) != indexio.ManifestMagic {
		return LoadIndex(f)
	}
	return loadShardedIndex(f, path)
}

// loadShardedIndex reassembles a sharded index from its manifest stream
// and the shard files living next to path.
func loadShardedIndex(r io.Reader, path string) (*Index, error) {
	parts, err := loadShardParts(r, path)
	if err != nil {
		return nil, err
	}
	eng, err := shard.Restore(parts.states, parts.assign, parts.m.Sigma)
	if err != nil {
		return nil, err
	}
	return &Index{back: eng, eng: eng, lt: parts.lt}, nil
}

// shardParts is a fully verified sharded snapshot: the manifest plus
// every shard file decoded — the shared input of the in-process
// (loadShardedIndex) and distributed (LoadDistributedIndexFile)
// restore paths.
type shardParts struct {
	m      indexio.Manifest
	states []core.IndexState
	assign [][]int32
	lt     *graph.LabelTable
}

// loadShardParts reads the manifest from r and loads every referenced
// shard file (resolved relative to path's directory), verifying each
// against the manifest's recorded size and CRC before parsing, and the
// shards against each other (σ and label-vocabulary agreement).
func loadShardParts(r io.Reader, path string) (*shardParts, error) {
	m, err := indexio.LoadManifest(r)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	p := &shardParts{
		m:      m,
		states: make([]core.IndexState, len(m.Shards)),
		assign: make([][]int32, len(m.Shards)),
	}
	for s, ref := range m.Shards {
		data, err := os.ReadFile(filepath.Join(dir, ref.Name))
		if err != nil {
			return nil, fmt.Errorf("skinnymine: shard file %s: %w", ref.Name, err)
		}
		if int64(len(data)) != ref.Size {
			return nil, fmt.Errorf("skinnymine: shard file %s is %d bytes, manifest records %d: snapshot is inconsistent", ref.Name, len(data), ref.Size)
		}
		if got := crc32.Checksum(data, castagnoli); got != ref.CRC {
			return nil, fmt.Errorf("skinnymine: shard file %s checksum %08x, manifest records %08x: snapshot is inconsistent", ref.Name, got, ref.CRC)
		}
		st, slt, err := indexio.Load(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("skinnymine: shard file %s: %w", ref.Name, err)
		}
		if st.Sigma != m.Sigma {
			return nil, fmt.Errorf("skinnymine: shard file %s was built with support %d, manifest says %d", ref.Name, st.Sigma, m.Sigma)
		}
		if s == 0 {
			p.lt = slt
		} else if !slices.Equal(slt.Names(), p.lt.Names()) {
			return nil, fmt.Errorf("skinnymine: shard file %s label table differs from %s", ref.Name, m.Shards[0].Name)
		}
		p.states[s] = st
		p.assign[s] = ref.GIDs
	}
	return p, nil
}

// Sigma returns the frequency threshold σ the index was built with;
// Mine requests must use the same value.
func (ix *Index) Sigma() int { return ix.back.Sigma() }

// SetConcurrency bounds the worker pool used when MinimalBackbones
// materializes a level (Mine requests carry their own
// Options.Concurrency instead). 0 or negative means one worker per
// available CPU. Call it before serving, not concurrently with
// requests.
func (ix *Index) SetConcurrency(n int) { ix.back.SetConcurrency(n) }

// Concurrency reports the worker budget SetConcurrency last established
// (or the build-time default), always resolved to a positive count. It
// exists so embedders — and the daemon's regression tests — can verify
// that nothing reconfigured an index behind their back.
func (ix *Index) Concurrency() int { return ix.back.Concurrency() }

// NumGraphs returns the number of database graphs behind the index.
func (ix *Index) NumGraphs() int { return ix.back.NumGraphs() }

// Shards returns the index's shard count: 1 for an unsharded index.
func (ix *Index) Shards() int {
	if ix.eng != nil {
		return ix.eng.Shards()
	}
	return 1
}

// MaterializedLevels returns the path lengths whose frequent-path level
// is cached (and would be persisted by WriteSnapshotFile), ascending.
func (ix *Index) MaterializedLevels() []int { return ix.back.MaterializedLevels() }
