package skinnymine

import (
	"io"
	"os"
	"path/filepath"

	"skinnymine/internal/core"
	"skinnymine/internal/indexio"
)

// WriteSnapshot serializes the index — label vocabulary, graph database,
// σ, and every frequent-path level materialized so far — in the
// versioned binary snapshot format of internal/indexio. A process that
// loads the snapshot with LoadIndex serves requests without repaying any
// already-materialized Stage I work.
//
// Snapshots are canonical: saving, loading and saving again produces
// byte-identical output. WriteSnapshot is safe to call concurrently
// with Mine requests — the level map is copied under the index's lock
// — but a materialization in progress holds that lock for its full
// Stage I cost, so a concurrent snapshot waits for it and then
// includes the new level.
func (ix *Index) WriteSnapshot(w io.Writer) error {
	return indexio.Save(w, ix.ix.State(), ix.lt)
}

// WriteSnapshotFile persists the snapshot to path atomically: it writes
// a temporary file in the destination directory and renames it over the
// target, so a crash mid-write never clobbers an existing good snapshot.
func (ix *Index) WriteSnapshotFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".skinnymine-*.idx")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := ix.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadIndex restores an index from a snapshot written by WriteSnapshot.
// It rejects streams with a bad magic number, an unsupported version, a
// checksum mismatch, or internally inconsistent content, naming the
// failure in the returned error.
func LoadIndex(r io.Reader) (*Index, error) {
	st, lt, err := indexio.Load(r)
	if err != nil {
		return nil, err
	}
	cx, err := core.RestoreIndex(st)
	if err != nil {
		return nil, err
	}
	return &Index{ix: cx, lt: lt}, nil
}

// Sigma returns the frequency threshold σ the index was built with;
// Mine requests must use the same value.
func (ix *Index) Sigma() int { return ix.ix.Sigma() }

// SetConcurrency bounds the worker pool used when MinimalBackbones
// materializes a level (Mine requests carry their own
// Options.Concurrency instead). 0 or negative means one worker per
// available CPU. Call it before serving, not concurrently with
// requests.
func (ix *Index) SetConcurrency(n int) { ix.ix.SetConcurrency(n) }

// NumGraphs returns the number of database graphs behind the index.
func (ix *Index) NumGraphs() int { return ix.ix.NumGraphs() }

// MaterializedLevels returns the path lengths whose frequent-path level
// is cached (and would be persisted by WriteSnapshot), ascending.
func (ix *Index) MaterializedLevels() []int { return ix.ix.MaterializedLevels() }
