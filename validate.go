package skinnymine

import (
	"errors"
	"fmt"
	"strings"

	"skinnymine/internal/constraint"
)

// Validation errors. Options.Validate wraps each with the offending
// value, so callers branch with errors.Is and users still see what was
// sent. The library (Mine, MineDB, Index.Mine), the CLI and the serving
// daemon all validate through Options.Validate, so every entry point
// rejects the same inputs with the same messages.
var (
	// ErrSupport reports Options.Support < 1.
	ErrSupport = errors.New("support must be >= 1")
	// ErrLength reports Options.Length < 1.
	ErrLength = errors.New("length must be >= 1")
	// ErrMinLength reports a MinLength outside [0, Length].
	ErrMinLength = errors.New("min_length must lie in [0, length]")
	// ErrMeasure reports a Measure that is neither EmbeddingCount nor
	// GraphCount.
	ErrMeasure = errors.New(`measure must be EmbeddingCount ("embeddings") or GraphCount ("graphs")`)
	// ErrMaxPatterns reports a negative MaxPatterns.
	ErrMaxPatterns = errors.New("max_patterns must be >= 0")
	// ErrShards reports a negative Shards.
	ErrShards = errors.New("shards must be >= 0")
	// ErrSeedLengths reports a SeedLengths entry outside the band
	// [MinLength or Length, Length].
	ErrSeedLengths = errors.New("seed lengths must lie within the band")
	// ErrWhere wraps a Where constraint that failed to parse.
	ErrWhere = errors.New("invalid where constraint")
)

// Validate checks the request fields without mining, returning a typed
// error (see ErrSupport and friends) for the first invalid one. Mine,
// MineDB and Index.Mine call it on entry; the CLI and the serving
// daemon call it too, so all three surfaces reject identically.
func (o Options) Validate() error {
	if o.Support < 1 {
		return fmt.Errorf("skinnymine: %w (got %d)", ErrSupport, o.Support)
	}
	if o.Length < 1 {
		return fmt.Errorf("skinnymine: %w (got %d)", ErrLength, o.Length)
	}
	if o.MinLength < 0 || o.MinLength > o.Length {
		return fmt.Errorf("skinnymine: %w (got min_length %d, length %d)", ErrMinLength, o.MinLength, o.Length)
	}
	if o.Measure != EmbeddingCount && o.Measure != GraphCount {
		return fmt.Errorf("skinnymine: %w (got %d)", ErrMeasure, int(o.Measure))
	}
	if o.MaxPatterns < 0 {
		return fmt.Errorf("skinnymine: %w (got %d)", ErrMaxPatterns, o.MaxPatterns)
	}
	if o.Shards < 0 {
		return fmt.Errorf("skinnymine: %w (got %d)", ErrShards, o.Shards)
	}
	if len(o.SeedLengths) > 0 {
		lo := o.Length
		if o.MinLength > 0 {
			lo = o.MinLength
		}
		for _, l := range o.SeedLengths {
			if l < lo || l > o.Length {
				return fmt.Errorf("skinnymine: %w (got %d, band [%d, %d])", ErrSeedLengths, l, lo, o.Length)
			}
		}
	}
	if _, err := o.parsedWhere(); err != nil {
		return err
	}
	return nil
}

// parsedWhere resolves the request's constraint: the pre-parsed
// WhereExpr when set, otherwise the parsed Where string; nil when the
// request is unconstrained.
func (o Options) parsedWhere() (*constraint.Constraint, error) {
	if o.WhereExpr != nil {
		return o.WhereExpr.c, nil
	}
	if strings.TrimSpace(o.Where) == "" {
		return nil, nil
	}
	c, err := ParseConstraint(o.Where)
	if err != nil {
		return nil, err
	}
	return c.c, nil
}

// stashWhere parses the Where string once and pins the result on
// WhereExpr, so the Validate/lower pair that follows re-uses the parse
// instead of repeating it.
func (o *Options) stashWhere() error {
	if o.WhereExpr != nil || strings.TrimSpace(o.Where) == "" {
		return nil
	}
	c, err := ParseConstraint(o.Where)
	if err != nil {
		return err
	}
	o.WhereExpr = c
	return nil
}
