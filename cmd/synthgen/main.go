// Command synthgen generates the paper's synthetic data sets in the
// text graph format, for use with cmd/skinnymine or external tools.
//
//	synthgen -kind gid -gid 2 > gid2.txt         Table 1 settings
//	synthgen -kind table3 > table3.txt           Table 3 ladder
//	synthgen -kind er -n 10000 -deg 3 -f 10      plain Erdős–Rényi
//	synthgen -kind dblp -graphs 100              DBLP-like timelines
//	synthgen -kind weibo -graphs 200             Weibo-like conversations
//	synthgen -kind skew -n 2000 -f 8 -zipf 1.4   Zipf labels + planted
//	                                             rare-label skinny motifs
//	                                             (constraint selectivity)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"skinnymine/internal/graph"
	"skinnymine/internal/synth"
)

func main() {
	var (
		kind   = flag.String("kind", "er", "er | gid | table3 | dblp | weibo | skew")
		seed   = flag.Int64("seed", 1, "random seed")
		n      = flag.Int("n", 1000, "er/skew: vertex count")
		deg    = flag.Float64("deg", 3, "er/skew: average degree")
		f      = flag.Int("f", 10, "er/skew: label count")
		gid    = flag.Int("gid", 1, "gid: Table 1 row (1..5)")
		scale  = flag.Float64("scale", 1.0, "table3: size scale")
		graphs = flag.Int("graphs", 100, "dblp/weibo: graph count")
		zipf   = flag.Float64("zipf", 1.4, "skew: Zipf label exponent (> 1, larger = more skewed)")
		motifs = flag.Int("motifs", 6, "skew: planted rare-label motif copies")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	var out []*graph.Graph
	switch *kind {
	case "er":
		out = []*graph.Graph{synth.ER(rng, *n, *deg, *f)}
	case "gid":
		if *gid < 1 || *gid > 5 {
			fatal(fmt.Errorf("gid must be 1..5"))
		}
		g, _ := synth.BuildGID(rng, synth.GIDSettings[*gid-1])
		out = []*graph.Graph{g}
	case "table3":
		g, _ := synth.BuildTable3(rng, *scale)
		out = []*graph.Graph{g}
	case "dblp":
		out = synth.DBLP(rng, synth.DBLPOptions{Authors: *graphs, Years: 21, Archetypes: *graphs / 4})
	case "weibo":
		out = synth.Weibo(rng, synth.WeiboOptions{
			Conversations: *graphs, AvgSize: 30,
			ChainConversations: *graphs / 5, ChainLength: 13,
		})
	case "skew":
		if *zipf <= 1 {
			fatal(fmt.Errorf("zipf exponent must be > 1"))
		}
		out = []*graph.Graph{synth.Skew(rng, synth.SkewOptions{
			N: *n, AvgDeg: *deg, Labels: *f, ZipfS: *zipf, Motifs: *motifs,
		})}
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	if err := graph.WriteText(os.Stdout, out...); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "synthgen:", err)
	os.Exit(1)
}
