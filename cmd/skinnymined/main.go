// Command skinnymined serves SkinnyMine requests over HTTP from one
// pre-computed index — the paper's direct mining deployment (Figure 2):
// pay Stage I once, answer many (l, δ) requests online.
//
// Start from a snapshot (written by `skinnymine -snapshot` or a prior
// `skinnymined -save`; sharded manifests are detected automatically):
//
//	skinnymined -index city.idx -addr :8080
//
// or build the index from a graph file — optionally sharded, optionally
// persisting it:
//
//	skinnymined -input city.txt -support 2 -shards 4 -save city.idx
//
// Endpoints: POST /v1/mine (Options JSON in, ResultJSON out),
// POST /v1/batch (N requests, deduplicated, one scheduling pass),
// GET /v1/backbones?l=N, GET /healthz, GET /metrics. Example requests:
//
//	curl -s localhost:8080/v1/mine -d '{"length":4,"delta":1}'
//	curl -s localhost:8080/v1/batch \
//	    -d '{"requests":[{"length":4,"delta":1},{"length":5,"delta":1}]}'
//
// Observability: every response carries an X-Request-Id (echoed or
// generated, and forwarded to worker RPCs); /v1/mine?trace=1 wraps the
// result with its run's spans (served from the trace store on a cache
// hit); the always-on trace store retains the last -trace-store
// completed request traces — stitched across worker processes in
// distributed mode — behind GET /debug/traces (?id= for one span
// tree); /metrics?format=prom renders the Prometheus text exposition;
// -log-level/-log-format configure the structured log, -slow-query
// logs slow runs with their spans and a /debug/traces link, and
// -pprof mounts /debug/pprof/ in both daemon and worker mode. The
// skinnytop command renders these endpoints as a live dashboard. See
// the README's "Observability" section.
//
// # Distributed mining
//
// A sharded snapshot can also be served by a fleet: one worker process
// per shard file plus a coordinator that scatter/gathers Stage I
// candidate generation and runs the exact cross-shard merge locally.
//
//	skinnymined -worker city.idx.shard0-<crc> -addr :9001
//	skinnymined -worker city.idx.shard1-<crc> -addr :9002
//	skinnymined -index city.idx -workers localhost:9001,localhost:9002
//
// Worker addresses are positional — -workers lists shard 0's worker
// first — and every RPC is pinned to the manifest's shard checksum, so
// a miswired fleet fails loudly (409) instead of mining garbage. The
// coordinator retries transient worker failures with backoff, hedges
// stragglers (-worker-hedge-after), probes worker health in the
// background, and answers 503 — never a hang, never a partial result —
// when a shard stays unreachable past the retry budget. Output is
// byte-identical to serving the same snapshot in-process.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"skinnymine"
	"skinnymine/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		index    = flag.String("index", "", "load an index snapshot (plain or sharded manifest) instead of building one")
		input    = flag.String("input", "", "graph file (text format) to build the index from")
		sigma    = flag.Int("support", 2, "frequency threshold σ when building from -input")
		shards   = flag.Int("shards", 0, "shard the index built from -input across this many partitions (0/1: unsharded)")
		save     = flag.String("save", "", "write the index snapshot to this file after loading/building")
		maxConc  = flag.Int("max-concurrent", 0, "mining runs admitted at once (0: 2× CPUs)")
		maxLen   = flag.Int("max-length", 0, "largest diameter length a request may ask for (0: 64)")
		maxBatch = flag.Int("max-batch", 0, "requests accepted per /v1/batch call (0: 64, negative: disable the endpoint)")
		cache    = flag.Int("cache", 0, "result cache entries (0: 256, negative: disable)")
		noMorph  = flag.Bool("no-morph", false, "disable morphing cache reuse (answering a miss by post-filtering a cached superset result)")
		noFamily = flag.Bool("no-family", false, "disable shared-plan batch execution (mining a /v1/batch query family once and forking the members)")
		ixConc   = flag.Int("index-concurrency", 0, "index worker pool for backbones materialization (>0: that many, <0: one per CPU, 0: leave the index as configured)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")

		worker      = flag.String("worker", "", "serve Stage I for ONE shard snapshot file (worker mode; pairs with a coordinator's -workers)")
		workers     = flag.String("workers", "", "comma-separated worker addresses, one per shard in manifest order; turns -index into a distributed coordinator")
		workerTO    = flag.Duration("worker-timeout", 0, "per-attempt worker RPC timeout (0: 30s)")
		workerTries = flag.Int("worker-retries", -1, "worker RPC re-attempts after a retryable failure (negative: 2)")
		workerWait  = flag.Duration("worker-backoff", 0, "wait before the first worker retry, doubling per retry (0: 100ms)")
		workerHedge = flag.Duration("worker-hedge-after", 0, "duplicate a worker RPC not answered within this long (0: no hedging)")
		workerProbe = flag.Duration("worker-probe", 5*time.Second, "worker health probe period (0: no probing)")

		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn or error (debug includes per-request access lines)")
		logFormat = flag.String("log-format", "text", "log encoding: text or json")
		slowQuery = flag.Duration("slow-query", 0, "log mining runs at least this slow at warn level, with their stage spans (0: disabled)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (both daemon and worker mode)")
		traceKeep = flag.Int("trace-store", 0, "completed request traces retained for /debug/traces (0: 256, negative: disable the store)")
	)
	flag.Parse()

	if err := setupLogger(*logLevel, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "skinnymined:", err)
		os.Exit(2)
	}

	if *worker != "" {
		if *index != "" || *input != "" || *workers != "" {
			fmt.Fprintln(os.Stderr, "usage: skinnymined -worker <shard file> [-addr :9001] (worker mode takes no -index/-input/-workers)")
			os.Exit(2)
		}
		runWorker(*worker, *addr, *drain, *pprofOn)
		return
	}
	if (*index == "") == (*input == "") {
		fmt.Fprintln(os.Stderr, "usage: skinnymined (-index <snapshot> | -input <file> [-support σ] | -worker <shard file>) [-addr :8080]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *workers != "" && *index == "" {
		fmt.Fprintln(os.Stderr, "skinnymined: -workers requires -index (a sharded manifest)")
		os.Exit(2)
	}

	ix, err := openIndex(*index, *input, *sigma, *shards, *workers, skinnymine.DistributedConfig{
		WorkerTimeout: *workerTO,
		WorkerRetries: *workerTries,
		RetryBackoff:  *workerWait,
		HedgeAfter:    *workerHedge,
		ProbeInterval: *workerProbe,
	})
	if err != nil {
		fatal(err)
	}
	defer ix.Close()
	slog.Info("index ready", "graphs", ix.NumGraphs(), "sigma", ix.Sigma(),
		"shards", ix.Shards(), "materialized_levels", fmt.Sprint(ix.MaterializedLevels()))

	if *save != "" {
		if err := ix.WriteSnapshotFile(*save); err != nil {
			fatal(err)
		}
		slog.Info("snapshot saved", "path", *save)
	}

	srv, err := server.New(server.Config{
		Index: ix, MaxConcurrent: *maxConc, MaxLength: *maxLen,
		MaxBatch: *maxBatch, CacheSize: *cache, IndexConcurrency: *ixConc,
		NoMorph: *noMorph, NoFamily: *noFamily,
		Logger: slog.Default(), SlowQuery: *slowQuery, Pprof: *pprofOn,
		TraceStore: *traceKeep,
	})
	if err != nil {
		fatal(err)
	}
	serve(&http.Server{Addr: *addr, Handler: srv.Handler()}, *addr, *drain)
}

// setupLogger installs the process-wide structured logger per the
// -log-level and -log-format flags.
func setupLogger(level, format string) error {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return fmt.Errorf("bad -log-level %q (debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch format {
	case "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return fmt.Errorf("bad -log-format %q (text or json)", format)
	}
	slog.SetDefault(slog.New(h))
	return nil
}

// runWorker serves one shard snapshot file's Stage I candidate
// generation until SIGINT/SIGTERM.
func runWorker(path, addr string, drain time.Duration, pprofOn bool) {
	w, err := skinnymine.LoadShardWorkerFile(path)
	if err != nil {
		fatal(err)
	}
	w.SetLogger(slog.Default())
	slog.Info("worker ready", "shard_file", path, "graphs", w.NumGraphs(),
		"sigma", w.Sigma(), "crc", fmt.Sprintf("%08x", w.CRC()))
	var h http.Handler = w
	if pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", w)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		h = mux
	}
	serve(&http.Server{Addr: addr, Handler: h}, addr, drain)
}

// serve runs the HTTP server until SIGINT/SIGTERM, then drains.
func serve(hs *http.Server, addr string, drain time.Duration) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		slog.Info("serving", "addr", addr)
		done <- hs.ListenAndServe()
	}()

	select {
	case err := <-done:
		fatal(err) // bind failure or similar; ListenAndServe never returns nil here
	case <-ctx.Done():
	}
	slog.Info("shutting down", "drain", drain.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fatal(fmt.Errorf("shutdown: %w", err))
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	slog.Info("bye")
}

// openIndex loads a snapshot (plain or sharded, sniffed by magic) or
// builds the index — sharded when asked — from a graph file. A
// non-empty workerList turns a sharded manifest into a distributed
// coordinator over those workers.
func openIndex(snapshot, input string, sigma, shards int, workerList string, dcfg skinnymine.DistributedConfig) (*skinnymine.Index, error) {
	if snapshot != "" {
		if workerList != "" {
			dcfg.Workers = splitWorkers(workerList)
			ix, err := skinnymine.LoadDistributedIndexFile(snapshot, dcfg)
			if err != nil {
				return nil, err
			}
			slog.Info("loaded snapshot as distributed coordinator", "path", snapshot, "workers", len(dcfg.Workers))
			return ix, nil
		}
		ix, err := skinnymine.LoadIndexFile(snapshot)
		if err != nil {
			return nil, err
		}
		slog.Info("loaded snapshot", "path", snapshot)
		return ix, nil
	}
	f, err := os.Open(input)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	graphs, err := skinnymine.ReadGraphs(f)
	if err != nil {
		return nil, err
	}
	if len(graphs) == 0 {
		return nil, fmt.Errorf("no graphs in %s", input)
	}
	return skinnymine.BuildShardedIndex(graphs, sigma, shards)
}

// splitWorkers parses the -workers flag: comma-separated, whitespace
// tolerated, empties dropped.
func splitWorkers(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		if w = strings.TrimSpace(w); w != "" {
			out = append(out, w)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skinnymined:", err)
	os.Exit(1)
}
