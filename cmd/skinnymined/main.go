// Command skinnymined serves SkinnyMine requests over HTTP from one
// pre-computed index — the paper's direct mining deployment (Figure 2):
// pay Stage I once, answer many (l, δ) requests online.
//
// Start from a snapshot (written by `skinnymine -snapshot` or a prior
// `skinnymined -save`; sharded manifests are detected automatically):
//
//	skinnymined -index city.idx -addr :8080
//
// or build the index from a graph file — optionally sharded, optionally
// persisting it:
//
//	skinnymined -input city.txt -support 2 -shards 4 -save city.idx
//
// Endpoints: POST /v1/mine (Options JSON in, ResultJSON out),
// POST /v1/batch (N requests, deduplicated, one scheduling pass),
// GET /v1/backbones?l=N, GET /healthz, GET /metrics. Example requests:
//
//	curl -s localhost:8080/v1/mine -d '{"length":4,"delta":1}'
//	curl -s localhost:8080/v1/batch \
//	    -d '{"requests":[{"length":4,"delta":1},{"length":5,"delta":1}]}'
//
// # Distributed mining
//
// A sharded snapshot can also be served by a fleet: one worker process
// per shard file plus a coordinator that scatter/gathers Stage I
// candidate generation and runs the exact cross-shard merge locally.
//
//	skinnymined -worker city.idx.shard0-<crc> -addr :9001
//	skinnymined -worker city.idx.shard1-<crc> -addr :9002
//	skinnymined -index city.idx -workers localhost:9001,localhost:9002
//
// Worker addresses are positional — -workers lists shard 0's worker
// first — and every RPC is pinned to the manifest's shard checksum, so
// a miswired fleet fails loudly (409) instead of mining garbage. The
// coordinator retries transient worker failures with backoff, hedges
// stragglers (-worker-hedge-after), probes worker health in the
// background, and answers 503 — never a hang, never a partial result —
// when a shard stays unreachable past the retry budget. Output is
// byte-identical to serving the same snapshot in-process.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"skinnymine"
	"skinnymine/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		index    = flag.String("index", "", "load an index snapshot (plain or sharded manifest) instead of building one")
		input    = flag.String("input", "", "graph file (text format) to build the index from")
		sigma    = flag.Int("support", 2, "frequency threshold σ when building from -input")
		shards   = flag.Int("shards", 0, "shard the index built from -input across this many partitions (0/1: unsharded)")
		save     = flag.String("save", "", "write the index snapshot to this file after loading/building")
		maxConc  = flag.Int("max-concurrent", 0, "mining runs admitted at once (0: 2× CPUs)")
		maxLen   = flag.Int("max-length", 0, "largest diameter length a request may ask for (0: 64)")
		maxBatch = flag.Int("max-batch", 0, "requests accepted per /v1/batch call (0: 64, negative: disable the endpoint)")
		cache    = flag.Int("cache", 0, "result cache entries (0: 256, negative: disable)")
		ixConc   = flag.Int("index-concurrency", 0, "index worker pool for backbones materialization (>0: that many, <0: one per CPU, 0: leave the index as configured)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")

		worker      = flag.String("worker", "", "serve Stage I for ONE shard snapshot file (worker mode; pairs with a coordinator's -workers)")
		workers     = flag.String("workers", "", "comma-separated worker addresses, one per shard in manifest order; turns -index into a distributed coordinator")
		workerTO    = flag.Duration("worker-timeout", 0, "per-attempt worker RPC timeout (0: 30s)")
		workerTries = flag.Int("worker-retries", -1, "worker RPC re-attempts after a retryable failure (negative: 2)")
		workerWait  = flag.Duration("worker-backoff", 0, "wait before the first worker retry, doubling per retry (0: 100ms)")
		workerHedge = flag.Duration("worker-hedge-after", 0, "duplicate a worker RPC not answered within this long (0: no hedging)")
		workerProbe = flag.Duration("worker-probe", 5*time.Second, "worker health probe period (0: no probing)")
	)
	flag.Parse()

	if *worker != "" {
		if *index != "" || *input != "" || *workers != "" {
			fmt.Fprintln(os.Stderr, "usage: skinnymined -worker <shard file> [-addr :9001] (worker mode takes no -index/-input/-workers)")
			os.Exit(2)
		}
		runWorker(*worker, *addr, *drain)
		return
	}
	if (*index == "") == (*input == "") {
		fmt.Fprintln(os.Stderr, "usage: skinnymined (-index <snapshot> | -input <file> [-support σ] | -worker <shard file>) [-addr :8080]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *workers != "" && *index == "" {
		fmt.Fprintln(os.Stderr, "skinnymined: -workers requires -index (a sharded manifest)")
		os.Exit(2)
	}

	ix, err := openIndex(*index, *input, *sigma, *shards, *workers, skinnymine.DistributedConfig{
		WorkerTimeout: *workerTO,
		WorkerRetries: *workerTries,
		RetryBackoff:  *workerWait,
		HedgeAfter:    *workerHedge,
		ProbeInterval: *workerProbe,
	})
	if err != nil {
		fatal(err)
	}
	defer ix.Close()
	log.Printf("index ready: %d graph(s), σ=%d, %d shard(s), materialized levels %v",
		ix.NumGraphs(), ix.Sigma(), ix.Shards(), ix.MaterializedLevels())

	if *save != "" {
		if err := ix.WriteSnapshotFile(*save); err != nil {
			fatal(err)
		}
		log.Printf("snapshot saved to %s", *save)
	}

	srv, err := server.New(server.Config{
		Index: ix, MaxConcurrent: *maxConc, MaxLength: *maxLen,
		MaxBatch: *maxBatch, CacheSize: *cache, IndexConcurrency: *ixConc,
	})
	if err != nil {
		fatal(err)
	}
	serve(&http.Server{Addr: *addr, Handler: srv.Handler()}, *addr, *drain)
}

// runWorker serves one shard snapshot file's Stage I candidate
// generation until SIGINT/SIGTERM.
func runWorker(path, addr string, drain time.Duration) {
	w, err := skinnymine.LoadShardWorkerFile(path)
	if err != nil {
		fatal(err)
	}
	log.Printf("worker ready: shard file %s, %d graph(s), σ=%d, crc %08x", path, w.NumGraphs(), w.Sigma(), w.CRC())
	serve(&http.Server{Addr: addr, Handler: w}, addr, drain)
}

// serve runs the HTTP server until SIGINT/SIGTERM, then drains.
func serve(hs *http.Server, addr string, drain time.Duration) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", addr)
		done <- hs.ListenAndServe()
	}()

	select {
	case err := <-done:
		fatal(err) // bind failure or similar; ListenAndServe never returns nil here
	case <-ctx.Done():
	}
	log.Printf("shutting down (draining up to %v)", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fatal(fmt.Errorf("shutdown: %w", err))
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	log.Printf("bye")
}

// openIndex loads a snapshot (plain or sharded, sniffed by magic) or
// builds the index — sharded when asked — from a graph file. A
// non-empty workerList turns a sharded manifest into a distributed
// coordinator over those workers.
func openIndex(snapshot, input string, sigma, shards int, workerList string, dcfg skinnymine.DistributedConfig) (*skinnymine.Index, error) {
	if snapshot != "" {
		if workerList != "" {
			dcfg.Workers = splitWorkers(workerList)
			ix, err := skinnymine.LoadDistributedIndexFile(snapshot, dcfg)
			if err != nil {
				return nil, err
			}
			log.Printf("loaded snapshot %s as a distributed coordinator over %d worker(s)", snapshot, len(dcfg.Workers))
			return ix, nil
		}
		ix, err := skinnymine.LoadIndexFile(snapshot)
		if err != nil {
			return nil, err
		}
		log.Printf("loaded snapshot %s", snapshot)
		return ix, nil
	}
	f, err := os.Open(input)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	graphs, err := skinnymine.ReadGraphs(f)
	if err != nil {
		return nil, err
	}
	if len(graphs) == 0 {
		return nil, fmt.Errorf("no graphs in %s", input)
	}
	return skinnymine.BuildShardedIndex(graphs, sigma, shards)
}

// splitWorkers parses the -workers flag: comma-separated, whitespace
// tolerated, empties dropped.
func splitWorkers(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		if w = strings.TrimSpace(w); w != "" {
			out = append(out, w)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skinnymined:", err)
	os.Exit(1)
}
