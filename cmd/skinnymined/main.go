// Command skinnymined serves SkinnyMine requests over HTTP from one
// pre-computed index — the paper's direct mining deployment (Figure 2):
// pay Stage I once, answer many (l, δ) requests online.
//
// Start from a snapshot (written by `skinnymine -snapshot` or a prior
// `skinnymined -save`; sharded manifests are detected automatically):
//
//	skinnymined -index city.idx -addr :8080
//
// or build the index from a graph file — optionally sharded, optionally
// persisting it:
//
//	skinnymined -input city.txt -support 2 -shards 4 -save city.idx
//
// Endpoints: POST /v1/mine (Options JSON in, ResultJSON out),
// POST /v1/batch (N requests, deduplicated, one scheduling pass),
// GET /v1/backbones?l=N, GET /healthz, GET /metrics. Example requests:
//
//	curl -s localhost:8080/v1/mine -d '{"length":4,"delta":1}'
//	curl -s localhost:8080/v1/batch \
//	    -d '{"requests":[{"length":4,"delta":1},{"length":5,"delta":1}]}'
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"skinnymine"
	"skinnymine/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		index    = flag.String("index", "", "load an index snapshot (plain or sharded manifest) instead of building one")
		input    = flag.String("input", "", "graph file (text format) to build the index from")
		sigma    = flag.Int("support", 2, "frequency threshold σ when building from -input")
		shards   = flag.Int("shards", 0, "shard the index built from -input across this many partitions (0/1: unsharded)")
		save     = flag.String("save", "", "write the index snapshot to this file after loading/building")
		maxConc  = flag.Int("max-concurrent", 0, "mining runs admitted at once (0: 2× CPUs)")
		maxLen   = flag.Int("max-length", 0, "largest diameter length a request may ask for (0: 64)")
		maxBatch = flag.Int("max-batch", 0, "requests accepted per /v1/batch call (0: 64, negative: disable the endpoint)")
		cache    = flag.Int("cache", 0, "result cache entries (0: 256, negative: disable)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	)
	flag.Parse()
	if (*index == "") == (*input == "") {
		fmt.Fprintln(os.Stderr, "usage: skinnymined (-index <snapshot> | -input <file> [-support σ]) [-addr :8080]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	ix, err := openIndex(*index, *input, *sigma, *shards)
	if err != nil {
		fatal(err)
	}
	log.Printf("index ready: %d graph(s), σ=%d, %d shard(s), materialized levels %v",
		ix.NumGraphs(), ix.Sigma(), ix.Shards(), ix.MaterializedLevels())

	if *save != "" {
		if err := ix.WriteSnapshotFile(*save); err != nil {
			fatal(err)
		}
		log.Printf("snapshot saved to %s", *save)
	}

	srv, err := server.New(server.Config{Index: ix, MaxConcurrent: *maxConc, MaxLength: *maxLen, MaxBatch: *maxBatch, CacheSize: *cache})
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		done <- hs.ListenAndServe()
	}()

	select {
	case err := <-done:
		fatal(err) // bind failure or similar; ListenAndServe never returns nil here
	case <-ctx.Done():
	}
	log.Printf("shutting down (draining up to %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fatal(fmt.Errorf("shutdown: %w", err))
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	log.Printf("bye")
}

// openIndex loads a snapshot (plain or sharded, sniffed by magic) or
// builds the index — sharded when asked — from a graph file.
func openIndex(snapshot, input string, sigma, shards int) (*skinnymine.Index, error) {
	if snapshot != "" {
		ix, err := skinnymine.LoadIndexFile(snapshot)
		if err != nil {
			return nil, err
		}
		log.Printf("loaded snapshot %s", snapshot)
		return ix, nil
	}
	f, err := os.Open(input)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	graphs, err := skinnymine.ReadGraphs(f)
	if err != nil {
		return nil, err
	}
	if len(graphs) == 0 {
		return nil, fmt.Errorf("no graphs in %s", input)
	}
	return skinnymine.BuildShardedIndex(graphs, sigma, shards)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skinnymined:", err)
	os.Exit(1)
}
