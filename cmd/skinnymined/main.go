// Command skinnymined serves SkinnyMine requests over HTTP from one
// pre-computed DirectIndex — the paper's direct mining deployment
// (Figure 2): pay Stage I once, answer many (l, δ) requests online.
//
// Start from a snapshot (written by `skinnymine -snapshot` or a prior
// `skinnymined -save`):
//
//	skinnymined -index city.idx -addr :8080
//
// or build the index from a graph file, optionally persisting it:
//
//	skinnymined -input city.txt -support 2 -save city.idx
//
// Endpoints: POST /v1/mine (Options JSON in, ResultJSON out),
// GET /v1/backbones?l=N, GET /healthz, GET /metrics. Example request:
//
//	curl -s localhost:8080/v1/mine -d '{"length":4,"delta":1}'
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"skinnymine"
	"skinnymine/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		index   = flag.String("index", "", "load a DirectIndex snapshot instead of building one")
		input   = flag.String("input", "", "graph file (text format) to build the index from")
		sigma   = flag.Int("support", 2, "frequency threshold σ when building from -input")
		save    = flag.String("save", "", "write the index snapshot to this file after loading/building")
		maxConc = flag.Int("max-concurrent", 0, "mining runs admitted at once (0: 2× CPUs)")
		maxLen  = flag.Int("max-length", 0, "largest diameter length a request may ask for (0: 64)")
		cache   = flag.Int("cache", 0, "result cache entries (0: 256, negative: disable)")
		drain   = flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	)
	flag.Parse()
	if (*index == "") == (*input == "") {
		fmt.Fprintln(os.Stderr, "usage: skinnymined (-index <snapshot> | -input <file> [-support σ]) [-addr :8080]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	ix, err := openIndex(*index, *input, *sigma)
	if err != nil {
		fatal(err)
	}
	log.Printf("index ready: %d graph(s), σ=%d, materialized levels %v",
		ix.NumGraphs(), ix.Sigma(), ix.MaterializedLevels())

	if *save != "" {
		if err := ix.WriteSnapshotFile(*save); err != nil {
			fatal(err)
		}
		log.Printf("snapshot saved to %s", *save)
	}

	srv, err := server.New(server.Config{Index: ix, MaxConcurrent: *maxConc, MaxLength: *maxLen, CacheSize: *cache})
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		done <- hs.ListenAndServe()
	}()

	select {
	case err := <-done:
		fatal(err) // bind failure or similar; ListenAndServe never returns nil here
	case <-ctx.Done():
	}
	log.Printf("shutting down (draining up to %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fatal(fmt.Errorf("shutdown: %w", err))
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	log.Printf("bye")
}

// openIndex loads a snapshot or builds the index from a graph file.
func openIndex(snapshot, input string, sigma int) (*skinnymine.Index, error) {
	if snapshot != "" {
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ix, err := skinnymine.LoadIndex(f)
		if err != nil {
			return nil, err
		}
		log.Printf("loaded snapshot %s", snapshot)
		return ix, nil
	}
	f, err := os.Open(input)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	graphs, err := skinnymine.ReadGraphs(f)
	if err != nil {
		return nil, err
	}
	if len(graphs) == 0 {
		return nil, fmt.Errorf("no graphs in %s", input)
	}
	return skinnymine.BuildIndex(graphs, sigma)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skinnymined:", err)
	os.Exit(1)
}
