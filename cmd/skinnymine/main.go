// Command skinnymine mines l-long δ-skinny frequent patterns from a
// graph file in the repository's text format:
//
//	t # 0          (optional graph separators for databases)
//	v <id> <label>
//	e <u> <w>
//
// Example:
//
//	skinnymine -input graph.txt -support 2 -length 6 -delta 2
//
// Results can be constrained declaratively (-where, see the README's
// "Constraint language" section) and ranked (-topk / -topkby):
//
//	skinnymine -input graph.txt -length 6 -delta 2 \
//	    -where "contains(label='7') && !contains(label='0') && vertices<=10" \
//	    -topk 5 -topkby size
//
// Output is one line per pattern: support, diameter length, skinniness,
// sizes and the backbone label sequence.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"skinnymine"
)

func main() {
	var (
		input    = flag.String("input", "", "graph file (text format); '-' for stdin")
		sigma    = flag.Int("support", 2, "frequency threshold σ")
		length   = flag.Int("length", 4, "diameter length constraint l")
		minLen   = flag.Int("minlength", 0, "mine the band [minlength, length] (0: exactly length)")
		delta    = flag.Int("delta", 2, "skinniness bound δ (negative: unbounded)")
		maximal  = flag.Bool("maximal", false, "report only maximal patterns (greedy growth)")
		closed   = flag.Bool("closed", false, "report only closed patterns")
		perGraph = flag.Bool("transactions", false, "count support as graphs containing the pattern")
		limit    = flag.Int("max", 0, "stop after this many patterns (0: unlimited)")
		top      = flag.Int("top", 20, "print at most this many patterns, largest first")
		asJSON   = flag.Bool("json", false, "emit the full result as JSON")
		conc     = flag.Int("concurrency", 0, "mining workers (0: one per CPU, 1: sequential)")
		shards   = flag.Int("shards", 0, "partition the database across this many shards (0/1: unsharded; output is identical)")
		snapshot = flag.String("snapshot", "", "also write an index snapshot (for skinnymined -index) to this file; with -shards, a sharded manifest + per-shard files")
		where    = flag.String("where", "", "declarative pattern constraint, e.g. \"contains(label='7') && vertices<=8\"")
		topk     = flag.Int("topk", 0, "keep only the k best-ranked patterns (0: all); composes with -where")
		topkBy   = flag.String("topkby", "support", "ranking measure for -topk: support | skinniness | size")
		trace    = flag.Bool("trace", false, "print a per-stage span table to stderr after mining (stdout is unchanged)")
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "usage: skinnymine -input <file> [-support σ] [-length l] [-delta δ] [-where expr] [-topk k]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	// -topk composes with -where as the constraint language's result
	// clause; a topk() already present in -where makes the flag a
	// duplicate, which parsing reports. Parse once, up front: the same
	// *Constraint drives validation, mining and the display decision.
	whereSrc := *where
	if *topk > 0 {
		clause := fmt.Sprintf("topk(%d, by=%s)", *topk, *topkBy)
		if whereSrc == "" {
			whereSrc = clause
		} else {
			whereSrc = "(" + whereSrc + ") && " + clause
		}
	} else if *topkBy != "support" {
		// -topkby only rides on -topk; silently ignoring it would let
		// a forgotten -topk masquerade as a ranked run.
		fatal(fmt.Errorf("-topkby %s requires -topk", *topkBy))
	}
	var whereExpr *skinnymine.Constraint
	if whereSrc != "" {
		var err error
		if whereExpr, err = skinnymine.ParseConstraint(whereSrc); err != nil {
			fatal(err)
		}
	}

	in := os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	graphs, err := skinnymine.ReadGraphs(in)
	if err != nil {
		fatal(err)
	}
	if len(graphs) == 0 {
		fatal(fmt.Errorf("no graphs in %s", *input))
	}

	opt := skinnymine.Options{
		Support:     *sigma,
		Length:      *length,
		MinLength:   *minLen,
		Delta:       *delta,
		MaximalOnly: *maximal,
		ClosedOnly:  *closed,
		MaxPatterns: *limit,
		Concurrency: *conc,
		Shards:      *shards,
		WhereExpr:   whereExpr,
	}
	if *perGraph {
		opt.Measure = skinnymine.GraphCount
	}
	if *trace {
		opt.Trace = skinnymine.NewTrace()
	}
	// Same validation — and the same messages — as the library and the
	// serving daemon, before any mining work starts.
	if err := opt.Validate(); err != nil {
		fatal(err)
	}
	res, err := mine(graphs, opt, *snapshot)
	if err != nil {
		fatal(err)
	}
	if *trace {
		// Stderr, so -trace composes with -json: the machine-readable
		// stream on stdout stays byte-identical to an untraced run.
		printTrace(opt.Trace)
	}
	if *asJSON {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("# %d graph(s), %d pattern(s); DiamMine %v (%d paths), LevelGrow %v\n",
		len(graphs), len(res.Patterns), res.Stats.DiamMineTime,
		res.Stats.PathsMined, res.Stats.LevelGrowTime)
	ps := res.Patterns
	if !ranked(whereExpr) {
		// Ad-hoc display order for unranked results; a topk clause
		// already ordered (and truncated) the result itself.
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].Vertices() != ps[j].Vertices() {
				return ps[i].Vertices() > ps[j].Vertices()
			}
			return ps[i].Support() > ps[j].Support()
		})
	}
	for i, p := range ps {
		if i >= *top {
			fmt.Printf("# ... and %d more\n", len(ps)-*top)
			break
		}
		fmt.Printf("sup=%d l=%d δ=%d |V|=%d |E|=%d backbone=%s\n",
			p.Support(), p.DiameterLength(), p.Skinniness(),
			p.Vertices(), p.Edges(), strings.Join(p.Backbone(), "-"))
	}
}

// mine runs the request, optionally through an index whose state —
// including the levels this request materialized — is then persisted to
// snapshotPath for skinnymined to serve. With Options.Shards > 1 the
// index is sharded and the snapshot is a manifest plus per-shard files.
// Results are identical every way.
func mine(graphs []*skinnymine.Graph, opt skinnymine.Options, snapshotPath string) (*skinnymine.Result, error) {
	if snapshotPath == "" {
		return skinnymine.MineDB(graphs, opt)
	}
	ix, err := skinnymine.BuildShardedIndex(graphs, opt.Support, opt.Shards)
	if err != nil {
		return nil, err
	}
	res, err := ix.Mine(opt)
	if err != nil {
		return nil, err
	}
	return res, ix.WriteSnapshotFile(snapshotPath)
}

// printTrace renders the request's spans as an aligned table on
// stderr, attributes last, in completion order.
func printTrace(tr *skinnymine.Trace) {
	spans := tr.Spans()
	fmt.Fprintf(os.Stderr, "# trace: %d span(s)\n", len(spans))
	fmt.Fprintf(os.Stderr, "# %-22s %12s %12s  %s\n", "span", "start_ms", "dur_ms", "attrs")
	for _, s := range spans {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var attrs []string
		for _, k := range keys {
			attrs = append(attrs, fmt.Sprintf("%s=%v", k, s.Attrs[k]))
		}
		fmt.Fprintf(os.Stderr, "# %-22s %12.3f %12.3f  %s\n",
			s.Name, float64(s.StartUs)/1000, float64(s.DurationUs)/1000,
			strings.Join(attrs, " "))
	}
}

// ranked reports whether the request carries a topk result clause, in
// which case the mining result is already in ranking order.
func ranked(c *skinnymine.Constraint) bool {
	if c == nil {
		return false
	}
	_, _, ok := c.TopK()
	return ok
}

func fatal(err error) {
	msg := err.Error()
	if !strings.HasPrefix(msg, "skinnymine:") {
		msg = "skinnymine: " + msg
	}
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}
