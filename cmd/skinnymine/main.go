// Command skinnymine mines l-long δ-skinny frequent patterns from a
// graph file in the repository's text format:
//
//	t # 0          (optional graph separators for databases)
//	v <id> <label>
//	e <u> <w>
//
// Example:
//
//	skinnymine -input graph.txt -support 2 -length 6 -delta 2
//
// Output is one line per pattern: support, diameter length, skinniness,
// sizes and the backbone label sequence.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"skinnymine"
)

func main() {
	var (
		input    = flag.String("input", "", "graph file (text format); '-' for stdin")
		sigma    = flag.Int("support", 2, "frequency threshold σ")
		length   = flag.Int("length", 4, "diameter length constraint l")
		minLen   = flag.Int("minlength", 0, "mine the band [minlength, length] (0: exactly length)")
		delta    = flag.Int("delta", 2, "skinniness bound δ (negative: unbounded)")
		maximal  = flag.Bool("maximal", false, "report only maximal patterns (greedy growth)")
		closed   = flag.Bool("closed", false, "report only closed patterns")
		perGraph = flag.Bool("transactions", false, "count support as graphs containing the pattern")
		limit    = flag.Int("max", 0, "stop after this many patterns (0: unlimited)")
		top      = flag.Int("top", 20, "print at most this many patterns, largest first")
		asJSON   = flag.Bool("json", false, "emit the full result as JSON")
		conc     = flag.Int("concurrency", 0, "mining workers (0: one per CPU, 1: sequential)")
		snapshot = flag.String("snapshot", "", "also write a DirectIndex snapshot (for skinnymined -index) to this file")
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "usage: skinnymine -input <file> [-support σ] [-length l] [-delta δ]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	in := os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	graphs, err := skinnymine.ReadGraphs(in)
	if err != nil {
		fatal(err)
	}
	if len(graphs) == 0 {
		fatal(fmt.Errorf("no graphs in %s", *input))
	}

	opt := skinnymine.Options{
		Support:     *sigma,
		Length:      *length,
		MinLength:   *minLen,
		Delta:       *delta,
		MaximalOnly: *maximal,
		ClosedOnly:  *closed,
		MaxPatterns: *limit,
		Concurrency: *conc,
	}
	if *perGraph {
		opt.Measure = skinnymine.GraphCount
	}
	res, err := mine(graphs, opt, *snapshot)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("# %d graph(s), %d pattern(s); DiamMine %v (%d paths), LevelGrow %v\n",
		len(graphs), len(res.Patterns), res.Stats.DiamMineTime,
		res.Stats.PathsMined, res.Stats.LevelGrowTime)
	ps := res.Patterns
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Vertices() != ps[j].Vertices() {
			return ps[i].Vertices() > ps[j].Vertices()
		}
		return ps[i].Support() > ps[j].Support()
	})
	for i, p := range ps {
		if i >= *top {
			fmt.Printf("# ... and %d more\n", len(ps)-*top)
			break
		}
		fmt.Printf("sup=%d l=%d δ=%d |V|=%d |E|=%d backbone=%s\n",
			p.Support(), p.DiameterLength(), p.Skinniness(),
			p.Vertices(), p.Edges(), strings.Join(p.Backbone(), "-"))
	}
}

// mine runs the request, optionally through a DirectIndex whose state —
// including the levels this request materialized — is then persisted to
// snapshotPath for skinnymined to serve. Results are identical either way.
func mine(graphs []*skinnymine.Graph, opt skinnymine.Options, snapshotPath string) (*skinnymine.Result, error) {
	if snapshotPath == "" {
		return skinnymine.MineDB(graphs, opt)
	}
	ix, err := skinnymine.BuildIndex(graphs, opt.Support)
	if err != nil {
		return nil, err
	}
	res, err := ix.Mine(opt)
	if err != nil {
		return nil, err
	}
	return res, ix.WriteSnapshotFile(snapshotPath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skinnymine:", err)
	os.Exit(1)
}
