// Command skinnylint runs the repo's invariant-enforcing static
// analyzers (internal/lint) over a set of packages and exits non-zero
// on any finding. It is the gating CI companion to `go vet`: vet
// catches general Go mistakes, skinnylint rejects code shapes that
// violate this repo's documented invariants (deterministic output,
// no-trusted-allocation decoding, context propagation, atomic access
// discipline, allocation-free hot paths).
//
// Usage:
//
//	skinnylint [-analyzers a,b,...] [-list] [packages...]
//
// Packages default to ./... and accept any `go list` pattern. Each
// analyzer gates on the packages whose invariant it encodes (see
// -list); suppressions use //lint:allow <analyzer> <reason> on or
// directly above the flagged line, and the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"skinnymine/internal/lint"
)

func main() {
	listOnly := flag.Bool("list", false, "list the analyzers and the packages they gate on, then exit")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: skinnylint [flags] [packages...]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *listOnly {
		for _, a := range analyzers {
			scope := "all packages"
			if len(a.Packages) > 0 {
				scope = strings.Join(a.Packages, ", ")
			}
			fmt.Printf("%-14s %s\n%14s   gates on: %s\n", a.Name, a.Doc, "", scope)
		}
		return
	}
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var selected []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				selected = append(selected, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "skinnylint: unknown analyzer %q (see -list)\n", name)
			os.Exit(2)
		}
		analyzers = selected
	}

	patterns := flag.Args()
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skinnylint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers, true)
	wd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if wd != "" {
			if rel, ok := strings.CutPrefix(name, wd+string(os.PathSeparator)); ok {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "skinnylint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
