// Command skinnytop is a live terminal dashboard for a SkinnyMine
// fleet: it polls each target's /metrics (daemons) or
// /skinnymine/v1/info (workers), diffs the counters between rounds
// vmstat-style, and redraws one screen of rates — QPS, cache hit
// rate, admission wait, per-worker RPC health and latency — plus the
// latest traces from the always-on trace store.
//
//	skinnytop                             # watch http://localhost:8080
//	skinnytop :8080 :9001 :9002           # a coordinator and two workers
//	skinnytop -once :8080                 # one snapshot (rates over uptime), then exit
//	skinnytop -interval 5s :8080
//
// Targets may be bare host:port, :port, or full http:// URLs; each is
// classified by probing. It is stdlib-only, like everything else in
// the module, and reads only public endpoints — point it at any
// skinnymined you can curl.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"skinnymine"
	"skinnymine/internal/obs"
	"skinnymine/internal/server"
	"skinnymine/internal/shard"
)

func main() {
	var (
		once     = flag.Bool("once", false, "print one snapshot (rates computed over server uptime) and exit")
		interval = flag.Duration("interval", 2*time.Second, "poll and redraw period")
		traces   = flag.Int("traces", 5, "latest traces shown per daemon (0: hide the trace panel)")
	)
	flag.Parse()
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"http://localhost:8080"}
	}
	for i, t := range targets {
		targets[i] = normalize(t)
	}
	client := &http.Client{Timeout: 3 * time.Second}
	d := &dash{client: client, targets: targets, traces: *traces, prev: make(map[string]sample)}

	if *once {
		d.round(os.Stdout, false)
		return
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	d.round(os.Stdout, true)
	for {
		select {
		case <-stop:
			fmt.Println()
			return
		case <-tick.C:
			d.round(os.Stdout, true)
		}
	}
}

// normalize accepts ":8080", "host:9001" or a full URL.
func normalize(t string) string {
	if strings.HasPrefix(t, "http://") || strings.HasPrefix(t, "https://") {
		return strings.TrimRight(t, "/")
	}
	if strings.HasPrefix(t, ":") {
		return "http://localhost" + t
	}
	return "http://" + t
}

// sample is one poll of one target: exactly one of metrics/info is
// set for a reachable target, classifying it as daemon or worker.
type sample struct {
	at      time.Time
	metrics *server.MetricsSnapshot
	info    *shard.WorkerInfo
	traces  []server.TraceSummary
	err     error
}

type dash struct {
	client  *http.Client
	targets []string
	traces  int
	prev    map[string]sample
	rounds  int
}

// round polls every target, renders one screen, and stores the
// samples as the baseline the next round diffs against.
func (d *dash) round(w *os.File, clear bool) {
	now := make(map[string]sample, len(d.targets))
	for _, t := range d.targets {
		now[t] = d.poll(t)
	}
	var b strings.Builder
	if clear {
		b.WriteString("\x1b[2J\x1b[H") // clear screen, home cursor
	}
	fmt.Fprintf(&b, "skinnytop  %s  (%d targets)\n", time.Now().Format("15:04:05"), len(d.targets))
	for _, t := range d.targets {
		d.renderTarget(&b, t, now[t], d.prev[t])
	}
	w.WriteString(b.String())
	d.prev = now
	d.rounds++
}

// poll classifies one target by probing /metrics first (daemon), then
// the worker info endpoint.
func (d *dash) poll(target string) sample {
	s := sample{at: time.Now()}
	var m server.MetricsSnapshot
	if err := d.getJSON(target+"/metrics", &m); err == nil {
		s.metrics = &m
		if d.traces > 0 {
			var tl server.TraceListResponse
			if err := d.getJSON(target+"/debug/traces", &tl); err == nil {
				if len(tl.Traces) > d.traces {
					tl.Traces = tl.Traces[:d.traces]
				}
				s.traces = tl.Traces
			}
		}
		return s
	}
	var info shard.WorkerInfo
	if err := d.getJSON(target+shard.WorkerInfoPath, &info); err == nil {
		s.info = &info
		return s
	} else {
		s.err = err
	}
	return s
}

func (d *dash) getJSON(url string, v any) error {
	resp, err := d.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (d *dash) renderTarget(b *strings.Builder, target string, cur, prev sample) {
	fmt.Fprintf(b, "\n%s", target)
	switch {
	case cur.err != nil:
		fmt.Fprintf(b, "  [unreachable: %v]\n", cur.err)
	case cur.info != nil:
		i := cur.info
		fmt.Fprintf(b, "  [worker]\n")
		fmt.Fprintf(b, "  shard %d  crc %s  graphs %d  sigma %d  up %s  %s %s\n",
			i.Shard, i.CRC, i.Graphs, i.Sigma, fmtDur(i.UptimeSeconds), i.GoVersion, i.Revision)
	case cur.metrics != nil:
		d.renderDaemon(b, cur, prev)
	}
}

// renderDaemon is the coordinator panel: request and mine rates from
// counter deltas against the previous round — or, on the first round
// and under -once, against zero over the server's uptime, which turns
// the cumulative counters into lifetime averages.
func (d *dash) renderDaemon(b *strings.Builder, cur, prev sample) {
	m := cur.metrics
	var base server.MetricsSnapshot
	dt := m.UptimeSeconds // lifetime window when no previous sample
	if prev.metrics != nil {
		base = *prev.metrics
		dt = cur.at.Sub(prev.at).Seconds()
	}
	if dt <= 0 {
		dt = 1
	}
	fmt.Fprintf(b, "  [daemon]  up %s\n", fmtDur(m.UptimeSeconds))

	var reqs, prevReqs int64
	for _, v := range m.Requests {
		reqs += v
	}
	for _, v := range base.Requests {
		prevReqs += v
	}
	hits := m.Mine.CacheHits - base.Mine.CacheHits
	misses := m.Mine.CacheMisses - base.Mine.CacheMisses
	coal := m.Mine.Coalesced - base.Mine.Coalesced
	hitRate := 0.0
	if tracked := hits + misses + coal; tracked > 0 {
		hitRate = 100 * float64(hits) / float64(tracked)
	}
	tw := tabwriter.NewWriter(b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  qps\truns/s\thit%%\tcoalesced/s\terr/s\tin-flight\tmine p50\tmine p95\tadm wait\tslowq\n")
	fmt.Fprintf(tw, "  %.1f\t%.1f\t%.0f\t%.1f\t%.1f\t%d\t%s\t%s\t%s\t%d\n",
		float64(reqs-prevReqs)/dt,
		float64(m.Mine.Runs-base.Mine.Runs)/dt,
		hitRate,
		float64(coal)/dt,
		float64(m.Mine.Errors-base.Mine.Errors)/dt,
		m.Mine.InFlight,
		fmtMs(quantile(base.Mine.LatencyMs, m.Mine.LatencyMs, 0.50)),
		fmtMs(quantile(base.Mine.LatencyMs, m.Mine.LatencyMs, 0.95)),
		fmtMs(avgDelta(base.AdmissionWaitMs, m.AdmissionWaitMs)),
		m.Mine.SlowQueries,
	)
	tw.Flush()

	if len(m.Workers) > 0 {
		tw = tabwriter.NewWriter(b, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  worker\tshard\thealth\trpc/s\tretry/s\thedge/s\terr/s\trpc p95\n")
		for i, ws := range m.Workers {
			var bw struct {
				Requests, Retries, Hedges, Errors int64
				Latency                           obs.HistogramSnapshot
			}
			if prev.metrics != nil && i < len(base.Workers) && base.Workers[i].Addr == ws.Addr {
				p := base.Workers[i]
				bw.Requests, bw.Retries, bw.Hedges, bw.Errors = p.Requests, p.Retries, p.Hedges, p.Errors
				bw.Latency = toHist(p.Latency)
			}
			health := "up"
			if !ws.Healthy {
				health = "DOWN"
			}
			fmt.Fprintf(tw, "  %s\t%d\t%s\t%.1f\t%.1f\t%.1f\t%.1f\t%s\n",
				ws.Addr, ws.Shard, health,
				float64(ws.Requests-bw.Requests)/dt,
				float64(ws.Retries-bw.Retries)/dt,
				float64(ws.Hedges-bw.Hedges)/dt,
				float64(ws.Errors-bw.Errors)/dt,
				fmtMs(quantile(bw.Latency, toHist(ws.Latency), 0.95)))
		}
		tw.Flush()
	}

	if len(cur.traces) > 0 {
		tw = tabwriter.NewWriter(b, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  trace\tendpoint\tsource\tms\tworkers\tage\n")
		for _, tr := range cur.traces {
			fmt.Fprintf(tw, "  %s\t%s\t%s\t%.1f\t%d\t%s\n",
				tr.ID, tr.Endpoint, tr.Source, tr.DurationMs, tr.Workers,
				fmtDur(time.Since(tr.Start).Seconds()))
		}
		tw.Flush()
	}
}

// toHist bridges the public wire form of a latency histogram to the
// internal one so both feed the same quantile math.
func toHist(l skinnymine.LatencySnapshot) obs.HistogramSnapshot {
	out := obs.HistogramSnapshot{Count: l.Count, SumMs: l.SumMs, MaxMs: l.MaxMs,
		Buckets: make([]obs.HistogramBucket, len(l.Buckets))}
	for i, b := range l.Buckets {
		out.Buckets[i] = obs.HistogramBucket{LeMs: b.LeMs, Count: b.Count}
	}
	return out
}

// quantile estimates the q-quantile of the samples that landed
// between two cumulative snapshots, reading the delta of each le
// bucket; the answer is the upper bound of the bucket the rank falls
// in (the resolution the fixed boundaries give us). Returns 0 when no
// samples landed in the window.
func quantile(prev, cur obs.HistogramSnapshot, q float64) float64 {
	total := cur.Count - prev.Count
	if total <= 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	for i, bkt := range cur.Buckets {
		c := bkt.Count
		if i < len(prev.Buckets) {
			c -= prev.Buckets[i].Count
		}
		if c >= rank {
			return bkt.LeMs
		}
	}
	return cur.MaxMs
}

// avgDelta is the mean of samples between two cumulative snapshots.
func avgDelta(prev, cur obs.HistogramSnapshot) float64 {
	n := cur.Count - prev.Count
	if n <= 0 {
		return 0
	}
	return (cur.SumMs - prev.SumMs) / float64(n)
}

func fmtMs(ms float64) string {
	switch {
	case ms <= 0:
		return "-"
	case ms < 10:
		return fmt.Sprintf("%.2fms", ms)
	case ms < 1000:
		return fmt.Sprintf("%.0fms", ms)
	default:
		return fmt.Sprintf("%.1fs", ms/1000)
	}
}

func fmtDur(sec float64) string {
	d := time.Duration(sec * float64(time.Second))
	switch {
	case d < time.Minute:
		return fmt.Sprintf("%.0fs", d.Seconds())
	case d < time.Hour:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	}
}
