// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md §4 for the experiment index). Each figure prints as a text
// table: histograms for the distribution figures, X/Y columns for the
// runtime curves.
//
//	experiments -exp all                 run everything (scaled down)
//	experiments -exp fig13 -scale 0.2    one experiment, bigger inputs
//	experiments -exp fig20 -full         paper-scale parameters
//
// Absolute times will differ from the paper's 2013 C++ testbed; the
// shapes (who wins, where curves bend) are the reproduction target and
// are recorded against the paper in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"skinnymine/internal/exp"
	"skinnymine/internal/synth"
)

func main() {
	var (
		which = flag.String("exp", "all", "experiment: tables12|fig4..fig8|table3|fig9|fig10|fig11|fig12|fig13|fig14|fig16|fig18|fig20|dblp|weibo|all")
		seed  = flag.Int64("seed", 1, "random seed")
		scale = flag.Float64("scale", 0.1, "graph size scale (1.0 = paper scale)")
		full  = flag.Bool("full", false, "shorthand for -scale 1.0")
		conc  = flag.Int("concurrency", 1, "SkinnyMine mining workers (1: the paper's sequential algorithm, for fair single-threaded baseline comparisons; 0: one per CPU)")
	)
	flag.Parse()
	if *conc <= 0 {
		*conc = runtime.GOMAXPROCS(0)
	}
	cfg := exp.Config{Seed: *seed, Scale: *scale, Concurrency: *conc}
	if *full {
		cfg.Scale = 1.0
	}

	run := func(name string, fn func(exp.Config) error) {
		if *which != "all" && *which != name {
			return
		}
		if err := fn(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("tables12", tables12)
	for gid := 1; gid <= 5; gid++ {
		gid := gid
		run(fmt.Sprintf("fig%d", 3+gid), func(c exp.Config) error { return figDistribution(c, gid) })
	}
	run("table3", table3)
	run("fig9", func(c exp.Config) error { return figTransaction(c, false) })
	run("fig10", func(c exp.Config) error { return figTransaction(c, true) })
	run("fig11", func(c exp.Config) error { return figSeries(c, "Figure 11: runtime vs MoSS (s)", "|V|", exp.RunVsMoSS) })
	run("fig12", func(c exp.Config) error {
		return figSeries(c, "Figure 12: runtime vs SUBDUE (s)", "|V|", exp.RunVsSUBDUE)
	})
	run("fig13", func(c exp.Config) error {
		return figSeries(c, "Figure 13: runtime vs SpiderMine (s)", "|V|", exp.RunVsSpiderMine)
	})
	run("fig14", fig1415)
	run("fig16", fig1617)
	run("fig18", fig1819)
	run("fig20", fig20)
	run("dblp", dblp)
	run("weibo", weibo)
}

func tables12(cfg exp.Config) error {
	t := &exp.Table{
		Title:  "Tables 1-2: synthetic data settings",
		Header: []string{"GID", "|V|", "f", "deg", "|VL|", "Ld", "Ls", "n", "|VS|", "Sd", "Ss"},
	}
	for _, s := range synth.GIDSettings {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(s.GID), fmt.Sprint(s.V), fmt.Sprint(s.F), fmt.Sprint(s.Deg),
			fmt.Sprint(s.VL), fmt.Sprint(s.Ld), fmt.Sprint(s.Ls), fmt.Sprint(s.N),
			fmt.Sprint(s.VS), fmt.Sprint(s.Sd), fmt.Sprint(s.Ss),
		})
	}
	t.Render(os.Stdout)
	return nil
}

func figDistribution(cfg exp.Config, gid int) error {
	res, err := exp.RunPatternDistribution(cfg, gid)
	if err != nil {
		return err
	}
	t := exp.HistTable(fmt.Sprintf("Figure %d: pattern-size distribution, GID %d", 3+gid, gid), res.Hists)
	t.Render(os.Stdout)
	fmt.Print("runtimes:")
	for _, a := range []string{"SkinnyMine", "SpiderMine", "SUBDUE", "SEuS", "MoSS"} {
		fmt.Printf(" %s=%.3fs", a, res.Runtimes[a].Seconds())
	}
	fmt.Println()
	return nil
}

func table3(cfg exp.Config) error {
	rows, err := exp.RunSkinninessLadder(cfg)
	if err != nil {
		return err
	}
	t := &exp.Table{
		Title:  "Table 3: skinniness ladder (SkinnyMine recovery vs SpiderMine coverage)",
		Header: []string{"PID", "|V|", "Diameter", "SkinnyMine", "SpiderMine coverage"},
	}
	for _, r := range rows {
		hit := "-"
		if r.SkinnyHit {
			hit = "FOUND"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.PID), fmt.Sprint(r.V), fmt.Sprint(r.Diam),
			hit, fmt.Sprintf("%.0f%%", r.SpiderBest*100),
		})
	}
	t.Render(os.Stdout)
	return nil
}

func figTransaction(cfg exp.Config, extraSmall bool) error {
	hists, err := exp.RunTransaction(cfg, extraSmall)
	if err != nil {
		return err
	}
	name := "Figure 9: transaction setting (fewer small patterns)"
	if extraSmall {
		name = "Figure 10: transaction setting (more small patterns)"
	}
	exp.HistTable(name, hists).Render(os.Stdout)
	return nil
}

func figSeries(cfg exp.Config, title, xLabel string, fn func(exp.Config) ([]exp.Series, error)) error {
	series, err := fn(cfg)
	if err != nil {
		return err
	}
	exp.SeriesTable(title, xLabel, series).Render(os.Stdout)
	return nil
}

func fig1415(cfg exp.Config) error {
	pts, err := exp.RunScalability(cfg)
	if err != nil {
		return err
	}
	t := &exp.Table{
		Title:  "Figures 14-15: scalability (per-stage runtime, pattern count)",
		Header: []string{"|V|", "DiamMine (s)", "LevelGrow (s)", "#patterns"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.V), fmt.Sprintf("%.3f", p.DiamMine.Seconds()),
			fmt.Sprintf("%.3f", p.LevelGrow.Seconds()), fmt.Sprint(p.NumPattern),
		})
	}
	t.Render(os.Stdout)
	return nil
}

func fig1617(cfg exp.Config) error {
	pts, err := exp.RunDiameterConstraint(cfg, 18)
	if err != nil {
		return err
	}
	t := &exp.Table{
		Title:  "Figures 16-17: DiamMine / LevelGrow vs diameter constraint l",
		Header: []string{"l", "DiamMine (s)", "#paths", "LevelGrow (s)", "#patterns"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.L), fmt.Sprintf("%.3f", p.DiamMine.Seconds()), fmt.Sprint(p.NumPaths),
			fmt.Sprintf("%.3f", p.LevelGrow.Seconds()), fmt.Sprint(p.NumPattern),
		})
	}
	t.Render(os.Stdout)
	return nil
}

func fig1819(cfg exp.Config) error {
	pts, err := exp.RunSkinninessConstraint(cfg, 6)
	if err != nil {
		return err
	}
	t := &exp.Table{
		Title:  "Figures 18-19: LevelGrow vs skinniness bound δ",
		Header: []string{"δ", "LevelGrow (s)", "#patterns", "largest |E|"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.Delta), fmt.Sprintf("%.3f", p.LevelGrow.Seconds()),
			fmt.Sprint(p.NumPattern), fmt.Sprint(p.MaxEdges),
		})
	}
	t.Render(os.Stdout)
	return nil
}

func fig20(cfg exp.Config) error {
	t, err := exp.RunRuntimeTable(cfg)
	if err != nil {
		return err
	}
	t.Render(os.Stdout)
	return nil
}

func dblp(cfg exp.Config) error {
	res, err := exp.RunDBLP(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("== DBLP (Figures 21-22 analogue) ==\n")
	fmt.Printf("%d author timelines, %d patterns, longest span %d, %.2fs\n",
		res.Graphs, res.Patterns, res.LongestDiam, res.Runtime.Seconds())
	for _, ex := range res.Examples {
		fmt.Println(" ", ex)
	}
	return nil
}

func weibo(cfg exp.Config) error {
	res, err := exp.RunWeibo(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("== Weibo (Figures 23-24 analogue) ==\n")
	fmt.Printf("%d conversations, %d patterns, longest chain %d, %.2fs\n",
		res.Graphs, res.Patterns, res.LongestDiam, res.Runtime.Seconds())
	for _, ex := range res.Examples {
		fmt.Println(" ", ex)
	}
	return nil
}
