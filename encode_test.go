package skinnymine

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteJSONRoundtrip(t *testing.T) {
	g := buildTrajectoryGraph(t)
	res, err := Mine(g, Options{Support: 2, Length: 4, Delta: 1, MaximalOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed ResultJSON
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed.Patterns) != len(res.Patterns) {
		t.Fatalf("pattern count %d, want %d", len(parsed.Patterns), len(res.Patterns))
	}
	for i, pj := range parsed.Patterns {
		p := res.Patterns[i]
		if pj.Support != p.Support() || pj.DiameterLength != p.DiameterLength() {
			t.Error("pattern metadata mismatch")
		}
		if len(pj.Labels) != p.Vertices() || len(pj.Edges) != p.Edges() {
			t.Error("pattern structure mismatch")
		}
		if len(pj.Backbone) != pj.DiameterLength+1 {
			t.Error("backbone length mismatch")
		}
	}
	if parsed.Stats.PathsMined == 0 {
		t.Error("stats missing")
	}
}

// TestStatsJSONCarriesAllCounters checks the wire form exposes every
// core.Stats search counter under stable field names.
func TestStatsJSONCarriesAllCounters(t *testing.T) {
	g := buildTrajectoryGraph(t)
	res, err := Mine(g, Options{Support: 2, Length: 4, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := res.ToJSON()
	if out.Stats.PathsMined != res.Stats.PathsMined ||
		out.Stats.ExtensionsTried != res.Stats.ExtensionsTried ||
		out.Stats.Generated != res.Stats.Generated ||
		out.Stats.Duplicates != res.Stats.Duplicates ||
		out.Stats.ConstraintRejects != res.Stats.ConstraintRejects ||
		out.Stats.FrequencyRejects != res.Stats.FrequencyRejects ||
		out.Stats.CheckMismatches != res.Stats.CheckMismatches ||
		out.Stats.OutputInvalid != res.Stats.OutputInvalid {
		t.Errorf("StatsJSON %+v does not mirror core.Stats %+v", out.Stats, res.Stats)
	}
	if out.Stats.ExtensionsTried == 0 {
		t.Error("mining should have tried extensions")
	}

	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Stats map[string]json.RawMessage `json:"stats"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"diammine_ms", "levelgrow_ms", "paths_mined", "extensions_tried",
		"generated", "duplicates", "constraint_rejects", "frequency_rejects",
		"check_mismatches", "output_invalid",
	} {
		if _, ok := doc.Stats[key]; !ok {
			t.Errorf("stats JSON is missing field %q", key)
		}
	}
}

func TestPatternToJSONLabels(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("alpha")
	b := g.AddVertex("beta")
	c := g.AddVertex("gamma")
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddEdge(a, b))
	must(g.AddEdge(b, c))
	res, err := Mine(g, Options{Support: 1, Length: 2, Delta: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 1 {
		t.Fatalf("got %d patterns", len(res.Patterns))
	}
	pj := res.Patterns[0].ToJSON()
	if pj.Labels[0] != "alpha" && pj.Labels[0] != "gamma" {
		t.Errorf("backbone head label %q", pj.Labels[0])
	}
}
