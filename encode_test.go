package skinnymine

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteJSONRoundtrip(t *testing.T) {
	g := buildTrajectoryGraph(t)
	res, err := Mine(g, Options{Support: 2, Length: 4, Delta: 1, MaximalOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed ResultJSON
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed.Patterns) != len(res.Patterns) {
		t.Fatalf("pattern count %d, want %d", len(parsed.Patterns), len(res.Patterns))
	}
	for i, pj := range parsed.Patterns {
		p := res.Patterns[i]
		if pj.Support != p.Support() || pj.DiameterLength != p.DiameterLength() {
			t.Error("pattern metadata mismatch")
		}
		if len(pj.Labels) != p.Vertices() || len(pj.Edges) != p.Edges() {
			t.Error("pattern structure mismatch")
		}
		if len(pj.Backbone) != pj.DiameterLength+1 {
			t.Error("backbone length mismatch")
		}
	}
	if parsed.Stats.PathsMined == 0 {
		t.Error("stats missing")
	}
}

func TestPatternToJSONLabels(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("alpha")
	b := g.AddVertex("beta")
	c := g.AddVertex("gamma")
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddEdge(a, b))
	must(g.AddEdge(b, c))
	res, err := Mine(g, Options{Support: 1, Length: 2, Delta: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 1 {
		t.Fatalf("got %d patterns", len(res.Patterns))
	}
	pj := res.Patterns[0].ToJSON()
	if pj.Labels[0] != "alpha" && pj.Labels[0] != "gamma" {
		t.Errorf("backbone head label %q", pj.Labels[0])
	}
}
