package skinnymine

import (
	"encoding/json"
	"io"
)

// PatternJSON is the serialized form of a mined pattern. Vertices 0..l
// are the canonical diameter in order; Edges reference vertex indices.
type PatternJSON struct {
	Support        int        `json:"support"`
	DiameterLength int        `json:"diameter_length"`
	Skinniness     int        `json:"skinniness"`
	Labels         []string   `json:"labels"`
	Edges          [][2]int32 `json:"edges"`
	Backbone       []string   `json:"backbone"`
}

// ToJSON converts the pattern into its serializable form.
func (p *Pattern) ToJSON() PatternJSON {
	labels := make([]string, p.Vertices())
	for v := range labels {
		labels[v] = p.VertexLabel(VertexID(v))
	}
	edges := make([][2]int32, 0, p.Edges())
	for _, e := range p.EdgeList() {
		edges = append(edges, [2]int32{int32(e[0]), int32(e[1])})
	}
	return PatternJSON{
		Support:        p.Support(),
		DiameterLength: p.DiameterLength(),
		Skinniness:     p.Skinniness(),
		Labels:         labels,
		Edges:          edges,
		Backbone:       p.Backbone(),
	}
}

// ResultJSON is the serialized form of a mining result — the wire format
// both the CLI's -json output and the serving daemon's /v1/mine
// responses use.
type ResultJSON struct {
	Patterns []PatternJSON `json:"patterns"`
	Stats    StatsJSON     `json:"stats"`
}

// StatsJSON carries the full core.Stats search counters plus the stage
// timings. Timings are wall-clock and vary run to run; every counter is
// deterministic for a given request and worker count.
type StatsJSON struct {
	DiamMineMillis    float64 `json:"diammine_ms"`
	LevelGrowMillis   float64 `json:"levelgrow_ms"`
	PathsMined        int     `json:"paths_mined"`
	ExtensionsTried   int     `json:"extensions_tried"`
	Generated         int     `json:"generated"`
	Duplicates        int     `json:"duplicates"`
	ConstraintRejects [3]int  `json:"constraint_rejects"`
	FrequencyRejects  int     `json:"frequency_rejects"`
	CheckMismatches   int     `json:"check_mismatches"`
	OutputInvalid     int     `json:"output_invalid"`
	// PushdownRejects counts candidates (Stage I join candidates and
	// seeds, Stage II patterns with their ungrown subtrees) cut by
	// Where-constraint pushdown; OutputFilterRejects counts patterns
	// dropped by the per-pattern output check.
	PushdownRejects     int `json:"pushdown_rejects"`
	OutputFilterRejects int `json:"output_filter_rejects"`
}

// ToJSON converts the result into its serializable form.
func (r *Result) ToJSON() ResultJSON {
	out := ResultJSON{
		Stats: StatsJSON{
			DiamMineMillis:      float64(r.Stats.DiamMineTime.Microseconds()) / 1000,
			LevelGrowMillis:     float64(r.Stats.LevelGrowTime.Microseconds()) / 1000,
			PathsMined:          r.Stats.PathsMined,
			ExtensionsTried:     r.Stats.ExtensionsTried,
			Generated:           r.Stats.Generated,
			Duplicates:          r.Stats.Duplicates,
			ConstraintRejects:   r.Stats.ConstraintRejects,
			FrequencyRejects:    r.Stats.FrequencyRejects,
			CheckMismatches:     r.Stats.CheckMismatches,
			OutputInvalid:       r.Stats.OutputInvalid,
			PushdownRejects:     r.Stats.PushdownRejects,
			OutputFilterRejects: r.Stats.OutputFilterRejects,
		},
	}
	for _, p := range r.Patterns {
		out.Patterns = append(out.Patterns, p.ToJSON())
	}
	return out
}

// WriteJSON serializes the result as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.ToJSON())
}
