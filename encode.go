package skinnymine

import (
	"encoding/json"
	"io"
)

// PatternJSON is the serialized form of a mined pattern. Vertices 0..l
// are the canonical diameter in order; Edges reference vertex indices.
type PatternJSON struct {
	Support        int        `json:"support"`
	DiameterLength int        `json:"diameter_length"`
	Skinniness     int        `json:"skinniness"`
	Labels         []string   `json:"labels"`
	Edges          [][2]int32 `json:"edges"`
	Backbone       []string   `json:"backbone"`
}

// ToJSON converts the pattern into its serializable form.
func (p *Pattern) ToJSON() PatternJSON {
	labels := make([]string, p.Vertices())
	for v := range labels {
		labels[v] = p.VertexLabel(VertexID(v))
	}
	edges := make([][2]int32, 0, p.Edges())
	for _, e := range p.EdgeList() {
		edges = append(edges, [2]int32{int32(e[0]), int32(e[1])})
	}
	return PatternJSON{
		Support:        p.Support(),
		DiameterLength: p.DiameterLength(),
		Skinniness:     p.Skinniness(),
		Labels:         labels,
		Edges:          edges,
		Backbone:       p.Backbone(),
	}
}

// ResultJSON is the serialized form of a mining result.
type ResultJSON struct {
	Patterns []PatternJSON `json:"patterns"`
	Stats    StatsJSON     `json:"stats"`
}

// StatsJSON carries the headline mining statistics.
type StatsJSON struct {
	DiamMineMillis  float64 `json:"diammine_ms"`
	LevelGrowMillis float64 `json:"levelgrow_ms"`
	PathsMined      int     `json:"paths_mined"`
	Generated       int     `json:"generated"`
	Duplicates      int     `json:"duplicates"`
}

// WriteJSON serializes the result as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	out := ResultJSON{
		Stats: StatsJSON{
			DiamMineMillis:  float64(r.Stats.DiamMineTime.Microseconds()) / 1000,
			LevelGrowMillis: float64(r.Stats.LevelGrowTime.Microseconds()) / 1000,
			PathsMined:      r.Stats.PathsMined,
			Generated:       r.Stats.Generated,
			Duplicates:      r.Stats.Duplicates,
		},
	}
	for _, p := range r.Patterns {
		out.Patterns = append(out.Patterns, p.ToJSON())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
