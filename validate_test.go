package skinnymine

import (
	"errors"
	"strings"
	"testing"
)

func validOptions() Options {
	return Options{Support: 2, Length: 4, Delta: 2}
}

func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Options)
		want   error
	}{
		{"zero support", func(o *Options) { o.Support = 0 }, ErrSupport},
		{"negative support", func(o *Options) { o.Support = -3 }, ErrSupport},
		{"zero length", func(o *Options) { o.Length = 0 }, ErrLength},
		{"minlength above length", func(o *Options) { o.MinLength = 9 }, ErrMinLength},
		{"negative minlength", func(o *Options) { o.MinLength = -1 }, ErrMinLength},
		{"bad measure", func(o *Options) { o.Measure = SupportMeasure(7) }, ErrMeasure},
		{"negative max patterns", func(o *Options) { o.MaxPatterns = -1 }, ErrMaxPatterns},
		{"unparsable where", func(o *Options) { o.Where = "vertices<=" }, ErrWhere},
		{"unknown predicate", func(o *Options) { o.Where = "verts<=3" }, ErrWhere},
	}
	for _, tc := range cases {
		opt := validOptions()
		tc.mutate(&opt)
		err := opt.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want %v", tc.name, tc.want)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: Validate() = %v, not errors.Is %v", tc.name, err, tc.want)
		}
	}
}

func TestValidateAccepts(t *testing.T) {
	cases := []func(*Options){
		func(o *Options) {},
		func(o *Options) { o.Delta = -1 },
		func(o *Options) { o.MinLength = 2 },
		func(o *Options) { o.Measure = GraphCount },
		func(o *Options) { o.Where = "contains(label='A') && vertices<=8 && topk(3)" },
		func(o *Options) { o.Where = "  " }, // blank means unconstrained
	}
	for i, mutate := range cases {
		opt := validOptions()
		mutate(&opt)
		if err := opt.Validate(); err != nil {
			t.Errorf("case %d: Validate() = %v, want nil", i, err)
		}
	}
}

// TestMineRejectsLikeValidate pins that the mining entry points reject
// through Validate — same typed error, same message — so the library,
// CLI and daemon agree on what a bad request looks like.
func TestMineRejectsLikeValidate(t *testing.T) {
	g := buildTrajectoryGraph(t)
	opt := validOptions()
	opt.Length = 0
	wantMsg := opt.Validate().Error()

	if _, err := Mine(g, opt); err == nil || !errors.Is(err, ErrLength) || err.Error() != wantMsg {
		t.Errorf("Mine error = %v, want %q", err, wantMsg)
	}
	ix, err := BuildIndex([]*Graph{g}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Mine(opt); err == nil || !errors.Is(err, ErrLength) || err.Error() != wantMsg {
		t.Errorf("Index.Mine error = %v, want %q", err, wantMsg)
	}
	if !strings.Contains(wantMsg, "length must be >= 1") {
		t.Errorf("message %q lost the wire-format phrasing", wantMsg)
	}
}

func TestParseConstraintPublicSurface(t *testing.T) {
	c, err := ParseConstraint(" vertices <= 8 &&  topk( 5 , by = size ) ")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.String(), "vertices<=8 && topk(5, by=size)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	k, by, ok := c.TopK()
	if !ok || k != 5 || by != "size" {
		t.Errorf("TopK() = (%d, %q, %v), want (5, size, true)", k, by, ok)
	}
	if _, err := ParseConstraint("vertices<="); err == nil {
		t.Error("ParseConstraint accepted a truncated expression")
	}

	// WhereExpr takes precedence over Where.
	opt := validOptions()
	opt.WhereExpr = c
	opt.Where = "this does not parse"
	if err := opt.Validate(); err != nil {
		t.Errorf("Validate with WhereExpr set = %v, want nil", err)
	}
}
