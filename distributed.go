package skinnymine

import (
	"bytes"
	"context"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"skinnymine/internal/core"
	"skinnymine/internal/indexio"
	"skinnymine/internal/obs"
	"skinnymine/internal/shard"
)

// ErrUnavailable reports that a distributed index could not reach a
// shard worker within its full retry budget. Mining either answers
// completely or fails with this error — never a partial result — so
// callers (the serving daemon maps it to HTTP 503) can retry safely.
var ErrUnavailable = shard.ErrUnavailable

// DistributedConfig configures a distributed index: one worker address
// per shard of the snapshot manifest, positional — Workers[i] must be
// a skinnymined -worker process serving shard i's snapshot file. Every
// RPC is pinned to the manifest's shard checksum, so a miswired fleet
// fails permanently and loudly instead of mining garbage.
type DistributedConfig struct {
	// Workers holds one "host:port" (or "http://host:port") per shard.
	Workers []string
	// WorkerTimeout bounds each RPC attempt; the mining request's own
	// context deadline additionally applies. <= 0 means 30s.
	WorkerTimeout time.Duration
	// WorkerRetries is the number of re-attempts after a retryable
	// failure (connection refused, timeout, 5xx). < 0 means 2.
	WorkerRetries int
	// RetryBackoff is the wait before the first retry, doubling per
	// retry. <= 0 means 100ms.
	RetryBackoff time.Duration
	// HedgeAfter duplicates an RPC that has not answered within this
	// long, racing the straggler against a fresh attempt. <= 0 disables
	// hedging.
	HedgeAfter time.Duration
	// ProbeInterval is the period of the per-worker background health
	// probe. <= 0 disables probing.
	ProbeInterval time.Duration
}

// WorkerStatus is one shard worker's last observed health.
type WorkerStatus struct {
	Addr    string `json:"addr"`
	Shard   int    `json:"shard"`
	Healthy bool   `json:"healthy"`
	Err     string `json:"err,omitempty"`
}

// LoadDistributedIndexFile restores a sharded snapshot as a
// DISTRIBUTED index: cached levels serve locally exactly as with
// LoadIndexFile, but any new Stage I level materializes by
// scatter/gathering candidate generation across the configured HTTP
// workers, with the exact cross-shard support merge running on the
// coordinator. Output stays byte-identical to the in-process engines.
//
// Workers are not contacted at load time; a coordinator starts — and
// serves everything already cached — with the whole fleet down. A
// materialization that needs an unreachable shard fails with
// ErrUnavailable after the retry budget, leaving every cache as it was.
// Close the index to stop the health probes.
func LoadDistributedIndexFile(path string, cfg DistributedConfig) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	head := make([]byte, len(indexio.ManifestMagic))
	if _, err := io.ReadFull(f, head); err != nil {
		return nil, fmt.Errorf("skinnymine: reading snapshot magic: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if string(head) != indexio.ManifestMagic {
		return nil, fmt.Errorf("skinnymine: %s is not a sharded snapshot manifest; a distributed index loads the manifest WriteSnapshotFile writes for a sharded index", path)
	}
	parts, err := loadShardParts(f, path)
	if err != nil {
		return nil, err
	}
	crcs := make([]uint32, len(parts.m.Shards))
	for s, ref := range parts.m.Shards {
		crcs[s] = ref.CRC
	}
	eng, err := shard.RestoreRemote(parts.states, parts.assign, parts.m.Sigma, crcs, len(parts.lt.Names()), shard.RemoteConfig{
		Workers:       cfg.Workers,
		Timeout:       cfg.WorkerTimeout,
		Retries:       cfg.WorkerRetries,
		RetryBackoff:  cfg.RetryBackoff,
		HedgeAfter:    cfg.HedgeAfter,
		ProbeInterval: cfg.ProbeInterval,
	})
	if err != nil {
		return nil, err
	}
	return &Index{back: eng, eng: eng, lt: parts.lt}, nil
}

// MineContext is Mine with a caller-supplied context. A distributed
// index propagates the context's deadline and cancellation into every
// worker RPC; the in-process engines consult it between shard steps at
// most (an in-flight join is not interruptible). Mine is
// MineContext(context.Background(), opt).
func (ix *Index) MineContext(ctx context.Context, opt Options) (*Result, error) {
	if err := opt.stashWhere(); err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	copt, tk, err := opt.lower(ix.lt)
	if err != nil {
		return nil, err
	}
	// A trace installed on the context (the daemon's ?trace=1 path)
	// applies when the request carries none of its own; Options.Trace
	// wins when both are present.
	if copt.Tracer == nil {
		copt.Tracer = obs.FromContext(ctx)
	}
	var res *core.Result
	if cm, ok := ix.back.(interface {
		MineCtx(ctx context.Context, opt core.Options) (*core.Result, error)
	}); ok {
		res, err = cm.MineCtx(ctx, copt)
	} else {
		res, err = ix.back.Mine(copt)
	}
	if err != nil {
		return nil, err
	}
	return finishResult(res, ix.lt, tk, opt), nil
}

// Close releases index resources: a distributed index stops its health
// probes and closes idle worker connections; every other kind is a
// no-op. Cached levels stay servable after Close, but a distributed
// index must not materialize new ones.
func (ix *Index) Close() error {
	if ix.eng != nil {
		return ix.eng.Close()
	}
	return nil
}

// WorkerHealth returns each shard worker's last observed health,
// ordered by shard, or nil for a non-distributed index. With
// ProbeInterval set the view self-refreshes in the background;
// otherwise it reflects the outcomes of real RPCs.
func (ix *Index) WorkerHealth() []WorkerStatus {
	if ix.eng == nil {
		return nil
	}
	hs := ix.eng.WorkerHealth()
	if hs == nil {
		return nil
	}
	out := make([]WorkerStatus, len(hs))
	for i, h := range hs {
		out[i] = WorkerStatus{Addr: h.Addr, Shard: h.Shard, Healthy: h.Healthy, Err: h.Err}
	}
	return out
}

// ShardWorker serves Stage I candidate generation for ONE shard
// snapshot file over HTTP — the worker half of a distributed index.
// It answers GET /skinnymine/v1/info (identity and health — CRC, shard
// index, uptime, build info; also aliased at /healthz and the legacy
// /shard/v1/info) and POST /skinnymine/v1/candidates (the binary
// level-set protocol of internal/shard). Workers are stateless across
// requests and safe for concurrent use, including a coordinator's
// hedged duplicate requests.
type ShardWorker struct {
	w *shard.Worker
}

// LoadShardWorkerFile loads one per-shard snapshot file — a
// "<base>.shard<i>-<crc>" file written by WriteSnapshotFile — and
// returns a worker serving it. The file's CRC-32C becomes the worker's
// identity: candidate requests pinned to a different checksum are
// answered 409.
func LoadShardWorkerFile(path string) (*ShardWorker, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st, lt, err := indexio.Load(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("skinnymine: shard file %s: %w", path, err)
	}
	w, err := shard.NewWorker(st.Graphs, len(lt.Names()), st.Sigma, crc32.Checksum(data, castagnoli))
	if err != nil {
		return nil, err
	}
	w.SetShard(shardIndexFromPath(path))
	return &ShardWorker{w: w}, nil
}

// shardIndexFromPath recovers the manifest shard index from the
// generated file name shape "<base>.shard<i>-<crc>", or -1 when the
// file was renamed out of it — the index is advisory identity for the
// info probe, never correctness (that is the CRC pin's job).
func shardIndexFromPath(path string) int {
	name := filepath.Base(path)
	i := strings.LastIndex(name, ".shard")
	if i < 0 {
		return -1
	}
	rest := name[i+len(".shard"):]
	j := strings.IndexByte(rest, '-')
	if j <= 0 {
		return -1
	}
	n, err := strconv.Atoi(rest[:j])
	if err != nil || n < 0 {
		return -1
	}
	return n
}

func (w *ShardWorker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	w.w.ServeHTTP(rw, r)
}

// SetLogger replaces the worker's structured logger (default:
// slog.Default()). Call it before serving. Every candidate RPC is
// logged with its op, result size, duration and the coordinator's
// request ID (echoed from the X-Request-Id header), so one mining
// query is greppable across the whole fleet.
func (w *ShardWorker) SetLogger(l *slog.Logger) { w.w.SetLogger(l) }

// NumGraphs returns the shard's graph count.
func (w *ShardWorker) NumGraphs() int { return w.w.NumGraphs() }

// Sigma returns the threshold the shard snapshot was built with.
func (w *ShardWorker) Sigma() int { return w.w.Sigma() }

// CRC returns the shard file's CRC-32C, the identity every candidate
// request must be pinned to.
func (w *ShardWorker) CRC() uint32 { return w.w.CRC() }
