package skinnymine

// Morphing refguard at the library level. CanMorph's claim is that the
// target request's result is exactly the source result post-filtered,
// so every test here reduces to one comparison: Morph(mine(from)) must
// be byte-identical (pattern JSON) to mine(to) run fresh. The serving
// daemon's equiv_test builds on the same invariant over HTTP; this
// file additionally pins the refusals — the dimensions (σ, measure,
// greedy/closed/budgeted modes) where a provable containment does not
// exist and CanMorph must decline.

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"skinnymine/internal/testutil"
)

func TestCanMorphTable(t *testing.T) {
	base := Options{Support: 2, Length: 3, Delta: 2}
	mod := func(f func(o *Options)) Options {
		o := base
		f(&o)
		return o
	}
	cases := []struct {
		name     string
		from, to Options
		want     bool
	}{
		{"identity", base, base, true},
		{"narrower band", mod(func(o *Options) { o.MinLength = 2 }), base, true},
		{"wider band", base, mod(func(o *Options) { o.MinLength = 2 }), false},
		{"seed lengths subset", mod(func(o *Options) { o.MinLength = 1 }),
			mod(func(o *Options) { o.MinLength = 1; o.SeedLengths = []int{1, 3} }), true},
		{"seed lengths escape the source band", mod(func(o *Options) { o.MinLength = 2 }),
			mod(func(o *Options) { o.MinLength = 1; o.SeedLengths = []int{1} }), false},
		{"tighter delta", base, mod(func(o *Options) { o.Delta = 1 }), true},
		{"looser delta", mod(func(o *Options) { o.Delta = 1 }), base, false},
		{"unbounded delta source", mod(func(o *Options) { o.Delta = -1 }), base, true},
		{"unbounded delta target", base, mod(func(o *Options) { o.Delta = -1 }), false},
		// σ must match exactly: Stage I's doubling threshold is σ-keyed,
		// so a tighter floor is containment, not byte-identity.
		{"higher sigma", base, mod(func(o *Options) { o.Support = 3 }), false},
		{"higher sigma under graph measure",
			mod(func(o *Options) { o.Measure = GraphCount }),
			mod(func(o *Options) { o.Measure = GraphCount; o.Support = 3 }), false},
		{"lower sigma", mod(func(o *Options) { o.Support = 3 }), base, false},
		{"support floor as a conjunct under graph measure",
			mod(func(o *Options) { o.Measure = GraphCount }),
			mod(func(o *Options) { o.Measure = GraphCount; o.Where = "support>=3" }), true},
		{"support floor as a conjunct under embedding measure", base,
			mod(func(o *Options) { o.Where = "support>=3" }), false},
		{"measure mismatch", base, mod(func(o *Options) { o.Measure = GraphCount }), false},
		{"extra anti-monotone conjunct", base,
			mod(func(o *Options) { o.Where = "vertices<=6" }), true},
		{"extra monotone conjunct", base,
			mod(func(o *Options) { o.Where = "contains(label='1')" }), false},
		{"dropped conjunct", mod(func(o *Options) { o.Where = "vertices<=6" }), base, false},
		{"shared monotone conjunct plus anti-monotone delta",
			mod(func(o *Options) { o.Where = "contains(label='1')" }),
			mod(func(o *Options) { o.Where = "contains(label='1') && edges<=6" }), true},
		{"topk on target", base, mod(func(o *Options) { o.Where = "topk(3, by=support)" }), true},
		{"topk on source", mod(func(o *Options) { o.Where = "topk(3, by=support)" }), base, false},
		{"greedy source", mod(func(o *Options) { o.MaximalOnly = true }), base, false},
		{"closed target", base, mod(func(o *Options) { o.ClosedOnly = true }), false},
		{"budgeted source", mod(func(o *Options) { o.MaxPatterns = 5 }), base, false},
		{"invalid target", base, mod(func(o *Options) { o.Support = 0 }), false},
	}
	for _, tc := range cases {
		if got := CanMorph(tc.from, tc.to); got != tc.want {
			t.Errorf("%s: CanMorph = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// randomMorphDB builds a small two-graph database seeded per trial.
func randomMorphDB(trial int) []*Graph {
	rng := rand.New(rand.NewSource(int64(900 + trial)))
	return wrapRaw(4,
		testutil.RandomConnectedGraph(rng, 40, 14, 4),
		testutil.RandomConnectedGraph(rng, 35, 12, 4),
	)
}

func TestMorphMatchesFreshMine(t *testing.T) {
	trials := 4
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		db := randomMorphDB(trial)
		from := Options{Support: 2, Length: 3, MinLength: 1, Delta: 2}
		if trial%2 == 1 {
			from.Measure = GraphCount
		}
		targets := []func(o *Options){
			func(o *Options) {},
			func(o *Options) { o.MinLength = 2 },
			func(o *Options) { o.MinLength = 0 }, // single top length
			func(o *Options) { o.SeedLengths = []int{1, 3} },
			func(o *Options) { o.Delta = 1 },
			func(o *Options) { o.Where = "vertices<=6" },
			func(o *Options) { o.Where = "edges<=7 && !contains(label='2')" },
			func(o *Options) { o.Where = "skinniness<=1 && topk(3, by=support)" },
			func(o *Options) { o.Where = "topk(4, by=size)" },
		}
		if from.Measure == GraphCount {
			// Support tightening morphs only as a constraint conjunct
			// (anti-monotone under the graph-transaction measure).
			targets = append(targets,
				func(o *Options) { o.Where = "support>=2" },
				func(o *Options) { o.Where = "support>=2 && vertices<=7" })
		}
		src, err := MineDB(db, from)
		if err != nil {
			t.Fatal(err)
		}
		for i, tweak := range targets {
			to := from
			tweak(&to)
			if !CanMorph(from, to) {
				t.Fatalf("trial %d target %d: CanMorph unexpectedly false", trial, i)
			}
			morphed, err := Morph(src, from, to)
			if err != nil {
				t.Fatalf("trial %d target %d: Morph: %v", trial, i, err)
			}
			fresh, err := MineDB(db, to)
			if err != nil {
				t.Fatalf("trial %d target %d: fresh mine: %v", trial, i, err)
			}
			got, want := patternsJSON(t, morphed), patternsJSON(t, fresh)
			if !bytes.Equal(got, want) {
				t.Errorf("trial %d target %d: morphed patterns diverge from fresh mine\nmorphed: %s\nfresh:   %s",
					trial, i, got, want)
			}
			if morphed.Stats.ExtensionsTried != 0 || morphed.Stats.Generated != 0 {
				t.Errorf("trial %d target %d: morph ran a search: %+v", trial, i, morphed.Stats)
			}
		}
	}
}

// Seed-length restriction is the fork-at-seed hook: mining a length
// set must equal concatenating the per-length mines, byte for byte.
func TestSeedLengthsPartitionBand(t *testing.T) {
	db := randomMorphDB(7)
	base := Options{Support: 2, Length: 3, MinLength: 1, Delta: 2}
	for _, lens := range [][]int{{1}, {2}, {3}, {1, 3}, {3, 1, 3}, {1, 2, 3}} {
		opt := base
		opt.SeedLengths = lens
		got, err := MineDB(db, opt)
		if err != nil {
			t.Fatal(err)
		}
		want := &Result{}
		// Canonical output orders by diameter length first, so the union
		// concatenates per-length mines in ascending length order.
		uniq := append([]int(nil), lens...)
		sort.Ints(uniq)
		seen := map[int]bool{}
		for _, l := range uniq {
			if seen[l] {
				continue
			}
			seen[l] = true
			one := base
			one.MinLength = 0
			one.Length = l
			res, err := MineDB(db, one)
			if err != nil {
				t.Fatal(err)
			}
			want.Patterns = append(want.Patterns, res.Patterns...)
		}
		if g, w := patternsJSON(t, got), patternsJSON(t, want); !bytes.Equal(g, w) {
			t.Errorf("SeedLengths %v: restricted mine diverges from per-length union", lens)
		}
	}
	bad := base
	bad.SeedLengths = []int{4}
	if _, err := MineDB(db, bad); err == nil {
		t.Error("SeedLengths outside the band: want error, got nil")
	}
}

func TestFamilyOptionsSubsumesMembers(t *testing.T) {
	db := randomMorphDB(11)
	members := []Options{
		{Support: 2, Length: 3, Delta: 1, Measure: GraphCount, Where: "vertices<=7"},
		{Support: 2, Length: 3, MinLength: 2, Delta: 2, Measure: GraphCount, Where: "support>=2"},
		{Support: 2, Length: 2, Delta: 2, Measure: GraphCount, Where: "edges<=6 && topk(3, by=support)"},
		{Support: 2, Length: 1, Delta: 2, Measure: GraphCount, Where: "vertices<=7 && edges<=6"},
	}
	fam, ok := FamilyOptions(members)
	if !ok {
		t.Fatal("FamilyOptions: ok=false for a mixable family")
	}
	if fam.Support != 2 || fam.Length != 3 || fam.MinLength != 1 || fam.Delta != 2 {
		t.Fatalf("weakest superset mismatch: %+v", fam)
	}
	famRes, err := MineDB(db, fam)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range members {
		if !CanMorph(fam, m) {
			t.Fatalf("member %d: CanMorph(family, member) = false", i)
		}
		morphed, err := Morph(famRes, fam, m)
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		fresh, err := MineDB(db, m)
		if err != nil {
			t.Fatal(err)
		}
		if g, w := patternsJSON(t, morphed), patternsJSON(t, fresh); !bytes.Equal(g, w) {
			t.Errorf("member %d: family-forked patterns diverge from fresh mine\nforked: %s\nfresh:  %s", i, g, w)
		}
	}

	// A gapped length union rides on SeedLengths.
	gapped := []Options{
		{Support: 2, Length: 1, Delta: 2},
		{Support: 2, Length: 3, MinLength: 3, Delta: 2},
	}
	fam2, ok := FamilyOptions(gapped)
	if !ok {
		t.Fatal("gapped family: ok=false")
	}
	if len(fam2.SeedLengths) != 2 || fam2.SeedLengths[0] != 1 || fam2.SeedLengths[1] != 3 {
		t.Fatalf("gapped family: SeedLengths = %v, want [1 3]", fam2.SeedLengths)
	}

	// Unmixable families decline.
	if _, ok := FamilyOptions(nil); ok {
		t.Error("empty family: want ok=false")
	}
	if _, ok := FamilyOptions([]Options{
		{Support: 2, Length: 2, Delta: 1, Measure: GraphCount},
		{Support: 3, Length: 2, Delta: 1, Measure: GraphCount},
	}); ok {
		t.Error("sigma mix: want ok=false")
	}
	if _, ok := FamilyOptions([]Options{
		{Support: 2, Length: 2, Delta: 1},
		{Support: 2, Length: 2, Delta: 1, Measure: GraphCount},
	}); ok {
		t.Error("measure mix: want ok=false")
	}
	if _, ok := FamilyOptions([]Options{
		{Support: 2, Length: 2, Delta: 1, MaximalOnly: true},
	}); ok {
		t.Error("greedy member: want ok=false")
	}
}
