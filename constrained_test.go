package skinnymine

// Pushdown-equivalence refguard. The Where subsystem promises that
// pruning anti-monotone conjuncts inside the two mining stages never
// changes the answer: mining with pushdown enabled is byte-identical to
// mining unconstrained and post-filtering (and to mining with
// NoPushdown, which is exactly that post-filter run through the same
// code path). These tests pin the promise on randomized labeled graphs
// at Concurrency 1 and 8, plus the stats-side claim that pushdown
// strictly reduces the work on a selective constraint.

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strconv"
	"testing"

	"skinnymine/internal/constraint"
	"skinnymine/internal/graph"
	"skinnymine/internal/synth"
	"skinnymine/internal/testutil"
)

// wrapRaw lifts internal graphs into the public API with a label table
// mapping "0".."labels-1" to label ids 0..labels-1 (the same mapping
// ReadGraphs would intern for numeric text input).
func wrapRaw(labels int, raw ...*graph.Graph) []*Graph {
	lt := graph.NewLabelTable()
	for i := 0; i < labels; i++ {
		lt.Intern(strconv.Itoa(i))
	}
	out := make([]*Graph, len(raw))
	for i, g := range raw {
		out[i] = &Graph{g: g, lt: lt}
	}
	return out
}

// patternsJSON serializes only the pattern list — stats carry timings
// and run-dependent counters, which equivalence deliberately excludes.
func patternsJSON(t *testing.T, res *Result) []byte {
	t.Helper()
	var out []PatternJSON
	for _, p := range res.Patterns {
		out = append(out, p.ToJSON())
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// postFilter applies a parsed constraint to an unconstrained result
// exactly as the output filter and topk clause would: full-expression
// evaluation per pattern, then the ranking clause. This is the
// reference semantics pushdown must reproduce.
func postFilter(t *testing.T, res *Result, where string, opt Options) *Result {
	t.Helper()
	c, err := constraint.Parse(where)
	if err != nil {
		t.Fatalf("Parse(%q): %v", where, err)
	}
	var lt *graph.LabelTable
	if len(res.Patterns) > 0 {
		lt = res.Patterns[0].lt
	} else {
		lt = graph.NewLabelTable()
	}
	b := c.Bind(lt, opt.Measure == GraphCount)
	kept := &Result{Stats: res.Stats}
	for _, p := range res.Patterns {
		ok := b.Accept(constraint.Attrs{
			Vertices:   p.Vertices(),
			Edges:      p.Edges(),
			Skinniness: p.Skinniness(),
			Support:    p.p.Embs.Count(opt.measure()),
			Labels:     p.p.G.Labels(),
		})
		if ok {
			kept.Patterns = append(kept.Patterns, p)
		}
	}
	if c.TopK != nil {
		kept.Patterns = applyTopK(kept.Patterns, c.TopK, opt.measure())
	}
	return kept
}

var equivalenceWheres = []string{
	"contains(label='1')",
	"!contains(label='2')",
	"vertices<=6",
	"edges<=6",
	"vertices>=5 && edges<=7",
	"skinniness<=1 && !contains(label='0')",
	"support>=3",
	"support>=3 && vertices<=6",
	"contains(label='0') || vertices<=5",    // mixed disjunction: output-only
	"!(contains(label='2') || vertices>=7)", // ¬(mono ∨ mono): pushes down
	"vertices==6",                           // equality: output-only
	"contains(label='1') && !contains(label='3') && vertices<=7 && skinniness<=1",
	"vertices<=7 && topk(3, by=support)",
	"topk(2, by=size)",
	"contains(label='1') && topk(4, by=skinniness)",
}

func TestWherePushdownEquivalenceRandomized(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		db := wrapRaw(4,
			testutil.RandomConnectedGraph(rng, 40, 14, 4),
			testutil.RandomConnectedGraph(rng, 35, 12, 4),
		)
		base := Options{Support: 2, Length: 3, Delta: 2}
		if trial%3 == 1 {
			base.Measure = GraphCount
		}
		if trial%3 == 2 {
			base.MinLength = 2 // band request: seeds of two lengths
		}

		unconstrained, err := MineDB(db, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, where := range equivalenceWheres {
			want := patternsJSON(t, postFilter(t, unconstrained, where, base))

			for _, conc := range []int{1, 8} {
				opt := base
				opt.Where = where
				opt.Concurrency = conc
				push, err := MineDB(db, opt)
				if err != nil {
					t.Fatal(err)
				}
				if got := patternsJSON(t, push); !bytes.Equal(got, want) {
					t.Fatalf("trial %d, where %q, concurrency %d: pushdown result differs from post-filtered unconstrained result\npushdown: %s\npostfilter: %s",
						trial, where, conc, got, want)
				}

				opt.NoPushdown = true
				noPush, err := MineDB(db, opt)
				if err != nil {
					t.Fatal(err)
				}
				if got := patternsJSON(t, noPush); !bytes.Equal(got, want) {
					t.Fatalf("trial %d, where %q, concurrency %d: NoPushdown result differs from post-filtered unconstrained result",
						trial, where, conc)
				}
				if push.Stats.ExtensionsTried > noPush.Stats.ExtensionsTried {
					t.Errorf("trial %d, where %q, concurrency %d: pushdown tried MORE extensions (%d) than post-filtering (%d)",
						trial, where, conc, push.Stats.ExtensionsTried, noPush.Stats.ExtensionsTried)
				}
			}
		}
	}
}

// TestWherePushdownEquivalenceIndexed runs the same equivalence through
// a shared DirectIndex, where Stage I levels are cached unconstrained
// and pruning happens at seed selection: constrained requests must not
// corrupt the index for the requests that follow.
func TestWherePushdownEquivalenceIndexed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := wrapRaw(4, testutil.RandomConnectedGraph(rng, 45, 16, 4))
	ix, err := BuildIndex(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Support: 2, Length: 3, Delta: 2}
	unconstrained, err := ix.Mine(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, where := range equivalenceWheres {
		want := patternsJSON(t, postFilter(t, unconstrained, where, base))
		opt := base
		opt.Where = where
		got, err := ix.Mine(opt)
		if err != nil {
			t.Fatal(err)
		}
		if g := patternsJSON(t, got); !bytes.Equal(g, want) {
			t.Fatalf("indexed, where %q: pushdown differs from post-filter", where)
		}
	}
	// After every constrained request the index still serves the full
	// unconstrained result (its levels were never pruned).
	again, err := ix.Mine(base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(patternsJSON(t, again), patternsJSON(t, unconstrained)) {
		t.Fatal("constrained requests corrupted the shared index")
	}
}

// TestWherePushdownPrunesWork pins the stats side on the skewed-label
// workload: a selective constraint must actually cut the search
// (pushdown_rejects > 0, strictly fewer extensions tried) while
// producing the identical pattern set.
func TestWherePushdownPrunesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := synth.Skew(rng, synth.SkewOptions{N: 100, AvgDeg: 2.0, Labels: 10, Motifs: 3})
	var buf bytes.Buffer
	if err := graph.WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	db, err := ReadGraphs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		Support: 3, Length: 4, Delta: 1, Concurrency: 1,
		Where: "!contains(label='0') && vertices<=9 && skinniness<=1",
	}
	push, err := MineDB(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.NoPushdown = true
	post, err := MineDB(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(patternsJSON(t, push), patternsJSON(t, post)) {
		t.Fatal("pushdown and post-filter disagree on the skewed workload")
	}
	if len(push.Patterns) == 0 {
		t.Fatal("selective constraint matched nothing; the workload lost its motifs")
	}
	if push.Stats.PushdownRejects == 0 {
		t.Error("pushdown_rejects = 0 on a selective constraint")
	}
	if push.Stats.ExtensionsTried >= post.Stats.ExtensionsTried {
		t.Errorf("pushdown did not reduce extensions_tried: %d vs %d",
			push.Stats.ExtensionsTried, post.Stats.ExtensionsTried)
	}
	if post.Stats.OutputFilterRejects == 0 {
		t.Error("NoPushdown run reported no output-filter rejects; the filter never ran")
	}
}

// TestWhereClosedOnlyConstrained pins the documented ClosedOnly
// semantics: the output filter runs before the closed filter, so
// closedness is judged within the constrained set — and that holds
// identically with and without pushdown.
func TestWhereClosedOnlyConstrained(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		rng := rand.New(rand.NewSource(int64(60 + trial)))
		db := wrapRaw(4, testutil.RandomConnectedGraph(rng, 45, 16, 4))
		for _, where := range []string{"!contains(label='2')", "vertices<=6", "edges<=6 && !contains(label='0')"} {
			opt := Options{Support: 2, Length: 3, Delta: 2, ClosedOnly: true, Where: where}
			push, err := MineDB(db, opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.NoPushdown = true
			noPush, err := MineDB(db, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(patternsJSON(t, push), patternsJSON(t, noPush)) {
				t.Fatalf("trial %d, where %q: ClosedOnly result depends on pushdown", trial, where)
			}
			// Every survivor is closed *within the constrained set*: no
			// other result pattern is a strict equal-support super-pattern.
			for i, p := range push.Patterns {
				for j, q := range push.Patterns {
					if i == j || q.Edges() <= p.Edges() || q.Support() != p.Support() {
						continue
					}
					if graph.HasEmbedding(p.p.G, q.p.G) {
						t.Fatalf("trial %d, where %q: pattern %d not closed within the constrained result", trial, where, i)
					}
				}
			}
		}
	}
}

// TestWhereMaximalOnlyConstrained pins the documented MaximalOnly
// interaction: pushdown steers greedy growth, so every reported
// maximal pattern satisfies the constraint.
func TestWhereMaximalOnlyConstrained(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := wrapRaw(4, testutil.RandomConnectedGraph(rng, 50, 18, 4))
	opt := Options{
		Support: 2, Length: 3, Delta: 2, MaximalOnly: true,
		Where: "!contains(label='3') && vertices<=8",
	}
	res, err := MineDB(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if p.Vertices() > 8 {
			t.Errorf("maximal pattern has %d vertices, cap is 8", p.Vertices())
		}
		for v := 0; v < p.Vertices(); v++ {
			if p.VertexLabel(VertexID(v)) == "3" {
				t.Error("maximal pattern contains the forbidden label")
			}
		}
	}
}

// TestTopKSelection pins the ranking semantics on the deterministic
// trajectory workload: support and size rank descending, skinniness
// ascending, ties broken by canonical order, count capped at K.
func TestTopKSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := wrapRaw(4, testutil.RandomConnectedGraph(rng, 40, 14, 4))
	g := db[0]
	base := Options{Support: 2, Length: 3, Delta: 1}
	all, err := Mine(g, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Patterns) < 4 {
		t.Fatalf("workload mined only %d patterns", len(all.Patterns))
	}

	opt := base
	opt.Where = "topk(2, by=size)"
	res, err := Mine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 2 {
		t.Fatalf("topk(2) returned %d patterns", len(res.Patterns))
	}
	if res.Patterns[0].Vertices() < res.Patterns[1].Vertices() {
		t.Error("topk by=size not descending")
	}
	maxV := 0
	for _, p := range all.Patterns {
		if p.Vertices() > maxV {
			maxV = p.Vertices()
		}
	}
	if res.Patterns[0].Vertices() != maxV {
		t.Errorf("topk by=size missed the largest pattern: %d vs %d", res.Patterns[0].Vertices(), maxV)
	}

	opt.Where = "topk(3, by=skinniness)"
	res, err = Mine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Patterns); i++ {
		if res.Patterns[i-1].Skinniness() > res.Patterns[i].Skinniness() {
			t.Error("topk by=skinniness not ascending")
		}
	}

	opt.Where = "topk(1000, by=support)"
	res, err = Mine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != len(all.Patterns) {
		t.Errorf("topk(1000) dropped patterns: %d vs %d", len(res.Patterns), len(all.Patterns))
	}
	for i := 1; i < len(res.Patterns); i++ {
		if res.Patterns[i-1].Support() < res.Patterns[i].Support() {
			t.Error("topk by=support not descending")
		}
	}
}
