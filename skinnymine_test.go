package skinnymine

import (
	"bytes"
	"strings"
	"testing"
)

// buildTrajectoryGraph wires a small city graph with two copies of a
// popular route (station -> cafe -> park -> museum -> cafe2) plus noise.
func buildTrajectoryGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	route := []string{"station", "cafe", "park", "museum", "plaza"}
	for c := 0; c < 2; c++ {
		var prev VertexID
		for i, l := range route {
			v := g.AddVertex(l)
			if i > 0 {
				if err := g.AddEdge(prev, v); err != nil {
					t.Fatal(err)
				}
			}
			prev = v
		}
		tw := g.AddVertex("shop")
		if err := g.AddEdge(prev-2, tw); err != nil {
			t.Fatal(err)
		}
	}
	// Noise vertices.
	n1 := g.AddVertex("noise1")
	n2 := g.AddVertex("noise2")
	if err := g.AddEdge(n1, n2); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMineQuickstartShape(t *testing.T) {
	g := buildTrajectoryGraph(t)
	res, err := Mine(g, Options{Support: 2, Length: 4, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns found")
	}
	foundRoute := false
	for _, p := range res.Patterns {
		if p.DiameterLength() != 4 {
			t.Errorf("pattern diameter %d, want 4", p.DiameterLength())
		}
		if p.Skinniness() > 1 {
			t.Errorf("pattern skinniness %d > δ", p.Skinniness())
		}
		if p.Support() < 2 {
			t.Errorf("pattern support %d < σ", p.Support())
		}
		bb := p.Backbone()
		if len(bb) == 5 && bb[0] == "station" || bb[len(bb)-1] == "station" {
			foundRoute = true
		}
	}
	if !foundRoute {
		t.Error("the injected route backbone was not recovered")
	}
}

func TestPatternAccessors(t *testing.T) {
	g := buildTrajectoryGraph(t)
	res, err := Mine(g, Options{Support: 2, Length: 4, Delta: 1, MaximalOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns")
	}
	var best *Pattern
	for _, p := range res.Patterns {
		if best == nil || p.Vertices() > best.Vertices() {
			best = p
		}
	}
	if best.Vertices() != 6 || best.Edges() != 5 {
		t.Errorf("maximal pattern %d/%d, want 6 vertices 5 edges", best.Vertices(), best.Edges())
	}
	if got := best.String(); !strings.Contains(got, "sup=2") {
		t.Errorf("String() = %q", got)
	}
	if len(best.EdgeList()) != best.Edges() {
		t.Error("EdgeList length mismatch")
	}
	if best.VertexLabel(0) != best.Backbone()[0] {
		t.Error("VertexLabel(0) should be the backbone head")
	}
}

func TestMineDBTransaction(t *testing.T) {
	c := NewCorpus()
	var db []*Graph
	for i := 0; i < 3; i++ {
		g := c.NewGraph()
		a := g.AddVertex("a")
		b := g.AddVertex("b")
		cc := g.AddVertex("c")
		if err := g.AddEdge(a, b); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(b, cc); err != nil {
			t.Fatal(err)
		}
		db = append(db, g)
	}
	res, err := MineDB(db, Options{Support: 3, Length: 2, Delta: 0, Measure: GraphCount})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 1 {
		t.Fatalf("got %d patterns, want 1", len(res.Patterns))
	}
}

func TestMineDBRejectsMixedVocabularies(t *testing.T) {
	g1 := NewGraph()
	g1.AddVertex("a")
	g2 := NewGraph()
	g2.AddVertex("a")
	if _, err := MineDB([]*Graph{g1, g2}, Options{Support: 1, Length: 1}); err == nil {
		t.Error("mixed label tables should error")
	}
}

func TestIndexServesMultipleRequests(t *testing.T) {
	g := buildTrajectoryGraph(t)
	ix, err := BuildIndex([]*Graph{g}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for l := 2; l <= 4; l++ {
		res, err := ix.Mine(Options{Support: 2, Length: l, Delta: 1})
		if err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		for _, p := range res.Patterns {
			if p.DiameterLength() != l {
				t.Errorf("l=%d: pattern diameter %d", l, p.DiameterLength())
			}
		}
	}
}

func TestGraphBasicsAndSerialization(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("x")
	b := g.AddVertex("y")
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, b); err == nil {
		t.Error("duplicate edge should error")
	}
	if g.N() != 2 || g.M() != 1 {
		t.Error("counts wrong")
	}
	if g.Label(a) != "x" {
		t.Error("label wrong")
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadGraphs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 1 || parsed[0].N() != 2 || parsed[0].M() != 1 {
		t.Error("roundtrip failed")
	}
}

func TestMineErrors(t *testing.T) {
	if _, err := Mine(NewGraph(), Options{Support: 0, Length: 1}); err == nil {
		t.Error("bad support should error")
	}
	if _, err := MineDB(nil, Options{Support: 1, Length: 1}); err == nil {
		t.Error("empty DB should error")
	}
	if _, err := BuildIndex(nil, 1); err == nil {
		t.Error("empty index should error")
	}
}

func TestMinimalBackbones(t *testing.T) {
	g := buildTrajectoryGraph(t)
	ix, err := BuildIndex([]*Graph{g}, 2)
	if err != nil {
		t.Fatal(err)
	}
	bbs, err := ix.MinimalBackbones(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bbs) == 0 {
		t.Fatal("no minimal backbones")
	}
	found := false
	for _, bb := range bbs {
		if len(bb) != 5 {
			t.Fatalf("backbone %v should have 5 labels", bb)
		}
		if bb[0] == "station" || bb[4] == "station" {
			found = true
		}
	}
	if !found {
		t.Error("route backbone missing from minimal patterns")
	}
}

func TestParallelWorkersPublicAPI(t *testing.T) {
	g := buildTrajectoryGraph(t)
	seq, err := Mine(g, Options{Support: 2, Length: 4, Delta: 1, Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Mine(g, Options{Support: 2, Length: 4, Delta: 1, Concurrency: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Patterns) != len(par.Patterns) {
		t.Fatalf("sequential %d vs parallel %d patterns", len(seq.Patterns), len(par.Patterns))
	}
}
