package testutil

import (
	"math/rand"

	"skinnymine/internal/graph"
	"skinnymine/internal/synth"
)

// SynthWorkload builds the parallel-mining workload shared by the
// cross-concurrency determinism tests and the scaling benchmarks: an
// Erdős–Rényi background with injected skinny patterns, so Stage I
// yields many seeds and Stage II does real growth work. Keep test and
// bench on this one recipe so they measure the same thing.
func SynthWorkload(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := synth.ER(rng, n, 2.5, 5)
	pat := synth.RandomSkinnyPattern(rng, synth.SkinnySpec{
		V: 12, Diam: 5, Delta: 2, LabelBase: 5, LabelRange: 3,
	})
	synth.Inject(rng, g, pat, 4, 0.2)
	return g
}

// RandomConnectedGraph builds a connected labeled graph with n vertices:
// a random spanning tree plus extra random edges, labels drawn uniformly
// from [0, labels).
func RandomConnectedGraph(rng *rand.Rand, n, extraEdges, labels int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(rng.Intn(labels)))
	}
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		g.MustAddEdge(graph.V(u), graph.V(v))
	}
	for e := 0; e < extraEdges; e++ {
		u := graph.V(rng.Intn(n))
		w := graph.V(rng.Intn(n))
		if u == w || g.HasEdge(u, w) {
			continue
		}
		g.MustAddEdge(u, w)
	}
	return g
}

// PermuteGraph returns an isomorphic copy of g with vertex IDs permuted
// by a random permutation, plus the permutation used (old -> new).
func PermuteGraph(rng *rand.Rand, g *graph.Graph) (*graph.Graph, []graph.V) {
	n := g.N()
	perm := rng.Perm(n)
	mapping := make([]graph.V, n)
	for old, new_ := range perm {
		mapping[old] = graph.V(new_)
	}
	h := graph.New(n)
	labels := make([]graph.Label, n)
	for old := 0; old < n; old++ {
		labels[mapping[old]] = g.Label(graph.V(old))
	}
	for _, l := range labels {
		h.AddVertex(l)
	}
	for _, e := range g.Edges() {
		h.MustAddEdge(mapping[e.U], mapping[e.W])
	}
	return h, mapping
}

// PathGraph builds a simple path with the given labels.
func PathGraph(labels ...graph.Label) *graph.Graph {
	g := graph.New(len(labels))
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(graph.V(i-1), graph.V(i))
	}
	return g
}

// CycleGraph builds a cycle with the given labels (length >= 3).
func CycleGraph(labels ...graph.Label) *graph.Graph {
	g := PathGraph(labels...)
	g.MustAddEdge(graph.V(len(labels)-1), 0)
	return g
}
