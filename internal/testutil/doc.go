// Package testutil provides deterministic graph builders shared by
// tests and benchmarks across the repository: the synthetic parallel-
// mining workload (SynthWorkload — the one recipe the determinism
// tests, the sharding refguards and the scaling benchmarks all pin, so
// they measure the same thing), random connected graphs, vertex
// permutations for isomorphism-invariance tests, and small fixed shapes
// (paths, cycles).
//
// Everything here is a pure function of its *rand.Rand or arguments —
// no global state, no hidden seeds — so any two test runs see identical
// inputs. Helpers are safe to call concurrently only with distinct
// *rand.Rand instances.
package testutil
