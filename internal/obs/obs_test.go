package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestNopSpanIsNilSafe: the no-op tracer returns a nil span whose whole
// method set tolerates the nil receiver, so instrumentation sites never
// branch on whether tracing is live.
func TestNopSpanIsNilSafe(t *testing.T) {
	sp := Nop.Start("anything")
	if sp != nil {
		t.Fatalf("Nop.Start returned %v, want nil", sp)
	}
	sp.Tag("k", "v").TagInt("n", 7).End() // must not panic
	if Default(nil) != Nop {
		t.Error("Default(nil) is not Nop")
	}
}

// TestTraceRecordsSpans: spans record name, tags, and durations
// relative to the trace start, in completion order.
func TestTraceRecordsSpans(t *testing.T) {
	tr := NewTrace()
	outer := tr.Start("outer")
	inner := tr.Start("inner").Tag("op", "concat").TagInt("level", 4)
	time.Sleep(2 * time.Millisecond)
	inner.End()
	outer.End()

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Completion order: inner ended first.
	if spans[0].Name != "inner" || spans[1].Name != "outer" {
		t.Fatalf("span order %q, %q; want inner, outer", spans[0].Name, spans[1].Name)
	}
	in := spans[0]
	if in.Attrs["op"] != "concat" || in.Attrs["level"] != int64(4) {
		t.Errorf("inner attrs = %v, want op=concat level=4", in.Attrs)
	}
	if in.DurationUs < 1000 {
		t.Errorf("inner duration %dus, want >= ~2ms", in.DurationUs)
	}
	if in.StartUs < 0 {
		t.Errorf("inner start offset %dus, want >= 0", in.StartUs)
	}
	if spans[1].DurationUs < in.DurationUs {
		t.Errorf("outer (%dus) shorter than the inner span it encloses (%dus)",
			spans[1].DurationUs, in.DurationUs)
	}
}

// TestTraceConcurrentSpans exercises concurrent Start/Tag/End under
// -race: parallel mining workers all write to one trace.
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr.Start("worker").TagInt("i", int64(i)).End()
		}(i)
	}
	wg.Wait()
	if got := len(tr.Snapshot()); got != n {
		t.Errorf("recorded %d spans, want %d", got, n)
	}
}

// TestContextCarriers: tracer and request ID round-trip through a
// context; absence yields the no-op tracer and the empty ID.
func TestContextCarriers(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != Nop {
		t.Error("FromContext on a bare context is not Nop")
	}
	if TraceFromContext(ctx) != nil {
		t.Error("TraceFromContext on a bare context is not nil")
	}
	if RequestID(ctx) != "" {
		t.Error("RequestID on a bare context is not empty")
	}

	tr := NewTrace()
	ctx = NewContext(ctx, tr)
	if FromContext(ctx) != Tracer(tr) {
		t.Error("FromContext did not return the installed trace")
	}
	if TraceFromContext(ctx) != tr {
		t.Error("TraceFromContext did not recover the concrete *Trace")
	}
	ctx = NewContext(context.Background(), Nop)
	if TraceFromContext(ctx) != nil {
		t.Error("TraceFromContext returned a trace for the no-op tracer")
	}

	ctx = WithRequestID(context.Background(), "abc123")
	if got := RequestID(ctx); got != "abc123" {
		t.Errorf("RequestID = %q, want abc123", got)
	}
}

// TestNewRequestID: fresh IDs are 16 hex digits and distinct.
func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("lengths %d/%d, want 16", len(a), len(b))
	}
	if a == b {
		t.Errorf("two fresh request IDs collided: %q", a)
	}
	for _, c := range a {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			t.Fatalf("non-hex character %q in %q", c, a)
		}
	}
}
