package obs

import (
	"sort"
	"sync"
	"time"
)

// StoredTrace is one completed request's trace as the serving daemon
// retains it: identity (the request ID), how it was served, and the
// flat span list a renderer can rebuild into a tree. Summaries (List)
// carry everything but Spans.
type StoredTrace struct {
	ID         string     `json:"id"`
	Endpoint   string     `json:"endpoint"`
	Source     string     `json:"source"` // "miss" (a real run), "hit", "coalesced"
	Start      time.Time  `json:"start"`
	DurationMs float64    `json:"duration_ms"`
	Workers    int        `json:"workers"` // distinct shard workers that contributed spans
	RunID      string     `json:"run_id,omitempty"`
	Spans      []SpanData `json:"spans,omitempty"`

	seq uint64 // recording order, for eviction/dedup; internal
}

// TraceStore is the daemon's always-on bounded trace retention: a ring
// of the last N completed traces plus per-latency-bucket exemplar
// reservoirs. The ring alone would let a burst of sub-millisecond cache
// hits evict the one ten-second run an operator actually needs, so
// every recorded trace is also slotted into the reservoir of its
// latency bucket (round-robin within the bucket) — a slow trace can
// only be displaced by a newer, comparably slow one, never by fast
// traffic. Safe for concurrent Record/Get/List; reads are linear scans
// over a few hundred entries, fine for an operator-driven endpoint.
type TraceStore struct {
	mu        sync.Mutex
	ring      []StoredTrace // circular, oldest overwritten first
	head      int           // next ring slot to write
	size      int           // filled ring slots
	bounds    []float64     // ascending bucket upper bounds, ms
	exemplars [][]StoredTrace
	exHead    []int // per-bucket round-robin cursor
	perBucket int
	seq       uint64
}

// NewTraceStore returns a store retaining the last capacity traces
// (<= 0 means 256) plus perBucket exemplars per DefaultLatencyBuckets
// latency bucket (<= 0 means 4).
func NewTraceStore(capacity, perBucket int) *TraceStore {
	if capacity <= 0 {
		capacity = 256
	}
	if perBucket <= 0 {
		perBucket = 4
	}
	bounds := DefaultLatencyBuckets
	s := &TraceStore{
		ring:      make([]StoredTrace, capacity),
		bounds:    bounds,
		exemplars: make([][]StoredTrace, len(bounds)+1),
		exHead:    make([]int, len(bounds)+1),
		perBucket: perBucket,
	}
	return s
}

// Record retains one completed trace. Spans must not be mutated by the
// caller afterwards (the store keeps the slice, not a copy — recording
// must stay cheap enough to run on every request).
func (s *TraceStore) Record(t StoredTrace) {
	s.mu.Lock()
	s.seq++
	t.seq = s.seq
	s.ring[s.head] = t
	s.head = (s.head + 1) % len(s.ring)
	if s.size < len(s.ring) {
		s.size++
	}
	b := sort.SearchFloat64s(s.bounds, t.DurationMs)
	if len(s.exemplars[b]) < s.perBucket {
		s.exemplars[b] = append(s.exemplars[b], t)
	} else {
		s.exemplars[b][s.exHead[b]] = t
		s.exHead[b] = (s.exHead[b] + 1) % s.perBucket
	}
	s.mu.Unlock()
}

// Get returns the retained trace with the given request ID, spans
// included, searching the ring and every exemplar reservoir. When
// several traces share an ID (a batch records one run per unique entry
// under the batch's request ID) the newest wins.
func (s *TraceStore) Get(id string) (StoredTrace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best StoredTrace
	found := false
	consider := func(t StoredTrace) {
		if t.ID == id && (!found || t.seq > best.seq) {
			best, found = t, true
		}
	}
	for i := 0; i < s.size; i++ {
		consider(s.ring[i])
	}
	for _, res := range s.exemplars {
		for _, t := range res {
			consider(t)
		}
	}
	return best, found
}

// List returns summaries (no spans) of every retained trace, newest
// first; exemplars that already sit in the ring are not repeated.
func (s *TraceStore) List() []StoredTrace {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[uint64]bool, s.size)
	out := make([]StoredTrace, 0, s.size)
	add := func(t StoredTrace) {
		if seen[t.seq] {
			return
		}
		seen[t.seq] = true
		t.Spans = nil
		out = append(out, t)
	}
	for i := 0; i < s.size; i++ {
		add(s.ring[i])
	}
	for _, res := range s.exemplars {
		for _, t := range res {
			add(t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	return out
}

// Len returns how many distinct traces are currently retained.
func (s *TraceStore) Len() int {
	return len(s.List())
}
