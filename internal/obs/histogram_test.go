package obs

import (
	"sync"
	"testing"
	"time"
)

// TestHistogramBoundaryExactness pins le semantics: a sample exactly on
// a bucket boundary counts in that boundary's bucket, one microsecond
// over lands in the next, and a sample beyond every bound lands only in
// the implicit +Inf slot (visible as Count exceeding the last bucket).
func TestHistogramBoundaryExactness(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	h.Observe(1 * time.Millisecond)                    // exactly 1ms  -> le=1
	h.Observe(1*time.Millisecond + time.Microsecond)   // 1.001ms      -> le=10
	h.Observe(10 * time.Millisecond)                   // exactly 10ms -> le=10
	h.Observe(100*time.Millisecond + time.Microsecond) // overflow

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count %d, want 4", s.Count)
	}
	want := []int64{1, 3, 3} // cumulative per bucket
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket le=%vms count %d, want %d", b.LeMs, b.Count, want[i])
		}
	}
	if last := s.Buckets[len(s.Buckets)-1]; s.Count-last.Count != 1 {
		t.Errorf("overflow = %d, want 1", s.Count-last.Count)
	}
	if s.MaxMs < 100 {
		t.Errorf("max %vms, want >= 100", s.MaxMs)
	}
}

// TestHistogramNegativeClamped: a negative duration (clock skew) is
// clamped to zero rather than corrupting the sum.
func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(-5 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.SumMs != 0 {
		t.Errorf("count=%d sum=%v, want 1/0", s.Count, s.SumMs)
	}
	if s.Buckets[0].Count != 1 {
		t.Errorf("clamped sample missing from the first bucket")
	}
}

// TestHistogramConcurrentObserve hammers Observe from many goroutines
// under -race and then checks snapshot sum/count consistency: every
// sample accounted for exactly once, cumulative buckets monotone, and
// the sum exact (each goroutine contributes a known total).
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(nil)
	const (
		goroutines = 16
		perG       = 480 // divisible by the 40-value spread below
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Deterministic spread across buckets including overflow.
				h.Observe(time.Duration(i%40) * 400 * time.Millisecond)
			}
		}(g)
	}
	wg.Wait()

	s := h.Snapshot()
	if want := int64(goroutines * perG); s.Count != want {
		t.Fatalf("count %d, want %d", s.Count, want)
	}
	// Sum: each goroutine observes 0,400,...,15600ms repeated perG/40 times.
	var per int64
	for i := 0; i < 40; i++ {
		per += int64(i * 400)
	}
	if want := float64(per * goroutines * perG / 40); s.SumMs != want {
		t.Errorf("sum %vms, want %v", s.SumMs, want)
	}
	if s.MaxMs != 15600 {
		t.Errorf("max %vms, want 15600", s.MaxMs)
	}
	prev := int64(0)
	for _, b := range s.Buckets {
		if b.Count < prev {
			t.Fatalf("cumulative buckets not monotone at le=%v: %d < %d", b.LeMs, b.Count, prev)
		}
		prev = b.Count
	}
	if prev > s.Count {
		t.Errorf("last bucket %d exceeds total count %d", prev, s.Count)
	}
}

// TestHistogramDefaultBuckets: nil bounds select the shared default
// boundary set, so every daemon histogram is mergeable.
func TestHistogramDefaultBuckets(t *testing.T) {
	h := NewHistogram(nil)
	s := h.Snapshot()
	if len(s.Buckets) != len(DefaultLatencyBuckets) {
		t.Fatalf("got %d buckets, want %d", len(s.Buckets), len(DefaultLatencyBuckets))
	}
	for i, b := range s.Buckets {
		if b.LeMs != DefaultLatencyBuckets[i] {
			t.Errorf("bucket %d bound %v, want %v", i, b.LeMs, DefaultLatencyBuckets[i])
		}
	}
}
