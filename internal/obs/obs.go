// Package obs is the observability substrate shared by the mining
// engine, the shard coordinator, and the serving daemon: a lightweight
// trace/span facility, fixed-boundary latency histograms, and
// request-ID plumbing.
//
// The design constraint, pinned by the refguard tests, is that tracing
// changes timing VISIBILITY, never bytes: instrumented code paths must
// produce byte-identical mining output whether a real Trace or the
// no-op tracer is attached. The facility therefore records only wall
// times and counters — it never touches pattern data — and the no-op
// path costs one interface call and zero allocations (Nop returns a
// nil *Span, and every *Span method is nil-receiver safe).
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Tracer hands out spans. The two implementations are *Trace (records)
// and Nop (discards); mining code holds a Tracer and never needs to
// know which it has.
type Tracer interface {
	// Start opens a span. The returned *Span may be nil (the no-op
	// tracer); all *Span methods tolerate a nil receiver, so callers
	// chain Tag/End unconditionally.
	Start(name string) *Span
}

// Nop is the zero-cost default tracer: Start returns a nil *Span whose
// methods all no-op.
var Nop Tracer = nopTracer{}

type nopTracer struct{}

func (nopTracer) Start(string) *Span { return nil }

// Default returns tr, or Nop when tr is nil, so option structs can
// leave the field unset.
func Default(tr Tracer) Tracer {
	if tr == nil {
		return Nop
	}
	return tr
}

// Trace is a recording Tracer: an append-only list of completed spans
// with offsets relative to the trace's start. Safe for concurrent use
// — parallel mining stages open and close spans from worker
// goroutines.
type Trace struct {
	start time.Time
	mu    sync.Mutex
	spans []SpanData
}

// NewTrace returns an empty recording trace anchored at now.
func NewTrace() *Trace {
	return &Trace{start: time.Now()}
}

// Start opens a recording span.
func (t *Trace) Start(name string) *Span {
	return &Span{t: t, name: name, start: time.Now()}
}

func (t *Trace) add(s SpanData) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Snapshot returns the completed spans in completion order.
func (t *Trace) Snapshot() []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, len(t.spans))
	copy(out, t.spans)
	return out
}

// SpanData is one completed span: a name, when it started relative to
// the trace, how long it ran, and optional key/value tags. Attrs values
// are string or int64 only, so the JSON rendering is deterministic.
type SpanData struct {
	Name       string         `json:"name"`
	StartUs    int64          `json:"start_us"`
	DurationUs int64          `json:"duration_us"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// Span is an open interval being timed. A nil *Span is the valid no-op
// span; every method checks the receiver so instrumentation sites never
// branch on whether tracing is live.
type Span struct {
	t     *Trace
	name  string
	start time.Time
	attrs map[string]any
}

// Tag attaches a string attribute and returns the span for chaining.
func (s *Span) Tag(key, val string) *Span {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = val
	return s
}

// TagInt attaches an integer attribute and returns the span for
// chaining.
func (s *Span) TagInt(key string, val int64) *Span {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = val
	return s
}

// End closes the span and records it on its trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.t.add(SpanData{
		Name:       s.name,
		StartUs:    s.start.Sub(s.t.start).Microseconds(),
		DurationUs: end.Sub(s.start).Microseconds(),
		Attrs:      s.attrs,
	})
}

// Graft appends externally recorded spans — a worker's, decoded from
// an RPC response — onto t, rebasing their offsets against base (the
// moment THIS process started the exchange, on this process's clock).
// The foreign spans carry offsets relative to their own trace's start,
// never absolute wall times, so clock skew between the two processes
// cannot surface in the stitched tree; defensive clamping additionally
// guarantees no grafted span ever has a negative start or duration,
// even when the remote side sends garbage.
func (t *Trace) Graft(spans []SpanData, base time.Time) {
	if t == nil || len(spans) == 0 {
		return
	}
	baseUs := base.Sub(t.start).Microseconds()
	if baseUs < 0 {
		baseUs = 0
	}
	t.mu.Lock()
	for _, s := range spans {
		if s.StartUs < 0 {
			s.StartUs = 0
		}
		if s.DurationUs < 0 {
			s.DurationUs = 0
		}
		s.StartUs += baseUs
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	requestIDKey
)

// NewContext returns ctx carrying tr, the conventional way a tracer
// crosses package boundaries (HTTP handler → engine → runner → RPC).
func NewContext(ctx context.Context, tr Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, tr)
}

// FromContext returns the tracer carried by ctx, or Nop when none is.
func FromContext(ctx context.Context) Tracer {
	if tr, ok := ctx.Value(tracerKey).(Tracer); ok && tr != nil {
		return tr
	}
	return Nop
}

// TraceFromContext returns the recording trace carried by ctx, or nil
// when the context carries no tracer or only the no-op one. The
// daemon's slow-query log uses this to dump spans after the fact.
func TraceFromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(tracerKey).(*Trace)
	return tr
}

// RequestIDHeader is the HTTP header carrying a request's ID; the
// daemon echoes it and the coordinator forwards it on worker RPCs so
// one query is greppable across the fleet.
const RequestIDHeader = "X-Request-Id"

// WithRequestID returns ctx carrying id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// NewRequestID returns a fresh 16-hex-digit random request ID.
func NewRequestID() string {
	var b [8]byte
	rand.Read(b[:]) // never fails on supported platforms
	return hex.EncodeToString(b[:])
}
