package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func fastTrace(id string) StoredTrace {
	return StoredTrace{ID: id, Endpoint: "/v1/mine", Source: "miss", Start: time.Now(), DurationMs: 0.2}
}

// TestTraceStoreEvictionOrder: the ring retains exactly the last N
// recorded traces, newest first, and Get stops finding a trace once it
// has left both the ring and its exemplar slot.
func TestTraceStoreEvictionOrder(t *testing.T) {
	s := NewTraceStore(4, 1)
	for i := 0; i < 10; i++ {
		s.Record(fastTrace(fmt.Sprintf("t%d", i)))
	}
	// All ten landed in the same latency bucket with one exemplar slot,
	// so retention is the ring (t6..t9) plus the newest exemplar (t9).
	list := s.List()
	want := []string{"t9", "t8", "t7", "t6"}
	if len(list) != len(want) {
		t.Fatalf("retained %d traces, want %d: %+v", len(list), len(want), list)
	}
	for i, id := range want {
		if list[i].ID != id {
			t.Errorf("list[%d] = %q, want %q", i, list[i].ID, id)
		}
		if list[i].Spans != nil {
			t.Errorf("list[%d] carries spans; summaries must not", i)
		}
	}
	if _, ok := s.Get("t3"); ok {
		t.Error("t3 survived eviction from a 4-entry ring after 10 records")
	}
	if tr, ok := s.Get("t9"); !ok || tr.Source != "miss" {
		t.Errorf("Get(t9) = %+v, %v; want the retained trace", tr, ok)
	}
}

// TestTraceStoreExemplarRetention: one slow trace must survive an
// arbitrary flood of fast ones — that is the whole point of the
// per-bucket reservoirs. A fast burst can only displace fast exemplars.
func TestTraceStoreExemplarRetention(t *testing.T) {
	s := NewTraceStore(8, 2)
	slow := StoredTrace{ID: "slow", Endpoint: "/v1/mine", Source: "miss", DurationMs: 7500,
		Spans: []SpanData{{Name: "stage2.grow", DurationUs: 7_400_000}}}
	s.Record(slow)
	for i := 0; i < 500; i++ {
		s.Record(fastTrace(fmt.Sprintf("fast%d", i)))
	}
	got, ok := s.Get("slow")
	if !ok {
		t.Fatal("slow trace evicted by fast traffic; exemplar reservoir failed")
	}
	if len(got.Spans) != 1 || got.Spans[0].Name != "stage2.grow" {
		t.Errorf("slow trace lost its spans: %+v", got.Spans)
	}
	found := false
	for _, tr := range s.List() {
		if tr.ID == "slow" {
			found = true
		}
	}
	if !found {
		t.Error("slow trace missing from List")
	}
}

// TestTraceStoreNewestWinsPerID: a batch records one run per unique
// entry under the batch's single request ID; Get must return the
// newest.
func TestTraceStoreNewestWinsPerID(t *testing.T) {
	s := NewTraceStore(8, 1)
	s.Record(StoredTrace{ID: "rid", Endpoint: "/v1/batch", DurationMs: 1, Workers: 1})
	s.Record(StoredTrace{ID: "rid", Endpoint: "/v1/batch", DurationMs: 2, Workers: 3})
	got, ok := s.Get("rid")
	if !ok || got.Workers != 3 {
		t.Fatalf("Get = %+v, %v; want the newest (workers=3)", got, ok)
	}
}

// TestTraceStoreConcurrent hammers Record/Get/List from many
// goroutines; run under -race this pins the locking discipline.
func TestTraceStoreConcurrent(t *testing.T) {
	s := NewTraceStore(16, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("g%d-%d", g, i)
				s.Record(StoredTrace{ID: id, DurationMs: float64(i % 50)})
				s.Get(id)
				if i%20 == 0 {
					s.List()
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() == 0 {
		t.Error("store empty after concurrent records")
	}
}

// TestGraftRebasesAndClamps: grafted spans are offset by the base
// instant and can never surface negative offsets — not from a base
// before the trace start (coordinator clock behind), not from
// corrupted negative inputs (worker clock garbage). This is the skew
// pin for cross-process stitching: worker spans travel as offsets
// relative to the worker's own trace start, so absolute clock skew
// never enters; clamping covers hostile inputs.
func TestGraftRebasesAndClamps(t *testing.T) {
	tr := NewTrace()
	base := time.Now().Add(5 * time.Millisecond)
	tr.Graft([]SpanData{
		{Name: "worker.stage1", StartUs: 100, DurationUs: 400},
		{Name: "worker.skewed", StartUs: -30_000, DurationUs: -5},
	}, base)
	// Base far in this trace's past: clamped to offset 0, not negative.
	tr.Graft([]SpanData{{Name: "worker.past", StartUs: 10, DurationUs: 1}}, time.Now().Add(-time.Hour))

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		if s.StartUs < 0 || s.DurationUs < 0 {
			t.Errorf("span %s has negative offset: start=%d dur=%d", s.Name, s.StartUs, s.DurationUs)
		}
		byName[s.Name] = s
	}
	if got := byName["worker.stage1"]; got.StartUs < 100 {
		t.Errorf("worker.stage1 start %dus not rebased past its own offset", got.StartUs)
	}
	if got := byName["worker.skewed"]; got.DurationUs != 0 {
		t.Errorf("negative duration not clamped: %d", got.DurationUs)
	}
	if got := byName["worker.past"]; got.StartUs != 10 {
		t.Errorf("past base must clamp to the trace start: start=%d, want 10", got.StartUs)
	}
	// A nil trace tolerates grafting, like every other obs entry point.
	var nilTrace *Trace
	nilTrace.Graft([]SpanData{{Name: "x"}}, base)
}
