package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the fixed upper bounds, in milliseconds,
// used for every latency histogram in the daemon (mine latency,
// admission wait, worker RPC latency). Fixed boundaries keep snapshots
// mergeable and the Prometheus exposition stable across restarts.
var DefaultLatencyBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram is a fixed-boundary latency histogram safe for concurrent
// Observe calls: per-bucket atomic counters plus running count, sum and
// max. An observation equal to a boundary lands in that boundary's
// bucket (le semantics, like Prometheus).
type Histogram struct {
	bounds []float64      // ascending upper bounds in milliseconds
	counts []atomic.Int64 // len(bounds)+1; last is the overflow (+Inf) bucket
	count  atomic.Int64
	sumUs  atomic.Int64
	maxUs  atomic.Int64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds in milliseconds; nil means DefaultLatencyBuckets.
func NewHistogram(boundsMs []float64) *Histogram {
	if boundsMs == nil {
		boundsMs = DefaultLatencyBuckets
	}
	return &Histogram{
		bounds: boundsMs,
		counts: make([]atomic.Int64, len(boundsMs)+1),
	}
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	ms := float64(us) / 1000
	// First bound >= ms: exact-boundary samples land in that bucket;
	// larger than every bound lands in the overflow slot.
	i := sort.SearchFloat64s(h.bounds, ms)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumUs.Add(us)
	for {
		cur := h.maxUs.Load()
		if us <= cur || h.maxUs.CompareAndSwap(cur, us) {
			return
		}
	}
}

// HistogramBucket is one cumulative bucket: the count of samples at or
// below LeMs milliseconds.
type HistogramBucket struct {
	LeMs  float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram: total
// count, sum and max in milliseconds, and the cumulative buckets
// (Prometheus-style; the implicit +Inf bucket equals Count).
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	SumMs   float64           `json:"sum_ms"`
	MaxMs   float64           `json:"max_ms"`
	Buckets []HistogramBucket `json:"buckets"`
}

// Snapshot returns the current cumulative bucket counts. Concurrent
// observers may land between bucket reads, so the buckets are
// monotone but the totals can trail a racing Observe by one sample;
// quiescent snapshots are exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		SumMs:   float64(h.sumUs.Load()) / 1000,
		MaxMs:   float64(h.maxUs.Load()) / 1000,
		Buckets: make([]HistogramBucket, len(h.bounds)),
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		s.Buckets[i] = HistogramBucket{LeMs: b, Count: cum}
	}
	return s
}
