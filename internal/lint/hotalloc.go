package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc guards the PR 3 de-allocation work: the Stage I/II hot
// paths were rebuilt on arenas, epoch-stamped scratch and columnar
// embeddings precisely to get fmt formatting, string materialization
// and timestamp syscalls out of the per-candidate cost. In the
// hot-path packages it flags fmt.Sprint*/fmt.Append* calls, time.Now,
// and non-constant string concatenation. Display methods (String,
// Name, Error, GoString) are exempt — they are debug/reporting
// surfaces, never on the mining path. Deliberate exceptions (a
// stage-boundary timestamp taken once per mine, not per candidate)
// carry //lint:allow hotalloc with the justification.
var HotAlloc = &Analyzer{
	Name:     "hotalloc",
	Doc:      "allocation or timestamp primitives in hot-path packages",
	Packages: []string{"internal/core", "internal/dfscode", "internal/support"},
	Run:      runHotAlloc,
}

// displayMethods never run on the mining path.
var displayMethods = map[string]bool{"String": true, "Name": true, "Error": true, "GoString": true}

var hotFmtFuncs = []string{"Sprint", "Sprintf", "Sprintln", "Append", "Appendf", "Appendln"}

func runHotAlloc(p *Pass) {
	for _, f := range p.Files {
		for _, fn := range funcsOf(f) {
			if displayMethods[fn.name] {
				continue
			}
			runHotAllocFunc(p, fn)
		}
	}
}

func runHotAllocFunc(p *Pass, fn funcNode) {
	inspectShallow(fn.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := isPkgCall(p.Info, n, "fmt", hotFmtFuncs...); ok {
				p.Reportf(n.Pos(), "fmt.%s allocates on a hot path; build into a reused buffer, or annotate //lint:allow hotalloc <reason>", name)
			}
			if _, ok := isPkgCall(p.Info, n, "time", "Now"); ok {
				p.Reportf(n.Pos(), "time.Now on a hot path; hoist the timestamp to the stage boundary, or annotate //lint:allow hotalloc <reason>")
			}
		case *ast.BinaryExpr:
			if n.Op != token.ADD {
				return true
			}
			tv, ok := p.Info.Types[n]
			if !ok || tv.Value != nil {
				return true // non-expression or compile-time constant
			}
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				p.Reportf(n.OpPos, "string concatenation allocates on a hot path; use a byte arena or reused buffer, or annotate //lint:allow hotalloc <reason>")
			}
		}
		return true
	})
}
