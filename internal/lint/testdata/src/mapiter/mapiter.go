// Package mapiter is the fixture for the mapiter analyzer: every
// `range` over a map that feeds an ordered result must be followed by
// a deterministic sort.
package mapiter

import (
	"slices"
	"sort"
)

// keysUnsorted leaks map iteration order into its result.
func keysUnsorted(m map[int]string) []int {
	out := []int{}
	for k := range m {
		out = append(out, k) // want `map iteration order`
	}
	return out
}

// keysSorted is the corrected form: sort after the loop.
func keysSorted(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// keysSlices sorts through the slices package instead.
func keysSlices(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// invert writes keyed by the iterated value: order-independent.
func invert(m map[int]string) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// stream sends in map iteration order.
func stream(m map[int]string, ch chan<- int) {
	for k := range m {
		ch <- k // want `map iteration order`
	}
}

// local appends only into a slice created inside the loop body.
func local(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		tmp := []int{}
		for _, v := range vs {
			tmp = append(tmp, v*2)
		}
		total += len(tmp)
	}
	return total
}

type acc struct{ out []string }

// collect accumulates into a field in map iteration order.
func (a *acc) collect(m map[string]int) {
	for k := range m {
		a.out = append(a.out, k) // want `map iteration order`
	}
}

// allowed documents a justified exception.
func allowed(m map[int]string) []int {
	var out []int
	for k := range m {
		//lint:allow mapiter order-insensitive set semantics, consumer dedups
		out = append(out, k)
	}
	return out
}

// mergeByKey appends into elements indexed by the range key: the
// writes partition by key, so per-key order is deterministic.
func mergeByKey(locals []map[int][]string) map[int][]string {
	out := map[int][]string{}
	for _, loc := range locals {
		for k, vs := range loc {
			out[k] = append(out[k], vs...)
		}
	}
	return out
}

// mergeByOtherIndex appends into an element indexed by something other
// than the range key: iteration order leaks.
func mergeByOtherIndex(m map[int]string, out [][]string, slot int) {
	for _, v := range m {
		out[slot] = append(out[slot], v) // want `map iteration order`
	}
}

// sliceRange iterates a slice, not a map: always deterministic.
func sliceRange(vs []int) []int {
	var out []int
	for _, v := range vs {
		out = append(out, v)
	}
	return out
}
