// Package atomicfield is the fixture for the atomicfield analyzer: a
// field accessed through sync/atomic anywhere must be accessed through
// sync/atomic everywhere.
package atomicfield

import "sync/atomic"

type counters struct {
	hits  uint64
	total uint64
	mode  int32
}

func (c *counters) inc() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counters) read() uint64 {
	return c.hits // want `plainly here`
}

func (c *counters) write(v uint64) {
	c.hits = v // want `plainly here`
}

func (c *counters) atomicRead() uint64 {
	return atomic.LoadUint64(&c.hits)
}

// plainTotal only ever uses plain access: single-goroutine field, fine.
func (c *counters) plainTotal() uint64 {
	c.total++
	return c.total
}

func (c *counters) setMode(m int32) {
	atomic.StoreInt32(&c.mode, m)
}

// allowedPeek documents a justified exception (pre-publication read).
func (c *counters) allowedPeek() int32 {
	//lint:allow atomicfield read before the struct is published to other goroutines
	return c.mode
}

// fresh initializes via composite literal before publication: silent.
func fresh() *counters {
	return &counters{hits: 0, total: 0}
}
