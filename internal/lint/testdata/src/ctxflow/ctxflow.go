// Package ctxflow is the fixture for the ctxflow analyzer: request
// paths must thread the caller's context.
package ctxflow

import "context"

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// mintsRoot forks a fresh root instead of threading the caller's ctx.
func mintsRoot(ctx context.Context) error {
	fresh := context.Background() // want `mints a fresh root`
	_ = fresh
	todo := context.TODO() // want `mints a fresh root`
	_ = todo
	return work(ctx)
}

// allowedRoot is a justified root: a background task with no caller.
func allowedRoot() context.Context {
	//lint:allow ctxflow background health probe owns its own lifetime
	return context.Background()
}

// dropsNamed accepts a ctx and silently ignores it.
func dropsNamed(ctx context.Context, n int) int { // want `accepted but never used`
	return n * 2
}

// explicitDiscard is fine in a declaration: interface conformance.
func explicitDiscard(_ context.Context, n int) int {
	return n
}

func literals() {
	// A literal that drops its ctx means the downstream call is
	// context-free — flagged even unnamed.
	dropUnnamed := func(context.Context) error { // want `drops it`
		return nil
	}
	_ = dropUnnamed

	dropBlank := func(_ context.Context) error { // want `drops it`
		return nil
	}
	_ = dropBlank

	dropNamed := func(ctx context.Context) error { // want `accepted but never used`
		return nil
	}
	_ = dropNamed

	threads := func(ctx context.Context) error {
		return work(ctx)
	}
	_ = threads
}
