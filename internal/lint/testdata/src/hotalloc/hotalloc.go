// Package hotalloc is the fixture for the hotalloc analyzer: no fmt
// formatting, timestamps, or string concatenation on hot paths.
package hotalloc

import (
	"fmt"
	"time"
)

const twoParts = "a" + "b" // constant folding: silent

func hot(labels []int, name string) string {
	s := fmt.Sprintf("%d", len(labels)) // want `fmt.Sprintf allocates`
	now := time.Now()                   // want `time.Now on a hot path`
	_ = now
	joined := name + s // want `string concatenation`
	return joined
}

type pat struct{ n int }

// String is a display method: exempt.
func (p pat) String() string {
	return fmt.Sprintf("pat(%d)", p.n)
}

// Name is a display method: exempt.
func (p pat) Name() string {
	return "pat-" + p.String()
}

// coldError builds an error: fmt.Errorf is not in the hot set.
func coldError(n int) error {
	return fmt.Errorf("bad n %d", n)
}

// stamped documents a justified exception.
func stamped() int64 {
	//lint:allow hotalloc stage-boundary timestamp, once per mine not per candidate
	return time.Now().UnixNano()
}
