// Package allowbad is the fixture for malformed //lint:allow
// directives: a missing reason and an unknown analyzer name are both
// findings, and a reasonless directive never suppresses.
package allowbad

import "context"

func missingReason() context.Context {
	//lint:allow ctxflow
	return context.Background()
}

func unknownAnalyzer() int {
	//lint:allow nosuchanalyzer because it sounded plausible
	return 42
}
