// Package trustedalloc is the fixture for the trustedalloc analyzer:
// every make() size must be visibly clamped.
package trustedalloc

// allocHint mirrors the indexio clamp helper.
func allocHint(n int) int {
	if n > 4096 {
		return 4096
	}
	return n
}

func decode(n, l int) []byte {
	buf := make([]byte, n) // want `not visibly clamped`
	_ = buf

	hinted := make([]byte, allocHint(n))
	_ = hinted

	capped := make([]int, 0, min(n, 1024))
	_ = capped

	seqLen := min(l, 64) + 1
	viaVar := make([]int, seqLen)
	_ = viaVar

	raw := l + 1
	unclamped := make([]int, raw) // want `not visibly clamped`
	_ = unclamped

	hdr := make([]byte, len("MAGIC"))
	_ = hdr

	m := make(map[int]bool, allocHint(n))
	_ = m

	ch := make(chan int, 4)
	_ = ch

	grown := allocHint(n) * 2
	arith := make([]byte, grown)
	_ = arith

	return nil
}

// reassigned shows that a variable mutated after a safe initialization
// is no longer trusted.
func reassigned(n int) []int {
	size := min(n, 8)
	size = n
	return make([]int, size) // want `not visibly clamped`
}

// allowed documents a justified exception.
func allowed(n int) []byte {
	//lint:allow trustedalloc size validated against the section table above
	return make([]byte, n)
}
