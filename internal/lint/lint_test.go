package lint

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// fixtureTests pairs each analyzer with its seeded-violation package.
// Every fixture contains at least one line that must fire (marked
// `// want`), the corrected form of the same shape (unmarked, must
// stay silent), and a justified //lint:allow exception.
var fixtureTests = []struct {
	analyzer *Analyzer
	dir      string
}{
	{MapIter, "mapiter"},
	{TrustedAlloc, "trustedalloc"},
	{CtxFlow, "ctxflow"},
	{AtomicField, "atomicfield"},
	{HotAlloc, "hotalloc"},
}

func TestFixtures(t *testing.T) {
	for _, tt := range fixtureTests {
		t.Run(tt.dir, func(t *testing.T) {
			pkgs, err := Load(".", "./testdata/src/"+tt.dir)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			diags := Run(pkgs, []*Analyzer{tt.analyzer}, false)
			checkExpectations(t, pkgs, diags)
		})
	}
}

// wantRe matches one expectation comment: // want `re` `re2` ...
var wantRe = regexp.MustCompile("//\\s*want\\s+((?:`[^`]*`\\s*)+)")

var wantTokenRe = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, pkgs []*Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, tok := range wantTokenRe.FindAllStringSubmatch(m[1], -1) {
						re, err := regexp.Compile(tok[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, tok[1], err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

func checkExpectations(t *testing.T, pkgs []*Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkgs)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// TestAllowDirectiveValidation pins the escape-hatch contract: a
// directive without a reason, or naming an unknown analyzer, is itself
// a finding — so an exception can never silently rot.
func TestAllowDirectiveValidation(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/allowbad")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := Run(pkgs, nil, false)
	var msgs []string
	for _, d := range diags {
		if d.Analyzer != "allow" {
			t.Errorf("unexpected analyzer %q in %s", d.Analyzer, d)
		}
		msgs = append(msgs, d.Message)
	}
	if len(msgs) != 2 {
		t.Fatalf("got %d allow diagnostics %v, want 2", len(msgs), msgs)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{"needs an analyzer name and a reason", "unknown analyzer"} {
		if !strings.Contains(joined, want) {
			t.Errorf("allow diagnostics %q missing %q", joined, want)
		}
	}
}

// TestReasonlessAllowDoesNotSuppress pins that a reasonless directive
// never hides the underlying finding.
func TestReasonlessAllowDoesNotSuppress(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/allowbad")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := Run(pkgs, []*Analyzer{CtxFlow}, false)
	found := false
	for _, d := range diags {
		if d.Analyzer == CtxFlow.Name && strings.Contains(d.Message, "mints a fresh root") {
			found = true
		}
	}
	if !found {
		t.Errorf("reasonless //lint:allow suppressed the ctxflow finding; diagnostics: %v", diags)
	}
}

// TestGating pins the package scoping: a gated analyzer sees only the
// packages whose invariant it encodes.
func TestGating(t *testing.T) {
	for _, tt := range []struct {
		pkg  string
		want []string
	}{
		{"skinnymine/internal/core", []string{"mapiter", "atomicfield", "hotalloc"}},
		{"skinnymine/internal/indexio", []string{"trustedalloc", "atomicfield"}},
		{"skinnymine/internal/server", []string{"ctxflow", "atomicfield"}},
		{"skinnymine/internal/shard", []string{"mapiter", "ctxflow", "atomicfield"}},
		{"skinnymine/internal/graph", []string{"atomicfield"}},
	} {
		var got []string
		for _, a := range Analyzers() {
			if a.AppliesTo(tt.pkg) {
				got = append(got, a.Name)
			}
		}
		if fmt.Sprint(got) != fmt.Sprint(tt.want) {
			t.Errorf("%s: gated analyzers = %v, want %v", tt.pkg, got, tt.want)
		}
	}
}

// TestSuiteCleanOnTree runs the gated suite over the whole module —
// the same invocation CI gates on — and requires zero findings, so the
// tree can never drift lint-dirty between CI runs.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := Run(pkgs, Analyzers(), true)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
