// Package lint is the repo's invariant-enforcing static-analysis
// suite: five analyzers that turn the correctness properties
// ARCHITECTURE.md documents — and the refguard tests pin
// probabilistically — into deterministic build-time checks, run as a
// gating CI step via cmd/skinnylint.
//
// # Why a custom suite
//
// The engine's guarantees (byte-identical output at any concurrency or
// shard count, no-trusted-allocation snapshot decoding, end-to-end
// context propagation, allocation-free hot paths) are invariants of
// the *code shape*, not just of its behavior: a `range` over a map
// that appends into a result slice is wrong even if today's inputs
// happen to iterate in a lucky order. Randomized refguards only catch
// the violations their inputs exercise; these analyzers reject the
// pattern itself.
//
// # Analyzers
//
//   - mapiter: in the deterministic-output packages (core, shard,
//     constraint, dfscode), a range over a map whose body appends to
//     or sends into state that outlives the loop must be followed by a
//     deterministic sort in the same function.
//   - trustedalloc: in indexio, every make() size/capacity that is not
//     a compile-time constant or a len/cap of in-memory data must flow
//     through a clamp (allocHint or the min builtin) — decoded wire
//     counts are never trusted for allocation.
//   - ctxflow: in the serving packages (server, shard), no
//     context.Background/context.TODO on request paths, and no
//     function that accepts a ctx it silently drops.
//   - atomicfield: a struct field accessed through sync/atomic
//     functions anywhere must be accessed through sync/atomic
//     everywhere (or ported to the atomic.Int64-style typed API).
//   - hotalloc: in the hot-path packages (core, dfscode, support), no
//     fmt.Sprint*, time.Now, or non-constant string concatenation
//     outside String/Name/Error display methods.
//
// # The //lint:allow escape hatch
//
// A justified exception is annotated on (or on the line above) the
// flagged line:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory: an allow directive without one is itself a
// diagnostic. Directives are scoped to a single line so an exception
// never silently covers new code.
//
// # How loading works
//
// The suite deliberately depends only on the standard library: Load
// shells out to `go list -json -deps -export`, parses the target
// packages' sources, and type-checks them against the build cache's
// export data via go/importer's gc lookup mode — the same mechanism
// `go vet`'s unitchecker uses. Analyzers therefore see full type
// information without golang.org/x/tools.
package lint
