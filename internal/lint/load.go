package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, type-checked target package: the unit an
// Analyzer runs over. Test files are excluded — the suite checks
// production code shape, and fixtures prove analyzer behavior.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	allows map[string][]allowDirective // filename base -> directives
}

// listedPackage is the subset of `go list -json` output the loader
// consumes. DepOnly distinguishes pure dependencies (export data only)
// from the packages the caller named (parsed and type-checked).
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (as `go list` would, relative to dir) and
// returns the named packages parsed and type-checked. Dependencies —
// in-module and standard library alike — are imported from the build
// cache's export data, so loading works offline and never re-checks
// the world.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json", "-deps", "-export", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
		}
		p := &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		}
		p.allows = collectAllows(p)
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
