package lint

import (
	"go/ast"
	"go/types"
)

// TrustedAlloc enforces the snapshot-decoding discipline documented in
// internal/indexio: a count decoded from the wire is never trusted for
// allocation, because a corrupt length prefix must fail at the next
// read, not attempt a multi-gigabyte make before the trailing CRC gets
// a chance to run. Mechanically: every make() size or capacity must be
// visibly clamped — a compile-time constant, a len/cap of in-memory
// data, a call through a clamp helper (allocHint or the min builtin),
// or arithmetic over those. A bare decoded variable, even one
// range-checked on a previous line, is rejected: the clamp belongs in
// the allocation expression where the next reader (and this analyzer)
// can see it.
var TrustedAlloc = &Analyzer{
	Name:     "trustedalloc",
	Doc:      "make() sized by decoded wire input without a visible clamp",
	Packages: []string{"internal/indexio"},
	Run:      runTrustedAlloc,
}

// clampFuncs are the package-local helpers trusted to bound a size.
var clampFuncs = map[string]bool{"allocHint": true}

func runTrustedAlloc(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
				return true
			}
			for _, arg := range call.Args[1:] {
				if !safeSize(p, arg, 0) {
					p.Reportf(arg.Pos(), "allocation size %q is not visibly clamped; route it through allocHint(...) or min(..., bound)", exprString(p, arg))
				}
			}
			return true
		})
	}
}

// safeSize reports whether the size expression is bounded by
// construction. Identifiers are chased one definition deep so the
// `n := min(l, bound) + 1` idiom stays allowed.
func safeSize(p *Pass, e ast.Expr, depth int) bool {
	if depth > 8 {
		return false
	}
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
		return true // compile-time constant
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return safeSize(p, e.X, depth+1)
	case *ast.BinaryExpr:
		return safeSize(p, e.X, depth+1) && safeSize(p, e.Y, depth+1)
	case *ast.CallExpr:
		switch fun := e.Fun.(type) {
		case *ast.Ident:
			if b, ok := p.Info.Uses[fun].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap", "min":
					return true
				}
				return false
			}
			return clampFuncs[fun.Name]
		}
		return false
	case *ast.Ident:
		def := definingExpr(p, e)
		if def == nil {
			return false
		}
		return safeSize(p, def, depth+1)
	}
	return false
}

// definingExpr finds the expression a locally-defined identifier was
// initialized from (via := or var); nil when there is no single
// initializer or the variable is reassigned later.
func definingExpr(p *Pass, id *ast.Ident) ast.Expr {
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		return nil
	}
	var def ast.Expr
	reassigned := false
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					lid, ok := lhs.(*ast.Ident)
					if !ok || p.Info.ObjectOf(lid) != obj {
						continue
					}
					if p.Info.Defs[lid] != nil && len(n.Lhs) == len(n.Rhs) {
						def = n.Rhs[i]
					} else {
						reassigned = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if p.Info.ObjectOf(name) == obj && i < len(n.Values) {
						def = n.Values[i]
					}
				}
			case *ast.IncDecStmt:
				if lid, ok := n.X.(*ast.Ident); ok && p.Info.ObjectOf(lid) == obj {
					reassigned = true
				}
			}
			return true
		})
	}
	if reassigned {
		return nil
	}
	return def
}
