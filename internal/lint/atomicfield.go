package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField catches the metrics/histogram bug class: a struct field
// updated through sync/atomic functions in one place and read or
// written plainly in another. Mixed access is a data race the race
// detector only sees when both sides happen to run — this analyzer
// sees it whenever both shapes exist. Within one package it collects
// every field passed as &x.f to a sync/atomic function, then flags
// every other access to the same field that does not go through
// sync/atomic. Composite-literal initialization before publication is
// the one conventionally safe plain access and stays silent; the
// durable fix is the typed atomic.Int64-style API, which makes plain
// access unrepresentable.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "struct field accessed both atomically and plainly",
	Run:  runAtomicField,
}

func runAtomicField(p *Pass) {
	atomicUses := make(map[*types.Var][]*ast.SelectorExpr)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := isPkgCall(p.Info, call, "sync/atomic"); !ok {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldOf(p, sel); fv != nil {
					atomicUses[fv] = append(atomicUses[fv], sel)
				}
			}
			return true
		})
	}
	if len(atomicUses) == 0 {
		return
	}
	blessed := make(map[*ast.SelectorExpr]bool)
	for _, sels := range atomicUses {
		for _, sel := range sels {
			blessed[sel] = true
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || blessed[sel] {
				return true
			}
			fv := fieldOf(p, sel)
			if fv == nil {
				return true
			}
			if _, atomic := atomicUses[fv]; atomic {
				p.Reportf(sel.Sel.Pos(), "field %s is accessed through sync/atomic elsewhere but plainly here; every access must be atomic (use the typed atomic.%s API)", fv.Name(), suggestedAtomicType(fv))
			}
			return true
		})
	}
}

// fieldOf resolves a selector to the struct field it names, or nil.
func fieldOf(p *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

func suggestedAtomicType(fv *types.Var) string {
	if b, ok := fv.Type().Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		}
	}
	return "Value"
}
