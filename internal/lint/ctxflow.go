package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow pins the deadline-propagation guarantee: a client that gives
// up must stop costing the fleet anything, which only holds if every
// request-path hop threads the caller's context. Two shapes break the
// chain:
//
//   - minting a fresh root with context.Background()/context.TODO()
//     inside a serving package (legitimate roots — a background health
//     probe, a context-free compatibility wrapper — carry a
//     //lint:allow ctxflow with their justification);
//   - accepting a ctx and dropping it. In function literals this is
//     flagged even for unnamed/underscore parameters, because a
//     literal's signature is dictated by its callee — a dropped ctx
//     there means the downstream call is context-free, the exact bug.
//     Named declarations may use `_` (interface conformance); only a
//     named-but-unused ctx parameter is flagged there.
var CtxFlow = &Analyzer{
	Name:     "ctxflow",
	Doc:      "request paths must thread the caller's context",
	Packages: []string{"internal/server", "internal/shard"},
	Run:      runCtxFlow,
}

func runCtxFlow(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := isPkgCall(p.Info, n, "context", "Background", "TODO"); ok {
					p.Reportf(n.Pos(), "context.%s mints a fresh root in a request-path package; thread the caller's ctx (or annotate //lint:allow ctxflow <reason>)", name)
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkCtxParams(p, n.Type, n.Body, false)
				}
			case *ast.FuncLit:
				checkCtxParams(p, n.Type, n.Body, true)
			}
			return true
		})
	}
}

func checkCtxParams(p *Pass, typ *ast.FuncType, body *ast.BlockStmt, isLiteral bool) {
	if typ.Params == nil {
		return
	}
	for _, field := range typ.Params.List {
		if !isContextType(p, field.Type) {
			continue
		}
		if len(field.Names) == 0 {
			if isLiteral {
				p.Reportf(field.Pos(), "function literal accepts a context but drops it; name it ctx and pass it downstream")
			}
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				if isLiteral {
					p.Reportf(name.Pos(), "function literal accepts a context but drops it; name it ctx and pass it downstream")
				}
				continue
			}
			obj := p.Info.Defs[name]
			if obj == nil || usesObject(p, body, obj) {
				continue
			}
			p.Reportf(name.Pos(), "parameter %s is accepted but never used; pass it downstream or discard it explicitly as _", name.Name)
		}
	}
}

func isContextType(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func usesObject(p *Pass, body ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}
