package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer encodes one invariant as a check over a type-checked
// package. Run reports findings through the Pass; suppression via
// //lint:allow and package gating are the framework's job, not the
// analyzer's.
type Analyzer struct {
	Name string
	Doc  string
	// Packages lists the import-path suffixes the analyzer gates on
	// when run through cmd/skinnylint; empty means every package. The
	// fixture tests bypass gating so analyzers stay testable outside
	// their production packages.
	Packages []string
	Run      func(*Pass)
}

// AppliesTo reports whether the analyzer gates on the given import
// path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, suffix := range a.Packages {
		if pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix) {
			return true
		}
	}
	return false
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapIter, TrustedAlloc, CtxFlow, AtomicField, HotAlloc}
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet
	Files    []*ast.File
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding unless an in-scope //lint:allow directive
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Pkg.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-safe Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Run applies the analyzers to the packages. When gate is true (the
// cmd/skinnylint path) each analyzer sees only the packages it gates
// on; the fixture harness passes false. Malformed allow directives are
// reported regardless of analyzer selection, and the result is sorted
// by position for deterministic output.
func Run(pkgs []*Package, analyzers []*Analyzer, gate bool) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, pkg.directiveDiagnostics()...)
		for _, a := range analyzers {
			if gate && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// allowPrefix introduces a suppression directive. The format is
// //lint:allow <analyzer> <reason>; the reason is mandatory.
const allowPrefix = "//lint:allow"

type allowDirective struct {
	line     int
	analyzer string
	reason   string
	pos      token.Pos
}

// collectAllows scans every file's comments once; directives are
// keyed by file base name.
func collectAllows(p *Package) map[string][]allowDirective {
	out := make(map[string][]allowDirective)
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				out[filename] = append(out[filename], allowDirective{
					line:     p.Fset.Position(c.Pos()).Line,
					analyzer: name,
					reason:   strings.TrimSpace(reason),
					pos:      c.Pos(),
				})
			}
		}
	}
	return out
}

// allowed reports whether a directive for the analyzer covers the
// position: same line, or the line directly above (a directive on its
// own line annotates the statement below it). Directives without a
// reason never suppress — they are themselves findings.
func (p *Package) allowed(analyzer string, pos token.Position) bool {
	for _, d := range p.allows[pos.Filename] {
		if d.analyzer != analyzer || d.reason == "" {
			continue
		}
		if d.line == pos.Line || d.line == pos.Line-1 {
			return true
		}
	}
	return false
}

// directiveDiagnostics flags malformed allow directives: a missing
// reason or an analyzer name not in the suite.
func (p *Package) directiveDiagnostics() []Diagnostic {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, ds := range p.allows {
		for _, d := range ds {
			switch {
			case d.analyzer == "" || d.reason == "":
				out = append(out, Diagnostic{
					Pos:      p.Fset.Position(d.pos),
					Analyzer: "allow",
					Message:  "allow directive needs an analyzer name and a reason: //lint:allow <analyzer> <reason>",
				})
			case !known[d.analyzer]:
				out = append(out, Diagnostic{
					Pos:      p.Fset.Position(d.pos),
					Analyzer: "allow",
					Message:  fmt.Sprintf("allow directive names unknown analyzer %q", d.analyzer),
				})
			}
		}
	}
	return out
}

// funcsOf yields every function with a body in the file — declarations
// and literals — paired so analyzers can reason per function without
// double-visiting nested literals.
type funcNode struct {
	name string // declared name; "" for literals
	typ  *ast.FuncType
	body *ast.BlockStmt
}

func funcsOf(f *ast.File) []funcNode {
	var out []funcNode
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcNode{name: fn.Name.Name, typ: fn.Type, body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcNode{typ: fn.Type, body: fn.Body})
		}
		return true
	})
	return out
}

// inspectShallow walks the statements of body but does not descend
// into nested function literals — those are separate functions with
// their own pass.
func inspectShallow(body ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != body {
			return false
		}
		return fn(n)
	})
}

// exprString renders an expression back to source for diagnostics.
func exprString(p *Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, p.Fset, e); err != nil {
		return "size"
	}
	return buf.String()
}

// isPkgCall reports whether call is pkg.name(...) for an imported
// package with the given path, resolving the qualifier through the
// type info (so renamed imports still match).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	for _, name := range names {
		if sel.Sel.Name == name {
			return name, true
		}
	}
	return sel.Sel.Name, len(names) == 0
}
