package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter enforces the byte-identical-output invariant at its most
// common failure point: Go map iteration order is randomized, so a
// `range` over a map that appends to (or sends into) state outliving
// the loop produces a different order every run unless the function
// sorts afterwards. In the deterministic-output packages that is
// exactly the bug class the refguard tests exist to catch — this
// analyzer rejects the shape itself.
//
// A loop is flagged when its body accumulates into a slice declared
// outside the loop, a field, or a channel, and no call into the sort
// or slices package follows the loop in the same function. Writes
// keyed by the map key (m2[k] = v) are order-independent and stay
// silent.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "range over a map feeding an ordered result without a deterministic sort",
	Packages: []string{
		"internal/core", "internal/shard", "internal/constraint", "internal/dfscode",
	},
	Run: runMapIter,
}

func runMapIter(p *Pass) {
	for _, f := range p.Files {
		for _, fn := range funcsOf(f) {
			runMapIterFunc(p, fn)
		}
	}
}

func runMapIterFunc(p *Pass, fn funcNode) {
	var ranges []*ast.RangeStmt
	inspectShallow(fn.body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if t := p.TypeOf(rs.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					ranges = append(ranges, rs)
				}
			}
		}
		return true
	})
	for _, rs := range ranges {
		accPos := accumulationInto(p, rs)
		if !accPos.IsValid() {
			continue
		}
		if sortFollows(p, fn, rs) {
			continue
		}
		p.Reportf(accPos, "result accumulated in map iteration order with no deterministic sort after the loop; sort the keys first, sort the result, or annotate //lint:allow mapiter <reason>")
	}
}

// accumulationInto returns the position of the first ordered
// accumulation inside the range body: an append whose base outlives
// the loop, or a channel send.
func accumulationInto(p *Pass, rs *ast.RangeStmt) token.Pos {
	var pos token.Pos
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			pos = n.Arrow
			return false
		case *ast.CallExpr:
			id, ok := n.Fun.(*ast.Ident)
			if !ok || len(n.Args) == 0 {
				return true
			}
			if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
				return true
			}
			if outlivesLoop(p, n.Args[0], rs) {
				pos = n.Pos()
				return false
			}
		}
		return true
	})
	return pos
}

// outlivesLoop reports whether the append base survives past the
// range statement: a variable declared before the loop, a struct
// field, or an indexed element of something non-local. A slice
// created inside the loop body is loop-local; appending to it is
// order-safe on its own. An element indexed by the range KEY
// (out[k] = append(out[k], ...)) is also safe: the writes partition
// by key, so each partition's order is independent of which key the
// iteration visits first.
func outlivesLoop(p *Pass, base ast.Expr, rs *ast.RangeStmt) bool {
	switch e := base.(type) {
	case *ast.Ident:
		obj := p.Info.ObjectOf(e)
		if obj == nil {
			return false
		}
		return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return !indexedByRangeKey(p, e, rs)
	case *ast.ParenExpr:
		return outlivesLoop(p, e.X, rs)
	}
	return false
}

// indexedByRangeKey reports whether the index expression is exactly
// the range statement's key variable.
func indexedByRangeKey(p *Pass, e *ast.IndexExpr, rs *ast.RangeStmt) bool {
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return false
	}
	keyObj := p.Info.ObjectOf(keyID)
	idxID, ok := e.Index.(*ast.Ident)
	return ok && keyObj != nil && p.Info.ObjectOf(idxID) == keyObj
}

// sortFollows reports whether any call into the sort or slices
// package appears after the range statement in the same function
// body. The check is deliberately coarse — any later sort call
// restores a deterministic order in every shape this codebase uses,
// and a false "sorted" still leaves the refguards as the backstop.
func sortFollows(p *Pass, fn funcNode, rs *ast.RangeStmt) bool {
	found := false
	inspectShallow(fn.body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		if _, ok := isPkgCall(p.Info, call, "sort"); ok {
			found = true
		} else if _, ok := isPkgCall(p.Info, call, "slices"); ok {
			found = true
		}
		return !found
	})
	return found
}
