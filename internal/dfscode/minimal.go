package dfscode

import (
	"fmt"

	"skinnymine/internal/graph"
)

// MinCode computes the minimal (canonical) DFS code of a connected
// labeled graph: the lexicographically smallest DFS code over all DFS
// traversals. Two connected graphs are isomorphic iff their minimal
// codes are equal.
//
// The construction is the standard stepwise greedy with embedding
// projection: keep every partial DFS traversal realizing the minimal code
// prefix; at each step pick the smallest extension tuple offered by any
// surviving traversal and drop traversals that cannot realize it. The
// backward-before-forward and deepest-forward-first extension order
// guarantees no surviving traversal strands an uncoverable edge, so the
// greedy prefix is always completable.
func MinCode(g *graph.Graph) Code {
	m := g.M()
	if m == 0 {
		return nil
	}
	// Seed: minimal (l0, l1) over both orientations of every edge.
	var first Tuple
	haveFirst := false
	for _, e := range g.Edges() {
		for _, or := range [2][2]graph.V{{e.U, e.W}, {e.W, e.U}} {
			t := Tuple{I: 0, J: 1, LI: g.Label(or[0]), LJ: g.Label(or[1])}
			if !haveFirst || CompareTuples(t, first) < 0 {
				first = t
				haveFirst = true
			}
		}
	}
	code := Code{first}
	var states []*traversal
	for _, e := range g.Edges() {
		for _, or := range [2][2]graph.V{{e.U, e.W}, {e.W, e.U}} {
			if g.Label(or[0]) == first.LI && g.Label(or[1]) == first.LJ {
				states = append(states, newTraversal(g, or[0], or[1]))
			}
		}
	}

	for len(code) < m {
		var best Tuple
		haveBest := false
		for _, st := range states {
			st.candidates(func(t Tuple) {
				if !haveBest || CompareTuples(t, best) < 0 {
					best = t
					haveBest = true
				}
			})
		}
		if !haveBest {
			// Cannot happen for connected graphs; guard for safety.
			panic(fmt.Sprintf("dfscode: no extension at step %d of %d", len(code), m))
		}
		var next []*traversal
		for _, st := range states {
			next = append(next, st.realize(best)...)
		}
		states = next
		code = append(code, best)
	}
	return code
}

// MinCodeKey returns a canonical string key for any graph, including
// edgeless single-vertex graphs (which minimal DFS codes cannot encode).
func MinCodeKey(g *graph.Graph) string {
	if g.M() == 0 {
		if g.N() == 0 {
			return "empty"
		}
		// Edgeless patterns in this project are single vertices.
		min := g.Label(0)
		for v := 1; v < g.N(); v++ {
			if g.Label(graph.V(v)) < min {
				min = g.Label(graph.V(v))
			}
		}
		return fmt.Sprintf("v%d/%d", min, g.N())
	}
	return MinCode(g).Key()
}

// traversal is a partial DFS traversal of g realizing the current code
// prefix: vmap maps code vertices to graph vertices, rmp is the rightmost
// path as code-vertex indices, used marks covered graph edges.
type traversal struct {
	g    *graph.Graph
	vmap []graph.V
	vinv map[graph.V]int32
	rmp  []int32
	used map[graph.Edge]struct{}
}

func newTraversal(g *graph.Graph, v0, v1 graph.V) *traversal {
	e := graph.Edge{U: v0, W: v1}.Norm()
	return &traversal{
		g:    g,
		vmap: []graph.V{v0, v1},
		vinv: map[graph.V]int32{v0: 0, v1: 1},
		rmp:  []int32{0, 1},
		used: map[graph.Edge]struct{}{e: {}},
	}
}

func (t *traversal) clone() *traversal {
	c := &traversal{
		g:    t.g,
		vmap: append([]graph.V(nil), t.vmap...),
		vinv: make(map[graph.V]int32, len(t.vinv)),
		rmp:  append([]int32(nil), t.rmp...),
		used: make(map[graph.Edge]struct{}, len(t.used)+1),
	}
	for k, v := range t.vinv {
		c.vinv[k] = v
	}
	for k := range t.used {
		c.used[k] = struct{}{}
	}
	return c
}

// candidates reports every extension tuple this traversal can make:
// backward edges from the rightmost vertex to rightmost-path vertices,
// and forward edges from rightmost-path vertices to unmapped neighbors.
func (t *traversal) candidates(yield func(Tuple)) {
	r := t.rmp[len(t.rmp)-1]
	rv := t.vmap[r]
	// Backward: rightmost vertex -> earlier rightmost-path vertex.
	for _, w := range t.g.Neighbors(rv) {
		ci, mapped := t.vinv[w]
		if !mapped {
			continue
		}
		if _, covered := t.used[(graph.Edge{U: rv, W: w}).Norm()]; covered {
			continue
		}
		if t.onRMP(ci) && ci < r {
			yield(Tuple{I: r, J: ci, LI: t.g.Label(rv), LJ: t.g.Label(w)})
		}
	}
	// Forward: rightmost-path vertex -> new vertex.
	n := int32(len(t.vmap))
	for _, ci := range t.rmp {
		cv := t.vmap[ci]
		for _, w := range t.g.Neighbors(cv) {
			if _, mapped := t.vinv[w]; mapped {
				continue
			}
			yield(Tuple{I: ci, J: n, LI: t.g.Label(cv), LJ: t.g.Label(w)})
		}
	}
}

func (t *traversal) onRMP(ci int32) bool {
	for _, x := range t.rmp {
		if x == ci {
			return true
		}
	}
	return false
}

// realize returns all extensions of t by the given tuple (possibly
// several when multiple graph vertices fit a forward label, or none).
func (t *traversal) realize(tp Tuple) []*traversal {
	var out []*traversal
	if !tp.Forward() {
		r := t.rmp[len(t.rmp)-1]
		if tp.I != r {
			return nil
		}
		rv := t.vmap[r]
		wv := t.vmap[tp.J]
		if !t.onRMP(tp.J) || !t.g.HasEdge(rv, wv) {
			return nil
		}
		e := (graph.Edge{U: rv, W: wv}).Norm()
		if _, covered := t.used[e]; covered {
			return nil
		}
		if t.g.Label(rv) != tp.LI || t.g.Label(wv) != tp.LJ {
			return nil
		}
		c := t.clone()
		c.used[e] = struct{}{}
		return []*traversal{c}
	}
	// Forward from rightmost-path vertex tp.I to a new vertex.
	if !t.onRMP(tp.I) || tp.J != int32(len(t.vmap)) {
		return nil
	}
	src := t.vmap[tp.I]
	if t.g.Label(src) != tp.LI {
		return nil
	}
	for _, w := range t.g.Neighbors(src) {
		if _, mapped := t.vinv[w]; mapped {
			continue
		}
		if t.g.Label(w) != tp.LJ {
			continue
		}
		c := t.clone()
		c.vmap = append(c.vmap, w)
		c.vinv[w] = tp.J
		// New rightmost path: prefix of rmp up to tp.I, then the new vertex.
		var rmp []int32
		for _, x := range c.rmp {
			rmp = append(rmp, x)
			if x == tp.I {
				break
			}
		}
		c.rmp = append(rmp, tp.J)
		c.used[(graph.Edge{U: src, W: w}).Norm()] = struct{}{}
		out = append(out, c)
	}
	return out
}

// IsMin reports whether code is the minimal DFS code of the graph it
// describes.
func IsMin(code Code) bool {
	if len(code) == 0 {
		return true
	}
	return Compare(MinCode(code.Graph()), code) == 0
}
