package dfscode

import (
	"fmt"

	"skinnymine/internal/graph"
)

// MinCode computes the minimal (canonical) DFS code of a connected
// labeled graph: the lexicographically smallest DFS code over all DFS
// traversals. Two connected graphs are isomorphic iff their minimal
// codes are equal.
//
// The construction is the standard stepwise greedy with embedding
// projection: keep every partial DFS traversal realizing the minimal code
// prefix; at each step pick the smallest extension tuple offered by any
// surviving traversal and drop traversals that cannot realize it. The
// backward-before-forward and deepest-forward-first extension order
// guarantees no surviving traversal strands an uncoverable edge, so the
// greedy prefix is always completable.
func MinCode(g *graph.Graph) Code {
	m := g.M()
	if m == 0 {
		return nil
	}
	// Seed: minimal (l0, l1) over both orientations of every edge.
	var first Tuple
	haveFirst := false
	for _, e := range g.Edges() {
		for _, or := range [2][2]graph.V{{e.U, e.W}, {e.W, e.U}} {
			t := Tuple{I: 0, J: 1, LI: g.Label(or[0]), LJ: g.Label(or[1])}
			if !haveFirst || CompareTuples(t, first) < 0 {
				first = t
				haveFirst = true
			}
		}
	}
	code := Code{first}
	cx := newCodeCtx(g)
	var states []*traversal
	for _, e := range g.Edges() {
		for _, or := range [2][2]graph.V{{e.U, e.W}, {e.W, e.U}} {
			if g.Label(or[0]) == first.LI && g.Label(or[1]) == first.LJ {
				states = append(states, newTraversal(cx, or[0], or[1]))
			}
		}
	}

	for len(code) < m {
		var best Tuple
		haveBest := false
		for _, st := range states {
			st.candidates(func(t Tuple) {
				if !haveBest || CompareTuples(t, best) < 0 {
					best = t
					haveBest = true
				}
			})
		}
		if !haveBest {
			// Cannot happen for connected graphs; guard for safety.
			//lint:allow hotalloc panic guard, unreachable for connected graphs
			panic(fmt.Sprintf("dfscode: no extension at step %d of %d", len(code), m))
		}
		var next []*traversal
		for _, st := range states {
			next = append(next, st.realize(best)...)
		}
		states = next
		code = append(code, best)
	}
	return code
}

// MinCodeKey returns a canonical string key for any graph, including
// edgeless single-vertex graphs (which minimal DFS codes cannot encode).
func MinCodeKey(g *graph.Graph) string {
	if g.M() == 0 {
		if g.N() == 0 {
			return "empty"
		}
		// Edgeless patterns in this project are single vertices.
		min := g.Label(0)
		for v := 1; v < g.N(); v++ {
			if g.Label(graph.V(v)) < min {
				min = g.Label(graph.V(v))
			}
		}
		//lint:allow hotalloc edgeless single-vertex fallback, off the mining hot path
		return fmt.Sprintf("v%d/%d", min, g.N())
	}
	return MinCode(g).Key()
}

// codeCtx is the per-MinCode shared, read-only context: the graph and a
// dense edge -> index table so traversals can mark covered edges in a
// flat bitset instead of a map.
type codeCtx struct {
	g       *graph.Graph
	edgeIdx map[graph.Edge]int32
	words   int // bitset words per traversal
}

func newCodeCtx(g *graph.Graph) *codeCtx {
	es := g.Edges()
	idx := make(map[graph.Edge]int32, len(es))
	for i, e := range es {
		idx[e] = int32(i)
	}
	return &codeCtx{g: g, edgeIdx: idx, words: (len(es) + 63) / 64}
}

// traversal is a partial DFS traversal realizing the current code
// prefix: vmap maps code vertices to graph vertices, vinv is the flat
// inverse (-1 = unmapped), rmp is the rightmost path as code-vertex
// indices, used is a bitset over the context's edge indices. All state
// is flat arrays, so clone is a handful of memcpys — no map rehashing
// per step, which dominated the allocation profile of pattern dedup.
type traversal struct {
	cx   *codeCtx
	vmap []graph.V
	vinv []int32
	rmp  []int32
	used []uint64
}

func newTraversal(cx *codeCtx, v0, v1 graph.V) *traversal {
	vinv := make([]int32, cx.g.N())
	for i := range vinv {
		vinv[i] = -1
	}
	vinv[v0], vinv[v1] = 0, 1
	t := &traversal{
		cx:   cx,
		vmap: []graph.V{v0, v1},
		vinv: vinv,
		rmp:  []int32{0, 1},
		used: make([]uint64, cx.words),
	}
	t.markUsed(v0, v1)
	return t
}

func (t *traversal) markUsed(u, w graph.V) {
	i := t.cx.edgeIdx[(graph.Edge{U: u, W: w}).Norm()]
	t.used[i>>6] |= 1 << (uint(i) & 63)
}

func (t *traversal) isUsed(u, w graph.V) bool {
	i := t.cx.edgeIdx[(graph.Edge{U: u, W: w}).Norm()]
	return t.used[i>>6]&(1<<(uint(i)&63)) != 0
}

func (t *traversal) clone() *traversal {
	return &traversal{
		cx:   t.cx,
		vmap: append([]graph.V(nil), t.vmap...),
		vinv: append([]int32(nil), t.vinv...),
		rmp:  append([]int32(nil), t.rmp...),
		used: append([]uint64(nil), t.used...),
	}
}

// candidates reports every extension tuple this traversal can make:
// backward edges from the rightmost vertex to rightmost-path vertices,
// and forward edges from rightmost-path vertices to unmapped neighbors.
func (t *traversal) candidates(yield func(Tuple)) {
	g := t.cx.g
	r := t.rmp[len(t.rmp)-1]
	rv := t.vmap[r]
	// Backward: rightmost vertex -> earlier rightmost-path vertex.
	for _, w := range g.Neighbors(rv) {
		ci := t.vinv[w]
		if ci < 0 {
			continue
		}
		if t.isUsed(rv, w) {
			continue
		}
		if t.onRMP(ci) && ci < r {
			yield(Tuple{I: r, J: ci, LI: g.Label(rv), LJ: g.Label(w)})
		}
	}
	// Forward: rightmost-path vertex -> new vertex.
	n := int32(len(t.vmap))
	for _, ci := range t.rmp {
		cv := t.vmap[ci]
		for _, w := range g.Neighbors(cv) {
			if t.vinv[w] >= 0 {
				continue
			}
			yield(Tuple{I: ci, J: n, LI: g.Label(cv), LJ: g.Label(w)})
		}
	}
}

func (t *traversal) onRMP(ci int32) bool {
	for _, x := range t.rmp {
		if x == ci {
			return true
		}
	}
	return false
}

// realize returns all extensions of t by the given tuple (possibly
// several when multiple graph vertices fit a forward label, or none).
func (t *traversal) realize(tp Tuple) []*traversal {
	g := t.cx.g
	var out []*traversal
	if !tp.Forward() {
		r := t.rmp[len(t.rmp)-1]
		if tp.I != r {
			return nil
		}
		rv := t.vmap[r]
		wv := t.vmap[tp.J]
		if !t.onRMP(tp.J) || !g.HasEdge(rv, wv) {
			return nil
		}
		if t.isUsed(rv, wv) {
			return nil
		}
		if g.Label(rv) != tp.LI || g.Label(wv) != tp.LJ {
			return nil
		}
		c := t.clone()
		c.markUsed(rv, wv)
		return []*traversal{c}
	}
	// Forward from rightmost-path vertex tp.I to a new vertex.
	if !t.onRMP(tp.I) || tp.J != int32(len(t.vmap)) {
		return nil
	}
	src := t.vmap[tp.I]
	if g.Label(src) != tp.LI {
		return nil
	}
	for _, w := range g.Neighbors(src) {
		if t.vinv[w] >= 0 {
			continue
		}
		if g.Label(w) != tp.LJ {
			continue
		}
		c := t.clone()
		c.vmap = append(c.vmap, w)
		c.vinv[w] = tp.J
		// New rightmost path: prefix of rmp up to tp.I, then the new vertex.
		keep := len(c.rmp)
		for i, x := range c.rmp {
			if x == tp.I {
				keep = i + 1
				break
			}
		}
		c.rmp = append(c.rmp[:keep], tp.J)
		c.markUsed(src, w)
		out = append(out, c)
	}
	return out
}

// IsMin reports whether code is the minimal DFS code of the graph it
// describes.
func IsMin(code Code) bool {
	if len(code) == 0 {
		return true
	}
	return Compare(MinCode(code.Graph()), code) == 0
}
