package dfscode

import (
	"math/rand"
	"testing"

	"skinnymine/internal/graph"
	"skinnymine/internal/testutil"
)

func TestCompareTuplesBasics(t *testing.T) {
	fwd := func(i, j int32, li, lj graph.Label) Tuple { return Tuple{I: i, J: j, LI: li, LJ: lj} }
	cases := []struct {
		name string
		a, b Tuple
		want int
	}{
		{"forward smaller target", fwd(0, 1, 0, 0), fwd(1, 2, 0, 0), -1},
		{"forward deeper source first", fwd(2, 3, 0, 0), fwd(1, 3, 0, 0), -1},
		{"forward label break", fwd(0, 1, 0, 1), fwd(0, 1, 0, 2), -1},
		{"backward smaller target", fwd(2, 0, 0, 0), fwd(2, 1, 0, 0), -1},
		{"backward before forward same vertex", fwd(2, 0, 0, 0), fwd(2, 3, 0, 0), -1},
		{"forward before later backward", fwd(1, 2, 0, 0), fwd(2, 0, 0, 0), -1},
		{"equal", fwd(0, 1, 3, 4), fwd(0, 1, 3, 4), 0},
	}
	for _, c := range cases {
		if got := CompareTuples(c.a, c.b); got != c.want {
			t.Errorf("%s: CompareTuples(%v,%v) = %d, want %d", c.name, c.a, c.b, got, c.want)
		}
		if got := CompareTuples(c.b, c.a); got != -c.want {
			t.Errorf("%s: reverse = %d, want %d", c.name, got, -c.want)
		}
	}
}

func TestMinCodePath(t *testing.T) {
	g := testutil.PathGraph(2, 1, 0)
	code := MinCode(g)
	if len(code) != 2 {
		t.Fatalf("code length %d, want 2", len(code))
	}
	if code[0].LI != 0 || code[0].LJ != 1 {
		t.Errorf("first tuple %v should start at the smallest label pair", code[0])
	}
}

func TestMinCodeInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 150; trial++ {
		g := testutil.RandomConnectedGraph(rng, 2+rng.Intn(8), rng.Intn(5), 3)
		h, _ := testutil.PermuteGraph(rng, g)
		if MinCode(g).Key() != MinCode(h).Key() {
			t.Fatalf("trial %d: permuted copy has different min code\nlabels=%v edges=%v",
				trial, g.Labels(), g.Edges())
		}
	}
}

func TestMinCodeEqualityMatchesIsomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		a := testutil.RandomConnectedGraph(rng, 2+rng.Intn(6), rng.Intn(4), 2)
		b := testutil.RandomConnectedGraph(rng, 2+rng.Intn(6), rng.Intn(4), 2)
		iso := graph.Isomorphic(a, b)
		same := MinCode(a).Key() == MinCode(b).Key()
		if iso != same {
			t.Fatalf("trial %d: Isomorphic=%v but code equality=%v\nA: %v %v\nB: %v %v",
				trial, iso, same, a.Labels(), a.Edges(), b.Labels(), b.Edges())
		}
	}
}

func TestMinCodeGraphRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		g := testutil.RandomConnectedGraph(rng, 2+rng.Intn(7), rng.Intn(4), 3)
		code := MinCode(g)
		back := code.Graph()
		if !graph.Isomorphic(g, back) {
			t.Fatalf("trial %d: code.Graph() not isomorphic to original", trial)
		}
		if Compare(MinCode(back), code) != 0 {
			t.Fatalf("trial %d: min code of reconstruction differs", trial)
		}
		if !IsMin(code) {
			t.Fatalf("trial %d: MinCode output fails IsMin", trial)
		}
	}
}

func TestIsMinRejectsNonMinimal(t *testing.T) {
	// Triangle with labels 0,0,1: a code starting at the (1,0) orientation
	// of an edge is not minimal.
	bad := Code{
		{I: 0, J: 1, LI: 1, LJ: 0},
		{I: 1, J: 2, LI: 0, LJ: 0},
		{I: 2, J: 0, LI: 0, LJ: 1},
	}
	if IsMin(bad) {
		t.Error("code starting at label 1 should not be minimal")
	}
}

func TestCodeKeyDistinct(t *testing.T) {
	a := MinCode(testutil.PathGraph(0, 1, 2))
	b := MinCode(testutil.PathGraph(0, 2, 1))
	if a.Key() == b.Key() {
		t.Error("non-isomorphic paths share a key")
	}
}

func TestMinCodeKeyEdgeless(t *testing.T) {
	g := graph.New(1)
	g.AddVertex(7)
	h := graph.New(1)
	h.AddVertex(8)
	if MinCodeKey(g) == MinCodeKey(h) {
		t.Error("different single-vertex labels must key differently")
	}
	if MinCodeKey(graph.New(0)) != "empty" {
		t.Error("empty graph key")
	}
}

func TestVertexCountAndRightmostPath(t *testing.T) {
	g := testutil.PathGraph(0, 0, 0, 0)
	code := MinCode(g)
	if code.VertexCount() != 4 {
		t.Errorf("VertexCount = %d, want 4", code.VertexCount())
	}
	rmp := code.RightmostPath()
	if len(rmp) != 4 || rmp[0] != 0 || rmp[3] != 3 {
		t.Errorf("RightmostPath = %v", rmp)
	}
	if got := Code(nil).RightmostPath(); got != nil {
		t.Errorf("empty code rightmost path = %v", got)
	}
}

func TestCompareCodesPrefix(t *testing.T) {
	a := Code{{I: 0, J: 1, LI: 0, LJ: 0}}
	b := Code{{I: 0, J: 1, LI: 0, LJ: 0}, {I: 1, J: 2, LI: 0, LJ: 0}}
	if Compare(a, b) != -1 || Compare(b, a) != 1 || Compare(a, a) != 0 {
		t.Error("prefix ordering wrong")
	}
}
