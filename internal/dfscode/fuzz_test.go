package dfscode

import (
	"math/rand"
	"testing"

	"skinnymine/internal/graph"
	"skinnymine/internal/testutil"
)

// graphFromBytes decodes fuzz input into a small connected labeled
// graph: byte 0 sizes the vertex set (2..9), the next n bytes label the
// vertices, the following n-1 bytes wire a random spanning tree (vertex
// i attaches to data[i]%i), and any remaining bytes add extra edges in
// pairs. Always connected, so MinCode is total on the output.
func graphFromBytes(data []byte) *graph.Graph {
	if len(data) < 3 {
		return nil
	}
	n := 2 + int(data[0])%8
	g := graph.New(n)
	for i := 0; i < n; i++ {
		lab := graph.Label(0)
		if 1+i < len(data) {
			lab = graph.Label(data[1+i] % 4)
		}
		g.AddVertex(lab)
	}
	off := 1 + n
	for i := 1; i < n; i++ {
		parent := 0
		if off < len(data) {
			parent = int(data[off]) % i
			off++
		}
		g.MustAddEdge(graph.V(parent), graph.V(i))
	}
	for ; off+1 < len(data); off += 2 {
		u := graph.V(int(data[off]) % n)
		w := graph.V(int(data[off+1]) % n)
		if u != w && !g.HasEdge(u, w) {
			g.MustAddEdge(u, w)
		}
	}
	return g
}

// FuzzMinCodePermutation checks the canonical-code invariant the whole
// dedup subsystem rests on: a pattern's minimal DFS code must not
// depend on vertex numbering. Each fuzz input decodes to a connected
// graph plus a permutation seed; the permuted copy must produce the
// same MinCodeKey.
func FuzzMinCodePermutation(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 1}, int64(1))
	f.Add([]byte{3, 0, 0, 1, 1, 2, 0, 1, 0, 3, 1, 4}, int64(7))
	f.Add([]byte{5, 3, 2, 1, 0, 3, 2, 1, 0, 1, 2, 3, 0, 5, 1, 6, 2, 4}, int64(42))
	f.Add([]byte{7, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 2, 8, 3, 7}, int64(99))
	f.Fuzz(func(t *testing.T, data []byte, permSeed int64) {
		g := graphFromBytes(data)
		if g == nil {
			t.Skip("input too short to decode a graph")
		}
		rng := rand.New(rand.NewSource(permSeed))
		h, _ := testutil.PermuteGraph(rng, g)
		if got, want := MinCodeKey(h), MinCodeKey(g); got != want {
			t.Fatalf("canonical code changed under vertex permutation:\nlabels=%v edges=%v\npermuted labels=%v edges=%v",
				g.Labels(), g.Edges(), h.Labels(), h.Edges())
		}
	})
}
