package dfscode

import (
	"fmt"
	"strings"

	"skinnymine/internal/graph"
)

// Tuple is one DFS-code edge (i, j, l_i, l_j). Forward edges have J == I+?
// (J greater than every earlier index); backward edges have J < I. Vertex
// labels are carried redundantly so tuples compare without context.
type Tuple struct {
	I, J   int32
	LI, LJ graph.Label
}

// Forward reports whether the tuple introduces a new vertex.
func (t Tuple) Forward() bool { return t.J > t.I }

func (t Tuple) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d)", t.I, t.J, t.LI, t.LJ)
}

// CompareTuples orders tuples by the DFS lexicographic order of the gSpan
// paper. It returns -1, 0, or +1.
func CompareTuples(a, b Tuple) int {
	af, bf := a.Forward(), b.Forward()
	switch {
	case af && bf:
		if a.J != b.J {
			return cmpI32(a.J, b.J)
		}
		if a.I != b.I {
			return cmpI32(b.I, a.I) // larger I (deeper source) is smaller
		}
	case !af && !bf:
		if a.I != b.I {
			return cmpI32(a.I, b.I)
		}
		if a.J != b.J {
			return cmpI32(a.J, b.J)
		}
	case af && !bf: // a forward, b backward: a < b iff a.J <= b.I
		if a.J <= b.I {
			return -1
		}
		return 1
	default: // a backward, b forward: a < b iff a.I < b.J
		if a.I < b.J {
			return -1
		}
		return 1
	}
	if a.LI != b.LI {
		return cmpI32(int32(a.LI), int32(b.LI))
	}
	return cmpI32(int32(a.LJ), int32(b.LJ))
}

func cmpI32(a, b int32) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Code is a sequence of DFS-code tuples.
type Code []Tuple

// Compare orders codes lexicographically tuple-by-tuple; a proper prefix
// orders before its extensions.
func Compare(a, b Code) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := CompareTuples(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// VertexCount returns the number of code vertices.
func (c Code) VertexCount() int {
	max := int32(-1)
	for _, t := range c {
		if t.I > max {
			max = t.I
		}
		if t.J > max {
			max = t.J
		}
	}
	return int(max) + 1
}

// Key encodes the code as a comparable string.
func (c Code) Key() string {
	var b strings.Builder
	b.Grow(len(c) * 16)
	for _, t := range c {
		writeI32(&b, t.I)
		writeI32(&b, t.J)
		writeI32(&b, int32(t.LI))
		writeI32(&b, int32(t.LJ))
	}
	return b.String()
}

func writeI32(b *strings.Builder, v int32) {
	b.WriteByte(byte(v))
	b.WriteByte(byte(v >> 8))
	b.WriteByte(byte(v >> 16))
	b.WriteByte(byte(v >> 24))
}

// Graph reconstructs the pattern graph a code describes.
func (c Code) Graph() *graph.Graph {
	g := graph.New(c.VertexCount())
	for _, t := range c {
		for int32(g.N()) <= t.I || int32(g.N()) <= t.J {
			g.AddVertex(0) // placeholder, fixed below
		}
	}
	labels := make([]graph.Label, g.N())
	for _, t := range c {
		labels[t.I] = t.LI
		labels[t.J] = t.LJ
	}
	g2 := graph.New(len(labels))
	for _, l := range labels {
		g2.AddVertex(l)
	}
	for _, t := range c {
		g2.MustAddEdge(graph.V(t.I), graph.V(t.J))
	}
	return g2
}

// RightmostPath returns the code-vertex indices of the rightmost path
// (root first) of a valid code.
func (c Code) RightmostPath() []int32 {
	if len(c) == 0 {
		return nil
	}
	// The rightmost vertex is the target of the last forward edge; walk
	// parents back via forward edges.
	parent := map[int32]int32{}
	rightmost := int32(0)
	for _, t := range c {
		if t.Forward() {
			parent[t.J] = t.I
			rightmost = t.J
		}
	}
	var rev []int32
	for v := rightmost; ; {
		rev = append(rev, v)
		p, ok := parent[v]
		if !ok {
			break
		}
		v = p
	}
	rmp := make([]int32, len(rev))
	for i, v := range rev {
		rmp[len(rev)-1-i] = v
	}
	return rmp
}
