// Package dfscode implements gSpan-style DFS codes for vertex-labeled
// undirected graphs: code construction, the DFS-lexicographic order,
// and minimal (canonical) code computation.
//
// # Paper correspondence
//
// The paper's Stage II (Algorithm 3) deduplicates generated patterns by
// graph isomorphism; minimal DFS codes are the canonical keys making
// that a string comparison — two graphs are isomorphic exactly when
// their minimal codes are equal (Yan & Han, ICDM 2002, the paper's
// gSpan baseline). SkinnyMine keys its shared dedup set and its
// canonical output order on MinCodeKey; the cross-shard result merge
// of internal/shard relies on the same property. The gSpan and MoSS
// baselines additionally use DFS codes as their search-space canonical
// form.
//
// # Concurrency and ownership
//
// MinCode/MinCodeKey are pure functions over their input graph: all
// traversal state (vertex inverse maps, used-edge bitsets, the shared
// code context) is function-local, so concurrent calls from the Stage
// II worker pool need no synchronization. The invariance of the
// minimal code under vertex permutation is pinned by
// FuzzMinCodePermutation.
package dfscode
