package constraint

import (
	"fmt"
	"strconv"
)

// ParseError reports where and why a constraint failed to parse.
type ParseError struct {
	Src string // the source expression
	Pos int    // byte offset of the failure
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("constraint: %s at offset %d in %q", e.Msg, e.Pos, e.Src)
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokAndAnd // &&
	tokOrOr   // ||
	tokBang   // !
	tokLParen
	tokRParen
	tokComma
	tokAssign // =
	tokCmp    // <= < >= > == !=
)

type token struct {
	kind tokKind
	text string // ident/string/number text
	op   CmpOp  // for tokCmp
	n    int    // for tokNumber
	pos  int
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentRest(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	fail := func(pos int, format string, args ...any) ([]token, error) {
		return nil, &ParseError{Src: src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, pos: i})
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, pos: i})
			i++
		case c == '&':
			if i+1 >= len(src) || src[i+1] != '&' {
				return fail(i, "expected && (single & is not an operator)")
			}
			toks = append(toks, token{kind: tokAndAnd, pos: i})
			i += 2
		case c == '|':
			if i+1 >= len(src) || src[i+1] != '|' {
				return fail(i, "expected || (single | is not an operator)")
			}
			toks = append(toks, token{kind: tokOrOr, pos: i})
			i += 2
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: tokCmp, op: NE, pos: i})
				i += 2
				break
			}
			toks = append(toks, token{kind: tokBang, pos: i})
			i++
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: tokCmp, op: LE, pos: i})
				i += 2
				break
			}
			toks = append(toks, token{kind: tokCmp, op: LT, pos: i})
			i++
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: tokCmp, op: GE, pos: i})
				i += 2
				break
			}
			toks = append(toks, token{kind: tokCmp, op: GT, pos: i})
			i++
		case c == '=':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: tokCmp, op: EQ, pos: i})
				i += 2
				break
			}
			toks = append(toks, token{kind: tokAssign, pos: i})
			i++
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < len(src) && src[j] != quote {
				if src[j] == '\n' {
					return fail(i, "unterminated label string")
				}
				j++
			}
			if j >= len(src) {
				return fail(i, "unterminated label string")
			}
			toks = append(toks, token{kind: tokString, text: src[i+1 : j], pos: i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			n, err := strconv.Atoi(src[i:j])
			if err != nil {
				return fail(i, "bad number %q", src[i:j])
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], n: n, pos: i})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentRest(src[j]) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j], pos: i})
			i = j
		default:
			return fail(i, "unexpected character %q", string(c))
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(src)})
	return toks, nil
}

type parser struct {
	src  string
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) fail(pos int, format string, args ...any) error {
	return &ParseError{Src: p.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, p.fail(t.pos, "expected %s", what)
	}
	return t, nil
}

// Parse parses a constraint expression into its typed AST, extracting
// the optional topk clause. The empty string is an error — callers
// treat "no constraint" as the absence of an expression, not as one.
func Parse(src string) (*Constraint, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	if p.peek().kind == tokEOF {
		return nil, p.fail(0, "empty constraint expression")
	}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.fail(t.pos, "unexpected trailing input")
	}

	// Pull the topk clause out of the top-level conjunction; anywhere
	// deeper it has no boolean meaning and is rejected.
	var tk *TopK
	var rest []Node
	for _, conj := range flattenAnd(root) {
		t, ok := conj.(*topkNode)
		if !ok {
			rest = append(rest, conj)
			continue
		}
		if tk != nil {
			return nil, p.fail(t.pos, "duplicate topk clause")
		}
		tk = &TopK{K: t.k, By: t.by}
	}
	for _, conj := range rest {
		if pos, nested := findTopK(conj); nested {
			return nil, p.fail(pos, "topk must be a top-level conjunct")
		}
	}
	return &Constraint{Expr: conjoin(rest), TopK: tk}, nil
}

// findTopK reports a topk node nested anywhere under n.
func findTopK(n Node) (pos int, found bool) {
	switch n := n.(type) {
	case *topkNode:
		return n.pos, true
	case *And:
		if pos, ok := findTopK(n.L); ok {
			return pos, true
		}
		return findTopK(n.R)
	case *Or:
		if pos, ok := findTopK(n.L); ok {
			return pos, true
		}
		return findTopK(n.R)
	case *Not:
		return findTopK(n.X)
	}
	return 0, false
}

func (p *parser) parseOr() (Node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOrOr {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Or{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokAndAnd {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &And{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Node, error) {
	switch t := p.peek(); t.kind {
	case tokBang:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	case tokLParen:
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return p.parseAtom()
	}
}

func (p *parser) parseAtom() (Node, error) {
	t := p.next()
	if t.kind != tokIdent {
		return nil, p.fail(t.pos, "expected a predicate (contains, vertices, edges, skinniness, support or topk)")
	}
	switch t.text {
	case "contains":
		return p.parseContains(t)
	case "topk":
		return p.parseTopK(t)
	case "vertices", "edges", "skinniness", "support":
		attr := map[string]Attr{
			"vertices":   AttrVertices,
			"edges":      AttrEdges,
			"skinniness": AttrSkinniness,
			"support":    AttrSupport,
		}[t.text]
		op, err := p.expect(tokCmp, "a comparison operator (<=, <, >=, >, ==, !=)")
		if err != nil {
			return nil, err
		}
		n, err := p.expect(tokNumber, "a non-negative integer")
		if err != nil {
			return nil, err
		}
		return &Cmp{Attr: attr, Op: op.op, N: n.n}, nil
	default:
		return nil, p.fail(t.pos, "unknown predicate %q (want contains, vertices, edges, skinniness, support or topk)", t.text)
	}
}

// parseContains parses contains(label='X') with the leading ident
// already consumed.
func (p *parser) parseContains(kw token) (Node, error) {
	if _, err := p.expect(tokLParen, "( after contains"); err != nil {
		return nil, err
	}
	key, err := p.expect(tokIdent, `"label"`)
	if err != nil {
		return nil, err
	}
	if key.text != "label" {
		return nil, p.fail(key.pos, "contains takes label=..., got %q", key.text)
	}
	if _, err := p.expect(tokAssign, "= after label"); err != nil {
		return nil, err
	}
	lab, err := p.expect(tokString, "a quoted label")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, ") after the label"); err != nil {
		return nil, err
	}
	return &Contains{Label: lab.text}, nil
}

// parseTopK parses topk(k[, [by=]measure]) with the leading ident
// already consumed.
func (p *parser) parseTopK(kw token) (Node, error) {
	if _, err := p.expect(tokLParen, "( after topk"); err != nil {
		return nil, err
	}
	k, err := p.expect(tokNumber, "a pattern count")
	if err != nil {
		return nil, err
	}
	if k.n < 1 {
		return nil, p.fail(k.pos, "topk count must be >= 1, got %d", k.n)
	}
	by := BySupport
	if p.peek().kind == tokComma {
		p.next()
		m, err := p.expect(tokIdent, "a ranking measure (support, skinniness or size)")
		if err != nil {
			return nil, err
		}
		if m.text == "by" && p.peek().kind == tokAssign {
			p.next()
			if m, err = p.expect(tokIdent, "a ranking measure (support, skinniness or size)"); err != nil {
				return nil, err
			}
		}
		switch m.text {
		case "support":
			by = BySupport
		case "skinniness":
			by = BySkinniness
		case "size":
			by = BySize
		default:
			return nil, p.fail(m.pos, "unknown topk measure %q (want support, skinniness or size)", m.text)
		}
	}
	if _, err := p.expect(tokRParen, ") after the topk clause"); err != nil {
		return nil, err
	}
	return &topkNode{k: k.n, by: by, pos: kw.pos}, nil
}
