package constraint

import "testing"

// FuzzParseConstraintCanonical pins the canonicalization contract the
// serving daemon's cache key rests on: for any source that parses, the
// canonical rendering must itself parse, and must be a fixed point —
// Parse(c.String()).String() == c.String(). If canonicalization ever
// produced a string the parser rejects (or renders differently on the
// second pass), semantically equal requests would stop sharing cache
// entries, or worse, a stored constraint would fail to load back.
func FuzzParseConstraintCanonical(f *testing.F) {
	for _, seed := range []string{
		"contains(label='A')",
		"vertices<=8",
		"  vertices \t<= 8 ",
		"vertices<=8&&edges>2",
		"!contains(label='C')",
		"!(vertices>=3 || edges>=9)",
		"(vertices<=8)&&(skinniness<=1||support>=4)",
		"topk(10, by=support)",
		"vertices<=8 && topk(3, by=size)",
		`contains(label="it's")`,
		"support >= 2 || support <= 1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src)
		if err != nil {
			return // rejecting junk is fine; crashing or mis-canonicalizing is not
		}
		s1 := c.String()
		c2, err := Parse(s1)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", s1, src, err)
		}
		if s2 := c2.String(); s2 != s1 {
			t.Fatalf("canonicalization is not a fixed point for %q: %q -> %q", src, s1, s2)
		}
	})
}
