package constraint_test

// FuzzSubsumes pins the semantic claim behind the morphing cache: when
// Subsumes(a, b) reports that b is provably tighter than a, mining the
// same database under b must return a subset of mining it under a —
// for ANY pair of parseable constraints, not just the ones the
// hand-written table thought of. The morphing optimizer post-filters a
// cached superset result instead of mining, so a single false positive
// here is a wrong answer served from cache. The external test package
// lets the harness drive the real public mining pipeline
// (skinnymine.MineDB) against the classifier it ships with.

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"skinnymine"
	"skinnymine/internal/constraint"
)

// fuzzDB is one tiny fixed database: big enough to make constraints
// bite (two graphs, shared alphabet, cycles and tails), small enough
// that each fuzz exec mines in well under a millisecond.
var fuzzDB = func() []*skinnymine.Graph {
	c := skinnymine.NewCorpus()
	mk := func(labels []string, edges [][2]int) *skinnymine.Graph {
		g := c.NewGraph()
		ids := make([]skinnymine.VertexID, len(labels))
		for i, l := range labels {
			ids[i] = g.AddVertex(l)
		}
		for _, e := range edges {
			if err := g.AddEdge(ids[e[0]], ids[e[1]]); err != nil {
				panic(err)
			}
		}
		return g
	}
	return []*skinnymine.Graph{
		mk([]string{"a", "b", "c", "a", "b", "c", "a"},
			[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {2, 6}}),
		mk([]string{"b", "a", "c", "a", "b", "a"},
			[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 4}}),
	}
}()

// patternSet mines fuzzDB under one where-clause and returns the
// result's patterns as a set of their JSON encodings. The tiny mine is
// memoized per (where, measure): fuzzing revisits clauses constantly.
var patternSetCache sync.Map

func patternSet(t *testing.T, where string, measure skinnymine.SupportMeasure) (map[string]bool, error) {
	ck := fmt.Sprintf("%d|%s", measure, where)
	if got, ok := patternSetCache.Load(ck); ok {
		return got.(map[string]bool), nil
	}
	res, err := skinnymine.MineDB(fuzzDB, skinnymine.Options{
		Support: 2, Length: 3, MinLength: 1, Delta: 1,
		Measure: measure, Where: where,
	})
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool, len(res.Patterns))
	for _, p := range res.Patterns {
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		set[string(b)] = true
	}
	patternSetCache.Store(ck, set)
	return set, nil
}

func FuzzSubsumes(f *testing.F) {
	seeds := [][2]string{
		{"", "vertices<=6"},
		{"vertices<=6", "vertices<=6 && edges<=7"},
		{"vertices<=6", "vertices<=5"},
		{"contains(label='a')", "contains(label='a') && skinniness<=1"},
		{"", "support>=3"},
		{"support>=2", "support>=2 && vertices<=6 && topk(3, by=support)"},
		{"edges<=8", "vertices<=6"},
		{"!contains(label='c')", "!contains(label='c') && edges<=6"},
		{"vertices<=6 || edges<=6", "vertices<=6"},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, aSrc, bSrc string) {
		a, errA := constraint.Parse(aSrc)
		b, errB := constraint.Parse(bSrc)
		if errA != nil || errB != nil {
			return // junk inputs are the parser fuzzer's business
		}
		for _, m := range []skinnymine.SupportMeasure{skinnymine.EmbeddingCount, skinnymine.GraphCount} {
			supportAM := m == skinnymine.GraphCount
			if !constraint.Subsumes(a, b, supportAM) {
				continue
			}
			wide, errW := patternSet(t, a.String(), m)
			tight, errT := patternSet(t, b.String(), m)
			if errW != nil || errT != nil {
				// A clause can parse yet fail option validation (e.g. a
				// topk in a) — but then it must fail on BOTH sides or
				// subsumption claimed containment over nothing.
				if errW == nil || errT == nil {
					t.Fatalf("Subsumes(%q, %q) but only one side mines: wide=%v tight=%v",
						aSrc, bSrc, errW, errT)
				}
				continue
			}
			for p := range tight {
				if !wide[p] {
					t.Fatalf("Subsumes(%q, %q, am=%v) claims containment under measure %d, but pattern %s is in the tight result and not the wide one",
						aSrc, bSrc, supportAM, m, p)
				}
			}
		}
	})
}
