package constraint

import "testing"

// parseOrNil parses a test expression, mapping "" to the nil
// (unconstrained) constraint both Subsumes and Intersect accept.
func parseOrNil(t *testing.T, src string) *Constraint {
	t.Helper()
	if src == "" {
		return nil
	}
	return mustParse(t, src)
}

func TestSubsumes(t *testing.T) {
	cases := []struct {
		a, b      string
		supportAM bool
		want      bool
	}{
		// Identity and the unconstrained superset.
		{"", "", false, true},
		{"vertices<=8", "vertices<=8", false, true},
		{"", "vertices<=8", false, true},
		{"", "vertices<=8 && skinniness<=1", false, true},
		// Extra anti-monotone conjuncts tighten; order and spelling are
		// immaterial (canonical rendering).
		{"vertices<=8", "vertices<=8 && edges<=5", false, true},
		{"vertices<=8", "edges <= 5 && vertices <= 8", false, true},
		{"vertices<=8", "vertices<=8 && !contains(label='C')", false, true},
		{"!contains(label='C')", "!contains(label='C') && vertices<6", false, true},
		// The reverse direction never holds: b dropped a conjunct.
		{"vertices<=8 && edges<=5", "vertices<=8", false, false},
		{"vertices<=8", "", false, false},
		// Extra monotone or unclassifiable conjuncts prove nothing.
		{"", "contains(label='A')", false, false},
		{"vertices<=8", "vertices<=8 && contains(label='A')", false, false},
		{"vertices<=8", "vertices<=8 && vertices>=2", false, false},
		{"vertices<=8", "vertices<=8 && edges==4", false, false},
		// A shared monotone conjunct is fine — only the DELTA must be
		// anti-monotone.
		{"contains(label='A')", "contains(label='A') && vertices<=8", false, true},
		// Support floors are anti-monotone only under the
		// graph-transaction measure.
		{"vertices<=8", "vertices<=8 && support>=5", false, false},
		{"vertices<=8", "vertices<=8 && support>=5", true, true},
		{"vertices<=8", "vertices<=8 && support<=5", true, false},
		// Composite extra conjuncts classify as a whole.
		{"", "vertices<=8 || edges<=5", false, true},
		{"", "!(vertices>=9)", false, true},
		{"", "vertices<=8 || contains(label='A')", false, false},
		// A topk clause on a truncates: nothing is provable from it. On
		// b it merely selects from the (identical) filtered set.
		{"vertices<=8 && topk(3, by=support)", "vertices<=8 && edges<=5", false, false},
		{"vertices<=8", "vertices<=8 && topk(3, by=support)", false, true},
		{"", "topk(3, by=size)", false, true},
	}
	for _, tc := range cases {
		a, b := parseOrNil(t, tc.a), parseOrNil(t, tc.b)
		if got := Subsumes(a, b, tc.supportAM); got != tc.want {
			t.Errorf("Subsumes(%q, %q, supportAM=%v) = %v, want %v",
				tc.a, tc.b, tc.supportAM, got, tc.want)
		}
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct {
		a, b, want string
	}{
		{"vertices<=8 && edges<=5", "edges<=5 && skinniness<=1", "edges<=5"},
		{"vertices<=8", "vertices<=8", "vertices<=8"},
		{"vertices<=8", "edges<=5", ""},
		{"", "vertices<=8", ""},
		// Whitespace variants share a canonical rendering.
		{"vertices <= 8 && !contains(label='C')", "!contains(label='C')&&vertices<=8",
			"!contains(label='C') && vertices<=8"},
		// Sorted by rendering regardless of operand order, so both
		// directions produce one canonical common constraint.
		{"vertices<=8 && edges<=5 && skinniness<=1", "skinniness<=1 && vertices<=8",
			"skinniness<=1 && vertices<=8"},
		// Topk clauses are selectors, never common conjuncts.
		{"vertices<=8 && topk(3, by=support)", "vertices<=8 && topk(3, by=support)", "vertices<=8"},
	}
	for _, tc := range cases {
		got := Intersect(parseOrNil(t, tc.a), parseOrNil(t, tc.b)).String()
		if got != tc.want {
			t.Errorf("Intersect(%q, %q) = %q, want %q", tc.a, tc.b, got, tc.want)
		}
		// Intersection is the weakest common form: it must subsume both
		// operands whenever they are topk-free.
		a, b := parseOrNil(t, tc.a), parseOrNil(t, tc.b)
		common := Intersect(a, b)
		for _, side := range []*Constraint{a, b} {
			if side != nil && side.TopK != nil {
				continue
			}
			// Only check when every extra conjunct is anti-monotone;
			// Subsumes is deliberately conservative otherwise.
			if !Subsumes(common, side, false) {
				allAM := true
				commonSet := make(map[string]bool)
				for _, c := range conjunctsOf(common) {
					commonSet[render(c)] = true
				}
				for _, c := range conjunctsOf(side) {
					if commonSet[render(c)] {
						continue
					}
					if am, _ := classify(c, false); !am {
						allAM = false
					}
				}
				if allAM {
					t.Errorf("Intersect(%q, %q) does not subsume %q", tc.a, tc.b, side)
				}
			}
		}
	}
}
