package constraint

import (
	"sort"
	"strings"
)

// Containment between constraints, the proof obligation behind the
// serving layer's morphing cache: a cached result for constraint a may
// answer a request for constraint b by post-filtering alone when b is a
// provable restriction of a. Conjuncts compare by their canonical
// rendering (String), so spelling variants of one predicate — already
// collapsed by parsing — never defeat the containment check.

// render returns a node's canonical rendering, the identity conjuncts
// compare under.
func render(n Node) string {
	var b strings.Builder
	n.print(&b)
	return b.String()
}

// conjunctsOf returns c's top-level conjuncts; nil constraints (and nil
// expressions) have none.
func conjunctsOf(c *Constraint) []Node {
	if c == nil {
		return nil
	}
	return flattenAnd(c.Expr)
}

// Subsumes reports that a provably subsumes b: the result set mined
// under constraint b is contained in the result set mined under a, and
// — the stronger property morphing needs — is exactly the a-result
// post-filtered by b's expression (plus b's topk clause). Nil stands
// for the unconstrained request on either side.
//
// The proof is built on the pushdown classifier (classify): it holds
// when every top-level conjunct of a also appears in b (so b never
// relaxes a), and every conjunct b adds is anti-monotone under the
// request's support measure (supportAM as in Classify) — size,
// skinniness and edge caps, forbidden labels, and support floors under
// the graph-transaction measure. Anti-monotone conjuncts are precisely
// the ones whose pushdown commutes with post-filtering (the pinned
// pushdown-equivalence invariant), so the containment is conservative:
// a false return never lies, it only declines to prove.
//
// a must carry no topk clause — a truncated result set proves nothing
// about what a tighter request would keep. b may carry one: topk
// selects from the filtered set, which is the same set either way.
func Subsumes(a, b *Constraint, supportAM bool) bool {
	if a != nil && a.TopK != nil {
		return false
	}
	inA := make(map[string]bool)
	for _, conj := range conjunctsOf(a) {
		inA[render(conj)] = true
	}
	matched := make(map[string]bool, len(inA))
	for _, conj := range conjunctsOf(b) {
		r := render(conj)
		if inA[r] {
			matched[r] = true
			continue
		}
		if am, _ := classify(conj, supportAM); !am {
			return false
		}
	}
	// Every conjunct of a must survive in b; a dropped conjunct means b
	// relaxed a somewhere and the containment direction flips.
	return len(matched) == len(inA)
}

// Intersect returns the constraint carrying exactly the top-level
// conjuncts a and b share (by canonical rendering), deduplicated and
// sorted by rendering so the result is canonical regardless of operand
// order — the "common conjuncts" a query family's shared plan mines
// under. Topk clauses never survive: they are result selectors, not
// predicates. Nil inputs carry no conjuncts, so any intersection with
// one is empty.
func Intersect(a, b *Constraint) *Constraint {
	inB := make(map[string]bool)
	for _, conj := range conjunctsOf(b) {
		inB[render(conj)] = true
	}
	byRender := make(map[string]Node)
	var renders []string
	for _, conj := range conjunctsOf(a) {
		r := render(conj)
		if !inB[r] || byRender[r] != nil {
			continue
		}
		byRender[r] = conj
		renders = append(renders, r)
	}
	sort.Strings(renders)
	conjs := make([]Node, len(renders))
	for i, r := range renders {
		conjs[i] = byRender[r]
	}
	return &Constraint{Expr: conjoin(conjs)}
}
