// Package constraint implements the declarative pattern-constraint
// language of the mining API: a small boolean expression grammar over
// pattern attributes, a pushdown classifier that decides which parts of
// an expression may prune *inside* the two mining stages, and an
// evaluator bound to a label vocabulary.
//
// # Grammar
//
//	expr     := or
//	or       := and ( "||" and )*
//	and      := unary ( "&&" unary )*
//	unary    := "!" unary | "(" expr ")" | atom
//	atom     := "contains" "(" "label" "=" string ")"
//	          | attr op number
//	          | "topk" "(" number [ "," ["by" "="] by ] ")"
//	attr     := "vertices" | "edges" | "skinniness" | "support"
//	op       := "<=" | "<" | ">=" | ">" | "==" | "!="
//	by       := "support" | "skinniness" | "size"
//	string   := "'" chars "'"  |  '"' chars '"'
//
// Examples:
//
//	contains(label='A') && vertices<=8 && !contains(label='C')
//	skinniness<=1 && support>=5
//	(vertices<=6 || edges<=4) && topk(10, by=support)
//
// The "topk(k, by=m)" clause is not a predicate: it selects the k
// best-ranked patterns from the filtered result and must appear as a
// top-level conjunct (never under "!", "||" or more than once).
//
// # Pushdown classification
//
// Growing a pattern only ever adds vertices and edges, accumulates
// labels, never lowers a vertex level, and never raises support. A
// top-level conjunct is therefore classified by monotonicity along that
// growth order:
//
//   - anti-monotone — once violated, violated by every super-pattern:
//     vertices/edges/skinniness upper bounds, forbidden labels
//     (!contains), support lower bounds under the graph-transaction
//     measure (where support is exactly non-increasing), and any
//     !/&&/|| combination of such parts. These conjuncts prune inside
//     the Stage I bucket joins and the Stage II extension loops
//     (Split.Pushdown; the support-free subset Split.PathPushdown
//     applies to Stage I, where candidate path support is not yet
//     known).
//
//   - monotone at output — once satisfied, satisfied forever, so a
//     growing pattern must not be cut early: required labels
//     (contains), vertices/edges/skinniness lower bounds. Checked once
//     per emitted pattern, as is every conjunct that is neither
//     (equality tests, mixed disjunctions, and — under the default
//     embedding-subgraph measure — every support atom: one parent
//     embedding can extend to several distinct child subgraphs, so
//     embedding support moves in no fixed direction).
//
// Pruning an anti-monotone conjunct commutes with post-filtering the
// complete result: the constrained result set is byte-identical to
// mining unconstrained and filtering afterwards (pinned by the
// pushdown-equivalence refguard in the root package).
package constraint

import (
	"fmt"
	"strings"
)

// Attr names a numeric pattern attribute a comparison tests.
type Attr int

const (
	// AttrVertices is the pattern vertex count |V|.
	AttrVertices Attr = iota
	// AttrEdges is the pattern edge count |E|.
	AttrEdges
	// AttrSkinniness is the largest vertex level (distance to the
	// canonical diameter); 0 for a bare path.
	AttrSkinniness
	// AttrSupport is the pattern frequency under the request's support
	// measure.
	AttrSupport
)

// String returns the attribute's grammar keyword.
func (a Attr) String() string {
	switch a {
	case AttrVertices:
		return "vertices"
	case AttrEdges:
		return "edges"
	case AttrSkinniness:
		return "skinniness"
	case AttrSupport:
		return "support"
	}
	return fmt.Sprintf("attr(%d)", int(a))
}

// CmpOp is a comparison operator.
type CmpOp int

const (
	// LE is <=.
	LE CmpOp = iota
	// LT is <.
	LT
	// GE is >=.
	GE
	// GT is >.
	GT
	// EQ is ==.
	EQ
	// NE is !=.
	NE
)

// String returns the operator's grammar spelling.
func (op CmpOp) String() string {
	switch op {
	case LE:
		return "<="
	case LT:
		return "<"
	case GE:
		return ">="
	case GT:
		return ">"
	case EQ:
		return "=="
	case NE:
		return "!="
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// By selects the top-k ranking measure.
type By int

const (
	// BySupport ranks by support, descending.
	BySupport By = iota
	// BySkinniness ranks by skinniness, ascending (skinnier first —
	// the constrained-discovery target).
	BySkinniness
	// BySize ranks by vertex count then edge count, descending.
	BySize
)

// String returns the measure's grammar keyword.
func (b By) String() string {
	switch b {
	case BySupport:
		return "support"
	case BySkinniness:
		return "skinniness"
	case BySize:
		return "size"
	}
	return fmt.Sprintf("by(%d)", int(b))
}

// TopK is the result clause "topk(k, by=m)": keep the K best-ranked
// patterns of the filtered result. Ranking is deterministic — ties fall
// back to the canonical output order.
type TopK struct {
	K  int
	By By
}

// Node is one node of a parsed constraint expression.
type Node interface {
	// print writes the canonical rendering.
	print(b *strings.Builder)
	// prec is the node's precedence (1 ||, 2 &&, 3 !, 4 atoms), used
	// to parenthesize minimally in the canonical rendering.
	prec() int
}

// printChild renders a sub-expression, parenthesized when its
// precedence is lower than the parent's.
func printChild(b *strings.Builder, child Node, parentPrec int) {
	if child.prec() < parentPrec {
		b.WriteByte('(')
		child.print(b)
		b.WriteByte(')')
		return
	}
	child.print(b)
}

// And is a conjunction.
type And struct{ L, R Node }

func (n *And) prec() int { return 2 }
func (n *And) print(b *strings.Builder) {
	printChild(b, n.L, 2)
	b.WriteString(" && ")
	printChild(b, n.R, 2)
}

// Or is a disjunction.
type Or struct{ L, R Node }

func (n *Or) prec() int { return 1 }
func (n *Or) print(b *strings.Builder) {
	printChild(b, n.L, 1)
	b.WriteString(" || ")
	printChild(b, n.R, 1)
}

// Not is a negation.
type Not struct{ X Node }

func (n *Not) prec() int { return 3 }
func (n *Not) print(b *strings.Builder) {
	b.WriteByte('!')
	printChild(b, n.X, 3)
}

// Cmp compares a numeric pattern attribute against a constant.
type Cmp struct {
	Attr Attr
	Op   CmpOp
	N    int
}

func (n *Cmp) prec() int { return 4 }
func (n *Cmp) print(b *strings.Builder) {
	fmt.Fprintf(b, "%s%s%d", n.Attr, n.Op, n.N)
}

// Contains tests whether the pattern has a vertex with the given label.
type Contains struct{ Label string }

func (n *Contains) prec() int { return 4 }
func (n *Contains) print(b *strings.Builder) {
	fmt.Fprintf(b, "contains(label=%s)", quoteLabel(n.Label))
}

// quoteLabel renders a label literal, preferring single quotes.
func quoteLabel(s string) string {
	if !strings.Contains(s, "'") {
		return "'" + s + "'"
	}
	return `"` + s + `"`
}

// topkNode is the parse-time form of the topk clause; Parse extracts it
// into Constraint.TopK and rejects it anywhere but a top-level conjunct.
type topkNode struct {
	k   int
	by  By
	pos int
}

func (n *topkNode) prec() int { return 4 }
func (n *topkNode) print(b *strings.Builder) {
	fmt.Fprintf(b, "topk(%d, by=%s)", n.k, n.by)
}

// Constraint is a parsed constraint: a boolean expression over pattern
// attributes (nil when the source was only a topk clause) plus an
// optional top-k result clause.
type Constraint struct {
	Expr Node
	TopK *TopK
}

// String returns the canonical rendering: fixed spacing and minimal
// parentheses, with the topk clause last. Whitespace variants of one
// expression parse to the same AST and therefore share one canonical
// string — the property the serving daemon's cache key relies on.
func (c *Constraint) String() string {
	var b strings.Builder
	if c.Expr != nil {
		c.Expr.print(&b)
	}
	if c.TopK != nil {
		if b.Len() > 0 {
			b.WriteString(" && ")
		}
		fmt.Fprintf(&b, "topk(%d, by=%s)", c.TopK.K, c.TopK.By)
	}
	return b.String()
}

// flattenAnd returns the top-level conjuncts of n (n itself when it is
// not a conjunction, nothing when nil).
func flattenAnd(n Node) []Node {
	if n == nil {
		return nil
	}
	if a, ok := n.(*And); ok {
		return append(flattenAnd(a.L), flattenAnd(a.R)...)
	}
	return []Node{n}
}

// conjoin rebuilds a left-associated conjunction from conjuncts; nil
// for an empty list.
func conjoin(conjs []Node) Node {
	var out Node
	for _, c := range conjs {
		if out == nil {
			out = c
			continue
		}
		out = &And{L: out, R: c}
	}
	return out
}
