package constraint

// Monotonicity classification along the growth order. Growing a
// pattern only adds vertices and edges, accumulates labels and never
// lowers a vertex level, so those attributes move in one known
// direction:
//
//	vertices, edges, skinniness  non-decreasing
//	label set                    accumulating
//
// Support depends on the measure. Under the graph-transaction count a
// super-pattern's supporting graph set is a subset of its
// sub-pattern's, so support is exactly non-increasing. Under the
// default embedding-subgraph count it is NOT: one parent embedding can
// extend to several distinct child subgraphs (two twig choices off one
// path), so a child's support may exceed its parent's, and support
// atoms are unclassifiable — output-only. supportAM says which world
// we are in.
//
// classify reports, for an arbitrary sub-expression:
//
//	am   — anti-monotone: violated at P implies violated at every
//	       super-pattern of P (safe to prune the moment it fails);
//	mono — monotone: satisfied at P implies satisfied at every
//	       super-pattern (must wait for output: a pattern that fails
//	       now may satisfy later).
//
// The two flags compose by the standard rules: negation swaps them,
// conjunction and disjunction preserve a property only when both sides
// have it. Equality and inequality tests are neither.
func classify(n Node, supportAM bool) (am, mono bool) {
	switch n := n.(type) {
	case *Contains:
		return false, true
	case *Cmp:
		if n.Attr == AttrSupport {
			if !supportAM {
				return false, false
			}
			// Non-increasing attribute: lower bounds are anti-monotone,
			// upper bounds monotone.
			switch n.Op {
			case GE, GT:
				return true, false
			case LE, LT:
				return false, true
			default:
				return false, false
			}
		}
		// Non-decreasing attributes: upper bounds are anti-monotone,
		// lower bounds monotone.
		switch n.Op {
		case LE, LT:
			return true, false
		case GE, GT:
			return false, true
		default: // EQ, NE
			return false, false
		}
	case *Not:
		am, mono = classify(n.X, supportAM)
		return mono, am
	case *And:
		la, lm := classify(n.L, supportAM)
		ra, rm := classify(n.R, supportAM)
		return la && ra, lm && rm
	case *Or:
		la, lm := classify(n.L, supportAM)
		ra, rm := classify(n.R, supportAM)
		return la && ra, lm && rm
	}
	return false, false
}

// mentionsSupport reports whether the sub-expression reads the support
// attribute, which Stage I cannot supply for a candidate path still
// being assembled.
func mentionsSupport(n Node) bool {
	switch n := n.(type) {
	case *Cmp:
		return n.Attr == AttrSupport
	case *Not:
		return mentionsSupport(n.X)
	case *And:
		return mentionsSupport(n.L) || mentionsSupport(n.R)
	case *Or:
		return mentionsSupport(n.L) || mentionsSupport(n.R)
	}
	return false
}

// Split partitions a constraint's top-level conjuncts by pushdown
// class. The full expression is still evaluated once per emitted
// pattern (see Bound.Accept), so the split only decides what may prune
// early — misplacing a conjunct into Output costs speed, never
// correctness.
type Split struct {
	// Pushdown holds the anti-monotone conjuncts: safe to prune a
	// candidate pattern (and its entire growth subtree) the moment one
	// fails.
	Pushdown []Node
	// PathPushdown is the subset of Pushdown that never reads support,
	// usable inside the Stage I bucket joins where a candidate path's
	// frequency is not yet known.
	PathPushdown []Node
	// Output holds the remaining conjuncts — monotone or unclassifiable
	// — deferred to the per-pattern output check.
	Output []Node
}

// Classify splits the constraint's top-level conjunction for pushdown.
// supportAM declares whether support is anti-monotone under the
// request's measure: true for the graph-transaction count, false for
// the embedding-subgraph count (see classify).
func (c *Constraint) Classify(supportAM bool) Split {
	var s Split
	for _, conj := range flattenAnd(c.Expr) {
		am, _ := classify(conj, supportAM)
		if !am {
			s.Output = append(s.Output, conj)
			continue
		}
		s.Pushdown = append(s.Pushdown, conj)
		if !mentionsSupport(conj) {
			s.PathPushdown = append(s.PathPushdown, conj)
		}
	}
	return s
}
