package constraint

import (
	"skinnymine/internal/graph"
)

// Attrs is the attribute view a bound constraint evaluates against.
type Attrs struct {
	Vertices   int
	Edges      int
	Skinniness int
	Support    int
	// Labels are the pattern's vertex labels (any order; duplicates
	// fine). The slice is only read.
	Labels []graph.Label
}

// Bound is a constraint bound to a label vocabulary, ready to evaluate
// against concrete patterns. Binding resolves every contains() label
// name to its interned graph.Label once, so the hot-path checks never
// touch strings. A Bound is read-only after creation and safe for
// concurrent use by the mining worker pool.
type Bound struct {
	expr  Node
	topk  *TopK
	split Split
	ids   map[string]graph.Label // label name -> id; missing names map to -1
}

// Bind resolves the constraint against lt. Labels absent from the
// vocabulary bind to a sentinel no vertex carries, so contains() on an
// unknown label is simply always false. supportAM declares whether
// support is anti-monotone under the request's measure (Classify).
func (c *Constraint) Bind(lt *graph.LabelTable, supportAM bool) *Bound {
	b := &Bound{expr: c.Expr, topk: c.TopK, split: c.Classify(supportAM), ids: make(map[string]graph.Label)}
	var resolve func(n Node)
	resolve = func(n Node) {
		switch n := n.(type) {
		case *Contains:
			if _, seen := b.ids[n.Label]; seen {
				return
			}
			if id, ok := lt.Lookup(n.Label); ok {
				b.ids[n.Label] = id
			} else {
				b.ids[n.Label] = -1
			}
		case *Not:
			resolve(n.X)
		case *And:
			resolve(n.L)
			resolve(n.R)
		case *Or:
			resolve(n.L)
			resolve(n.R)
		}
	}
	if c.Expr != nil {
		resolve(c.Expr)
	}
	return b
}

// TopK returns the constraint's result clause, nil when absent.
func (b *Bound) TopK() *TopK { return b.topk }

// HasPushdown reports whether any conjunct can prune Stage II growth.
func (b *Bound) HasPushdown() bool { return len(b.split.Pushdown) > 0 }

// HasPathPushdown reports whether any conjunct can prune Stage I
// candidate paths.
func (b *Bound) HasPathPushdown() bool { return len(b.split.PathPushdown) > 0 }

// RejectPath reports whether the Stage I pushdown rejects a candidate
// path with the given label sequence (in either traversal order — every
// pushed-down predicate is orientation-invariant). A path has len(seq)
// vertices, len(seq)-1 edges and skinniness 0; support is unknown at
// this point, so support-dependent conjuncts are not consulted.
func (b *Bound) RejectPath(seq []graph.Label) bool {
	if len(b.split.PathPushdown) == 0 {
		return false
	}
	a := Attrs{Vertices: len(seq), Edges: len(seq) - 1, Labels: seq}
	for _, conj := range b.split.PathPushdown {
		if !b.eval(conj, &a) {
			return true
		}
	}
	return false
}

// Reject reports whether the anti-monotone pushdown rejects a candidate
// pattern: once true, every pattern grown from it is rejected too, so
// the caller may cut the whole subtree.
func (b *Bound) Reject(a Attrs) bool {
	for _, conj := range b.split.Pushdown {
		if !b.eval(conj, &a) {
			return true
		}
	}
	return false
}

// Accept evaluates the full expression against an emitted pattern (the
// per-pattern output check). A nil expression accepts everything.
func (b *Bound) Accept(a Attrs) bool {
	if b.expr == nil {
		return true
	}
	return b.eval(b.expr, &a)
}

func (b *Bound) eval(n Node, a *Attrs) bool {
	switch n := n.(type) {
	case *And:
		return b.eval(n.L, a) && b.eval(n.R, a)
	case *Or:
		return b.eval(n.L, a) || b.eval(n.R, a)
	case *Not:
		return !b.eval(n.X, a)
	case *Cmp:
		var v int
		switch n.Attr {
		case AttrVertices:
			v = a.Vertices
		case AttrEdges:
			v = a.Edges
		case AttrSkinniness:
			v = a.Skinniness
		case AttrSupport:
			v = a.Support
		}
		switch n.Op {
		case LE:
			return v <= n.N
		case LT:
			return v < n.N
		case GE:
			return v >= n.N
		case GT:
			return v > n.N
		case EQ:
			return v == n.N
		default:
			return v != n.N
		}
	case *Contains:
		id := b.ids[n.Label]
		if id < 0 {
			return false
		}
		for _, l := range a.Labels {
			if l == id {
				return true
			}
		}
		return false
	}
	return false
}
