package constraint

import (
	"errors"
	"strings"
	"testing"

	"skinnymine/internal/graph"
)

func mustParse(t *testing.T, src string) *Constraint {
	t.Helper()
	c, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return c
}

func TestParseCanonicalString(t *testing.T) {
	cases := []struct{ src, want string }{
		{"contains(label='A')", "contains(label='A')"},
		{`contains( label = "A" )`, "contains(label='A')"},
		{"vertices<=8", "vertices<=8"},
		{"  vertices \t<= 8 ", "vertices<=8"},
		{"vertices<=8&&edges>2", "vertices<=8 && edges>2"},
		{"!contains(label='C')", "!contains(label='C')"},
		{"!(vertices>=3 || edges>=9)", "!(vertices>=3 || edges>=9)"},
		{"(vertices<=8)&&(skinniness<=1||support>=4)", "vertices<=8 && (skinniness<=1 || support>=4)"},
		{"a_label_attr_free_topk_only_is_invalid==0 || vertices!=2", ""}, // unknown predicate → error, checked below
		{"topk(10)", "topk(10, by=support)"},
		{"topk(10,size)", "topk(10, by=size)"},
		{"topk( 10 , by = skinniness )", "topk(10, by=skinniness)"},
		{"vertices<=8 && topk(3)", "vertices<=8 && topk(3, by=support)"},
		{"topk(3) && vertices<=8 && edges<=9", "vertices<=8 && edges<=9 && topk(3, by=support)"},
		{"contains(label='A') && vertices<=8 && !contains(label='C') && skinniness<=1",
			"contains(label='A') && vertices<=8 && !contains(label='C') && skinniness<=1"},
	}
	for _, tc := range cases {
		c, err := Parse(tc.src)
		if tc.want == "" {
			if err == nil {
				t.Errorf("Parse(%q): expected error, got %q", tc.src, c.String())
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.src, err)
			continue
		}
		if got := c.String(); got != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.src, got, tc.want)
		}
		// The canonical form must be a fixed point: parsing it again
		// yields the same string (the daemon's cache-key property).
		again, err := Parse(tc.want)
		if err != nil {
			t.Errorf("Parse(canonical %q): %v", tc.want, err)
			continue
		}
		if got := again.String(); got != tc.want {
			t.Errorf("canonical %q re-parses to %q", tc.want, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, wantMsg string }{
		{"", "empty constraint"},
		{"   ", "empty constraint"},
		{"vertices", "comparison operator"},
		{"vertices <= ", "non-negative integer"},
		{"bogus<=3", "unknown predicate"},
		{"contains(tag='A')", "label"},
		{"contains(label='A'", ")"},
		{"contains(label='A)", "unterminated label string"},
		{"vertices<=8 &&", "predicate"},
		{"vertices<=8 & edges<=2", "&&"},
		{"vertices<=8 || | edges<=2", "||"},
		{"(vertices<=8", ")"},
		{"vertices<=8)", "trailing input"},
		{"topk(0)", "topk count must be >= 1"},
		{"topk(3, by=vibes)", "unknown topk measure"},
		{"topk(3) && topk(4)", "duplicate topk"},
		{"!topk(3)", "top-level conjunct"},
		{"vertices<=8 || topk(3)", "top-level conjunct"},
		{"vertices == eight", "non-negative integer"},
		{"vertices<=8 # comment", "unexpected character"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q, got nil", tc.src, tc.wantMsg)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q): error %T is not a *ParseError", tc.src, err)
		}
		if !strings.Contains(err.Error(), tc.wantMsg) {
			t.Errorf("Parse(%q): error %q does not contain %q", tc.src, err, tc.wantMsg)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		src          string
		supportAM    bool
		pushdown     int // anti-monotone conjuncts
		pathPushdown int // ... of which Stage-I-usable
		output       int
	}{
		{"vertices<=8", false, 1, 1, 0},
		{"vertices<8", false, 1, 1, 0},
		{"vertices>=8", false, 0, 0, 1},
		{"vertices==8", false, 0, 0, 1},
		{"vertices!=8", false, 0, 0, 1},
		{"edges<=4", false, 1, 1, 0},
		{"skinniness<=1", false, 1, 1, 0},
		{"skinniness>=1", false, 0, 0, 1},
		// Support atoms: anti-monotone only under the graph-transaction
		// measure (supportAM); unclassifiable under embedding counting.
		{"support>=5", true, 1, 0, 0},
		{"support>=5", false, 0, 0, 1},
		{"support<=5", true, 0, 0, 1},
		{"support<=5", false, 0, 0, 1},
		{"contains(label='A')", false, 0, 0, 1},
		{"!contains(label='C')", false, 1, 1, 0},
		{"!!contains(label='A')", false, 0, 0, 1},
		{"vertices<=8 && edges<=4", false, 2, 2, 0},
		{"vertices<=8 && contains(label='A')", false, 1, 1, 1},
		{"vertices<=8 || edges<=4", false, 1, 1, 0},               // both sides AM → AM
		{"vertices<=8 || contains(label='A')", false, 0, 0, 1},    // mixed → output only
		{"!(contains(label='C') || vertices>=9)", false, 1, 1, 0}, // ¬(mono ∨ mono) is AM
		{"!(vertices<=3 && support>=2)", true, 0, 0, 1},           // ¬(AM ∧ AM) is monotone
		{"!(support<=4)", true, 1, 0, 0},                          // ¬(mono) is AM...
		{"!(support<=4)", false, 0, 0, 1},                         // ...but only when support orders
		{"support>=5 && vertices<=6 && contains(label='A')", true, 2, 1, 1},
		{"support>=5 && vertices<=6 && contains(label='A')", false, 1, 1, 2},
	}
	for _, tc := range cases {
		s := mustParse(t, tc.src).Classify(tc.supportAM)
		if len(s.Pushdown) != tc.pushdown || len(s.PathPushdown) != tc.pathPushdown || len(s.Output) != tc.output {
			t.Errorf("Classify(%q, supportAM=%v) = push %d / path %d / out %d, want %d / %d / %d",
				tc.src, tc.supportAM, len(s.Pushdown), len(s.PathPushdown), len(s.Output),
				tc.pushdown, tc.pathPushdown, tc.output)
		}
	}
}

func testTable() *graph.LabelTable {
	lt := graph.NewLabelTable()
	for _, name := range []string{"A", "B", "C"} {
		lt.Intern(name)
	}
	return lt
}

func TestBoundEval(t *testing.T) {
	lt := testTable()
	a, _ := lt.Lookup("A")
	b, _ := lt.Lookup("B")
	c, _ := lt.Lookup("C")

	abc := []graph.Label{a, b, c}
	ab := []graph.Label{a, b}
	cases := []struct {
		src    string
		attrs  Attrs
		accept bool
	}{
		{"contains(label='A')", Attrs{Labels: ab}, true},
		{"contains(label='C')", Attrs{Labels: ab}, false},
		{"contains(label='Z')", Attrs{Labels: abc}, false}, // unknown label never matches
		{"!contains(label='C')", Attrs{Labels: ab}, true},
		{"vertices<=8", Attrs{Vertices: 8}, true},
		{"vertices<8", Attrs{Vertices: 8}, false},
		{"edges>=3 && edges<=5", Attrs{Edges: 4}, true},
		{"skinniness==1", Attrs{Skinniness: 1}, true},
		{"skinniness!=1", Attrs{Skinniness: 1}, false},
		{"support>=5 || contains(label='B')", Attrs{Support: 2, Labels: ab}, true},
		{"!(vertices>=3 || edges>=9)", Attrs{Vertices: 2, Edges: 1}, true},
		{"!(vertices>=3 || edges>=9)", Attrs{Vertices: 3, Edges: 1}, false},
	}
	for _, tc := range cases {
		bound := mustParse(t, tc.src).Bind(lt, true)
		if got := bound.Accept(tc.attrs); got != tc.accept {
			t.Errorf("Accept(%q, %+v) = %v, want %v", tc.src, tc.attrs, got, tc.accept)
		}
	}
}

func TestBoundRejectPath(t *testing.T) {
	lt := testTable()
	a, _ := lt.Lookup("A")
	c, _ := lt.Lookup("C")

	bound := mustParse(t, "!contains(label='C') && vertices<=4 && support>=3").Bind(lt, true)
	if !bound.HasPathPushdown() || !bound.HasPushdown() {
		t.Fatal("expected pushdown conjuncts")
	}
	if bound.RejectPath([]graph.Label{a, a, a}) {
		t.Error("clean 3-vertex path rejected")
	}
	if !bound.RejectPath([]graph.Label{a, c, a}) {
		t.Error("forbidden-label path not rejected")
	}
	if !bound.RejectPath([]graph.Label{a, a, a, a, a}) {
		t.Error("over-long path not rejected")
	}
	// support>=3 is pushdown but not path-pushdown: a path must not be
	// cut on a support value Stage I cannot know.
	if bound.RejectPath([]graph.Label{a, a}) {
		t.Error("support conjunct leaked into the Stage I path check")
	}
	if !bound.Reject(Attrs{Vertices: 2, Edges: 1, Support: 2, Labels: []graph.Label{a, a}}) {
		t.Error("infrequent pattern not rejected by the support pushdown")
	}
}

func TestBoundTopKOnly(t *testing.T) {
	c := mustParse(t, "topk(5, by=size)")
	if c.Expr != nil {
		t.Fatalf("topk-only constraint has expression %v", c.Expr)
	}
	bound := c.Bind(testTable(), false)
	if bound.HasPushdown() || bound.HasPathPushdown() {
		t.Error("topk-only constraint claims pushdown")
	}
	if !bound.Accept(Attrs{}) {
		t.Error("topk-only constraint rejected a pattern")
	}
	tk := bound.TopK()
	if tk == nil || tk.K != 5 || tk.By != BySize {
		t.Errorf("TopK = %+v, want K=5 By=size", tk)
	}
}
