package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestTextRoundtrip(t *testing.T) {
	g1 := buildPath(0, 1, 2)
	g2 := New(2)
	g2.AddVertex(5)
	g2.AddVertex(6)
	g2.MustAddEdge(0, 1)
	var buf bytes.Buffer
	if err := WriteText(&buf, g1, g2); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d graphs, want 2", len(got))
	}
	if !Isomorphic(got[0], g1) || !Isomorphic(got[1], g2) {
		t.Error("roundtrip changed graphs")
	}
}

func TestReadTextSingleGraphNoHeader(t *testing.T) {
	in := "# comment\nv 0 3\nv 1 4\ne 0 1\n"
	gs, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if len(gs) != 1 || gs[0].N() != 2 || gs[0].M() != 1 {
		t.Fatalf("parsed wrong: %v", gs)
	}
	if gs[0].Label(0) != 3 || gs[0].Label(1) != 4 {
		t.Error("labels wrong")
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"bad record", "x 1 2\n"},
		{"vertex missing label", "v 0\n"},
		{"vertex bad id", "v zero 1\n"},
		{"vertex bad label", "v 0 abc\n"},
		{"vertex out of order", "v 1 0\n"},
		{"edge missing endpoint", "v 0 0\nv 1 0\ne 0\n"},
		{"edge bad endpoint", "v 0 0\ne 0 x\n"},
		{"edge out of range", "v 0 0\ne 0 5\n"},
		{"self loop", "v 0 0\ne 0 0\n"},
		{"duplicate edge", "v 0 0\nv 1 0\ne 0 1\ne 1 0\n"},
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadTextEmpty(t *testing.T) {
	gs, err := ReadText(strings.NewReader(""))
	if err != nil {
		t.Fatalf("ReadText empty: %v", err)
	}
	if len(gs) != 0 {
		t.Errorf("empty input gave %d graphs", len(gs))
	}
}
