package graph

// This file implements the canonical diameter (Definition 4): among all
// simple paths of length D(G) that realize the diameter (i.e., that are
// shortest paths between their endpoints), the smallest one under the
// total path order of Definition 3 (label sequence first, physical vertex
// ID sequence as tie-break).
//
// The search works per ordered endpoint pair (s,t) with dist(s,t) = D:
// a frontier sweep first pins down the minimal label sequence (greedy on
// labels is safe because every frontier member extends some partial path
// achieving the minimal label prefix), then a backward-feasibility pass
// plus a forward greedy on vertex IDs extracts the unique minimal path.
// Shortest paths have strictly increasing distance from s, so they are
// automatically simple.

// CanonicalDiameter returns the canonical diameter of a connected graph
// and its length, or (nil, Unreachable) if g is empty or disconnected.
func (g *Graph) CanonicalDiameter() (Path, int32) {
	n := g.N()
	if n == 0 {
		return nil, Unreachable
	}
	d := g.AllPairsDistances()
	diam := int32(0)
	for v := 0; v < n; v++ {
		for w := 0; w < n; w++ {
			dv := d[v][w]
			if dv == Unreachable {
				return nil, Unreachable
			}
			if dv > diam {
				diam = dv
			}
		}
	}
	return g.canonicalDiameterWithDist(d, diam), diam
}

// CanonicalDiameterWithDist is CanonicalDiameter for callers that already
// hold the all-pairs distance matrix and the diameter.
func (g *Graph) CanonicalDiameterWithDist(d [][]int32, diam int32) Path {
	return g.canonicalDiameterWithDist(d, diam)
}

func (g *Graph) canonicalDiameterWithDist(d [][]int32, diam int32) Path {
	n := g.N()
	if diam == 0 {
		// Single-vertex diameter: the canonical path is the vertex with
		// the smallest label, ties broken by ID.
		best := V(0)
		for v := V(1); int(v) < n; v++ {
			if g.Label(v) < g.Label(best) || (g.Label(v) == g.Label(best) && v < best) {
				best = v
			}
		}
		return Path{best}
	}

	var bestSeq []Label
	var bestPairs []pairST
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t || d[s][t] != diam {
				continue
			}
			seq := g.minLabelSeq(d, V(s), V(t), diam)
			if bestSeq == nil {
				bestSeq = seq
				bestPairs = append(bestPairs[:0], pairST{V(s), V(t)})
				continue
			}
			switch CompareLabelSeqs(seq, bestSeq) {
			case -1:
				bestSeq = seq
				bestPairs = append(bestPairs[:0], pairST{V(s), V(t)})
			case 0:
				bestPairs = append(bestPairs, pairST{V(s), V(t)})
			}
		}
	}
	if bestSeq == nil {
		return nil
	}
	var best Path
	for _, p := range bestPairs {
		cand := g.minIDPath(d, p.s, p.t, diam, bestSeq)
		if best == nil || comparePathIDs(cand, best) < 0 {
			best = cand
		}
	}
	return best
}

type pairST struct{ s, t V }

// minLabelSeq returns the lexicographically minimal label sequence over
// all shortest paths from s to t (of length diam).
func (g *Graph) minLabelSeq(d [][]int32, s, t V, diam int32) []Label {
	seq := make([]Label, diam+1)
	seq[0] = g.Label(s)
	frontier := []V{s}
	next := make([]V, 0, 8)
	inNext := make(map[V]struct{}, 8)
	for i := int32(0); i < diam; i++ {
		next = next[:0]
		clear(inNext)
		var minL Label
		first := true
		for _, v := range frontier {
			for _, w := range g.adj[v] {
				if d[s][w] != i+1 || d[w][t] != diam-i-1 {
					continue
				}
				lw := g.Label(w)
				if first || lw < minL {
					minL = lw
					first = false
				}
			}
		}
		for _, v := range frontier {
			for _, w := range g.adj[v] {
				if d[s][w] != i+1 || d[w][t] != diam-i-1 || g.Label(w) != minL {
					continue
				}
				if _, ok := inNext[w]; !ok {
					inNext[w] = struct{}{}
					next = append(next, w)
				}
			}
		}
		seq[i+1] = minL
		frontier, next = next, frontier
	}
	return seq
}

// minIDPath returns the minimal-ID shortest path from s to t whose label
// sequence equals seq, or nil if none exists.
func (g *Graph) minIDPath(d [][]int32, s, t V, diam int32, seq []Label) Path {
	if g.Label(s) != seq[0] || g.Label(t) != seq[diam] {
		return nil
	}
	// Backward feasibility: feas[i] = vertices at position i (distance i
	// from s, diam-i to t, label seq[i]) from which t is reachable through
	// label-conforming positions.
	feas := make([]map[V]struct{}, diam+1)
	feas[diam] = map[V]struct{}{t: {}}
	for i := diam - 1; i >= 0; i-- {
		cur := make(map[V]struct{})
		for w := range feas[i+1] {
			for _, v := range g.adj[w] {
				if d[s][v] == i && d[v][t] == diam-i && g.Label(v) == seq[i] {
					cur[v] = struct{}{}
				}
			}
		}
		feas[i] = cur
	}
	if _, ok := feas[0][s]; !ok {
		return nil
	}
	path := make(Path, 0, diam+1)
	path = append(path, s)
	cur := s
	for i := int32(0); i < diam; i++ {
		chosen := V(-1)
		for _, w := range g.adj[cur] { // adjacency sorted: first feasible is min ID
			if _, ok := feas[i+1][w]; ok {
				chosen = w
				break
			}
		}
		if chosen < 0 {
			return nil
		}
		path = append(path, chosen)
		cur = chosen
	}
	return path
}

func comparePathIDs(a, b Path) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// VertexLevels returns, for each vertex, its level relative to path L:
// the shortest distance to any vertex of L (Definition 5).
func (g *Graph) VertexLevels(l Path) []int32 {
	return g.MultiSourceBFS(l)
}

// IsSkinny reports whether g is δ-skinny with respect to path L
// (Definition 6): every vertex within distance δ of L.
func (g *Graph) IsSkinny(l Path, delta int32) bool {
	for _, d := range g.VertexLevels(l) {
		if d == Unreachable || d > delta {
			return false
		}
	}
	return true
}

// IsLLongDeltaSkinny reports whether g is an l-long δ-skinny graph
// (Definition 7): its canonical diameter has length l and g is δ-skinny
// with respect to it. It returns the canonical diameter when true.
func (g *Graph) IsLLongDeltaSkinny(l, delta int32) (Path, bool) {
	cd, diam := g.CanonicalDiameter()
	if diam != l {
		return nil, false
	}
	if !g.IsSkinny(cd, delta) {
		return nil, false
	}
	return cd, true
}
