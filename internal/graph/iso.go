package graph

import "sort"

// This file implements labeled (sub)graph isomorphism by backtracking
// with label/degree pruning, in the spirit of VF2. Patterns in this
// project are small (tens of vertices), so a careful backtracking search
// is both simple and fast enough; candidate vertices are tried in sorted
// order so results are deterministic.

// Isomorphic reports whether two labeled graphs are isomorphic
// (Definition 1): a label-preserving bijection that preserves adjacency
// both ways.
func Isomorphic(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	if !sameLabelMultiset(a, b) || !sameDegreeSequence(a, b) {
		return false
	}
	n := a.N()
	if n == 0 {
		return true
	}
	m := newMatcher(a, b, true)
	return m.match(0)
}

func sameLabelMultiset(a, b *Graph) bool {
	count := make(map[Label]int)
	for _, l := range a.Labels() {
		count[l]++
	}
	for _, l := range b.Labels() {
		count[l]--
		if count[l] < 0 {
			return false
		}
	}
	return true
}

func sameDegreeSequence(a, b *Graph) bool {
	da := make([]int, a.N())
	db := make([]int, b.N())
	for v := 0; v < a.N(); v++ {
		da[v] = a.Degree(V(v))
		db[v] = b.Degree(V(v))
	}
	sort.Ints(da)
	sort.Ints(db)
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}

// matcher searches for mappings of pattern p into target t. When induced
// is true, the mapping must preserve non-adjacency too (exact
// isomorphism); when false, it is a subgraph-isomorphism in the
// "embedding" sense of the paper: every pattern edge maps to a target
// edge (the embedding subgraph consists of exactly the mapped edges).
type matcher struct {
	p, t    *Graph
	induced bool
	order   []V   // pattern vertices in match order (connected expansion)
	parent  []int // index into order of an earlier neighbor, -1 for roots
	mapped  []V   // pattern vertex -> target vertex or -1
	used    []bool
	emit    func(mapped []V) bool // return false to stop enumeration
	found   bool
}

func newMatcher(p, t *Graph, induced bool) *matcher {
	m := &matcher{p: p, t: t, induced: induced}
	n := p.N()
	m.mapped = make([]V, n)
	for i := range m.mapped {
		m.mapped[i] = -1
	}
	m.used = make([]bool, t.N())
	m.order, m.parent = connectedOrder(p)
	return m
}

// connectedOrder returns a vertex order where each vertex (except
// component roots) has some earlier neighbor, plus that neighbor's index.
func connectedOrder(p *Graph) ([]V, []int) {
	n := p.N()
	order := make([]V, 0, n)
	parent := make([]int, 0, n)
	seen := make([]bool, n)
	pos := make([]int, n)
	for root := V(0); int(root) < n; root++ {
		if seen[root] {
			continue
		}
		seen[root] = true
		pos[root] = len(order)
		order = append(order, root)
		parent = append(parent, -1)
		for head := len(order) - 1; head < len(order); head++ {
			v := order[head]
			for _, w := range p.Neighbors(v) {
				if !seen[w] {
					seen[w] = true
					pos[w] = len(order)
					order = append(order, w)
					parent = append(parent, pos[v])
				}
			}
		}
	}
	return order, parent
}

func (m *matcher) match(depth int) bool {
	if depth == len(m.order) {
		if m.emit != nil {
			m.found = true
			return !m.emit(m.mapped)
		}
		return true
	}
	pv := m.order[depth]
	var candidates []V
	if pi := m.parent[depth]; pi >= 0 {
		candidates = m.t.Neighbors(m.mapped[m.order[pi]])
	} else {
		candidates = allVertices(m.t)
	}
	for _, tv := range candidates {
		if m.used[tv] || m.t.Label(tv) != m.p.Label(pv) {
			continue
		}
		if m.t.Degree(tv) < m.p.Degree(pv) {
			continue
		}
		if m.induced && m.t.Degree(tv) != m.p.Degree(pv) {
			continue
		}
		if !m.consistent(pv, tv) {
			continue
		}
		m.mapped[pv] = tv
		m.used[tv] = true
		stop := m.match(depth + 1)
		m.used[tv] = false
		m.mapped[pv] = -1
		if stop {
			return true
		}
	}
	return false
}

func (m *matcher) consistent(pv, tv V) bool {
	for _, pw := range m.p.Neighbors(pv) {
		if tw := m.mapped[pw]; tw >= 0 && !m.t.HasEdge(tv, tw) {
			return false
		}
	}
	if m.induced {
		// Mapped non-neighbors must stay non-adjacent.
		for pw, tw := range m.mapped {
			if tw < 0 || V(pw) == pv {
				continue
			}
			if !m.p.HasEdge(pv, V(pw)) && m.t.HasEdge(tv, tw) {
				return false
			}
		}
	}
	return true
}

func allVertices(g *Graph) []V {
	vs := make([]V, g.N())
	for i := range vs {
		vs[i] = V(i)
	}
	return vs
}

// EnumerateEmbeddings calls emit for every mapping of pattern p into
// target t that preserves labels and maps pattern edges to target edges.
// The mapped slice is reused between calls; emit must copy it to retain
// it and may return false to stop early.
func EnumerateEmbeddings(p, t *Graph, emit func(mapped []V) bool) {
	if p.N() == 0 {
		return
	}
	m := newMatcher(p, t, false)
	m.emit = emit
	m.match(0)
}

// HasEmbedding reports whether p embeds in t at least once.
func HasEmbedding(p, t *Graph) bool {
	if p.N() == 0 {
		return false
	}
	m := newMatcher(p, t, false)
	m.emit = func([]V) bool { return false }
	m.match(0)
	return m.found
}

// InducedSubgraph returns the subgraph of g induced by the given
// vertices, plus the mapping from new IDs to original IDs.
func (g *Graph) InducedSubgraph(vs []V) (*Graph, []V) {
	sub := New(len(vs))
	old := make([]V, len(vs))
	idx := make(map[V]V, len(vs))
	for i, v := range vs {
		idx[v] = V(i)
		old[i] = v
		sub.AddVertex(g.Label(v))
	}
	for i, v := range vs {
		for _, w := range g.Neighbors(v) {
			if j, ok := idx[w]; ok && V(i) < j {
				sub.MustAddEdge(V(i), j)
			}
		}
	}
	return sub, old
}
