package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// quickGraph derives a deterministic random connected graph from quick's
// fuzz inputs.
func quickGraph(seed int64, nRaw, extraRaw uint8) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + int(nRaw%10)
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(Label(rng.Intn(4)))
	}
	for v := 1; v < n; v++ {
		g.MustAddEdge(V(rng.Intn(v)), V(v))
	}
	for e := 0; e < int(extraRaw%6); e++ {
		u, w := V(rng.Intn(n)), V(rng.Intn(n))
		if u != w && !g.HasEdge(u, w) {
			g.MustAddEdge(u, w)
		}
	}
	return g
}

// TestQuickBFSSymmetry: shortest distances in an undirected graph are
// symmetric.
func TestQuickBFSSymmetry(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		g := quickGraph(seed, nRaw, extraRaw)
		d := g.AllPairsDistances()
		for u := 0; u < g.N(); u++ {
			for w := 0; w < g.N(); w++ {
				if d[u][w] != d[w][u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickTriangleInequality: d(u,w) <= d(u,x) + d(x,w).
func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		g := quickGraph(seed, nRaw, extraRaw)
		d := g.AllPairsDistances()
		n := g.N()
		for u := 0; u < n; u++ {
			for w := 0; w < n; w++ {
				for x := 0; x < n; x++ {
					if d[u][w] > d[u][x]+d[x][w] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickCanonicalDiameterInvariants: the canonical diameter is a
// valid simple path whose length equals the diameter and whose
// endpoints realize it; and it is minimal among its own orientations.
func TestQuickCanonicalDiameterInvariants(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		g := quickGraph(seed, nRaw, extraRaw)
		cd, diam := g.CanonicalDiameter()
		if diam != g.Diameter() {
			return false
		}
		if !cd.Valid(g) || int32(cd.Len()) != diam {
			return false
		}
		d := g.BFS(cd.Head())
		if d[cd.Tail()] != diam {
			return false
		}
		return ComparePathsTotal(g, cd, cd.Reversed()) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickVertexLevelsBounds: levels w.r.t. the canonical diameter are
// bounded by distance to either endpoint.
func TestQuickVertexLevelsBounds(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		g := quickGraph(seed, nRaw, extraRaw)
		cd, _ := g.CanonicalDiameter()
		levels := g.VertexLevels(cd)
		dh := g.BFS(cd.Head())
		for v := 0; v < g.N(); v++ {
			if levels[v] > dh[v] {
				return false
			}
			if levels[v] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickEmbeddingReflexive: every graph embeds into itself.
func TestQuickEmbeddingReflexive(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		g := quickGraph(seed, nRaw, extraRaw)
		return HasEmbedding(g, g) && Isomorphic(g, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
