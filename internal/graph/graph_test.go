package graph

import (
	"strings"
	"testing"
)

func buildPath(labels ...Label) *Graph {
	g := New(len(labels))
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(V(i-1), V(i))
	}
	return g
}

func TestAddVertexAndEdge(t *testing.T) {
	g := New(4)
	a := g.AddVertex(1)
	b := g.AddVertex(2)
	c := g.AddVertex(3)
	if g.N() != 3 {
		t.Fatalf("N = %d, want 3", g.N())
	}
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(b, c); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) {
		t.Error("HasEdge(a,b) should hold both ways")
	}
	if g.HasEdge(a, c) {
		t.Error("HasEdge(a,c) should be false")
	}
	if g.Degree(b) != 2 || g.Degree(a) != 1 {
		t.Errorf("degrees: a=%d b=%d", g.Degree(a), g.Degree(b))
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(2)
	a := g.AddVertex(0)
	b := g.AddVertex(1)
	if err := g.AddEdge(a, a); err == nil {
		t.Error("self-loop should fail")
	}
	if err := g.AddEdge(a, 99); err == nil {
		t.Error("out-of-range should fail")
	}
	if err := g.AddEdge(-1, b); err == nil {
		t.Error("negative vertex should fail")
	}
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(b, a); err == nil {
		t.Error("duplicate edge should fail")
	}
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
}

func TestRemoveEdge(t *testing.T) {
	g := buildPath(0, 1, 2)
	if !g.RemoveEdge(1, 0) {
		t.Fatal("RemoveEdge existing returned false")
	}
	if g.M() != 1 || g.HasEdge(0, 1) {
		t.Error("edge (0,1) still present")
	}
	if g.RemoveEdge(0, 1) {
		t.Error("RemoveEdge missing returned true")
	}
}

func TestEdgesSortedNormalized(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex(Label(i))
	}
	g.MustAddEdge(3, 1)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(0, 1)
	es := g.Edges()
	want := []Edge{{0, 1}, {0, 2}, {1, 3}}
	if len(es) != len(want) {
		t.Fatalf("edges = %v, want %v", es, want)
	}
	for i := range es {
		if es[i] != want[i] {
			t.Errorf("edges[%d] = %v, want %v", i, es[i], want[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildPath(0, 1, 2)
	c := g.Clone()
	c.AddVertex(9)
	c.MustAddEdge(2, 3)
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("clone mutated original: N=%d M=%d", g.N(), g.M())
	}
	if c.N() != 4 || c.M() != 3 {
		t.Errorf("clone wrong: N=%d M=%d", c.N(), c.M())
	}
}

func TestConnected(t *testing.T) {
	g := buildPath(0, 1, 2)
	if !g.Connected() {
		t.Error("path should be connected")
	}
	g.AddVertex(5)
	if g.Connected() {
		t.Error("isolated vertex should disconnect")
	}
	empty := New(0)
	if !empty.Connected() {
		t.Error("empty graph counts as connected")
	}
}

func TestLabelTable(t *testing.T) {
	lt := NewLabelTable()
	a := lt.Intern("alpha")
	b := lt.Intern("beta")
	if a == b {
		t.Error("distinct names interned to same label")
	}
	if lt.Intern("alpha") != a {
		t.Error("re-intern changed label")
	}
	if lt.Name(a) != "alpha" || lt.Name(b) != "beta" {
		t.Errorf("names: %q %q", lt.Name(a), lt.Name(b))
	}
	if lt.Len() != 2 {
		t.Errorf("Len = %d, want 2", lt.Len())
	}
	if got := lt.Name(Label(99)); !strings.HasPrefix(got, "L") {
		t.Errorf("unknown label name = %q", got)
	}
	var zero LabelTable
	if zero.Intern("x") != 0 {
		t.Error("zero-value table should work")
	}
}

func TestString(t *testing.T) {
	g := buildPath(0, 1)
	if got := g.String(); got != "G(|V|=2,|E|=1)" {
		t.Errorf("String = %q", got)
	}
}
