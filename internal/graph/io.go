package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text format, one record per line:
//
//	t # <name>        start a new graph (transaction databases)
//	v <id> <label>    vertex; ids must be dense and in order
//	e <u> <w>         undirected edge
//	# ...             comment
//
// Single-graph files may omit the leading "t" line.

// WriteText serializes graphs to w in the text format.
func WriteText(w io.Writer, graphs ...*Graph) error {
	bw := bufio.NewWriter(w)
	for gi, g := range graphs {
		if _, err := fmt.Fprintf(bw, "t # %d\n", gi); err != nil {
			return err
		}
		for v := 0; v < g.N(); v++ {
			if _, err := fmt.Fprintf(bw, "v %d %d\n", v, g.Label(V(v))); err != nil {
				return err
			}
		}
		for _, e := range g.Edges() {
			if _, err := fmt.Fprintf(bw, "e %d %d\n", e.U, e.W); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadText parses one or more graphs from r in the text format.
func ReadText(r io.Reader) ([]*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var graphs []*Graph
	var cur *Graph
	line := 0
	ensure := func() *Graph {
		if cur == nil {
			cur = New(16)
			graphs = append(graphs, cur)
		}
		return cur
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "t":
			cur = New(16)
			graphs = append(graphs, cur)
		case "v":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: vertex needs id and label", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex id %q", line, fields[1])
			}
			lab, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad label %q", line, fields[2])
			}
			g := ensure()
			if id != g.N() {
				return nil, fmt.Errorf("graph: line %d: vertex id %d out of order (want %d)", line, id, g.N())
			}
			g.AddVertex(Label(lab))
		case "e":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: edge needs two endpoints", line)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad endpoint %q", line, fields[1])
			}
			w, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad endpoint %q", line, fields[2])
			}
			if err := ensure().AddEdge(V(u), V(w)); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return graphs, nil
}

// String renders a compact description like "G(|V|=5,|E|=4)".
func (g *Graph) String() string {
	return fmt.Sprintf("G(|V|=%d,|E|=%d)", g.N(), g.M())
}
