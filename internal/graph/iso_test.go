package graph

import (
	"math/rand"
	"testing"
)

func permuted(rng *rand.Rand, g *Graph) *Graph {
	n := g.N()
	perm := rng.Perm(n)
	mapping := make([]V, n)
	for old, nw := range perm {
		mapping[old] = V(nw)
	}
	labels := make([]Label, n)
	for old := 0; old < n; old++ {
		labels[mapping[old]] = g.Label(V(old))
	}
	h := New(n)
	for _, l := range labels {
		h.AddVertex(l)
	}
	for _, e := range g.Edges() {
		h.MustAddEdge(mapping[e.U], mapping[e.W])
	}
	return h
}

func randomConnected(rng *rand.Rand, n, extra, labels int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(Label(rng.Intn(labels)))
	}
	for v := 1; v < n; v++ {
		g.MustAddEdge(V(rng.Intn(v)), V(v))
	}
	for e := 0; e < extra; e++ {
		u, w := V(rng.Intn(n)), V(rng.Intn(n))
		if u != w && !g.HasEdge(u, w) {
			g.MustAddEdge(u, w)
		}
	}
	return g
}

func TestIsomorphicPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		g := randomConnected(rng, 2+rng.Intn(8), rng.Intn(5), 3)
		h := permuted(rng, g)
		if !Isomorphic(g, h) {
			t.Fatalf("trial %d: permuted copy not isomorphic\n%v %v\n%v %v",
				trial, g.Labels(), g.Edges(), h.Labels(), h.Edges())
		}
	}
}

func TestNotIsomorphic(t *testing.T) {
	a := buildPath(0, 1, 2)
	b := buildPath(0, 2, 1) // same multiset, different adjacency of labels
	if Isomorphic(a, b) {
		t.Error("paths (0,1,2) and (0,2,1) are not isomorphic")
	}
	c := buildPath(0, 1)
	if Isomorphic(a, c) {
		t.Error("different sizes are not isomorphic")
	}
	// Same degree sequence, same labels, different structure:
	// triangle+edge vs path of 4 with extra... use C4 vs two K2? Use star vs path.
	star := New(4)
	for i := 0; i < 4; i++ {
		star.AddVertex(0)
	}
	star.MustAddEdge(0, 1)
	star.MustAddEdge(0, 2)
	star.MustAddEdge(0, 3)
	path := buildPath(0, 0, 0, 0)
	if Isomorphic(star, path) {
		t.Error("star4 vs path4 are not isomorphic")
	}
}

func TestIsomorphicLabelSensitive(t *testing.T) {
	a := buildPath(0, 1)
	b := buildPath(0, 0)
	if Isomorphic(a, b) {
		t.Error("label mismatch should fail")
	}
}

func TestEnumerateEmbeddingsTriangleInK4(t *testing.T) {
	k4 := New(4)
	for i := 0; i < 4; i++ {
		k4.AddVertex(0)
	}
	for u := V(0); u < 4; u++ {
		for w := u + 1; w < 4; w++ {
			k4.MustAddEdge(u, w)
		}
	}
	tri := New(3)
	for i := 0; i < 3; i++ {
		tri.AddVertex(0)
	}
	tri.MustAddEdge(0, 1)
	tri.MustAddEdge(1, 2)
	tri.MustAddEdge(0, 2)
	count := 0
	subgraphs := map[[3]V]struct{}{}
	EnumerateEmbeddings(tri, k4, func(mapped []V) bool {
		count++
		var key [3]V
		copy(key[:], mapped)
		sortV3(&key)
		subgraphs[key] = struct{}{}
		return true
	})
	if count != 24 { // 4 triangles x 6 automorphic maps
		t.Errorf("embedding maps = %d, want 24", count)
	}
	if len(subgraphs) != 4 {
		t.Errorf("distinct triangles = %d, want 4", len(subgraphs))
	}
}

func sortV3(a *[3]V) {
	if a[0] > a[1] {
		a[0], a[1] = a[1], a[0]
	}
	if a[1] > a[2] {
		a[1], a[2] = a[2], a[1]
	}
	if a[0] > a[1] {
		a[0], a[1] = a[1], a[0]
	}
}

func TestEnumerateEmbeddingsEarlyStop(t *testing.T) {
	g := buildPath(0, 0, 0, 0)
	p := buildPath(0, 0)
	calls := 0
	EnumerateEmbeddings(p, g, func([]V) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop: emit called %d times, want 1", calls)
	}
}

func TestHasEmbedding(t *testing.T) {
	g := buildPath(0, 1, 2)
	yes := buildPath(1, 2)
	no := buildPath(2, 0)
	if !HasEmbedding(yes, g) {
		t.Error("path (1,2) embeds in (0,1,2)")
	}
	if HasEmbedding(no, g) {
		t.Error("path (2,0) does not embed in (0,1,2)")
	}
	empty := New(0)
	if HasEmbedding(empty, g) {
		t.Error("empty pattern should report false")
	}
}

// TestEmbeddingSubgraphProperty: non-induced embeddings may map pattern
// non-edges onto target edges (subgraph, not induced-subgraph semantics).
func TestEmbeddingSubgraphProperty(t *testing.T) {
	tri := New(3)
	for i := 0; i < 3; i++ {
		tri.AddVertex(0)
	}
	tri.MustAddEdge(0, 1)
	tri.MustAddEdge(1, 2)
	tri.MustAddEdge(0, 2)
	p := buildPath(0, 0, 0)
	if !HasEmbedding(p, tri) {
		t.Error("path of 3 should embed into a triangle (non-induced)")
	}
	if Isomorphic(p, tri) {
		t.Error("path is not isomorphic to triangle")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildPath(0, 1, 2, 3)
	sub, old := g.InducedSubgraph([]V{1, 2, 3})
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("induced subgraph %v", sub)
	}
	if sub.Label(0) != 1 || sub.Label(2) != 3 {
		t.Errorf("labels wrong: %v", sub.Labels())
	}
	if old[0] != 1 || old[2] != 3 {
		t.Errorf("old map wrong: %v", old)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Error("edges wrong")
	}
}
