package graph

import (
	"fmt"
	"sort"
)

// V is a vertex identifier within a single graph.
type V = int32

// Label is an interned vertex label. Labels order lexicographically by
// their integer value; LabelTable interns strings in first-seen order, so
// callers that need the paper's lexicographic label order should intern
// labels in sorted order (synthetic generators use integer labels, where
// the numeric order is the lexicographic order).
type Label int32

// Edge is an undirected edge between two vertices. Normalized edges have
// U <= W.
type Edge struct {
	U, W V
}

// Norm returns the edge with endpoints ordered U <= W.
func (e Edge) Norm() Edge {
	if e.U > e.W {
		return Edge{e.W, e.U}
	}
	return e
}

// Graph is an undirected vertex-labeled graph with dense vertex IDs.
// The zero value is an empty graph ready to use via AddVertex/AddEdge.
type Graph struct {
	labels []Label
	adj    [][]V
	m      int // number of edges
}

// New returns an empty graph with capacity hints for n vertices.
func New(n int) *Graph {
	return &Graph{
		labels: make([]Label, 0, n),
		adj:    make([][]V, 0, n),
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		labels: append([]Label(nil), g.labels...),
		adj:    make([][]V, len(g.adj)),
		m:      g.m,
	}
	for i, nb := range g.adj {
		c.adj[i] = append([]V(nil), nb...)
	}
	return c
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.labels) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Label returns the label of vertex v.
func (g *Graph) Label(v V) Label { return g.labels[v] }

// Labels returns the label slice indexed by vertex ID. Callers must not
// modify it.
func (g *Graph) Labels() []Label { return g.labels }

// Neighbors returns the sorted adjacency list of v. Callers must not
// modify it.
func (g *Graph) Neighbors(v V) []V { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v V) int { return len(g.adj[v]) }

// AddVertex appends a vertex with the given label and returns its ID.
func (g *Graph) AddVertex(l Label) V {
	g.labels = append(g.labels, l)
	g.adj = append(g.adj, nil)
	return V(len(g.labels) - 1)
}

// HasEdge reports whether the undirected edge (u,w) exists.
func (g *Graph) HasEdge(u, w V) bool {
	nb := g.adj[u]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= w })
	return i < len(nb) && nb[i] == w
}

// AddEdge inserts the undirected edge (u,w). It returns an error for
// self-loops, out-of-range vertices, or duplicate edges.
func (g *Graph) AddEdge(u, w V) error {
	if u == w {
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	}
	n := V(g.N())
	if u < 0 || u >= n || w < 0 || w >= n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, w, n)
	}
	if g.HasEdge(u, w) {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, w)
	}
	g.insertArc(u, w)
	g.insertArc(w, u)
	g.m++
	return nil
}

// MustAddEdge is AddEdge that panics on error; for tests and generators
// that construct graphs programmatically.
func (g *Graph) MustAddEdge(u, w V) {
	if err := g.AddEdge(u, w); err != nil {
		panic(err)
	}
}

func (g *Graph) insertArc(u, w V) {
	nb := g.adj[u]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= w })
	nb = append(nb, 0)
	copy(nb[i+1:], nb[i:])
	nb[i] = w
	g.adj[u] = nb
}

// RemoveEdge deletes the undirected edge (u,w) if present and reports
// whether it existed.
func (g *Graph) RemoveEdge(u, w V) bool {
	if !g.HasEdge(u, w) {
		return false
	}
	g.removeArc(u, w)
	g.removeArc(w, u)
	g.m--
	return true
}

func (g *Graph) removeArc(u, w V) {
	nb := g.adj[u]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= w })
	g.adj[u] = append(nb[:i], nb[i+1:]...)
}

// Edges returns all edges normalized (U <= W) in sorted order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := V(0); int(u) < g.N(); u++ {
		for _, w := range g.adj[u] {
			if u < w {
				es = append(es, Edge{u, w})
			}
		}
	}
	return es
}

// Connected reports whether g is connected (the empty graph is connected).
func (g *Graph) Connected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	queue := []V{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				queue = append(queue, w)
			}
		}
	}
	return count == n
}

// LabelTable interns string labels to dense Label values. The zero value
// is ready to use.
type LabelTable struct {
	byName map[string]Label
	names  []string
}

// NewLabelTable returns an empty label table.
func NewLabelTable() *LabelTable {
	return &LabelTable{byName: make(map[string]Label)}
}

// Intern returns the Label for name, assigning the next ID if new.
func (t *LabelTable) Intern(name string) Label {
	if t.byName == nil {
		t.byName = make(map[string]Label)
	}
	if l, ok := t.byName[name]; ok {
		return l
	}
	l := Label(len(t.names))
	t.byName[name] = l
	t.names = append(t.names, name)
	return l
}

// Lookup returns the Label interned for name without interning it,
// reporting whether the name is known.
func (t *LabelTable) Lookup(name string) (Label, bool) {
	l, ok := t.byName[name]
	return l, ok
}

// Name returns the string for l, or a numeric fallback if unknown.
func (t *LabelTable) Name(l Label) string {
	if t == nil || int(l) < 0 || int(l) >= len(t.names) {
		return fmt.Sprintf("L%d", int(l))
	}
	return t.names[l]
}

// Len returns the number of interned labels.
func (t *LabelTable) Len() int { return len(t.names) }

// Names returns the interned label strings indexed by Label value.
// Callers must not modify the returned slice.
func (t *LabelTable) Names() []string { return t.names }
