package graph

// Unreachable marks a vertex with no path from the BFS source.
const Unreachable = int32(-1)

// BFS computes shortest-path distances (in edges) from src to every
// vertex. Unreachable vertices get Unreachable. The returned slice is
// freshly allocated.
func (g *Graph) BFS(src V) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	g.BFSInto(src, dist, nil)
	return dist
}

// BFSInto runs BFS from src writing into dist (which must be pre-filled
// with Unreachable and have length N) reusing queue storage if provided.
// It returns the visit order.
func (g *Graph) BFSInto(src V, dist []int32, queue []V) []V {
	queue = queue[:0]
	dist[src] = 0
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		for _, w := range g.adj[v] {
			if dist[w] == Unreachable {
				dist[w] = dv + 1
				queue = append(queue, w)
			}
		}
	}
	return queue
}

// MultiSourceBFS computes, for every vertex, the shortest distance to the
// nearest of the given sources. Used for vertex levels relative to a
// canonical diameter (Definition 5).
func (g *Graph) MultiSourceBFS(sources []V) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]V, 0, g.N())
	for _, s := range sources {
		if dist[s] != 0 {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		for _, w := range g.adj[v] {
			if dist[w] == Unreachable {
				dist[w] = dv + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// AllPairsDistances returns the full distance matrix via one BFS per
// vertex. Intended for small graphs (patterns); the cost is O(N*(N+M)).
func (g *Graph) AllPairsDistances() [][]int32 {
	n := g.N()
	d := make([][]int32, n)
	queue := make([]V, 0, n)
	for v := 0; v < n; v++ {
		row := make([]int32, n)
		for i := range row {
			row[i] = Unreachable
		}
		queue = g.BFSInto(V(v), row, queue)
		d[v] = row
	}
	return d
}

// Eccentricity returns the maximum finite BFS distance from v, or
// Unreachable if the graph is empty.
func (g *Graph) Eccentricity(v V) int32 {
	dist := g.BFS(v)
	ecc := int32(0)
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the diameter D(G) of a connected graph: the maximum
// over all pairs of the shortest-path distance. It returns Unreachable if
// the graph is disconnected or empty.
func (g *Graph) Diameter() int32 {
	n := g.N()
	if n == 0 {
		return Unreachable
	}
	diam := int32(0)
	dist := make([]int32, n)
	queue := make([]V, 0, n)
	for v := 0; v < n; v++ {
		for i := range dist {
			dist[i] = Unreachable
		}
		queue = g.BFSInto(V(v), dist, queue)
		if len(queue) != n {
			return Unreachable // disconnected
		}
		for _, d := range dist {
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}
