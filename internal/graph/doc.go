// Package graph provides the labeled-graph substrate for SkinnyMine:
// vertex-labeled undirected graphs, label interning, breadth-first
// distances, diameters and canonical diameters, path utilities,
// subgraph isomorphism, and the repository's text serialization.
//
// # Paper correspondence
//
// Definitions 2–4 of the paper (diameter, canonical diameter — the
// lexicographically smallest path realizing the diameter — and vertex
// level) are implemented by the BFS/diameter routines here;
// IsLLongDeltaSkinny decides Definition 7 directly. The canonical
// diameter computed here is the ground truth the mining engine's fast
// constraint checks are validated against (core.Options.ValidateOutput)
// and the skeleton every pattern's vertices 0..l are laid out along.
//
// # Representation and determinism
//
// Graphs are undirected and simple (no self-loops, no parallel edges).
// Vertices are dense int32 IDs starting at 0; adjacency lists are kept
// sorted so neighbor iteration — and everything derived from it, BFS
// orders included — is deterministic. Labels are interned int32s; a
// LabelTable maps them to names, and labels compare by first-intern
// order.
//
// # Concurrency and ownership
//
// A Graph is freely shared read-only: every query method (N, M, Label,
// Neighbors, BFS, diameters, isomorphism) is safe for concurrent
// callers as long as no goroutine mutates the graph. Mutation
// (AddVertex, AddEdge, RemoveEdge) is single-owner: construct, then
// share. A LabelTable is written during construction/interning and
// read-only afterwards; the mining engine never interns concurrently
// with serving.
package graph
