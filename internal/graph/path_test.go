package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPathBasics(t *testing.T) {
	g := buildPath(3, 1, 2, 1)
	p := Path{0, 1, 2, 3}
	if p.Len() != 3 {
		t.Errorf("Len = %d, want 3", p.Len())
	}
	if p.Head() != 0 || p.Tail() != 3 {
		t.Errorf("head/tail = %d/%d", p.Head(), p.Tail())
	}
	r := p.Reversed()
	want := Path{3, 2, 1, 0}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Reversed = %v, want %v", r, want)
		}
	}
	seq := p.LabelSeq(g)
	wantSeq := []Label{3, 1, 2, 1}
	for i := range wantSeq {
		if seq[i] != wantSeq[i] {
			t.Fatalf("LabelSeq = %v, want %v", seq, wantSeq)
		}
	}
}

func TestPathValid(t *testing.T) {
	g := buildPath(0, 1, 2)
	cases := []struct {
		name string
		p    Path
		want bool
	}{
		{"good", Path{0, 1, 2}, true},
		{"single", Path{1}, true},
		{"non-adjacent", Path{0, 2}, false},
		{"repeat vertex", Path{0, 1, 0}, false},
		{"out of range", Path{0, 9}, false},
		{"empty", Path{}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(g); got != c.want {
			t.Errorf("%s: Valid = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCompareLabelSeqs(t *testing.T) {
	cases := []struct {
		a, b []Label
		want int
	}{
		{[]Label{1}, []Label{1, 2}, -1},    // shorter first (Def 2 case I)
		{[]Label{1, 2}, []Label{1, 3}, -1}, // label order (Def 2 case II)
		{[]Label{1, 3}, []Label{1, 2}, 1},
		{[]Label{2, 2}, []Label{2, 2}, 0},
		{nil, nil, 0},
	}
	for _, c := range cases {
		if got := CompareLabelSeqs(c.a, c.b); got != c.want {
			t.Errorf("CompareLabelSeqs(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestComparePathsTotalTieBreak(t *testing.T) {
	// Two label-equal paths must order by physical IDs (Def 3 case II).
	g := New(4)
	g.AddVertex(5) // 0
	g.AddVertex(7) // 1
	g.AddVertex(7) // 2
	g.AddVertex(5) // 3
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(3, 1)
	a := Path{0, 1}
	b := Path{0, 2}
	if ComparePathsLex(g, a, b) != 0 {
		t.Fatal("paths should be label-equal")
	}
	if ComparePathsTotal(g, a, b) != -1 {
		t.Error("smaller ID sequence should order first")
	}
	// ID sequences compare positionwise: head 3 > head 0.
	c := Path{3, 1} // labels (5,7) with larger head ID
	if ComparePathsTotal(g, c, b) != 1 {
		t.Error("label-equal path with larger head ID should order after (0,2)")
	}
}

// TestTotalOrderProperties checks that the total path order (Def 3) is a
// strict total order on distinct simple paths of a random graph.
func TestTotalOrderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New(8)
	for i := 0; i < 8; i++ {
		g.AddVertex(Label(rng.Intn(3)))
	}
	for v := 1; v < 8; v++ {
		g.MustAddEdge(V(rng.Intn(v)), V(v))
	}
	// Collect all simple paths up to length 3.
	var paths []Path
	var dfs func(p Path)
	dfs = func(p Path) {
		paths = append(paths, append(Path(nil), p...))
		if len(p) > 3 {
			return
		}
		last := p[len(p)-1]
		for _, w := range g.Neighbors(last) {
			dup := false
			for _, v := range p {
				if v == w {
					dup = true
					break
				}
			}
			if !dup {
				dfs(append(p, w))
			}
		}
	}
	for v := 0; v < 8; v++ {
		dfs(Path{V(v)})
	}
	for i := range paths {
		for j := range paths {
			cij := ComparePathsTotal(g, paths[i], paths[j])
			cji := ComparePathsTotal(g, paths[j], paths[i])
			if cij != -cji {
				t.Fatalf("antisymmetry violated for %v vs %v", paths[i], paths[j])
			}
			if i != j && cij == 0 && !samePath(paths[i], paths[j]) {
				t.Fatalf("distinct paths compare equal: %v vs %v", paths[i], paths[j])
			}
		}
	}
}

func samePath(a, b Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCanonicalOrientation(t *testing.T) {
	g := buildPath(2, 1, 0)
	p := Path{0, 1, 2} // labels 2,1,0
	co := p.CanonicalOrientation(g)
	if co.Head() != 2 {
		t.Errorf("canonical orientation should start at label 0; got head %d", co.Head())
	}
	// Palindromic labels: tie broken by IDs, orientation stable.
	h := buildPath(1, 2, 1)
	q := Path{0, 1, 2}
	if got := q.CanonicalOrientation(h); got.Head() != 0 {
		t.Errorf("palindrome should pick smaller ID head; got %v", got)
	}
}

func TestCanonicalLabelSeq(t *testing.T) {
	if got := CanonicalLabelSeq([]Label{3, 1, 2}); got[0] != 2 {
		t.Errorf("canonical seq = %v, want reversed", got)
	}
	if got := CanonicalLabelSeq([]Label{1, 2, 3}); got[0] != 1 {
		t.Errorf("canonical seq = %v, want forward", got)
	}
	// Property: canonical of seq equals canonical of reversed seq.
	f := func(raw []uint8) bool {
		seq := make([]Label, len(raw))
		for i, r := range raw {
			seq[i] = Label(r % 5)
		}
		rev := make([]Label, len(seq))
		for i, l := range seq {
			rev[len(seq)-1-i] = l
		}
		return LabelSeqKey(CanonicalLabelSeq(seq)) == LabelSeqKey(CanonicalLabelSeq(rev))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLabelSeqKeyDistinct(t *testing.T) {
	a := LabelSeqKey([]Label{1, 2})
	b := LabelSeqKey([]Label{1, 3})
	c := LabelSeqKey([]Label{1, 2, 0})
	if a == b || a == c || b == c {
		t.Error("distinct sequences should have distinct keys")
	}
}
