package graph

// Path is a simple path in a graph, represented as the sequence of
// physical vertex IDs (Definition preceding Def. 2 in the paper). A path
// of length k has k+1 vertices.
type Path []V

// Len returns the length of the path in edges.
func (p Path) Len() int { return len(p) - 1 }

// Head returns the first vertex of the path (v_H in the paper).
func (p Path) Head() V { return p[0] }

// Tail returns the last vertex of the path (v_T in the paper).
func (p Path) Tail() V { return p[len(p)-1] }

// Reversed returns a new path with the vertex sequence reversed.
func (p Path) Reversed() Path {
	r := make(Path, len(p))
	for i, v := range p {
		r[len(p)-1-i] = v
	}
	return r
}

// LabelSeq returns the label sequence of the path under g's labeling.
func (p Path) LabelSeq(g *Graph) []Label {
	seq := make([]Label, len(p))
	for i, v := range p {
		seq[i] = g.Label(v)
	}
	return seq
}

// Valid reports whether p is a simple path of g: consecutive vertices
// adjacent and all vertices distinct.
func (p Path) Valid(g *Graph) bool {
	if len(p) == 0 {
		return false
	}
	seen := make(map[V]struct{}, len(p))
	for i, v := range p {
		if v < 0 || int(v) >= g.N() {
			return false
		}
		if _, dup := seen[v]; dup {
			return false
		}
		seen[v] = struct{}{}
		if i > 0 && !g.HasEdge(p[i-1], v) {
			return false
		}
	}
	return true
}

// CompareLabelSeqs compares two label sequences per the lexicographical
// path order of Definition 2: shorter sequences order first; equal-length
// sequences compare label-by-label. It returns -1, 0, or +1.
func CompareLabelSeqs(a, b []Label) int {
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// ComparePathsLex compares two paths of g by the lexicographical path
// order of Definition 2 (labels only). It returns -1, 0, or +1.
func ComparePathsLex(g *Graph, a, b Path) int {
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	for i := range a {
		la, lb := g.Label(a[i]), g.Label(b[i])
		switch {
		case la < lb:
			return -1
		case la > lb:
			return 1
		}
	}
	return 0
}

// ComparePathsTotal compares two paths of g by the total path order of
// Definition 3: lexicographical label order first, physical vertex ID
// sequence as tie-break. Distinct simple paths always compare non-equal,
// which is what makes the canonical diameter unique.
func ComparePathsTotal(g *Graph, a, b Path) int {
	if c := ComparePathsLex(g, a, b); c != 0 {
		return c
	}
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// CanonicalOrientation returns p or its reversal, whichever is smaller in
// the total path order. A path subgraph has two traversal orders; the
// canonical orientation picks a unique representative.
func (p Path) CanonicalOrientation(g *Graph) Path {
	r := p.Reversed()
	if ComparePathsTotal(g, r, p) < 0 {
		return r
	}
	return p
}

// CanonicalLabelSeq returns the lexicographically smaller of the label
// sequence and its reversal. Two path *patterns* are isomorphic exactly
// when their canonical label sequences agree.
func CanonicalLabelSeq(seq []Label) []Label {
	n := len(seq)
	rev := make([]Label, n)
	for i, l := range seq {
		rev[n-1-i] = l
	}
	if CompareLabelSeqs(rev, seq) < 0 {
		return rev
	}
	out := make([]Label, n)
	copy(out, seq)
	return out
}

// LabelSeqKey encodes a label sequence as a comparable string key.
func LabelSeqKey(seq []Label) string {
	b := make([]byte, 0, len(seq)*4)
	for _, l := range seq {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}
