package graph

import (
	"math/rand"
	"testing"
)

func TestBFSAndDistances(t *testing.T) {
	g := buildPath(0, 0, 0, 0)
	d := g.BFS(0)
	for i, want := range []int32{0, 1, 2, 3} {
		if d[i] != want {
			t.Errorf("BFS[%d] = %d, want %d", i, d[i], want)
		}
	}
	g.AddVertex(9)
	d = g.BFS(0)
	if d[4] != Unreachable {
		t.Errorf("unreachable vertex got distance %d", d[4])
	}
}

func TestMultiSourceBFS(t *testing.T) {
	g := buildPath(0, 0, 0, 0, 0)
	d := g.MultiSourceBFS([]V{0, 4})
	want := []int32{0, 1, 2, 1, 0}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("MultiSourceBFS[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int32
	}{
		{"path4", buildPath(0, 0, 0, 0), 3},
		{"single", buildPath(0), 0},
	}
	cyc := buildPath(0, 0, 0, 0, 0, 0)
	cyc.MustAddEdge(5, 0)
	cases = append(cases, struct {
		name string
		g    *Graph
		want int32
	}{"cycle6", cyc, 3})
	for _, c := range cases {
		if got := c.g.Diameter(); got != c.want {
			t.Errorf("%s: Diameter = %d, want %d", c.name, got, c.want)
		}
	}
	disc := buildPath(0, 0)
	disc.AddVertex(0)
	if disc.Diameter() != Unreachable {
		t.Error("disconnected graph should report Unreachable")
	}
}

func TestCanonicalDiameterPath(t *testing.T) {
	// For a bare path, the canonical diameter is the path itself in the
	// orientation with the smaller label sequence.
	g := buildPath(2, 1, 0)
	cd, diam := g.CanonicalDiameter()
	if diam != 2 {
		t.Fatalf("diam = %d, want 2", diam)
	}
	if cd.Head() != 2 || cd.Tail() != 0 {
		t.Errorf("canonical diameter = %v, want [2 1 0]", cd)
	}
}

func TestCanonicalDiameterLexChoice(t *testing.T) {
	// A "Y" where two diameter paths exist; the smaller label wins.
	//   0(a) - 1(a) - 2(a) - 3(b)
	//                   \
	//                    4(c)
	// Diameter = 3: 0..3 (a,a,a,b) and 0..4 (a,a,a,c); canonical is the b-path.
	g := New(5)
	for _, l := range []Label{0, 0, 0, 1, 2} {
		g.AddVertex(l)
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(2, 4)
	cd, diam := g.CanonicalDiameter()
	if diam != 3 {
		t.Fatalf("diam = %d, want 3", diam)
	}
	if cd.Tail() != 3 && cd.Head() != 3 {
		t.Errorf("canonical diameter %v should use the label-1 endpoint", cd)
	}
	if g.Label(cd[0]) > g.Label(cd[len(cd)-1]) {
		t.Errorf("canonical diameter %v not in canonical orientation", cd)
	}
}

func TestCanonicalDiameterIDTieBreak(t *testing.T) {
	// Two label-identical diameter paths; smaller physical IDs win.
	//    1(a)      2(a)
	//      \       /
	//       0(b)--+     both 1-0-? paths have labels (a,b,a)
	g := New(3)
	g.AddVertex(1) // 0: b
	g.AddVertex(0) // 1: a
	g.AddVertex(0) // 2: a
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	cd, diam := g.CanonicalDiameter()
	if diam != 2 {
		t.Fatalf("diam = %d, want 2", diam)
	}
	want := Path{1, 0, 2}
	for i := range want {
		if cd[i] != want[i] {
			t.Fatalf("canonical diameter = %v, want %v", cd, want)
		}
	}
}

func TestCanonicalDiameterDisconnected(t *testing.T) {
	g := buildPath(0, 0)
	g.AddVertex(0)
	cd, diam := g.CanonicalDiameter()
	if cd != nil || diam != Unreachable {
		t.Errorf("disconnected: got (%v, %d)", cd, diam)
	}
}

// bruteCanonicalDiameter enumerates every simple path realizing the
// diameter and returns the minimum under the total path order.
func bruteCanonicalDiameter(g *Graph) (Path, int32) {
	d := g.AllPairsDistances()
	diam := int32(0)
	for v := 0; v < g.N(); v++ {
		for w := 0; w < g.N(); w++ {
			if d[v][w] == Unreachable {
				return nil, Unreachable
			}
			if d[v][w] > diam {
				diam = d[v][w]
			}
		}
	}
	if g.N() == 0 {
		return nil, Unreachable
	}
	var best Path
	var dfs func(p Path, t V)
	dfs = func(p Path, t V) {
		last := p[len(p)-1]
		if int32(len(p)-1) == diam {
			if last == t {
				if best == nil || ComparePathsTotal(g, p, best) < 0 {
					best = append(Path(nil), p...)
				}
			}
			return
		}
		for _, w := range g.Neighbors(last) {
			ok := true
			for _, v := range p {
				if v == w {
					ok = false
					break
				}
			}
			if ok {
				dfs(append(p, w), t)
			}
		}
	}
	for s := 0; s < g.N(); s++ {
		for t := 0; t < g.N(); t++ {
			if s != t && d[s][t] == diam {
				dfs(Path{V(s)}, V(t))
			}
		}
	}
	if diam == 0 {
		best = g.CanonicalDiameterWithDist(d, 0)
	}
	return best, diam
}

// TestCanonicalDiameterAgainstBruteForce is the property test anchoring
// Definition 4: the frontier-sweep implementation must agree with full
// enumeration of diameter-realizing shortest paths on random graphs.
func TestCanonicalDiameterAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(7)
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddVertex(Label(rng.Intn(3)))
		}
		for v := 1; v < n; v++ {
			g.MustAddEdge(V(rng.Intn(v)), V(v))
		}
		for e := 0; e < rng.Intn(4); e++ {
			u, w := V(rng.Intn(n)), V(rng.Intn(n))
			if u != w && !g.HasEdge(u, w) {
				g.MustAddEdge(u, w)
			}
		}
		got, gotD := g.CanonicalDiameter()
		want, wantD := bruteCanonicalDiameter(g)
		if gotD != wantD {
			t.Fatalf("trial %d: diameter %d, want %d\n%v", trial, gotD, wantD, g.Edges())
		}
		if ComparePathsTotal(g, got, want) != 0 {
			t.Fatalf("trial %d: canonical diameter %v, want %v (labels %v, edges %v)",
				trial, got, want, g.Labels(), g.Edges())
		}
		if !got.Valid(g) {
			t.Fatalf("trial %d: canonical diameter %v not a valid simple path", trial, got)
		}
	}
}

func TestVertexLevelsAndSkinny(t *testing.T) {
	// Path 0-1-2 with twig 3 off vertex 1 and twig 4 off 3 (level 2).
	g := buildPath(0, 0, 0)
	g.AddVertex(0)
	g.MustAddEdge(1, 3)
	g.AddVertex(0)
	g.MustAddEdge(3, 4)
	l := Path{0, 1, 2}
	levels := g.VertexLevels(l)
	want := []int32{0, 0, 0, 1, 2}
	for i := range want {
		if levels[i] != want[i] {
			t.Errorf("level[%d] = %d, want %d", i, levels[i], want[i])
		}
	}
	if g.IsSkinny(l, 1) {
		t.Error("graph has a 2-level vertex; not 1-skinny")
	}
	if !g.IsSkinny(l, 2) {
		t.Error("graph should be 2-skinny")
	}
}

func TestIsLLongDeltaSkinny(t *testing.T) {
	// 4-long path with one twig: 4-long 1-skinny.
	g := buildPath(0, 1, 2, 1, 0)
	g.AddVertex(3)
	g.MustAddEdge(2, 5)
	if _, ok := g.IsLLongDeltaSkinny(4, 1); !ok {
		t.Error("should be 4-long 1-skinny")
	}
	if _, ok := g.IsLLongDeltaSkinny(4, 0); ok {
		t.Error("twig vertex breaks 0-skinny")
	}
	if _, ok := g.IsLLongDeltaSkinny(3, 1); ok {
		t.Error("wrong length should fail")
	}
}
