package synth

import (
	"fmt"
	"math/rand"

	"skinnymine/internal/graph"
)

// SkewOptions configures the skewed-label constrained-mining workload
// (Skew). Zero values take the defaults noted per field.
type SkewOptions struct {
	// N is the background vertex count (default 400).
	N int
	// AvgDeg is the background average degree (default 2.5).
	AvgDeg float64
	// Labels is the background label universe size; labels are drawn
	// Zipf-distributed, label 0 most common (default 8).
	Labels int
	// ZipfS is the Zipf exponent s > 1; larger is more skewed
	// (default 1.4).
	ZipfS float64
	// Motifs is how many identical copies of the motif are planted
	// (default 6).
	Motifs int
	// Motif is the planted pattern's shape. The zero value defaults to
	// a 10-vertex 4-diameter 1-skinny motif labeled from the band
	// [Labels, Labels+3) — labels that never occur in the background,
	// so label constraints select (or exclude) the motifs exactly.
	Motif SkinnySpec
}

func (o SkewOptions) withDefaults() SkewOptions {
	if o.N == 0 {
		o.N = 400
	}
	if o.AvgDeg == 0 {
		o.AvgDeg = 2.5
	}
	if o.Labels == 0 {
		o.Labels = 8
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.4
	}
	if o.ZipfS <= 1 {
		panic(fmt.Sprintf("synth: Zipf exponent must be > 1, got %v", o.ZipfS))
	}
	if o.Motifs == 0 {
		o.Motifs = 6
	}
	if o.Motif.V == 0 {
		o.Motif = SkinnySpec{V: 10, Diam: 4, Delta: 1, LabelBase: o.Labels, LabelRange: 3}
	}
	return o
}

// Skew builds the skewed-label workload for constraint-selectivity
// experiments: an Erdős–Rényi background whose labels follow a Zipf
// distribution — a few labels blanket the graph, the rest are rare —
// with identical copies of a labeled skinny motif planted on top
// (rare-band labels by default). Against this graph, constraints have
// measurable, tunable selectivity: "!contains(label='0')" prunes most
// of the background's frequent paths, while "contains(label='<rare>')"
// isolates the motifs. Deterministic for a given rng.
func Skew(rng *rand.Rand, o SkewOptions) *graph.Graph {
	o = o.withDefaults()
	g := graph.New(o.N)
	z := rand.NewZipf(rng, o.ZipfS, 1, uint64(o.Labels-1))
	for i := 0; i < o.N; i++ {
		g.AddVertex(graph.Label(z.Uint64()))
	}
	m := int(float64(o.N) * o.AvgDeg / 2)
	// Rejection sampling below must be able to place every edge: cap
	// the target at the simple-graph maximum (and skip degenerate
	// backgrounds entirely — a 1-vertex "graph" has nowhere to put one).
	if max := o.N * (o.N - 1) / 2; m > max {
		m = max
	}
	for added := 0; added < m; {
		u := graph.V(rng.Intn(o.N))
		w := graph.V(rng.Intn(o.N))
		if u == w || g.HasEdge(u, w) {
			continue
		}
		g.MustAddEdge(u, w)
		added++
	}
	motif := RandomSkinnyPattern(rng, o.Motif)
	Inject(rng, g, motif, o.Motifs, 0.2)
	return g
}
