// Package synth generates the paper's synthetic and simulated-real
// workloads, plus the skewed-label workload the constraint benchmarks
// use.
//
// # Paper correspondence
//
// ER + Inject reproduce the evaluation's Erdős–Rényi background graphs
// with injected skinny/fat patterns (Tables 1–3, Figures 4–20; the
// graph-database setting of Figures 9–10 assembles from them in
// internal/exp); the DBLP and Sina Weibo stand-ins model the case
// studies of Figures 21–24. Skew is this repository's addition: a
// Zipf-labeled background
// with identical rare-band-labeled skinny motifs, so a label constraint
// selects (or excludes) the planted patterns exactly — the
// selectivity workload behind BenchmarkMineConstrained* and the batch
// example.
//
// # Determinism and ownership
//
// Every generator takes an explicit *rand.Rand and is a pure function
// of it, so all experiments are reproducible bit-for-bit; none of the
// generators retain state, and the returned graphs are owned by the
// caller. Generators are safe to call concurrently only with distinct
// *rand.Rand instances (math/rand sources are not concurrency-safe).
package synth
