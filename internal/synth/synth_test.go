package synth

import (
	"math/rand"
	"testing"

	"skinnymine/internal/graph"
)

func TestERBasicShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := ER(rng, 1000, 3, 50)
	if g.N() != 1000 {
		t.Fatalf("N = %d", g.N())
	}
	wantM := 1500
	if g.M() != wantM {
		t.Errorf("M = %d, want %d", g.M(), wantM)
	}
	seen := make(map[graph.Label]struct{})
	for _, l := range g.Labels() {
		if l < 0 || l >= 50 {
			t.Fatalf("label %d out of range", l)
		}
		seen[l] = struct{}{}
	}
	if len(seen) < 40 {
		t.Errorf("only %d distinct labels", len(seen))
	}
}

func TestERTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := ER(rng, 1, 3, 5)
	if g.N() != 1 || g.M() != 0 {
		t.Error("single-vertex ER wrong")
	}
}

func TestRandomSkinnyPatternShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		spec := SkinnySpec{V: 20 + rng.Intn(20), Diam: 8 + rng.Intn(8), Delta: 2, LabelBase: 10, LabelRange: 5}
		p := RandomSkinnyPattern(rng, spec)
		if p.Diameter() != int32(spec.Diam) {
			t.Fatalf("trial %d: diameter %d, want %d", trial, p.Diameter(), spec.Diam)
		}
		if !p.Connected() {
			t.Fatal("pattern must be connected")
		}
		if p.N() > spec.V {
			t.Fatalf("pattern has %d vertices, budget %d", p.N(), spec.V)
		}
		// δ-skinny w.r.t. its backbone (vertices 0..Diam).
		backbone := make(graph.Path, spec.Diam+1)
		for i := range backbone {
			backbone[i] = graph.V(i)
		}
		for _, d := range p.VertexLevels(backbone) {
			if d > int32(spec.Delta) {
				t.Fatalf("trial %d: vertex at level %d > δ=%d", trial, d, spec.Delta)
			}
		}
	}
}

func TestRandomSkinnyPatternPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for V < Diam+1")
		}
	}()
	RandomSkinnyPattern(rand.New(rand.NewSource(1)), SkinnySpec{V: 3, Diam: 5})
}

func TestInjectDisjointCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := ER(rng, 100, 2, 10)
	p := RandomSkinnyPattern(rng, SkinnySpec{V: 8, Diam: 4, Delta: 1, LabelBase: 50, LabelRange: 3})
	before := g.N()
	bases := Inject(rng, g, p, 3, 0)
	if len(bases) != 3 {
		t.Fatalf("bases = %v", bases)
	}
	if g.N() != before+3*p.N() {
		t.Errorf("vertex count %d, want %d", g.N(), before+3*p.N())
	}
	// Each copy is an exact induced copy (attachProb 0).
	for _, b := range bases {
		vs := make([]graph.V, p.N())
		for i := range vs {
			vs[i] = b + graph.V(i)
		}
		sub, _ := g.InducedSubgraph(vs)
		if !graph.Isomorphic(sub, p) {
			t.Error("injected copy not isomorphic to pattern")
		}
	}
}

func TestInjectWithAttachment(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := ER(rng, 100, 2, 10)
	p := RandomSkinnyPattern(rng, SkinnySpec{V: 6, Diam: 3, Delta: 1, LabelBase: 50, LabelRange: 2})
	mBefore := g.M()
	Inject(rng, g, p, 2, 1.0) // attach every vertex
	extra := g.M() - mBefore - 2*p.M()
	if extra <= 0 {
		t.Error("attachProb=1 should add interconnection edges")
	}
}

func TestBuildGIDSettings(t *testing.T) {
	if len(GIDSettings) != 5 {
		t.Fatal("Table 1 has five rows")
	}
	rng := rand.New(rand.NewSource(6))
	for _, s := range GIDSettings[:2] { // keep the test fast
		g, inj := BuildGID(rng, s)
		if g.N() < s.V/2 {
			t.Errorf("GID %d: graph too small (%d)", s.GID, g.N())
		}
		if len(inj) != s.M+s.N {
			t.Errorf("GID %d: %d injections, want %d", s.GID, len(inj), s.M+s.N)
		}
		for _, in := range inj[:s.M] {
			if in.Pattern.Diameter() != int32(s.Ld) {
				t.Errorf("GID %d: long pattern diameter %d, want %d", s.GID, in.Pattern.Diameter(), s.Ld)
			}
			if len(in.Bases) != s.Ls {
				t.Errorf("GID %d: %d copies, want %d", s.GID, len(in.Bases), s.Ls)
			}
		}
	}
}

func TestBuildTable3(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, inj := BuildTable3(rng, 0.2)
	if len(inj) != 10 {
		t.Fatalf("got %d injections, want 10", len(inj))
	}
	for i, in := range inj {
		want := Table3Patterns[i]
		if in.Pattern.Diameter() != int32(want.Diam) {
			t.Errorf("PID %d: diameter %d, want %d", want.PID, in.Pattern.Diameter(), want.Diam)
		}
		if len(in.Bases) != 2 {
			t.Errorf("PID %d: support %d, want 2", want.PID, len(in.Bases))
		}
	}
	if g.N() < 200 {
		t.Error("graph too small")
	}
}

func TestBuildTransactionDB(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	skinny := []SkinnySpec{{V: 10, Diam: 6, Delta: 1, LabelBase: 40, LabelRange: 3}}
	small := []SkinnySpec{{V: 4, Diam: 2, Delta: 1, LabelBase: 30, LabelRange: 2}}
	db, planted := BuildTransactionDB(rng, 10, 80, 2, 20, skinny, 5, small, 5)
	if len(db) != 10 {
		t.Fatalf("db size %d", len(db))
	}
	if len(planted) != 2 {
		t.Fatalf("planted %d, want 2", len(planted))
	}
	// The skinny pattern must embed in at least one transaction.
	hits := 0
	for _, g := range db {
		if graph.HasEmbedding(planted[0], g) {
			hits++
		}
	}
	if hits < 1 {
		t.Error("planted pattern not found in any transaction")
	}
}

func TestDBLPSchema(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := DBLP(rng, DBLPOptions{Authors: 12, Years: 21, Archetypes: 3})
	if len(db) != 12 {
		t.Fatalf("authors = %d", len(db))
	}
	for ai, g := range db {
		// Backbone: year vertices 0..20 forming a chain.
		for y := 0; y < 20; y++ {
			if g.Label(graph.V(y)) != DBLPYearLabel {
				t.Fatalf("author %d: vertex %d not a year node", ai, y)
			}
			if !g.HasEdge(graph.V(y), graph.V(y+1)) {
				t.Fatalf("author %d: timeline broken at %d", ai, y)
			}
		}
		// Collab nodes are leaves labeled in range.
		for v := 21; v < g.N(); v++ {
			l := g.Label(graph.V(v))
			if l < 1 || l > 12 {
				t.Fatalf("author %d: collab label %d out of range", ai, l)
			}
			if g.Degree(graph.V(v)) != 1 {
				t.Fatalf("author %d: collab node with degree %d", ai, g.Degree(graph.V(v)))
			}
		}
	}
	if DBLPLabelName(DBLPYearLabel) != "Year" {
		t.Error("year label name")
	}
	if DBLPLabelName(DBLPCollabLabel(1, 2)) != "S2" {
		t.Errorf("S2 label name = %q", DBLPLabelName(DBLPCollabLabel(1, 2)))
	}
}

func TestWeiboSchema(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	db := Weibo(rng, WeiboOptions{Conversations: 8, AvgSize: 15, ChainConversations: 3, ChainLength: 13})
	if len(db) != 8 {
		t.Fatalf("conversations = %d", len(db))
	}
	for ci, g := range db {
		if g.Label(0) != WeiboRoot {
			t.Fatalf("conversation %d: vertex 0 not root", ci)
		}
		if !g.Connected() {
			t.Fatalf("conversation %d: disconnected", ci)
		}
	}
	// Chain conversations must contain a long path (diameter >= 13).
	for ci := 0; ci < 3; ci++ {
		ecc := db[ci].Eccentricity(0)
		if ecc < 12 {
			t.Errorf("conversation %d: root eccentricity %d, want >= 12", ci, ecc)
		}
	}
	if WeiboLabelName(WeiboRoot) != "Root" || WeiboLabelName(WeiboOther) != "Other" {
		t.Error("label names")
	}
}

func TestSkewShapeAndSelectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	opts := SkewOptions{N: 600, Labels: 8, Motifs: 5}
	g := Skew(rng, opts)

	wantV := 600 + 5*10 // background + 5 copies of the 10-vertex default motif
	if g.N() != wantV {
		t.Fatalf("N = %d, want %d", g.N(), wantV)
	}

	// Zipf skew: label 0 must dominate the background, and counts must
	// broadly fall with the label index.
	counts := make(map[graph.Label]int)
	for v := 0; v < 600; v++ {
		counts[g.Label(graph.V(v))]++
	}
	if counts[0] < counts[3] || counts[0] < 600/4 {
		t.Errorf("label 0 count %d not dominant (label 3: %d)", counts[0], counts[3])
	}
	if counts[7] >= counts[0] {
		t.Errorf("rarest background label as common as the most frequent: %d vs %d", counts[7], counts[0])
	}

	// Motifs live on the exclusive rare band [Labels, Labels+3): absent
	// from the background, present Motifs times in the planted region.
	for v := 0; v < 600; v++ {
		if g.Label(graph.V(v)) >= 8 {
			t.Fatalf("background vertex %d carries motif-band label %d", v, g.Label(graph.V(v)))
		}
	}
	motifVerts := 0
	for v := 600; v < g.N(); v++ {
		if g.Label(graph.V(v)) >= 8 {
			motifVerts++
		}
	}
	if motifVerts != 5*10 {
		t.Errorf("motif-band vertices = %d, want 50", motifVerts)
	}

	// Identical copies: the same motif graph is planted every time, so
	// corresponding vertices of any two copies share labels.
	for v := 0; v < 10; v++ {
		a := g.Label(graph.V(600 + v))
		b := g.Label(graph.V(600 + 10 + v))
		if a != b {
			t.Fatalf("motif copies differ at offset %d: %d vs %d", v, a, b)
		}
	}

	// Determinism: same seed, same graph.
	h := Skew(rand.New(rand.NewSource(42)), opts)
	if h.N() != g.N() || h.M() != g.M() {
		t.Errorf("same seed produced different graph: %d/%d vs %d/%d vertices/edges", g.N(), g.M(), h.N(), h.M())
	}
}
