package synth

import (
	"fmt"
	"math/rand"

	"skinnymine/internal/graph"
)

// ER builds an Erdős–Rényi G(n, p) graph with p chosen to hit the given
// average degree, labels drawn uniformly from [0, labels).
func ER(rng *rand.Rand, n int, avgDeg float64, labels int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(rng.Intn(labels)))
	}
	if n < 2 {
		return g
	}
	// Expected edges m = n*avgDeg/2; sample by pair probability via the
	// standard G(n, m)-style draw, which is faster and equivalent in
	// expectation for sparse graphs.
	m := int(float64(n) * avgDeg / 2)
	for added := 0; added < m; {
		u := graph.V(rng.Intn(n))
		w := graph.V(rng.Intn(n))
		if u == w || g.HasEdge(u, w) {
			continue
		}
		g.MustAddEdge(u, w)
		added++
	}
	return g
}

// SkinnySpec describes a pattern to synthesize: a backbone of Diam edges
// with twigs branching out to depth at most Delta until V vertices are
// reached. Labels are drawn from [LabelBase, LabelBase+LabelRange).
type SkinnySpec struct {
	V          int
	Diam       int
	Delta      int
	LabelBase  int
	LabelRange int
}

// RandomSkinnyPattern builds a random pattern per spec. It panics if
// V < Diam+1 (the backbone alone needs that many vertices).
func RandomSkinnyPattern(rng *rand.Rand, spec SkinnySpec) *graph.Graph {
	if spec.V < spec.Diam+1 {
		panic(fmt.Sprintf("synth: V=%d < Diam+1=%d", spec.V, spec.Diam+1))
	}
	if spec.LabelRange < 1 {
		spec.LabelRange = 1
	}
	lab := func() graph.Label {
		return graph.Label(spec.LabelBase + rng.Intn(spec.LabelRange))
	}
	g := graph.New(spec.V)
	for i := 0; i <= spec.Diam; i++ {
		g.AddVertex(lab())
	}
	for i := 1; i <= spec.Diam; i++ {
		g.MustAddEdge(graph.V(i-1), graph.V(i))
	}
	level := make([]int, spec.Diam+1) // level of each vertex
	failures := 0
	for g.N() < spec.V && failures < 200 {
		// Attach a twig vertex to any vertex whose level < Delta and
		// whose position keeps the diameter intact: attach points near
		// the backbone middle so twigs never extend the diameter.
		v := rng.Intn(g.N())
		lv := level[v]
		if lv >= spec.Delta {
			failures++
			continue
		}
		// Distance sanity: a twig at depth lv+1 hanging from backbone
		// position p must satisfy dist-to-ends + depth <= Diam.
		u := g.AddVertex(lab())
		g.MustAddEdge(graph.V(v), u)
		level = append(level, lv+1)
		// Verify the injected pattern still has the intended diameter;
		// back out if the twig stretched it.
		if g.Diameter() != int32(spec.Diam) {
			g.RemoveEdge(graph.V(v), u)
			// Vertex u stays as orphan; rebuild without it.
			vs := make([]graph.V, g.N()-1)
			for i := range vs {
				vs[i] = graph.V(i)
			}
			g2, _ := g.InducedSubgraph(vs)
			g = g2
			level = level[:len(level)-1]
			failures++
		} else {
			failures = 0
		}
	}
	return g
}

// Inject appends copies of pattern into g as fresh vertex-disjoint
// subgraphs; each injected vertex is additionally wired to a random
// pre-existing background vertex with probability attachProb (the paper
// notes such interconnections create slightly larger variants, e.g. the
// size-41 patterns of GID 2). Returns the base vertex of each copy.
func Inject(rng *rand.Rand, g *graph.Graph, pattern *graph.Graph, copies int, attachProb float64) []graph.V {
	bases := make([]graph.V, 0, copies)
	background := g.N()
	for c := 0; c < copies; c++ {
		base := g.N()
		bases = append(bases, graph.V(base))
		for v := 0; v < pattern.N(); v++ {
			g.AddVertex(pattern.Label(graph.V(v)))
		}
		for _, e := range pattern.Edges() {
			g.MustAddEdge(graph.V(base)+e.U, graph.V(base)+e.W)
		}
		if attachProb > 0 && background > 0 {
			for v := 0; v < pattern.N(); v++ {
				if rng.Float64() < attachProb {
					t := graph.V(rng.Intn(background))
					src := graph.V(base + v)
					if !g.HasEdge(src, t) {
						g.MustAddEdge(src, t)
					}
				}
			}
		}
	}
	return bases
}

// GIDSetting mirrors one row of Table 1. M is the number of distinct
// injected long patterns (5 for every GID, per the paper).
type GIDSetting struct {
	GID int
	V   int // background+injected vertex budget
	F   int // label count
	Deg int // average degree
	M   int // distinct long patterns
	VL  int // vertices per long pattern
	Ld  int // long pattern diameter
	Ls  int // embeddings per long pattern
	N   int // distinct short patterns
	VS  int // vertices per short pattern
	Sd  int // short pattern diameter
	Ss  int // embeddings per short pattern
}

// GIDSettings is Table 1 of the paper.
var GIDSettings = []GIDSetting{
	{GID: 1, V: 500, F: 80, Deg: 2, M: 5, VL: 40, Ld: 18, Ls: 2, N: 5, VS: 4, Sd: 2, Ss: 2},
	{GID: 2, V: 500, F: 80, Deg: 4, M: 5, VL: 40, Ld: 18, Ls: 2, N: 5, VS: 4, Sd: 2, Ss: 2},
	{GID: 3, V: 1000, F: 240, Deg: 2, M: 5, VL: 40, Ld: 18, Ls: 2, N: 5, VS: 4, Sd: 2, Ss: 20},
	{GID: 4, V: 1000, F: 240, Deg: 4, M: 5, VL: 40, Ld: 18, Ls: 2, N: 5, VS: 4, Sd: 2, Ss: 20},
	{GID: 5, V: 600, F: 150, Deg: 4, M: 5, VL: 40, Ld: 18, Ls: 2, N: 20, VS: 4, Sd: 2, Ss: 2},
}

// Injected describes one planted pattern and where its copies start.
type Injected struct {
	Pattern *graph.Graph
	Bases   []graph.V
}

// BuildGID materializes one Table-1 data set: an ER background plus the
// specified long and short pattern injections. Injected pattern labels
// use the upper end of the label space so they stand out from the
// background the way the paper's planted patterns do.
func BuildGID(rng *rand.Rand, s GIDSetting) (*graph.Graph, []Injected) {
	injectedVertices := s.M*s.VL*s.Ls + s.N*s.VS*s.Ss
	background := s.V - injectedVertices
	if background < 0 {
		background = s.V / 4
	}
	g := ER(rng, background, float64(s.Deg), s.F)
	var all []Injected
	for i := 0; i < s.M; i++ {
		p := RandomSkinnyPattern(rng, SkinnySpec{
			V: s.VL, Diam: s.Ld, Delta: 2,
			LabelBase: s.F * 3 / 4, LabelRange: s.F / 4,
		})
		bases := Inject(rng, g, p, s.Ls, 0.05)
		all = append(all, Injected{Pattern: p, Bases: bases})
	}
	for i := 0; i < s.N; i++ {
		p := RandomSkinnyPattern(rng, SkinnySpec{
			V: s.VS, Diam: s.Sd, Delta: 1,
			LabelBase: s.F / 2, LabelRange: s.F / 4,
		})
		bases := Inject(rng, g, p, s.Ss, 0.05)
		all = append(all, Injected{Pattern: p, Bases: bases})
	}
	return g, all
}

// Table3Pattern mirrors one row of Table 3: PID, |V| and diameter.
type Table3Pattern struct {
	PID  int
	V    int
	Diam int
}

// Table3Patterns is Table 3 of the paper: ten patterns of decreasing
// skinniness (PID 1 the skinniest of the first five, PID 6 of the rest).
var Table3Patterns = []Table3Pattern{
	{1, 60, 50}, {2, 60, 45}, {3, 60, 40}, {4, 60, 35}, {5, 60, 30},
	{6, 20, 8}, {7, 30, 8}, {8, 40, 8}, {9, 50, 8}, {10, 60, 8},
}

// BuildTable3 builds the skinniness-ladder graph: 2000 background
// vertices, deg 3, f=100, ten injected patterns each with support 2.
func BuildTable3(rng *rand.Rand, scale float64) (*graph.Graph, []Injected) {
	n := int(2000 * scale)
	if n < 200 {
		n = 200
	}
	g := ER(rng, n, 3, 100)
	var all []Injected
	for _, tp := range Table3Patterns {
		delta := 3
		if tp.Diam >= 30 {
			delta = 1
		}
		p := RandomSkinnyPattern(rng, SkinnySpec{
			V: tp.V, Diam: tp.Diam, Delta: delta,
			LabelBase: 60 + tp.PID*3, LabelRange: 3,
		})
		bases := Inject(rng, g, p, 2, 0)
		all = append(all, Injected{Pattern: p, Bases: bases})
	}
	return g, all
}

// BuildTransactionDB builds the Figure 9/10 database: numGraphs ER
// graphs, with skinny (and optionally small) patterns injected so that
// each pattern appears in `sup` randomly chosen graphs.
func BuildTransactionDB(rng *rand.Rand, numGraphs, v int, deg float64, f int,
	skinny []SkinnySpec, skinnySup int, small []SkinnySpec, smallSup int) ([]*graph.Graph, []*graph.Graph) {
	db := make([]*graph.Graph, numGraphs)
	for i := range db {
		db[i] = ER(rng, v, deg, f)
	}
	var planted []*graph.Graph
	plant := func(spec SkinnySpec, sup int) {
		p := RandomSkinnyPattern(rng, spec)
		planted = append(planted, p)
		// Distinct graphs per copy (when possible) so graph-count
		// support equals the requested embedding count.
		order := rng.Perm(numGraphs)
		for c := 0; c < sup; c++ {
			gi := order[c%numGraphs]
			Inject(rng, db[gi], p, 1, 0.05)
		}
	}
	for _, spec := range skinny {
		plant(spec, skinnySup)
	}
	for _, spec := range small {
		plant(spec, smallSup)
	}
	return db, planted
}
