package synth

import (
	"math/rand"

	"skinnymine/internal/graph"
)

// Sina Weibo-like retweet conversations (Section 6.3). The real dataset
// (1.8M users, 230M tweets) is not public; we simulate conversation
// graphs with the same schema: the author of the original tweet is the
// root, every retweet/comment adds an edge between the acting user and
// the target user, and users carry one of four labels. Planted long
// diffusion chains with periodic root re-engagement reproduce the
// 13-long 3-skinny interaction pattern of Figure 24.

// Weibo labels.
const (
	WeiboRoot     = graph.Label(0) // author of the original tweet
	WeiboFollower = graph.Label(1) // follows the root
	WeiboFollowee = graph.Label(2) // followed by the root
	WeiboOther    = graph.Label(3)
)

// WeiboLabelName renders a Weibo label.
func WeiboLabelName(l graph.Label) string {
	switch l {
	case WeiboRoot:
		return "Root"
	case WeiboFollower:
		return "Follower"
	case WeiboFollowee:
		return "Followee"
	default:
		return "Other"
	}
}

// WeiboOptions sizes the simulated conversation corpus.
type WeiboOptions struct {
	Conversations int
	// AvgSize is the expected number of users per conversation.
	AvgSize int
	// ChainConversations is how many conversations carry the planted
	// long diffusion chain (root re-engaging along a 13-hop path).
	ChainConversations int
	// ChainLength is the diffusion chain length (13 in Figure 24).
	ChainLength int
}

// Weibo builds the simulated conversation database.
func Weibo(rng *rand.Rand, opt WeiboOptions) []*graph.Graph {
	if opt.AvgSize < 4 {
		opt.AvgSize = 20
	}
	if opt.ChainLength < 3 {
		opt.ChainLength = 13
	}
	db := make([]*graph.Graph, 0, opt.Conversations)
	for c := 0; c < opt.Conversations; c++ {
		g := weiboConversation(rng, opt.AvgSize)
		if c < opt.ChainConversations {
			plantDiffusionChain(rng, g, opt.ChainLength)
		}
		db = append(db, g)
	}
	return db
}

// weiboConversation grows a retweet tree by preferential attachment:
// each new user retweets a random earlier participant (shallower users
// are more likely targets, giving wide-but-shallow trees).
func weiboConversation(rng *rand.Rand, avgSize int) *graph.Graph {
	size := 2 + rng.Intn(2*avgSize-2)
	g := graph.New(size)
	g.AddVertex(WeiboRoot)
	for i := 1; i < size; i++ {
		l := WeiboOther
		switch r := rng.Float64(); {
		case r < 0.4:
			l = WeiboFollower
		case r < 0.5:
			l = WeiboFollowee
		}
		v := g.AddVertex(l)
		// Preferential toward earlier (shallower) vertices.
		t := graph.V(rng.Intn(int(v)*3/4 + 1))
		g.MustAddEdge(t, v)
	}
	return g
}

// plantDiffusionChain appends Figure 24's pattern: a chain of followers
// passing the tweet on, with the root user re-engaging (a fresh root-
// labeled node joining the chain) every four hops, each engagement
// promoting the tweet to a wider audience (extra follower twigs).
func plantDiffusionChain(rng *rand.Rand, g *graph.Graph, length int) {
	prev := graph.V(0) // start at the conversation root
	for i := 1; i <= length; i++ {
		var l graph.Label
		switch {
		case i%4 == 0:
			l = WeiboRoot // root re-engages in the dialogue
		default:
			l = WeiboFollower
		}
		v := g.AddVertex(l)
		g.MustAddEdge(prev, v)
		if l == WeiboRoot {
			// Re-engagement promotes the tweet: new audience twigs.
			for t := 0; t < 2; t++ {
				w := g.AddVertex(WeiboFollower)
				g.MustAddEdge(v, w)
			}
		}
		prev = v
	}
}
