package synth

import (
	"math/rand"

	"skinnymine/internal/graph"
)

// DBLP-like heterogeneous author-timeline networks (Section 6.3 of the
// paper). The real dataset is a bulk DBLP download joined with a venue
// list; we simulate graphs with the same schema so the same temporal
// collaboration patterns are discoverable:
//
//   - each graph is one author: a chain of year nodes (the backbone);
//   - each year node connects to at most four collaboration nodes
//     labeled Xk, X ∈ {P,S,J,B} (prolific/senior/junior/beginner
//     co-author category), k ∈ {1,2,3} (collaboration strength level).
//
// Planted career archetypes reproduce the paper's example findings: the
// "growing collaboration" pattern of Figure 21 (collaborating with more
// productive authors over time) and the "early senior collaboration"
// pattern of Figure 22.

// DBLP label layout: label 0 is a year node; labels 1..12 are Xk nodes.
const (
	DBLPYearLabel = graph.Label(0)
)

// DBLPCollabLabel returns the label for category X (0=P,1=S,2=J,3=B) at
// level k (1..3).
func DBLPCollabLabel(x, k int) graph.Label {
	return graph.Label(1 + x*3 + (k - 1))
}

// DBLPLabelName renders a label in the paper's notation (e.g. "S2").
func DBLPLabelName(l graph.Label) string {
	if l == DBLPYearLabel {
		return "Year"
	}
	x := (int(l) - 1) / 3
	k := (int(l)-1)%3 + 1
	return string("PSJB"[x]) + string(rune('0'+k))
}

// DBLPOptions sizes the simulated corpus.
type DBLPOptions struct {
	Authors int // number of author graphs
	Years   int // timeline length per author
	// Archetypes is how many authors follow each planted archetype (the
	// remainder get random careers).
	Archetypes int
}

// DBLP builds the simulated author-timeline database.
func DBLP(rng *rand.Rand, opt DBLPOptions) []*graph.Graph {
	if opt.Years < 2 {
		opt.Years = 21
	}
	db := make([]*graph.Graph, 0, opt.Authors)
	for a := 0; a < opt.Authors; a++ {
		var g *graph.Graph
		switch {
		case a < opt.Archetypes:
			g = dblpGrowingCollaboration(rng, opt.Years)
		case a < 2*opt.Archetypes:
			g = dblpEarlySenior(rng, opt.Years)
		default:
			g = dblpRandomCareer(rng, opt.Years)
		}
		db = append(db, g)
	}
	return db
}

// dblpTimeline builds the year-node chain.
func dblpTimeline(years int) *graph.Graph {
	g := graph.New(years * 3)
	for y := 0; y < years; y++ {
		g.AddVertex(DBLPYearLabel)
		if y > 0 {
			g.MustAddEdge(graph.V(y-1), graph.V(y))
		}
	}
	return g
}

func attachCollab(g *graph.Graph, year int, l graph.Label) {
	v := g.AddVertex(l)
	g.MustAddEdge(graph.V(year), v)
}

// dblpGrowingCollaboration plants Figure 21's shape: collaboration
// category climbs B->J->S->P (with the strength level rising too) along
// the career.
func dblpGrowingCollaboration(rng *rand.Rand, years int) *graph.Graph {
	g := dblpTimeline(years)
	for y := 0; y < years; y++ {
		phase := y * 4 / years // 0..3
		x := 3 - phase         // B(3) early, P(0) late
		k := 1 + phase*2/3
		if k > 3 {
			k = 3
		}
		attachCollab(g, y, DBLPCollabLabel(x, k))
		// Noise collaborations.
		if rng.Float64() < 0.3 {
			attachCollab(g, y, DBLPCollabLabel(rng.Intn(4), 1+rng.Intn(3)))
		}
	}
	return g
}

// dblpEarlySenior plants Figure 22's shape: senior/prolific
// collaborators from the very start of the career.
func dblpEarlySenior(rng *rand.Rand, years int) *graph.Graph {
	g := dblpTimeline(years)
	for y := 0; y < years; y++ {
		x := 1 // S
		if y%3 == 0 {
			x = 0 // P
		}
		attachCollab(g, y, DBLPCollabLabel(x, 1))
		if rng.Float64() < 0.3 {
			attachCollab(g, y, DBLPCollabLabel(rng.Intn(4), 1+rng.Intn(3)))
		}
	}
	return g
}

// dblpRandomCareer is background noise: random collaborations per year.
func dblpRandomCareer(rng *rand.Rand, years int) *graph.Graph {
	g := dblpTimeline(years)
	for y := 0; y < years; y++ {
		for c := 0; c < rng.Intn(4); c++ {
			attachCollab(g, y, DBLPCollabLabel(rng.Intn(4), 1+rng.Intn(3)))
		}
	}
	return g
}
