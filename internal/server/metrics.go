package server

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"
)

// metrics is the daemon's expvar-style counter set, served as JSON from
// GET /metrics. All counters are atomics so handlers never serialize on
// a stats lock; the latency maximum is the one field that needs a CAS
// loop.
type metrics struct {
	start time.Time

	requests struct {
		mine      atomic.Int64
		batch     atomic.Int64
		backbones atomic.Int64
		healthz   atomic.Int64
		metrics   atomic.Int64
	}

	// batch tracks /v1/batch composition; the work its entries cause is
	// accounted in the mine section (runs, cache hits, latencies), so
	// batched and single mining share one ledger.
	batch struct {
		items   atomic.Int64 // entries received across all batches
		unique  atomic.Int64 // distinct canonical requests after dedup
		deduped atomic.Int64 // valid entries answered by an earlier twin
	}

	mine struct {
		cacheHits   atomic.Int64
		cacheMisses atomic.Int64
		coalesced   atomic.Int64
		runs        atomic.Int64
		errors      atomic.Int64
		inFlight    atomic.Int64
		latCount    atomic.Int64
		latSumUs    atomic.Int64
		latMaxUs    atomic.Int64
	}
}

func newMetrics() *metrics { return &metrics{start: time.Now()} }

// observeMine records one mining run's wall-clock latency.
func (m *metrics) observeMine(d time.Duration) {
	us := d.Microseconds()
	m.mine.latCount.Add(1)
	m.mine.latSumUs.Add(us)
	for {
		cur := m.mine.latMaxUs.Load()
		if us <= cur || m.mine.latMaxUs.CompareAndSwap(cur, us) {
			return
		}
	}
}

// MetricsSnapshot is the JSON document GET /metrics returns.
type MetricsSnapshot struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Requests      map[string]int64 `json:"requests_total"`
	Mine          MineMetrics      `json:"mine"`
	Batch         BatchMetrics     `json:"batch"`
}

// BatchMetrics is the /v1/batch section of the metrics document. The
// mining work batches trigger is accounted under the mine section.
type BatchMetrics struct {
	Items   int64 `json:"items"`
	Unique  int64 `json:"unique"`
	Deduped int64 `json:"deduped"`
}

// MineMetrics is the /v1/mine section of the metrics document.
//
// Accounting: every tracked mining request lands in exactly one of
// cache_hits (served from the LRU), cache_misses (became the leader of
// a mining run) or coalesced (shared another request's in-flight run),
// so cache_hit_rate = hits / (hits + misses + coalesced) — the
// fraction of requests that did NOT lead a run themselves. Misses are
// counted when a request becomes the leader, not when it merely misses
// the LRU: coalesced followers miss the cache too, but charging them a
// miss each would overstate misses by exactly the coalesced count.
type MineMetrics struct {
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Coalesced    int64   `json:"coalesced"`
	Runs         int64   `json:"runs"`
	Errors       int64   `json:"errors"`
	InFlight     int64   `json:"in_flight"`
	LatencyCount int64   `json:"latency_count"`
	LatencyAvgMs float64 `json:"latency_avg_ms"`
	LatencyMaxMs float64 `json:"latency_max_ms"`
}

func (m *metrics) snapshot() MetricsSnapshot {
	hits, misses := m.mine.cacheHits.Load(), m.mine.cacheMisses.Load()
	coalesced := m.mine.coalesced.Load()
	rate := 0.0
	if denom := hits + misses + coalesced; denom > 0 {
		rate = float64(hits) / float64(denom)
	}
	latCount := m.mine.latCount.Load()
	avg := 0.0
	if latCount > 0 {
		avg = float64(m.mine.latSumUs.Load()) / float64(latCount) / 1000
	}
	return MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests: map[string]int64{
			"mine":      m.requests.mine.Load(),
			"batch":     m.requests.batch.Load(),
			"backbones": m.requests.backbones.Load(),
			"healthz":   m.requests.healthz.Load(),
			"metrics":   m.requests.metrics.Load(),
		},
		Batch: BatchMetrics{
			Items:   m.batch.items.Load(),
			Unique:  m.batch.unique.Load(),
			Deduped: m.batch.deduped.Load(),
		},
		Mine: MineMetrics{
			CacheHits:    hits,
			CacheMisses:  misses,
			CacheHitRate: rate,
			Coalesced:    coalesced,
			Runs:         m.mine.runs.Load(),
			Errors:       m.mine.errors.Load(),
			InFlight:     m.mine.inFlight.Load(),
			LatencyCount: latCount,
			LatencyAvgMs: avg,
			LatencyMaxMs: float64(m.mine.latMaxUs.Load()) / 1000,
		},
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.metrics.Add(1)
	writeJSON(w, http.StatusOK, s.metrics.snapshot())
}

// marshalIndented serializes v with a trailing newline, matching the
// CLI's encoder so bodies diff cleanly against -json output.
func marshalIndented(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// writeJSON serializes v directly onto the response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := marshalIndented(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// errorJSON is the uniform 4xx/5xx body.
type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorJSON{Error: msg})
}
