package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"skinnymine"
	"skinnymine/internal/obs"
)

// metrics is the daemon's expvar-style counter set, served as JSON from
// GET /metrics (Prometheus text with ?format=prom). All counters are
// atomics so handlers never serialize on a stats lock; latencies go
// into fixed-boundary histograms (internal/obs), so the snapshot
// carries full distributions, not just an average and a max.
type metrics struct {
	start time.Time

	requests struct {
		mine      atomic.Int64
		batch     atomic.Int64
		backbones atomic.Int64
		healthz   atomic.Int64
		metrics   atomic.Int64
		traces    atomic.Int64
		notFound  atomic.Int64 // responses that left the mux as 404
	}

	// batch tracks /v1/batch composition; the work its entries cause is
	// accounted in the mine section (runs, cache hits, latencies), so
	// batched and single mining share one ledger. latency is per ENTRY
	// serve time — how long each batch entry took to answer, duplicates
	// included — so batch tail latency is visible separately from the
	// per-run mine histogram.
	batch struct {
		items   atomic.Int64 // entries received across all batches
		unique  atomic.Int64 // distinct canonical requests after dedup
		deduped atomic.Int64 // valid entries answered by an earlier twin
		latency *obs.Histogram
	}

	mine struct {
		cacheHits    atomic.Int64
		cacheMisses  atomic.Int64
		coalesced    atomic.Int64
		morphed      atomic.Int64 // misses answered by post-filtering a subsuming cache entry
		familyShared atomic.Int64 // batch entries forked from a shared family mine
		runs         atomic.Int64
		errors       atomic.Int64
		inFlight     atomic.Int64
		slowQueries  atomic.Int64
		latency      *obs.Histogram // per-run mining wall clock
	}

	// admissionWait is how long admitted requests queued at the gate —
	// the early saturation signal (latency only shows the work itself).
	admissionWait *obs.Histogram
}

func newMetrics() *metrics {
	m := &metrics{start: time.Now(), admissionWait: obs.NewHistogram(nil)}
	m.mine.latency = obs.NewHistogram(nil)
	m.batch.latency = obs.NewHistogram(nil)
	return m
}

// observeMine records one mining run's wall-clock latency.
func (m *metrics) observeMine(d time.Duration) {
	m.mine.latency.Observe(d)
}

// MetricsSnapshot is the JSON document GET /metrics returns. Workers is
// present only when the served index is distributed: per-worker RPC
// counters and latency histograms.
type MetricsSnapshot struct {
	UptimeSeconds   float64                     `json:"uptime_seconds"`
	Requests        map[string]int64            `json:"requests_total"`
	Mine            MineMetrics                 `json:"mine"`
	Batch           BatchMetrics                `json:"batch"`
	AdmissionWaitMs obs.HistogramSnapshot       `json:"admission_wait_ms"`
	Workers         []skinnymine.WorkerRPCStats `json:"workers,omitempty"`
}

// BatchMetrics is the /v1/batch section of the metrics document. The
// mining work batches trigger is accounted under the mine section;
// LatencyMs is the per-ENTRY serve-time distribution (every valid
// entry observes the wall clock of the unit that answered it,
// duplicates included), so batch tail latency is visible separately
// from /v1/mine.
type BatchMetrics struct {
	Items     int64                 `json:"items"`
	Unique    int64                 `json:"unique"`
	Deduped   int64                 `json:"deduped"`
	LatencyMs obs.HistogramSnapshot `json:"latency_ms"`
}

// MineMetrics is the /v1/mine section of the metrics document.
//
// Accounting: every tracked mining request lands in exactly one of
// cache_hits (served from the LRU), cache_misses (became the leader of
// a mining run), coalesced (shared another request's in-flight run),
// morphed (a miss answered by post-filtering a subsuming cache entry —
// no run) or family_shared (a batch entry forked from its family's
// shared mine — no run of its own), so cache_hit_rate =
// hits / (hits + misses + coalesced + morphed + family_shared) — the
// fraction of requests that did NOT lead a run themselves. Misses are
// counted when a request becomes the leader, not when it merely misses
// the LRU: coalesced followers miss the cache too, but charging them a
// miss each would overstate misses by exactly the coalesced count, and
// a morphed or family-forked answer never counts as a miss because no
// search ran for it. runs can exceed cache_misses: a family's shared
// mine with no member at exactly the family options runs as synthetic
// work charged to no single request (it appears in runs and latency
// but in none of the five cache counters). (?trace=1 requests ride the
// same ledger since the trace store made cached serving possible for
// them; only on a server with the store disabled do they fall back to
// bypassing the cache, appearing in runs and latency but in none of
// the cache counters.)
//
// latency_count, latency_avg_ms and latency_max_ms predate the
// histogram and are derived from it, so existing dashboards keep
// working; latency_ms carries the full distribution.
type MineMetrics struct {
	CacheHits    int64                 `json:"cache_hits"`
	CacheMisses  int64                 `json:"cache_misses"`
	CacheHitRate float64               `json:"cache_hit_rate"`
	Coalesced    int64                 `json:"coalesced"`
	Morphed      int64                 `json:"morphed"`
	FamilyShared int64                 `json:"family_shared"`
	Runs         int64                 `json:"runs"`
	Errors       int64                 `json:"errors"`
	InFlight     int64                 `json:"in_flight"`
	SlowQueries  int64                 `json:"slow_queries"`
	LatencyCount int64                 `json:"latency_count"`
	LatencyAvgMs float64               `json:"latency_avg_ms"`
	LatencyMaxMs float64               `json:"latency_max_ms"`
	LatencyMs    obs.HistogramSnapshot `json:"latency_ms"`
}

func (m *metrics) snapshot() MetricsSnapshot {
	hits, misses := m.mine.cacheHits.Load(), m.mine.cacheMisses.Load()
	coalesced := m.mine.coalesced.Load()
	morphed, familyShared := m.mine.morphed.Load(), m.mine.familyShared.Load()
	rate := 0.0
	if denom := hits + misses + coalesced + morphed + familyShared; denom > 0 {
		rate = float64(hits) / float64(denom)
	}
	lat := m.mine.latency.Snapshot()
	avg := 0.0
	if lat.Count > 0 {
		avg = lat.SumMs / float64(lat.Count)
	}
	return MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests: map[string]int64{
			"mine":      m.requests.mine.Load(),
			"batch":     m.requests.batch.Load(),
			"backbones": m.requests.backbones.Load(),
			"healthz":   m.requests.healthz.Load(),
			"metrics":   m.requests.metrics.Load(),
			"traces":    m.requests.traces.Load(),
			"not_found": m.requests.notFound.Load(),
		},
		Batch: BatchMetrics{
			Items:     m.batch.items.Load(),
			Unique:    m.batch.unique.Load(),
			Deduped:   m.batch.deduped.Load(),
			LatencyMs: m.batch.latency.Snapshot(),
		},
		Mine: MineMetrics{
			CacheHits:    hits,
			CacheMisses:  misses,
			CacheHitRate: rate,
			Coalesced:    coalesced,
			Morphed:      morphed,
			FamilyShared: familyShared,
			Runs:         m.mine.runs.Load(),
			Errors:       m.mine.errors.Load(),
			InFlight:     m.mine.inFlight.Load(),
			SlowQueries:  m.mine.slowQueries.Load(),
			LatencyCount: lat.Count,
			LatencyAvgMs: avg,
			LatencyMaxMs: lat.MaxMs,
			LatencyMs:    lat,
		},
		AdmissionWaitMs: m.admissionWait.Snapshot(),
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.metrics.Add(1)
	snap := s.metrics.snapshot()
	snap.Workers = s.ix.WorkerRPCStats()
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := writeProm(w, snap); err != nil {
			s.log.Debug("metrics response write failed", "err", err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}

// writeProm renders the snapshot in the Prometheus text exposition
// format. The JSON document stays the canonical form; this rendering
// exists so a standard scraper needs no sidecar.
func writeProm(w io.Writer, snap MetricsSnapshot) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# TYPE skinnymine_uptime_seconds gauge\n")
	p("skinnymine_uptime_seconds %g\n", snap.UptimeSeconds)
	p("# TYPE skinnymine_requests_total counter\n")
	endpoints := make([]string, 0, len(snap.Requests))
	for k := range snap.Requests {
		endpoints = append(endpoints, k)
	}
	sort.Strings(endpoints)
	for _, k := range endpoints {
		p("skinnymine_requests_total{endpoint=%q} %d\n", k, snap.Requests[k])
	}
	p("# TYPE skinnymine_mine_cache_hits_total counter\n")
	p("skinnymine_mine_cache_hits_total %d\n", snap.Mine.CacheHits)
	p("# TYPE skinnymine_mine_cache_misses_total counter\n")
	p("skinnymine_mine_cache_misses_total %d\n", snap.Mine.CacheMisses)
	p("# TYPE skinnymine_mine_coalesced_total counter\n")
	p("skinnymine_mine_coalesced_total %d\n", snap.Mine.Coalesced)
	p("# TYPE skinnymine_mine_morphed_total counter\n")
	p("skinnymine_mine_morphed_total %d\n", snap.Mine.Morphed)
	p("# TYPE skinnymine_mine_family_shared_total counter\n")
	p("skinnymine_mine_family_shared_total %d\n", snap.Mine.FamilyShared)
	p("# TYPE skinnymine_mine_runs_total counter\n")
	p("skinnymine_mine_runs_total %d\n", snap.Mine.Runs)
	p("# TYPE skinnymine_mine_errors_total counter\n")
	p("skinnymine_mine_errors_total %d\n", snap.Mine.Errors)
	p("# TYPE skinnymine_mine_in_flight gauge\n")
	p("skinnymine_mine_in_flight %d\n", snap.Mine.InFlight)
	p("# TYPE skinnymine_mine_slow_queries_total counter\n")
	p("skinnymine_mine_slow_queries_total %d\n", snap.Mine.SlowQueries)
	p("# TYPE skinnymine_batch_items_total counter\n")
	p("skinnymine_batch_items_total %d\n", snap.Batch.Items)
	p("# TYPE skinnymine_batch_unique_total counter\n")
	p("skinnymine_batch_unique_total %d\n", snap.Batch.Unique)
	p("# TYPE skinnymine_batch_deduped_total counter\n")
	p("skinnymine_batch_deduped_total %d\n", snap.Batch.Deduped)
	promHistogram(p, "skinnymine_mine_latency_ms", "", histSnap(snap.Mine.LatencyMs))
	promHistogram(p, "skinnymine_batch_latency_ms", "", histSnap(snap.Batch.LatencyMs))
	promHistogram(p, "skinnymine_admission_wait_ms", "", histSnap(snap.AdmissionWaitMs))
	if len(snap.Workers) > 0 {
		p("# TYPE skinnymine_worker_healthy gauge\n")
		p("# TYPE skinnymine_worker_requests_total counter\n")
		p("# TYPE skinnymine_worker_retries_total counter\n")
		p("# TYPE skinnymine_worker_hedges_total counter\n")
		p("# TYPE skinnymine_worker_errors_total counter\n")
		p("# TYPE skinnymine_worker_health_transitions_total counter\n")
		for _, ws := range snap.Workers {
			lbl := fmt.Sprintf("{shard=%q,addr=%q}", strconv.Itoa(ws.Shard), ws.Addr)
			healthy := 0
			if ws.Healthy {
				healthy = 1
			}
			p("skinnymine_worker_healthy%s %d\n", lbl, healthy)
			p("skinnymine_worker_requests_total%s %d\n", lbl, ws.Requests)
			p("skinnymine_worker_retries_total%s %d\n", lbl, ws.Retries)
			p("skinnymine_worker_hedges_total%s %d\n", lbl, ws.Hedges)
			p("skinnymine_worker_errors_total%s %d\n", lbl, ws.Errors)
			p("skinnymine_worker_health_transitions_total%s %d\n", lbl, ws.HealthTransitions)
		}
		for _, ws := range snap.Workers {
			promHistogram(p, "skinnymine_worker_rpc_latency_ms",
				fmt.Sprintf("shard=%q,addr=%q", strconv.Itoa(ws.Shard), ws.Addr),
				publicHistSnap(ws.Latency))
		}
	}
	return err
}

// promHist is the format-neutral histogram view both snapshot types
// lower onto for the Prometheus rendering.
type promHist struct {
	count   int64
	sumMs   float64
	buckets []struct {
		le    float64
		count int64
	}
}

func histSnap(s obs.HistogramSnapshot) promHist {
	h := promHist{count: s.Count, sumMs: s.SumMs}
	for _, b := range s.Buckets {
		h.buckets = append(h.buckets, struct {
			le    float64
			count int64
		}{b.LeMs, b.Count})
	}
	return h
}

func publicHistSnap(s skinnymine.LatencySnapshot) promHist {
	h := promHist{count: s.Count, sumMs: s.SumMs}
	for _, b := range s.Buckets {
		h.buckets = append(h.buckets, struct {
			le    float64
			count int64
		}{b.LeMs, b.Count})
	}
	return h
}

func promHistogram(p func(string, ...any), name, labels string, h promHist) {
	sep, suffix := "", ""
	if labels != "" {
		sep = ","
		suffix = "{" + labels + "}"
	}
	p("# TYPE %s histogram\n", name)
	for _, b := range h.buckets {
		p("%s_bucket{%sle=\"%g\"} %d\n", name, labels+sep, b.le, b.count)
	}
	p("%s_bucket{%sle=\"+Inf\"} %d\n", name, labels+sep, h.count)
	p("%s_sum%s %g\n", name, suffix, h.sumMs)
	p("%s_count%s %d\n", name, suffix, h.count)
}

// marshalIndented serializes v with a trailing newline, matching the
// CLI's encoder so bodies diff cleanly against -json output.
func marshalIndented(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// writeJSON serializes v directly onto the response. A failed body
// write (the client hung up mid-response) is logged at debug — the
// request already ran, so there is nothing else to do with the error,
// but it should not vanish silently.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := marshalIndented(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		s.log.Debug("response write failed", "status", status, "err", err)
	}
}

// errorJSON is the uniform 4xx/5xx body.
type errorJSON struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, errorJSON{Error: msg})
}
