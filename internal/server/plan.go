package server

// Shared-plan batch execution, the multi-query optimizer's second
// layer. A /v1/batch often carries a family of near-identical requests
// — same measure and σ, varying only in band, skinniness bound, or
// anti-monotone constraint conjuncts. Mining them independently pays
// Stage I once per member; mining the family's weakest common superset
// (skinnymine.FamilyOptions) once and forking each member out of it by
// post-filtering (skinnymine.Morph) pays Stage I once per FAMILY. The
// fork is exact — CanMorph only groups members whose containment in
// the family is provable — so the optimization changes the plan, never
// the bytes; equiv_test pins that against independent fresh mining.

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"time"

	"skinnymine"
)

// unit is one distinct canonical request within a batch: the shared
// work every batch entry with the same cache key is answered from.
type unit struct {
	key    string
	first  int // index of the first batch entry with this key
	opt    skinnymine.Options
	p      produced
	source string
	dur    time.Duration // wall clock of this unit's serve (guards included)
	err    error
}

// familyPlan is one executable query family: the weakest-superset
// options to mine once, the cache key that mine lives under, and the
// member units forked out of it. carrier, when non-nil, is the member
// whose own canonical key IS the family key — its serve and the shared
// mine are the same work, so it leads the run and keeps ordinary
// hit/miss accounting; without a carrier the family mine is synthetic
// (runs, but charged to no single request).
type familyPlan struct {
	fam     skinnymine.Options
	famKey  string
	members []*unit
	carrier *unit
}

// familyKey renders a family's options in the exact format cacheKey
// uses for wire requests — so a later /v1/mine for the same canonical
// options hits the family's cached result — plus a seed-lengths suffix
// when the family's band union has gaps: a length-restricted result
// must never be served to a whole-band request.
func familyKey(o skinnymine.Options) string {
	measure := "embeddings"
	if o.Measure == skinnymine.GraphCount {
		measure = "graphs"
	}
	where := o.Where
	if o.WhereExpr != nil {
		where = o.WhereExpr.String()
	}
	key := fmt.Sprintf("s=%d l=%d ml=%d d=%d m=%s max=%v cl=%v mp=%d c=%d w=%q",
		o.Support, o.Length, o.MinLength, o.Delta, measure,
		false, false, 0, 0, where)
	if len(o.SeedLengths) > 0 {
		key += fmt.Sprintf(" sl=%v", o.SeedLengths)
	}
	return key
}

// planFamilies groups a batch's unique units into executable query
// families. Units are eligible when their options are pure
// enumerations (no greedy/closed/budget modes — the same requests
// morphing accepts); eligible units sharing a support measure form a
// candidate group, the group's weakest common superset comes from
// FamilyOptions, and only members whose containment in that superset
// is provable (CanMorph) fork from it — the rest run independently. A
// family needs at least two forkable members to be worth a shared
// mine. Returns the plans plus the set of unit keys they own; nil when
// the server runs with NoFamily.
func (s *Server) planFamilies(units map[string]*unit, order []string) ([]*familyPlan, map[string]bool) {
	if s.noFamily {
		return nil, nil
	}
	groups := make(map[string][]*unit)
	for _, key := range order {
		u := units[key]
		if u.opt.MaximalOnly || u.opt.ClosedOnly || u.opt.MaxPatterns > 0 {
			continue
		}
		g := "embeddings"
		if u.opt.Measure == skinnymine.GraphCount {
			g = "graphs"
		}
		groups[g] = append(groups[g], u)
	}
	names := make([]string, 0, len(groups))
	for g := range groups {
		names = append(names, g)
	}
	sort.Strings(names) // deterministic plan order regardless of map iteration
	var plans []*familyPlan
	owned := make(map[string]bool)
	for _, g := range names {
		group := groups[g]
		if len(group) < 2 {
			continue
		}
		opts := make([]skinnymine.Options, len(group))
		for i, u := range group {
			opts[i] = u.opt
		}
		fam, ok := skinnymine.FamilyOptions(opts)
		if !ok {
			continue
		}
		fp := &familyPlan{fam: fam, famKey: familyKey(fam)}
		for _, u := range group {
			if !skinnymine.CanMorph(fam, u.opt) {
				continue
			}
			fp.members = append(fp.members, u)
			if u.key == fp.famKey {
				fp.carrier = u
			}
		}
		if len(fp.members) < 2 {
			continue
		}
		for _, u := range fp.members {
			owned[u.key] = true
		}
		plans = append(plans, fp)
	}
	return plans, owned
}

// runUnit serves one unit through the full guard stack — cache,
// morph scan, coalescing, admission — exactly as /v1/mine would.
func (s *Server) runUnit(r *http.Request, u *unit) {
	t0 := time.Now()
	morphTo := &u.opt
	if s.noMorph {
		morphTo = nil
	}
	u.p, u.source, u.err = s.execute(r, u.key, true, morphTo, s.mineProduce("/v1/batch", u.opt))
	u.dur = time.Since(t0)
}

// runFamily executes one family plan: members already cached serve as
// plain hits; the rest share one mine of the family superset and fork
// from its decoded result. The shared mine rides the ordinary guard
// stack under the family key (so it coalesces with — and its cached
// result is reusable by — equivalent single requests). Forked members
// are serialized, cached under their own keys, and counted as
// family_shared: answered without a run of their own. Any failure —
// the shared mine erroring, a fork declining — falls back to
// independent execution for the affected members, so the optimizer can
// only ever cost what the unoptimized path would have.
func (s *Server) runFamily(r *http.Request, fp *familyPlan) {
	t0 := time.Now()
	var pending []*unit
	for _, u := range fp.members {
		if s.cache != nil {
			if hit, ok := s.cache.get(u.key); ok {
				s.metrics.mine.cacheHits.Add(1)
				s.recordServed(r, "hit", hit.traceID)
				u.p, u.source, u.dur = hit, "hit", time.Since(t0)
				continue
			}
		}
		pending = append(pending, u)
	}
	if len(pending) == 0 {
		return
	}
	if len(pending) == 1 {
		// A lone uncached member: an independent serve (which may still
		// morph off the LRU) beats mining the whole family for it.
		s.runUnit(r, pending[0])
		return
	}
	// The shared mine runs untracked: the carrier's ledger entry is
	// credited manually below so the family mine is charged to exactly
	// one request when a member anchors it, and to none when synthetic.
	famP, famSource, err := s.execute(r, fp.famKey, false, nil, s.mineProduce("/v1/batch", fp.fam))
	if err != nil || famP.res == nil {
		// Shared mine failed (or a cached family body arrived without
		// its decoded result): every pending member falls back to the
		// independent path, which does its own accounting.
		for _, u := range pending {
			s.runUnit(r, u)
		}
		return
	}
	for _, u := range pending {
		if u == fp.carrier {
			switch famSource {
			case "hit": // cached by a concurrent request after the member scan
				s.metrics.mine.cacheHits.Add(1)
				s.recordServed(r, "hit", famP.traceID)
			case "coalesced":
				s.metrics.mine.coalesced.Add(1)
				s.recordServed(r, "coalesced", famP.traceID)
			default: // "miss": the carrier led the family's mining run
				s.metrics.mine.cacheMisses.Add(1)
			}
			u.p, u.source, u.dur = famP, famSource, time.Since(t0)
			continue
		}
		res, merr := skinnymine.Morph(famP.res, famP.opts, u.opt)
		if merr != nil {
			s.runUnit(r, u)
			continue
		}
		var buf bytes.Buffer
		if merr := res.WriteJSON(&buf); merr != nil {
			s.runUnit(r, u)
			continue
		}
		up := produced{body: buf.Bytes(), traceID: famP.traceID, res: res, opts: u.opt}
		if s.cache != nil {
			s.cache.put(u.key, up)
		}
		s.metrics.mine.familyShared.Add(1)
		s.recordServed(r, "family_shared", famP.traceID)
		u.p, u.source, u.dur = up, "family_shared", time.Since(t0)
	}
}
