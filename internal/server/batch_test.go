package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"skinnymine"
)

func postBatch(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestBatchDuplicatesMineOnce is the batch dedup contract: N identical
// requests in one batch perform exactly one mining run, and every entry
// receives the identical body.
func TestBatchDuplicatesMineOnce(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var runs atomic.Int64
	realMine := s.mineFn
	s.mineFn = func(ctx context.Context, opt skinnymine.Options) (*skinnymine.Result, error) {
		runs.Add(1)
		return realMine(ctx, opt)
	}

	resp := postBatch(t, ts, `{"requests":[
		{"length":4,"delta":1},
		{"length":4,"delta":1},
		{"length":4,"delta":1},
		{"length":4,"delta":1}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	br := decodeBody[BatchResponse](t, resp.Body)
	if runs.Load() != 1 {
		t.Fatalf("4 duplicate requests ran %d mines, want 1", runs.Load())
	}
	if br.Items != 4 || br.Unique != 1 || br.CacheHits != 0 {
		t.Fatalf("accounting: items=%d unique=%d hits=%d", br.Items, br.Unique, br.CacheHits)
	}
	if len(br.Results) != 4 {
		t.Fatalf("%d results", len(br.Results))
	}
	if br.Results[0].Source != "miss" {
		t.Errorf("first entry source %q, want miss", br.Results[0].Source)
	}
	for i := 1; i < 4; i++ {
		if br.Results[i].Source != "duplicate" {
			t.Errorf("entry %d source %q, want duplicate", i, br.Results[i].Source)
		}
		if string(br.Results[i].Result) != string(br.Results[0].Result) {
			t.Errorf("entry %d body differs from the first", i)
		}
	}

	// Metrics: one batch, 4 items, 1 unique, 3 deduped, 1 mine run.
	m := s.metrics.snapshot()
	if m.Batch.Items != 4 || m.Batch.Unique != 1 || m.Batch.Deduped != 3 {
		t.Errorf("batch metrics: %+v", m.Batch)
	}
	if m.Mine.Runs != 1 {
		t.Errorf("mine runs %d, want 1", m.Mine.Runs)
	}
	if m.Requests["batch"] != 1 {
		t.Errorf("batch request count %d", m.Requests["batch"])
	}
}

// TestBatchSharesCacheWithMine: a batch entry whose canonical key was
// served by /v1/mine is a cache hit (and vice versa), because batch and
// single requests share one cache keyed identically.
func TestBatchSharesCacheWithMine(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp := postMine(t, ts, `{"length":4,"delta":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mine status %d", resp.StatusCode)
	}
	var runs atomic.Int64
	realMine := s.mineFn
	s.mineFn = func(ctx context.Context, opt skinnymine.Options) (*skinnymine.Result, error) {
		runs.Add(1)
		return realMine(ctx, opt)
	}

	// Whitespace variants of one where-expression share a canonical key;
	// the second unique entry is answered by post-filtering the warm
	// unconstrained superset — no mine runs at all.
	resp = postBatch(t, ts, `{"requests":[
		{"length":4,"delta":1},
		{"length":4,"delta":1,"where":"vertices <= 9"},
		{"length":4,"delta":1,"where":"vertices<=9"}]}`)
	br := decodeBody[BatchResponse](t, resp.Body)
	if br.Unique != 2 || br.CacheHits != 1 {
		t.Fatalf("accounting: unique=%d hits=%d, want 2/1", br.Unique, br.CacheHits)
	}
	if runs.Load() != 0 {
		t.Fatalf("ran %d mines, want 0 (cached entry + morphed where variant)", runs.Load())
	}
	if br.Results[0].Source != "hit" {
		t.Errorf("previously mined entry source %q, want hit", br.Results[0].Source)
	}
	if br.Results[1].Source != "morphed" || br.Results[2].Source != "duplicate" {
		t.Errorf("where variants: %q/%q, want morphed/duplicate", br.Results[1].Source, br.Results[2].Source)
	}

	// And the batch populated the cache for later single requests.
	resp = postMine(t, ts, `{"length":4,"delta":1,"where":"vertices<=9"}`)
	if got := resp.Header.Get("X-Result-Source"); got != "hit" {
		t.Errorf("single request after batch: source %q, want hit", got)
	}
}

// TestBatchMatchesSingleMine: a batched entry's Result bytes are
// exactly what /v1/mine returns for the same request.
func TestBatchMatchesSingleMine(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	single := postMine(t, ts, `{"length":4,"delta":1}`)
	want := decodeBody[skinnymine.ResultJSON](t, single.Body)

	resp := postBatch(t, ts, `{"requests":[{"length":4,"delta":1}]}`)
	br := decodeBody[BatchResponse](t, resp.Body)
	var got skinnymine.ResultJSON
	if err := json.Unmarshal(br.Results[0].Result, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Patterns) != len(want.Patterns) || got.Stats.PathsMined != want.Stats.PathsMined {
		t.Errorf("batched result differs: %d patterns vs %d", len(got.Patterns), len(want.Patterns))
	}
}

// TestBatchFamilyMixed is the shared-plan batch contract on a mixed
// payload: a mixable query family forks from one shared mine
// (family_shared), a monotone-constrained entry and a greedy entry run
// independently, invalid entries fail inline, and duplicates still
// collapse — one batch, every execution path at once.
func TestBatchFamilyMixed(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var runs atomic.Int64
	realMine := s.mineFn
	s.mineFn = func(ctx context.Context, opt skinnymine.Options) (*skinnymine.Result, error) {
		runs.Add(1)
		return realMine(ctx, opt)
	}
	resp := postBatch(t, ts, `{"requests":[
		{"length":4,"min_length":1,"delta":2},
		{"length":4,"min_length":1,"delta":2,"where":"vertices<=8"},
		{"length":4,"min_length":2,"delta":1},
		{"length":4,"min_length":1,"delta":2,"where":"contains(label='shop')"},
		{"length":4,"min_length":1,"delta":2,"maximal_only":true},
		{"length":4,"where":"verts<=3"},
		{"support":99,"length":3},
		{"length":4,"min_length":1,"delta":2,"where":"vertices<=8"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	br := decodeBody[BatchResponse](t, resp.Body)

	wantSource := []string{
		"miss",          // 0: the family's weakest member — it carries the shared mine
		"family_shared", // 1: forked from the carrier's result
		"family_shared", // 2: narrower band and δ, forked too
		"miss",          // 3: monotone conjunct — not provably contained, mines alone
		"miss",          // 4: greedy mode — ineligible for any family
		"",              // 5: invalid constraint
		"",              // 6: σ mismatch
		"duplicate",     // 7: same canonical request as entry 1
	}
	for i, want := range wantSource {
		if want == "" {
			if br.Results[i].Status != http.StatusBadRequest || br.Results[i].Error == "" {
				t.Errorf("entry %d: %+v, want inline 400", i, br.Results[i])
			}
			continue
		}
		if br.Results[i].Status != http.StatusOK {
			t.Errorf("entry %d: status %d (%s)", i, br.Results[i].Status, br.Results[i].Error)
			continue
		}
		if br.Results[i].Source != want {
			t.Errorf("entry %d: source %q, want %q", i, br.Results[i].Source, want)
		}
		if len(br.Results[i].Result) == 0 {
			t.Errorf("entry %d: empty result", i)
		}
	}
	// Three mines total: the shared family mine plus the two
	// independents. Without sharing this batch costs five.
	if runs.Load() != 3 {
		t.Errorf("ran %d mines, want 3 (shared family mine + 2 independents)", runs.Load())
	}
	m := s.metrics.snapshot()
	if m.Mine.FamilyShared != 2 {
		t.Errorf("family_shared = %d, want 2", m.Mine.FamilyShared)
	}
	tracked := m.Mine.CacheHits + m.Mine.CacheMisses + m.Mine.Coalesced + m.Mine.Morphed + m.Mine.FamilyShared
	if tracked != 5 {
		t.Errorf("ledger sum = %d, want the 5 valid unique units", tracked)
	}

	// The forked members are now warm under their own keys: a later
	// single request is a plain hit.
	single := postMine(t, ts, `{"length":4,"min_length":2,"delta":1}`)
	io.Copy(io.Discard, single.Body)
	if src := single.Header.Get("X-Result-Source"); src != "hit" {
		t.Errorf("forked member after batch: source %q, want hit", src)
	}
}

// TestBatchFamilyDisabled pins the NoFamily knob: the same mixable
// family mines member by member, sources stay pre-optimizer.
func TestBatchFamilyDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{NoFamily: true, NoMorph: true})
	resp := postBatch(t, ts, `{"requests":[
		{"length":4,"min_length":1,"delta":2},
		{"length":4,"min_length":1,"delta":2,"where":"vertices<=8"},
		{"length":4,"min_length":2,"delta":1}]}`)
	br := decodeBody[BatchResponse](t, resp.Body)
	for i := range br.Results {
		if br.Results[i].Source != "miss" {
			t.Errorf("entry %d: source %q, want miss with the optimizer off", i, br.Results[i].Source)
		}
	}
	if m := s.metrics.snapshot(); m.Mine.FamilyShared != 0 || m.Mine.Morphed != 0 {
		t.Errorf("optimizer counters moved while disabled: %+v", m.Mine)
	}
}

// TestBatchPartialValidation: invalid entries fail inline with the same
// message /v1/mine rejects them with; valid neighbors still mine.
func TestBatchPartialValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postBatch(t, ts, `{"requests":[
		{"length":4,"delta":1},
		{"length":0,"delta":1},
		{"length":4,"delta":1,"where":"vertices <="}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 with per-entry statuses", resp.StatusCode)
	}
	br := decodeBody[BatchResponse](t, resp.Body)
	if br.Results[0].Status != http.StatusOK {
		t.Errorf("valid entry status %d", br.Results[0].Status)
	}
	if br.Results[1].Status != http.StatusBadRequest || !strings.Contains(br.Results[1].Error, "length") {
		t.Errorf("bad length entry: %+v", br.Results[1])
	}
	if br.Results[2].Status != http.StatusBadRequest || !strings.Contains(br.Results[2].Error, "where") {
		t.Errorf("bad where entry: %+v", br.Results[2])
	}
	if br.Unique != 1 {
		t.Errorf("unique %d, want 1", br.Unique)
	}
}

func TestBatchBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 2})
	cases := []struct {
		name, body string
	}{
		{"empty batch", `{"requests":[]}`},
		{"no requests field", `{}`},
		{"malformed", `{"requests":`},
		{"over limit", `{"requests":[{"length":2,"delta":1},{"length":3,"delta":1},{"length":4,"delta":1}]}`},
	}
	for _, tc := range cases {
		resp := postBatch(t, ts, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}

	// JSON-level defects in ONE entry — an unknown field, a wrong-typed
	// value — fail that entry inline; valid neighbors still mine.
	// (A fresh server: the limit-testing one above caps batches at 2.)
	_, ts = newTestServer(t, Config{})
	resp := postBatch(t, ts, `{"requests":[
		{"length":2,"delta":1,"bogus":true},
		{"length":"4","delta":1},
		{"length":2,"delta":1}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("per-entry JSON defects: status %d, want 200", resp.StatusCode)
	}
	br := decodeBody[BatchResponse](t, resp.Body)
	if br.Results[0].Status != http.StatusBadRequest || !strings.Contains(br.Results[0].Error, "bogus") {
		t.Errorf("unknown-field entry: %+v", br.Results[0])
	}
	if br.Results[1].Status != http.StatusBadRequest {
		t.Errorf("wrong-typed entry: %+v", br.Results[1])
	}
	if br.Results[2].Status != http.StatusOK {
		t.Errorf("valid neighbor entry: %+v", br.Results[2])
	}
}

func TestBatchDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: -1})
	resp := postBatch(t, ts, `{"requests":[{"length":4,"delta":1}]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled batch endpoint returned %d, want 404", resp.StatusCode)
	}
}

// TestBatchConcurrentWithSingles: batches and single requests race
// safely and coalesce across the shared flight group.
func TestBatchConcurrentWithSingles(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
				strings.NewReader(`{"requests":[{"length":4,"delta":1},{"length":3,"delta":1}]}`))
			if err == nil {
				resp.Body.Close()
			}
		}()
		go func() {
			defer func() { done <- struct{}{} }()
			resp, err := http.Post(ts.URL+"/v1/mine", "application/json",
				strings.NewReader(`{"length":4,"delta":1}`))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
