package server

// The equivalence harness pinning the multi-query optimizer's one
// invariant: optimization changes the plan, never the bytes. Every
// answer a morphing cache or a shared family mine produces must be
// identical — on the patterns array — to what an independent fresh
// mine of the same request returns. The harness builds randomized
// query families (band, δ, constraint, and topk variations around a
// common σ and measure), serves them through an optimized server
// (morphing + family sharing on) and through a reference server with
// both optimizers off and the cache disabled, and byte-compares each
// answer, across client concurrency {1, 8} and index shards {1, 3}.
// Stats are NOT compared: a morphed or forked body reports zero search
// counters, which is the honest account of the work it did.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"skinnymine"
)

// equivGraph builds a random connected graph over the public API: a
// random spanning tree plus extra chords, labels drawn from a small
// alphabet so patterns repeat across graphs. The corpus keeps the
// label vocabulary shared, as a graph database requires.
func equivGraph(c *skinnymine.Corpus, rng *rand.Rand, n, extra, labels int) *skinnymine.Graph {
	g := c.NewGraph()
	ids := make([]skinnymine.VertexID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddVertex(fmt.Sprintf("l%d", rng.Intn(labels)))
		if i > 0 {
			if err := g.AddEdge(ids[rng.Intn(i)], ids[i]); err != nil {
				panic(err)
			}
		}
	}
	for e := 0; e < extra; e++ {
		a, b := ids[rng.Intn(n)], ids[rng.Intn(n)]
		if a != b {
			g.AddEdge(a, b) // duplicates and parallels just error; skip
		}
	}
	return g
}

// equivFamily is one randomized query family: a fixed weakest member
// plus structured variations. The fixed members guarantee the shapes
// the harness must exercise — a carrier-anchored family, a
// graph-measure family with a support>= conjunct, and a monotone
// outsider the planner must leave out — while the random tail varies
// band, δ, anti-monotone conjuncts, and topk.
func equivFamily(rng *rand.Rand) []string {
	bodies := []string{
		`{"length":4,"min_length":1,"delta":2}`, // weakest: the family carrier
		`{"length":4,"min_length":1,"delta":2,"where":"vertices<=8"}`,
		`{"length":4,"min_length":2,"delta":1,"where":"edges<=9"}`,
		`{"length":3,"min_length":1,"delta":2,"where":"vertices<=8 && topk(5, by=support)"}`,
		// Monotone conjunct: not provably contained in the family
		// superset, so it must run independently — and still match.
		`{"length":4,"min_length":1,"delta":2,"where":"contains(label='l0')"}`,
		// A second family under the graph-transaction measure, where a
		// support floor morphs as an anti-monotone conjunct.
		`{"length":3,"min_length":1,"delta":2,"measure":"graphs"}`,
		`{"length":3,"min_length":1,"delta":2,"measure":"graphs","where":"support>=3"}`,
	}
	wheres := []string{
		"", "vertices<=7", "edges<=8", "skinniness<=1",
		"vertices<=9 && edges<=10", "edges<=9 && topk(4, by=size)",
	}
	for i := 0; i < 3; i++ {
		mr := map[string]any{"length": 3 + rng.Intn(2), "delta": 1 + rng.Intn(2), "min_length": 1}
		if w := wheres[rng.Intn(len(wheres))]; w != "" {
			mr["where"] = w
		}
		b, _ := json.Marshal(mr)
		bodies = append(bodies, string(b))
	}
	return bodies
}

// patternsOf reduces a ResultJSON body to its patterns array — the
// part of the response the equivalence invariant is pinned on.
func patternsOf(t *testing.T, raw []byte) []byte {
	t.Helper()
	var res skinnymine.ResultJSON
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decoding result: %v\nbody: %s", err, raw)
	}
	out, err := json.Marshal(res.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// mineBody posts one /v1/mine request and returns the raw body.
func mineBody(t *testing.T, ts *httptest.Server, body string) []byte {
	t.Helper()
	resp := postMine(t, ts, body)
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d for %s: %s", resp.StatusCode, body, raw)
	}
	return raw
}

// forEachConc runs fn(i) for i in [0,n) with the given client-side
// concurrency, the harness's stand-in for interleaved callers.
func forEachConc(t *testing.T, n, conc int, fn func(i int)) {
	t.Helper()
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

func TestEquivalenceRandomFamilies(t *testing.T) {
	shardCounts := []int{1, 3}
	concs := []int{1, 8}
	if testing.Short() {
		shardCounts, concs = []int{1}, []int{8}
	}
	for _, shards := range shardCounts {
		for _, conc := range concs {
			shards, conc := shards, conc
			t.Run(fmt.Sprintf("shards=%d/conc=%d", shards, conc), func(t *testing.T) {
				runEquivRound(t, shards, conc, int64(3000+100*shards+conc))
			})
		}
	}
}

func runEquivRound(t *testing.T, shards, conc int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	corpus := skinnymine.NewCorpus()
	graphs := []*skinnymine.Graph{
		equivGraph(corpus, rng, 20, 6, 3),
		equivGraph(corpus, rng, 17, 5, 3),
		equivGraph(corpus, rng, 14, 4, 3),
	}
	var ix *skinnymine.Index
	var err error
	if shards > 1 {
		ix, err = skinnymine.BuildShardedIndex(graphs, 2, shards)
	} else {
		ix, err = skinnymine.BuildIndex(graphs, 2)
	}
	if err != nil {
		t.Fatal(err)
	}
	// Reference: both optimizers off AND no cache, so every answer is an
	// independent fresh mine. The two servers share one index — its
	// level cache memoizes work, never results.
	_, refTS := newTestServer(t, Config{Index: ix, NoMorph: true, NoFamily: true, CacheSize: -1})
	optS, optTS := newTestServer(t, Config{Index: ix})

	bodies := equivFamily(rng)

	// Ground truth, one fresh mine per distinct body.
	var mu sync.Mutex
	truth := make(map[string][]byte)
	fresh := func(body string) []byte {
		mu.Lock()
		got, ok := truth[body]
		mu.Unlock()
		if ok {
			return got
		}
		got = patternsOf(t, mineBody(t, refTS, body))
		mu.Lock()
		truth[body] = got
		mu.Unlock()
		return got
	}
	want := make([][]byte, len(bodies))
	forEachConc(t, len(bodies), conc, func(i int) {
		want[i] = fresh(bodies[i])
	})

	// Optimized phase 1: the whole family in one batch — this is where
	// shared-plan execution forks members from one family mine.
	var breq BatchRequest
	for _, b := range bodies {
		breq.Requests = append(breq.Requests, json.RawMessage(b))
	}
	payload, _ := json.Marshal(breq)
	resp := postBatch(t, optTS, string(payload))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	br := decodeBody[BatchResponse](t, resp.Body)
	for i := range bodies {
		if br.Results[i].Status != http.StatusOK {
			t.Fatalf("batch entry %d: status %d: %s", i, br.Results[i].Status, br.Results[i].Error)
		}
		if got := patternsOf(t, br.Results[i].Result); !bytes.Equal(got, want[i]) {
			t.Errorf("batch entry %d (%s, source %s): patterns diverge from fresh mine\ngot:  %s\nwant: %s",
				i, bodies[i], br.Results[i].Source, got, want[i])
		}
	}

	// Optimized phase 2: singles against the warm server — replays of
	// phase 1 (hits) interleaved with fresh subsumable keys (morphs),
	// each checked against its own fresh reference mine.
	morphers := []string{
		`{"length":4,"min_length":1,"delta":2,"where":"vertices<=7"}`,
		`{"length":4,"min_length":1,"delta":1,"where":"vertices<=8"}`,
		`{"length":3,"min_length":1,"delta":2,"where":"vertices<=8 && topk(3, by=support)"}`,
		`{"length":3,"min_length":1,"delta":2,"measure":"graphs","where":"support>=3 && edges<=9"}`,
	}
	singles := append(append([]string(nil), bodies...), morphers...)
	rng.Shuffle(len(singles), func(i, j int) { singles[i], singles[j] = singles[j], singles[i] })
	wantSingle := make([][]byte, len(singles))
	forEachConc(t, len(singles), conc, func(i int) {
		wantSingle[i] = fresh(singles[i])
	})
	forEachConc(t, len(singles), conc, func(i int) {
		if got := patternsOf(t, mineBody(t, optTS, singles[i])); !bytes.Equal(got, wantSingle[i]) {
			t.Errorf("single %s: patterns diverge from fresh mine\ngot:  %s\nwant: %s", singles[i], got, wantSingle[i])
		}
	})

	// The optimizer must actually have engaged — a harness that never
	// morphs or forks pins nothing — and the serving ledger must still
	// account for every tracked request exactly once. Duplicate bodies
	// inside the batch collapse to one unit, hence br.Unique.
	m := optS.metrics.snapshot()
	if m.Mine.FamilyShared < 1 {
		t.Errorf("family_shared = %d, want >= 1 (the batch held a mixable family)", m.Mine.FamilyShared)
	}
	if m.Mine.Morphed < 1 {
		t.Errorf("morphed = %d, want >= 1 (phase 2 posted subsumable fresh keys)", m.Mine.Morphed)
	}
	tracked := m.Mine.CacheHits + m.Mine.CacheMisses + m.Mine.Coalesced + m.Mine.Morphed + m.Mine.FamilyShared
	if want := int64(br.Unique + len(singles)); tracked != want {
		t.Errorf("ledger: hits+misses+coalesced+morphed+family_shared = %d, want %d", tracked, want)
	}
}
