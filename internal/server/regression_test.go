package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"skinnymine"
)

// waitWaiters polls until exactly n callers are parked on in-flight
// runs (or fails the test after 10s).
func waitWaiters(t *testing.T, s *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.flights.mu.Lock()
		var waiting int64
		for _, c := range s.flights.calls {
			waiting += c.waiters.Load()
		}
		s.flights.mu.Unlock()
		if waiting == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d callers parked on in-flight runs, want %d", waiting, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFlightFollowerCancellation pins the flightGroup fix at the unit
// level: a follower whose own context dies stops waiting immediately —
// while the leader is still running — with an admission-canceled error
// and shared=true, and deregisters itself from the waiter count.
// (Before the fix the follower was blind to its cancellation until the
// leader finished.)
func TestFlightFollowerCancellation(t *testing.T) {
	g := newFlightGroup()
	leaderIn := make(chan struct{})
	block := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		g.do(context.Background(), "k", func() (produced, error) {
			close(leaderIn)
			<-block
			return produced{body: []byte("ok")}, nil
		})
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type outcome struct {
		body   []byte
		err    error
		shared bool
	}
	followerDone := make(chan outcome, 1)
	go func() {
		res, err, shared := g.do(ctx, "k", func() (produced, error) {
			t.Error("canceled follower must never become a leader mid-wait")
			return produced{}, nil
		})
		followerDone <- outcome{res.body, err, shared}
	}()
	// The follower is parked on the leader's call; cancel only the
	// follower.
	deadline := time.Now().Add(10 * time.Second)
	for {
		g.mu.Lock()
		w := g.calls["k"].waiters.Load()
		g.mu.Unlock()
		if w == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never parked on the in-flight call")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	select {
	case o := <-followerDone:
		if !errors.Is(o.err, errAdmissionCanceled) {
			t.Errorf("follower error %v, want errAdmissionCanceled", o.err)
		}
		if !o.shared || o.body != nil {
			t.Errorf("follower got body=%q shared=%v, want nil/true", o.body, o.shared)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled follower still waiting on the leader")
	}
	select {
	case <-leaderDone:
		t.Fatal("leader finished early; the follower's promptness was not tested")
	default:
	}
	g.mu.Lock()
	if w := g.calls["k"].waiters.Load(); w != 0 {
		t.Errorf("canceled follower left waiter count at %d", w)
	}
	g.mu.Unlock()
	close(block)
	<-leaderDone
}

// TestCanceledFollowerReturnsPromptly is the HTTP-level version, run
// under -race in CI: a follower whose client disconnects gets released
// while the leader's mine is still in flight, the leader is unaffected,
// and the books balance afterwards (one miss for the leader, one
// coalesced entry for the departed follower, one tracked error).
func TestCanceledFollowerReturnsPromptly(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	realMine := s.mineFn
	s.mineFn = func(ctx context.Context, opt skinnymine.Options) (*skinnymine.Result, error) {
		close(entered)
		<-release
		return realMine(ctx, opt)
	}

	req := `{"length":4,"delta":1}`
	leaderDone := make(chan int, 1)
	go func() {
		resp := postMine(t, ts, req)
		io.Copy(io.Discard, resp.Body)
		leaderDone <- resp.StatusCode
	}()
	<-entered

	fctx, fcancel := context.WithCancel(context.Background())
	defer fcancel()
	freq, err := http.NewRequestWithContext(fctx, http.MethodPost, ts.URL+"/v1/mine", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	followerDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(freq)
		if err == nil {
			resp.Body.Close()
		}
		followerDone <- err
	}()
	waitWaiters(t, s, 1)
	fcancel()

	select {
	case err := <-followerDone:
		if err == nil {
			t.Error("canceled follower completed successfully")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled follower still blocked while the leader mines")
	}
	select {
	case code := <-leaderDone:
		t.Fatalf("leader finished early (status %d); follower promptness was not tested", code)
	default:
	}
	waitWaiters(t, s, 0) // the departed follower deregistered itself

	close(release)
	if code := <-leaderDone; code != http.StatusOK {
		t.Fatalf("leader status %d after follower cancellation, want 200", code)
	}
	m := s.metrics.snapshot()
	if m.Mine.CacheMisses != 1 || m.Mine.Coalesced != 1 || m.Mine.Runs != 1 || m.Mine.Errors != 1 {
		t.Errorf("misses=%d coalesced=%d runs=%d errors=%d, want 1/1/1/1",
			m.Mine.CacheMisses, m.Mine.Coalesced, m.Mine.Runs, m.Mine.Errors)
	}
}

// TestMetricsCountMissAtLeadershipOnly pins the accounting fix with an
// exact ledger across a hit/miss/coalesced/morphed mix: misses count
// leaders, not every LRU miss — a morph-served request counts morphed,
// NOT a miss, even though its key missed the LRU — so hits + misses +
// coalesced + morphed + family_shared equals the tracked request count
// and the hit rate uses that full denominator. (Before the fix every
// coalesced follower also charged a miss, overstating misses by the
// coalesced count.)
func TestMetricsCountMissAtLeadershipOnly(t *testing.T) {
	const followers = 3
	s, ts := newTestServer(t, Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	realMine := s.mineFn
	s.mineFn = func(ctx context.Context, opt skinnymine.Options) (*skinnymine.Result, error) {
		if opt.Length == 3 { // only the coalescing round blocks
			close(entered)
			<-release
		}
		return realMine(ctx, opt)
	}

	// One plain miss, one plain hit.
	for _, r := range []*http.Response{
		postMine(t, ts, `{"length":4,"delta":1}`),
		postMine(t, ts, `{"length":4,"delta":1}`),
	} {
		io.Copy(io.Discard, r.Body)
	}

	// One coalescing round: a leader plus three followers.
	req := `{"length":3,"delta":1}`
	var wg sync.WaitGroup
	do := func() {
		defer wg.Done()
		resp := postMine(t, ts, req)
		io.Copy(io.Discard, resp.Body)
	}
	wg.Add(1)
	go do()
	<-entered
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go do()
	}
	waitWaiters(t, s, followers)
	close(release)
	wg.Wait()

	// One morph round: a fresh key answered by post-filtering the
	// cached unconstrained superset — no run, no miss, one "morphed".
	morph := postMine(t, ts, `{"length":4,"delta":1,"where":"vertices<=8"}`)
	io.Copy(io.Discard, morph.Body)
	if src := morph.Header.Get("X-Result-Source"); src != "morphed" {
		t.Fatalf("morph round source %q, want morphed", src)
	}

	m := s.metrics.snapshot()
	if m.Mine.CacheHits != 1 || m.Mine.CacheMisses != 2 || m.Mine.Coalesced != followers {
		t.Errorf("hits=%d misses=%d coalesced=%d, want 1/2/%d",
			m.Mine.CacheHits, m.Mine.CacheMisses, m.Mine.Coalesced, followers)
	}
	if m.Mine.Morphed != 1 || m.Mine.FamilyShared != 0 {
		t.Errorf("morphed=%d family_shared=%d, want 1/0", m.Mine.Morphed, m.Mine.FamilyShared)
	}
	if m.Mine.Runs != 2 || m.Mine.Errors != 0 {
		t.Errorf("runs=%d errors=%d, want 2/0 (the morph round must not run a mine)", m.Mine.Runs, m.Mine.Errors)
	}
	tracked := m.Mine.CacheHits + m.Mine.CacheMisses + m.Mine.Coalesced + m.Mine.Morphed + m.Mine.FamilyShared
	if want := int64(2 + 1 + followers + 1); tracked != want {
		t.Errorf("ledger sum = %d, want the %d tracked requests", tracked, want)
	}
	if want := float64(m.Mine.CacheHits) / float64(tracked); m.Mine.CacheHitRate != want {
		t.Errorf("hit rate %v, want %v (denominator must include every bucket)", m.Mine.CacheHitRate, want)
	}
}

// TestIndexConcurrencyConfig pins the Config.IndexConcurrency contract:
// zero leaves the embedder's setting untouched (New used to silently
// reset it to one-per-CPU), positive sets exactly that budget, negative
// asks for one worker per CPU.
func TestIndexConcurrencyConfig(t *testing.T) {
	ix := buildIndex(t)
	ix.SetConcurrency(3)

	if _, err := New(Config{Index: ix}); err != nil {
		t.Fatal(err)
	}
	if got := ix.Concurrency(); got != 3 {
		t.Errorf("IndexConcurrency=0 reconfigured the index to %d workers, want the embedder's 3", got)
	}
	if _, err := New(Config{Index: ix, IndexConcurrency: 5}); err != nil {
		t.Fatal(err)
	}
	if got := ix.Concurrency(); got != 5 {
		t.Errorf("IndexConcurrency=5 set %d workers", got)
	}
	if _, err := New(Config{Index: ix, IndexConcurrency: -1}); err != nil {
		t.Fatal(err)
	}
	if got := ix.Concurrency(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("IndexConcurrency=-1 set %d workers, want one per CPU (%d)", got, runtime.GOMAXPROCS(0))
	}
}

// TestErrStatusMapping: admission cancellation and worker
// unavailability are retryable server conditions (503); anything else
// stays a 500.
func TestErrStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("wrap: %w", errAdmissionCanceled), http.StatusServiceUnavailable},
		{fmt.Errorf("shard 1 down: %w", skinnymine.ErrUnavailable), http.StatusServiceUnavailable},
		{errors.New("disk on fire"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := errStatus(tc.err); got != tc.want {
			t.Errorf("errStatus(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}
