package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"skinnymine/internal/obs"
)

// TestRequestIDGenerated: every response carries an X-Request-Id; one
// the client did not supply is generated (16 hex digits).
func TestRequestIDGenerated(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get(obs.RequestIDHeader)
	if len(id) != 16 {
		t.Fatalf("generated request ID %q, want 16 hex digits", id)
	}
}

// TestRequestIDEchoed: a client-supplied X-Request-Id is echoed back
// verbatim, so callers can correlate responses with their own IDs.
func TestRequestIDEchoed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set(obs.RequestIDHeader, "client-chose-this")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "client-chose-this" {
		t.Fatalf("echoed request ID %q, want client-chose-this", got)
	}
}

// stripTimings re-encodes a ResultJSON body with the run-dependent
// stats timings removed, the same normalization the smoke tests apply.
func stripTimings(t *testing.T, body []byte) string {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("unmarshal result: %v", err)
	}
	if stats, ok := doc["stats"].(map[string]any); ok {
		delete(stats, "diammine_ms")
		delete(stats, "levelgrow_ms")
	}
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestMineTrace: ?trace=1 on a fresh key mines the request and returns
// the normal result wrapped with the run's spans — both mining stages
// present, each span's duration bounded by the reported total — and
// the run seeds the shared cache exactly like an untraced miss, so a
// plain request that follows is a hit with byte-identical result.
func TestMineTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/mine?trace=1", "application/json",
		strings.NewReader(`{"length":4,"delta":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Result-Source"); got != "miss" {
		t.Errorf("X-Result-Source %q, want miss", got)
	}
	tr := decodeBody[TraceResponse](t, resp.Body)
	if tr.RequestID == "" {
		t.Error("trace response lacks a request_id")
	}
	if tr.Source != "mined" {
		t.Errorf("trace source %q, want mined", tr.Source)
	}
	if tr.TraceID != tr.RequestID {
		t.Errorf("trace_id %q, want the leading request's own ID %q", tr.TraceID, tr.RequestID)
	}
	if tr.TotalMs <= 0 {
		t.Errorf("total_ms = %v, want > 0", tr.TotalMs)
	}
	names := map[string]bool{}
	var stagesMs float64
	for _, s := range tr.Spans {
		names[s.Name] = true
		durMs := float64(s.DurationUs) / 1000
		if durMs > tr.TotalMs+1 {
			t.Errorf("span %s (%.3fms) exceeds total %.3fms", s.Name, durMs, tr.TotalMs)
		}
		if s.Name == "stage1" || s.Name == "stage2" {
			stagesMs += durMs
		}
	}
	for _, want := range []string{"stage1", "stage2"} {
		if !names[want] {
			t.Errorf("no %q span in trace; got %v", want, names)
		}
	}
	// The two top-level stage spans cover the run: their sum cannot
	// exceed the total by more than scheduling noise.
	if stagesMs > tr.TotalMs+1 {
		t.Errorf("stage spans sum %.3fms > total %.3fms", stagesMs, tr.TotalMs)
	}

	// The traced run seeded the cache: a plain request is a hit with
	// the exact bytes the traced response carried as its result.
	plain := postMine(t, ts, `{"length":4,"delta":1}`)
	plainBody, err := io.ReadAll(plain.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.Header.Get("X-Result-Source"); got != "hit" {
		t.Errorf("plain request after traced run: X-Result-Source %q, want hit", got)
	}
	// Indentation depth differs (the traced result rides nested inside
	// the trace envelope), so compare the normalized forms.
	if got, want := stripTimings(t, plainBody), stripTimings(t, tr.Result); got != want {
		t.Errorf("cached body differs from traced result:\n%s\nvs\n%s", got, want)
	}
}

// TestTraceServesCachedRun: ?trace=1 on a hot key does not re-mine —
// it serves the cached bytes plus the STORED trace of the run that
// produced them, reporting source "cache". The ledger sees a normal
// hit, so the invariant hits+misses+coalesced == tracked requests
// now includes traced traffic.
func TestTraceServesCachedRun(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	plain := postMine(t, ts, `{"length":4,"delta":1}`)
	plainBody, err := io.ReadAll(plain.Body)
	if err != nil {
		t.Fatal(err)
	}
	origID := plain.Header.Get(obs.RequestIDHeader)

	resp, err := http.Post(ts.URL+"/v1/mine?trace=1", "application/json",
		strings.NewReader(`{"length":4,"delta":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Result-Source"); got != "hit" {
		t.Errorf("X-Result-Source %q, want hit", got)
	}
	tr := decodeBody[TraceResponse](t, resp.Body)
	if tr.Source != "cache" {
		t.Errorf("trace source %q, want cache", tr.Source)
	}
	if tr.TraceID != origID {
		t.Errorf("trace_id %q, want the producing run's request ID %q", tr.TraceID, origID)
	}
	if got, want := stripTimings(t, tr.Result), stripTimings(t, plainBody); got != want {
		t.Error("traced hit served a different result than the original run")
	}
	if tr.TotalMs <= 0 {
		t.Errorf("total_ms = %v, want the stored run's duration > 0", tr.TotalMs)
	}
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	if !names["stage1"] || !names["stage2"] {
		t.Errorf("stored trace lacks stage spans; got %v", names)
	}

	m := s.metrics.snapshot()
	if m.Mine.Runs != 1 {
		t.Errorf("runs = %d after plain + traced hit, want 1 (no re-mine)", m.Mine.Runs)
	}
	if m.Mine.CacheHits != 1 || m.Mine.CacheMisses != 1 {
		t.Errorf("ledger hits=%d misses=%d, want 1/1", m.Mine.CacheHits, m.Mine.CacheMisses)
	}
}

// TestTraceBypassWithStoreDisabled: with the trace store disabled the
// legacy ?trace=1 contract holds — bypass the cache (there are no
// stored spans a hit could show), run fresh, never touch the
// hit/miss/coalesced ledger, and never seed the cache.
func TestTraceBypassWithStoreDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{TraceStore: -1})
	resp, err := http.Post(ts.URL+"/v1/mine?trace=1", "application/json",
		strings.NewReader(`{"length":4,"delta":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Result-Source"); got != "traced" {
		t.Errorf("X-Result-Source %q, want traced", got)
	}
	tr := decodeBody[TraceResponse](t, resp.Body)
	if tr.Source != "mined" || len(tr.Spans) == 0 {
		t.Errorf("bypass trace source %q with %d spans, want mined with spans", tr.Source, len(tr.Spans))
	}
	m := s.metrics.snapshot()
	if m.Mine.CacheHits+m.Mine.CacheMisses+m.Mine.Coalesced != 0 {
		t.Errorf("traced request touched the cache ledger: %+v", m.Mine)
	}
	if m.Mine.Runs != 1 || m.Mine.LatencyCount != 1 {
		t.Errorf("traced request not counted as a run: runs=%d latency_count=%d",
			m.Mine.Runs, m.Mine.LatencyCount)
	}

	// A traced request must not have seeded the cache either: the next
	// plain request is a miss, not a hit.
	postMine(t, ts, `{"length":4,"delta":1}`)
	if m := s.metrics.snapshot(); m.Mine.CacheMisses != 1 || m.Mine.CacheHits != 0 {
		t.Errorf("after traced + plain: hits=%d misses=%d, want 0/1", m.Mine.CacheHits, m.Mine.CacheMisses)
	}
}

// TestMetricsNotFound: unroutable paths show up under
// requests_total.not_found instead of vanishing.
func TestMetricsNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/no/such/endpoint")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status %d, want 404", resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	m := decodeBody[MetricsSnapshot](t, resp.Body)
	if m.Requests["not_found"] != 2 {
		t.Errorf("not_found = %d, want 2 (requests_total %v)", m.Requests["not_found"], m.Requests)
	}
}

// TestMetricsHistograms: mining latency and admission wait land in the
// fixed-boundary histograms, and the legacy latency_count/avg/max
// fields are derived consistently from the distribution.
func TestMetricsHistograms(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	postMine(t, ts, `{"length":4,"delta":1}`)
	postMine(t, ts, `{"length":3,"delta":1}`)
	m := s.metrics.snapshot()
	if m.Mine.LatencyMs.Count != 2 || m.Mine.LatencyCount != 2 {
		t.Fatalf("latency histogram count %d / legacy count %d, want 2/2",
			m.Mine.LatencyMs.Count, m.Mine.LatencyCount)
	}
	if len(m.Mine.LatencyMs.Buckets) != len(obs.DefaultLatencyBuckets) {
		t.Errorf("latency buckets %d, want %d", len(m.Mine.LatencyMs.Buckets), len(obs.DefaultLatencyBuckets))
	}
	if m.Mine.LatencyMaxMs != m.Mine.LatencyMs.MaxMs {
		t.Errorf("legacy max %v != histogram max %v", m.Mine.LatencyMaxMs, m.Mine.LatencyMs.MaxMs)
	}
	wantAvg := m.Mine.LatencyMs.SumMs / 2
	if m.Mine.LatencyAvgMs != wantAvg {
		t.Errorf("legacy avg %v != derived avg %v", m.Mine.LatencyAvgMs, wantAvg)
	}
	// Both runs took an admission slot.
	if m.AdmissionWaitMs.Count != 2 {
		t.Errorf("admission wait samples %d, want 2", m.AdmissionWaitMs.Count)
	}
}

// TestMetricsProm: ?format=prom renders the same counters in the
// Prometheus text exposition, histograms included, with the implicit
// +Inf bucket equal to the count.
func TestMetricsProm(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postMine(t, ts, `{"length":4,"delta":1}`)
	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`skinnymine_requests_total{endpoint="mine"} 1`,
		`skinnymine_mine_runs_total 1`,
		`skinnymine_mine_latency_ms_bucket{le="+Inf"} 1`,
		`skinnymine_mine_latency_ms_count 1`,
		"# TYPE skinnymine_mine_latency_ms histogram",
		`skinnymine_requests_total{endpoint="not_found"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}
}

// syncWriter guards a buffer against the server goroutines still
// logging while the test reads it.
type syncWriter struct {
	mu sync.Mutex
	w  bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func (s *syncWriter) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.String()
}

// TestSlowQueryLog: with a zero-ish threshold every run is "slow"; the
// warn line carries the duration, the request ID and the run's spans.
func TestSlowQueryLog(t *testing.T) {
	buf := &syncWriter{}
	logger := slog.New(slog.NewTextHandler(buf, nil))
	_, ts := newTestServer(t, Config{Logger: logger, SlowQuery: time.Nanosecond})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/mine", strings.NewReader(`{"length":4,"delta":1}`))
	req.Header.Set(obs.RequestIDHeader, "slowq-test-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	out := buf.String()
	if !strings.Contains(out, "slow query") {
		t.Fatalf("no slow-query line in log:\n%s", out)
	}
	if !strings.Contains(out, "slowq-test-id") {
		t.Errorf("slow-query line lacks the request ID:\n%s", out)
	}
	if !strings.Contains(out, "stage1") {
		t.Errorf("slow-query line lacks spans:\n%s", out)
	}
}

// TestPprofGated: /debug/pprof/ is absent by default and mounted with
// Config.Pprof.
func TestPprofGated(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
	}
	_, on := newTestServer(t, Config{Pprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status %d, want 200", resp.StatusCode)
	}
}
