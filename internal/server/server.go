// Package server is the HTTP serving layer of the direct mining
// deployment (Figure 2 of the paper): one pre-computed index — sharded
// or not — shared by every request, behind a small JSON API.
//
//	POST /v1/mine       Options JSON in, ResultJSON out
//	POST /v1/batch      N MineRequests in, per-request results out
//	GET  /v1/backbones  ?l=N — Stage I minimal patterns for length N
//	GET  /healthz       liveness + index summary (graphs, σ, shards)
//	GET  /metrics       request counters, latencies, cache hit rate
//
// Mining requests pass through three throughput guards: an LRU cache of
// serialized responses keyed by canonicalized options, singleflight
// coalescing so identical concurrent requests share one mining run, and
// a bounded-concurrency admission gate protecting the process from
// unbounded parallel Stage II growth. A batch rides the same guards as
// N single requests would — same cache, same coalescing domain, same
// gate — after deduplicating its entries by canonical cache key, so N
// identical batched requests cost exactly one mining run.
//
// Concurrency and ownership: one Server owns its cache, flight group,
// metrics and admission semaphore; every handler is safe for arbitrary
// concurrent requests, and the shared index's own locking makes
// concurrent cache-miss materialization race-free.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"skinnymine"
)

// maxBodyBytes bounds a /v1/mine request body; options JSON is tiny.
const maxBodyBytes = 1 << 20

// errAdmissionCanceled marks a mining run abandoned because the
// request driving it was canceled while queued at the admission gate.
var errAdmissionCanceled = errors.New("canceled while queued for admission")

// Config configures a Server.
type Config struct {
	// Index is the pre-computed index every request is served from.
	Index *skinnymine.Index
	// MaxConcurrent bounds how many mining runs may execute at once
	// (the admission gate). 0 means twice the available CPUs.
	MaxConcurrent int
	// CacheSize is the LRU result cache capacity in entries. 0 means
	// 256; negative disables caching.
	CacheSize int
	// MaxLength caps the diameter length a request may ask for. Every
	// served length grows the index's level cache permanently and the
	// mining cost grows steeply with l, so an unbounded wire value
	// would let one request exhaust the process. 0 means 64.
	MaxLength int
	// MaxBatch caps how many requests one /v1/batch call may carry.
	// 0 means 64; negative disables the endpoint (404).
	MaxBatch int
	// IndexConcurrency, when non-zero, sets the index's own worker pool
	// (skinnymine.Index.SetConcurrency) — the budget backbones
	// materialization uses; Mine requests carry their own. > 0 sets that
	// many workers, < 0 sets one per available CPU, and 0 leaves the
	// index exactly as the embedder configured it. (The server used to
	// silently reset the caller-owned index to one-per-CPU; it no longer
	// touches it unless asked.)
	IndexConcurrency int
}

// Server serves mining requests over HTTP. Create one with New and
// mount Handler on an http.Server.
type Server struct {
	ix       *skinnymine.Index
	maxLen   int
	maxBatch int // 0 disables /v1/batch
	sem      chan struct{}
	cache    *lruCache // nil when caching is disabled
	flights  *flightGroup
	metrics  *metrics

	// mineFn runs one mining request under the leader request's context
	// (a distributed index propagates it into worker RPCs); tests
	// substitute it to observe coalescing and gate behavior
	// deterministically.
	mineFn func(context.Context, skinnymine.Options) (*skinnymine.Result, error)
}

// New returns a Server over the index.
func New(cfg Config) (*Server, error) {
	if cfg.Index == nil {
		return nil, fmt.Errorf("server: Config.Index is required")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxLength <= 0 {
		cfg.MaxLength = 64
	}
	switch {
	case cfg.MaxBatch == 0:
		cfg.MaxBatch = 64
	case cfg.MaxBatch < 0:
		cfg.MaxBatch = 0 // endpoint disabled
	}
	// The index's own concurrency (backbones materialization; Mine
	// requests carry their own) belongs to the embedder: touch it only
	// when explicitly asked.
	switch {
	case cfg.IndexConcurrency > 0:
		cfg.Index.SetConcurrency(cfg.IndexConcurrency)
	case cfg.IndexConcurrency < 0:
		cfg.Index.SetConcurrency(0) // one worker per available CPU
	}
	s := &Server{
		ix:       cfg.Index,
		maxLen:   cfg.MaxLength,
		maxBatch: cfg.MaxBatch,
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		flights:  newFlightGroup(),
		metrics:  newMetrics(),
		mineFn:   cfg.Index.MineContext,
	}
	switch {
	case cfg.CacheSize == 0:
		s.cache = newLRUCache(256)
	case cfg.CacheSize > 0:
		s.cache = newLRUCache(cfg.CacheSize)
	}
	return s, nil
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/mine", s.handleMine)
	if s.maxBatch > 0 {
		mux.HandleFunc("POST /v1/batch", s.handleBatch)
	}
	mux.HandleFunc("GET /v1/backbones", s.handleBackbones)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// MineRequest is the wire form of skinnymine.Options. Field names
// follow the CLI flags; Support may be omitted (0) to default to the
// index's σ.
type MineRequest struct {
	Support     int    `json:"support,omitempty"`
	Length      int    `json:"length"`
	MinLength   int    `json:"min_length,omitempty"`
	Delta       int    `json:"delta"`
	Measure     string `json:"measure,omitempty"` // "embeddings" (default) or "graphs"
	MaximalOnly bool   `json:"maximal_only,omitempty"`
	ClosedOnly  bool   `json:"closed_only,omitempty"`
	MaxPatterns int    `json:"max_patterns,omitempty"`
	Concurrency int    `json:"concurrency,omitempty"`
	// Where is a declarative pattern constraint (skinnymine.Options.
	// Where); invalid expressions are a 400. toOptions rewrites it to
	// the parsed form's canonical rendering, so whitespace variants of
	// one expression share a cache entry while any semantic difference
	// — including only in the topk clause — keys separately.
	Where string `json:"where,omitempty"`
}

// toOptions validates the request and lowers it onto the library
// options, resolving defaults against the index.
func (s *Server) toOptions(req *MineRequest) (skinnymine.Options, error) {
	var zero skinnymine.Options
	if req.Support == 0 {
		req.Support = s.ix.Sigma()
	}
	if req.Support != s.ix.Sigma() {
		return zero, fmt.Errorf("support %d does not match the index σ=%d", req.Support, s.ix.Sigma())
	}
	if req.Length > s.maxLen {
		return zero, fmt.Errorf("length %d exceeds this server's limit of %d", req.Length, s.maxLen)
	}
	if req.Delta < 0 {
		req.Delta = -1 // every negative value means unbounded; canonicalize
	}
	// Clamp the worker count: core only caps workers at the work-item
	// count, so an unbounded wire value could fan one admitted request
	// into millions of goroutines. Negative means "one per CPU" (0),
	// which also keeps the cache key canonical.
	if req.Concurrency < 0 {
		req.Concurrency = 0
	}
	if max := 4 * runtime.GOMAXPROCS(0); req.Concurrency > max {
		req.Concurrency = max
	}
	opt := skinnymine.Options{
		Support:     req.Support,
		Length:      req.Length,
		MinLength:   req.MinLength,
		Delta:       req.Delta,
		MaximalOnly: req.MaximalOnly,
		ClosedOnly:  req.ClosedOnly,
		MaxPatterns: req.MaxPatterns,
		Concurrency: req.Concurrency,
	}
	switch strings.ToLower(req.Measure) {
	case "", "embeddings":
		opt.Measure = skinnymine.EmbeddingCount
		req.Measure = "embeddings"
	case "graphs":
		opt.Measure = skinnymine.GraphCount
		req.Measure = "graphs"
	default:
		return zero, fmt.Errorf("measure %q is not \"embeddings\" or \"graphs\"", req.Measure)
	}
	// Canonicalize the constraint: whitespace variants of one
	// expression must share a cache entry, and an unparsable one is the
	// client's fault (400). The parsed form rides along on the options
	// so mining does not re-parse.
	if strings.TrimSpace(req.Where) != "" {
		c, err := skinnymine.ParseConstraint(req.Where)
		if err != nil {
			return zero, err
		}
		opt.WhereExpr = c
		req.Where = c.String()
	} else {
		req.Where = ""
	}
	// Remaining field validation is the library's: the daemon rejects
	// exactly what Mine and the CLI reject, with the same messages.
	if err := opt.Validate(); err != nil {
		return zero, err
	}
	return opt, nil
}

// cacheKey canonicalizes the (already default-resolved) request into
// the cache and coalescing key. Concurrency is excluded unless
// max_patterns is set: output is byte-identical at every worker count,
// except under a pattern budget where which patterns win the race may
// depend on scheduling — there, differently-concurrent requests must
// not share a cache entry. Where arrives here already rewritten to its
// canonical rendering (toOptions), so spelling variants of one
// constraint hit one entry and semantically different constraints —
// down to the topk clause — never collide.
func cacheKey(req *MineRequest) string {
	conc := 0
	if req.MaxPatterns > 0 {
		conc = req.Concurrency
	}
	return fmt.Sprintf("s=%d l=%d ml=%d d=%d m=%s max=%v cl=%v mp=%d c=%d w=%q",
		req.Support, req.Length, req.MinLength, req.Delta, req.Measure,
		req.MaximalOnly, req.ClosedOnly, req.MaxPatterns, conc, req.Where)
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.mine.Add(1)
	var req MineRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	opt, err := s.toOptions(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.serveCached(w, r, cacheKey(&req), true, s.mineProduce(opt))
}

// mineProduce returns the producer for one mining request: run the
// request, record latency, serialize the wire body. Shared by /v1/mine
// and /v1/batch so both feed the same /metrics mine section. The
// context is the leader request's: its deadline and cancellation reach
// a distributed index's worker RPCs.
func (s *Server) mineProduce(opt skinnymine.Options) func(context.Context) ([]byte, error) {
	return func(ctx context.Context) ([]byte, error) {
		s.metrics.mine.inFlight.Add(1)
		defer s.metrics.mine.inFlight.Add(-1)
		s.metrics.mine.runs.Add(1)
		t0 := time.Now()
		res, err := s.mineFn(ctx, opt)
		if err != nil {
			return nil, err
		}
		s.metrics.observeMine(time.Since(t0))
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
}

// serveCached runs the throughput guards around produce (execute) and
// writes the outcome as an HTTP response.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key string, trackMine bool, produce func(context.Context) ([]byte, error)) {
	body, source, err := s.execute(r, key, trackMine, produce)
	if err != nil {
		// Input was validated before produce, so a failed run is the
		// server's problem: 503 for admission cancellation, 500 otherwise.
		writeError(w, errStatus(err), err.Error())
		return
	}
	writeBody(w, body, source)
}

// errStatus maps a failed run to its HTTP status. Admission
// cancellation and an unreachable shard worker are both 503: the server
// is briefly unable to do the work, and retrying is safe — a
// distributed mine that loses a worker fails completely (caches
// untouched), never with a partial answer.
func errStatus(err error) int {
	if errors.Is(err, errAdmissionCanceled) || errors.Is(err, skinnymine.ErrUnavailable) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// execute runs the three throughput guards around produce: the LRU
// response cache under key, singleflight coalescing of identical
// concurrent requests, and the bounded-concurrency admission gate.
// produce runs with an admission slot held and returns the response
// body, which is cached on success and tagged with where it came from
// ("hit", "miss" or "coalesced"). trackMine folds cache and error
// counts into the /metrics mine section (the mining endpoints'
// bookkeeping; other endpoints only ride the guards). Both /v1/mine
// and every unique /v1/batch entry funnel through here, so batch and
// single requests share one cache, one coalescing domain, and one
// admission gate.
func (s *Server) execute(r *http.Request, key string, trackMine bool, produce func(context.Context) ([]byte, error)) (body []byte, source string, err error) {
	if s.cache != nil {
		if body, ok := s.cache.get(key); ok {
			if trackMine {
				s.metrics.mine.cacheHits.Add(1)
			}
			return body, "hit", nil
		}
	}

	run := func() ([]byte, error) {
		// A cache miss is counted HERE, by the one request that became
		// the leader — not by every request that missed the LRU. A
		// follower that coalesces onto an in-flight run counts only
		// under coalesced; counting it as a miss too would overstate
		// misses by exactly the coalesced count and understate the hit
		// rate (see MineMetrics for the denominator semantics).
		if s.cache != nil && trackMine {
			s.metrics.mine.cacheMisses.Add(1)
		}
		select {
		case s.sem <- struct{}{}:
		case <-r.Context().Done():
			return nil, fmt.Errorf("%w: %v", errAdmissionCanceled, r.Context().Err())
		}
		defer func() { <-s.sem }()
		body, err := produce(r.Context())
		if err != nil {
			return nil, err
		}
		if s.cache != nil {
			s.cache.put(key, body)
		}
		return body, nil
	}
	var shared bool
	for {
		body, err, shared = s.flights.do(r.Context(), key, run)
		// A shared admission-cancel error is the leader's client
		// vanishing, not ours: retry with this request as the leader.
		// (Our own cancellation fails the retry guard — r.Context() is
		// already dead — so a canceled follower returns promptly.)
		if shared && errors.Is(err, errAdmissionCanceled) && r.Context().Err() == nil {
			continue
		}
		break
	}
	if shared && trackMine {
		s.metrics.mine.coalesced.Add(1)
	}
	if err != nil {
		if trackMine {
			s.metrics.mine.errors.Add(1)
		}
		return nil, "", err
	}
	source = "miss"
	if shared {
		source = "coalesced"
	}
	return body, source, nil
}

// writeBody emits a pre-serialized ResultJSON, tagging where it came
// from so clients and tests can distinguish cache hits.
func writeBody(w http.ResponseWriter, body []byte, source string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Result-Source", source)
	w.Write(body)
}

// BackbonesResponse is the /v1/backbones payload: the Stage I minimal
// patterns (frequent l-paths) as label sequences.
type BackbonesResponse struct {
	L         int        `json:"l"`
	Count     int        `json:"count"`
	Backbones [][]string `json:"backbones"`
}

func (s *Server) handleBackbones(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.backbones.Add(1)
	raw := r.URL.Query().Get("l")
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing query parameter l")
		return
	}
	l, err := strconv.Atoi(raw)
	if err != nil || l < 1 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("l must be a positive integer, got %q", raw))
		return
	}
	if l > s.maxLen {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("l %d exceeds this server's limit of %d", l, s.maxLen))
		return
	}
	// A cache-miss backbones request materializes a Stage I level —
	// real mining work — so it rides the same guards as /v1/mine.
	s.serveCached(w, r, fmt.Sprintf("backbones l=%d", l), false, func(context.Context) ([]byte, error) {
		bbs, err := s.ix.MinimalBackbones(l)
		if err != nil {
			return nil, err
		}
		if bbs == nil {
			bbs = [][]string{}
		}
		return marshalIndented(BackbonesResponse{L: l, Count: len(bbs), Backbones: bbs})
	})
}

// HealthResponse is the /healthz payload. Workers is present only for
// a distributed index: each shard worker's last observed health. The
// daemon itself stays "ok" with workers down — cached levels still
// serve — and requests needing a dead shard fail with 503.
type HealthResponse struct {
	Status             string                    `json:"status"`
	Graphs             int                       `json:"graphs"`
	Sigma              int                       `json:"sigma"`
	Shards             int                       `json:"shards"`
	MaterializedLevels []int                     `json:"materialized_levels"`
	Workers            []skinnymine.WorkerStatus `json:"workers,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.healthz.Add(1)
	levels := s.ix.MaterializedLevels()
	if levels == nil {
		levels = []int{}
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:             "ok",
		Graphs:             s.ix.NumGraphs(),
		Sigma:              s.ix.Sigma(),
		Shards:             s.ix.Shards(),
		MaterializedLevels: levels,
		Workers:            s.ix.WorkerHealth(),
	})
}
