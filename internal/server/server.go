// Package server is the HTTP serving layer of the direct mining
// deployment (Figure 2 of the paper): one pre-computed index — sharded
// or not — shared by every request, behind a small JSON API.
//
//	POST /v1/mine       Options JSON in, ResultJSON out
//	POST /v1/batch      N MineRequests in, per-request results out
//	GET  /v1/backbones  ?l=N — Stage I minimal patterns for length N
//	GET  /healthz       liveness + index summary (graphs, σ, shards)
//	GET  /metrics       request counters, latencies, cache hit rate
//	GET  /debug/traces  recent request traces; ?id= for one span tree
//
// Mining requests pass through three throughput guards: an LRU cache of
// serialized responses keyed by canonicalized options, singleflight
// coalescing so identical concurrent requests share one mining run, and
// a bounded-concurrency admission gate protecting the process from
// unbounded parallel Stage II growth. A batch rides the same guards as
// N single requests would — same cache, same coalescing domain, same
// gate — after deduplicating its entries by canonical cache key, so N
// identical batched requests cost exactly one mining run.
//
// On top of the guards sits a multi-query optimizer with one hard
// invariant — it changes the plan, never the bytes (equiv_test.go). A
// cache miss may be answered by post-filtering a cached superset
// result whose containment skinnymine.CanMorph proves ("morphed", no
// run, no admission slot), and /v1/batch entries forming a query
// family (skinnymine.FamilyOptions — one σ and measure, varying band,
// δ, anti-monotone constraints) share one mine of the weakest superset
// and fork per entry ("family_shared", plan.go). Config.NoMorph and
// Config.NoFamily switch the optimizer off for A/B timing and for the
// equivalence tests' reference server.
//
// Concurrency and ownership: one Server owns its cache, flight group,
// metrics and admission semaphore; every handler is safe for arbitrary
// concurrent requests, and the shared index's own locking makes
// concurrent cache-miss materialization race-free.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"time"

	"skinnymine"
	"skinnymine/internal/obs"
)

// maxBodyBytes bounds a /v1/mine request body; options JSON is tiny.
const maxBodyBytes = 1 << 20

// errAdmissionCanceled marks a mining run abandoned because the
// request driving it was canceled while queued at the admission gate.
var errAdmissionCanceled = errors.New("canceled while queued for admission")

// Config configures a Server.
type Config struct {
	// Index is the pre-computed index every request is served from.
	Index *skinnymine.Index
	// MaxConcurrent bounds how many mining runs may execute at once
	// (the admission gate). 0 means twice the available CPUs.
	MaxConcurrent int
	// CacheSize is the LRU result cache capacity in entries. 0 means
	// 256; negative disables caching.
	CacheSize int
	// MaxLength caps the diameter length a request may ask for. Every
	// served length grows the index's level cache permanently and the
	// mining cost grows steeply with l, so an unbounded wire value
	// would let one request exhaust the process. 0 means 64.
	MaxLength int
	// MaxBatch caps how many requests one /v1/batch call may carry.
	// 0 means 64; negative disables the endpoint (404).
	MaxBatch int
	// IndexConcurrency, when non-zero, sets the index's own worker pool
	// (skinnymine.Index.SetConcurrency) — the budget backbones
	// materialization uses; Mine requests carry their own. > 0 sets that
	// many workers, < 0 sets one per available CPU, and 0 leaves the
	// index exactly as the embedder configured it. (The server used to
	// silently reset the caller-owned index to one-per-CPU; it no longer
	// touches it unless asked.)
	IndexConcurrency int
	// Logger receives the daemon's structured log lines (per-request
	// access lines at debug, slow queries at warn). nil means
	// slog.Default().
	Logger *slog.Logger
	// SlowQuery, when > 0, logs any mining run at least this slow at
	// warn level — with the run's spans attached, so the log line alone
	// says where the time went. 0 disables the slow-query log.
	SlowQuery time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiles expose internals and cost real CPU, so they are opt-in.
	Pprof bool
	// TraceStore is how many completed request traces the always-on
	// trace store retains (ring of the most recent, plus a few exemplars
	// per latency bucket so slow traces survive fast traffic). 0 means
	// 256; negative disables the store and the /debug/traces endpoint.
	TraceStore int
	// NoMorph disables morphing cache reuse: on a cache miss the LRU is
	// no longer scanned for a subsuming superset entry to post-filter
	// (skinnymine.CanMorph/Morph), and every miss mines. The optimizer
	// never changes response bytes — the knob exists for A/B timing and
	// for the equivalence tests' reference server.
	NoMorph bool
	// NoFamily disables shared-plan batch execution: /v1/batch entries
	// forming a query family (skinnymine.FamilyOptions) are mined
	// independently instead of once-plus-forks. Same byte-identity
	// guarantee and purpose as NoMorph.
	NoFamily bool
}

// Server serves mining requests over HTTP. Create one with New and
// mount Handler on an http.Server.
type Server struct {
	ix       *skinnymine.Index
	maxLen   int
	maxBatch int // 0 disables /v1/batch
	sem      chan struct{}
	cache    *lruCache // nil when caching is disabled
	flights  *flightGroup
	metrics  *metrics
	log      *slog.Logger
	slowQry  time.Duration // 0 disables the slow-query log
	pprofOn  bool
	traces   *obs.TraceStore // nil when the trace store is disabled
	noMorph  bool
	noFamily bool

	// mineFn runs one mining request under the leader request's context
	// (a distributed index propagates it into worker RPCs); tests
	// substitute it to observe coalescing and gate behavior
	// deterministically.
	mineFn func(context.Context, skinnymine.Options) (*skinnymine.Result, error)
}

// New returns a Server over the index.
func New(cfg Config) (*Server, error) {
	if cfg.Index == nil {
		return nil, fmt.Errorf("server: Config.Index is required")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxLength <= 0 {
		cfg.MaxLength = 64
	}
	switch {
	case cfg.MaxBatch == 0:
		cfg.MaxBatch = 64
	case cfg.MaxBatch < 0:
		cfg.MaxBatch = 0 // endpoint disabled
	}
	// The index's own concurrency (backbones materialization; Mine
	// requests carry their own) belongs to the embedder: touch it only
	// when explicitly asked.
	switch {
	case cfg.IndexConcurrency > 0:
		cfg.Index.SetConcurrency(cfg.IndexConcurrency)
	case cfg.IndexConcurrency < 0:
		cfg.Index.SetConcurrency(0) // one worker per available CPU
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	s := &Server{
		ix:       cfg.Index,
		maxLen:   cfg.MaxLength,
		maxBatch: cfg.MaxBatch,
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		flights:  newFlightGroup(),
		metrics:  newMetrics(),
		log:      cfg.Logger,
		slowQry:  cfg.SlowQuery,
		pprofOn:  cfg.Pprof,
		noMorph:  cfg.NoMorph,
		noFamily: cfg.NoFamily,
		mineFn:   cfg.Index.MineContext,
	}
	switch {
	case cfg.CacheSize == 0:
		s.cache = newLRUCache(256)
	case cfg.CacheSize > 0:
		s.cache = newLRUCache(cfg.CacheSize)
	}
	if cfg.TraceStore >= 0 {
		s.traces = obs.NewTraceStore(cfg.TraceStore, 0) // 0s: default 256 traces, 4 exemplars/bucket
	}
	return s, nil
}

// Handler returns the daemon's route table, wrapped in the
// observability middleware (request IDs, access log, 404 accounting).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/mine", s.handleMine)
	if s.maxBatch > 0 {
		mux.HandleFunc("POST /v1/batch", s.handleBatch)
	}
	mux.HandleFunc("GET /v1/backbones", s.handleBackbones)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.traces != nil {
		mux.HandleFunc("GET /debug/traces", s.handleTraces)
	}
	if s.pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.withObs(mux)
}

// statusWriter records the status and body size a handler produced, so
// the middleware can log and account for them after the fact.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// withObs is the outermost layer of every request: it assigns (or
// echoes) the X-Request-Id, installs it on the context so a
// distributed index forwards it to every worker RPC, emits one access
// log line per request, and counts responses that left the mux as 404
// — unroutable paths are otherwise invisible in the per-endpoint
// counters.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(obs.RequestIDHeader)
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set(obs.RequestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(sw, r.WithContext(obs.WithRequestID(r.Context(), id)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if sw.status == http.StatusNotFound {
			s.metrics.requests.notFound.Add(1)
		}
		// Probe endpoints log at debug so a scraper does not flood the
		// info log; real API traffic logs at info.
		level := slog.LevelInfo
		if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
			level = slog.LevelDebug
		}
		s.log.Log(r.Context(), level, "request",
			"method", r.Method, "path", r.URL.Path, "status", sw.status,
			"bytes", sw.bytes, "dur_ms", float64(time.Since(t0).Microseconds())/1000,
			"request_id", id)
	})
}

// MineRequest is the wire form of skinnymine.Options. Field names
// follow the CLI flags; Support may be omitted (0) to default to the
// index's σ.
type MineRequest struct {
	Support     int    `json:"support,omitempty"`
	Length      int    `json:"length"`
	MinLength   int    `json:"min_length,omitempty"`
	Delta       int    `json:"delta"`
	Measure     string `json:"measure,omitempty"` // "embeddings" (default) or "graphs"
	MaximalOnly bool   `json:"maximal_only,omitempty"`
	ClosedOnly  bool   `json:"closed_only,omitempty"`
	MaxPatterns int    `json:"max_patterns,omitempty"`
	Concurrency int    `json:"concurrency,omitempty"`
	// Where is a declarative pattern constraint (skinnymine.Options.
	// Where); invalid expressions are a 400. toOptions rewrites it to
	// the parsed form's canonical rendering, so whitespace variants of
	// one expression share a cache entry while any semantic difference
	// — including only in the topk clause — keys separately.
	Where string `json:"where,omitempty"`
}

// toOptions validates the request and lowers it onto the library
// options, resolving defaults against the index.
func (s *Server) toOptions(req *MineRequest) (skinnymine.Options, error) {
	var zero skinnymine.Options
	if req.Support == 0 {
		req.Support = s.ix.Sigma()
	}
	if req.Support != s.ix.Sigma() {
		return zero, fmt.Errorf("support %d does not match the index σ=%d", req.Support, s.ix.Sigma())
	}
	if req.Length > s.maxLen {
		return zero, fmt.Errorf("length %d exceeds this server's limit of %d", req.Length, s.maxLen)
	}
	if req.Delta < 0 {
		req.Delta = -1 // every negative value means unbounded; canonicalize
	}
	// Clamp the worker count: core only caps workers at the work-item
	// count, so an unbounded wire value could fan one admitted request
	// into millions of goroutines. Negative means "one per CPU" (0),
	// which also keeps the cache key canonical.
	if req.Concurrency < 0 {
		req.Concurrency = 0
	}
	if max := 4 * runtime.GOMAXPROCS(0); req.Concurrency > max {
		req.Concurrency = max
	}
	opt := skinnymine.Options{
		Support:     req.Support,
		Length:      req.Length,
		MinLength:   req.MinLength,
		Delta:       req.Delta,
		MaximalOnly: req.MaximalOnly,
		ClosedOnly:  req.ClosedOnly,
		MaxPatterns: req.MaxPatterns,
		Concurrency: req.Concurrency,
	}
	switch strings.ToLower(req.Measure) {
	case "", "embeddings":
		opt.Measure = skinnymine.EmbeddingCount
		req.Measure = "embeddings"
	case "graphs":
		opt.Measure = skinnymine.GraphCount
		req.Measure = "graphs"
	default:
		return zero, fmt.Errorf("measure %q is not \"embeddings\" or \"graphs\"", req.Measure)
	}
	// Canonicalize the constraint: whitespace variants of one
	// expression must share a cache entry, and an unparsable one is the
	// client's fault (400). The parsed form rides along on the options
	// so mining does not re-parse.
	if strings.TrimSpace(req.Where) != "" {
		c, err := skinnymine.ParseConstraint(req.Where)
		if err != nil {
			return zero, err
		}
		opt.WhereExpr = c
		req.Where = c.String()
	} else {
		req.Where = ""
	}
	// Remaining field validation is the library's: the daemon rejects
	// exactly what Mine and the CLI reject, with the same messages.
	if err := opt.Validate(); err != nil {
		return zero, err
	}
	return opt, nil
}

// cacheKey canonicalizes the (already default-resolved) request into
// the cache and coalescing key. Concurrency is excluded unless
// max_patterns is set: output is byte-identical at every worker count,
// except under a pattern budget where which patterns win the race may
// depend on scheduling — there, differently-concurrent requests must
// not share a cache entry. Where arrives here already rewritten to its
// canonical rendering (toOptions), so spelling variants of one
// constraint hit one entry and semantically different constraints —
// down to the topk clause — never collide.
func cacheKey(req *MineRequest) string {
	conc := 0
	if req.MaxPatterns > 0 {
		conc = req.Concurrency
	}
	return fmt.Sprintf("s=%d l=%d ml=%d d=%d m=%s max=%v cl=%v mp=%d c=%d w=%q",
		req.Support, req.Length, req.MinLength, req.Delta, req.Measure,
		req.MaximalOnly, req.ClosedOnly, req.MaxPatterns, conc, req.Where)
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.mine.Add(1)
	var req MineRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	opt, err := s.toOptions(&req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if r.URL.Query().Get("trace") == "1" {
		s.serveTraced(w, r, cacheKey(&req), opt)
		return
	}
	s.serveCached(w, r, cacheKey(&req), true, &opt, s.mineProduce("/v1/mine", opt))
}

// TraceResponse is the ?trace=1 payload: the normal mining result plus
// the spans of the run that produced it. Source says where those spans
// came from — "mined" (this request led a fresh run), "cache" (a hot
// key: the cached bytes plus the STORED trace of the original run),
// "coalesced" (this request shared another's in-flight run and shows
// that run's trace) or "morphed" (answered by post-filtering a cached
// superset; the spans are the run that mined that superset). TotalMs
// is the producing run's wall clock; on a cache hit the spans may be
// empty if the original run's trace has aged out of the trace store.
type TraceResponse struct {
	RequestID string                 `json:"request_id"`
	TraceID   string                 `json:"trace_id,omitempty"`
	Source    string                 `json:"source,omitempty"`
	TotalMs   float64                `json:"total_ms"`
	Spans     []skinnymine.TraceSpan `json:"spans"`
	Result    json.RawMessage        `json:"result"`
}

// serveTraced answers one mining request with its trace attached.
// Traced requests ride the same guard stack as untraced ones — cache,
// coalescing, admission gate, the hit/miss/coalesced ledger — because
// the trace store retains every run's spans: a hot key serves the
// cached bytes plus the stored trace of the original run instead of
// paying a full mine for visibility (it used to bypass the cache and
// re-mine). With the store disabled the old bypass behavior remains,
// as the only way to get spans then is to run fresh.
func (s *Server) serveTraced(w http.ResponseWriter, r *http.Request, key string, opt skinnymine.Options) {
	if s.traces == nil {
		s.serveTracedBypass(w, r, opt)
		return
	}
	p, source, err := s.execute(r, key, true, &opt, s.mineProduce("/v1/mine", opt))
	if err != nil {
		s.writeError(w, errStatus(err), err.Error())
		return
	}
	traceID := p.traceID
	resp := TraceResponse{
		RequestID: obs.RequestID(r.Context()),
		TraceID:   traceID,
		Result:    json.RawMessage(p.body),
	}
	switch source {
	case "hit":
		resp.Source = "cache"
	case "coalesced":
		resp.Source = "coalesced"
	case "morphed":
		// Answered by post-filtering a cached superset; the linked
		// trace is the run that mined that superset.
		resp.Source = "morphed"
	default:
		resp.Source = "mined"
	}
	if st, ok := s.traces.Get(traceID); ok {
		resp.TotalMs = st.DurationMs
		resp.Spans = toTraceSpans(st.Spans)
	}
	w.Header().Set("X-Result-Source", source)
	s.writeJSON(w, http.StatusOK, resp)
}

// serveTracedBypass is the pre-store ?trace=1 path, kept for servers
// running with the trace store disabled: bypass the cache and
// coalescing (a cached body has no spans to show), run fresh, return
// the run's own spans. Takes an admission slot and counts under runs
// and latency, but not the cache ledger.
func (s *Server) serveTracedBypass(w http.ResponseWriter, r *http.Request, opt skinnymine.Options) {
	release, err := s.admit(r.Context())
	if err != nil {
		s.writeError(w, errStatus(err), err.Error())
		return
	}
	defer release()
	tr := skinnymine.NewTrace()
	opt.Trace = tr
	s.metrics.mine.inFlight.Add(1)
	s.metrics.mine.runs.Add(1)
	t0 := time.Now()
	res, err := s.mineFn(r.Context(), opt)
	dur := time.Since(t0)
	s.metrics.mine.inFlight.Add(-1)
	if err != nil {
		s.metrics.mine.errors.Add(1)
		s.writeError(w, errStatus(err), err.Error())
		return
	}
	s.metrics.observeMine(dur)
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("X-Result-Source", "traced")
	s.writeJSON(w, http.StatusOK, TraceResponse{
		RequestID: obs.RequestID(r.Context()),
		Source:    "mined",
		TotalMs:   float64(dur.Microseconds()) / 1000,
		Spans:     tr.Spans(),
		Result:    json.RawMessage(buf.Bytes()),
	})
}

// produced is what one producer run yields: the serialized response
// body plus the trace ID (the leader request's ID) under which the
// run's spans live in the trace store — "" when nothing was recorded.
// Mining producers additionally carry the decoded result and the
// options that produced it, which is what the multi-query optimizer
// consumes: a cached produced is a morph source (tryMorph) and a
// family mine's produced forks into its members (runFamily). morphed
// marks a value answered by post-filtering a superset instead of a
// run, so execute can account it without re-deriving how it was made.
type produced struct {
	body    []byte
	traceID string
	res     *skinnymine.Result
	opts    skinnymine.Options
	morphed bool
}

// mineProduce returns the producer for one mining request: run the
// request, record latency and — with the trace store on — the run's
// full span set, serialize the wire body. Shared by /v1/mine and
// /v1/batch so both feed the same /metrics mine section. The context
// is the leader request's: its deadline and cancellation reach a
// distributed index's worker RPCs.
func (s *Server) mineProduce(endpoint string, opt skinnymine.Options) func(context.Context) (produced, error) {
	return func(ctx context.Context) (produced, error) {
		s.metrics.mine.inFlight.Add(1)
		defer s.metrics.mine.inFlight.Add(-1)
		s.metrics.mine.runs.Add(1)
		// With the trace store on, every run records spans — that is the
		// store's point: the fleet explains itself after the fact, not
		// only when ?trace=1 was guessed in advance. Without it, spans
		// are still recorded speculatively for the slow-query log
		// (whether a run was slow is only known once it finishes).
		var qt *obs.Trace
		if (s.traces != nil || s.slowQry > 0) && obs.TraceFromContext(ctx) == nil {
			qt = obs.NewTrace()
			ctx = obs.NewContext(ctx, qt)
		}
		t0 := time.Now()
		res, err := s.mineFn(ctx, opt)
		dur := time.Since(t0)
		if err != nil {
			return produced{}, err
		}
		s.metrics.observeMine(dur)
		traceID := obs.RequestID(ctx)
		if s.traces != nil && qt != nil {
			spans := qt.Snapshot()
			s.traces.Record(obs.StoredTrace{
				ID: traceID, Endpoint: endpoint, Source: "miss", Start: t0,
				DurationMs: float64(dur.Microseconds()) / 1000,
				Workers:    countWorkerShards(spans), Spans: spans,
			})
		}
		if s.slowQry > 0 && dur >= s.slowQry {
			s.metrics.mine.slowQueries.Add(1)
			attrs := []any{
				"dur_ms", float64(dur.Microseconds()) / 1000,
				"length", opt.Length, "delta", opt.Delta,
				"request_id", obs.RequestID(ctx),
			}
			if s.traces != nil {
				// The stored trace outlives this log line; link it.
				attrs = append(attrs, "trace", "/debug/traces?id="+traceID)
			}
			if qt != nil {
				if b, err := json.Marshal(qt.Snapshot()); err == nil {
					attrs = append(attrs, "spans", string(b))
				}
			}
			s.log.Warn("slow query", attrs...)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			return produced{}, err
		}
		p := produced{body: buf.Bytes(), traceID: traceID, res: res, opts: opt}
		if s.noMorph && s.noFamily {
			// Nothing will ever read the decoded result; keep only the
			// bytes so the cache's memory profile stays what it was.
			p.res = nil
		}
		return p, nil
	}
}

// serveCached runs the throughput guards around produce (execute) and
// writes the outcome as an HTTP response. morphTo, when non-nil,
// additionally lets a cache miss try the morph scan first (execute).
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key string, trackMine bool, morphTo *skinnymine.Options, produce func(context.Context) (produced, error)) {
	p, source, err := s.execute(r, key, trackMine, morphTo, produce)
	if err != nil {
		// Input was validated before produce, so a failed run is the
		// server's problem: 503 for admission cancellation, 500 otherwise.
		s.writeError(w, errStatus(err), err.Error())
		return
	}
	s.writeBody(w, p.body, source)
}

// admit takes one admission-gate slot, recording how long the wait
// took; the returned release must be called when the work is done. A
// context cancellation while queued fails with errAdmissionCanceled.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	t0 := time.Now()
	select {
	case s.sem <- struct{}{}:
		s.metrics.admissionWait.Observe(time.Since(t0))
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: %v", errAdmissionCanceled, ctx.Err())
	}
}

// errStatus maps a failed run to its HTTP status. Admission
// cancellation and an unreachable shard worker are both 503: the server
// is briefly unable to do the work, and retrying is safe — a
// distributed mine that loses a worker fails completely (caches
// untouched), never with a partial answer.
func errStatus(err error) int {
	if errors.Is(err, errAdmissionCanceled) || errors.Is(err, skinnymine.ErrUnavailable) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// execute runs the three throughput guards around produce: the LRU
// response cache under key, singleflight coalescing of identical
// concurrent requests, and the bounded-concurrency admission gate.
// produce runs with an admission slot held and returns the response
// body, which is cached on success and tagged with where it came from
// ("hit", "miss", "morphed" or "coalesced") plus the trace ID of the
// producing run (so ?trace=1 and /debug/traces can find its spans
// later). morphTo, when non-nil, is the request's options in canonical
// form: a leader that missed the LRU first scans it for a subsuming
// superset entry and, when containment is provable, answers by
// post-filtering the cached patterns (tryMorph) without taking an
// admission slot — no search runs, so the "morphed" outcome counts
// under neither misses nor runs. trackMine folds cache and error
// counts into the /metrics mine section and records span-less
// trace-store entries for hit/morphed/coalesced requests (the mining
// endpoints' bookkeeping; other endpoints only ride the guards). Both
// /v1/mine and every unique /v1/batch entry funnel through here, so
// batch and single requests share one cache, one coalescing domain,
// and one admission gate.
func (s *Server) execute(r *http.Request, key string, trackMine bool, morphTo *skinnymine.Options, produce func(context.Context) (produced, error)) (p produced, source string, err error) {
	if s.cache != nil {
		if hit, ok := s.cache.get(key); ok {
			if trackMine {
				s.metrics.mine.cacheHits.Add(1)
				s.recordServed(r, "hit", hit.traceID)
			}
			return hit, "hit", nil
		}
	}

	run := func() (produced, error) {
		if morphTo != nil && !s.noMorph && s.cache != nil {
			if mp, ok := s.tryMorph(key, *morphTo); ok {
				return mp, nil
			}
		}
		// A cache miss is counted HERE, by the one request that became
		// the leader — not by every request that missed the LRU. A
		// follower that coalesces onto an in-flight run counts only
		// under coalesced; counting it as a miss too would overstate
		// misses by exactly the coalesced count and understate the hit
		// rate (see MineMetrics for the denominator semantics).
		if s.cache != nil && trackMine {
			s.metrics.mine.cacheMisses.Add(1)
		}
		release, err := s.admit(r.Context())
		if err != nil {
			return produced{}, err
		}
		defer release()
		p, err := produce(r.Context())
		if err != nil {
			return produced{}, err
		}
		if s.cache != nil {
			s.cache.put(key, p)
		}
		return p, nil
	}
	var shared bool
	for {
		p, err, shared = s.flights.do(r.Context(), key, run)
		// A shared admission-cancel error is the leader's client
		// vanishing, not ours: retry with this request as the leader.
		// (Our own cancellation fails the retry guard — r.Context() is
		// already dead — so a canceled follower returns promptly.)
		if shared && errors.Is(err, errAdmissionCanceled) && r.Context().Err() == nil {
			continue
		}
		break
	}
	if shared && trackMine {
		s.metrics.mine.coalesced.Add(1)
	}
	if err != nil {
		if trackMine {
			s.metrics.mine.errors.Add(1)
		}
		return produced{}, "", err
	}
	switch {
	case shared:
		source = "coalesced"
		if trackMine {
			s.recordServed(r, "coalesced", p.traceID)
		}
	case p.morphed:
		source = "morphed"
		if trackMine {
			s.metrics.mine.morphed.Add(1)
			s.recordServed(r, "morphed", p.traceID)
		}
	default:
		source = "miss"
	}
	return p, source, nil
}

// tryMorph attempts to answer a cache miss without mining: scan the
// LRU (hottest first) for an entry whose options provably subsume the
// request's (skinnymine.CanMorph) and post-filter its decoded result
// into the requested one (skinnymine.Morph). The morphed response is
// serialized and cached under the request's own key, so the NEXT
// identical request is a plain hit — and, carrying its own decoded
// result, the morphed entry can itself seed further morphs. The
// returned value keeps the superset run's trace ID: that run is where
// the patterns actually came from, and /debug/traces should say so.
// The stats section of a morphed body is zero — no search ran — while
// the patterns bytes are identical to a fresh mine's; the equivalence
// tests pin exactly that.
func (s *Server) tryMorph(key string, to skinnymine.Options) (produced, bool) {
	for _, cand := range s.cache.morphCandidates() {
		if !skinnymine.CanMorph(cand.opts, to) {
			continue
		}
		res, err := skinnymine.Morph(cand.res, cand.opts, to)
		if err != nil {
			continue
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			continue
		}
		p := produced{body: buf.Bytes(), traceID: cand.traceID, res: res, opts: to, morphed: true}
		s.cache.put(key, p)
		return p, true
	}
	return produced{}, false
}

// recordServed retains a span-less trace-store entry for a request
// answered without leading a run — a cache hit or a coalesced follower
// — pointing at the producing run's trace via RunID. /debug/traces
// then lists every mining request with how it was served, not only the
// runs.
func (s *Server) recordServed(r *http.Request, source, runID string) {
	if s.traces == nil {
		return
	}
	s.traces.Record(obs.StoredTrace{
		ID:       obs.RequestID(r.Context()),
		Endpoint: r.URL.Path,
		Source:   source,
		Start:    time.Now(),
		RunID:    runID,
	})
}

// writeBody emits a pre-serialized ResultJSON, tagging where it came
// from so clients and tests can distinguish cache hits. A failed write
// means the client hung up; log it at debug rather than dropping it.
func (s *Server) writeBody(w http.ResponseWriter, body []byte, source string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Result-Source", source)
	if _, err := w.Write(body); err != nil {
		s.log.Debug("response write failed", "source", source, "err", err)
	}
}

// BackbonesResponse is the /v1/backbones payload: the Stage I minimal
// patterns (frequent l-paths) as label sequences.
type BackbonesResponse struct {
	L         int        `json:"l"`
	Count     int        `json:"count"`
	Backbones [][]string `json:"backbones"`
}

func (s *Server) handleBackbones(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.backbones.Add(1)
	raw := r.URL.Query().Get("l")
	if raw == "" {
		s.writeError(w, http.StatusBadRequest, "missing query parameter l")
		return
	}
	l, err := strconv.Atoi(raw)
	if err != nil || l < 1 {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("l must be a positive integer, got %q", raw))
		return
	}
	if l > s.maxLen {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("l %d exceeds this server's limit of %d", l, s.maxLen))
		return
	}
	// A cache-miss backbones request materializes a Stage I level —
	// real mining work — so it rides the same guards as /v1/mine.
	// (No morphTo: backbone listings are not mining results.)
	s.serveCached(w, r, fmt.Sprintf("backbones l=%d", l), false, nil, func(ctx context.Context) (produced, error) {
		bbs, err := s.ix.MinimalBackbonesContext(ctx, l)
		if err != nil {
			return produced{}, err
		}
		if bbs == nil {
			bbs = [][]string{}
		}
		body, err := marshalIndented(BackbonesResponse{L: l, Count: len(bbs), Backbones: bbs})
		return produced{body: body}, err
	})
}

// HealthResponse is the /healthz payload. Workers is present only for
// a distributed index: each shard worker's last observed health. The
// daemon itself stays "ok" with workers down — cached levels still
// serve — and requests needing a dead shard fail with 503.
type HealthResponse struct {
	Status             string                    `json:"status"`
	Graphs             int                       `json:"graphs"`
	Sigma              int                       `json:"sigma"`
	Shards             int                       `json:"shards"`
	MaterializedLevels []int                     `json:"materialized_levels"`
	Workers            []skinnymine.WorkerStatus `json:"workers,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.healthz.Add(1)
	levels := s.ix.MaterializedLevels()
	if levels == nil {
		levels = []int{}
	}
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:             "ok",
		Graphs:             s.ix.NumGraphs(),
		Sigma:              s.ix.Sigma(),
		Shards:             s.ix.Shards(),
		MaterializedLevels: levels,
		Workers:            s.ix.WorkerHealth(),
	})
}
