package server

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// lruCache is a fixed-capacity LRU over produced results. Each value
// carries the canonical JSON bytes a request produced — so a hit
// replays the exact body the first caller saw — plus the trace ID of
// the run that produced them (so ?trace=1 on a hot key can serve the
// stored trace of the original run instead of re-mining) and, unless
// the server disabled both morphing and family sharing, the decoded
// result and its options, which is what lets a cache miss be answered
// by post-filtering a subsuming entry (morphCandidates).
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	p   produced
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached produced value for key, promoting it to most
// recent.
func (c *lruCache) get(key string) (produced, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return produced{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).p, true
}

// put inserts or refreshes key, evicting the least recent entry when
// over capacity.
func (c *lruCache) put(key string, p produced) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).p = p
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, p: p})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// morphCandidates returns the entries a morph scan may post-filter:
// every entry still holding its decoded result, most recently used
// first (the hottest superset answers first). The entries are COPIED
// out under the lock — a produced value is self-contained — so the
// scan itself runs lock-free and is immune to concurrent eviction:
// an entry evicted mid-scan still answers correctly from the copy.
// Scanning does not promote: reading an entry as a morph source says
// nothing about how hot its own key is.
func (c *lruCache) morphCandidates() []produced {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]produced, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		if p := el.Value.(*lruEntry).p; p.res != nil {
			out = append(out, p)
		}
	}
	return out
}

// len returns the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flightGroup coalesces concurrent calls that share a key: the first
// caller runs fn, every caller that arrives while it is in flight waits
// for and shares the same result (the singleflight pattern, implemented
// locally because the module deliberately has no dependencies).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	waiters atomic.Int64 // callers parked on done (canceled ones leave); observed by tests
	res     produced
	err     error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn under key, returning its result and whether this caller
// shared another caller's in-flight run. The call is always
// deregistered and its waiters released, even when fn panics (waiters
// then see an error while the panic propagates to the leader's
// recovery handler).
//
// ctx is the CALLER's context, not the leader's: a follower whose own
// request dies (client disconnect, deadline) stops waiting immediately
// and gets an admission-canceled error with shared=true — the leader's
// run is untouched, and no goroutine or connection stays parked on work
// its requester will never read. Before this select existed a follower
// was blind to its own cancellation until the leader finished.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (produced, error)) (res produced, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.waiters.Add(1)
		select {
		case <-c.done:
			return c.res, c.err, true
		case <-ctx.Done():
			c.waiters.Add(-1)
			return produced{}, fmt.Errorf("%w: %v", errAdmissionCanceled, ctx.Err()), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		if r := recover(); r != nil {
			c.err = fmt.Errorf("server: in-flight run panicked: %v", r)
			close(c.done)
			panic(r)
		}
		close(c.done)
	}()
	c.res, c.err = fn()
	return c.res, c.err, false
}
