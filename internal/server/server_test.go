package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"skinnymine"
)

// buildIndex wires the trajectory workload used across the repo's
// public-API tests: two copies of a 5-stop route plus noise.
func buildIndex(t testing.TB) *skinnymine.Index {
	t.Helper()
	g := skinnymine.NewGraph()
	route := []string{"station", "cafe", "park", "museum", "plaza"}
	for c := 0; c < 2; c++ {
		var prev skinnymine.VertexID
		for i, l := range route {
			v := g.AddVertex(l)
			if i > 0 {
				if err := g.AddEdge(prev, v); err != nil {
					t.Fatal(err)
				}
			}
			prev = v
		}
		tw := g.AddVertex("shop")
		if err := g.AddEdge(prev-2, tw); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := skinnymine.BuildIndex([]*skinnymine.Graph{g}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Index == nil {
		cfg.Index = buildIndex(t)
	}
	// Quiet by default so benchmarks don't measure (and tests don't
	// print) access-log lines; tests asserting on logs pass their own.
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postMine(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/mine", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeBody[T any](t *testing.T, r io.Reader) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(r).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	h := decodeBody[HealthResponse](t, resp.Body)
	if h.Status != "ok" || h.Graphs != 1 || h.Sigma != 2 {
		t.Errorf("health %+v", h)
	}
}

func TestMineMatchesLibrary(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp := postMine(t, ts, `{"length":4,"delta":1}`)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	got := decodeBody[skinnymine.ResultJSON](t, resp.Body)

	want, err := s.ix.Mine(skinnymine.Options{Support: 2, Length: 4, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Patterns) == 0 || len(got.Patterns) != len(want.Patterns) {
		t.Fatalf("served %d patterns, library mined %d", len(got.Patterns), len(want.Patterns))
	}
	for i, p := range got.Patterns {
		w := want.Patterns[i].ToJSON()
		if p.Support != w.Support || p.DiameterLength != w.DiameterLength ||
			len(p.Labels) != len(w.Labels) || len(p.Edges) != len(w.Edges) {
			t.Errorf("pattern %d differs from library result", i)
		}
	}
	if got.Stats.PathsMined == 0 {
		t.Error("stats missing from served result")
	}
}

func TestMineCacheHitOnRepeat(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := `{"length":4,"delta":1}`

	first := postMine(t, ts, req)
	firstBody, _ := io.ReadAll(first.Body)
	if src := first.Header.Get("X-Result-Source"); src != "miss" {
		t.Fatalf("first request source %q, want miss", src)
	}
	second := postMine(t, ts, req)
	secondBody, _ := io.ReadAll(second.Body)
	if src := second.Header.Get("X-Result-Source"); src != "hit" {
		t.Fatalf("repeat request source %q, want hit", src)
	}
	if !bytes.Equal(firstBody, secondBody) {
		t.Error("cache hit served a different body")
	}

	m := s.metrics.snapshot()
	if m.Mine.CacheHits != 1 || m.Mine.CacheMisses != 1 || m.Mine.Runs != 1 {
		t.Errorf("hits=%d misses=%d runs=%d, want 1/1/1", m.Mine.CacheHits, m.Mine.CacheMisses, m.Mine.Runs)
	}
	if m.Mine.CacheHitRate != 0.5 {
		t.Errorf("hit rate %v, want 0.5", m.Mine.CacheHitRate)
	}
}

// TestMineCoalescesConcurrentIdentical holds the first mining run open
// until more identical requests are queued behind it, then checks they
// all shared that single run.
func TestMineCoalescesConcurrentIdentical(t *testing.T) {
	const followers = 4
	s, ts := newTestServer(t, Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	realMine := s.mineFn
	s.mineFn = func(ctx context.Context, opt skinnymine.Options) (*skinnymine.Result, error) {
		close(entered) // second entry would panic: exactly one run allowed
		<-release
		return realMine(ctx, opt)
	}

	req := `{"length":4,"delta":1}`
	bodies := make([][]byte, followers+1)
	var wg sync.WaitGroup
	do := func(i int) {
		defer wg.Done()
		resp := postMine(t, ts, req)
		bodies[i], _ = io.ReadAll(resp.Body)
	}
	wg.Add(1)
	go do(0)
	<-entered // leader is inside the mine; followers must coalesce
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go do(i)
	}
	// Wait until every follower is parked on the in-flight call before
	// releasing the leader.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.flights.mu.Lock()
		var waiting int64
		for _, c := range s.flights.calls {
			waiting += c.waiters.Load()
		}
		s.flights.mu.Unlock()
		if waiting == followers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers queued on the in-flight run", waiting, followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i, b := range bodies {
		if !bytes.Equal(b, bodies[0]) {
			t.Errorf("response %d differs from the leader's", i)
		}
	}
	m := s.metrics.snapshot()
	if m.Mine.Runs != 1 {
		t.Errorf("%d mining runs, want 1", m.Mine.Runs)
	}
	if m.Mine.Coalesced != followers {
		t.Errorf("%d coalesced requests, want %d", m.Mine.Coalesced, followers)
	}
}

// TestConcurrentMixedRequests fans distinct lengths at one server under
// -race: cache-miss materialization of different levels must be safe.
func TestConcurrentMixedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 4})
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for round := 0; round < 3; round++ {
		for l := 2; l <= 4; l++ {
			wg.Add(1)
			go func(l int) {
				defer wg.Done()
				resp := postMine(t, ts, fmt.Sprintf(`{"length":%d,"delta":1}`, l))
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("length %d: status %d", l, resp.StatusCode)
				}
			}(l)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestBackbones(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/backbones?l=4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	b := decodeBody[BackbonesResponse](t, resp.Body)
	if b.L != 4 || b.Count == 0 || b.Count != len(b.Backbones) {
		t.Fatalf("backbones %+v", b)
	}
	for _, bb := range b.Backbones {
		if len(bb) != 5 {
			t.Errorf("backbone %v should have 5 labels", bb)
		}
	}
	// Backbones ride the same response cache as /v1/mine.
	again, err := http.Get(ts.URL + "/v1/backbones?l=4")
	if err != nil {
		t.Fatal(err)
	}
	again.Body.Close()
	if src := again.Header.Get("X-Result-Source"); src != "hit" {
		t.Errorf("repeat backbones request source %q, want hit", src)
	}
}

func TestBackbonesBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, q := range []string{"", "?l=", "?l=abc", "?l=0", "?l=-3", "?l=100000"} {
		resp, err := http.Get(ts.URL + "/v1/backbones" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestMineBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body, wantErr string
	}{
		{"malformed JSON", `{"length":`, "invalid request body"},
		{"unknown field", `{"length":4,"bogus":1}`, "unknown field"},
		{"zero length", `{"delta":1}`, "length must be >= 1"},
		{"support mismatch", `{"support":9,"length":4}`, "does not match the index"},
		{"over the length limit", `{"length":100000}`, "exceeds this server's limit"},
		{"bad measure", `{"length":4,"measure":"vibes"}`, "measure"},
		{"bad min_length", `{"length":3,"min_length":5}`, "min_length"},
	}
	for _, tc := range cases {
		resp := postMine(t, ts, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
			continue
		}
		e := decodeBody[errorJSON](t, resp.Body)
		if !strings.Contains(e.Error, tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, e.Error, tc.wantErr)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/mine")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/mine: status %d, want 405", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postMine(t, ts, `{"length":4,"delta":1}`)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	m := decodeBody[MetricsSnapshot](t, resp.Body)
	if m.Requests["mine"] != 1 || m.Requests["metrics"] != 1 {
		t.Errorf("requests_total %v", m.Requests)
	}
	if m.Mine.Runs != 1 || m.Mine.LatencyCount != 1 {
		t.Errorf("mine metrics %+v", m.Mine)
	}
}

func TestDeltaNegativeCanonicalized(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := postMine(t, ts, `{"length":4,"delta":-1}`)
	io.ReadAll(a.Body)
	b := postMine(t, ts, `{"length":4,"delta":-7}`)
	if src := b.Header.Get("X-Result-Source"); src != "hit" {
		t.Errorf("delta -7 should share delta -1's cache entry, got source %q", src)
	}
}

func TestCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheSize: -1})
	if s.cache != nil {
		t.Fatal("negative CacheSize should disable the cache")
	}
	postMine(t, ts, `{"length":4,"delta":1}`)
	resp := postMine(t, ts, `{"length":4,"delta":1}`)
	if src := resp.Header.Get("X-Result-Source"); src == "hit" {
		t.Error("cache disabled but request hit")
	}
	m := s.metrics.snapshot()
	if m.Mine.Runs != 2 {
		t.Error("cache disabled should mine every request")
	}
	if m.Mine.CacheHits != 0 || m.Mine.CacheMisses != 0 {
		t.Errorf("hits=%d misses=%d, want 0/0 with the cache disabled", m.Mine.CacheHits, m.Mine.CacheMisses)
	}
}

// TestFlightGroupSurvivesPanic pins the cleanup contract: a panicking
// run must release its waiters with an error and deregister the key so
// later requests do not hang.
func TestFlightGroupSurvivesPanic(t *testing.T) {
	g := newFlightGroup()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic should propagate to the leader")
			}
		}()
		g.do(context.Background(), "k", func() (produced, error) { panic("boom") })
	}()
	if len(g.calls) != 0 {
		t.Fatal("panicked call left registered")
	}
	res, err, shared := g.do(context.Background(), "k", func() (produced, error) { return produced{body: []byte("ok")}, nil })
	if err != nil || shared || string(res.body) != "ok" {
		t.Fatalf("key unusable after panic: body=%q err=%v shared=%v", res.body, err, shared)
	}
}

func TestNewRequiresIndex(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without an index should fail")
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", produced{body: []byte("1"), traceID: "t-a"})
	c.put("b", produced{body: []byte("2")})
	c.get("a") // promote a
	c.put("c", produced{body: []byte("3")})
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if p, ok := c.get("a"); !ok || p.traceID != "t-a" {
		t.Error("a should have survived with its trace ID")
	}
	if c.len() != 2 {
		t.Errorf("len %d, want 2", c.len())
	}
}

// TestMorphCandidatesCopyOutlivesEviction pins the scan-safety
// contract: candidates are copied out under the lock, so an entry
// evicted between the scan and its use still answers from the copy,
// and entries cached without a decoded result are never offered.
func TestMorphCandidatesCopyOutlivesEviction(t *testing.T) {
	c := newLRUCache(1)
	c.put("a", produced{body: []byte("1"), res: &skinnymine.Result{}, opts: skinnymine.Options{Support: 2, Length: 4}})
	cands := c.morphCandidates()
	c.put("b", produced{body: []byte("2")}) // evicts a; no res — not a candidate
	if len(cands) != 1 || string(cands[0].body) != "1" || cands[0].res == nil {
		t.Fatalf("pre-eviction candidate copy mangled: %+v", cands)
	}
	if got := c.morphCandidates(); len(got) != 0 {
		t.Errorf("res-less entry offered as a morph candidate: %d", len(got))
	}
}

// TestMorphChainUnderEviction drives morphing on a capacity-1 cache:
// each morphed answer is cached under its own key and immediately
// evicts its source, so the next narrower request must chain off the
// previously MORPHED entry — and once every superset is gone, a wider
// request is an honest miss again (a narrower entry can never answer
// a wider request).
func TestMorphChainUnderEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheSize: 1})
	post := func(body, wantSource string) {
		t.Helper()
		resp := postMine(t, ts, body)
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d for %s", resp.StatusCode, body)
		}
		if src := resp.Header.Get("X-Result-Source"); src != wantSource {
			t.Errorf("%s: source %q, want %q", body, src, wantSource)
		}
	}
	post(`{"length":4,"delta":1}`, "miss")
	post(`{"length":4,"delta":1,"where":"vertices<=8"}`, "morphed")
	// The unconstrained superset is evicted now; this chains off the
	// morphed vertices<=8 entry.
	post(`{"length":4,"delta":1,"where":"vertices<=8 && edges<=9"}`, "morphed")
	// Every wider entry is gone: wider requests really mine again.
	post(`{"length":4,"delta":1}`, "miss")
	if n := s.cache.len(); n != 1 {
		t.Errorf("cache holds %d entries, want 1", n)
	}
	if m := s.metrics.snapshot(); m.Mine.Morphed != 2 || m.Mine.CacheMisses != 2 {
		t.Errorf("morphed=%d misses=%d, want 2/2", m.Mine.Morphed, m.Mine.CacheMisses)
	}
}

// TestMineWhereFilters pins that a where constraint reaches the miner:
// the constrained result is the unconstrained one post-filtered, and
// the daemon matches the library on the same options.
func TestMineWhereFilters(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp := postMine(t, ts, `{"length":4,"delta":1,"where":"contains(label='shop')"}`)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	got := decodeBody[skinnymine.ResultJSON](t, resp.Body)

	all, err := s.ix.Mine(skinnymine.Options{Support: 2, Length: 4, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.ix.Mine(skinnymine.Options{Support: 2, Length: 4, Delta: 1, Where: "contains(label='shop')"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Patterns) != len(want.Patterns) {
		t.Fatalf("served %d patterns, library mined %d", len(got.Patterns), len(want.Patterns))
	}
	if len(got.Patterns) == 0 || len(got.Patterns) >= len(all.Patterns) {
		t.Fatalf("where filtered %d -> %d patterns; expected a strict, non-empty subset",
			len(all.Patterns), len(got.Patterns))
	}
}

// TestCacheKeyWhere pins the cache-key canonicalization rules for the
// where field: requests differing only in where (or only in the topk
// clause) never collide — each lands its own cache entry, though a
// subsumable one is answered by morphing the warm superset instead of
// mining — while spelling variants of one expression hit one entry.
func TestCacheKeyWhere(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	post := func(body, wantSource string) {
		t.Helper()
		resp := postMine(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d for %s: %s", resp.StatusCode, body, b)
		}
		io.Copy(io.Discard, resp.Body)
		if src := resp.Header.Get("X-Result-Source"); src != wantSource {
			t.Errorf("%s: source %q, want %q", body, src, wantSource)
		}
	}

	post(`{"length":4,"delta":1}`, "miss")
	// Adding a where must not collide with the unconstrained entry —
	// but the warm unconstrained superset answers it by post-filtering.
	post(`{"length":4,"delta":1,"where":"vertices<=6"}`, "morphed")
	// Same expression, different spelling: canonicalized, so a hit.
	post(`{"length":4,"delta":1,"where":"  vertices  <=  6 "}`, "hit")
	post(`{"length":4,"delta":1,"where":"(vertices<=6)"}`, "hit")
	// Different bound: a distinct entry (morph-served, not colliding).
	post(`{"length":4,"delta":1,"where":"vertices<=7"}`, "morphed")
	// Only the topk clause differs: still distinct entries.
	post(`{"length":4,"delta":1,"where":"vertices<=6 && topk(3)"}`, "morphed")
	post(`{"length":4,"delta":1,"where":"vertices<=6 && topk(2)"}`, "morphed")
	// topk(3) spelled with an explicit measure: same canonical form.
	post(`{"length":4,"delta":1,"where":"topk(3,support) && vertices<=6"}`, "hit")
	// And the unconstrained entry is still warm.
	post(`{"length":4,"delta":1}`, "hit")

	if n := s.cache.len(); n != 5 {
		t.Errorf("cache holds %d entries, want 5", n)
	}
}

// TestMineWhereInvalid pins that a bad constraint is the client's
// fault: 400, with the parser's diagnostic passed through.
func TestMineWhereInvalid(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct{ body, wantErr string }{
		{`{"length":4,"where":"vertices<="}`, "non-negative integer"},
		{`{"length":4,"where":"verts<=3"}`, "unknown predicate"},
		{`{"length":4,"where":"topk(0)"}`, "topk count"},
		{`{"length":4,"where":"vertices<=3 || topk(2)"}`, "top-level conjunct"},
	}
	for _, tc := range cases {
		resp := postMine(t, ts, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.body, resp.StatusCode)
			continue
		}
		e := decodeBody[errorJSON](t, resp.Body)
		if !strings.Contains(e.Error, tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.body, e.Error, tc.wantErr)
		}
	}
}
