package server

import (
	"net/http"
	"testing"

	"skinnymine/internal/obs"
)

// TestDebugTracesList: the always-on store records every mining
// request — misses with spans, hits as span-less rows pointing at the
// producing run — and GET /debug/traces lists them newest first.
func TestDebugTracesList(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	miss := postMine(t, ts, `{"length":4,"delta":1}`)
	missID := miss.Header.Get(obs.RequestIDHeader)
	hit := postMine(t, ts, `{"length":4,"delta":1}`)
	hitID := hit.Header.Get(obs.RequestIDHeader)

	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	list := decodeBody[TraceListResponse](t, resp.Body)
	if list.Count != 2 || len(list.Traces) != 2 {
		t.Fatalf("count=%d traces=%d, want 2/2", list.Count, len(list.Traces))
	}
	// Newest first: the hit row, then the run it was served from.
	if list.Traces[0].ID != hitID || list.Traces[0].Source != "hit" {
		t.Errorf("row 0 = %+v, want the hit %s", list.Traces[0], hitID)
	}
	if list.Traces[0].RunID != missID {
		t.Errorf("hit row run_id %q, want producing run %q", list.Traces[0].RunID, missID)
	}
	if list.Traces[1].ID != missID || list.Traces[1].Source != "miss" {
		t.Errorf("row 1 = %+v, want the miss %s", list.Traces[1], missID)
	}
	if list.Traces[1].Endpoint != "/v1/mine" {
		t.Errorf("miss row endpoint %q, want /v1/mine", list.Traces[1].Endpoint)
	}
	if list.Traces[1].DurationMs <= 0 {
		t.Errorf("miss row duration %v, want > 0", list.Traces[1].DurationMs)
	}
}

// TestDebugTracesDetail: ?id= returns the retained run as a span tree
// with non-negative offsets; an unknown ID is a 404, and so is the
// whole endpoint on a server with the store disabled.
func TestDebugTracesDetail(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	miss := postMine(t, ts, `{"length":4,"delta":1}`)
	missID := miss.Header.Get(obs.RequestIDHeader)

	resp, err := http.Get(ts.URL + "/debug/traces?id=" + missID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	det := decodeBody[TraceDetail](t, resp.Body)
	if det.ID != missID || det.Source != "miss" {
		t.Fatalf("detail %+v, want the run %s", det.TraceSummary, missID)
	}
	names := map[string]bool{}
	var walk func(nodes []SpanNode)
	walk = func(nodes []SpanNode) {
		for _, n := range nodes {
			names[n.Name] = true
			if n.StartUs < 0 || n.DurationUs < 0 {
				t.Errorf("span %s has negative offset/duration: %d/%d", n.Name, n.StartUs, n.DurationUs)
			}
			walk(n.Children)
		}
	}
	walk(det.Spans)
	if !names["stage1"] || !names["stage2"] {
		t.Errorf("span tree lacks stage spans; got %v", names)
	}

	notFound, err := http.Get(ts.URL + "/debug/traces?id=no-such-trace")
	if err != nil {
		t.Fatal(err)
	}
	notFound.Body.Close()
	if notFound.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", notFound.StatusCode)
	}

	_, off := newTestServer(t, Config{TraceStore: -1})
	gone, err := http.Get(off.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	gone.Body.Close()
	if gone.StatusCode != http.StatusNotFound {
		t.Errorf("store disabled: /debug/traces status %d, want 404", gone.StatusCode)
	}
}

// TestTracesRequestCounter: /debug/traces hits land under
// requests_total{endpoint="traces"} like every other route.
func TestTracesRequestCounter(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/debug/traces")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := s.metrics.snapshot().Requests["traces"]; got != 3 {
		t.Errorf("requests_total traces = %d, want 3", got)
	}
}

// TestBatchLatencyHistogram: every answered batch entry — duplicates
// included — observes its unit's serve time in the per-entry batch
// latency histogram.
func TestBatchLatencyHistogram(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp := postBatch(t, ts, `{"requests":[
		{"length":4,"delta":1},
		{"length":4,"delta":1},
		{"length":3,"delta":1},
		{"length":0,"delta":1}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	br := decodeBody[BatchResponse](t, resp.Body)
	answered := 0
	for _, it := range br.Results {
		if it.Status == http.StatusOK {
			answered++
		}
	}
	// length 0 fails validation: 3 answered entries (miss + duplicate
	// + miss), each with a latency sample.
	m := s.metrics.snapshot()
	if answered != 3 || m.Batch.LatencyMs.Count != 3 {
		t.Errorf("answered=%d latency samples=%d, want 3/3", answered, m.Batch.LatencyMs.Count)
	}
	if m.Batch.LatencyMs.SumMs < 0 {
		t.Errorf("latency sum %v, want >= 0", m.Batch.LatencyMs.SumMs)
	}
}
