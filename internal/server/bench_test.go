package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// Batch-vs-sequential serving benchmark: the same eight distinct mining
// requests issued as eight sequential /v1/mine round trips versus one
// /v1/batch call. A fresh server per iteration keeps the result cache
// cold, so both variants do the same mining work; the difference is
// round trips, JSON decoding, and scheduling (the batch's unique misses
// enter the admission gate together). scripts/bench_baseline.sh records
// both in the per-PR bench JSON.

func benchRequests() []string {
	reqs := make([]string, 8)
	for i := range reqs {
		reqs[i] = fmt.Sprintf(`{"length":%d,"delta":1}`, 2+i)
	}
	return reqs
}

func BenchmarkServerSequentialRequests(b *testing.B) {
	ix := buildIndex(b)
	reqs := benchRequests()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		_, ts := newTestServer(b, Config{Index: ix})
		b.StartTimer()
		for _, req := range reqs {
			resp, err := http.Post(ts.URL+"/v1/mine", "application/json", strings.NewReader(req))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		b.StopTimer()
		ts.Close() // idempotent under the later t.Cleanup
		b.StartTimer()
	}
}

func BenchmarkServerBatchRequests(b *testing.B) {
	ix := buildIndex(b)
	body := `{"requests":[` + strings.Join(benchRequests(), ",") + `]}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		_, ts := newTestServer(b, Config{Index: ix})
		b.StartTimer()
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		b.StopTimer()
		ts.Close() // idempotent under the later t.Cleanup
		b.StartTimer()
	}
}
