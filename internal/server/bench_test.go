package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"skinnymine"
)

// Batch-vs-sequential serving benchmark: the same eight distinct mining
// requests issued as eight sequential /v1/mine round trips versus one
// /v1/batch call. A fresh server per iteration keeps the result cache
// cold, so both variants do the same mining work; the difference is
// round trips, JSON decoding, and scheduling (the batch's unique misses
// enter the admission gate together). scripts/bench_baseline.sh records
// both in the per-PR bench JSON.

func benchRequests() []string {
	reqs := make([]string, 8)
	for i := range reqs {
		reqs[i] = fmt.Sprintf(`{"length":%d,"delta":1}`, 2+i)
	}
	return reqs
}

func BenchmarkServerSequentialRequests(b *testing.B) {
	ix := buildIndex(b)
	reqs := benchRequests()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		_, ts := newTestServer(b, Config{Index: ix})
		b.StartTimer()
		for _, req := range reqs {
			resp, err := http.Post(ts.URL+"/v1/mine", "application/json", strings.NewReader(req))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		b.StopTimer()
		ts.Close() // idempotent under the later t.Cleanup
		b.StartTimer()
	}
}

// BenchmarkBatchFamily is the multi-query optimizer's headline number:
// one batch of eight requests forming a single query family (same σ
// and measure; varying band, δ, and anti-monotone constraints), served
// with shared-plan execution on versus off. A fresh server per
// iteration keeps the cache cold, so "independent" mines all eight
// members and "shared" mines the weakest superset once and forks the
// rest. extensions/op (summed from the per-entry stats; forked bodies
// honestly report zero) is the search-work ratio the wall-clock gain
// comes from; scripts/bench_baseline.sh records both variants in the
// per-PR bench JSON.
func BenchmarkBatchFamily(b *testing.B) {
	family := []string{
		`{"length":4,"min_length":1,"delta":2}`, // weakest: the shared plan's carrier
		`{"length":4,"min_length":1,"delta":2,"where":"vertices<=8"}`,
		`{"length":4,"min_length":1,"delta":2,"where":"edges<=9"}`,
		`{"length":4,"min_length":1,"delta":1}`,
		`{"length":4,"min_length":2,"delta":2}`,
		`{"length":3,"min_length":1,"delta":2}`,
		`{"length":4,"min_length":1,"delta":2,"where":"skinniness<=1"}`,
		`{"length":4,"min_length":1,"delta":2,"where":"vertices<=8 && edges<=9"}`,
	}
	body := `{"requests":[` + strings.Join(family, ",") + `]}`
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"shared", Config{}},
		{"independent", Config{NoFamily: true, NoMorph: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			ix := buildIndex(b)
			var extensions int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := mode.cfg
				cfg.Index = ix
				_, ts := newTestServer(b, cfg)
				b.StartTimer()
				resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d: %v", resp.StatusCode, err)
				}
				b.StopTimer()
				var br BatchResponse
				if err := json.Unmarshal(raw, &br); err != nil {
					b.Fatal(err)
				}
				for j, item := range br.Results {
					if item.Status != http.StatusOK {
						b.Fatalf("entry %d: status %d: %s", j, item.Status, item.Error)
					}
					var res skinnymine.ResultJSON
					if err := json.Unmarshal(item.Result, &res); err != nil {
						b.Fatal(err)
					}
					extensions += int64(res.Stats.ExtensionsTried)
				}
				ts.Close() // idempotent under the later t.Cleanup
				b.StartTimer()
			}
			b.ReportMetric(float64(extensions)/float64(b.N), "extensions/op")
		})
	}
}

func BenchmarkServerBatchRequests(b *testing.B) {
	ix := buildIndex(b)
	body := `{"requests":[` + strings.Join(benchRequests(), ",") + `]}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		_, ts := newTestServer(b, Config{Index: ix})
		b.StartTimer()
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		b.StopTimer()
		ts.Close() // idempotent under the later t.Cleanup
		b.StartTimer()
	}
}
