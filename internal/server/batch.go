package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// BatchRequest is the wire form of POST /v1/batch: up to Config.MaxBatch
// mining requests answered in one round trip. Entries stay raw at the
// envelope level and decode individually, so a malformed entry — an
// unknown field, a wrong-typed value — fails THAT entry inline instead
// of 400ing the whole batch.
type BatchRequest struct {
	Requests []json.RawMessage `json:"requests"`
}

// BatchItem is one request's outcome within a batch. Status is the HTTP
// status the same request would have received from /v1/mine; exactly
// one of Error and Result is set. Source reports how the body was
// obtained: "hit" (LRU cache), "miss" (mined by this batch),
// "coalesced" (shared an in-flight run outside the batch), "morphed"
// (post-filtered from a cached superset result), "family_shared"
// (forked from a shared mine of this batch's query family), or
// "duplicate" (same canonical request appeared earlier in the batch).
type BatchItem struct {
	Status int             `json:"status"`
	Source string          `json:"source,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// BatchResponse is the /v1/batch payload: per-request results in
// request order, plus the batch accounting the examples and smoke tests
// assert on — Unique counts distinct canonical requests, CacheHits the
// unique requests answered from the LRU cache without mining.
type BatchResponse struct {
	Items     int         `json:"items"`
	Unique    int         `json:"unique"`
	CacheHits int         `json:"cache_hits"`
	Results   []BatchItem `json:"results"`
}

// handleBatch answers N mining requests in one scheduling pass:
// every entry is canonicalized and validated exactly like /v1/mine,
// entries sharing a canonical cache key collapse to one unit of work,
// and the unique cache misses enter the shared admission gate
// concurrently — a batch of N duplicates performs exactly one mining
// run, and a batch never starves interactive /v1/mine traffic for more
// than its unique-miss count of admission slots. Per-entry validation
// failures report inline (the batch itself still succeeds), so one bad
// request cannot void its neighbors.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.batch.Add(1)
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	if len(req.Requests) == 0 {
		s.writeError(w, http.StatusBadRequest, "batch contains no requests")
		return
	}
	if len(req.Requests) > s.maxBatch {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds this server's limit of %d", len(req.Requests), s.maxBatch))
		return
	}
	s.metrics.batch.items.Add(int64(len(req.Requests)))

	// Phase 1: canonicalize and deduplicate. toOptions rewrites each
	// entry into its canonical form (defaults resolved, constraint
	// canonicalized), so spelling variants of one request share a key —
	// the same key single /v1/mine requests cache under.
	type slot struct {
		key string
		err error
	}
	slots := make([]slot, len(req.Requests))
	units := make(map[string]*unit, len(req.Requests))
	var order []string
	invalid := 0
	for i := range req.Requests {
		var mr MineRequest
		dec := json.NewDecoder(bytes.NewReader(req.Requests[i]))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&mr); err != nil {
			slots[i].err = fmt.Errorf("invalid request body: %w", err)
			invalid++
			continue
		}
		opt, err := s.toOptions(&mr)
		if err != nil {
			slots[i].err = err
			invalid++
			continue
		}
		key := cacheKey(&mr)
		slots[i].key = key
		if _, ok := units[key]; !ok {
			units[key] = &unit{key: key, first: i, opt: opt}
			order = append(order, key)
		}
	}
	s.metrics.batch.unique.Add(int64(len(order)))
	s.metrics.batch.deduped.Add(int64(len(req.Requests) - len(order) - invalid))

	// Phase 2: plan, then one scheduling pass. Units forming a query
	// family (planFamilies) share a single mine of the family superset
	// and fork from it; everything else runs the shared guard stack
	// independently. Cache hits return immediately, misses queue at the
	// admission gate together.
	plans, owned := s.planFamilies(units, order)
	var wg sync.WaitGroup
	for _, fp := range plans {
		wg.Add(1)
		go func(fp *familyPlan) {
			defer wg.Done()
			s.runFamily(r, fp)
		}(fp)
	}
	for _, key := range order {
		if owned[key] {
			continue
		}
		wg.Add(1)
		go func(u *unit) {
			defer wg.Done()
			s.runUnit(r, u)
		}(units[key])
	}
	wg.Wait()

	// Phase 3: assemble per-entry outcomes in request order.
	resp := BatchResponse{
		Items:   len(req.Requests),
		Unique:  len(order),
		Results: make([]BatchItem, len(req.Requests)),
	}
	for _, key := range order {
		if u := units[key]; u.err == nil && u.source == "hit" {
			resp.CacheHits++
		}
	}
	for i := range req.Requests {
		if slots[i].err != nil {
			resp.Results[i] = BatchItem{Status: http.StatusBadRequest, Error: slots[i].err.Error()}
			continue
		}
		u := units[slots[i].key]
		if u.err != nil {
			resp.Results[i] = BatchItem{Status: errStatus(u.err), Error: u.err.Error()}
			continue
		}
		// Per-ENTRY latency: every answered entry — duplicates included —
		// observes its unit's serve time, so the batch histogram reflects
		// what callers of each entry experienced.
		s.metrics.batch.latency.Observe(u.dur)
		source := u.source
		if i != u.first {
			source = "duplicate"
		}
		resp.Results[i] = BatchItem{Status: http.StatusOK, Source: source, Result: u.p.body}
	}
	s.writeJSON(w, http.StatusOK, resp)
}
