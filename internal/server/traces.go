package server

import (
	"net/http"
	"sort"
	"time"

	"skinnymine"
	"skinnymine/internal/obs"
)

// TraceSummary is one row of the GET /debug/traces listing: a recent
// request's identity, how it was served, and its shape — enough to
// pick the trace worth opening with ?id=.
type TraceSummary struct {
	ID         string    `json:"id"`
	Endpoint   string    `json:"endpoint"`
	Source     string    `json:"source"` // "miss" (led a run), "hit", "coalesced"
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Workers    int       `json:"workers"`
	RunID      string    `json:"run_id,omitempty"` // producing run, for hit/coalesced rows
}

// TraceListResponse is the GET /debug/traces payload, newest first.
type TraceListResponse struct {
	Count  int            `json:"count"`
	Traces []TraceSummary `json:"traces"`
}

// SpanNode is one span in a stitched trace tree: a timed region with
// the spans whose intervals nest inside it as children — worker spans
// grafted under their worker.rpc envelope, stage spans under the run.
type SpanNode struct {
	Name       string         `json:"name"`
	StartUs    int64          `json:"start_us"`
	DurationUs int64          `json:"duration_us"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanNode     `json:"children,omitempty"`
}

// TraceDetail is the GET /debug/traces?id= payload: one retained
// trace with its spans rebuilt into a tree.
type TraceDetail struct {
	TraceSummary
	Spans []SpanNode `json:"spans"`
}

// handleTraces serves the always-on trace store: without ?id= the
// newest-first listing, with ?id= the full span tree of one retained
// trace (404 once it has aged out of both the ring and the exemplar
// reservoirs).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.traces.Add(1)
	id := r.URL.Query().Get("id")
	if id == "" {
		stored := s.traces.List()
		resp := TraceListResponse{Count: len(stored), Traces: make([]TraceSummary, len(stored))}
		for i, st := range stored {
			resp.Traces[i] = toTraceSummary(st)
		}
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	st, ok := s.traces.Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no retained trace with id "+id+" (it may have aged out of the trace store)")
		return
	}
	s.writeJSON(w, http.StatusOK, TraceDetail{
		TraceSummary: toTraceSummary(st),
		Spans:        buildSpanTree(st.Spans),
	})
}

func toTraceSummary(st obs.StoredTrace) TraceSummary {
	return TraceSummary{
		ID: st.ID, Endpoint: st.Endpoint, Source: st.Source, Start: st.Start,
		DurationMs: st.DurationMs, Workers: st.Workers, RunID: st.RunID,
	}
}

// toTraceSpans converts stored spans to the public flat form the
// ?trace=1 response uses.
func toTraceSpans(spans []obs.SpanData) []skinnymine.TraceSpan {
	out := make([]skinnymine.TraceSpan, len(spans))
	for i, sp := range spans {
		out[i] = skinnymine.TraceSpan{Name: sp.Name, StartUs: sp.StartUs, DurationUs: sp.DurationUs, Attrs: sp.Attrs}
	}
	return out
}

// countWorkerShards counts the distinct shard workers that contributed
// to a run: the "shard" tags on its worker.rpc spans.
func countWorkerShards(spans []obs.SpanData) int {
	var seen map[any]bool
	for _, sp := range spans {
		if sp.Name != "worker.rpc" {
			continue
		}
		if v, ok := sp.Attrs["shard"]; ok {
			if seen == nil {
				seen = make(map[any]bool, 4)
			}
			seen[v] = true
		}
	}
	return len(seen)
}

// spanTreeSlackUs is the nesting tolerance: a span may overhang its
// would-be parent's end by this much and still count as a child.
// Grafted worker spans end strictly inside their RPC envelope by
// construction, and sibling coordinator spans share one monotonic
// clock truncated to whole µs — so a real child never overhangs by
// more than a rounding step, and anything past that is a sibling.
// Keep this tight: a generous slack makes back-to-back µs-scale
// siblings (decode → stage1 → encode) nest inside each other.
const spanTreeSlackUs = 2

// buildSpanTree nests a flat span list by interval containment: spans
// carry no parent IDs (instrumentation sites stay one line), but a
// child's [start, end] always lies inside its parent's, so sorting by
// start (ties: longer first) and keeping a stack of open ancestors
// rebuilds the tree the instrumentation implied. Spans that fit no
// open ancestor — the stage roots, concurrent top-level work — become
// roots.
func buildSpanTree(spans []obs.SpanData) []SpanNode {
	if len(spans) == 0 {
		return []SpanNode{}
	}
	idx := make([]int, len(spans))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := spans[idx[a]], spans[idx[b]]
		if sa.StartUs != sb.StartUs {
			return sa.StartUs < sb.StartUs
		}
		return sa.DurationUs > sb.DurationUs
	})
	roots := []SpanNode{}
	type open struct {
		node  *SpanNode
		endUs int64
	}
	var stack []open
	for _, i := range idx {
		sp := spans[i]
		node := SpanNode{Name: sp.Name, StartUs: sp.StartUs, DurationUs: sp.DurationUs, Attrs: sp.Attrs}
		for len(stack) > 0 && sp.StartUs+sp.DurationUs > stack[len(stack)-1].endUs+spanTreeSlackUs {
			stack = stack[:len(stack)-1]
		}
		var slot *[]SpanNode
		if len(stack) == 0 {
			slot = &roots
		} else {
			slot = &stack[len(stack)-1].node.Children
		}
		*slot = append(*slot, node)
		stack = append(stack, open{node: &(*slot)[len(*slot)-1], endUs: sp.StartUs + sp.DurationUs})
	}
	return roots
}
