package shard

import (
	"skinnymine/internal/graph"
	"skinnymine/internal/indexio"
)

// Partition assigns the graphs of a transaction database to shards:
// hash-by-gid placement followed by a deterministic size-balancing
// pass. The shard count is clamped to [1, len(graphs)] and every shard
// ends up non-empty, so per-shard indexes and snapshot files are never
// degenerate. The returned assignment lists each shard's graph IDs in
// ascending order.
//
// Balancing minimizes the spread of per-shard load (vertices + edges)
// greedily: while the heaviest shard holds a graph lighter than the
// load gap to the lightest shard, moving that graph strictly shrinks
// the sum of squared loads, so the pass terminates. Both phases are
// pure functions of the input sizes — the same database always shards
// the same way, which the sharded-snapshot format relies on only
// loosely (the manifest records the assignment) but tests rely on
// exactly.
func Partition(graphs []*graph.Graph, shards int) [][]int32 {
	if len(graphs) == 0 {
		return nil // New surfaces the empty-database error
	}
	p := shards
	if p > len(graphs) {
		p = len(graphs)
	}
	// Never build more shards than the snapshot format can persist: a
	// sharded engine that cannot write a loadable snapshot would strand
	// its own data.
	if p > indexio.MaxShards {
		p = indexio.MaxShards
	}
	if p < 1 {
		p = 1
	}
	weight := make([]int64, len(graphs))
	shardOf := make([]int, len(graphs))
	load := make([]int64, p)
	count := make([]int, p)
	for gid, g := range graphs {
		weight[gid] = int64(g.N() + g.M())
		s := int(gidHash(int32(gid)) % uint32(p))
		shardOf[gid] = s
		load[s] += weight[gid]
		count[s]++
	}

	move := func(gid, to int) {
		from := shardOf[gid]
		shardOf[gid] = to
		load[from] -= weight[gid]
		load[to] += weight[gid]
		count[from]--
		count[to]++
	}

	// Hashing can leave a shard empty (p <= len(graphs) only guarantees
	// enough graphs exist). Seed each empty shard with the largest graph
	// of the heaviest shard that can spare one.
	for s := 0; s < p; s++ {
		if count[s] > 0 {
			continue
		}
		donor := -1
		for d := 0; d < p; d++ {
			if count[d] >= 2 && (donor < 0 || load[d] > load[donor]) {
				donor = d
			}
		}
		best := -1
		for gid := range graphs {
			if shardOf[gid] != donor {
				continue
			}
			if best < 0 || weight[gid] > weight[best] {
				best = gid
			}
		}
		move(best, s)
	}

	// Greedy rebalance: move the largest graph that fits in the gap
	// from the heaviest to the lightest shard. A move never empties a
	// shard — a sole member weighs the whole load, which cannot be
	// smaller than the gap.
	for iter := 0; iter < 4*len(graphs); iter++ {
		hi, lo := 0, 0
		for s := 1; s < p; s++ {
			if load[s] > load[hi] {
				hi = s
			}
			if load[s] < load[lo] {
				lo = s
			}
		}
		gap := load[hi] - load[lo]
		best := -1
		for gid := range graphs {
			if shardOf[gid] != hi || weight[gid] >= gap {
				continue
			}
			if best < 0 || weight[gid] > weight[best] {
				best = gid
			}
		}
		if best < 0 {
			break
		}
		move(best, lo)
	}

	out := make([][]int32, p)
	for gid := range graphs { // ascending gid order per shard
		s := shardOf[gid]
		out[s] = append(out[s], int32(gid))
	}
	return out
}

// gidHash is 32-bit FNV-1a over the graph ID's little-endian bytes.
func gidHash(gid int32) uint32 {
	h := uint32(2166136261)
	for i := 0; i < 4; i++ {
		h ^= uint32(byte(gid >> (8 * i)))
		h *= 16777619
	}
	return h
}
