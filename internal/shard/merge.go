package shard

import (
	"slices"
	"sort"

	"skinnymine/internal/core"
	"skinnymine/internal/graph"
)

// mergeLevel folds per-shard candidate lists for one path level into
// the global frequent-path level, with exact support aggregation:
//
//   - Candidates group across shards by canonical label sequence.
//   - A pattern's embeddings are the concatenation of its per-shard
//     embeddings, re-sorted into the unsharded canonical order
//     (graph ID, then vertex sequence). The lists are disjoint by
//     construction — every embedding lives in exactly one graph, every
//     graph in exactly one shard — so nothing needs dedup.
//   - Support is recomputed from the merged embeddings (distinct path
//     subgraphs: each subgraph contributes its two traversal
//     orientations, exactly one of which is vertex-lexicographically
//     canonical), never summed from per-shard counters, so a stored
//     per-shard Support can never skew the global one.
//   - The global frequency threshold σ is applied here — per-shard
//     candidate generation is threshold-1 — and survivors sort by
//     canonical label sequence.
//
// The result is byte-identical to the level an unsharded DiamMiner
// materializes (pinned by the refguard tests). The second return value
// is the per-shard projection of the surviving patterns — each shard's
// input for the next doubling level: only globally frequent paths, only
// locally resident embeddings.
func mergeLevel(parts [][]*core.PathPattern, sigma int) (global []*core.PathPattern, local [][]*core.PathPattern) {
	type agg struct {
		seq  []graph.Label
		embs []core.PathEmb
	}
	seen := make(map[string]*agg)
	var order []*agg
	for _, part := range parts {
		for _, p := range part {
			k := labelKey(p.Seq)
			a, ok := seen[k]
			if !ok {
				a = &agg{seq: p.Seq}
				seen[k] = a
				order = append(order, a)
			}
			a.embs = append(a.embs, p.Embs...)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		return graph.CompareLabelSeqs(order[i].seq, order[j].seq) < 0
	})

	frequent := make(map[string]bool, len(order))
	for _, a := range order {
		sort.Slice(a.embs, func(i, j int) bool {
			if a.embs[i].GID != a.embs[j].GID {
				return a.embs[i].GID < a.embs[j].GID
			}
			return slices.Compare(a.embs[i].Seq, a.embs[j].Seq) < 0
		})
		sup := core.CountPathSubgraphs(a.embs)
		if sup < sigma {
			continue
		}
		frequent[labelKey(a.seq)] = true
		global = append(global, &core.PathPattern{Seq: a.seq, Embs: a.embs, Support: sup})
	}

	local = make([][]*core.PathPattern, len(parts))
	for s, part := range parts {
		kept := make([]*core.PathPattern, 0, len(part))
		for _, p := range part {
			if frequent[labelKey(p.Seq)] {
				kept = append(kept, p)
			}
		}
		local[s] = kept
	}
	return global, local
}

// labelKey packs a label sequence into a map key.
func labelKey(seq []graph.Label) string {
	b := make([]byte, 0, len(seq)*4)
	for _, l := range seq {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}
