// Package shard implements horizontally partitioned mining: the
// transaction database is split into P shards (hash-by-gid with a
// size-balancing pass, Partition), Stage I candidate generation runs
// shard-parallel with a cross-shard merge per path level, and Stage II
// grows the merged seeds through the shared core engine. Output is
// byte-identical to unsharded mining at every shard count — sharding is
// an execution strategy, never a semantics change.
//
// # Why the merge is exact
//
// Stage I joins only ever combine embeddings that live in the same data
// graph, and each graph belongs to exactly one shard. Per level, each
// shard therefore assembles exactly the unsharded candidate set
// restricted to its own graphs (core.ShardStage1, threshold-1), and the
// cross-shard merge — group by canonical label sequence, concatenate
// the disjoint embedding lists, recount distinct subgraphs, apply the
// global σ — reproduces the unsharded level byte for byte (mergeLevel).
// The surviving patterns are projected back per shard as the next
// level's join input, so pruning power at the global threshold is never
// lost: shards only ever extend globally frequent paths.
//
// Stage II needs global supports for every growth step, so it runs once
// over the merged seeds through the unchanged core engine (seeds fan
// across the request's worker pool); pattern-level supports are exact
// by construction rather than by aggregation. A Where constraint prunes
// at seed selection and inside growth, exactly like a shared
// DirectIndex — the shard level caches stay complete for every other
// request.
//
// # Execution strategies
//
// Where a level's per-shard candidates come from is a second pluggable
// seam: the Engine drives a stage1Runner, which is either the in-process
// runner (one core.ShardStage1 per shard, the PR 5 engine) or the
// remote coordinator runner (one HTTP worker per shard, remote.go).
// Everything above the runner — the doubling schedule, the merge, the
// caches, Stage II — is shared, so the distributed engine inherits the
// byte-identical guarantee from the same code path the in-process one
// is pinned by.
//
// # Concurrency and ownership
//
// An Engine is safe for concurrent Mine/MinimalPatterns callers: the
// merged-level and projection caches are guarded by one RWMutex
// (materialization holds the write lock for its full cost, like
// DiamMiner), each shard's join runner is driven by exactly one
// goroutine per level, and the inner DirectIndex has its own locking.
// SetConcurrency follows the DirectIndex convention: call it before
// serving, not concurrently with requests. Graphs, levels and
// projections handed out by ShardStates/MinimalPatterns are shared,
// not copied — treat them as read-only.
package shard

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"skinnymine/internal/core"
	"skinnymine/internal/graph"
	"skinnymine/internal/obs"
)

// stage1Runner produces one shard's Stage I candidates for one level
// step. The Engine drives it with exactly one call per shard per step;
// implementations are the in-process localRunner and the HTTP
// remoteRunner (remote.go). Inputs and outputs use GLOBAL graph IDs —
// a runner that ships work elsewhere owns the remapping. A runner
// returning an error fails the whole materialization (the Engine never
// serves a partial level).
type stage1Runner interface {
	// edges returns shard s's level-1 candidates.
	edges(ctx context.Context, s, workers int) ([]*core.PathPattern, error)
	// concat doubles shard s's projections of the merged level L into
	// its length-2L candidates.
	concat(ctx context.Context, s int, prev []*core.PathPattern, workers int) ([]*core.PathPattern, error)
	// merge overlaps shard s's projections of the merged level m into
	// its length-l candidates (m < l < 2m).
	merge(ctx context.Context, s int, pool []*core.PathPattern, l, m, workers int) ([]*core.PathPattern, error)
	// close releases runner resources (health probes, idle
	// connections). The in-process runner has none.
	close() error
}

// localRunner runs Stage I in-process: one core.ShardStage1 per shard
// over the shared full graph slice.
type localRunner struct {
	stages []*core.ShardStage1
}

func newLocalRunner(graphs []*graph.Graph, assign [][]int32) (*localRunner, error) {
	stages := make([]*core.ShardStage1, len(assign))
	var err error
	for s, gids := range assign {
		if stages[s], err = core.NewShardStage1(graphs, gids); err != nil {
			return nil, err
		}
	}
	return &localRunner{stages: stages}, nil
}

func (r *localRunner) edges(_ context.Context, s, _ int) ([]*core.PathPattern, error) {
	return r.stages[s].EdgeCandidates(), nil
}

func (r *localRunner) concat(_ context.Context, s int, prev []*core.PathPattern, workers int) ([]*core.PathPattern, error) {
	return r.stages[s].ConcatCandidates(prev, workers), nil
}

func (r *localRunner) merge(_ context.Context, s int, pool []*core.PathPattern, l, m, workers int) ([]*core.PathPattern, error) {
	return r.stages[s].MergeCandidates(pool, l, m, workers), nil
}

func (r *localRunner) close() error { return nil }

// Engine is a sharded mining engine over one partitioned transaction
// database: a per-shard Stage I runner (in-process or remote), the
// merged global level cache, and a DirectIndex the merged levels are
// preloaded into for Stage II.
type Engine struct {
	graphs []*graph.Graph
	sigma  int
	assign [][]int32
	runner stage1Runner
	ix     *core.DirectIndex
	conc   int // MinimalPatterns worker budget; Mine uses the request's

	mu     sync.RWMutex
	levels map[int][]*core.PathPattern   // merged global levels
	local  map[int][][]*core.PathPattern // per level: per-shard projections
}

// New partitions the database into the given number of shards (clamped
// to [1, len(graphs)]) and returns an engine mining at threshold σ. No
// Stage I work happens until the first request.
func New(graphs []*graph.Graph, sigma, shards int) (*Engine, error) {
	return newEngine(graphs, sigma, Partition(graphs, shards))
}

func newEngine(graphs []*graph.Graph, sigma int, assign [][]int32) (*Engine, error) {
	ix, err := core.BuildIndex(graphs, sigma)
	if err != nil {
		return nil, err
	}
	runner, err := newLocalRunner(graphs, assign)
	if err != nil {
		return nil, err
	}
	return &Engine{
		graphs: graphs,
		sigma:  sigma,
		assign: assign,
		runner: runner,
		ix:     ix,
		levels: make(map[int][]*core.PathPattern),
		local:  make(map[int][][]*core.PathPattern),
	}, nil
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.assign) }

// Sigma returns the frequency threshold σ the engine was built with.
func (e *Engine) Sigma() int { return e.sigma }

// NumGraphs returns the number of database graphs behind the engine.
func (e *Engine) NumGraphs() int { return len(e.graphs) }

// Assignment returns each shard's graph IDs (ascending), copied.
func (e *Engine) Assignment() [][]int32 {
	out := make([][]int32, len(e.assign))
	for s, gids := range e.assign {
		out[s] = append([]int32(nil), gids...)
	}
	return out
}

// SetConcurrency bounds the worker budget MinimalPatterns
// materialization spreads across the shards (<= 0 means one worker per
// available CPU). Mine requests use their own Options.Concurrency. Call
// it before serving, not concurrently with requests.
func (e *Engine) SetConcurrency(n int) { e.conc = n }

// Concurrency reports the current MinimalPatterns worker budget, always
// resolved to a positive count.
func (e *Engine) Concurrency() int {
	if e.conc <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.conc
}

// MaterializedLevels returns the path lengths whose merged global level
// is cached, ascending.
func (e *Engine) MaterializedLevels() []int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]int, 0, len(e.levels))
	for l := range e.levels {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// Mine serves one request: the request's diameter band is materialized
// shard-parallel (cache hits skip straight through), the merged levels
// are preloaded into the inner index, and Stage II runs over the merged
// seeds through the core engine. The result — pattern set, supports,
// output order — is byte-identical to unsharded mining with the same
// options; the sharded Stage I wall-clock is folded into
// Stats.DiamMineTime.
func (e *Engine) Mine(opt core.Options) (*core.Result, error) {
	//lint:allow ctxflow compatibility entry point, ctx-aware callers use MineCtx
	return e.MineCtx(context.Background(), opt)
}

// MineCtx is Mine with a caller-supplied context. The in-process engine
// only consults it between shard steps; a remote engine additionally
// propagates its deadline into every worker RPC, so a client that gives
// up stops costing the workers anything.
func (e *Engine) MineCtx(ctx context.Context, opt core.Options) (*core.Result, error) {
	if opt.Support != e.sigma {
		return nil, fmt.Errorf("core: index was built with support %d, request uses %d", e.sigma, opt.Support)
	}
	// One tracer serves the whole request: either the caller set it on
	// the options, or it rides the context (the serving daemon's path).
	// It is re-wrapped into ctx so the runner — and a remote runner's
	// per-RPC spans — see the same trace. Observation only: output is
	// byte-identical with tracing on and off.
	if opt.Tracer == nil {
		opt.Tracer = obs.FromContext(ctx)
	}
	tr := obs.Default(opt.Tracer)
	ctx = obs.NewContext(ctx, tr)
	var shardTime time.Duration
	lo := opt.Length
	if opt.MinLength > 0 {
		lo = opt.MinLength
	}
	// An invalid band falls through to the core validator so every
	// surface rejects it with one message; nothing is materialized.
	if lo >= 1 && lo <= opt.Length {
		lengths := make([]int, 0, opt.Length-lo+1)
		for l := lo; l <= opt.Length; l++ {
			lengths = append(lengths, l)
		}
		// Named stage1.shard, not stage1: the inner core engine opens its
		// own "stage1" span over the (now cache-hitting) seed collection,
		// and a trace with two identically named stage spans would be
		// ambiguous to sum.
		t0 := time.Now()
		sp := tr.Start("stage1.shard").TagInt("shards", int64(len(e.assign)))
		if err := e.preloadLevels(ctx, lengths, opt.Concurrency); err != nil {
			sp.Tag("outcome", "error").End()
			return nil, err
		}
		sp.End()
		shardTime = time.Since(t0)
	}
	res, err := e.ix.Mine(opt)
	if err != nil {
		return nil, err
	}
	res.Stats.DiamMineTime += shardTime
	return res, nil
}

// MinimalPatterns returns the globally frequent paths of length l — the
// merged Stage I level — materializing it shard-parallel on a miss.
func (e *Engine) MinimalPatterns(l int) ([]*core.PathPattern, error) {
	//lint:allow ctxflow compatibility entry point, ctx-aware callers use MinimalPatternsCtx
	return e.MinimalPatternsCtx(context.Background(), l)
}

// MinimalPatternsCtx is MinimalPatterns with a caller-supplied context:
// shard-parallel materialization observes cancellation between shard
// steps, and a remote engine propagates the deadline into worker RPCs.
func (e *Engine) MinimalPatternsCtx(ctx context.Context, l int) ([]*core.PathPattern, error) {
	if err := e.preloadLevels(ctx, []int{l}, e.conc); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.levels[l], nil
}

// Close releases the runner's resources: a no-op for the in-process
// engine, probe-and-connection shutdown for a remote one. The engine
// itself stays usable for cached levels but must not materialize new
// ones afterwards.
func (e *Engine) Close() error { return e.runner.close() }

// preloadLevels materializes any missing lengths shard-parallel and
// installs the merged levels into the inner DirectIndex, so the Stage
// II entry point only ever sees cache hits (a miss there would fall
// back to unsharded materialization — correct, but never intended).
func (e *Engine) preloadLevels(ctx context.Context, lengths []int, workers int) error {
	if err := e.ensureLevels(ctx, lengths, workers); err != nil {
		return err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, l := range lengths {
		if err := e.ix.PreloadLevel(l, e.levels[l]); err != nil {
			return err
		}
	}
	return nil
}

// ensureLevels materializes every missing requested length under the
// write lock.
func (e *Engine) ensureLevels(ctx context.Context, lengths []int, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e.mu.RLock()
	missing := false
	for _, l := range lengths {
		if _, ok := e.levels[l]; !ok {
			missing = true
			break
		}
	}
	e.mu.RUnlock()
	if !missing {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, l := range lengths {
		if err := e.materialize(ctx, l, workers); err != nil {
			return err
		}
	}
	return nil
}

// materialize computes the merged level for length l, following the
// exact doubling schedule of DiamMiner.mine — powers of two up to the
// largest k <= l, then one overlap merge when l is not itself a power —
// with each step's candidate generation fanned across the shards. A
// failed step (a remote worker unreachable past its retry budget)
// leaves the caches exactly as they were: levels are stored only after
// every shard's part arrived. Callers hold e.mu.
func (e *Engine) materialize(ctx context.Context, l, workers int) error {
	if l < 1 {
		return fmt.Errorf("shard: path length must be >= 1, got %d", l)
	}
	if _, ok := e.levels[l]; ok {
		return nil
	}
	tr := obs.FromContext(ctx)
	k := 1
	for k*2 <= l {
		k *= 2
	}
	for p := 1; p <= k; p *= 2 {
		if _, ok := e.levels[p]; ok {
			continue
		}
		var parts [][]*core.PathPattern
		var err error
		if p == 1 {
			sp := tr.Start("stage1.shard.edges").TagInt("level", 1)
			parts, err = e.runShards(ctx, workers, func(ctx context.Context, s, w int) ([]*core.PathPattern, error) {
				return e.runner.edges(ctx, s, w)
			})
			endShardSpan(sp, parts, err)
		} else {
			prev := e.local[p/2]
			sp := tr.Start("stage1.shard.concat").TagInt("level", int64(p))
			parts, err = e.runShards(ctx, workers, func(ctx context.Context, s, w int) ([]*core.PathPattern, error) {
				return e.runner.concat(ctx, s, prev[s], w)
			})
			endShardSpan(sp, parts, err)
		}
		if err != nil {
			return err
		}
		e.store(ctx, p, parts)
	}
	if l != k {
		pool := e.local[k]
		sp := tr.Start("stage1.shard.merge").TagInt("level", int64(l)).TagInt("base", int64(k))
		parts, err := e.runShards(ctx, workers, func(ctx context.Context, s, w int) ([]*core.PathPattern, error) {
			return e.runner.merge(ctx, s, pool[s], l, k, w)
		})
		endShardSpan(sp, parts, err)
		if err != nil {
			return err
		}
		e.store(ctx, l, parts)
	}
	return nil
}

// endShardSpan closes one level step's span with its candidate count
// (summed across the shards) or its failure.
func endShardSpan(sp *obs.Span, parts [][]*core.PathPattern, err error) {
	if err != nil {
		sp.Tag("outcome", "error").End()
		return
	}
	n := 0
	for _, part := range parts {
		n += len(part)
	}
	sp.TagInt("candidates", int64(n)).End()
}

// runShards executes one level's candidate generation across the
// shards within the request's worker budget: at most `workers` shards
// run at once (Concurrency=1 stays fully sequential, honoring the
// public contract), and when the budget exceeds the shard count the
// surplus fans out inside each shard's joins. parts[s] is shard s's
// output; the indexed writes keep the result independent of goroutine
// scheduling, and the lowest failing shard's error is reported so one
// outage yields one deterministic message.
func (e *Engine) runShards(ctx context.Context, workers int, run func(ctx context.Context, s, w int) ([]*core.PathPattern, error)) ([][]*core.PathPattern, error) {
	if workers < 1 {
		workers = 1
	}
	n := len(e.assign)
	per, extra := workers/n, workers%n
	if per < 1 {
		per, extra = 1, 0
	}
	parts := make([][]*core.PathPattern, n)
	errs := make([]error, n)
	inFlight := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		w := per
		if s < extra { // spread the budget remainder over the first shards
			w++
		}
		wg.Add(1)
		inFlight <- struct{}{}
		go func(s, w int) {
			defer wg.Done()
			defer func() { <-inFlight }()
			parts[s], errs[s] = run(ctx, s, w)
		}(s, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return parts, nil
}

// store merges one level's per-shard candidates and caches both the
// global level and the per-shard projections. The cross-shard recount
// gets its own span: it is the coordinator-side cost a distributed
// deployment cannot shard away. Callers hold e.mu.
func (e *Engine) store(ctx context.Context, l int, parts [][]*core.PathPattern) {
	in := 0
	for _, part := range parts {
		in += len(part)
	}
	sp := obs.FromContext(ctx).Start("stage1.shard.recount").TagInt("level", int64(l)).TagInt("candidates", int64(in))
	global, local := mergeLevel(parts, e.sigma)
	sp.TagInt("patterns", int64(len(global))).End()
	e.levels[l] = global
	e.local[l] = local
}

// ShardStates exports each shard's serializable content — the shard's
// graphs and its projections of every materialized level, with graph
// IDs remapped to shard-local positions — so each shard persists as a
// standalone v1 snapshot stream under the sharded manifest. Inverse of
// Restore. Shared data is not copied; treat it as read-only.
func (e *Engine) ShardStates() []core.IndexState {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]core.IndexState, len(e.assign))
	for s, gids := range e.assign {
		toLocal := make(map[int32]int32, len(gids))
		graphs := make([]*graph.Graph, len(gids))
		for i, gid := range gids {
			toLocal[gid] = int32(i)
			graphs[i] = e.graphs[gid]
		}
		levels := make(map[int][]*core.PathPattern, len(e.local))
		for l, parts := range e.local {
			src := parts[s]
			ps := make([]*core.PathPattern, len(src))
			for i, p := range src {
				embs := make([]core.PathEmb, len(p.Embs))
				for j, emb := range p.Embs {
					embs[j] = core.PathEmb{GID: toLocal[emb.GID], Seq: emb.Seq}
				}
				ps[i] = &core.PathPattern{Seq: p.Seq, Embs: embs, Support: p.Support}
			}
			levels[l] = ps
		}
		out[s] = core.IndexState{Graphs: graphs, Sigma: e.sigma, Levels: levels}
	}
	return out
}

// Restore rebuilds an engine from per-shard states and the shard
// assignment (a loaded sharded snapshot). It validates that the
// assignment covers every graph exactly once and matches each state's
// graph count, that all states agree on σ and on the materialized level
// set, and that re-merging the projections reproduces a full level —
// a stored pattern whose aggregated support falls below σ is corruption,
// not data.
func Restore(states []core.IndexState, assign [][]int32, sigma int) (*Engine, error) {
	if len(states) == 0 || len(states) != len(assign) {
		return nil, fmt.Errorf("shard: %d states for %d shards", len(states), len(assign))
	}
	total := 0
	for _, gids := range assign {
		total += len(gids)
	}
	graphs := make([]*graph.Graph, total)
	seen := make([]bool, total)
	for s, gids := range assign {
		st := states[s]
		if st.Sigma != sigma {
			return nil, fmt.Errorf("shard: shard %d was built with support %d, manifest says %d", s, st.Sigma, sigma)
		}
		if len(gids) != len(st.Graphs) {
			return nil, fmt.Errorf("shard: shard %d holds %d graphs, assignment lists %d", s, len(st.Graphs), len(gids))
		}
		for i, gid := range gids {
			if int(gid) < 0 || int(gid) >= total || seen[gid] {
				return nil, fmt.Errorf("shard: assignment graph ID %d duplicate or out of range [0, %d)", gid, total)
			}
			seen[gid] = true
			graphs[gid] = st.Graphs[i]
		}
	}
	for s := 1; s < len(states); s++ {
		if len(states[s].Levels) != len(states[0].Levels) {
			return nil, fmt.Errorf("shard: shard %d has %d levels, shard 0 has %d", s, len(states[s].Levels), len(states[0].Levels))
		}
		for l := range states[0].Levels {
			if _, ok := states[s].Levels[l]; !ok {
				return nil, fmt.Errorf("shard: shard %d is missing level %d", s, l)
			}
		}
	}
	e, err := newEngine(graphs, sigma, assign)
	if err != nil {
		return nil, err
	}
	for l := range states[0].Levels {
		parts := make([][]*core.PathPattern, len(states))
		distinct := make(map[string]struct{})
		for s := range states {
			gids := assign[s]
			src := states[s].Levels[l]
			ps := make([]*core.PathPattern, len(src))
			for i, p := range src {
				if len(p.Seq) != l+1 {
					return nil, fmt.Errorf("shard: shard %d level %d pattern has %d labels, want %d", s, l, len(p.Seq), l+1)
				}
				embs := make([]core.PathEmb, len(p.Embs))
				for j, emb := range p.Embs {
					if int(emb.GID) < 0 || int(emb.GID) >= len(gids) {
						return nil, fmt.Errorf("shard: shard %d level %d embedding references local graph %d of %d", s, l, emb.GID, len(gids))
					}
					// Vertex ranges are checked HERE, not deferred to
					// PreloadLevel: restored projections feed straight
					// into the join scratch arrays when a later request
					// materializes a higher level, and only the
					// requested band passes through PreloadLevel — an
					// out-of-range vertex must be load-time corruption,
					// never a request-time panic (the guarantee the
					// unsharded path gets from RestoreIndex).
					g := graphs[gids[emb.GID]]
					if len(emb.Seq) != l+1 {
						return nil, fmt.Errorf("shard: shard %d level %d embedding has %d vertices, want %d", s, l, len(emb.Seq), l+1)
					}
					for _, v := range emb.Seq {
						if int(v) < 0 || int(v) >= g.N() {
							return nil, fmt.Errorf("shard: shard %d level %d embedding vertex %d out of range for graph %d", s, l, v, gids[emb.GID])
						}
					}
					embs[j] = core.PathEmb{GID: gids[emb.GID], Seq: emb.Seq}
				}
				ps[i] = &core.PathPattern{Seq: p.Seq, Embs: embs, Support: p.Support}
				distinct[labelKey(p.Seq)] = struct{}{}
			}
			parts[s] = ps
		}
		global, local := mergeLevel(parts, sigma)
		if len(global) != len(distinct) {
			return nil, fmt.Errorf("shard: level %d holds %d patterns below the σ=%d threshold: snapshot is corrupted", l, len(distinct)-len(global), sigma)
		}
		e.levels[l] = global
		e.local[l] = local
	}
	return e, nil
}
