package shard

import (
	"context"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skinnymine/internal/core"
	"skinnymine/internal/obs"
)

// TestRemoteRequestIDPropagation: a request ID installed on the mining
// context rides the X-Request-Id header of every worker RPC, so one
// query is greppable coordinator-log → worker-log across the fleet.
func TestRemoteRequestIDPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	db := randomDB(rng, 6, 8, 12, 3)
	var mu sync.Mutex
	seen := map[string]int{}
	wrap := func(s int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if isCandidates(r) {
				mu.Lock()
				seen[r.Header.Get(obs.RequestIDHeader)]++
				mu.Unlock()
			}
			h.ServeHTTP(w, r)
		})
	}
	fx := newRemoteFixture(t, db, 2, 3, 3, nil, wrap)
	ctx := obs.WithRequestID(context.Background(), "req-abc-123")
	if _, err := fx.eng.MineCtx(ctx, core.DefaultOptions(2, 3, 1)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("no candidate RPCs observed")
	}
	for id, n := range seen {
		if id != "req-abc-123" {
			t.Errorf("%d candidate RPC(s) carried request ID %q, want req-abc-123", n, id)
		}
	}
}

// TestRemoteTraceRecordsWorkerRPCs: a trace on the mining context
// records one worker.rpc span per RPC, tagged with shard, op and
// outcome — and recording them does not change the mined result.
func TestRemoteTraceRecordsWorkerRPCs(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	db := randomDB(rng, 6, 8, 12, 3)
	opt := core.DefaultOptions(2, 3, 1)

	fx := newRemoteFixture(t, db, 2, 3, 3, nil, nil)
	want, err := fx.eng.Mine(opt)
	if err != nil {
		t.Fatal(err)
	}

	fx2 := newRemoteFixture(t, db, 2, 3, 3, nil, nil)
	tr := obs.NewTrace()
	got, err := fx2.eng.MineCtx(obs.NewContext(context.Background(), tr), opt)
	if err != nil {
		t.Fatal(err)
	}
	if renderPatterns(got.Patterns) != renderPatterns(want.Patterns) {
		t.Error("traced distributed result diverges from untraced")
	}

	rpcs := 0
	for _, s := range tr.Snapshot() {
		if s.Name != "worker.rpc" {
			continue
		}
		rpcs++
		if _, ok := s.Attrs["shard"]; !ok {
			t.Errorf("worker.rpc span lacks shard attr: %v", s.Attrs)
		}
		if _, ok := s.Attrs["op"]; !ok {
			t.Errorf("worker.rpc span lacks op attr: %v", s.Attrs)
		}
		if out := s.Attrs["outcome"]; out != "ok" {
			t.Errorf("worker.rpc outcome = %v, want ok", out)
		}
	}
	if rpcs == 0 {
		t.Error("no worker.rpc spans recorded")
	}
}

// TestWorkerRPCStatsRetries: transient worker failures within the
// retry budget surface in the per-worker counters — requests, errors
// and retries all nonzero for the flaky shard, latency samples
// recorded for every worker.
func TestWorkerRPCStatsRetries(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	db := randomDB(rng, 6, 8, 12, 3)
	var reqs atomic.Int64
	wrap := func(s int, h http.Handler) http.Handler {
		if s != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if isCandidates(r) && reqs.Add(1) <= 2 {
				http.Error(w, "transient", http.StatusInternalServerError)
				return
			}
			h.ServeHTTP(w, r)
		})
	}
	fx := newRemoteFixture(t, db, 2, 3, 3, func(cfg *RemoteConfig) { cfg.Retries = 2 }, wrap)
	if _, err := fx.eng.Mine(core.DefaultOptions(2, 3, 1)); err != nil {
		t.Fatal(err)
	}
	stats := fx.eng.WorkerRPCStats()
	if len(stats) != 3 {
		t.Fatalf("got %d worker stats, want 3", len(stats))
	}
	for i, ws := range stats {
		if ws.Shard != i {
			t.Errorf("stats[%d].Shard = %d", i, ws.Shard)
		}
		if ws.Requests == 0 {
			t.Errorf("shard %d: no requests counted", i)
		}
		if ws.Latency.Count == 0 {
			t.Errorf("shard %d: no latency samples", i)
		}
	}
	if stats[0].Retries < 2 {
		t.Errorf("flaky shard retries = %d, want >= 2", stats[0].Retries)
	}
	if stats[0].Errors < 2 {
		t.Errorf("flaky shard errors = %d, want >= 2", stats[0].Errors)
	}
}

// TestWorkerRPCStatsHedges: a straggling worker RPC that gets hedged
// shows up in the hedge counter.
func TestWorkerRPCStatsHedges(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	db := randomDB(rng, 6, 8, 12, 3)
	var reqs atomic.Int64
	wrap := func(s int, h http.Handler) http.Handler {
		if s != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if isCandidates(r) && reqs.Add(1) == 1 {
				<-r.Context().Done()
				return
			}
			h.ServeHTTP(w, r)
		})
	}
	fx := newRemoteFixture(t, db, 2, 3, 3, func(cfg *RemoteConfig) {
		cfg.HedgeAfter = 50 * time.Millisecond
		cfg.Timeout = 30 * time.Second
	}, wrap)
	if _, err := fx.eng.Mine(core.DefaultOptions(2, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if got := fx.eng.WorkerRPCStats()[0].Hedges; got < 1 {
		t.Errorf("hedges = %d, want >= 1", got)
	}
}

// TestWorkerRPCStatsNilForLocal: an in-process engine has no workers
// and reports nil, matching WorkerHealth's contract.
func TestWorkerRPCStatsNilForLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	db := randomDB(rng, 4, 8, 12, 3)
	eng, err := New(db, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.WorkerRPCStats(); got != nil {
		t.Errorf("in-process WorkerRPCStats = %v, want nil", got)
	}
}
