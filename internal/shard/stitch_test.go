package shard

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"skinnymine/internal/core"
	"skinnymine/internal/obs"
)

// TestStitchedWorkerSpans: a distributed mine under a recording trace
// stitches each worker's own spans into the coordinator's trace —
// tagged with their shard and address, rebased to the coordinator's
// clock with non-negative offsets, and nested strictly inside the
// worker.rpc envelope that carried them.
func TestStitchedWorkerSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randomDB(rng, 7, 10, 16, 3)
	opt := core.DefaultOptions(2, 3, 1)
	fx := newRemoteFixture(t, db, opt.Support, 3, 3, nil, nil)

	tr := obs.NewTrace()
	ctx := obs.NewContext(context.Background(), tr)
	if _, err := fx.eng.MineCtx(ctx, opt); err != nil {
		t.Fatal(err)
	}
	spans := tr.Snapshot()

	// Collect the rpc envelopes by shard tag; several per shard (one
	// per level op) is normal — a worker span must fit inside one.
	type iv struct{ start, end int64 }
	rpcs := map[int64][]iv{}
	for _, sp := range spans {
		if sp.Name != "worker.rpc" {
			continue
		}
		shard, ok := sp.Attrs["shard"].(int64)
		if !ok {
			t.Fatalf("worker.rpc span lacks an int64 shard tag: %v", sp.Attrs)
		}
		rpcs[shard] = append(rpcs[shard], iv{sp.StartUs, sp.StartUs + sp.DurationUs})
	}
	if len(rpcs) != 3 {
		t.Fatalf("rpc envelopes for %d shards, want 3", len(rpcs))
	}

	workerSpans := 0
	seenShards := map[int64]bool{}
	for _, sp := range spans {
		switch sp.Name {
		case "worker.decode", "worker.stage1", "worker.encode":
		default:
			continue
		}
		workerSpans++
		if sp.StartUs < 0 || sp.DurationUs < 0 {
			t.Errorf("grafted span %s has negative offset/duration: %d/%d", sp.Name, sp.StartUs, sp.DurationUs)
		}
		shard, ok := sp.Attrs["shard"].(int64)
		if !ok {
			t.Fatalf("grafted span %s lacks an int64 shard tag: %v", sp.Name, sp.Attrs)
		}
		seenShards[shard] = true
		if addr, _ := sp.Attrs["addr"].(string); addr == "" {
			t.Errorf("grafted span %s lacks an addr tag", sp.Name)
		}
		nested := false
		for _, env := range rpcs[shard] {
			if sp.StartUs >= env.start && sp.StartUs+sp.DurationUs <= env.end {
				nested = true
				break
			}
		}
		if !nested {
			t.Errorf("grafted span %s [%d, %d] on shard %d fits no worker.rpc envelope %v",
				sp.Name, sp.StartUs, sp.StartUs+sp.DurationUs, shard, rpcs[shard])
		}
	}
	if workerSpans == 0 {
		t.Fatal("no worker-side spans were stitched into the coordinator trace")
	}
	if len(seenShards) != 3 {
		t.Errorf("stitched spans from %d shards, want all 3", len(seenShards))
	}
	// stage1 spans carry the worker's own accounting.
	for _, sp := range spans {
		if sp.Name != "worker.stage1" {
			continue
		}
		if _, ok := sp.Attrs["candidates"]; !ok {
			t.Errorf("worker.stage1 span lacks a candidates tag: %v", sp.Attrs)
		}
		break
	}
}

// TestStitchTracingPreservesBytes extends the distributed determinism
// refguard to the stitched path: at P ∈ {1, 3, 8}, mining with a
// recording trace in context — which turns on the worker span opt-in
// header and the graft path — must reproduce the untraced result byte
// for byte. Tracing changes visibility, never bytes.
func TestStitchTracingPreservesBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db := randomDB(rng, 7, 10, 16, 3)
	opt := core.DefaultOptions(2, 3, 1)
	for _, p := range []int{1, 3, 8} {
		fx := newRemoteFixture(t, db, opt.Support, p, 3, nil, nil)
		plain, err := fx.eng.Mine(opt)
		if err != nil {
			t.Fatalf("P=%d untraced: %v", p, err)
		}
		// Fresh fixture: the first mine materialized levels, a second
		// would reuse them and skip worker RPCs.
		fx2 := newRemoteFixture(t, db, opt.Support, p, 3, nil, nil)
		ctx := obs.NewContext(context.Background(), obs.NewTrace())
		traced, err := fx2.eng.MineCtx(ctx, opt)
		if err != nil {
			t.Fatalf("P=%d traced: %v", p, err)
		}
		if got, want := renderPatterns(traced.Patterns), renderPatterns(plain.Patterns); got != want {
			t.Errorf("P=%d: tracing changed the mined bytes\ntraced:\n%s\nuntraced:\n%s", p, got, want)
		}
	}
}

// TestStitchHostileSkewClamped: a worker whose span header claims
// negative offsets (a clock running behind its own trace start, or a
// corrupted reply) must not produce negative offsets after grafting —
// rebasing clamps at zero instead of trusting the remote clock.
func TestStitchHostileSkewClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randomDB(rng, 7, 10, 16, 3)
	opt := core.DefaultOptions(2, 3, 1)
	hostile := `[{"name":"worker.skewed","start_us":-900000000,"duration_us":-5}]`
	wrap := func(shard int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, r)
			for k, vs := range rec.Header() {
				w.Header()[k] = vs
			}
			if rec.Header().Get(SpansHeader) != "" {
				w.Header().Set(SpansHeader, hostile)
			}
			w.WriteHeader(rec.Code)
			w.Write(rec.Body.Bytes())
		})
	}
	fx := newRemoteFixture(t, db, opt.Support, 2, 3, nil, wrap)
	tr := obs.NewTrace()
	ctx := obs.NewContext(context.Background(), tr)
	if _, err := fx.eng.MineCtx(ctx, opt); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range tr.Snapshot() {
		if sp.Name != "worker.skewed" {
			continue
		}
		found = true
		if sp.StartUs < 0 || sp.DurationUs < 0 {
			t.Errorf("hostile skew leaked through the graft: start=%d dur=%d", sp.StartUs, sp.DurationUs)
		}
	}
	if !found {
		t.Fatal("hostile span never reached the coordinator trace (header not grafted?)")
	}
}

// TestWorkerInfoEnriched: /skinnymine/v1/info self-describes the
// worker — snapshot CRC, manifest shard index, uptime, build info —
// so a fleet can be audited without reading coordinator state.
func TestWorkerInfoEnriched(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randomDB(rng, 4, 8, 12, 3)
	w, err := NewWorker(db, 3, 2, 0xDEADBEEF)
	if err != nil {
		t.Fatal(err)
	}
	w.SetShard(2)
	ts := httptest.NewServer(w)
	defer ts.Close()

	for _, path := range []string{WorkerInfoPath, legacyInfoPath} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var info WorkerInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatalf("%s: decode info: %v", path, err)
		}
		resp.Body.Close()
		if info.CRC != "deadbeef" {
			t.Errorf("%s: crc %q, want deadbeef", path, info.CRC)
		}
		if info.Shard != 2 {
			t.Errorf("%s: shard %d, want 2", path, info.Shard)
		}
		if info.UptimeSeconds < 0 {
			t.Errorf("%s: uptime %v, want >= 0", path, info.UptimeSeconds)
		}
		if info.GoVersion == "" {
			t.Errorf("%s: missing go_version", path)
		}
		if info.Graphs != 4 {
			t.Errorf("%s: graphs %d, want 4", path, info.Graphs)
		}
	}
}
