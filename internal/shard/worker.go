package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"skinnymine/internal/core"
	"skinnymine/internal/graph"
	"skinnymine/internal/indexio"
	"skinnymine/internal/obs"
)

// Worker HTTP protocol, served by one process per shard file:
//
//	GET  /skinnymine/v1/info        identity probe: graph count, σ, shard
//	                                CRC, shard index, uptime, build info
//	POST /skinnymine/v1/candidates  one Stage I op; query selects it:
//	      op=edges                      level-1 candidates (no body)
//	      op=concat                     double the posted level (body)
//	      op=merge&l=L&m=M              overlap the posted level (body)
//	      workers=N                     join fan-out inside the shard
//
// (The pre-rename /shard/v1/* paths stay registered as aliases so an
// old coordinator or probe keeps working against a new worker.)
//
// Candidate sets travel both ways as indexio level-set streams
// (LevelMagic) with SHARD-LOCAL graph IDs — the coordinator owns the
// global↔local remap, which preserves embedding order because each
// shard's global IDs ascend. Every candidate request must carry the
// coordinator's idea of this worker's shard file CRC in the
// ShardCRCHeader; a mismatch is answered 409 so a miswired fleet fails
// loudly and permanently instead of mining garbage.
const (
	WorkerInfoPath       = "/skinnymine/v1/info"
	WorkerCandidatesPath = "/skinnymine/v1/candidates"

	// Legacy aliases from before the protocol rename.
	legacyInfoPath       = "/shard/v1/info"
	legacyCandidatesPath = "/shard/v1/candidates"

	// ShardCRCHeader carries the CRC-32C (Castagnoli, 8 lowercase hex
	// digits) of the shard snapshot file the coordinator believes this
	// worker serves — the same checksum the manifest records.
	ShardCRCHeader = "X-Skinnymine-Shard-Crc"

	// TraceHeader opts a candidate request into span recording: when it
	// is "1", the worker times its decode / Stage I op / encode phases
	// under a recording trace and returns the completed spans as compact
	// JSON in SpansHeader, offsets relative to the worker's own request
	// start. Tracing is visibility only — the response body is
	// byte-identical either way (refguard-pinned).
	TraceHeader = "X-Skinnymine-Trace"

	// SpansHeader carries the worker's []obs.SpanData as one line of
	// JSON on a traced candidate response, for the coordinator to graft
	// under its worker.rpc span.
	SpansHeader = "X-Skinnymine-Spans"
)

// Worker serves Stage I candidate generation for one shard's graphs
// over HTTP. It is stateless across requests: each candidate request
// builds a fresh core.ShardStage1 (cheap — no precomputation), so
// concurrent requests, including a coordinator's hedged duplicates,
// never share join scratch state.
type Worker struct {
	graphs    []*graph.Graph
	gids      []int32 // 0..len(graphs)-1: the worker IS its whole shard
	numLabels int
	sigma     int
	crc       uint32
	shard     int // manifest shard index, -1 when unknown
	start     time.Time
	mux       *http.ServeMux
	log       *slog.Logger
}

// WorkerInfo is the /skinnymine/v1/info (and /healthz) response body:
// enough identity for an operator — or skinnytop — to spot a miswired
// or stale worker before a 409 does.
type WorkerInfo struct {
	Status        string  `json:"status"`
	Graphs        int     `json:"graphs"`
	Sigma         int     `json:"sigma"`
	CRC           string  `json:"crc"`   // 8 lowercase hex digits, CRC-32C
	Shard         int     `json:"shard"` // manifest shard index, -1 when unknown
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	Revision      string  `json:"revision,omitempty"` // VCS revision baked into the binary
}

// NewWorker returns a worker serving the given shard content. graphs
// are the shard's graphs in shard-local order, numLabels the size of
// the snapshot's label vocabulary, sigma the index threshold (reported
// by the info probe; candidate generation itself runs at threshold 1,
// like every shard), and crc the CRC-32C of the shard snapshot file.
func NewWorker(graphs []*graph.Graph, numLabels, sigma int, crc uint32) (*Worker, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("shard: refusing to serve a worker with no graphs")
	}
	w := &Worker{
		graphs:    graphs,
		gids:      make([]int32, len(graphs)),
		numLabels: numLabels,
		sigma:     sigma,
		crc:       crc,
		shard:     -1,
		start:     time.Now(),
		mux:       http.NewServeMux(),
		log:       slog.Default(),
	}
	for i := range w.gids {
		w.gids[i] = int32(i)
	}
	w.mux.HandleFunc(WorkerInfoPath, w.handleInfo)
	w.mux.HandleFunc(WorkerCandidatesPath, w.handleCandidates)
	w.mux.HandleFunc(legacyInfoPath, w.handleInfo)
	w.mux.HandleFunc(legacyCandidatesPath, w.handleCandidates)
	w.mux.HandleFunc("/healthz", w.handleInfo)
	return w, nil
}

// SetShard records the manifest shard index this worker serves, for the
// info probe (default -1, unknown). Call before serving, like
// SetLogger.
func (w *Worker) SetShard(s int) { w.shard = s }

// SetLogger replaces the worker's structured logger (default:
// slog.Default()). Call it before serving, not concurrently with
// requests. Every candidate RPC is logged with its op, level
// parameters, result size, duration and the coordinator's request ID
// (echoed from the X-Request-Id header), so one query is greppable
// across the whole fleet.
func (w *Worker) SetLogger(l *slog.Logger) {
	if l != nil {
		w.log = l
	}
}

// CRC returns the shard file checksum the worker pins requests to.
func (w *Worker) CRC() uint32 { return w.crc }

// NumGraphs returns the shard's graph count.
func (w *Worker) NumGraphs() int { return len(w.graphs) }

// Sigma returns the threshold the shard snapshot was built with.
func (w *Worker) Sigma() int { return w.sigma }

func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	w.mux.ServeHTTP(rw, r)
}

// buildRevision is the VCS revision stamped into the binary, resolved
// once — ReadBuildInfo walks the whole dependency table.
var buildRevision = func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return ""
}()

func (w *Worker) handleInfo(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(WorkerInfo{
		Status:        "ok",
		Graphs:        len(w.graphs),
		Sigma:         w.sigma,
		CRC:           fmt.Sprintf("%08x", w.crc),
		Shard:         w.shard,
		UptimeSeconds: time.Since(w.start).Seconds(),
		GoVersion:     runtime.Version(),
		Revision:      buildRevision,
	})
}

func (w *Worker) handleCandidates(rw http.ResponseWriter, r *http.Request) {
	// Echo the coordinator's request ID so one mining query is greppable
	// coordinator-log → every worker log; every outcome below is logged
	// with it.
	reqID := r.Header.Get(obs.RequestIDHeader)
	if reqID != "" {
		rw.Header().Set(obs.RequestIDHeader, reqID)
	}
	// Opt-in span recording: offsets are relative to THIS trace's start
	// (the request's arrival), so the coordinator can rebase them against
	// its own clock without ever seeing ours — clock skew cannot reach
	// the stitched tree. Tracing must not change the response bytes
	// (refguard-pinned), only add the SpansHeader.
	var wtr *obs.Trace
	tracer := obs.Nop
	if r.Header.Get(TraceHeader) == "1" {
		wtr = obs.NewTrace()
		tracer = wtr
	}
	t0 := time.Now()
	op := r.URL.Query().Get("op")
	fail := func(status int, msg string) {
		w.log.Warn("candidates rejected", "op", op, "status", status, "err", msg, "request_id", reqID)
		http.Error(rw, msg, status)
	}
	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, "candidates requests are POST")
		return
	}
	if got := r.Header.Get(ShardCRCHeader); got != fmt.Sprintf("%08x", w.crc) {
		// Permanent: the coordinator is talking to the wrong shard (or a
		// stale generation). Retrying cannot help; say so with a 409.
		fail(http.StatusConflict, fmt.Sprintf("shard CRC mismatch: this worker serves %08x, request pins %q", w.crc, got))
		return
	}
	q := r.URL.Query()
	workers, err := queryInt(q.Get("workers"), 1)
	if err != nil {
		fail(http.StatusBadRequest, "bad workers parameter: "+err.Error())
		return
	}
	st, err := core.NewShardStage1(w.graphs, w.gids)
	if err != nil {
		fail(http.StatusInternalServerError, err.Error())
		return
	}
	// readLevel under a decode span tagged with what came off the wire.
	decode := func() ([]*core.PathPattern, error) {
		sp := tracer.Start("worker.decode")
		ps, err := w.readLevel(r)
		if err != nil {
			sp.End()
			return nil, err
		}
		sp.TagInt("patterns", int64(len(ps))).TagInt("embeddings", countEmbeddings(ps)).End()
		return ps, nil
	}
	// Validation and decode settle the op's inputs first; the stage1
	// span then times exactly the candidate generation, with decode and
	// encode as siblings, not children.
	var runOp func() []*core.PathPattern
	switch op {
	case "edges":
		runOp = st.EdgeCandidates
	case "concat":
		prev, err := decode()
		if err != nil {
			fail(http.StatusBadRequest, err.Error())
			return
		}
		runOp = func() []*core.PathPattern { return st.ConcatCandidates(prev, workers) }
	case "merge":
		l, err := queryInt(q.Get("l"), 0)
		if err != nil {
			fail(http.StatusBadRequest, "bad l parameter: "+err.Error())
			return
		}
		m, err := queryInt(q.Get("m"), 0)
		if err != nil {
			fail(http.StatusBadRequest, "bad m parameter: "+err.Error())
			return
		}
		if m < 1 || l <= m || l >= 2*m {
			fail(http.StatusBadRequest, fmt.Sprintf("merge requires m < l < 2m, got l=%d m=%d", l, m))
			return
		}
		pool, err := decode()
		if err != nil {
			fail(http.StatusBadRequest, err.Error())
			return
		}
		runOp = func() []*core.PathPattern { return st.MergeCandidates(pool, l, m, workers) }
	default:
		fail(http.StatusBadRequest, fmt.Sprintf("unknown op %q", op))
		return
	}
	sp1 := tracer.Start("worker.stage1").Tag("op", op)
	out := runOp()
	sp1.TagInt("candidates", int64(len(out))).TagInt("embeddings", countEmbeddings(out)).End()
	var buf bytes.Buffer
	spEnc := tracer.Start("worker.encode")
	if err := indexio.SaveLevel(&buf, out); err != nil {
		fail(http.StatusInternalServerError, err.Error())
		return
	}
	spEnc.TagInt("bytes", int64(buf.Len())).End()
	if wtr != nil {
		// Compact single-line JSON; SpanData attrs are string/int64 only,
		// so the encoding is header-safe. Must go out before the body.
		if js, err := json.Marshal(wtr.Snapshot()); err == nil {
			rw.Header().Set(SpansHeader, string(js))
		}
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	rw.Write(buf.Bytes())
	w.log.Info("candidates served", "op", op, "workers", workers,
		"patterns", len(out), "bytes", buf.Len(),
		"dur_ms", float64(time.Since(t0).Microseconds())/1000, "request_id", reqID)
}

// readLevel decodes the posted level set and range-checks every
// embedding vertex against its graph — decoded patterns feed straight
// into join scratch arrays, so a bad vertex must be a 400, never a
// panic (the same guarantee Restore gives loaded projections).
func (w *Worker) readLevel(r *http.Request) ([]*core.PathPattern, error) {
	ps, err := indexio.LoadLevel(r.Body, w.numLabels, len(w.graphs))
	if err != nil {
		return nil, err
	}
	for pi, p := range ps {
		for _, e := range p.Embs {
			g := w.graphs[e.GID]
			for _, v := range e.Seq {
				if int(v) < 0 || int(v) >= g.N() {
					return nil, fmt.Errorf("shard: pattern %d embedding vertex %d out of range for graph %d", pi, v, e.GID)
				}
			}
		}
	}
	return ps, nil
}

// countEmbeddings totals the embedding lists of a level, for span tags.
func countEmbeddings(ps []*core.PathPattern) int64 {
	var n int64
	for _, p := range ps {
		n += int64(len(p.Embs))
	}
	return n
}

// queryInt parses a positive-int query parameter, defaulting when
// absent.
func queryInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("negative value %d", n)
	}
	return n, nil
}
