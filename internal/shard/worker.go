package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"skinnymine/internal/core"
	"skinnymine/internal/graph"
	"skinnymine/internal/indexio"
	"skinnymine/internal/obs"
)

// Worker HTTP protocol, served by one process per shard file:
//
//	GET  /shard/v1/info        identity probe: graph count, σ, shard CRC
//	POST /shard/v1/candidates  one Stage I op; query selects it:
//	      op=edges                      level-1 candidates (no body)
//	      op=concat                     double the posted level (body)
//	      op=merge&l=L&m=M              overlap the posted level (body)
//	      workers=N                     join fan-out inside the shard
//
// Candidate sets travel both ways as indexio level-set streams
// (LevelMagic) with SHARD-LOCAL graph IDs — the coordinator owns the
// global↔local remap, which preserves embedding order because each
// shard's global IDs ascend. Every candidate request must carry the
// coordinator's idea of this worker's shard file CRC in the
// ShardCRCHeader; a mismatch is answered 409 so a miswired fleet fails
// loudly and permanently instead of mining garbage.
const (
	WorkerInfoPath       = "/shard/v1/info"
	WorkerCandidatesPath = "/shard/v1/candidates"

	// ShardCRCHeader carries the CRC-32C (Castagnoli, 8 lowercase hex
	// digits) of the shard snapshot file the coordinator believes this
	// worker serves — the same checksum the manifest records.
	ShardCRCHeader = "X-Skinnymine-Shard-Crc"
)

// Worker serves Stage I candidate generation for one shard's graphs
// over HTTP. It is stateless across requests: each candidate request
// builds a fresh core.ShardStage1 (cheap — no precomputation), so
// concurrent requests, including a coordinator's hedged duplicates,
// never share join scratch state.
type Worker struct {
	graphs    []*graph.Graph
	gids      []int32 // 0..len(graphs)-1: the worker IS its whole shard
	numLabels int
	sigma     int
	crc       uint32
	mux       *http.ServeMux
	log       *slog.Logger
}

// WorkerInfo is the /shard/v1/info response body.
type WorkerInfo struct {
	Status string `json:"status"`
	Graphs int    `json:"graphs"`
	Sigma  int    `json:"sigma"`
	CRC    string `json:"crc"` // 8 lowercase hex digits, CRC-32C
}

// NewWorker returns a worker serving the given shard content. graphs
// are the shard's graphs in shard-local order, numLabels the size of
// the snapshot's label vocabulary, sigma the index threshold (reported
// by the info probe; candidate generation itself runs at threshold 1,
// like every shard), and crc the CRC-32C of the shard snapshot file.
func NewWorker(graphs []*graph.Graph, numLabels, sigma int, crc uint32) (*Worker, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("shard: refusing to serve a worker with no graphs")
	}
	w := &Worker{
		graphs:    graphs,
		gids:      make([]int32, len(graphs)),
		numLabels: numLabels,
		sigma:     sigma,
		crc:       crc,
		mux:       http.NewServeMux(),
		log:       slog.Default(),
	}
	for i := range w.gids {
		w.gids[i] = int32(i)
	}
	w.mux.HandleFunc(WorkerInfoPath, w.handleInfo)
	w.mux.HandleFunc(WorkerCandidatesPath, w.handleCandidates)
	w.mux.HandleFunc("/healthz", w.handleInfo)
	return w, nil
}

// SetLogger replaces the worker's structured logger (default:
// slog.Default()). Call it before serving, not concurrently with
// requests. Every candidate RPC is logged with its op, level
// parameters, result size, duration and the coordinator's request ID
// (echoed from the X-Request-Id header), so one query is greppable
// across the whole fleet.
func (w *Worker) SetLogger(l *slog.Logger) {
	if l != nil {
		w.log = l
	}
}

// CRC returns the shard file checksum the worker pins requests to.
func (w *Worker) CRC() uint32 { return w.crc }

// NumGraphs returns the shard's graph count.
func (w *Worker) NumGraphs() int { return len(w.graphs) }

// Sigma returns the threshold the shard snapshot was built with.
func (w *Worker) Sigma() int { return w.sigma }

func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	w.mux.ServeHTTP(rw, r)
}

func (w *Worker) handleInfo(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(WorkerInfo{
		Status: "ok",
		Graphs: len(w.graphs),
		Sigma:  w.sigma,
		CRC:    fmt.Sprintf("%08x", w.crc),
	})
}

func (w *Worker) handleCandidates(rw http.ResponseWriter, r *http.Request) {
	// Echo the coordinator's request ID so one mining query is greppable
	// coordinator-log → every worker log; every outcome below is logged
	// with it.
	reqID := r.Header.Get(obs.RequestIDHeader)
	if reqID != "" {
		rw.Header().Set(obs.RequestIDHeader, reqID)
	}
	t0 := time.Now()
	op := r.URL.Query().Get("op")
	fail := func(status int, msg string) {
		w.log.Warn("candidates rejected", "op", op, "status", status, "err", msg, "request_id", reqID)
		http.Error(rw, msg, status)
	}
	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, "candidates requests are POST")
		return
	}
	if got := r.Header.Get(ShardCRCHeader); got != fmt.Sprintf("%08x", w.crc) {
		// Permanent: the coordinator is talking to the wrong shard (or a
		// stale generation). Retrying cannot help; say so with a 409.
		fail(http.StatusConflict, fmt.Sprintf("shard CRC mismatch: this worker serves %08x, request pins %q", w.crc, got))
		return
	}
	q := r.URL.Query()
	workers, err := queryInt(q.Get("workers"), 1)
	if err != nil {
		fail(http.StatusBadRequest, "bad workers parameter: "+err.Error())
		return
	}
	st, err := core.NewShardStage1(w.graphs, w.gids)
	if err != nil {
		fail(http.StatusInternalServerError, err.Error())
		return
	}
	var out []*core.PathPattern
	switch op {
	case "edges":
		out = st.EdgeCandidates()
	case "concat":
		prev, err := w.readLevel(r)
		if err != nil {
			fail(http.StatusBadRequest, err.Error())
			return
		}
		out = st.ConcatCandidates(prev, workers)
	case "merge":
		l, err := queryInt(q.Get("l"), 0)
		if err != nil {
			fail(http.StatusBadRequest, "bad l parameter: "+err.Error())
			return
		}
		m, err := queryInt(q.Get("m"), 0)
		if err != nil {
			fail(http.StatusBadRequest, "bad m parameter: "+err.Error())
			return
		}
		if m < 1 || l <= m || l >= 2*m {
			fail(http.StatusBadRequest, fmt.Sprintf("merge requires m < l < 2m, got l=%d m=%d", l, m))
			return
		}
		pool, err := w.readLevel(r)
		if err != nil {
			fail(http.StatusBadRequest, err.Error())
			return
		}
		out = st.MergeCandidates(pool, l, m, workers)
	default:
		fail(http.StatusBadRequest, fmt.Sprintf("unknown op %q", op))
		return
	}
	var buf bytes.Buffer
	if err := indexio.SaveLevel(&buf, out); err != nil {
		fail(http.StatusInternalServerError, err.Error())
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	rw.Write(buf.Bytes())
	w.log.Info("candidates served", "op", op, "workers", workers,
		"patterns", len(out), "bytes", buf.Len(),
		"dur_ms", float64(time.Since(t0).Microseconds())/1000, "request_id", reqID)
}

// readLevel decodes the posted level set and range-checks every
// embedding vertex against its graph — decoded patterns feed straight
// into join scratch arrays, so a bad vertex must be a 400, never a
// panic (the same guarantee Restore gives loaded projections).
func (w *Worker) readLevel(r *http.Request) ([]*core.PathPattern, error) {
	ps, err := indexio.LoadLevel(r.Body, w.numLabels, len(w.graphs))
	if err != nil {
		return nil, err
	}
	for pi, p := range ps {
		for _, e := range p.Embs {
			g := w.graphs[e.GID]
			for _, v := range e.Seq {
				if int(v) < 0 || int(v) >= g.N() {
					return nil, fmt.Errorf("shard: pattern %d embedding vertex %d out of range for graph %d", pi, v, e.GID)
				}
			}
		}
	}
	return ps, nil
}

// queryInt parses a positive-int query parameter, defaulting when
// absent.
func queryInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("negative value %d", n)
	}
	return n, nil
}
