package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"skinnymine/internal/core"
	"skinnymine/internal/graph"
	"skinnymine/internal/support"
)

// remoteFixture is a distributed engine wired to one httptest worker
// per shard of a freshly partitioned database.
type remoteFixture struct {
	eng     *Engine
	servers []*httptest.Server
}

// newRemoteFixture partitions db into P shards, serves each shard's
// graphs behind an httptest worker — optionally wrapped by wrap for
// fault injection — and restores a distributed engine over the fleet.
// mod edits the RemoteConfig (fast test defaults: 5s attempts, zero
// retries, 5ms backoff, no hedging, no probing) before RestoreRemote.
func newRemoteFixture(t *testing.T, db []*graph.Graph, sigma, P, numLabels int, mod func(*RemoteConfig), wrap func(shard int, h http.Handler) http.Handler) *remoteFixture {
	t.Helper()
	eng0, err := New(db, sigma, P)
	if err != nil {
		t.Fatal(err)
	}
	states := eng0.ShardStates()
	assign := eng0.Assignment()
	crcs := make([]uint32, len(assign))
	urls := make([]string, len(assign))
	servers := make([]*httptest.Server, len(assign))
	for s := range assign {
		crcs[s] = 0xC0DE0000 + uint32(s)
		w, err := NewWorker(states[s].Graphs, numLabels, sigma, crcs[s])
		if err != nil {
			t.Fatal(err)
		}
		var h http.Handler = w
		if wrap != nil {
			h = wrap(s, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		servers[s] = ts
		urls[s] = ts.URL
	}
	cfg := RemoteConfig{
		Workers:      urls,
		Timeout:      5 * time.Second,
		Retries:      0,
		RetryBackoff: 5 * time.Millisecond,
	}
	if mod != nil {
		mod(&cfg)
	}
	re, err := RestoreRemote(states, assign, sigma, crcs, numLabels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { re.Close() })
	return &remoteFixture{eng: re, servers: servers}
}

// isCandidates reports whether r is a Stage I candidate RPC (the calls
// fault-injection wrappers care about; info probes pass through).
func isCandidates(r *http.Request) bool {
	return strings.HasPrefix(r.URL.Path, WorkerCandidatesPath)
}

// deadAddr returns a loopback address nothing listens on.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestRemoteMatchesInProcessRefguard is the distributed determinism
// refguard: mining through HTTP workers at P ∈ {1, 3, 8} must
// reproduce the unsharded result byte for byte — pattern set,
// structure, every support measure, output order — under both support
// measures and diameter bands. This is the acceptance gate for the
// whole wire path: global↔local GID remap, level codec, scatter/gather,
// cross-shard merge.
func TestRemoteMatchesInProcessRefguard(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db := randomDB(rng, 7, 10, 16, 3)
	base := core.DefaultOptions(2, 3, 1)
	band := core.DefaultOptions(2, 4, 1)
	band.MinLength = 2
	tx := core.DefaultOptions(2, 3, 1)
	tx.Measure = support.GraphCount
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"embeddings", base},
		{"band", band},
		{"graphcount", tx},
	}
	for _, v := range variants {
		want, err := core.MineDB(db, v.opt)
		if err != nil {
			t.Fatalf("%s: unsharded: %v", v.name, err)
		}
		wantS := renderPatterns(want.Patterns)
		for _, p := range []int{1, 3, 8} {
			fx := newRemoteFixture(t, db, v.opt.Support, p, 3, nil, nil)
			got, err := fx.eng.Mine(v.opt)
			if err != nil {
				t.Fatalf("%s P=%d: distributed Mine: %v", v.name, p, err)
			}
			if gotS := renderPatterns(got.Patterns); gotS != wantS {
				t.Errorf("%s P=%d: distributed result diverges\ndistributed:\n%s\nunsharded:\n%s",
					v.name, p, gotS, wantS)
			}
		}
	}
}

// TestRemoteConstrainedMatchesInProcess: pushdown hooks run on the
// coordinator (Stage II and seed selection are local), so a constrained
// distributed mine must match the shared-index result exactly.
func TestRemoteConstrainedMatchesInProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randomDB(rng, 8, 14, 22, 3)
	opt := core.DefaultOptions(2, 3, 1)
	forbidden := graph.Label(0)
	opt.PrunePath = func(seq []graph.Label) bool {
		for _, l := range seq {
			if l == forbidden {
				return true
			}
		}
		return false
	}
	opt.PrunePattern = func(g *graph.Graph, _ int32, _ int) bool { return g.N() > 8 }
	opt.OutputFilter = func(g *graph.Graph, _ int32, _ int) bool { return g.M() >= 3 }

	ix, err := core.BuildIndex(db, opt.Support)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ix.Mine(opt)
	if err != nil {
		t.Fatal(err)
	}
	fx := newRemoteFixture(t, db, opt.Support, 3, 3, nil, nil)
	got, err := fx.eng.Mine(opt)
	if err != nil {
		t.Fatal(err)
	}
	if renderPatterns(got.Patterns) != renderPatterns(want.Patterns) {
		t.Errorf("constrained distributed result diverges\ndistributed:\n%s\nindexed:\n%s",
			renderPatterns(got.Patterns), renderPatterns(want.Patterns))
	}
}

// TestRemoteMinimalPatternsMatchesDirect pins the merged Stage I levels
// — including embeddings and their order — against the unsharded
// DiamMiner's, through the full wire round trip. Length 5 forces a
// merge op (m=4 < 5 < 8) over the workers.
func TestRemoteMinimalPatternsMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := randomDB(rng, 7, 12, 20, 3)
	ix, err := core.BuildIndex(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	fx := newRemoteFixture(t, db, 2, 3, 3, nil, nil)
	for _, l := range []int{1, 2, 3, 5} {
		want, err := ix.MinimalPatterns(l)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fx.eng.MinimalPatterns(l)
		if err != nil {
			t.Fatal(err)
		}
		if renderPaths(got) != renderPaths(want) {
			t.Errorf("l=%d: merged level diverges\ndistributed:\n%s\nunsharded:\n%s",
				l, renderPaths(got), renderPaths(want))
		}
	}
}

// TestRemoteWorkerDownAtStartup: a coordinator starts with a worker
// dead, and the first materialization that needs it fails with
// ErrUnavailable after the retry budget — leaving the level caches
// completely untouched (no partial level) and the worker marked
// unhealthy.
func TestRemoteWorkerDownAtStartup(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	db := randomDB(rng, 6, 8, 12, 3)
	dead := deadAddr(t)
	fx := newRemoteFixture(t, db, 2, 3, 3, func(cfg *RemoteConfig) {
		cfg.Workers[1] = dead // bare host:port: also exercises scheme normalization
		cfg.Retries = 1
	}, nil)

	_, err := fx.eng.Mine(core.DefaultOptions(2, 3, 1))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Mine with a dead worker: got %v, want ErrUnavailable", err)
	}
	if got := fx.eng.MaterializedLevels(); len(got) != 0 {
		t.Errorf("failed materialization left levels %v cached", got)
	}
	health := fx.eng.WorkerHealth()
	if len(health) != 3 {
		t.Fatalf("WorkerHealth reported %d workers, want 3", len(health))
	}
	if health[1].Healthy {
		t.Error("dead worker reported healthy")
	}
	if health[1].Err == "" {
		t.Error("dead worker carries no error detail")
	}
	if health[1].Addr != dead || health[1].Shard != 1 {
		t.Errorf("dead worker status %+v, want addr %s shard 1", health[1], dead)
	}
	if !health[0].Healthy || !health[2].Healthy {
		t.Errorf("live workers not marked healthy after successful RPCs: %+v", health)
	}
}

// TestRemoteWorkerDiesMidLevel: a worker that dies partway through a
// materialization fails that level with ErrUnavailable while every
// fully merged earlier level stays cached — and when the worker comes
// back, mining resumes from those caches and still produces the
// byte-identical result.
func TestRemoteWorkerDiesMidLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	db := randomDB(rng, 6, 10, 14, 3)
	var down atomic.Bool
	var calls atomic.Int64
	wrap := func(s int, h http.Handler) http.Handler {
		if s != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// Die after two successful candidate ops: levels 1 and 2
			// complete, the concat toward level 4 fails.
			if isCandidates(r) && calls.Add(1) > 2 && down.Load() {
				http.Error(w, "worker lost", http.StatusBadGateway)
				return
			}
			h.ServeHTTP(w, r)
		})
	}
	down.Store(true)
	fx := newRemoteFixture(t, db, 2, 3, 3, func(cfg *RemoteConfig) { cfg.Retries = 1 }, wrap)

	opt := core.DefaultOptions(2, 5, 1)
	_, err := fx.eng.Mine(opt)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Mine with a dying worker: got %v, want ErrUnavailable", err)
	}
	if got := fmt.Sprint(fx.eng.MaterializedLevels()); got != "[1 2]" {
		t.Errorf("cached levels after mid-materialization death: %v, want [1 2]", got)
	}

	down.Store(false)
	got, err := fx.eng.Mine(opt)
	if err != nil {
		t.Fatalf("Mine after worker recovery: %v", err)
	}
	want, err := core.MineDB(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if renderPatterns(got.Patterns) != renderPatterns(want.Patterns) {
		t.Error("post-recovery distributed result diverges from unsharded mining")
	}
}

// TestRemoteSlowWorkerHedged: with hedging enabled, a straggling RPC is
// duplicated after HedgeAfter and the fresh attempt's answer wins — the
// mine completes promptly and correctly without waiting out the
// straggler.
func TestRemoteSlowWorkerHedged(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	db := randomDB(rng, 6, 8, 12, 3)
	var reqs atomic.Int64
	wrap := func(s int, h http.Handler) http.Handler {
		if s != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// The first candidate RPC stalls until its context dies (the
			// hedge winner's cleanup cancels it); every later one answers.
			if isCandidates(r) && reqs.Add(1) == 1 {
				<-r.Context().Done()
				return
			}
			h.ServeHTTP(w, r)
		})
	}
	fx := newRemoteFixture(t, db, 2, 3, 3, func(cfg *RemoteConfig) {
		cfg.HedgeAfter = 50 * time.Millisecond
		cfg.Timeout = 30 * time.Second // the straggler alone must not bound the mine
	}, wrap)

	opt := core.DefaultOptions(2, 3, 1)
	t0 := time.Now()
	got, err := fx.eng.Mine(opt)
	if err != nil {
		t.Fatalf("hedged Mine: %v", err)
	}
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Errorf("hedged mine took %v — it waited out the straggler", elapsed)
	}
	want, err := core.MineDB(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if renderPatterns(got.Patterns) != renderPatterns(want.Patterns) {
		t.Error("hedged distributed result diverges from unsharded mining")
	}
}

// TestRemoteRetriesTransientFailures: a worker failing transiently
// succeeds within the retry budget; without budget the same failure is
// ErrUnavailable. Together with the mid-level test this pins the
// retry-then-503 contract.
func TestRemoteRetriesTransientFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	db := randomDB(rng, 6, 8, 12, 3)
	flaky := func(failFirst int64) func(int, http.Handler) http.Handler {
		var reqs atomic.Int64
		return func(s int, h http.Handler) http.Handler {
			if s != 0 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if isCandidates(r) && reqs.Add(1) <= failFirst {
					http.Error(w, "transient", http.StatusInternalServerError)
					return
				}
				h.ServeHTTP(w, r)
			})
		}
	}

	opt := core.DefaultOptions(2, 3, 1)
	want, err := core.MineDB(db, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Two failures, two retries: the third attempt lands.
	fx := newRemoteFixture(t, db, 2, 3, 3, func(cfg *RemoteConfig) { cfg.Retries = 2 }, flaky(2))
	got, err := fx.eng.Mine(opt)
	if err != nil {
		t.Fatalf("Mine within retry budget: %v", err)
	}
	if renderPatterns(got.Patterns) != renderPatterns(want.Patterns) {
		t.Error("retried distributed result diverges from unsharded mining")
	}

	// Same failure pattern, no retry budget: unavailable.
	fx = newRemoteFixture(t, db, 2, 3, 3, nil, flaky(2))
	if _, err := fx.eng.Mine(opt); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Mine without retry budget: got %v, want ErrUnavailable", err)
	}
}

// TestRemoteCRCMismatchIsPermanent: a coordinator pinned to a different
// shard checksum than the worker serves fails on the FIRST attempt —
// 409 is a permanent miswiring error, and burning the retry budget on
// it would only delay the operator finding out.
func TestRemoteCRCMismatchIsPermanent(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	db := randomDB(rng, 6, 8, 12, 3)
	eng0, err := New(db, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	states := eng0.ShardStates()
	assign := eng0.Assignment()
	var reqs atomic.Int64
	urls := make([]string, len(assign))
	crcs := make([]uint32, len(assign))
	for s := range assign {
		crcs[s] = 0xC0DE0000 + uint32(s)
		w, err := NewWorker(states[s].Graphs, 3, 2, crcs[s])
		if err != nil {
			t.Fatal(err)
		}
		h := w
		ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if isCandidates(r) {
				reqs.Add(1)
			}
			h.ServeHTTP(rw, r)
		}))
		t.Cleanup(ts.Close)
		urls[s] = ts.URL
	}
	crcs[0]++ // coordinator believes a different shard 0 file
	re, err := RestoreRemote(states, assign, 2, crcs, 3, RemoteConfig{
		Workers: urls, Timeout: 5 * time.Second, Retries: 2, RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { re.Close() })

	_, err = re.Mine(core.DefaultOptions(2, 2, 1))
	if err == nil {
		t.Fatal("miswired coordinator mined successfully")
	}
	if errors.Is(err, ErrUnavailable) {
		t.Errorf("CRC mismatch classified as transient unavailability: %v", err)
	}
	if !strings.Contains(err.Error(), "CRC mismatch") {
		t.Errorf("error does not name the CRC mismatch: %v", err)
	}
	// Exactly one attempt against the miswired shard (plus at most one
	// from the healthy shard, which runs concurrently): shard 0 must not
	// have been retried.
	if n := reqs.Load(); n > 2 {
		t.Errorf("%d candidate RPCs for a permanent failure — the 409 was retried", n)
	}
}

// TestRemoteCancellationWinsOverUnavailable: when the caller's context
// dies mid-RPC the coordinator reports the cancellation, not worker
// unavailability — the serving layer maps those differently (client's
// fault vs 503).
func TestRemoteCancellationWinsOverUnavailable(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	db := randomDB(rng, 6, 8, 12, 3)
	wrap := func(s int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if isCandidates(r) {
				<-r.Context().Done()
				return
			}
			h.ServeHTTP(w, r)
		})
	}
	fx := newRemoteFixture(t, db, 2, 2, 3, func(cfg *RemoteConfig) { cfg.Retries = 2 }, wrap)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := fx.eng.MineCtx(ctx, core.DefaultOptions(2, 2, 1))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled mine: got %v, want context.DeadlineExceeded", err)
	}
	if errors.Is(err, ErrUnavailable) {
		t.Error("cancellation misreported as worker unavailability")
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Errorf("canceled mine returned after %v — retries outlived the caller", elapsed)
	}
}

// TestRemoteProbeRefreshesHealth: the background probe flips a worker's
// advisory health without any mining traffic, in both directions.
func TestRemoteProbeRefreshesHealth(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	db := randomDB(rng, 4, 8, 12, 3)
	fx := newRemoteFixture(t, db, 2, 2, 3, func(cfg *RemoteConfig) {
		cfg.ProbeInterval = 20 * time.Millisecond
	}, nil)

	allHealthy := func() bool {
		for _, ws := range fx.eng.WorkerHealth() {
			if !ws.Healthy {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(5 * time.Second)
	for !allHealthy() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !allHealthy() {
		t.Fatalf("probes never marked the fleet healthy: %+v", fx.eng.WorkerHealth())
	}

	fx.servers[1].Close()
	for fx.eng.WorkerHealth()[1].Healthy && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if h := fx.eng.WorkerHealth()[1]; h.Healthy {
		t.Fatalf("probe never noticed the dead worker: %+v", h)
	}
}

// TestRestoreRemoteValidation: a worker list or checksum list that does
// not match the manifest's shard count is a construction-time error.
func TestRestoreRemoteValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	db := randomDB(rng, 4, 8, 12, 3)
	eng0, err := New(db, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	states := eng0.ShardStates()
	assign := eng0.Assignment()
	cfg := RemoteConfig{Workers: []string{"localhost:1"}}
	if _, err := RestoreRemote(states, assign, 2, []uint32{1, 2}, 3, cfg); err == nil {
		t.Error("worker/shard count mismatch accepted")
	}
	cfg.Workers = []string{"localhost:1", "localhost:2"}
	if _, err := RestoreRemote(states, assign, 2, []uint32{1}, 3, cfg); err == nil {
		t.Error("checksum/shard count mismatch accepted")
	}
}

// TestWorkerHTTPContract pins the worker endpoint behavior a
// coordinator's error classification depends on: wrong method, missing
// or stale CRC pin, unknown op, malformed body.
func TestWorkerHTTPContract(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	db := randomDB(rng, 3, 8, 12, 3)
	w, err := NewWorker(db, 3, 2, 0xDEADBEEF)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(w)
	t.Cleanup(ts.Close)

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	post := func(path, crc, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if crc != "" {
			req.Header.Set(ShardCRCHeader, crc)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := get(WorkerInfoPath); resp.StatusCode != http.StatusOK {
		t.Errorf("info probe: HTTP %d", resp.StatusCode)
	}
	if resp := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz alias: HTTP %d", resp.StatusCode)
	}
	if resp := get(WorkerCandidatesPath + "?op=edges"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET candidates: HTTP %d, want 405", resp.StatusCode)
	}
	if resp := post(WorkerCandidatesPath+"?op=edges", "", ""); resp.StatusCode != http.StatusConflict {
		t.Errorf("missing CRC pin: HTTP %d, want 409", resp.StatusCode)
	}
	if resp := post(WorkerCandidatesPath+"?op=edges", "00000000", ""); resp.StatusCode != http.StatusConflict {
		t.Errorf("stale CRC pin: HTTP %d, want 409", resp.StatusCode)
	}
	if resp := post(WorkerCandidatesPath+"?op=explode", "deadbeef", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown op: HTTP %d, want 400", resp.StatusCode)
	}
	if resp := post(WorkerCandidatesPath+"?op=concat", "deadbeef", "garbage"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed level body: HTTP %d, want 400", resp.StatusCode)
	}
	if resp := post(WorkerCandidatesPath+"?op=merge&l=4&m=2", "deadbeef", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("merge with l=2m: HTTP %d, want 400", resp.StatusCode)
	}
	if resp := post(WorkerCandidatesPath+"?op=edges", "deadbeef", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("valid edges op: HTTP %d, want 200", resp.StatusCode)
	}
}
