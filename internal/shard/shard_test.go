package shard

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"skinnymine/internal/core"
	"skinnymine/internal/graph"
	"skinnymine/internal/indexio"
	"skinnymine/internal/support"
	"skinnymine/internal/testutil"
)

// randomDB builds a transaction database of connected random graphs
// sharing one label space.
func randomDB(rng *rand.Rand, graphsN, minV, maxV, labels int) []*graph.Graph {
	db := make([]*graph.Graph, graphsN)
	for i := range db {
		n := minV + rng.Intn(maxV-minV+1)
		db[i] = testutil.RandomConnectedGraph(rng, n, n/2, labels)
	}
	return db
}

// renderPatterns serializes everything a mined pattern exposes —
// structure, canonical code, every support measure, skinniness — so a
// string comparison is a full-result comparison.
func renderPatterns(ps []*core.Pattern) string {
	var b strings.Builder
	for _, p := range ps {
		fmt.Fprintf(&b, "l=%d code=%x sup=%d gsup=%d mni=%d lvl=%d labels=%v edges=%v\n",
			p.DiamLen, p.CodeKey(), p.Support(), p.Embs.Count(support.GraphCount),
			p.Embs.MNI(), p.MaxLevel(), p.G.Labels(), p.G.Edges())
	}
	return b.String()
}

// renderPaths serializes Stage I path patterns with their embeddings,
// so level comparisons are byte-exact.
func renderPaths(ps []*core.PathPattern) string {
	var b strings.Builder
	for _, p := range ps {
		fmt.Fprintf(&b, "seq=%v sup=%d embs=", p.Seq, p.Support)
		for _, e := range p.Embs {
			fmt.Fprintf(&b, "(%d:%v)", e.GID, e.Seq)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestShardedMatchesUnshardedRefguard is the sharding determinism
// refguard: on randomized transaction databases, sharded mining at
// P ∈ {1, 3, 8} must reproduce the unsharded result — pattern set,
// structure, every support measure, output order — under both support
// measures, diameter bands, and both concurrency modes.
func TestShardedMatchesUnshardedRefguard(t *testing.T) {
	type variant struct {
		name string
		opt  core.Options
	}
	base := core.DefaultOptions(2, 3, 1)
	band := core.DefaultOptions(2, 4, 1)
	band.MinLength = 2
	tx := core.DefaultOptions(2, 3, 1)
	tx.Measure = support.GraphCount
	par := core.DefaultOptions(2, 3, 2)
	par.Concurrency = 8
	variants := []variant{
		{"embeddings", base},
		{"band", band},
		{"graphcount", tx},
		{"concurrent8", par},
	}
	trials := 2
	if testing.Short() {
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		db := randomDB(rng, 6+trial*3, 10, 18, 4)
		for _, v := range variants {
			opt := v.opt
			want, err := core.MineDB(db, opt)
			if err != nil {
				t.Fatalf("trial %d %s: unsharded: %v", trial, v.name, err)
			}
			wantS := renderPatterns(want.Patterns)
			for _, p := range []int{1, 3, 8} {
				eng, err := New(db, opt.Support, p)
				if err != nil {
					t.Fatalf("trial %d %s P=%d: New: %v", trial, v.name, p, err)
				}
				got, err := eng.Mine(opt)
				if err != nil {
					t.Fatalf("trial %d %s P=%d: Mine: %v", trial, v.name, p, err)
				}
				if gotS := renderPatterns(got.Patterns); gotS != wantS {
					t.Errorf("trial %d %s P=%d: sharded result diverges\nsharded:\n%s\nunsharded:\n%s",
						trial, v.name, p, gotS, wantS)
				}
				if got.Stats.PathsMined != want.Stats.PathsMined {
					t.Errorf("trial %d %s P=%d: PathsMined %d, unsharded %d",
						trial, v.name, p, got.Stats.PathsMined, want.Stats.PathsMined)
				}
			}
		}
	}
}

// TestShardedConstrainedMatchesUnsharded checks that the pushdown hooks
// flow through the sharded engine unchanged: seed-selection pruning on
// the shared levels, growth pruning, output filtering.
func TestShardedConstrainedMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randomDB(rng, 8, 14, 22, 3)
	opt := core.DefaultOptions(2, 3, 1)
	forbidden := graph.Label(0)
	opt.PrunePath = func(seq []graph.Label) bool {
		for _, l := range seq {
			if l == forbidden {
				return true
			}
		}
		return false
	}
	opt.PrunePattern = func(g *graph.Graph, _ int32, _ int) bool { return g.N() > 8 }
	opt.OutputFilter = func(g *graph.Graph, _ int32, _ int) bool { return g.M() >= 3 }

	ix, err := core.BuildIndex(db, opt.Support)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ix.Mine(opt)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(db, opt.Support, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Mine(opt)
	if err != nil {
		t.Fatal(err)
	}
	if renderPatterns(got.Patterns) != renderPatterns(want.Patterns) {
		t.Errorf("constrained sharded result diverges from shared-index result\nsharded:\n%s\nindexed:\n%s",
			renderPatterns(got.Patterns), renderPatterns(want.Patterns))
	}
}

// TestMinimalPatternsMatchesDiamMiner pins the merged Stage I levels —
// including embeddings — against the unsharded DiamMiner's.
func TestMinimalPatternsMatchesDiamMiner(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := randomDB(rng, 7, 12, 20, 3)
	ix, err := core.BuildIndex(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(db, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{1, 2, 3, 5} {
		want, err := ix.MinimalPatterns(l)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.MinimalPatterns(l)
		if err != nil {
			t.Fatal(err)
		}
		if renderPaths(got) != renderPaths(want) {
			t.Errorf("l=%d: merged level diverges\nsharded:\n%s\nunsharded:\n%s",
				l, renderPaths(got), renderPaths(want))
		}
	}
}

func TestPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randomDB(rng, 20, 8, 40, 3)

	a := Partition(db, 4)
	b := Partition(db, 4)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("partition is not deterministic: %v vs %v", a, b)
	}

	seen := make([]bool, len(db))
	maxW := int64(0)
	weight := func(gids []int32) int64 {
		w := int64(0)
		for _, gid := range gids {
			w += int64(db[gid].N() + db[gid].M())
		}
		return w
	}
	for _, g := range db {
		if w := int64(g.N() + g.M()); w > maxW {
			maxW = w
		}
	}
	var loads []int64
	for _, gids := range a {
		if len(gids) == 0 {
			t.Fatal("empty shard")
		}
		for _, gid := range gids {
			if seen[gid] {
				t.Fatalf("graph %d assigned twice", gid)
			}
			seen[gid] = true
		}
		loads = append(loads, weight(gids))
	}
	for gid, ok := range seen {
		if !ok {
			t.Fatalf("graph %d unassigned", gid)
		}
	}
	lo, hi := loads[0], loads[0]
	for _, w := range loads {
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	if hi-lo > maxW {
		t.Errorf("load spread %d exceeds the largest graph weight %d: %v", hi-lo, maxW, loads)
	}

	// Clamping: more shards than graphs degenerates to one graph per
	// shard, never an empty shard.
	small := Partition(db[:3], 8)
	if len(small) != 3 {
		t.Fatalf("expected clamp to 3 shards, got %d", len(small))
	}
}

// TestPartitionClampsToFormatLimit: partitioning never exceeds what the
// sharded-snapshot format can persist.
func TestPartitionClampsToFormatLimit(t *testing.T) {
	db := make([]*graph.Graph, indexio.MaxShards+5)
	for i := range db {
		g := graph.New(1)
		g.AddVertex(0)
		db[i] = g
	}
	if got := len(Partition(db, indexio.MaxShards+5)); got != indexio.MaxShards {
		t.Fatalf("Partition built %d shards, format limit is %d", got, indexio.MaxShards)
	}
}

// TestRunShardsHonorsWorkerBudget: at most `workers` shards execute
// concurrently — Concurrency=1 must stay fully sequential.
func TestRunShardsHonorsWorkerBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := randomDB(rng, 8, 6, 10, 3)
	eng, err := New(db, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		var inFlight, peak atomic.Int64
		eng.runShards(context.Background(), workers, func(_ context.Context, s, w int) ([]*core.PathPattern, error) {
			cur := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			return nil, nil
		})
		if peak.Load() > int64(workers) {
			t.Errorf("workers=%d: %d shards ran concurrently", workers, peak.Load())
		}
	}
}

func TestNewRejectsEmptyDatabase(t *testing.T) {
	if _, err := New(nil, 2, 3); err == nil {
		t.Fatal("empty database accepted")
	}
	if got := Partition(nil, 3); got != nil {
		t.Fatalf("Partition(nil) = %v, want nil", got)
	}
}

func TestEngineRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := randomDB(rng, 6, 12, 20, 3)
	opt := core.DefaultOptions(2, 3, 1)
	eng, err := New(db, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Mine(opt)
	if err != nil {
		t.Fatal(err)
	}

	re, err := Restore(eng.ShardStates(), eng.Assignment(), eng.Sigma())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(re.MaterializedLevels()) != fmt.Sprint(eng.MaterializedLevels()) {
		t.Fatalf("restored levels %v, want %v", re.MaterializedLevels(), eng.MaterializedLevels())
	}
	for _, l := range eng.MaterializedLevels() {
		a, _ := eng.MinimalPatterns(l)
		b, _ := re.MinimalPatterns(l)
		if renderPaths(a) != renderPaths(b) {
			t.Errorf("restored level %d diverges", l)
		}
	}
	got, err := re.Mine(opt)
	if err != nil {
		t.Fatal(err)
	}
	if renderPatterns(got.Patterns) != renderPatterns(want.Patterns) {
		t.Error("restored engine mines a different result")
	}
}

func TestRestoreRejectsInconsistentState(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := randomDB(rng, 4, 10, 14, 3)
	eng, err := New(db, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Mine(core.DefaultOptions(2, 2, 1)); err != nil {
		t.Fatal(err)
	}
	states := eng.ShardStates()
	assign := eng.Assignment()

	if _, err := Restore(states[:1], assign, 2); err == nil {
		t.Error("state/assignment count mismatch accepted")
	}
	if _, err := Restore(states, assign, 3); err == nil {
		t.Error("sigma mismatch accepted")
	}
	bad := eng.Assignment()
	bad[0][0] = bad[1][0] // duplicate gid
	if _, err := Restore(states, bad, 2); err == nil {
		t.Error("duplicate graph assignment accepted")
	}

	// An out-of-range embedding vertex must be rejected at Restore, not
	// crash a later materialization that joins the restored projections
	// (the Seq is cloned so the live engine's data stays intact).
	for l, ps := range states[0].Levels {
		if len(ps) == 0 || len(ps[0].Embs) == 0 {
			continue
		}
		tampered := eng.ShardStates()
		e0 := tampered[0].Levels[l][0].Embs[0]
		seq := append(graph.Path(nil), e0.Seq...)
		seq[0] = 9999
		tampered[0].Levels[l][0].Embs[0] = core.PathEmb{GID: e0.GID, Seq: seq}
		if _, err := Restore(tampered, assign, 2); err == nil {
			t.Errorf("level %d: out-of-range embedding vertex accepted", l)
		}
		break
	}
}
