package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"skinnymine/internal/core"
	"skinnymine/internal/indexio"
	"skinnymine/internal/obs"
)

// ErrUnavailable reports that a shard worker stayed unreachable past
// the coordinator's full retry budget. The serving layer maps it to
// HTTP 503: a distributed engine answers completely or not at all —
// never with a partial level — so the failure is safe to surface and
// retry from the outside.
var ErrUnavailable = errors.New("shard: worker unavailable")

// RemoteConfig configures the coordinator side of a distributed
// engine: one worker address per shard, positional (Workers[i] serves
// shard i's snapshot file; every request is pinned to the manifest's
// shard CRC, so miswiring fails with a permanent error, not wrong
// results).
type RemoteConfig struct {
	// Workers holds one "host:port" (or full "http://host:port") per
	// shard.
	Workers []string
	// Timeout bounds each RPC attempt. <= 0 means 30s. The caller's
	// context deadline additionally applies — whichever is sooner.
	Timeout time.Duration
	// Retries is the number of re-attempts after the first failed RPC
	// (retryable failures only: connection errors, timeouts, 5xx).
	// < 0 means 2.
	Retries int
	// RetryBackoff is the wait before the first retry; it doubles per
	// retry. <= 0 means 100ms.
	RetryBackoff time.Duration
	// HedgeAfter launches a duplicate RPC if an attempt has not
	// answered within this long, racing the straggler against a fresh
	// try; first answer wins. <= 0 disables hedging.
	HedgeAfter time.Duration
	// ProbeInterval is the period of the background health probe per
	// worker (GET /skinnymine/v1/info). <= 0 disables probing; health
	// then only reflects the outcome of real candidate RPCs.
	ProbeInterval time.Duration
}

func (cfg RemoteConfig) withDefaults() RemoteConfig {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	return cfg
}

// WorkerStatus is one worker's last observed health, as reported by
// Engine.WorkerHealth.
type WorkerStatus struct {
	Addr    string `json:"addr"`
	Shard   int    `json:"shard"`
	Healthy bool   `json:"healthy"`
	Err     string `json:"err,omitempty"`
}

// WorkerRPCStats is one worker's cumulative RPC accounting since the
// coordinator started: every candidate-RPC attempt issued to it, how
// many were retries or hedges, the permanent-status tallies the
// fault-injection suite asserts on, health flip count, and the RPC
// latency histogram.
type WorkerRPCStats struct {
	Addr              string                `json:"addr"`
	Shard             int                   `json:"shard"`
	Healthy           bool                  `json:"healthy"`
	LastErr           string                `json:"last_err,omitempty"`
	Requests          int64                 `json:"requests"`
	Retries           int64                 `json:"retries"`
	Hedges            int64                 `json:"hedges"`
	Errors            int64                 `json:"errors"`
	Status409         int64                 `json:"status_409"`
	Status503         int64                 `json:"status_503"`
	HealthTransitions int64                 `json:"health_transitions"`
	Latency           obs.HistogramSnapshot `json:"latency_ms"`
}

// RestoreRemote rebuilds an engine from a loaded sharded snapshot —
// exactly like Restore, including every cached merged level — but
// materializes NEW levels by scatter/gathering candidate generation
// across the HTTP workers in cfg instead of running it in-process.
// crcs[i] is shard i's snapshot-file checksum from the manifest (the
// identity every RPC is pinned to) and numLabels the label-vocabulary
// size (bounds wire decoding).
//
// Workers are not contacted here: a coordinator starts (and serves
// every already-cached level) with the whole fleet down. The first
// materialization that needs a dead shard fails with ErrUnavailable
// after the retry budget, leaving the caches untouched.
func RestoreRemote(states []core.IndexState, assign [][]int32, sigma int, crcs []uint32, numLabels int, cfg RemoteConfig) (*Engine, error) {
	if len(cfg.Workers) != len(assign) {
		return nil, fmt.Errorf("shard: %d workers for %d shards", len(cfg.Workers), len(assign))
	}
	if len(crcs) != len(assign) {
		return nil, fmt.Errorf("shard: %d shard checksums for %d shards", len(crcs), len(assign))
	}
	e, err := Restore(states, assign, sigma)
	if err != nil {
		return nil, err
	}
	e.runner = newRemoteRunner(assign, crcs, numLabels, cfg.withDefaults())
	return e, nil
}

// WorkerHealth returns each worker's last observed health, ordered by
// shard, or nil for an in-process engine. With probing enabled the
// status self-refreshes; otherwise it reflects construction state and
// real RPC outcomes.
func (e *Engine) WorkerHealth() []WorkerStatus {
	type healther interface{ health() []WorkerStatus }
	if h, ok := e.runner.(healther); ok {
		return h.health()
	}
	return nil
}

// WorkerRPCStats returns each worker's cumulative RPC accounting —
// requests, retries, hedges, permanent-status tallies, health flips and
// the RPC latency histogram — ordered by shard, or nil for an
// in-process engine. The serving daemon exposes it as the /metrics
// workers section.
func (e *Engine) WorkerRPCStats() []WorkerRPCStats {
	type statser interface{ rpcStats() []WorkerRPCStats }
	if s, ok := e.runner.(statser); ok {
		return s.rpcStats()
	}
	return nil
}

// remoteRunner implements stage1Runner over one HTTP worker per shard.
// The runner owns the global↔shard-local graph-ID remap at the wire
// boundary: assignment GIDs ascend within each shard, so the remap is
// monotone and embedding order — which the byte-identical merge
// depends on — survives the round trip untouched.
type remoteRunner struct {
	cfg       RemoteConfig
	client    *http.Client
	numLabels int
	workers   []*remoteWorker
	stop      chan struct{}
	wg        sync.WaitGroup
}

// remoteWorker is the per-shard client state: address, pinned CRC, the
// GID remap tables, the advisory health flag, and the per-worker RPC
// accounting surfaced by Engine.WorkerRPCStats.
type remoteWorker struct {
	addr     string
	base     string  // normalized http://host:port
	shard    int
	crc      string  // 8 hex digits, pinned in every request
	toGlobal []int32 // shard-local index -> global GID
	toLocal  map[int32]int32

	mu      sync.Mutex
	healthy bool
	seen    bool // whether any health observation happened yet
	lastErr string

	// RPC accounting, atomics so the hot path never takes mu. requests
	// counts every candidate-RPC attempt (probes excluded), retries the
	// re-attempts after a retryable failure, hedges the duplicate RPCs
	// raced against stragglers, errors the attempts that failed.
	requests    atomic.Int64
	retries     atomic.Int64
	hedges      atomic.Int64
	errors      atomic.Int64
	status409   atomic.Int64
	status503   atomic.Int64
	transitions atomic.Int64 // healthy<->unhealthy flips (incl. the first observation)
	rpcLat      *obs.Histogram
}

func newRemoteRunner(assign [][]int32, crcs []uint32, numLabels int, cfg RemoteConfig) *remoteRunner {
	r := &remoteRunner{
		cfg: cfg,
		// One shared transport: keep-alive connections across levels
		// and retries. Per-attempt deadlines come from the request
		// contexts, not Client.Timeout, so hedges can outlive the
		// attempt that spawned them.
		client:  &http.Client{},
		workers: make([]*remoteWorker, len(assign)),
		stop:    make(chan struct{}),
	}
	r.numLabels = numLabels
	for s, gids := range assign {
		base := cfg.Workers[s]
		if !hasScheme(base) {
			base = "http://" + base
		}
		w := &remoteWorker{
			addr:     cfg.Workers[s],
			base:     base,
			shard:    s,
			crc:      fmt.Sprintf("%08x", crcs[s]),
			toGlobal: gids,
			toLocal:  make(map[int32]int32, len(gids)),
			rpcLat:   obs.NewHistogram(nil),
		}
		for i, gid := range gids {
			w.toLocal[gid] = int32(i)
		}
		r.workers[s] = w
	}
	if cfg.ProbeInterval > 0 {
		for s := range r.workers {
			r.wg.Add(1)
			go r.probe(s)
		}
	}
	return r
}

func hasScheme(addr string) bool {
	u, err := url.Parse(addr)
	return err == nil && u.Scheme != ""
}

// probe polls one worker's info endpoint on the configured period,
// keeping the advisory health flag fresh between real RPCs.
func (r *remoteRunner) probe(s int) {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		r.probeOnce(s)
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
	}
}

func (r *remoteRunner) probeOnce(s int) {
	w := r.workers[s]
	//lint:allow ctxflow background health probe, owned by the runner not a request
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+WorkerInfoPath, nil)
	if err != nil {
		w.setHealth(false, err.Error())
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		w.setHealth(false, err.Error())
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.setHealth(false, fmt.Sprintf("info probe: HTTP %d", resp.StatusCode))
		return
	}
	w.setHealth(true, "")
}

func (w *remoteWorker) setHealth(ok bool, msg string) {
	w.mu.Lock()
	if !w.seen || w.healthy != ok {
		w.transitions.Add(1)
	}
	w.seen = true
	w.healthy, w.lastErr = ok, msg
	w.mu.Unlock()
}

func (r *remoteRunner) health() []WorkerStatus {
	out := make([]WorkerStatus, len(r.workers))
	for s, w := range r.workers {
		w.mu.Lock()
		out[s] = WorkerStatus{Addr: w.addr, Shard: s, Healthy: w.healthy, Err: w.lastErr}
		w.mu.Unlock()
	}
	return out
}

func (r *remoteRunner) rpcStats() []WorkerRPCStats {
	out := make([]WorkerRPCStats, len(r.workers))
	for s, w := range r.workers {
		w.mu.Lock()
		healthy, lastErr := w.healthy, w.lastErr
		w.mu.Unlock()
		out[s] = WorkerRPCStats{
			Addr:              w.addr,
			Shard:             s,
			Healthy:           healthy,
			LastErr:           lastErr,
			Requests:          w.requests.Load(),
			Retries:           w.retries.Load(),
			Hedges:            w.hedges.Load(),
			Errors:            w.errors.Load(),
			Status409:         w.status409.Load(),
			Status503:         w.status503.Load(),
			HealthTransitions: w.transitions.Load(),
			Latency:           w.rpcLat.Snapshot(),
		}
	}
	return out
}

func (r *remoteRunner) close() error {
	close(r.stop)
	r.wg.Wait()
	r.client.CloseIdleConnections()
	return nil
}

func (r *remoteRunner) edges(ctx context.Context, s, workers int) ([]*core.PathPattern, error) {
	return r.call(ctx, s, "edges", 0, 0, workers, nil)
}

func (r *remoteRunner) concat(ctx context.Context, s int, prev []*core.PathPattern, workers int) ([]*core.PathPattern, error) {
	return r.call(ctx, s, "concat", 0, 0, workers, prev)
}

func (r *remoteRunner) merge(ctx context.Context, s int, pool []*core.PathPattern, l, m, workers int) ([]*core.PathPattern, error) {
	return r.call(ctx, s, "merge", l, m, workers, pool)
}

// call runs one candidate op against shard s's worker with the full
// reliability stack: per-attempt timeout, bounded retries with
// exponential backoff, and straggler hedging. The request body is
// encoded once (with GIDs remapped global→local) and reused across
// attempts; the reply is decoded and remapped local→global. One span
// covers the whole logical call, tagged with its attempt/retry/hedge
// counts and outcome — observation only, the control flow is untouched.
func (r *remoteRunner) call(ctx context.Context, s int, op string, l, m, workers int, in []*core.PathPattern) (_ []*core.PathPattern, err error) {
	w := r.workers[s]
	sp := obs.FromContext(ctx).Start("worker.rpc").TagInt("shard", int64(s)).Tag("op", op)
	if op == "merge" {
		sp.TagInt("level", int64(l))
	}
	attempts, hedges := 0, 0
	defer func() {
		outcome := "ok"
		switch {
		case err == nil:
		case errors.Is(err, ErrUnavailable):
			outcome = "unavailable"
		case ctx.Err() != nil && errors.Is(err, ctx.Err()):
			outcome = "canceled"
		default:
			outcome = "error"
		}
		sp.TagInt("attempts", int64(attempts)).TagInt("retries", int64(max(attempts-1, 0))).
			TagInt("hedges", int64(hedges)).Tag("outcome", outcome).End()
	}()
	var body []byte
	if in != nil {
		var buf bytes.Buffer
		if err := indexio.SaveLevel(&buf, w.project(in)); err != nil {
			return nil, fmt.Errorf("shard: encoding level for shard %d: %w", s, err)
		}
		body = buf.Bytes()
	}
	u := w.base + WorkerCandidatesPath + "?op=" + op + "&workers=" + strconv.Itoa(workers)
	if op == "merge" {
		u += "&l=" + strconv.Itoa(l) + "&m=" + strconv.Itoa(m)
	}

	var lastErr error
	backoff := r.cfg.RetryBackoff
	for attempt := 0; attempt <= r.cfg.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
			w.retries.Add(1)
		}
		attempts++
		ps, hedged, err := r.attempt(ctx, w, u, body)
		if hedged {
			hedges++
		}
		if err == nil {
			w.setHealth(true, "")
			return ps, nil
		}
		if ctx.Err() != nil {
			// The caller gave up (disconnect or deadline): report that,
			// not worker unavailability.
			return nil, ctx.Err()
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			w.setHealth(false, pe.Error())
			return nil, fmt.Errorf("shard %d (%s): %w", s, w.addr, err)
		}
		lastErr = err
		w.setHealth(false, err.Error())
	}
	return nil, fmt.Errorf("%w: shard %d (%s) after %d attempts: %v", ErrUnavailable, s, w.addr, r.cfg.Retries+1, lastErr)
}

// attempt performs one logical try: a single RPC, plus — when hedging
// is enabled and the primary has not answered within HedgeAfter — one
// duplicate racing it. The first outcome wins; the loser's context is
// canceled so the straggler stops costing the worker anything. The
// second return reports whether a hedge was launched.
func (r *remoteRunner) attempt(ctx context.Context, w *remoteWorker, u string, body []byte) ([]*core.PathPattern, bool, error) {
	actx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	defer cancel()
	if r.cfg.HedgeAfter <= 0 {
		ps, err := r.rpc(actx, w, u, body)
		return ps, false, err
	}
	type outcome struct {
		ps  []*core.PathPattern
		err error
	}
	results := make(chan outcome, 2)
	launch := func() {
		ps, err := r.rpc(actx, w, u, body)
		results <- outcome{ps, err}
	}
	go launch()
	hedge := time.NewTimer(r.cfg.HedgeAfter)
	defer hedge.Stop()
	pending := 1
	hedged := false
	var firstErr error
	for pending > 0 {
		select {
		case <-hedge.C:
			if !hedged {
				hedged = true
				pending++
				w.hedges.Add(1)
				go launch()
			}
		case o := <-results:
			pending--
			if o.err == nil {
				return o.ps, hedged, nil // loser is abandoned; cancel() reaps it
			}
			var pe *permanentError
			if errors.As(o.err, &pe) {
				return nil, hedged, o.err
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if !hedged && pending == 0 {
				// Primary failed fast, before the hedge timer: fail the
				// attempt rather than wait out the timer.
				return nil, hedged, firstErr
			}
		}
	}
	return nil, hedged, firstErr
}

// permanentError marks worker replies retrying cannot fix: the request
// itself is wrong (400) or the worker serves a different shard (409).
type permanentError struct{ msg string }

func (e *permanentError) Error() string { return e.msg }

// rpc performs exactly one HTTP exchange and decodes the reply,
// counting it (and its latency, outcome status) against the worker and
// forwarding the request ID riding the context so one query is
// greppable across the fleet.
func (r *remoteRunner) rpc(ctx context.Context, w *remoteWorker, u string, body []byte) (_ []*core.PathPattern, err error) {
	w.requests.Add(1)
	t0 := time.Now()
	defer func() {
		w.rpcLat.Observe(time.Since(t0))
		if err != nil {
			w.errors.Add(1)
		}
	}()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set(ShardCRCHeader, w.crc)
	if id := obs.RequestID(ctx); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	// When this request is being traced, ask the worker for its own
	// spans so the coordinator can stitch one tree across the fleet.
	// Opt-in per request: untraced traffic costs the worker nothing.
	tr := obs.TraceFromContext(ctx)
	if tr != nil {
		req.Header.Set(TraceHeader, "1")
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		r.graftWorkerSpans(tr, w, resp.Header.Get(SpansHeader), t0)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		switch resp.StatusCode {
		case http.StatusConflict:
			w.status409.Add(1)
		case http.StatusServiceUnavailable:
			w.status503.Add(1)
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("worker answered HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			return nil, &permanentError{msg: err.Error()}
		}
		return nil, err
	}
	ps, err := indexio.LoadLevel(resp.Body, r.numLabels, len(w.toGlobal))
	if err != nil {
		return nil, err
	}
	// Freshly decoded: safe to remap in place.
	for _, p := range ps {
		for i := range p.Embs {
			p.Embs[i].GID = w.toGlobal[p.Embs[i].GID]
		}
	}
	return ps, nil
}

// graftWorkerSpans stitches a worker's spans (compact JSON from the
// SpansHeader of a traced response) into the request's trace, tagged
// with the worker's shard and address, rebased against t0 — the moment
// THIS process opened the exchange, measured on this process's clock.
// The worker's offsets are relative to its own request start, so the
// two clocks never mix and skew cannot produce negative offsets
// (Trace.Graft additionally clamps hostile inputs). The grafted spans
// land inside the enclosing worker.rpc span's interval, which is how
// the trace renderer nests them. Best-effort observation only: a
// missing or malformed header changes nothing about the call.
func (r *remoteRunner) graftWorkerSpans(tr *obs.Trace, w *remoteWorker, js string, t0 time.Time) {
	if js == "" {
		return
	}
	var spans []obs.SpanData
	if err := json.Unmarshal([]byte(js), &spans); err != nil {
		return
	}
	for i := range spans {
		if spans[i].Attrs == nil {
			spans[i].Attrs = make(map[string]any, 2)
		}
		spans[i].Attrs["shard"] = int64(w.shard)
		spans[i].Attrs["addr"] = w.addr
	}
	tr.Graft(spans, t0)
}

// project copies a level's patterns with GIDs remapped global→local
// for the wire. The inputs are shared cache data (the engine's
// per-shard projections) and must not be mutated; embedding vertex
// paths are shared unchanged.
func (w *remoteWorker) project(ps []*core.PathPattern) []*core.PathPattern {
	out := make([]*core.PathPattern, len(ps))
	for i, p := range ps {
		embs := make([]core.PathEmb, len(p.Embs))
		for j, e := range p.Embs {
			embs[j] = core.PathEmb{GID: w.toLocal[e.GID], Seq: e.Seq}
		}
		out[i] = &core.PathPattern{Seq: p.Seq, Embs: embs, Support: p.Support}
	}
	return out
}
