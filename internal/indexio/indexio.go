// Package indexio persists DirectIndex snapshots: the pre-computed side
// of the paper's direct mining deployment (Figure 2), serialized so a
// serving process can skip Stage I entirely on restart.
//
// The format is a versioned binary stream:
//
//	magic    8 bytes  "SKMINEIX"
//	version  uvarint  currently 1
//	labels   uvarint count, then per label: uvarint length + UTF-8 bytes
//	graphs   uvarint count, then per graph:
//	           uvarint N, N × uvarint vertex label
//	           uvarint M, M × (uvarint u, uvarint w) normalized edges
//	sigma    uvarint  frequency threshold σ
//	levels   uvarint count, then per level in ascending length order:
//	           uvarint l, uvarint patterns, per pattern:
//	             l+1 × uvarint canonical label sequence
//	             uvarint support
//	             uvarint embeddings, per embedding:
//	               uvarint graph ID, l+1 × uvarint vertex ID
//	crc      4 bytes  little-endian IEEE CRC-32 of everything above
//
// Every section is written in a canonical order (levels sorted by
// length; patterns and embeddings in their deterministic mined order),
// so Save∘Load∘Save is byte-identical. Load verifies the magic, the
// version and the trailing checksum, and range-checks all cross
// references, rejecting corrupted or truncated streams with an error
// that names what failed.
package indexio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"sort"

	"skinnymine/internal/core"
	"skinnymine/internal/graph"
)

const (
	// Magic opens every v1 single-index snapshot stream; readers sniff
	// it (against ManifestMagic) to tell the two snapshot kinds apart.
	Magic   = "SKMINEIX"
	magic   = Magic
	version = 1
)

// sanityMax bounds any single decoded count or ID so arithmetic on
// them cannot overflow an int. Decoded counts are additionally never
// trusted for allocation: slices grow by append with a capped initial
// capacity (allocHint), so a corrupt length prefix fails at the next
// read instead of attempting a multi-gigabyte allocation before the
// CRC check at the end of the stream gets a chance to run.
const sanityMax = 1 << 31

// maxLabelLen bounds one label string; maxLevelLen bounds a path
// length (and with it per-pattern slice allocations).
const (
	maxLabelLen = 1 << 16
	maxLevelLen = 1 << 20
)

// allocHint caps an attacker-controlled count to a modest initial
// slice capacity.
func allocHint(n int) int {
	if n > 4096 {
		return 4096
	}
	return n
}

// Save writes a snapshot of the index and its label table to w.
func Save(w io.Writer, st core.IndexState, lt *graph.LabelTable) error {
	if len(st.Graphs) == 0 {
		return fmt.Errorf("indexio: refusing to save an index with no graphs")
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	writeUvarint(bw, version)
	names := lt.Names()
	writeUvarint(bw, uint64(len(names)))
	for _, name := range names {
		writeUvarint(bw, uint64(len(name)))
		bw.WriteString(name)
	}
	writeUvarint(bw, uint64(len(st.Graphs)))
	for _, g := range st.Graphs {
		writeUvarint(bw, uint64(g.N()))
		for _, lab := range g.Labels() {
			writeUvarint(bw, uint64(lab))
		}
		es := g.Edges()
		writeUvarint(bw, uint64(len(es)))
		for _, e := range es {
			writeUvarint(bw, uint64(e.U))
			writeUvarint(bw, uint64(e.W))
		}
	}
	writeUvarint(bw, uint64(st.Sigma))
	lengths := make([]int, 0, len(st.Levels))
	for l := range st.Levels {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	writeUvarint(bw, uint64(len(lengths)))
	for _, l := range lengths {
		ps := st.Levels[l]
		writeUvarint(bw, uint64(l))
		writeUvarint(bw, uint64(len(ps)))
		for _, p := range ps {
			for _, lab := range p.Seq {
				writeUvarint(bw, uint64(lab))
			}
			writeUvarint(bw, uint64(p.Support))
			writeUvarint(bw, uint64(len(p.Embs)))
			for _, e := range p.Embs {
				writeUvarint(bw, uint64(e.GID))
				for _, v := range e.Seq {
					writeUvarint(bw, uint64(v))
				}
			}
		}
	}
	// Flush the payload into the CRC before sealing it; the checksum
	// itself bypasses the hash.
	if err := bw.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n])
}

// Load reads a snapshot from r and rebuilds the index state and label
// table. It fails with a descriptive error on bad magic, unsupported
// versions, truncation, checksum mismatch, or internally inconsistent
// content.
func Load(r io.Reader) (core.IndexState, *graph.LabelTable, error) {
	sr := &sumReader{r: bufio.NewReader(r), crc: crc32.NewIEEE()}
	var st core.IndexState

	head := make([]byte, len(magic))
	if _, err := io.ReadFull(sr, head); err != nil {
		return st, nil, fmt.Errorf("indexio: reading magic: %w", clean(err))
	}
	if !bytes.Equal(head, []byte(magic)) {
		return st, nil, fmt.Errorf("indexio: bad magic %q, not a skinnymine snapshot", head)
	}
	ver, err := sr.uvarint("version")
	if err != nil {
		return st, nil, err
	}
	if ver != version {
		return st, nil, fmt.Errorf("indexio: snapshot version %d, this build reads version %d", ver, version)
	}

	nLabels, err := sr.count("label count")
	if err != nil {
		return st, nil, err
	}
	lt := graph.NewLabelTable()
	for i := 0; i < nLabels; i++ {
		n, err := sr.count("label length")
		if err != nil {
			return st, nil, err
		}
		if n > maxLabelLen {
			return st, nil, fmt.Errorf("indexio: label %d length %d exceeds %d", i, n, maxLabelLen)
		}
		buf := make([]byte, min(n, maxLabelLen))
		if _, err := io.ReadFull(sr, buf); err != nil {
			return st, nil, fmt.Errorf("indexio: reading label %d: %w", i, clean(err))
		}
		if got := lt.Intern(string(buf)); int(got) != i {
			return st, nil, fmt.Errorf("indexio: duplicate label %q in table", buf)
		}
	}

	nGraphs, err := sr.count("graph count")
	if err != nil {
		return st, nil, err
	}
	st.Graphs = make([]*graph.Graph, 0, allocHint(nGraphs))
	for gi := 0; gi < nGraphs; gi++ {
		n, err := sr.count("vertex count")
		if err != nil {
			return st, nil, err
		}
		g := graph.New(allocHint(n))
		for v := 0; v < n; v++ {
			lab, err := sr.count("vertex label")
			if err != nil {
				return st, nil, err
			}
			if lab >= nLabels {
				return st, nil, fmt.Errorf("indexio: graph %d vertex %d label %d outside table of %d", gi, v, lab, nLabels)
			}
			g.AddVertex(graph.Label(lab))
		}
		m, err := sr.count("edge count")
		if err != nil {
			return st, nil, err
		}
		for i := 0; i < m; i++ {
			u, err := sr.count("edge endpoint")
			if err != nil {
				return st, nil, err
			}
			w, err := sr.count("edge endpoint")
			if err != nil {
				return st, nil, err
			}
			if err := g.AddEdge(graph.V(u), graph.V(w)); err != nil {
				return st, nil, fmt.Errorf("indexio: graph %d: %w", gi, err)
			}
		}
		st.Graphs = append(st.Graphs, g)
	}

	sigma, err := sr.count("sigma")
	if err != nil {
		return st, nil, err
	}
	st.Sigma = sigma

	nLevels, err := sr.count("level count")
	if err != nil {
		return st, nil, err
	}
	st.Levels = make(map[int][]*core.PathPattern, allocHint(nLevels))
	for i := 0; i < nLevels; i++ {
		l, err := sr.count("level length")
		if err != nil {
			return st, nil, err
		}
		if l > maxLevelLen {
			return st, nil, fmt.Errorf("indexio: level length %d exceeds %d", l, maxLevelLen)
		}
		if _, dup := st.Levels[l]; dup {
			return st, nil, fmt.Errorf("indexio: level %d appears twice", l)
		}
		nPat, err := sr.count("pattern count")
		if err != nil {
			return st, nil, err
		}
		ps := make([]*core.PathPattern, 0, allocHint(nPat))
		for pi := 0; pi < nPat; pi++ {
			p := &core.PathPattern{Seq: make([]graph.Label, min(l, maxLevelLen)+1)}
			for j := range p.Seq {
				lab, err := sr.count("pattern label")
				if err != nil {
					return st, nil, err
				}
				if lab >= nLabels {
					return st, nil, fmt.Errorf("indexio: level %d pattern %d label %d outside table of %d", l, pi, lab, nLabels)
				}
				p.Seq[j] = graph.Label(lab)
			}
			if p.Support, err = sr.count("pattern support"); err != nil {
				return st, nil, err
			}
			nEmb, err := sr.count("embedding count")
			if err != nil {
				return st, nil, err
			}
			p.Embs = make([]core.PathEmb, 0, allocHint(nEmb))
			for ei := 0; ei < nEmb; ei++ {
				gid, err := sr.count("embedding graph ID")
				if err != nil {
					return st, nil, err
				}
				seq := make(graph.Path, min(l, maxLevelLen)+1)
				for j := range seq {
					v, err := sr.count("embedding vertex")
					if err != nil {
						return st, nil, err
					}
					seq[j] = graph.V(v)
				}
				p.Embs = append(p.Embs, core.PathEmb{GID: int32(gid), Seq: seq})
			}
			ps = append(ps, p)
		}
		st.Levels[l] = ps
	}

	want := sr.crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(sr.r, tail[:]); err != nil {
		return st, nil, fmt.Errorf("indexio: reading checksum: %w", clean(err))
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return st, nil, fmt.Errorf("indexio: checksum mismatch (stored %08x, computed %08x): snapshot is corrupted", got, want)
	}
	return st, lt, nil
}

// sumReader reads from a buffered stream while folding every consumed
// payload byte into the CRC. Hashing happens on consumption rather than
// via an io.TeeReader around the bufio.Reader, whose readahead would
// hash bytes past the payload (including the checksum itself).
type sumReader struct {
	r   *bufio.Reader
	crc hash.Hash32
}

func (s *sumReader) Read(p []byte) (int, error) {
	n, err := s.r.Read(p)
	s.crc.Write(p[:n])
	return n, err
}

func (s *sumReader) ReadByte() (byte, error) {
	b, err := s.r.ReadByte()
	if err == nil {
		s.crc.Write([]byte{b})
	}
	return b, err
}

func (s *sumReader) uvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(s)
	if err != nil {
		return 0, fmt.Errorf("indexio: reading %s: %w", what, clean(err))
	}
	return v, nil
}

// count reads a uvarint that must fit comfortably in an int.
func (s *sumReader) count(what string) (int, error) {
	v, err := s.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v >= sanityMax {
		return 0, fmt.Errorf("indexio: %s %d exceeds sanity bound", what, v)
	}
	return int(v), nil
}

// clean maps a bare EOF in the middle of a record to ErrUnexpectedEOF
// so truncation always reads as such.
func clean(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
