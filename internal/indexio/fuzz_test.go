package indexio

import (
	"bytes"
	"testing"
)

// FuzzLevelRoundTrip feeds arbitrary bytes to the level codec and pins
// two properties at once. First, LoadLevel over hostile input must fail
// cleanly — no panic, no unbounded allocation — which exercises every
// clamp the trustedalloc analyzer enforces statically. Second, whenever
// hostile input happens to decode, the decoded value must round-trip:
// re-encoding and re-decoding yields the same patterns, and a second
// encode reproduces the first byte-for-byte. The fixed point is taken
// on the re-encoded bytes, not the fuzz input, because the codec is
// deliberately not injective over inputs (an empty level and a level of
// zero-length sequences encode differently but decode equal).
func FuzzLevelRoundTrip(f *testing.F) {
	var valid bytes.Buffer
	if err := SaveLevel(&valid, sampleLevel()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes(), 3, 3)
	var empty bytes.Buffer
	if err := SaveLevel(&empty, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes(), 1, 1)
	f.Add([]byte(LevelMagic), 4, 4)
	f.Add([]byte("SKMINELVxxxxxxxxxxxxxxxx"), 8, 8)
	f.Add([]byte{}, 2, 2)
	f.Fuzz(func(t *testing.T, data []byte, numLabels, numGraphs int) {
		if numLabels < 1 {
			numLabels = 1
		}
		if numGraphs < 1 {
			numGraphs = 1
		}
		ps, err := LoadLevel(bytes.NewReader(data), numLabels, numGraphs)
		if err != nil {
			return // rejected cleanly: the property we want on junk
		}
		for _, p := range ps {
			for _, lab := range p.Seq {
				if int(lab) >= numLabels {
					t.Fatalf("decoded label %d outside table of %d", lab, numLabels)
				}
			}
			for _, e := range p.Embs {
				if int(e.GID) >= numGraphs {
					t.Fatalf("decoded embedding graph %d of %d", e.GID, numGraphs)
				}
			}
		}
		var enc bytes.Buffer
		if err := SaveLevel(&enc, ps); err != nil {
			t.Fatalf("re-encoding a decoded level: %v", err)
		}
		ps2, err := LoadLevel(bytes.NewReader(enc.Bytes()), numLabels, numGraphs)
		if err != nil {
			t.Fatalf("re-decoding our own encoding: %v", err)
		}
		if got, want := renderLevel(ps2), renderLevel(ps); got != want {
			t.Fatalf("decode(encode(decode(data))) drifted:\n got %q\nwant %q", got, want)
		}
		var enc2 bytes.Buffer
		if err := SaveLevel(&enc2, ps2); err != nil {
			t.Fatalf("second encode: %v", err)
		}
		if !bytes.Equal(enc.Bytes(), enc2.Bytes()) {
			t.Fatalf("encoding is not a fixed point: %d bytes vs %d bytes", enc.Len(), enc2.Len())
		}
	})
}
