package indexio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"
)

func sampleManifest() Manifest {
	return Manifest{
		Sigma:     2,
		NumGraphs: 5,
		Shards: []ShardRef{
			{Name: "db.idx.shard0", Size: 120, CRC: 0xdeadbeef, GIDs: []int32{0, 3}},
			{Name: "db.idx.shard1", Size: 88, CRC: 0x01020304, GIDs: []int32{1, 4}},
			{Name: "db.idx.shard2", Size: 300, CRC: 0xffffffff, GIDs: []int32{2}},
		},
	}
}

func saveBytes(t *testing.T, m Manifest) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	data := saveBytes(t, m)
	got, err := LoadManifest(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Sigma != m.Sigma || got.NumGraphs != m.NumGraphs || len(got.Shards) != len(m.Shards) {
		t.Fatalf("round trip lost header: %+v", got)
	}
	for i, s := range got.Shards {
		w := m.Shards[i]
		if s.Name != w.Name || s.Size != w.Size || s.CRC != w.CRC {
			t.Fatalf("shard %d: got %+v want %+v", i, s, w)
		}
		if len(s.GIDs) != len(w.GIDs) {
			t.Fatalf("shard %d gids: got %v want %v", i, s.GIDs, w.GIDs)
		}
		for j := range s.GIDs {
			if s.GIDs[j] != w.GIDs[j] {
				t.Fatalf("shard %d gids: got %v want %v", i, s.GIDs, w.GIDs)
			}
		}
	}
	// Canonical: Save∘Load∘Save is byte-identical.
	if again := saveBytes(t, got); !bytes.Equal(again, data) {
		t.Fatal("Save∘Load∘Save changed the manifest bytes")
	}
}

func TestSaveManifestRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveManifest(&buf, Manifest{}); err == nil {
		t.Error("empty manifest accepted")
	}
	// The writer must refuse what the reader would reject: a manifest
	// over MaxShards would strand the snapshot.
	over := Manifest{Sigma: 1, NumGraphs: MaxShards + 1, Shards: make([]ShardRef, MaxShards+1)}
	for i := range over.Shards {
		over.Shards[i] = ShardRef{Name: "x", Size: 1, GIDs: []int32{int32(i)}}
	}
	if err := SaveManifest(&buf, over); err == nil || !strings.Contains(err.Error(), "format limit") {
		t.Errorf("over-limit shard count accepted: %v", err)
	}
	m := sampleManifest()
	m.Shards[0].Name = "../escape.idx"
	if err := SaveManifest(&buf, m); err == nil || !strings.Contains(err.Error(), "base name") {
		t.Errorf("path-separator shard name accepted: %v", err)
	}
	m = sampleManifest()
	m.Shards[0].Name = ""
	if err := SaveManifest(&buf, m); err == nil {
		t.Error("empty shard name accepted")
	}
}

// rawManifestBytes serializes a manifest WITHOUT SaveManifest's
// consistency validation — the only way to exercise the reader's own
// rejection of streams a conforming writer can no longer produce.
func rawManifestBytes(m Manifest) []byte {
	var payload bytes.Buffer
	bw := bufio.NewWriter(&payload)
	bw.WriteString(ManifestMagic)
	writeUvarint(bw, manifestVersion)
	writeUvarint(bw, uint64(m.Sigma))
	writeUvarint(bw, uint64(m.NumGraphs))
	writeUvarint(bw, uint64(len(m.Shards)))
	for _, s := range m.Shards {
		writeUvarint(bw, uint64(len(s.Name)))
		bw.WriteString(s.Name)
		writeUvarint(bw, uint64(s.Size))
		writeUvarint(bw, uint64(s.CRC))
		writeUvarint(bw, uint64(len(s.GIDs)))
		for _, gid := range s.GIDs {
			writeUvarint(bw, uint64(gid))
		}
	}
	bw.Flush()
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(payload.Bytes()))
	return append(payload.Bytes(), tail[:]...)
}

func TestManifestRejectsInconsistency(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(m *Manifest)
	}{
		{"duplicate gid", func(m *Manifest) { m.Shards[1].GIDs[0] = 0 }},
		{"gid out of range", func(m *Manifest) { m.Shards[2].GIDs[0] = 99 }},
		{"coverage gap", func(m *Manifest) { m.NumGraphs = 6 }},
		{"empty shard", func(m *Manifest) { m.Shards[2].GIDs = nil }},
	}
	for _, tc := range cases {
		m := sampleManifest()
		tc.mutate(&m)
		// The writer refuses to produce the stream...
		if err := SaveManifest(&bytes.Buffer{}, m); err == nil {
			t.Errorf("%s: SaveManifest accepted", tc.name)
		}
		// ...and the reader independently rejects a hand-crafted one.
		if _, err := LoadManifest(bytes.NewReader(rawManifestBytes(m))); err == nil {
			t.Errorf("%s: LoadManifest accepted", tc.name)
		}
	}

	if _, err := LoadManifest(bytes.NewReader([]byte("SKMINEIX"))); err == nil ||
		!strings.Contains(err.Error(), "bad magic") {
		t.Errorf("v1 magic accepted as manifest: %v", err)
	}
}

// TestLoadManifestRejectsCorruption: every truncation and every
// single-byte flip must fail — the CRC covers the full stream and magic
// and version are checked first.
func TestLoadManifestRejectsCorruption(t *testing.T) {
	data := saveBytes(t, sampleManifest())
	for cut := 0; cut < len(data); cut++ {
		if _, err := LoadManifest(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if _, err := LoadManifest(bytes.NewReader(bad)); err == nil {
			t.Fatalf("single-byte flip at %d accepted", i)
		}
	}
}
