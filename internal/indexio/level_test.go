package indexio

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"skinnymine/internal/core"
	"skinnymine/internal/graph"
)

// sampleLevel builds a small but non-trivial level set: several
// patterns sharing one sequence length, multi-embedding, multi-graph.
func sampleLevel() []*core.PathPattern {
	mk := func(seq []graph.Label, sup int, embs ...core.PathEmb) *core.PathPattern {
		return &core.PathPattern{Seq: seq, Support: sup, Embs: embs}
	}
	return []*core.PathPattern{
		mk([]graph.Label{0, 1, 0}, 3,
			core.PathEmb{GID: 0, Seq: graph.Path{0, 1, 2}},
			core.PathEmb{GID: 0, Seq: graph.Path{2, 1, 0}},
			core.PathEmb{GID: 2, Seq: graph.Path{5, 4, 3}}),
		mk([]graph.Label{1, 1, 2}, 1,
			core.PathEmb{GID: 1, Seq: graph.Path{0, 3, 4}}),
		mk([]graph.Label{2, 0, 2}, 0),
	}
}

func levelBytes(t *testing.T, ps []*core.PathPattern) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveLevel(&buf, ps); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func renderLevel(ps []*core.PathPattern) string {
	var b strings.Builder
	for _, p := range ps {
		fmt.Fprintf(&b, "seq=%v sup=%d embs=", p.Seq, p.Support)
		for _, e := range p.Embs {
			fmt.Fprintf(&b, "(%d:%v)", e.GID, e.Seq)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestLevelRoundTrip: SaveLevel then LoadLevel is the identity,
// including pattern, embedding and vertex ORDER — the cross-shard merge
// is order-sensitive, so the wire codec must never reorder anything.
func TestLevelRoundTrip(t *testing.T) {
	want := sampleLevel()
	got, err := LoadLevel(bytes.NewReader(levelBytes(t, want)), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if renderLevel(got) != renderLevel(want) {
		t.Errorf("round trip diverges\ngot:\n%s\nwant:\n%s", renderLevel(got), renderLevel(want))
	}
}

// TestLevelRoundTripEmpty: an empty level is valid in both directions —
// a shard can legitimately produce zero candidates for a level.
func TestLevelRoundTripEmpty(t *testing.T) {
	got, err := LoadLevel(bytes.NewReader(levelBytes(t, nil)), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d patterns from an empty level", len(got))
	}
}

func TestSaveLevelRejectsMixedLengths(t *testing.T) {
	ps := []*core.PathPattern{
		{Seq: []graph.Label{0, 1}, Support: 1},
		{Seq: []graph.Label{0, 1, 2}, Support: 1},
	}
	if err := SaveLevel(&bytes.Buffer{}, ps); err == nil {
		t.Error("mixed sequence lengths accepted")
	}
	bad := []*core.PathPattern{{
		Seq:     []graph.Label{0, 1},
		Support: 1,
		Embs:    []core.PathEmb{{GID: 0, Seq: graph.Path{0, 1, 2}}},
	}}
	if err := SaveLevel(&bytes.Buffer{}, bad); err == nil {
		t.Error("embedding length mismatch accepted")
	}
}

// TestLoadLevelRejectsCorruption: every way a stream can be damaged in
// transit — truncation, bit flips, a foreign stream — is an error, never
// a partial or silently wrong slice.
func TestLoadLevelRejectsCorruption(t *testing.T) {
	raw := levelBytes(t, sampleLevel())

	if _, err := LoadLevel(bytes.NewReader(nil), 3, 3); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := LoadLevel(strings.NewReader("SKMINEIX"), 3, 3); err == nil {
		t.Error("snapshot magic accepted as a level set")
	}
	for _, cut := range []int{len(raw) / 3, len(raw) - 2} {
		if _, err := LoadLevel(bytes.NewReader(raw[:cut]), 3, 3); err == nil {
			t.Errorf("truncation at %d of %d bytes accepted", cut, len(raw))
		}
	}
	// Flip one byte in the payload: the CRC tail must catch it (or the
	// decoder must reject the now-invalid structure — either way, an
	// error).
	for _, pos := range []int{len(LevelMagic) + 1, len(raw) / 2, len(raw) - 1} {
		dam := append([]byte(nil), raw...)
		dam[pos] ^= 0x40
		if _, err := LoadLevel(bytes.NewReader(dam), 3, 3); err == nil {
			t.Errorf("flipped byte at %d accepted", pos)
		}
	}
}

// TestLoadLevelRejectsOutOfRange: labels and graph IDs beyond the
// declared vocabularies must be rejected at decode time — they would
// otherwise index straight into join scratch arrays.
func TestLoadLevelRejectsOutOfRange(t *testing.T) {
	raw := levelBytes(t, sampleLevel())
	if _, err := LoadLevel(bytes.NewReader(raw), 2, 3); err == nil {
		t.Error("label 2 accepted against a 2-label vocabulary")
	}
	if _, err := LoadLevel(bytes.NewReader(raw), 3, 2); err == nil {
		t.Error("graph ID 2 accepted against a 2-graph shard")
	}
}
