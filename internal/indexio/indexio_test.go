package indexio

import (
	"bytes"
	"strings"
	"testing"

	"skinnymine/internal/core"
	"skinnymine/internal/graph"
)

// buildState makes a small two-graph index with a couple of
// materialized levels.
func buildState(t *testing.T) (core.IndexState, *graph.LabelTable) {
	t.Helper()
	lt := graph.NewLabelTable()
	labels := []graph.Label{
		lt.Intern("station"), lt.Intern("cafe"), lt.Intern("park"),
	}
	mk := func() *graph.Graph {
		g := graph.New(6)
		for i := 0; i < 6; i++ {
			g.AddVertex(labels[i%3])
		}
		for i := 0; i < 5; i++ {
			g.MustAddEdge(graph.V(i), graph.V(i+1))
		}
		g.MustAddEdge(0, 5)
		return g
	}
	ix, err := core.BuildIndex([]*graph.Graph{mk(), mk()}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{2, 3} {
		if _, err := ix.MinimalPatterns(l); err != nil {
			t.Fatal(err)
		}
	}
	return ix.State(), lt
}

func snapshotBytes(t *testing.T, st core.IndexState, lt *graph.LabelTable) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, st, lt); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	st, lt := buildState(t)
	raw := snapshotBytes(t, st, lt)

	got, gotLT, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Sigma != st.Sigma {
		t.Errorf("sigma %d, want %d", got.Sigma, st.Sigma)
	}
	if len(got.Graphs) != len(st.Graphs) {
		t.Fatalf("%d graphs, want %d", len(got.Graphs), len(st.Graphs))
	}
	for i, g := range got.Graphs {
		want := st.Graphs[i]
		if g.N() != want.N() || g.M() != want.M() {
			t.Errorf("graph %d shape %d/%d, want %d/%d", i, g.N(), g.M(), want.N(), want.M())
		}
		for v := 0; v < g.N(); v++ {
			if g.Label(graph.V(v)) != want.Label(graph.V(v)) {
				t.Errorf("graph %d vertex %d label mismatch", i, v)
			}
		}
	}
	if gotLT.Len() != lt.Len() {
		t.Fatalf("%d labels, want %d", gotLT.Len(), lt.Len())
	}
	for i := 0; i < lt.Len(); i++ {
		if gotLT.Name(graph.Label(i)) != lt.Name(graph.Label(i)) {
			t.Errorf("label %d = %q, want %q", i, gotLT.Name(graph.Label(i)), lt.Name(graph.Label(i)))
		}
	}
	if len(got.Levels) != len(st.Levels) {
		t.Fatalf("%d levels, want %d", len(got.Levels), len(st.Levels))
	}
	for l, want := range st.Levels {
		ps := got.Levels[l]
		if len(ps) != len(want) {
			t.Fatalf("level %d: %d patterns, want %d", l, len(ps), len(want))
		}
		for i, p := range ps {
			w := want[i]
			if p.Support != w.Support || len(p.Embs) != len(w.Embs) {
				t.Errorf("level %d pattern %d: sup=%d embs=%d, want sup=%d embs=%d",
					l, i, p.Support, len(p.Embs), w.Support, len(w.Embs))
			}
			if graph.CompareLabelSeqs(p.Seq, w.Seq) != 0 {
				t.Errorf("level %d pattern %d: label sequence mismatch", l, i)
			}
			for j, e := range p.Embs {
				we := w.Embs[j]
				if e.GID != we.GID || comparePathsEq(e.Seq, we.Seq) != true {
					t.Errorf("level %d pattern %d embedding %d mismatch", l, i, j)
				}
			}
		}
	}
}

func comparePathsEq(a, b graph.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSaveIsCanonical pins the snapshot byte-identity contract:
// Save(Load(Save(x))) == Save(x).
func TestSaveIsCanonical(t *testing.T) {
	st, lt := buildState(t)
	first := snapshotBytes(t, st, lt)
	got, gotLT, err := Load(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	second := snapshotBytes(t, got, gotLT)
	if !bytes.Equal(first, second) {
		t.Fatalf("re-saved snapshot differs: %d vs %d bytes", len(first), len(second))
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	st, lt := buildState(t)
	raw := snapshotBytes(t, st, lt)
	raw[0] ^= 0xFF
	_, _, err := Load(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("want a bad-magic error, got %v", err)
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	st, lt := buildState(t)
	raw := snapshotBytes(t, st, lt)
	raw[len(magic)] = version + 1 // single-byte uvarint
	_, _, err := Load(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want a version error, got %v", err)
	}
}

// TestLoadRejectsTruncation checks that every proper prefix fails
// loudly instead of yielding a silently partial index.
func TestLoadRejectsTruncation(t *testing.T) {
	st, lt := buildState(t)
	raw := snapshotBytes(t, st, lt)
	for n := 0; n < len(raw); n++ {
		if _, _, err := Load(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded without error", n, len(raw))
		}
	}
}

// TestLoadRejectsCorruption flips each payload byte in turn; every flip
// must be caught, structurally or by the trailing checksum.
func TestLoadRejectsCorruption(t *testing.T) {
	st, lt := buildState(t)
	raw := snapshotBytes(t, st, lt)
	for i := len(magic); i < len(raw); i++ {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x01
		if _, _, err := Load(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flipping byte %d/%d went undetected", i, len(raw))
		}
	}
}

func TestLoadRejectsEmpty(t *testing.T) {
	if _, _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream should fail")
	}
}

func TestSaveRejectsEmptyIndex(t *testing.T) {
	var buf bytes.Buffer
	err := Save(&buf, core.IndexState{Sigma: 1}, graph.NewLabelTable())
	if err == nil {
		t.Fatal("saving an index with no graphs should fail")
	}
}
