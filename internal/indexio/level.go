package indexio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"skinnymine/internal/core"
	"skinnymine/internal/graph"
)

// LevelMagic opens every level-set stream — the wire encoding of one
// per-shard candidate (or projection) set, exchanged between the
// distributed coordinator and its shard workers.
//
// The format follows the v1 snapshot discipline — versioned, canonical,
// CRC-sealed — but carries exactly one pattern slice:
//
//	magic    8 bytes  "SKMINELV"
//	version  uvarint  currently 1
//	seqlen   uvarint  labels per pattern (l+1 for path length l; 0 iff empty)
//	patterns uvarint count, then per pattern in slice order:
//	           seqlen × uvarint canonical label sequence
//	           uvarint support
//	           uvarint embeddings, per embedding:
//	             uvarint graph ID, seqlen × uvarint vertex ID
//	crc      4 bytes  little-endian IEEE CRC-32 of everything above
//
// Pattern, embedding and vertex order are preserved exactly — the
// coordinator's cross-shard merge is order-sensitive, and the
// byte-identical mining guarantee rides on the wire codec never
// reordering anything. SaveLevel∘LoadLevel is the identity on valid
// input; LoadLevel rejects truncation, checksum mismatch and
// out-of-range references with an error naming what failed.
const LevelMagic = "SKMINELV"

const levelVersion = 1

// SaveLevel writes one pattern slice to w in the level-set wire format.
// Every pattern must share one sequence length; embeddings must match
// it. Graph IDs are written as-is — the two endpoints agree on whether
// they are global or shard-local.
func SaveLevel(w io.Writer, ps []*core.PathPattern) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.WriteString(LevelMagic); err != nil {
		return err
	}
	writeUvarint(bw, levelVersion)
	seqLen := 0
	if len(ps) > 0 {
		seqLen = len(ps[0].Seq)
	}
	writeUvarint(bw, uint64(seqLen))
	writeUvarint(bw, uint64(len(ps)))
	for i, p := range ps {
		if len(p.Seq) != seqLen {
			return fmt.Errorf("indexio: level pattern %d has %d labels, pattern 0 has %d", i, len(p.Seq), seqLen)
		}
		for _, lab := range p.Seq {
			writeUvarint(bw, uint64(lab))
		}
		writeUvarint(bw, uint64(p.Support))
		writeUvarint(bw, uint64(len(p.Embs)))
		for _, e := range p.Embs {
			if len(e.Seq) != seqLen {
				return fmt.Errorf("indexio: level pattern %d embedding has %d vertices, want %d", i, len(e.Seq), seqLen)
			}
			writeUvarint(bw, uint64(e.GID))
			for _, v := range e.Seq {
				writeUvarint(bw, uint64(v))
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// LoadLevel reads one pattern slice from r. numLabels and numGraphs
// bound the label and graph-ID vocabularies the decoded patterns may
// reference (vertex IDs are range-checked by the consumer, which owns
// the graphs). A truncated, corrupted or out-of-range stream is
// rejected with a descriptive error, never a partial slice.
func LoadLevel(r io.Reader, numLabels, numGraphs int) ([]*core.PathPattern, error) {
	sr := &sumReader{r: bufio.NewReader(r), crc: crc32.NewIEEE()}
	head := make([]byte, len(LevelMagic))
	if _, err := io.ReadFull(sr, head); err != nil {
		return nil, fmt.Errorf("indexio: reading level magic: %w", clean(err))
	}
	if !bytes.Equal(head, []byte(LevelMagic)) {
		return nil, fmt.Errorf("indexio: bad level magic %q, not a skinnymine level set", head)
	}
	ver, err := sr.uvarint("level version")
	if err != nil {
		return nil, err
	}
	if ver != levelVersion {
		return nil, fmt.Errorf("indexio: level version %d, this build reads version %d", ver, levelVersion)
	}
	rawLen, err := sr.count("level sequence length")
	if err != nil {
		return nil, err
	}
	if rawLen > maxLevelLen {
		return nil, fmt.Errorf("indexio: level sequence length %d exceeds %d", rawLen, maxLevelLen)
	}
	seqLen := min(rawLen, maxLevelLen)
	nPat, err := sr.count("level pattern count")
	if err != nil {
		return nil, err
	}
	if nPat > 0 && seqLen == 0 {
		return nil, fmt.Errorf("indexio: level holds %d patterns of zero labels", nPat)
	}
	ps := make([]*core.PathPattern, 0, allocHint(nPat))
	for pi := 0; pi < nPat; pi++ {
		p := &core.PathPattern{Seq: make([]graph.Label, seqLen)}
		for j := range p.Seq {
			lab, err := sr.count("level pattern label")
			if err != nil {
				return nil, err
			}
			if lab >= numLabels {
				return nil, fmt.Errorf("indexio: level pattern %d label %d outside table of %d", pi, lab, numLabels)
			}
			p.Seq[j] = graph.Label(lab)
		}
		if p.Support, err = sr.count("level pattern support"); err != nil {
			return nil, err
		}
		nEmb, err := sr.count("level embedding count")
		if err != nil {
			return nil, err
		}
		p.Embs = make([]core.PathEmb, 0, allocHint(nEmb))
		for ei := 0; ei < nEmb; ei++ {
			gid, err := sr.count("level embedding graph ID")
			if err != nil {
				return nil, err
			}
			if gid >= numGraphs {
				return nil, fmt.Errorf("indexio: level pattern %d embedding references graph %d of %d", pi, gid, numGraphs)
			}
			seq := make(graph.Path, seqLen)
			for j := range seq {
				v, err := sr.count("level embedding vertex")
				if err != nil {
					return nil, err
				}
				seq[j] = graph.V(v)
			}
			p.Embs = append(p.Embs, core.PathEmb{GID: int32(gid), Seq: seq})
		}
		ps = append(ps, p)
	}
	want := sr.crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(sr.r, tail[:]); err != nil {
		return nil, fmt.Errorf("indexio: reading level checksum: %w", clean(err))
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("indexio: level checksum mismatch (stored %08x, computed %08x): stream is corrupted", got, want)
	}
	return ps, nil
}
