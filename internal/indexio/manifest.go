package indexio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
)

// Sharded snapshots split a partitioned index across one v1 snapshot
// stream per shard plus a manifest tying them together. The manifest is
// a versioned binary stream under the same corruption-rejection
// discipline as the v1 format (canonical byte order, trailing CRC-32,
// no decoded count trusted for allocation):
//
//	magic    8 bytes  "SKMINESM"
//	version  uvarint  currently 1
//	sigma    uvarint  frequency threshold σ (must match every shard)
//	graphs   uvarint  total database graph count across shards
//	shards   uvarint  shard count P, then per shard:
//	           uvarint name length + UTF-8 bytes (base name of the
//	             shard's v1 snapshot file, no path separators)
//	           uvarint shard file byte size
//	           uvarint shard file CRC-32C (Castagnoli, whole file —
//	             NOT IEEE: every stream ending in its own IEEE CRC
//	             shares the constant whole-file IEEE value 0x2144df1c,
//	             the CRC-32 residue, so IEEE could never tell one
//	             valid shard generation from another)
//	           uvarint graph count, then that many uvarint global
//	             graph IDs (ascending; the shard's members, in
//	             shard-local order)
//	crc      4 bytes  little-endian IEEE CRC-32 of everything above
//
// The per-shard size + CRC pin the exact shard files the manifest was
// written against, so mixing shard files from different snapshot
// generations — or serving a manifest whose shard count no longer
// matches the files on disk — is rejected before any shard stream is
// parsed. LoadManifest additionally verifies that the shard graph IDs
// partition [0, graphs) exactly.

const (
	// ManifestMagic opens every sharded-snapshot manifest stream.
	ManifestMagic   = "SKMINESM"
	manifestVersion = 1
)

// MaxShards bounds the shard count on BOTH sides of the format:
// SaveManifest refuses to write more (a snapshot the reader rejects
// must never be producible) and LoadManifest refuses to read more.
// internal/shard clamps its partitioning to the same constant.
const MaxShards = 1 << 12

// maxShardName bounds one shard file name.
const maxShardName = 255

// Manifest describes one sharded snapshot: the global mining threshold,
// the total graph count, and each shard's snapshot file with its graph
// membership.
type Manifest struct {
	Sigma     int
	NumGraphs int
	Shards    []ShardRef
}

// ShardRef names one shard's v1 snapshot file and pins its content:
// Size and CRC are the exact byte length and whole-file CRC-32C
// (Castagnoli — see the format comment for why not IEEE) of the file
// the manifest was written against, and GIDs lists the shard's global
// graph IDs in shard-local order.
type ShardRef struct {
	Name string
	Size int64
	CRC  uint32
	GIDs []int32
}

// validShardName rejects names that could escape the snapshot
// directory: a shard reference is a base name, never a path.
func validShardName(name string) error {
	if name == "" || len(name) > maxShardName {
		return fmt.Errorf("indexio: shard file name %q empty or longer than %d", name, maxShardName)
	}
	if strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("indexio: shard file name %q must be a base name", name)
	}
	return nil
}

// SaveManifest writes the sharded-snapshot manifest to w in canonical
// byte order; Save∘Load∘Save is byte-identical.
func SaveManifest(w io.Writer, m Manifest) error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("indexio: refusing to save a manifest with no shards")
	}
	if len(m.Shards) > MaxShards {
		return fmt.Errorf("indexio: shard count %d exceeds the format limit of %d", len(m.Shards), MaxShards)
	}
	// Mirror every reader-side consistency check: a snapshot the reader
	// rejects must never be producible.
	seen := make(map[int32]bool, allocHint(m.NumGraphs))
	for i, s := range m.Shards {
		if err := validShardName(s.Name); err != nil {
			return err
		}
		if s.Size < 0 {
			return fmt.Errorf("indexio: shard %q has negative size %d", s.Name, s.Size)
		}
		if len(s.GIDs) == 0 {
			return fmt.Errorf("indexio: shard %d holds no graphs", i)
		}
		for _, gid := range s.GIDs {
			if int(gid) < 0 || int(gid) >= m.NumGraphs {
				return fmt.Errorf("indexio: shard %d graph ID %d outside database of %d", i, gid, m.NumGraphs)
			}
			if seen[gid] {
				return fmt.Errorf("indexio: graph %d assigned to two shards", gid)
			}
			seen[gid] = true
		}
	}
	if len(seen) != m.NumGraphs {
		return fmt.Errorf("indexio: shards cover %d of %d graphs", len(seen), m.NumGraphs)
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.WriteString(ManifestMagic); err != nil {
		return err
	}
	writeUvarint(bw, manifestVersion)
	writeUvarint(bw, uint64(m.Sigma))
	writeUvarint(bw, uint64(m.NumGraphs))
	writeUvarint(bw, uint64(len(m.Shards)))
	for _, s := range m.Shards {
		writeUvarint(bw, uint64(len(s.Name)))
		bw.WriteString(s.Name)
		writeUvarint(bw, uint64(s.Size))
		writeUvarint(bw, uint64(s.CRC))
		writeUvarint(bw, uint64(len(s.GIDs)))
		for _, gid := range s.GIDs {
			writeUvarint(bw, uint64(gid))
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// LoadManifest reads a sharded-snapshot manifest from r, rejecting bad
// magic, unsupported versions, truncation, checksum mismatch, unsafe
// shard file names, and shard graph IDs that fail to partition the
// database exactly.
func LoadManifest(r io.Reader) (Manifest, error) {
	sr := &sumReader{r: bufio.NewReader(r), crc: crc32.NewIEEE()}
	var m Manifest

	head := make([]byte, len(ManifestMagic))
	if _, err := io.ReadFull(sr, head); err != nil {
		return m, fmt.Errorf("indexio: reading manifest magic: %w", clean(err))
	}
	if !bytes.Equal(head, []byte(ManifestMagic)) {
		return m, fmt.Errorf("indexio: bad magic %q, not a skinnymine sharded-snapshot manifest", head)
	}
	ver, err := sr.uvarint("manifest version")
	if err != nil {
		return m, err
	}
	if ver != manifestVersion {
		return m, fmt.Errorf("indexio: manifest version %d, this build reads version %d", ver, manifestVersion)
	}
	if m.Sigma, err = sr.count("manifest sigma"); err != nil {
		return m, err
	}
	if m.NumGraphs, err = sr.count("manifest graph count"); err != nil {
		return m, err
	}
	nShards, err := sr.count("shard count")
	if err != nil {
		return m, err
	}
	if nShards < 1 || nShards > MaxShards {
		return m, fmt.Errorf("indexio: shard count %d outside [1, %d]", nShards, MaxShards)
	}
	seen := make(map[int32]bool, allocHint(m.NumGraphs))
	for i := 0; i < nShards; i++ {
		var s ShardRef
		n, err := sr.count("shard name length")
		if err != nil {
			return m, err
		}
		if n > maxShardName {
			return m, fmt.Errorf("indexio: shard %d name length %d exceeds %d", i, n, maxShardName)
		}
		buf := make([]byte, min(n, maxShardName))
		if _, err := io.ReadFull(sr, buf); err != nil {
			return m, fmt.Errorf("indexio: reading shard %d name: %w", i, clean(err))
		}
		s.Name = string(buf)
		if err := validShardName(s.Name); err != nil {
			return m, err
		}
		size, err := sr.count("shard file size")
		if err != nil {
			return m, err
		}
		s.Size = int64(size)
		crcv, err := sr.uvarint("shard file checksum")
		if err != nil {
			return m, err
		}
		if crcv > 0xffffffff {
			return m, fmt.Errorf("indexio: shard %d checksum %d exceeds 32 bits", i, crcv)
		}
		s.CRC = uint32(crcv)
		nGids, err := sr.count("shard graph count")
		if err != nil {
			return m, err
		}
		if nGids < 1 || nGids > m.NumGraphs {
			return m, fmt.Errorf("indexio: shard %d holds %d graphs of %d", i, nGids, m.NumGraphs)
		}
		s.GIDs = make([]int32, 0, allocHint(nGids))
		for j := 0; j < nGids; j++ {
			gid, err := sr.count("shard graph ID")
			if err != nil {
				return m, err
			}
			if gid >= m.NumGraphs {
				return m, fmt.Errorf("indexio: shard %d graph ID %d outside database of %d", i, gid, m.NumGraphs)
			}
			if seen[int32(gid)] {
				return m, fmt.Errorf("indexio: graph %d assigned to two shards", gid)
			}
			seen[int32(gid)] = true
			s.GIDs = append(s.GIDs, int32(gid))
		}
		m.Shards = append(m.Shards, s)
	}
	if len(seen) != m.NumGraphs {
		return m, fmt.Errorf("indexio: shards cover %d of %d graphs", len(seen), m.NumGraphs)
	}

	want := sr.crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(sr.r, tail[:]); err != nil {
		return m, fmt.Errorf("indexio: reading manifest checksum: %w", clean(err))
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return m, fmt.Errorf("indexio: manifest checksum mismatch (stored %08x, computed %08x): snapshot is corrupted", got, want)
	}
	return m, nil
}
