package core

import (
	"slices"

	"skinnymine/internal/graph"
	"skinnymine/internal/support"
)

// LevelGrow (Algorithm 3): grow a pattern by all valid combinations of
// level-i edges. Iteration i may add only
//
//	(a) a forward edge attaching a new vertex to an (i-1)-level vertex
//	    (the new vertex is exactly i-level: its sole edge fixes its
//	    distance to the diameter), or
//	(b) a backward edge between existing vertices whose levels are
//	    {i-1, i} or {i, i}.
//
// Neither kind can change any existing vertex's level: a path through
// the new edge to the diameter costs at least min(level(u), level(v))+1,
// which never undercuts a level (adjacent levels differ by at most one).
//
// Extensions are enumerated in canonical descriptor order and each
// pattern only extends with descriptors >= its anchor (Panchor), so each
// edge set is assembled in exactly one order within a cluster.

// growScratch is the reusable per-worker state of Stage II growth: a
// stamped inverse-map table sized by the largest data graph (replacing
// the map[graph.V]int32 rebuilt per embedding in candidates), plus
// descriptor and embedding-map buffers. One scratch belongs to exactly
// one worker goroutine; nothing here is shared.
type growScratch struct {
	inv      *stampTable
	descSeen map[extDesc]struct{}
	descBuf  []extDesc
	mapBuf   []graph.V
}

func (m *miner) newGrowScratch() *growScratch {
	return &growScratch{
		inv:      newStampTable(m.maxN),
		descSeen: make(map[extDesc]struct{}, 32),
	}
}

// candidates collects the distinct valid extension descriptors of p at
// the given level, sorted, using the stored embedding maps so only
// data-supported extensions appear. The returned slice aliases
// sc.descBuf and is valid until the next candidates call on the same
// scratch.
func (m *miner) candidates(p *Pattern, level int32, sc *growScratch) []extDesc {
	clear(sc.descSeen)
	n := int32(p.G.N())
	for ei := 0; ei < p.Embs.Len(); ei++ {
		e := p.Embs.At(ei)
		g := m.graphs[e.GID]
		sc.inv.reset()
		for pi, dv := range e.Map {
			sc.inv.set(dv, int32(pi))
		}
		for pi := int32(0); pi < n; pi++ {
			lv := p.Level[pi]
			if lv != level-1 && lv != level {
				continue
			}
			dv := e.Map[pi]
			for _, w := range g.Neighbors(dv) {
				if qj, mapped := sc.inv.get(w); mapped {
					// Backward edge candidate between pattern vertices.
					if p.G.HasEdge(graph.V(pi), graph.V(qj)) {
						continue
					}
					lu, lw := lv, p.Level[qj]
					if lu > lw {
						lu, lw = lw, lu
					}
					if lw != level || lu < level-1 {
						continue
					}
					a, b := pi, qj
					if a > b {
						a, b = b, a
					}
					sc.descSeen[extDesc{kind: 0, src: a, dst: b}] = struct{}{}
				} else if lv == level-1 {
					// Forward edge candidate: new vertex at this level.
					sc.descSeen[extDesc{kind: 1, src: pi, dst: -1, label: g.Label(w)}] = struct{}{}
				}
			}
		}
	}
	out := sc.descBuf[:0]
	for d := range sc.descSeen {
		out = append(out, d)
	}
	slices.SortFunc(out, compareDesc)
	sc.descBuf = out
	return out
}

// extend applies descriptor d to p at the given level, checks the three
// constraints and the frequency threshold, and returns the child pattern
// or nil with the reason.
func (m *miner) extend(p *Pattern, d extDesc, level int32, sc *growScratch) (*Pattern, rejectReason) {
	g := p.G.Clone()
	child := &Pattern{
		G:         g,
		DiamLen:   p.DiamLen,
		anchor:    d,
		hasAnchor: true,
	}
	if d.kind == 1 {
		u := g.AddVertex(d.label)
		g.MustAddEdge(graph.V(d.src), u)
		child.Level = append(append([]int32(nil), p.Level...), level)
		child.DH = append(append([]int32(nil), p.DH...), p.DH[d.src]+1)
		child.DT = append(append([]int32(nil), p.DT...), p.DT[d.src]+1)
		if r := m.check.checkForward(g, p.DiamLen, child.DH, child.DT, u, graph.V(d.src)); r != passed {
			return nil, r
		}
	} else {
		g.MustAddEdge(graph.V(d.src), graph.V(d.dst))
		child.Level = append([]int32(nil), p.Level...)
		// Distances only shrink; refresh the two indices from scratch
		// (the pattern is small). This is the paper's "local update" of
		// D_H and D_T, as opposed to all-pairs recomputation.
		child.DH = g.BFS(0)
		child.DT = g.BFS(graph.V(p.DiamLen))
		if r := m.check.checkBackward(g, p.DiamLen, child.DH, child.DT, graph.V(d.src), graph.V(d.dst)); r != passed {
			return nil, r
		}
	}

	// Frequency: derive the child's embeddings from the parent's maps.
	// Extended maps are assembled in sc.mapBuf; Set.Add copies what it
	// stores, so the buffer is reused across embeddings.
	child.Embs = support.NewSet(g.Edges(), m.opt.MaxEmbeddings)
	for ei := 0; ei < p.Embs.Len(); ei++ {
		e := p.Embs.At(ei)
		dg := m.graphs[e.GID]
		if d.kind == 0 {
			if dg.HasEdge(e.Map[d.src], e.Map[d.dst]) {
				child.Embs.Add(e) // same map, richer edge set
			}
			continue
		}
		src := e.Map[d.src]
		for _, w := range dg.Neighbors(src) {
			if dg.Label(w) != d.label {
				continue
			}
			if inMap(e.Map, w) {
				continue
			}
			sc.mapBuf = append(sc.mapBuf[:0], e.Map...)
			sc.mapBuf = append(sc.mapBuf, w)
			child.Embs.Add(support.Embedding{GID: e.GID, Map: sc.mapBuf})
		}
	}
	if child.Embs.Count(m.opt.Measure) < m.opt.Support {
		return nil, passed // frequency reject, signalled by nil child
	}
	return child, passed
}

func inMap(m []graph.V, w graph.V) bool {
	for _, v := range m {
		if v == w {
			return true
		}
	}
	return false
}

// greedyLevelGrow absorbs valid frequent level-i extensions into one
// maximal pattern (Options.GreedyGrow).
func (m *miner) greedyLevelGrow(p *Pattern, level int32, sc *growScratch) []*Pattern {
	if m.budgetExhausted() {
		return nil // don't grind a full greedy fixpoint just to drop it
	}
	cur := p
	grew := false
	for {
		applied := false
		for _, d := range m.candidates(cur, level, sc) {
			m.stats.extensionsTried.Add(1)
			child, reason := m.extend(cur, d, level, sc)
			switch reason {
			case rejectI:
				m.stats.constraintRejects[0].Add(1)
			case rejectII:
				m.stats.constraintRejects[1].Add(1)
			case rejectIII:
				m.stats.constraintRejects[2].Add(1)
			}
			if child == nil {
				if reason == passed {
					m.stats.frequencyRejects.Add(1)
				}
				continue
			}
			// Constraint pushdown: greedy growth must not absorb an
			// extension the constraint forbids — skipping it here is
			// what makes MaximalOnly discover *constrained* maximal
			// patterns instead of post-filtering everything away.
			if m.rejectPushdown(child) {
				m.stats.pushdownRejects.Add(1)
				continue
			}
			cur = child
			applied = true
			grew = true
			break // recompute candidates against the grown pattern
		}
		if !applied {
			break
		}
	}
	if !grew {
		return nil
	}
	m.stats.generated.Add(1)
	if !m.dedup(cur) {
		m.stats.duplicates.Add(1)
		return nil
	}
	if !m.consumeBudget() {
		return nil // MaxPatterns budget exhausted; drop, don't emit
	}
	return []*Pattern{cur}
}

// levelGrow expands p with every valid non-empty set of level-i edges,
// returning all distinct (by canonical code) valid frequent children,
// transitively. Every returned pattern holds a reserved MaxPatterns
// budget slot: the slot is taken only after the child passes dedup, and
// a child that fails to reserve one is dropped, so the number of
// patterns emitted across all workers never exceeds the budget.
func (m *miner) levelGrow(p *Pattern, level int32, sc *growScratch) []*Pattern {
	if m.opt.GreedyGrow {
		return m.greedyLevelGrow(p, level, sc)
	}
	if m.budgetExhausted() {
		return nil
	}
	var out []*Pattern
	frontier := []*Pattern{p}
	for len(frontier) > 0 {
		var next []*Pattern
		for _, cur := range frontier {
			for _, d := range m.candidates(cur, level, sc) {
				if cur.hasAnchor && compareDesc(d, cur.anchor) < 0 {
					continue
				}
				m.stats.extensionsTried.Add(1)
				child, reason := m.extend(cur, d, level, sc)
				switch reason {
				case rejectI:
					m.stats.constraintRejects[0].Add(1)
				case rejectII:
					m.stats.constraintRejects[1].Add(1)
				case rejectIII:
					m.stats.constraintRejects[2].Add(1)
				}
				if child == nil {
					if reason == passed {
						m.stats.frequencyRejects.Add(1)
					}
					continue
				}
				// Constraint pushdown, before the (expensive) canonical
				// code: an anti-monotone violation cuts the child and
				// its whole subtree, exactly the patterns the output
				// filter would have dropped one by one.
				if m.rejectPushdown(child) {
					m.stats.pushdownRejects.Add(1)
					continue
				}
				m.stats.generated.Add(1)
				if !m.dedup(child) {
					m.stats.duplicates.Add(1)
					continue
				}
				if !m.consumeBudget() {
					// Budget exhausted: the child could not reserve a
					// slot, so it is NOT part of the result.
					return append(out, next...)
				}
				next = append(next, child)
			}
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}
