package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"skinnymine/internal/graph"
	"skinnymine/internal/testutil"
)

// This file retains the string-keyed, map-based implementation of
// Stage I that the hash-keyed pathBucket/join indexes replaced — the
// pre-refactor code, sequential form — and asserts the two produce
// identical PathPattern sets (sequences, supports, AND full oriented
// embedding sets) on randomized synthetic graphs. Any divergence in the
// hash sets' dedup semantics (missed collision verification, wrong
// canonical orientation, lost embeddings in a chain merge) shows up
// here. The concurrent variants of the same pipeline are exercised
// under -race by parallel_test.go and the parallel guard below, which
// drive the epoch-stamped scratch tables from multiple workers.

// refBucket is the reference accumulator: exact oriented keys and
// orientation-independent subgraph keys as materialized strings
// (verbatim from the pre-refactor pathBucket).
type refBucket struct {
	seq       []graph.Label
	embs      []PathEmb
	seen      map[string]struct{}
	subgraphs map[string]struct{}
}

func (b *refBucket) add(e PathEmb) {
	k := e.key()
	if _, dup := b.seen[k]; dup {
		return
	}
	b.seen[k] = struct{}{}
	b.subgraphs[e.subgraphKey()] = struct{}{}
	b.embs = append(b.embs, e)
}

// refMiner reproduces the original DiamMine doubling/merge pipeline
// with string-keyed buckets and map-based join indexes.
type refMiner struct {
	graphs  []*graph.Graph
	support int
	levels  map[int][]*PathPattern
}

func newRefMiner(graphs []*graph.Graph, support int) *refMiner {
	return &refMiner{graphs: graphs, support: support, levels: make(map[int][]*PathPattern)}
}

func (m *refMiner) mine(l int) []*PathPattern {
	if ps, ok := m.levels[l]; ok {
		return ps
	}
	k := 1
	for k*2 <= l {
		k *= 2
	}
	if _, ok := m.levels[1]; !ok {
		m.levels[1] = m.frequentEdges()
	}
	for p := 2; p <= k; p *= 2 {
		if _, ok := m.levels[p]; !ok {
			m.levels[p] = m.concat(m.levels[p/2])
		}
	}
	if l != k {
		m.levels[l] = m.merge(m.levels[k], l, k)
	}
	return m.levels[l]
}

func (m *refMiner) bucketAdd(buckets map[string]*refBucket, e PathEmb) {
	seq := make([]graph.Label, len(e.Seq))
	g := m.graphs[e.GID]
	for i, v := range e.Seq {
		seq[i] = g.Label(v)
	}
	canon := graph.CanonicalLabelSeq(seq)
	key := graph.LabelSeqKey(canon)
	b, ok := buckets[key]
	if !ok {
		b = &refBucket{seq: canon, seen: make(map[string]struct{}), subgraphs: make(map[string]struct{})}
		buckets[key] = b
	}
	b.add(e)
}

func (m *refMiner) frequentEdges() []*PathPattern {
	buckets := make(map[string]*refBucket)
	for gi, g := range m.graphs {
		gid := int32(gi)
		for _, e := range g.Edges() {
			for _, or := range [2][2]graph.V{{e.U, e.W}, {e.W, e.U}} {
				m.bucketAdd(buckets, PathEmb{GID: gid, Seq: graph.Path{or[0], or[1]}})
			}
		}
	}
	return m.collect(buckets)
}

func (m *refMiner) concat(prev []*PathPattern) []*PathPattern {
	type vkey struct {
		gid int32
		v   graph.V
	}
	byFirst := make(map[vkey][]PathEmb)
	for _, p := range prev {
		for _, e := range p.Embs {
			k := vkey{e.GID, e.Seq[0]}
			byFirst[k] = append(byFirst[k], e)
		}
	}
	buckets := make(map[string]*refBucket)
	inA := make(map[graph.V]struct{}, 16)
	for _, p := range prev {
		for _, a := range p.Embs {
			cands := byFirst[vkey{a.GID, a.Seq[len(a.Seq)-1]}]
			if len(cands) == 0 {
				continue
			}
			clear(inA)
			for _, v := range a.Seq {
				inA[v] = struct{}{}
			}
			for _, b := range cands {
				disjoint := true
				for _, v := range b.Seq[1:] {
					if _, hit := inA[v]; hit {
						disjoint = false
						break
					}
				}
				if !disjoint {
					continue
				}
				comb := make(graph.Path, 0, len(a.Seq)+len(b.Seq)-1)
				comb = append(comb, a.Seq...)
				comb = append(comb, b.Seq[1:]...)
				m.bucketAdd(buckets, PathEmb{GID: a.GID, Seq: comb})
			}
		}
	}
	return m.collect(buckets)
}

func (m *refMiner) merge(pool []*PathPattern, l, pm int) []*PathPattern {
	o := 2*pm - l
	type pkey struct {
		gid int32
		k   string
	}
	tupleKey := func(seq graph.Path) string {
		b := make([]byte, 0, len(seq)*4)
		for _, v := range seq {
			b = append4(b, v)
		}
		return string(b)
	}
	byPrefix := make(map[pkey][]PathEmb)
	for _, p := range pool {
		for _, e := range p.Embs {
			k := pkey{e.GID, tupleKey(e.Seq[:o+1])}
			byPrefix[k] = append(byPrefix[k], e)
		}
	}
	buckets := make(map[string]*refBucket)
	inA := make(map[graph.V]struct{}, 16)
	for _, p := range pool {
		for _, a := range p.Embs {
			suffix := a.Seq[len(a.Seq)-o-1:]
			cands := byPrefix[pkey{a.GID, tupleKey(suffix)}]
			if len(cands) == 0 {
				continue
			}
			clear(inA)
			for _, v := range a.Seq {
				inA[v] = struct{}{}
			}
			for _, b := range cands {
				disjoint := true
				for _, v := range b.Seq[o+1:] {
					if _, hit := inA[v]; hit {
						disjoint = false
						break
					}
				}
				if !disjoint {
					continue
				}
				comb := make(graph.Path, 0, l+1)
				comb = append(comb, a.Seq...)
				comb = append(comb, b.Seq[o+1:]...)
				m.bucketAdd(buckets, PathEmb{GID: a.GID, Seq: comb})
			}
		}
	}
	return m.collect(buckets)
}

func (m *refMiner) collect(buckets map[string]*refBucket) []*PathPattern {
	var out []*PathPattern
	for _, b := range buckets {
		sup := len(b.subgraphs)
		if sup < m.support {
			continue
		}
		sort.Slice(b.embs, func(i, j int) bool {
			if b.embs[i].GID != b.embs[j].GID {
				return b.embs[i].GID < b.embs[j].GID
			}
			return comparePaths(b.embs[i].Seq, b.embs[j].Seq) < 0
		})
		out = append(out, &PathPattern{Seq: b.seq, Embs: b.embs, Support: sup})
	}
	sort.Slice(out, func(i, j int) bool {
		return graph.CompareLabelSeqs(out[i].Seq, out[j].Seq) < 0
	})
	return out
}

func assertSamePatterns(t *testing.T, label string, got, want []*PathPattern) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d patterns, reference has %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if graph.CompareLabelSeqs(g.Seq, w.Seq) != 0 {
			t.Fatalf("%s: pattern %d sequence %v, reference %v", label, i, g.Seq, w.Seq)
		}
		if g.Support != w.Support {
			t.Fatalf("%s: pattern %d (%v) support %d, reference %d", label, i, g.Seq, g.Support, w.Support)
		}
		if len(g.Embs) != len(w.Embs) {
			t.Fatalf("%s: pattern %d (%v) stores %d embeddings, reference %d",
				label, i, g.Seq, len(g.Embs), len(w.Embs))
		}
		for j := range w.Embs {
			if g.Embs[j].key() != w.Embs[j].key() {
				t.Fatalf("%s: pattern %d embedding %d is %v@g%d, reference %v@g%d",
					label, i, j, g.Embs[j].Seq, g.Embs[j].GID, w.Embs[j].Seq, w.Embs[j].GID)
			}
		}
	}
}

// TestHashBucketsMatchReference compares the hash-keyed Stage I against
// the string-keyed reference across random graphs, every length that
// exercises edges, doubling AND merging, and both support thresholds.
func TestHashBucketsMatchReference(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomConnectedGraph(rng, 24+rng.Intn(16), 12, 3)
		for _, sigma := range []int{1, 2} {
			dm, err := NewDiamMiner([]*graph.Graph{g}, sigma)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefMiner([]*graph.Graph{g}, sigma)
			for l := 1; l <= 5; l++ { // l=3,5 exercise the merge join
				got, err := dm.Mine(l)
				if err != nil {
					t.Fatal(err)
				}
				assertSamePatterns(t, fmt.Sprintf("seed=%d σ=%d l=%d", seed, sigma, l), got, ref.mine(l))
			}
		}
	}
}

// TestHashBucketsMatchReferenceTransaction repeats the guard over a
// multi-graph database, so GID partitioning of the join indexes and
// subgraph keys is covered too.
func TestHashBucketsMatchReferenceTransaction(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	db := []*graph.Graph{
		testutil.RandomConnectedGraph(rng, 20, 8, 2),
		testutil.RandomConnectedGraph(rng, 25, 10, 2),
		testutil.RandomConnectedGraph(rng, 15, 6, 2),
	}
	dm, err := NewDiamMiner(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefMiner(db, 2)
	for l := 1; l <= 4; l++ {
		got, err := dm.Mine(l)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePatterns(t, fmt.Sprintf("db l=%d", l), got, ref.mine(l))
	}
}

// TestHashBucketsMatchReferenceParallel runs the same comparison with
// the join fan-out enabled, so under -race the epoch-stamped scratch
// sets and worker-local bucket merging are exercised while the output
// is pinned to the reference.
func TestHashBucketsMatchReferenceParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testutil.RandomConnectedGraph(rng, 40, 20, 3)
	dm, err := NewDiamMiner([]*graph.Graph{g}, 2)
	if err != nil {
		t.Fatal(err)
	}
	dm.SetConcurrency(8)
	ref := newRefMiner([]*graph.Graph{g}, 2)
	for _, l := range []int{2, 3, 4, 5} {
		got, err := dm.Mine(l)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePatterns(t, fmt.Sprintf("parallel l=%d", l), got, ref.mine(l))
	}
}
