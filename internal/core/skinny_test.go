package core

import (
	"math/rand"
	"testing"

	"skinnymine/internal/dfscode"
	"skinnymine/internal/graph"
	"skinnymine/internal/support"
	"skinnymine/internal/testutil"
)

// groundTruth enumerates every connected edge-subset of g (feasible for
// tiny graphs), keeps those forming an l-long δ-skinny pattern for some
// l in [lo, hi], and aggregates distinct subgraphs per canonical code.
func groundTruth(g *graph.Graph, sigma, lo, hi, delta int) map[string]int {
	edges := g.Edges()
	subsByCode := make(map[string]map[string]struct{})
	n := len(edges)
	for mask := 1; mask < 1<<n; mask++ {
		var vs []graph.V
		seen := make(map[graph.V]struct{})
		var chosen []graph.Edge
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			chosen = append(chosen, edges[i])
			for _, v := range []graph.V{edges[i].U, edges[i].W} {
				if _, ok := seen[v]; !ok {
					seen[v] = struct{}{}
					vs = append(vs, v)
				}
			}
		}
		// Build the subgraph on the touched vertices with chosen edges.
		idx := make(map[graph.V]graph.V, len(vs))
		sub := graph.New(len(vs))
		for i, v := range vs {
			idx[v] = graph.V(i)
			sub.AddVertex(g.Label(v))
		}
		for _, e := range chosen {
			sub.MustAddEdge(idx[e.U], idx[e.W])
		}
		if !sub.Connected() {
			continue
		}
		cd, diam := sub.CanonicalDiameter()
		if diam == graph.Unreachable || int(diam) < lo || int(diam) > hi {
			continue
		}
		if delta >= 0 && !sub.IsSkinny(cd, int32(delta)) {
			continue
		}
		code := dfscode.MinCodeKey(sub)
		if subsByCode[code] == nil {
			subsByCode[code] = make(map[string]struct{})
		}
		ekey := ""
		for _, e := range chosen {
			ekey += string(rune(e.U)) + "," + string(rune(e.W)) + ";"
		}
		subsByCode[code][ekey] = struct{}{}
	}
	out := make(map[string]int)
	for code, subs := range subsByCode {
		if len(subs) >= sigma {
			out[code] = len(subs)
		}
	}
	return out
}

func resultCodes(r *Result) map[string]int {
	out := make(map[string]int)
	for _, p := range r.Patterns {
		out[dfscode.MinCodeKey(p.G)] = p.Support()
	}
	return out
}

// isTreeCode reports whether the pattern is a tree (|E| = |V| - 1).
func isTreeCode(p *Pattern) bool { return p.G.M() == p.G.N()-1 }

// TestSkinnyMineMatchesGroundTruth anchors soundness and (tree-)
// completeness against brute-force enumeration of connected subgraphs at
// σ=1 (where embedding-count support is trivially anti-monotone):
//
//   - soundness: every mined pattern appears in ground truth with the
//     exact same support;
//   - completeness on trees: every tree-shaped ground-truth pattern is
//     mined. (Tree patterns always admit a constraint-preserving
//     single-edge growth order; cyclic patterns may not — see
//     TestGrowthParadigmGap and DESIGN.md §8.)
func TestSkinnyMineMatchesGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(4)
		g := testutil.RandomConnectedGraph(rng, n, rng.Intn(3), 3)
		if g.M() > 12 {
			continue
		}
		for _, mode := range []CheckMode{CheckFast, CheckNaive} {
			for l := 2; l <= 4; l++ {
				for delta := 0; delta <= 2; delta++ {
					opt := DefaultOptions(1, l, delta)
					opt.CheckMode = mode
					res, err := Mine(g, opt)
					if err != nil {
						t.Fatalf("Mine: %v", err)
					}
					got := resultCodes(res)
					want := groundTruth(g, 1, l, l, delta)
					for code, sup := range got {
						if want[code] != sup {
							t.Fatalf("trial %d mode=%d l=%d δ=%d: mined pattern has support %d, ground truth %d (soundness)",
								trial, mode, l, delta, sup, want[code])
						}
					}
					// Tree completeness: check via the mined patterns'
					// structure — rebuild each ground-truth tree code's
					// presence by asserting all tree patterns found.
					gotTrees := make(map[string]struct{})
					for _, p := range res.Patterns {
						if isTreeCode(p) {
							gotTrees[dfscode.MinCodeKey(p.G)] = struct{}{}
						}
					}
					wantTrees := enumerateTreeCodes(g, l, delta)
					for code := range wantTrees {
						if _, ok := gotTrees[code]; !ok {
							t.Fatalf("trial %d mode=%d l=%d δ=%d: tree pattern missing (completeness)\nlabels=%v edges=%v",
								trial, mode, l, delta, g.Labels(), g.Edges())
						}
					}
				}
			}
		}
	}
}

// enumerateTreeCodes lists canonical codes of all tree-shaped l-long
// δ-skinny connected subgraphs of g.
func enumerateTreeCodes(g *graph.Graph, l, delta int) map[string]struct{} {
	edges := g.Edges()
	out := make(map[string]struct{})
	n := len(edges)
	for mask := 1; mask < 1<<n; mask++ {
		var chosen []graph.Edge
		seen := make(map[graph.V]struct{})
		var vs []graph.V
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			chosen = append(chosen, edges[i])
			for _, v := range []graph.V{edges[i].U, edges[i].W} {
				if _, ok := seen[v]; !ok {
					seen[v] = struct{}{}
					vs = append(vs, v)
				}
			}
		}
		if len(chosen) != len(vs)-1 {
			continue // not a tree
		}
		idx := make(map[graph.V]graph.V, len(vs))
		sub := graph.New(len(vs))
		for i, v := range vs {
			idx[v] = graph.V(i)
			sub.AddVertex(g.Label(v))
		}
		for _, e := range chosen {
			sub.MustAddEdge(idx[e.U], idx[e.W])
		}
		if !sub.Connected() {
			continue
		}
		cd, diam := sub.CanonicalDiameter()
		if int(diam) != l {
			continue
		}
		if delta >= 0 && !sub.IsSkinny(cd, int32(delta)) {
			continue
		}
		out[dfscode.MinCodeKey(sub)] = struct{}{}
	}
	return out
}

// TestGrowthParadigmGap documents a gap we found while reproducing the
// paper: Lemma 4's constructive proof assumes each vertex can be
// inserted with a single edge while preserving the canonical diameter,
// but a vertex adjacent to two diameter-distant vertices (e.g. the
// labeled 4-cycle below) inflates the diameter in every single-edge
// intermediate (Constraint I fires), so Algorithms 1–3 as published
// cannot reach it even though it satisfies Definition 7. This test
// pins the behavior; the MoSS enumerate-and-check baseline (used as
// ground truth elsewhere) does find such patterns.
func TestGrowthParadigmGap(t *testing.T) {
	// C4 with labels 2,1,2,1: canonical diameter length 2, 1-skinny.
	g := testutil.CycleGraph(2, 1, 2, 1)
	cd, diam := g.CanonicalDiameter()
	if diam != 2 || !g.IsSkinny(cd, 1) {
		t.Fatal("test graph should be 2-long 1-skinny")
	}
	res, err := Mine(g, DefaultOptions(1, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	wantMissing := dfscode.MinCodeKey(g)
	for _, p := range res.Patterns {
		if dfscode.MinCodeKey(p.G) == wantMissing {
			t.Error("paper-faithful growth unexpectedly reached the C4 pattern; " +
				"if a multi-edge insertion was added, update DESIGN.md §8")
		}
	}
}

// TestFastNaiveAgreement runs CheckVerify and demands the result set
// equal the naive-mode result; mismatch counts are reported for the
// record (the Theorem-3 trigger cases are head/tail-only in the paper).
func TestFastNaiveAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	totalMismatch := 0
	for trial := 0; trial < 20; trial++ {
		g := testutil.RandomConnectedGraph(rng, 6+rng.Intn(4), rng.Intn(4), 2)
		optFast := DefaultOptions(1, 3, 2)
		optNaive := optFast
		optNaive.CheckMode = CheckNaive
		rf, err := Mine(g, optFast)
		if err != nil {
			t.Fatal(err)
		}
		rn, err := Mine(g, optNaive)
		if err != nil {
			t.Fatal(err)
		}
		gf, gn := resultCodes(rf), resultCodes(rn)
		if len(gf) != len(gn) {
			t.Fatalf("trial %d: fast found %d patterns, naive %d", trial, len(gf), len(gn))
		}
		for code, sup := range gn {
			if gf[code] != sup {
				t.Fatalf("trial %d: pattern support fast=%d naive=%d", trial, gf[code], sup)
			}
		}
		optV := optFast
		optV.CheckMode = CheckVerify
		rv, err := Mine(g, optV)
		if err != nil {
			t.Fatal(err)
		}
		totalMismatch += rv.Stats.CheckMismatches
	}
	t.Logf("fast-vs-naive constraint check mismatches across trials: %d", totalMismatch)
}

// TestUniqueGeneration: every output pattern has a distinct canonical
// code (the paper's unique generation claim at the output level).
func TestUniqueGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		g := testutil.RandomConnectedGraph(rng, 8+rng.Intn(5), rng.Intn(5), 2)
		res, err := Mine(g, DefaultOptions(1, 3, 2))
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]struct{})
		for _, p := range res.Patterns {
			code := dfscode.MinCodeKey(p.G)
			if _, dup := seen[code]; dup {
				t.Fatalf("trial %d: duplicate pattern in output", trial)
			}
			seen[code] = struct{}{}
		}
	}
}

// TestGrowthIndicesInvariant: Level, DH, DT on every emitted pattern
// must equal from-scratch recomputation.
func TestGrowthIndicesInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 10; trial++ {
		g := testutil.RandomConnectedGraph(rng, 8+rng.Intn(4), rng.Intn(4), 2)
		res, err := Mine(g, DefaultOptions(1, 3, 2))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range res.Patterns {
			dh := p.G.BFS(0)
			dt := p.G.BFS(graph.V(p.DiamLen))
			levels := p.G.VertexLevels(p.Diam())
			for v := 0; v < p.G.N(); v++ {
				if p.DH[v] != dh[v] || p.DT[v] != dt[v] {
					t.Fatalf("trial %d: DH/DT stale at vertex %d: (%d,%d) vs (%d,%d)",
						trial, v, p.DH[v], p.DT[v], dh[v], dt[v])
				}
				if p.Level[v] != levels[v] {
					t.Fatalf("trial %d: level stale at vertex %d: %d vs %d",
						trial, v, p.Level[v], levels[v])
				}
			}
		}
	}
}

// TestConstraintExamples mirrors the paper's Figure 3 discussion with
// minimal cases, one per constraint.
func TestConstraintExamples(t *testing.T) {
	// Seed: canonical diameter a-a-b (labels 0,0,1), l=2.
	seed := func() *Pattern {
		pp := &PathPattern{Seq: []graph.Label{0, 0, 1}}
		data := testutil.PathGraph(0, 0, 1)
		pp.Embs = []PathEmb{{Seq: graph.Path{0, 1, 2}}}
		return newPatternFromPath(pp, []*graph.Graph{data}, 0)
	}
	c := checker{mode: CheckFast, stats: &statCounters{}}

	// Constraint I: new vertex hanging off the head is at distance 3 > 2
	// from the tail -> diameter would grow.
	p := seed()
	g := p.G.Clone()
	u := g.AddVertex(0)
	g.MustAddEdge(0, u)
	dh := append(append([]int32(nil), p.DH...), p.DH[0]+1)
	dt := append(append([]int32(nil), p.DT...), p.DT[0]+1)
	if r := c.checkForward(g, p.DiamLen, dh, dt, u, 0); r != rejectI {
		t.Errorf("endpoint twig: got %d, want Constraint I reject", r)
	}

	// Constraint II: chord 0-2 shortens head-tail distance on an l=2... use l=3.
	pp := &PathPattern{Seq: []graph.Label{0, 0, 0, 1}}
	data := testutil.PathGraph(0, 0, 0, 1)
	pp.Embs = []PathEmb{{Seq: graph.Path{0, 1, 2, 3}}}
	p3 := newPatternFromPath(pp, []*graph.Graph{data}, 0)
	g3 := p3.G.Clone()
	g3.MustAddEdge(0, 2)
	dh3 := g3.BFS(0)
	dt3 := g3.BFS(3)
	if r := c.checkBackward(g3, p3.DiamLen, dh3, dt3, 0, 2); r != rejectII {
		t.Errorf("chord: got %d, want Constraint II reject", r)
	}

	// Constraint III: twig label 0 at the middle creates diameter path
	// (0,0,0) < (0,0,1).
	p = seed()
	g = p.G.Clone()
	u = g.AddVertex(0)
	g.MustAddEdge(1, u)
	dh = append(append([]int32(nil), p.DH...), p.DH[1]+1)
	dt = append(append([]int32(nil), p.DT...), p.DT[1]+1)
	if r := c.checkForward(g, p.DiamLen, dh, dt, u, 1); r != rejectIII {
		t.Errorf("lex-smaller diameter: got %d, want Constraint III reject", r)
	}

	// Acceptance: twig label 2 at the middle creates (0,0,2)? No — new
	// path [u,1,0] has labels (2,0,0) -> canonical orientation (0,0,2) >
	// (0,0,1), so L survives.
	p = seed()
	g = p.G.Clone()
	u = g.AddVertex(2)
	g.MustAddEdge(1, u)
	dh = append(append([]int32(nil), p.DH...), p.DH[1]+1)
	dt = append(append([]int32(nil), p.DT...), p.DT[1]+1)
	if r := c.checkForward(g, p.DiamLen, dh, dt, u, 1); r != passed {
		t.Errorf("larger-label twig: got %d, want pass", r)
	}
}

func TestMineInjectedSkinnyPattern(t *testing.T) {
	// Inject two copies of a 4-long 1-skinny pattern into a labeled ring;
	// SkinnyMine must recover it with support 2.
	rng := rand.New(rand.NewSource(61))
	g := graph.New(60)
	for i := 0; i < 30; i++ {
		g.AddVertex(graph.Label(10 + rng.Intn(10)))
	}
	for i := 0; i < 30; i++ {
		g.MustAddEdge(graph.V(i), graph.V((i+1)%30))
	}
	spine := []graph.Label{1, 2, 3, 2, 1}
	for copyi := 0; copyi < 2; copyi++ {
		base := g.N()
		for _, l := range spine {
			g.AddVertex(l)
		}
		for i := 1; i < len(spine); i++ {
			g.MustAddEdge(graph.V(base+i-1), graph.V(base+i))
		}
		tw := g.AddVertex(4) // twig at the middle
		g.MustAddEdge(graph.V(base+2), tw)
	}
	res, err := Mine(g, DefaultOptions(2, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Build the expected injected pattern.
	want := testutil.PathGraph(spine...)
	tw := want.AddVertex(4)
	want.MustAddEdge(2, tw)
	wantCode := dfscode.MinCodeKey(want)
	found := false
	for _, p := range res.Patterns {
		if dfscode.MinCodeKey(p.G) == wantCode {
			found = true
			if p.Support() != 2 {
				t.Errorf("injected pattern support = %d, want 2", p.Support())
			}
		}
	}
	if !found {
		t.Errorf("injected pattern not recovered (found %d patterns)", len(res.Patterns))
	}
}

func TestMineRangeRequest(t *testing.T) {
	// MinLength..Length mines a band of diameters without visiting others.
	g := testutil.PathGraph(0, 1, 2, 3, 4, 5)
	opt := DefaultOptions(1, 4, 0)
	opt.MinLength = 3
	res, err := Mine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if p.DiamLen < 3 || p.DiamLen > 4 {
			t.Errorf("pattern diameter %d outside [3,4]", p.DiamLen)
		}
	}
	if len(res.Patterns) != 5 { // paths of length 3 (x3 distinct label seqs) + length 4 (x2)
		t.Errorf("got %d patterns, want 5", len(res.Patterns))
	}
}

func TestMineTransactionGraphCount(t *testing.T) {
	// Three transactions, two containing the pattern.
	g1 := testutil.PathGraph(1, 2, 3)
	g2 := testutil.PathGraph(1, 2, 3)
	g3 := testutil.PathGraph(4, 5, 6)
	opt := DefaultOptions(2, 2, 1)
	opt.Measure = support.GraphCount
	res, err := MineDB([]*graph.Graph{g1, g2, g3}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 1 {
		t.Fatalf("got %d patterns, want 1", len(res.Patterns))
	}
	if res.Patterns[0].Embs.GraphSupport() != 2 {
		t.Errorf("graph support = %d, want 2", res.Patterns[0].Embs.GraphSupport())
	}
}

func TestMineOptionValidation(t *testing.T) {
	g := testutil.PathGraph(0, 1)
	if _, err := Mine(g, Options{Support: 0, Length: 2}); err == nil {
		t.Error("support 0 should error")
	}
	if _, err := Mine(g, Options{Support: 1, Length: 0}); err == nil {
		t.Error("length 0 should error")
	}
	if _, err := Mine(g, Options{Support: 1, Length: 2, MinLength: 3}); err == nil {
		t.Error("MinLength > Length should error")
	}
	if _, err := MineDB(nil, Options{Support: 1, Length: 1}); err == nil {
		t.Error("empty DB should error")
	}
}

func TestMineUnboundedDelta(t *testing.T) {
	// δ < 0 grows until no frequent extension; on a star + path this
	// terminates quickly.
	g := testutil.PathGraph(0, 1, 0, 1, 0)
	opt := DefaultOptions(1, 2, -1)
	res, err := Mine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Error("expected patterns")
	}
}

func TestClosedOnlyFilter(t *testing.T) {
	// Path 1-2-3-4-5: the full length-4 path (support 1) is closed; its
	// length-2 sub-paths each have support 1 and a super-pattern with the
	// same support, so ClosedOnly keeps only maximal ones.
	g := testutil.PathGraph(1, 2, 3, 4, 5)
	opt := DefaultOptions(1, 2, 0)
	opt.ClosedOnly = true
	res, err := Mine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Every length-2 sub-path is contained in another length-2... no:
	// containment needs a strict super-pattern IN THE RESULT (same l).
	// Distinct length-2 paths don't contain each other, so all are closed.
	if len(res.Patterns) != 3 {
		t.Errorf("got %d patterns, want 3", len(res.Patterns))
	}
	// Now δ=1 on a graph where a twig extension has equal support.
	h := testutil.PathGraph(1, 2, 3)
	tw := h.AddVertex(9)
	h.MustAddEdge(1, tw)
	opt2 := DefaultOptions(1, 2, 1)
	opt2.ClosedOnly = true
	res2, err := Mine(h, opt2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res2.Patterns {
		if p.G.M() == 2 && p.Support() == 1 && p.DiamSeq()[0] == 1 && p.DiamSeq()[2] == 3 {
			t.Error("bare path 1-2-3 is not closed (twig super-pattern has equal support)")
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	g := testutil.PathGraph(0, 1, 0, 1, 0)
	res, err := Mine(g, DefaultOptions(1, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PathsMined == 0 {
		t.Error("PathsMined should be > 0")
	}
	if res.Stats.DiamMineTime < 0 || res.Stats.LevelGrowTime < 0 {
		t.Error("stage timings missing")
	}
}

func TestMineWithIndexReuse(t *testing.T) {
	g := testutil.PathGraph(0, 1, 2, 3, 4)
	dm, err := NewDiamMiner([]*graph.Graph{g}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for l := 2; l <= 4; l++ {
		opt := DefaultOptions(1, l, 1)
		res, err := MineWithIndex(dm, opt)
		if err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		for _, p := range res.Patterns {
			if int(p.DiamLen) != l {
				t.Errorf("l=%d: pattern with diameter %d", l, p.DiamLen)
			}
		}
	}
	bad := DefaultOptions(2, 2, 1)
	if _, err := MineWithIndex(dm, bad); err == nil {
		t.Error("support mismatch with index should error")
	}
}

func TestGreedyGrowRecoversInjectedMaximal(t *testing.T) {
	// Inject two copies of a 40-ish vertex skinny pattern; greedy mode
	// must recover the full pattern without enumerating subsets.
	rng := rand.New(rand.NewSource(71))
	g := graph.New(400)
	for i := 0; i < 200; i++ {
		g.AddVertex(graph.Label(100 + rng.Intn(50)))
	}
	for i := 0; i < 200; i++ {
		g.MustAddEdge(graph.V(i), graph.V((i+1)%200))
	}
	// Build a skinny pattern: backbone length 12, 10 twigs.
	spine := make([]graph.Label, 13)
	for i := range spine {
		spine[i] = graph.Label(i)
	}
	p := testutil.PathGraph(spine...)
	for tw := 0; tw < 10; tw++ {
		v := p.AddVertex(graph.Label(20 + tw))
		p.MustAddEdge(graph.V(1+tw), v)
	}
	for c := 0; c < 2; c++ {
		base := g.N()
		for i := 0; i < p.N(); i++ {
			g.AddVertex(p.Label(graph.V(i)))
		}
		for _, e := range p.Edges() {
			g.MustAddEdge(graph.V(base)+e.U, graph.V(base)+e.W)
		}
	}
	opt := DefaultOptions(2, 12, 1)
	opt.GreedyGrow = true
	res, err := Mine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantCode := dfscode.MinCodeKey(p)
	found := false
	for _, r := range res.Patterns {
		if dfscode.MinCodeKey(r.G) == wantCode {
			found = true
		}
	}
	if !found {
		t.Errorf("greedy growth did not recover the injected maximal pattern (%d results)", len(res.Patterns))
	}
	if res.Stats.Generated > 40 {
		t.Errorf("greedy mode generated %d patterns; should be few", res.Stats.Generated)
	}
}

func TestParallelWorkersMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	g := testutil.RandomConnectedGraph(rng, 14, 5, 3)
	seq := DefaultOptions(1, 3, 2)
	seq.Concurrency = 1
	par := seq
	par.Concurrency = 4
	rs, err := Mine(g, seq)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Mine(g, par)
	if err != nil {
		t.Fatal(err)
	}
	gs, gp := resultCodes(rs), resultCodes(rp)
	if len(gs) != len(gp) {
		t.Fatalf("sequential %d patterns, parallel %d", len(gs), len(gp))
	}
	for code, sup := range gs {
		if gp[code] != sup {
			t.Fatalf("support mismatch: %d vs %d", sup, gp[code])
		}
	}
	// Deterministic output order: same codes in the same order.
	for i := range rs.Patterns {
		if dfscode.MinCodeKey(rs.Patterns[i].G) != dfscode.MinCodeKey(rp.Patterns[i].G) {
			t.Fatal("parallel output order differs from sequential")
		}
	}
}

func TestMaxPatternsBudgetBindsInsideGrowth(t *testing.T) {
	// A grid-ish graph at σ=1 has a huge full result set; the budget
	// must stop expansion promptly, not just truncate afterwards.
	rng := rand.New(rand.NewSource(91))
	g := testutil.RandomConnectedGraph(rng, 30, 20, 2)
	opt := DefaultOptions(1, 3, 3)
	opt.MaxPatterns = 50
	opt.ValidateOutput = false
	res, err := Mine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) > 50 {
		t.Errorf("got %d patterns, budget was 50", len(res.Patterns))
	}
	if res.Stats.Generated > 200 {
		t.Errorf("generated %d patterns despite budget 50; cap not binding", res.Stats.Generated)
	}
}
