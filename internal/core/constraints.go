package core

import "skinnymine/internal/graph"

// Canonical-diameter maintenance (Section 3.3–3.4). Growing a pattern P
// with canonical diameter L to P' must keep L the canonical diameter
// (Loop Invariant 1), which Lemma 1 decomposes into:
//
//	Constraint I   — the diameter does not increase;
//	Constraint II  — L still realizes the shortest v_H–v_T distance;
//	Constraint III — L <= L' for any newly created same-length diameter.
//
// CheckFast implements the paper's index-based conditions (Theorems 1–3)
// with two per-vertex distances D_H and D_T; the lexicographic test of
// Constraint III runs a frontier sweep inside the (small) pattern only
// when the Theorem-3 trigger fires. CheckNaive recomputes the canonical
// diameter of P' from scratch (the "highly inefficient" baseline the
// paper argues against); CheckVerify runs both and records mismatches.

// CheckMode selects the constraint-maintenance implementation.
type CheckMode int

const (
	// CheckFast uses the paper's D_H/D_T index conditions.
	CheckFast CheckMode = iota
	// CheckNaive recomputes the canonical diameter after each extension.
	CheckNaive
	// CheckVerify runs both, records disagreements in Stats, and trusts
	// the naive answer. Used by tests and the verification bench.
	CheckVerify
)

// rejectReason says which constraint failed (for stats), or passed.
type rejectReason int

const (
	passed rejectReason = iota
	rejectI
	rejectII
	rejectIII
)

// checker evaluates the three constraints for a tentative extension. The
// child graph must already contain the new edge (and vertex, for forward
// extensions); dh and dt are the child's updated index slices.
type checker struct {
	mode  CheckMode
	stats *statCounters
}

// checkForward validates attaching new vertex u (the last vertex of g)
// to v. dh/dt must already hold u's indices (computed as D_H[v]+1 and
// D_T[v]+1, exact because u's only edge is to v).
func (c *checker) checkForward(g *graph.Graph, diamLen int32, dh, dt []int32, u, v graph.V) rejectReason {
	fast := func() rejectReason {
		d := diamLen
		if dh[u] > d || dt[u] > d {
			return rejectI // Theorem 1
		}
		if dh[u]+dt[u] < d {
			return rejectII // Theorem 2
		}
		// Theorem 3 trigger: max(D_H[v], D_T[v]) == D-1, i.e. the new
		// vertex is at distance D from an endpoint and a new diameter
		// path may exist.
		if dh[u] == d {
			if c.newDiamBeatsL(g, diamLen, u, 0) {
				return rejectIII
			}
		}
		if dt[u] == d {
			if c.newDiamBeatsL(g, diamLen, u, graph.V(diamLen)) {
				return rejectIII
			}
		}
		return passed
	}
	return c.run(g, diamLen, fast)
}

// checkBackward validates adding an edge between existing vertices u, v.
// dh/dt must already be updated for the child graph (distances only
// shrink, so a BFS refresh from head and tail suffices).
func (c *checker) checkBackward(g *graph.Graph, diamLen int32, dh, dt []int32, u, v graph.V) rejectReason {
	fast := func() rejectReason {
		d := diamLen
		// Constraint I holds automatically: edges between existing
		// vertices only shrink distances (Theorem 1 case 1).
		if dh[graph.V(d)] < d {
			return rejectII // head–tail distance shortened
		}
		// Theorem 3 trigger for case (2): a fresh head–tail path of
		// length exactly D runs through (u,v).
		if dh[u]+1+dt[v] == d || dh[v]+1+dt[u] == d {
			if c.newDiamBeatsL(g, diamLen, 0, graph.V(diamLen)) {
				return rejectIII
			}
		}
		return passed
	}
	return c.run(g, diamLen, fast)
}

func (c *checker) run(g *graph.Graph, diamLen int32, fast func() rejectReason) rejectReason {
	switch c.mode {
	case CheckNaive:
		return c.naive(g, diamLen)
	case CheckVerify:
		f := fast()
		n := c.naive(g, diamLen)
		if (f == passed) != (n == passed) {
			c.stats.checkMismatches.Add(1)
		}
		return n
	default:
		return fast()
	}
}

// newDiamBeatsL reports whether some shortest path of length DiamLen
// between a and b has a label sequence strictly smaller than L's. Label
// ties never reject: the diameter occupies vertices 0..DiamLen in ID
// order, and any distinct path must use a vertex with a larger ID at its
// first deviation, so L always wins the Definition-3 ID tie-break.
func (c *checker) newDiamBeatsL(g *graph.Graph, diamLen int32, a, b graph.V) bool {
	lseq := make([]graph.Label, diamLen+1)
	for i := range lseq {
		lseq[i] = g.Label(graph.V(i))
	}
	da := g.BFS(a)
	db := g.BFS(b)
	if da[b] != diamLen {
		return false
	}
	for _, dir := range [2][2]graph.V{{a, b}, {b, a}} {
		var ds, dt []int32
		if dir[0] == a {
			ds, dt = da, db
		} else {
			ds, dt = db, da
		}
		seq := minLabelSeqBetween(g, ds, dt, dir[0], dir[1], diamLen)
		if seq != nil && graph.CompareLabelSeqs(seq, lseq) < 0 {
			return true
		}
	}
	return false
}

// minLabelSeqBetween is the frontier sweep of graph.CanonicalDiameter
// specialized to a fixed (s,t) pair with precomputed BFS distances.
func minLabelSeqBetween(g *graph.Graph, ds, dt []int32, s, t graph.V, d int32) []graph.Label {
	if ds[t] != d {
		return nil
	}
	seq := make([]graph.Label, d+1)
	seq[0] = g.Label(s)
	frontier := []graph.V{s}
	var next []graph.V
	inNext := make(map[graph.V]struct{})
	for i := int32(0); i < d; i++ {
		next = next[:0]
		clear(inNext)
		var minL graph.Label
		first := true
		for _, v := range frontier {
			for _, w := range g.Neighbors(v) {
				if ds[w] != i+1 || dt[w] != d-i-1 {
					continue
				}
				if lw := g.Label(w); first || lw < minL {
					minL = lw
					first = false
				}
			}
		}
		if first {
			return nil
		}
		for _, v := range frontier {
			for _, w := range g.Neighbors(v) {
				if ds[w] != i+1 || dt[w] != d-i-1 || g.Label(w) != minL {
					continue
				}
				if _, ok := inNext[w]; !ok {
					inNext[w] = struct{}{}
					next = append(next, w)
				}
			}
		}
		seq[i+1] = minL
		frontier, next = next, frontier
	}
	return seq
}

// naive recomputes the canonical diameter of the child graph and demands
// it be exactly the path 0..DiamLen.
func (c *checker) naive(g *graph.Graph, diamLen int32) rejectReason {
	cd, diam := g.CanonicalDiameter()
	if diam != diamLen {
		if diam > diamLen {
			return rejectI
		}
		return rejectII
	}
	for i, v := range cd {
		if v != graph.V(i) {
			return rejectIII
		}
	}
	return passed
}
