package core

import (
	"fmt"

	"skinnymine/internal/graph"
)

// IndexState is the serializable content of a DirectIndex: everything a
// snapshot must persist so a restored index answers requests exactly
// like the one it was taken from. Levels holds only the materialized
// path levels; missing levels are recomputed on demand from the graphs,
// so a partial snapshot is still a fully functional index.
type IndexState struct {
	Graphs []*graph.Graph
	Sigma  int
	Levels map[int][]*PathPattern
}

// State exports the index content for serialization. The graphs and
// patterns are shared, not copied: callers must treat them as
// read-only. The level map itself is copied under the miner's lock, so
// State may run concurrently with Mine requests — but a cache-miss
// materialization holds that lock for its full Stage I cost, so State
// waits for it to finish and then includes the new level.
func (ix *DirectIndex) State() IndexState {
	ix.dm.mu.RLock()
	defer ix.dm.mu.RUnlock()
	levels := make(map[int][]*PathPattern, len(ix.dm.levels))
	for l, ps := range ix.dm.levels {
		levels[l] = ps
	}
	return IndexState{Graphs: ix.dm.graphs, Sigma: ix.dm.support, Levels: levels}
}

// Sigma returns the frequency threshold σ the index was built with.
func (ix *DirectIndex) Sigma() int { return ix.dm.support }

// NumGraphs returns the number of database graphs behind the index.
func (ix *DirectIndex) NumGraphs() int { return len(ix.dm.graphs) }

// MaterializedLevels returns the path lengths whose frequent-path level
// is currently cached, in ascending order. It never blocks behind a
// materialization in progress, so liveness probes can call it freely.
func (ix *DirectIndex) MaterializedLevels() []int {
	return ix.dm.MaterializedLengths()
}

// RestoreIndex rebuilds a DirectIndex from exported state, validating
// that every pattern is internally consistent with the graph database
// (sequence lengths, graph IDs and vertex IDs in range). It is the
// inverse of State and the entry point snapshot loading goes through.
func RestoreIndex(st IndexState) (*DirectIndex, error) {
	dm, err := NewDiamMiner(st.Graphs, st.Sigma)
	if err != nil {
		return nil, err
	}
	for l, ps := range st.Levels {
		if err := validateLevel(st.Graphs, l, ps); err != nil {
			return nil, err
		}
		dm.storeLevel(l, ps)
	}
	return &DirectIndex{dm: dm}, nil
}

// validateLevel checks one frequent-path level against the graph
// database: every pattern sequence has l+1 labels and every embedding
// references an in-range graph with in-range vertices. Shared by
// RestoreIndex and PreloadLevel, so externally supplied levels pass one
// discipline regardless of how they reach the index.
func validateLevel(graphs []*graph.Graph, l int, ps []*PathPattern) error {
	if l < 1 {
		return fmt.Errorf("core: restored level %d out of range", l)
	}
	for _, p := range ps {
		if len(p.Seq) != l+1 {
			return fmt.Errorf("core: level %d pattern has %d labels, want %d", l, len(p.Seq), l+1)
		}
		for _, e := range p.Embs {
			if int(e.GID) < 0 || int(e.GID) >= len(graphs) {
				return fmt.Errorf("core: level %d embedding references graph %d of %d", l, e.GID, len(graphs))
			}
			g := graphs[e.GID]
			if len(e.Seq) != l+1 {
				return fmt.Errorf("core: level %d embedding has %d vertices, want %d", l, len(e.Seq), l+1)
			}
			for _, v := range e.Seq {
				if int(v) < 0 || int(v) >= g.N() {
					return fmt.Errorf("core: level %d embedding vertex %d out of range for graph %d", l, v, e.GID)
				}
			}
		}
	}
	return nil
}

// PreloadLevel installs an externally materialized frequent-path level
// — one computed by a sharded Stage I (internal/shard) — into the
// index's level cache, after the same validation a restored snapshot
// level passes. A level already present is left untouched: the cache
// is append-only and every producer of a given level must produce the
// same bytes (the determinism invariant), so the first copy wins.
// Safe for concurrent callers and concurrent Mine requests.
func (ix *DirectIndex) PreloadLevel(l int, ps []*PathPattern) error {
	ix.dm.mu.RLock()
	_, ok := ix.dm.levels[l]
	ix.dm.mu.RUnlock()
	if ok {
		return nil
	}
	if err := validateLevel(ix.dm.graphs, l, ps); err != nil {
		return err
	}
	ix.dm.mu.Lock()
	defer ix.dm.mu.Unlock()
	if _, ok := ix.dm.levels[l]; !ok {
		ix.dm.storeLevel(l, ps)
	}
	return nil
}
