package core

import (
	"fmt"

	"skinnymine/internal/graph"
)

// IndexState is the serializable content of a DirectIndex: everything a
// snapshot must persist so a restored index answers requests exactly
// like the one it was taken from. Levels holds only the materialized
// path levels; missing levels are recomputed on demand from the graphs,
// so a partial snapshot is still a fully functional index.
type IndexState struct {
	Graphs []*graph.Graph
	Sigma  int
	Levels map[int][]*PathPattern
}

// State exports the index content for serialization. The graphs and
// patterns are shared, not copied: callers must treat them as
// read-only. The level map itself is copied under the miner's lock, so
// State may run concurrently with Mine requests — but a cache-miss
// materialization holds that lock for its full Stage I cost, so State
// waits for it to finish and then includes the new level.
func (ix *DirectIndex) State() IndexState {
	ix.dm.mu.RLock()
	defer ix.dm.mu.RUnlock()
	levels := make(map[int][]*PathPattern, len(ix.dm.levels))
	for l, ps := range ix.dm.levels {
		levels[l] = ps
	}
	return IndexState{Graphs: ix.dm.graphs, Sigma: ix.dm.support, Levels: levels}
}

// Sigma returns the frequency threshold σ the index was built with.
func (ix *DirectIndex) Sigma() int { return ix.dm.support }

// NumGraphs returns the number of database graphs behind the index.
func (ix *DirectIndex) NumGraphs() int { return len(ix.dm.graphs) }

// MaterializedLevels returns the path lengths whose frequent-path level
// is currently cached, in ascending order. It never blocks behind a
// materialization in progress, so liveness probes can call it freely.
func (ix *DirectIndex) MaterializedLevels() []int {
	return ix.dm.MaterializedLengths()
}

// RestoreIndex rebuilds a DirectIndex from exported state, validating
// that every pattern is internally consistent with the graph database
// (sequence lengths, graph IDs and vertex IDs in range). It is the
// inverse of State and the entry point snapshot loading goes through.
func RestoreIndex(st IndexState) (*DirectIndex, error) {
	dm, err := NewDiamMiner(st.Graphs, st.Sigma)
	if err != nil {
		return nil, err
	}
	for l, ps := range st.Levels {
		if l < 1 {
			return nil, fmt.Errorf("core: restored level %d out of range", l)
		}
		for _, p := range ps {
			if len(p.Seq) != l+1 {
				return nil, fmt.Errorf("core: level %d pattern has %d labels, want %d", l, len(p.Seq), l+1)
			}
			for _, e := range p.Embs {
				if int(e.GID) < 0 || int(e.GID) >= len(st.Graphs) {
					return nil, fmt.Errorf("core: level %d embedding references graph %d of %d", l, e.GID, len(st.Graphs))
				}
				g := st.Graphs[e.GID]
				if len(e.Seq) != l+1 {
					return nil, fmt.Errorf("core: level %d embedding has %d vertices, want %d", l, len(e.Seq), l+1)
				}
				for _, v := range e.Seq {
					if int(v) < 0 || int(v) >= g.N() {
						return nil, fmt.Errorf("core: level %d embedding vertex %d out of range for graph %d", l, v, e.GID)
					}
				}
			}
		}
		dm.storeLevel(l, ps)
	}
	return &DirectIndex{dm: dm}, nil
}
