// Package core implements SkinnyMine (Zhu, Zhang & Qu, SIGMOD 2013): the
// two-stage direct mining algorithm for l-long δ-skinny frequent graph
// patterns, together with the generalized direct mining framework
// (Section 5 of the paper).
//
// Stage I (DiamMine, Algorithm 2) mines all frequent simple paths of
// length l — the minimal constraint-satisfying patterns — by
// progressively concatenating frequent paths of power-of-two lengths and
// merging two overlapping 2^k-paths for the final length. Stage II
// (LevelGrow, Algorithm 3) grows each such path, which is the canonical
// diameter of everything grown from it, level by level while maintaining
// Loop Invariant 1 through Constraints I–III.
//
// # Support measures and result budgets
//
// Pattern frequency is counted by one of three measures
// (support.Measure): EmbeddingCount — distinct embedding subgraphs, the
// paper's |E[P]| and the default; GraphCount — distinct transaction
// graphs containing the pattern; MNICount — minimum-image-based support.
// Options.MaxEmbeddings caps how many embedding maps are *stored* per
// pattern: Support() (the subgraph count) and GraphCount stay exact past
// the cap because their key/GID sets are maintained on every Add, while
// MNI and further growth work from the stored sample. Options.MaxPatterns
// bounds how many patterns Stage II may generate: every emitted pattern
// reserves one budget slot after canonical-code dedup, and the cap is
// applied to the final result only after output validation and closed
// filtering, so a filtered result is never truncated below the cap while
// valid patterns sit discarded behind it.
package core

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"skinnymine/internal/graph"
	"skinnymine/internal/obs"
)

// PathEmb is one oriented embedding of a path pattern: the graph it lives
// in (GID, 0 for the single-graph setting) and the vertex sequence.
type PathEmb struct {
	GID int32
	Seq graph.Path
}

// key returns an exact string key for the oriented sequence. The mining
// hot path dedups on orientedHash instead; the string form remains for
// tests and reference implementations.
func (p PathEmb) key() string {
	b := make([]byte, 0, 4+len(p.Seq)*4)
	b = append4(b, p.GID)
	for _, v := range p.Seq {
		b = append4(b, v)
	}
	return string(b)
}

// subgraphKey returns an orientation-independent string key: both
// orientations of the same path subgraph collide. The mining hot path
// uses subgraphHash; the string form remains for tests and reference
// implementations.
func (p PathEmb) subgraphKey() string {
	n := len(p.Seq)
	rev := make(graph.Path, n)
	for i, v := range p.Seq {
		rev[n-1-i] = v
	}
	seq := p.Seq
	for i := 0; i < n; i++ {
		if rev[i] != seq[i] {
			if rev[i] < seq[i] {
				seq = rev
			}
			break
		}
	}
	b := make([]byte, 0, 4+n*4)
	b = append4(b, p.GID)
	for _, v := range seq {
		b = append4(b, v)
	}
	return string(b)
}

func append4(b []byte, v int32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// PathPattern is a frequent path pattern: its canonical label sequence
// and all oriented embeddings (each path subgraph contributes both
// traversal orders, so joins are symmetric). Support counts distinct
// subgraphs.
type PathPattern struct {
	Seq     []graph.Label
	Embs    []PathEmb
	Support int
}

// Length returns the path length in edges.
func (p *PathPattern) Length() int { return len(p.Seq) - 1 }

// pathBucket accumulates oriented embeddings for one candidate pattern.
// Dedup runs on 64-bit hashes with intrusive chains over the embedding
// slice — seenHead/seenNext dedup exact oriented sequences, subHead/
// subNext count distinct subgraphs — and every hash hit verifies the
// full key, so the semantics are those of the former string-keyed maps
// without materializing a key per embedding.
type pathBucket struct {
	seq      []graph.Label
	embs     []PathEmb
	seenHead map[uint64]int32 // oriented hash -> newest emb index
	seenNext []int32          // per emb: previous index with same hash
	subHead  map[uint64]int32 // subgraph hash -> newest representative
	subNext  []int32          // per emb: previous representative chain
	nsub     int              // distinct subgraphs (the support)
}

func newPathBucket(seq []graph.Label) *pathBucket {
	return &pathBucket{
		seq:      seq,
		seenHead: make(map[uint64]int32),
		subHead:  make(map[uint64]int32),
	}
}

// add records an oriented embedding if it is new. When borrowed is true
// e.Seq aliases a caller scratch buffer and is copied only if the
// embedding is actually stored — duplicate candidates allocate nothing.
func (b *pathBucket) add(e PathEmb, borrowed bool) {
	h := e.orientedHash()
	head, dupHash := b.seenHead[h]
	if dupHash {
		for i := head; i >= 0; i = b.seenNext[i] {
			if pathEmbEqual(b.embs[i], e) {
				return
			}
		}
	}
	if borrowed {
		e.Seq = append(graph.Path(nil), e.Seq...)
	}
	idx := int32(len(b.embs))
	b.embs = append(b.embs, e)
	if dupHash {
		b.seenNext = append(b.seenNext, head)
	} else {
		b.seenNext = append(b.seenNext, -1)
	}
	b.seenHead[h] = idx

	b.subNext = append(b.subNext, -1)
	sh := e.subgraphHash()
	if shead, ok := b.subHead[sh]; ok {
		for i := shead; i >= 0; i = b.subNext[i] {
			if sameSubgraph(b.embs[i], e) {
				return // subgraph already counted
			}
		}
		b.subNext[idx] = shead
	}
	b.subHead[sh] = idx
	b.nsub++
}

// merge folds another worker's bucket for the same pattern into b. The
// other bucket's embeddings are already owned copies, so no cloning.
func (b *pathBucket) merge(o *pathBucket) {
	for _, e := range o.embs {
		b.add(e, false)
	}
}

// bucketMap indexes candidate buckets by the 64-bit hash of their
// canonical label sequence; the short slice is the collision chain,
// resolved by exact sequence comparison.
type bucketMap map[uint64][]*pathBucket

// joinScratch is the per-worker reusable state of the Stage I joins: the
// stamped vertex set replacing the per-join map, plus label and
// combined-path buffers the join body fills in place.
type joinScratch struct {
	inA    *stampSet
	labels []graph.Label
	comb   graph.Path
}

func (m *DiamMiner) newJoinScratch() *joinScratch {
	return &joinScratch{inA: newStampSet(m.maxN)}
}

// DiamMiner mines frequent simple paths (Algorithm 2) over one or more
// data graphs and caches the power-of-two levels so that repeated
// requests for different lengths — the paper's direct mining usage
// pattern (Figure 2) — reuse work.
type DiamMiner struct {
	graphs      []*graph.Graph
	support     int
	concurrency int
	maxN        int // largest vertex count across graphs; sizes stamp sets

	mu     sync.RWMutex           // guards levels; materialization runs under the write lock
	levels map[int][]*PathPattern // key: length (powers of two and served l)

	// materialized mirrors the level-cache keys under its own tiny
	// lock, so liveness probes (MaterializedLengths) answer instantly
	// instead of queueing behind an in-progress materialization
	// holding mu for the full Stage I cost.
	matMu        sync.Mutex
	materialized map[int]struct{}

	// prune is the optional Stage I constraint-pushdown hook
	// (Options.PrunePath), applied to every candidate path inside the
	// bucket joins. Only request-private miners may set it: pruned
	// joins produce pruned cached levels, which must never happen at
	// an index shared across requests with different constraints.
	prune  func(seq []graph.Label) bool
	pruned atomic.Int64 // join candidates cut by prune, folded into Stats
}

// NewDiamMiner returns a miner over the given graphs with threshold σ.
func NewDiamMiner(graphs []*graph.Graph, support int) (*DiamMiner, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("core: DiamMiner needs at least one graph")
	}
	if support < 1 {
		return nil, fmt.Errorf("core: support threshold must be >= 1, got %d", support)
	}
	maxN := 0
	for _, g := range graphs {
		if g.N() > maxN {
			maxN = g.N()
		}
	}
	return &DiamMiner{
		graphs:       graphs,
		support:      support,
		concurrency:  1,
		maxN:         maxN,
		levels:       make(map[int][]*PathPattern),
		materialized: make(map[int]struct{}),
	}, nil
}

// storeLevel records a freshly materialized (or restored) level.
// Callers mutating a live miner hold mu.
func (m *DiamMiner) storeLevel(l int, ps []*PathPattern) {
	m.levels[l] = ps
	m.matMu.Lock()
	m.materialized[l] = struct{}{}
	m.matMu.Unlock()
}

// MaterializedLengths returns the path lengths whose level is cached,
// ascending. It never blocks on materialization in progress.
func (m *DiamMiner) MaterializedLengths() []int {
	m.matMu.Lock()
	defer m.matMu.Unlock()
	out := make([]int, 0, len(m.materialized))
	for l := range m.materialized {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// SetConcurrency bounds the worker pool used by concat and merge joins
// (<= 0 means one worker per available CPU, matching the Options
// convention). Mined results are identical at every setting; only
// wall-clock time changes. Call it before serving, not concurrently
// with Mine.
func (m *DiamMiner) SetConcurrency(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	m.concurrency = n
}

// Concurrency reports the current materialization worker budget, always
// resolved to a positive count.
func (m *DiamMiner) Concurrency() int { return m.concurrency }

// Mine returns all frequent simple paths of length exactly l, sorted by
// canonical label sequence. Results are cached per length. Mine is safe
// for concurrent callers: cache hits share a read lock, while a miss
// materializes the level under the write lock (internally parallel
// across the worker budget), so a long-running serving process can fan
// requests for arbitrary lengths at one shared miner.
func (m *DiamMiner) Mine(l int) ([]*PathPattern, error) {
	return m.mine(l, m.concurrency, obs.Nop)
}

// mine is Mine with an explicit worker count — so one request can use
// its own Options.Concurrency without writing shared miner state — and
// a tracer recording per-level timings. Tracing changes visibility,
// never bytes: tr only observes durations and candidate counts.
func (m *DiamMiner) mine(l, workers int, tr obs.Tracer) ([]*PathPattern, error) {
	if l < 1 {
		return nil, fmt.Errorf("core: path length must be >= 1, got %d", l)
	}
	m.mu.RLock()
	got, ok := m.levels[l]
	m.mu.RUnlock()
	if ok {
		return got, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if got, ok := m.levels[l]; ok { // lost the materialization race
		return got, nil
	}
	// Powers of two up to l.
	k := 1
	for k*2 <= l {
		k *= 2
	}
	if err := m.ensurePowers(k, workers, tr); err != nil {
		return nil, err
	}
	if l == k {
		return m.levels[l], nil
	}
	sp := tr.Start("stage1.merge").TagInt("level", int64(l)).TagInt("base", int64(k))
	merged := m.merge(m.levels[k], l, k, workers)
	sp.TagInt("patterns", int64(len(merged))).End()
	m.storeLevel(l, merged)
	return merged, nil
}

// MaxFrequentLength returns the largest l for which a frequent path
// exists (scanning upward from 1); 0 if even single edges are infrequent.
func (m *DiamMiner) MaxFrequentLength(limit int) (int, error) {
	best := 0
	for l := 1; l <= limit; l++ {
		ps, err := m.Mine(l)
		if err != nil {
			return 0, err
		}
		if len(ps) == 0 {
			break
		}
		best = l
	}
	return best, nil
}

// ensurePowers fills m.levels for lengths 1, 2, 4, ..., upto.
func (m *DiamMiner) ensurePowers(upto, workers int, tr obs.Tracer) error {
	if _, ok := m.levels[1]; !ok {
		sp := tr.Start("stage1.edges").TagInt("level", 1)
		edges := m.frequentEdges()
		sp.TagInt("patterns", int64(len(edges))).End()
		m.storeLevel(1, edges)
	}
	for l := 2; l <= upto; l *= 2 {
		if _, ok := m.levels[l]; ok {
			continue
		}
		sp := tr.Start("stage1.concat").TagInt("level", int64(l))
		ps := m.concat(m.levels[l/2], workers)
		sp.TagInt("patterns", int64(len(ps))).End()
		m.storeLevel(l, ps)
	}
	return nil
}

// frequentEdges mines all frequent paths of length 1.
func (m *DiamMiner) frequentEdges() []*PathPattern {
	return m.edgeCandidates(nil)
}

// edgeCandidates buckets the length-1 paths of the given graphs (nil
// means every graph) and applies the miner's threshold. The gid subset
// form is the Stage I entry point of sharded mining (ShardStage1),
// where each shard enumerates only its own graphs.
func (m *DiamMiner) edgeCandidates(gids []int32) []*PathPattern {
	buckets := make(bucketMap)
	sc := m.newJoinScratch()
	emit := func(gid int32) {
		g := m.graphs[gid]
		for _, e := range g.Edges() {
			for _, or := range [2][2]graph.V{{e.U, e.W}, {e.W, e.U}} {
				sc.comb = append(sc.comb[:0], or[0], or[1])
				m.bucketAdd(buckets, sc, PathEmb{GID: gid, Seq: sc.comb})
			}
		}
	}
	if gids == nil {
		for gi := range m.graphs {
			emit(int32(gi))
		}
	} else {
		for _, gid := range gids {
			emit(gid)
		}
	}
	return m.collect(buckets)
}

// flattenEmbs gathers every oriented embedding of every pattern into one
// slice, the work list the parallel joins partition.
func flattenEmbs(pool []*PathPattern) []PathEmb {
	n := 0
	for _, p := range pool {
		n += len(p.Embs)
	}
	out := make([]PathEmb, 0, n)
	for _, p := range pool {
		out = append(out, p.Embs...)
	}
	return out
}

// joinBuckets applies join to every oriented embedding in the pool,
// bucketing candidates. Sequentially it iterates the pool in place;
// with two or more workers it flattens the embeddings into a shared
// work list and fans chunks across parBuckets. join receives a
// worker-private bucket map and that worker's reusable scratch state.
func (m *DiamMiner) joinBuckets(pool []*PathPattern, workers int,
	join func(a PathEmb, buckets bucketMap, sc *joinScratch)) bucketMap {
	if workers < 2 {
		buckets := make(bucketMap)
		sc := m.newJoinScratch()
		for _, p := range pool {
			for _, a := range p.Embs {
				join(a, buckets, sc)
			}
		}
		return buckets
	}
	as := flattenEmbs(pool)
	return m.parBuckets(len(as), workers, func(lo, hi int, buckets bucketMap, sc *joinScratch) {
		for _, a := range as[lo:hi] {
			join(a, buckets, sc)
		}
	})
}

// parBuckets runs the join body over [0, n) across a pool of the given
// worker count, each worker filling a private bucket map (with private
// scratch) over contiguous chunks claimed from a shared counter, then
// merges the worker maps. Bucket membership is set-valued (exact-key
// dedup, orientation-independent support sets) and collect sorts
// everything it emits, so the merged result is identical to the
// sequential one regardless of scheduling.
func (m *DiamMiner) parBuckets(n, workers int, run func(lo, hi int, buckets bucketMap, sc *joinScratch)) bucketMap {
	if workers > n {
		workers = n
	}
	if workers < 2 {
		buckets := make(bucketMap)
		if n > 0 {
			run(0, n, buckets, m.newJoinScratch())
		}
		return buckets
	}
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	locals := make([]bucketMap, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buckets := make(bucketMap)
			locals[w] = buckets
			sc := m.newJoinScratch()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				run(lo, hi, buckets, sc)
			}
		}(w)
	}
	wg.Wait()
	out := locals[0]
	for _, loc := range locals[1:] {
		for h, chain := range loc {
			for _, b := range chain {
				dst := findBucket(out[h], b.seq)
				if dst == nil {
					out[h] = append(out[h], b)
					continue
				}
				dst.merge(b)
			}
		}
	}
	return out
}

// findBucket resolves a hash chain by exact canonical-sequence
// comparison.
func findBucket(chain []*pathBucket, seq []graph.Label) *pathBucket {
	for _, b := range chain {
		if labelSeqsEqual(b.seq, seq) {
			return b
		}
	}
	return nil
}

// concat joins pairs of frequent paths of length L end-to-end into
// candidate paths of length 2L (Algorithm 2 lines 2–7). Because every
// pattern stores both orientations of every embedding, a single
// last-vertex index covers all of CheckConcat's cases. The index keys
// (GID, vertex) pairs packed exactly into a uint64, so lookups need no
// verification.
func (m *DiamMiner) concat(prev []*PathPattern, workers int) []*PathPattern {
	byFirst := make(map[uint64][]PathEmb)
	for _, p := range prev {
		for _, e := range p.Embs {
			k := gidVertexKey(e.GID, e.Seq[0])
			byFirst[k] = append(byFirst[k], e)
		}
	}
	buckets := m.joinBuckets(prev, workers, func(a PathEmb, buckets bucketMap, sc *joinScratch) {
		cands := byFirst[gidVertexKey(a.GID, a.Seq[len(a.Seq)-1])]
		if len(cands) == 0 {
			return
		}
		sc.inA.reset()
		for _, v := range a.Seq {
			sc.inA.mark(v)
		}
		for _, b := range cands {
			if !disjointAfterJoint(sc.inA, b.Seq) {
				continue
			}
			sc.comb = append(sc.comb[:0], a.Seq...)
			sc.comb = append(sc.comb, b.Seq[1:]...)
			m.bucketAdd(buckets, sc, PathEmb{GID: a.GID, Seq: sc.comb})
		}
	})
	return m.collect(buckets)
}

// merge overlaps two length-m paths to form paths of length l with
// overlap o = 2m-l (Algorithm 2 lines 9–17). The single prefix index
// covers both CheckMergeHead and CheckMergeTail because both orientations
// of every embedding are stored. The index is keyed by the 64-bit hash
// of (GID, prefix); every candidate is verified against the exact
// suffix before joining, so hash collisions never produce a bogus join.
func (m *DiamMiner) merge(pool []*PathPattern, l, pm int, workers int) []*PathPattern {
	o := 2*pm - l // overlap in edges, >= 1
	byPrefix := make(map[uint64][]PathEmb)
	for _, p := range pool {
		for _, e := range p.Embs {
			k := hashGidSeq(e.GID, e.Seq[:o+1])
			byPrefix[k] = append(byPrefix[k], e)
		}
	}
	buckets := m.joinBuckets(pool, workers, func(a PathEmb, buckets bucketMap, sc *joinScratch) {
		suffix := a.Seq[len(a.Seq)-o-1:]
		cands := byPrefix[hashGidSeq(a.GID, suffix)]
		if len(cands) == 0 {
			return
		}
		sc.inA.reset()
		for _, v := range a.Seq {
			sc.inA.mark(v)
		}
		for _, b := range cands {
			if b.GID != a.GID || !prefixMatches(b.Seq, suffix) {
				continue // hash collision
			}
			if !disjointAfterOverlap(sc.inA, b.Seq, o) {
				continue
			}
			sc.comb = append(sc.comb[:0], a.Seq...)
			sc.comb = append(sc.comb, b.Seq[o+1:]...)
			m.bucketAdd(buckets, sc, PathEmb{GID: a.GID, Seq: sc.comb})
		}
	})
	return m.collect(buckets)
}

// prefixMatches reports whether seq starts with the given prefix.
func prefixMatches(seq graph.Path, prefix graph.Path) bool {
	return len(seq) >= len(prefix) && slices.Equal(seq[:len(prefix)], prefix)
}

// bucketAdd routes a candidate embedding (whose Seq may alias scratch)
// to its pattern bucket, keyed by the canonical label sequence. Labels
// are gathered into the worker's scratch buffer and hashed in canonical
// direction; a fresh label slice is materialized only when a new bucket
// is created.
func (m *DiamMiner) bucketAdd(buckets bucketMap, sc *joinScratch, e PathEmb) {
	g := m.graphs[e.GID]
	sc.labels = sc.labels[:0]
	for _, v := range e.Seq {
		sc.labels = append(sc.labels, g.Label(v))
	}
	// Constraint pushdown inside the join: an anti-monotone violation
	// (forbidden label, size cap) can never be repaired by the longer
	// paths later levels assemble from this candidate, so it is cut
	// before it is even hashed. Sequences reach the hook in traversal
	// order; the pushed-down predicates are orientation-invariant.
	if m.prune != nil && m.prune(sc.labels) {
		m.pruned.Add(1)
		return
	}
	fwd := canonLabelsForward(sc.labels)
	h := hashLabelsDir(sc.labels, fwd)
	for _, b := range buckets[h] {
		if labelsEqualDir(b.seq, sc.labels, fwd) {
			b.add(e, true)
			return
		}
	}
	n := len(sc.labels)
	canon := make([]graph.Label, n)
	for i := 0; i < n; i++ {
		if fwd {
			canon[i] = sc.labels[i]
		} else {
			canon[i] = sc.labels[n-1-i]
		}
	}
	b := newPathBucket(canon)
	buckets[h] = append(buckets[h], b)
	b.add(e, true)
}

// collect applies the frequency threshold and sorts patterns.
func (m *DiamMiner) collect(buckets bucketMap) []*PathPattern {
	var out []*PathPattern
	for _, chain := range buckets {
		for _, b := range chain {
			if b.nsub < m.support {
				continue
			}
			sort.Slice(b.embs, func(i, j int) bool {
				if b.embs[i].GID != b.embs[j].GID {
					return b.embs[i].GID < b.embs[j].GID
				}
				return comparePaths(b.embs[i].Seq, b.embs[j].Seq) < 0
			})
			out = append(out, &PathPattern{Seq: b.seq, Embs: b.embs, Support: b.nsub})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return graph.CompareLabelSeqs(out[i].Seq, out[j].Seq) < 0
	})
	return out
}

func comparePaths(a, b graph.Path) int { return slices.Compare(a, b) }

// disjointAfterJoint reports whether seq's vertices beyond its first are
// all absent from the stamped set inA.
func disjointAfterJoint(inA *stampSet, seq graph.Path) bool {
	for _, v := range seq[1:] {
		if inA.has(v) {
			return false
		}
	}
	return true
}

// disjointAfterOverlap reports whether seq's vertices beyond position o
// are all absent from inA.
func disjointAfterOverlap(inA *stampSet, seq graph.Path, o int) bool {
	for _, v := range seq[o+1:] {
		if inA.has(v) {
			return false
		}
	}
	return true
}
