// Package core implements SkinnyMine (Zhu, Zhang & Qu, SIGMOD 2013): the
// two-stage direct mining algorithm for l-long δ-skinny frequent graph
// patterns, together with the generalized direct mining framework
// (Section 5 of the paper).
//
// Stage I (DiamMine, Algorithm 2) mines all frequent simple paths of
// length l — the minimal constraint-satisfying patterns — by
// progressively concatenating frequent paths of power-of-two lengths and
// merging two overlapping 2^k-paths for the final length. Stage II
// (LevelGrow, Algorithm 3) grows each such path, which is the canonical
// diameter of everything grown from it, level by level while maintaining
// Loop Invariant 1 through Constraints I–III.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"skinnymine/internal/graph"
)

// PathEmb is one oriented embedding of a path pattern: the graph it lives
// in (GID, 0 for the single-graph setting) and the vertex sequence.
type PathEmb struct {
	GID int32
	Seq graph.Path
}

// key returns an exact key for the oriented sequence.
func (p PathEmb) key() string {
	b := make([]byte, 0, 4+len(p.Seq)*4)
	b = append4(b, p.GID)
	for _, v := range p.Seq {
		b = append4(b, v)
	}
	return string(b)
}

// subgraphKey returns an orientation-independent key: both orientations
// of the same path subgraph collide.
func (p PathEmb) subgraphKey() string {
	n := len(p.Seq)
	rev := make(graph.Path, n)
	for i, v := range p.Seq {
		rev[n-1-i] = v
	}
	seq := p.Seq
	for i := 0; i < n; i++ {
		if rev[i] != seq[i] {
			if rev[i] < seq[i] {
				seq = rev
			}
			break
		}
	}
	b := make([]byte, 0, 4+n*4)
	b = append4(b, p.GID)
	for _, v := range seq {
		b = append4(b, v)
	}
	return string(b)
}

func append4(b []byte, v int32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// PathPattern is a frequent path pattern: its canonical label sequence
// and all oriented embeddings (each path subgraph contributes both
// traversal orders, so joins are symmetric). Support counts distinct
// subgraphs.
type PathPattern struct {
	Seq     []graph.Label
	Embs    []PathEmb
	Support int
}

// Length returns the path length in edges.
func (p *PathPattern) Length() int { return len(p.Seq) - 1 }

// pathBucket accumulates oriented embeddings for one candidate pattern.
type pathBucket struct {
	seq       []graph.Label
	embs      []PathEmb
	seen      map[string]struct{} // exact oriented keys
	subgraphs map[string]struct{} // orientation-independent keys
}

func newPathBucket(seq []graph.Label) *pathBucket {
	return &pathBucket{
		seq:       seq,
		seen:      make(map[string]struct{}),
		subgraphs: make(map[string]struct{}),
	}
}

func (b *pathBucket) add(e PathEmb) {
	k := e.key()
	if _, dup := b.seen[k]; dup {
		return
	}
	b.seen[k] = struct{}{}
	b.subgraphs[e.subgraphKey()] = struct{}{}
	b.embs = append(b.embs, e)
}

// merge folds another worker's bucket for the same pattern into b,
// reusing the other bucket's already-materialized subgraph keys
// instead of re-deriving them per embedding.
func (b *pathBucket) merge(o *pathBucket) {
	for _, e := range o.embs {
		k := e.key()
		if _, dup := b.seen[k]; dup {
			continue
		}
		b.seen[k] = struct{}{}
		b.embs = append(b.embs, e)
	}
	for k := range o.subgraphs {
		b.subgraphs[k] = struct{}{}
	}
}

// DiamMiner mines frequent simple paths (Algorithm 2) over one or more
// data graphs and caches the power-of-two levels so that repeated
// requests for different lengths — the paper's direct mining usage
// pattern (Figure 2) — reuse work.
type DiamMiner struct {
	graphs      []*graph.Graph
	support     int
	concurrency int

	mu     sync.RWMutex           // guards levels; materialization runs under the write lock
	levels map[int][]*PathPattern // key: length (powers of two and served l)

	// materialized mirrors the level-cache keys under its own tiny
	// lock, so liveness probes (MaterializedLengths) answer instantly
	// instead of queueing behind an in-progress materialization
	// holding mu for the full Stage I cost.
	matMu        sync.Mutex
	materialized map[int]struct{}
}

// NewDiamMiner returns a miner over the given graphs with threshold σ.
func NewDiamMiner(graphs []*graph.Graph, support int) (*DiamMiner, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("core: DiamMiner needs at least one graph")
	}
	if support < 1 {
		return nil, fmt.Errorf("core: support threshold must be >= 1, got %d", support)
	}
	return &DiamMiner{
		graphs:       graphs,
		support:      support,
		concurrency:  1,
		levels:       make(map[int][]*PathPattern),
		materialized: make(map[int]struct{}),
	}, nil
}

// storeLevel records a freshly materialized (or restored) level.
// Callers mutating a live miner hold mu.
func (m *DiamMiner) storeLevel(l int, ps []*PathPattern) {
	m.levels[l] = ps
	m.matMu.Lock()
	m.materialized[l] = struct{}{}
	m.matMu.Unlock()
}

// MaterializedLengths returns the path lengths whose level is cached,
// ascending. It never blocks on materialization in progress.
func (m *DiamMiner) MaterializedLengths() []int {
	m.matMu.Lock()
	defer m.matMu.Unlock()
	out := make([]int, 0, len(m.materialized))
	for l := range m.materialized {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// SetConcurrency bounds the worker pool used by concat and merge joins
// (<= 0 means one worker per available CPU, matching the Options
// convention). Mined results are identical at every setting; only
// wall-clock time changes. Call it before serving, not concurrently
// with Mine.
func (m *DiamMiner) SetConcurrency(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	m.concurrency = n
}

// Mine returns all frequent simple paths of length exactly l, sorted by
// canonical label sequence. Results are cached per length. Mine is safe
// for concurrent callers: cache hits share a read lock, while a miss
// materializes the level under the write lock (internally parallel
// across the worker budget), so a long-running serving process can fan
// requests for arbitrary lengths at one shared miner.
func (m *DiamMiner) Mine(l int) ([]*PathPattern, error) {
	return m.mine(l, m.concurrency)
}

// mine is Mine with an explicit worker count, so one request can use
// its own Options.Concurrency without writing shared miner state.
func (m *DiamMiner) mine(l, workers int) ([]*PathPattern, error) {
	if l < 1 {
		return nil, fmt.Errorf("core: path length must be >= 1, got %d", l)
	}
	m.mu.RLock()
	got, ok := m.levels[l]
	m.mu.RUnlock()
	if ok {
		return got, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if got, ok := m.levels[l]; ok { // lost the materialization race
		return got, nil
	}
	// Powers of two up to l.
	k := 1
	for k*2 <= l {
		k *= 2
	}
	if err := m.ensurePowers(k, workers); err != nil {
		return nil, err
	}
	if l == k {
		return m.levels[l], nil
	}
	merged := m.merge(m.levels[k], l, k, workers)
	m.storeLevel(l, merged)
	return merged, nil
}

// MaxFrequentLength returns the largest l for which a frequent path
// exists (scanning upward from 1); 0 if even single edges are infrequent.
func (m *DiamMiner) MaxFrequentLength(limit int) (int, error) {
	best := 0
	for l := 1; l <= limit; l++ {
		ps, err := m.Mine(l)
		if err != nil {
			return 0, err
		}
		if len(ps) == 0 {
			break
		}
		best = l
	}
	return best, nil
}

// ensurePowers fills m.levels for lengths 1, 2, 4, ..., upto.
func (m *DiamMiner) ensurePowers(upto, workers int) error {
	if _, ok := m.levels[1]; !ok {
		m.storeLevel(1, m.frequentEdges())
	}
	for l := 2; l <= upto; l *= 2 {
		if _, ok := m.levels[l]; ok {
			continue
		}
		m.storeLevel(l, m.concat(m.levels[l/2], workers))
	}
	return nil
}

// frequentEdges mines all frequent paths of length 1.
func (m *DiamMiner) frequentEdges() []*PathPattern {
	buckets := make(map[string]*pathBucket)
	for gi, g := range m.graphs {
		gid := int32(gi)
		for _, e := range g.Edges() {
			for _, or := range [2][2]graph.V{{e.U, e.W}, {e.W, e.U}} {
				seq := []graph.Label{g.Label(or[0]), g.Label(or[1])}
				key := graph.LabelSeqKey(graph.CanonicalLabelSeq(seq))
				b, ok := buckets[key]
				if !ok {
					b = newPathBucket(graph.CanonicalLabelSeq(seq))
					buckets[key] = b
				}
				b.add(PathEmb{GID: gid, Seq: graph.Path{or[0], or[1]}})
			}
		}
	}
	return m.collect(buckets)
}

// flattenEmbs gathers every oriented embedding of every pattern into one
// slice, the work list the parallel joins partition.
func flattenEmbs(pool []*PathPattern) []PathEmb {
	n := 0
	for _, p := range pool {
		n += len(p.Embs)
	}
	out := make([]PathEmb, 0, n)
	for _, p := range pool {
		out = append(out, p.Embs...)
	}
	return out
}

// joinBuckets applies join to every oriented embedding in the pool,
// bucketing candidates. Sequentially it iterates the pool in place;
// with two or more workers it flattens the embeddings into a shared
// work list and fans chunks across parBuckets. join receives a
// worker-private bucket map and a reusable scratch set it must clear.
func (m *DiamMiner) joinBuckets(pool []*PathPattern, workers int,
	join func(a PathEmb, buckets map[string]*pathBucket, inA map[graph.V]struct{})) map[string]*pathBucket {
	if workers < 2 {
		buckets := make(map[string]*pathBucket)
		inA := make(map[graph.V]struct{}, 16)
		for _, p := range pool {
			for _, a := range p.Embs {
				join(a, buckets, inA)
			}
		}
		return buckets
	}
	as := flattenEmbs(pool)
	return m.parBuckets(len(as), workers, func(lo, hi int, buckets map[string]*pathBucket) {
		inA := make(map[graph.V]struct{}, 16)
		for _, a := range as[lo:hi] {
			join(a, buckets, inA)
		}
	})
}

// parBuckets runs the join body over [0, n) across a pool of the given
// worker count, each worker filling a private bucket map over contiguous chunks
// claimed from a shared counter, then merges the worker maps. Bucket
// membership is set-valued (exact-key dedup, orientation-independent
// support sets) and collect sorts everything it emits, so the merged
// result is identical to the sequential one regardless of scheduling.
func (m *DiamMiner) parBuckets(n, workers int, run func(lo, hi int, buckets map[string]*pathBucket)) map[string]*pathBucket {
	if workers > n {
		workers = n
	}
	if workers < 2 {
		buckets := make(map[string]*pathBucket)
		if n > 0 {
			run(0, n, buckets)
		}
		return buckets
	}
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	locals := make([]map[string]*pathBucket, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buckets := make(map[string]*pathBucket)
			locals[w] = buckets
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				run(lo, hi, buckets)
			}
		}(w)
	}
	wg.Wait()
	out := locals[0]
	for _, loc := range locals[1:] {
		for key, b := range loc {
			dst, ok := out[key]
			if !ok {
				out[key] = b
				continue
			}
			dst.merge(b)
		}
	}
	return out
}

// concat joins pairs of frequent paths of length L end-to-end into
// candidate paths of length 2L (Algorithm 2 lines 2–7). Because every
// pattern stores both orientations of every embedding, a single
// last-vertex index covers all of CheckConcat's cases.
func (m *DiamMiner) concat(prev []*PathPattern, workers int) []*PathPattern {
	type vkey struct {
		gid int32
		v   graph.V
	}
	byFirst := make(map[vkey][]PathEmb)
	for _, p := range prev {
		for _, e := range p.Embs {
			k := vkey{e.GID, e.Seq[0]}
			byFirst[k] = append(byFirst[k], e)
		}
	}
	buckets := m.joinBuckets(prev, workers, func(a PathEmb, buckets map[string]*pathBucket, inA map[graph.V]struct{}) {
		cands := byFirst[vkey{a.GID, a.Seq[len(a.Seq)-1]}]
		if len(cands) == 0 {
			return
		}
		clear(inA)
		for _, v := range a.Seq {
			inA[v] = struct{}{}
		}
		for _, b := range cands {
			if !disjointAfterJoint(inA, b.Seq) {
				continue
			}
			comb := make(graph.Path, 0, len(a.Seq)+len(b.Seq)-1)
			comb = append(comb, a.Seq...)
			comb = append(comb, b.Seq[1:]...)
			m.bucketAdd(buckets, PathEmb{GID: a.GID, Seq: comb})
		}
	})
	return m.collect(buckets)
}

// merge overlaps two length-m paths to form paths of length l with
// overlap o = 2m-l (Algorithm 2 lines 9–17). The single prefix index
// covers both CheckMergeHead and CheckMergeTail because both orientations
// of every embedding are stored.
func (m *DiamMiner) merge(pool []*PathPattern, l, pm int, workers int) []*PathPattern {
	o := 2*pm - l // overlap in edges, >= 1
	type pkey struct {
		gid int32
		k   string
	}
	byPrefix := make(map[pkey][]PathEmb)
	for _, p := range pool {
		for _, e := range p.Embs {
			byPrefix[pkey{e.GID, vertexTupleKey(e.Seq[:o+1])}] = append(
				byPrefix[pkey{e.GID, vertexTupleKey(e.Seq[:o+1])}], e)
		}
	}
	buckets := m.joinBuckets(pool, workers, func(a PathEmb, buckets map[string]*pathBucket, inA map[graph.V]struct{}) {
		suffix := a.Seq[len(a.Seq)-o-1:]
		cands := byPrefix[pkey{a.GID, vertexTupleKey(suffix)}]
		if len(cands) == 0 {
			return
		}
		clear(inA)
		for _, v := range a.Seq {
			inA[v] = struct{}{}
		}
		for _, b := range cands {
			if !disjointAfterOverlap(inA, b.Seq, o) {
				continue
			}
			comb := make(graph.Path, 0, l+1)
			comb = append(comb, a.Seq...)
			comb = append(comb, b.Seq[o+1:]...)
			m.bucketAdd(buckets, PathEmb{GID: a.GID, Seq: comb})
		}
	})
	return m.collect(buckets)
}

func (m *DiamMiner) bucketAdd(buckets map[string]*pathBucket, e PathEmb) {
	seq := make([]graph.Label, len(e.Seq))
	g := m.graphs[e.GID]
	for i, v := range e.Seq {
		seq[i] = g.Label(v)
	}
	canon := graph.CanonicalLabelSeq(seq)
	key := graph.LabelSeqKey(canon)
	b, ok := buckets[key]
	if !ok {
		b = newPathBucket(canon)
		buckets[key] = b
	}
	b.add(e)
}

// collect applies the frequency threshold and sorts patterns.
func (m *DiamMiner) collect(buckets map[string]*pathBucket) []*PathPattern {
	var out []*PathPattern
	for _, b := range buckets {
		sup := len(b.subgraphs)
		if sup < m.support {
			continue
		}
		sort.Slice(b.embs, func(i, j int) bool {
			if b.embs[i].GID != b.embs[j].GID {
				return b.embs[i].GID < b.embs[j].GID
			}
			return comparePaths(b.embs[i].Seq, b.embs[j].Seq) < 0
		})
		out = append(out, &PathPattern{Seq: b.seq, Embs: b.embs, Support: sup})
	}
	sort.Slice(out, func(i, j int) bool {
		return graph.CompareLabelSeqs(out[i].Seq, out[j].Seq) < 0
	})
	return out
}

func comparePaths(a, b graph.Path) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

// disjointAfterJoint reports whether seq's vertices beyond its first are
// all absent from the set inA.
func disjointAfterJoint(inA map[graph.V]struct{}, seq graph.Path) bool {
	for _, v := range seq[1:] {
		if _, hit := inA[v]; hit {
			return false
		}
	}
	return true
}

// disjointAfterOverlap reports whether seq's vertices beyond position o
// are all absent from inA.
func disjointAfterOverlap(inA map[graph.V]struct{}, seq graph.Path, o int) bool {
	for _, v := range seq[o+1:] {
		if _, hit := inA[v]; hit {
			return false
		}
	}
	return true
}

func vertexTupleKey(seq graph.Path) string {
	b := make([]byte, 0, len(seq)*4)
	for _, v := range seq {
		b = append4(b, v)
	}
	return string(b)
}
