package core

import (
	"slices"

	"skinnymine/internal/graph"
)

// Compact hash-keyed structures for the Stage I hot paths. The join and
// dedup loops of DiamMine touch every candidate embedding; materializing
// a string key per touch (the original design) dominated the allocation
// profile. Everything here keys on a 64-bit FNV-1a hash instead and
// verifies the full key on a hash hit, so dedup semantics are exactly
// those of the string-keyed maps while the hot path allocates nothing
// per embedding.

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// mix64 folds one 32-bit word into an FNV-1a style running hash. The
// word-wise variant is weaker than byte-wise FNV, but every consumer
// verifies exact keys on a hash hit, so hash quality only affects chain
// length, never correctness.
func mix64(h uint64, v uint32) uint64 {
	return (h ^ uint64(v)) * fnvPrime64
}

// orientedHash hashes the exact oriented embedding (GID, vertex
// sequence) — the hashed form of PathEmb.key.
func (p PathEmb) orientedHash() uint64 {
	h := mix64(fnvOffset64, uint32(p.GID))
	for _, v := range p.Seq {
		h = mix64(h, uint32(v))
	}
	return h
}

// canonicalForward reports whether the vertex sequence reads canonically
// in its stored direction, i.e. it is <= its own reversal.
func (p PathEmb) canonicalForward() bool {
	s := p.Seq
	n := len(s)
	for i := 0; i < n; i++ {
		if s[i] != s[n-1-i] {
			return s[i] < s[n-1-i]
		}
	}
	return true
}

// subgraphHash hashes the orientation-independent key (GID plus the
// canonical orientation of the vertex sequence) — the hashed form of
// PathEmb.subgraphKey.
func (p PathEmb) subgraphHash() uint64 {
	h := mix64(fnvOffset64, uint32(p.GID))
	s := p.Seq
	n := len(s)
	if p.canonicalForward() {
		for i := 0; i < n; i++ {
			h = mix64(h, uint32(s[i]))
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			h = mix64(h, uint32(s[i]))
		}
	}
	return h
}

// pathEmbEqual reports exact oriented equality.
func pathEmbEqual(a, b PathEmb) bool {
	return a.GID == b.GID && slices.Equal(a.Seq, b.Seq)
}

// sameSubgraph reports whether two oriented embeddings occupy the same
// path subgraph: equal GID and equal canonical orientations.
func sameSubgraph(a, b PathEmb) bool {
	if a.GID != b.GID || len(a.Seq) != len(b.Seq) {
		return false
	}
	n := len(a.Seq)
	af, bf := a.canonicalForward(), b.canonicalForward()
	for i := 0; i < n; i++ {
		av, bv := a.Seq[i], b.Seq[i]
		if !af {
			av = a.Seq[n-1-i]
		}
		if !bf {
			bv = b.Seq[n-1-i]
		}
		if av != bv {
			return false
		}
	}
	return true
}

// canonLabelsForward reports whether a label sequence is already its
// canonical (lexicographically smaller) orientation.
func canonLabelsForward(seq []graph.Label) bool {
	n := len(seq)
	for i := 0; i < n; i++ {
		if seq[i] != seq[n-1-i] {
			return seq[i] < seq[n-1-i]
		}
	}
	return true
}

// hashLabelsDir hashes a label sequence read forward or reversed.
func hashLabelsDir(seq []graph.Label, forward bool) uint64 {
	h := uint64(fnvOffset64)
	n := len(seq)
	if forward {
		for i := 0; i < n; i++ {
			h = mix64(h, uint32(seq[i]))
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			h = mix64(h, uint32(seq[i]))
		}
	}
	return h
}

// labelsEqualDir reports whether canon equals seq read in the given
// direction. canon is always stored canonically.
func labelsEqualDir(canon, seq []graph.Label, forward bool) bool {
	if len(canon) != len(seq) {
		return false
	}
	n := len(seq)
	for i := 0; i < n; i++ {
		v := seq[i]
		if !forward {
			v = seq[n-1-i]
		}
		if canon[i] != v {
			return false
		}
	}
	return true
}

func labelSeqsEqual(a, b []graph.Label) bool { return slices.Equal(a, b) }

// gidVertexKey packs a (graph ID, vertex) pair into one exact uint64 —
// the byFirst join index key needs no verification.
func gidVertexKey(gid int32, v graph.V) uint64 {
	return uint64(uint32(gid))<<32 | uint64(uint32(v))
}

// hashGidSeq hashes (GID, vertex subsequence) for the byPrefix join
// index. Lookups verify the prefix exactly, so collisions are harmless.
func hashGidSeq(gid int32, seq graph.Path) uint64 {
	h := mix64(fnvOffset64, uint32(gid))
	for _, v := range seq {
		h = mix64(h, uint32(v))
	}
	return h
}

// stampSet is an epoch-stamped membership set over dense vertex IDs: a
// flat array sized by the largest data graph, cleared in O(1) by
// bumping the epoch. It replaces the per-join map[graph.V]struct{}
// scratch sets.
type stampSet struct {
	stamps []uint32
	epoch  uint32
}

func newStampSet(n int) *stampSet {
	return &stampSet{stamps: make([]uint32, n)}
}

// reset empties the set. On the (astronomically rare) epoch wrap the
// array is cleared eagerly so stale stamps can never read as current.
func (s *stampSet) reset() {
	s.epoch++
	if s.epoch == 0 {
		clear(s.stamps)
		s.epoch = 1
	}
}

func (s *stampSet) mark(v graph.V) { s.stamps[v] = s.epoch }

func (s *stampSet) has(v graph.V) bool { return s.stamps[v] == s.epoch }

// stampTable is a stamped vertex -> value lookup table, the
// allocation-free replacement for the per-embedding inverse map in
// Stage II candidate enumeration.
type stampTable struct {
	stamps []uint32
	vals   []int32
	epoch  uint32
}

func newStampTable(n int) *stampTable {
	return &stampTable{stamps: make([]uint32, n), vals: make([]int32, n)}
}

func (t *stampTable) reset() {
	t.epoch++
	if t.epoch == 0 {
		clear(t.stamps)
		t.epoch = 1
	}
}

func (t *stampTable) set(v graph.V, val int32) {
	t.stamps[v] = t.epoch
	t.vals[v] = val
}

func (t *stampTable) get(v graph.V) (int32, bool) {
	if t.stamps[v] != t.epoch {
		return 0, false
	}
	return t.vals[v], true
}
