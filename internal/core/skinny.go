package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"skinnymine/internal/dfscode"
	"skinnymine/internal/graph"
	"skinnymine/internal/obs"
	"skinnymine/internal/support"
)

// Options configures SkinnyMine.
type Options struct {
	// Support is the frequency threshold σ (>= 1).
	Support int
	// Length is the diameter length constraint l (>= 1). When MinLength
	// is set (> 0), lengths MinLength..Length are all mined, matching the
	// paper's "diameter between l1 and l2" request; otherwise exactly
	// Length.
	Length    int
	MinLength int
	// Delta is the skinniness bound δ. Negative means unbounded (grow
	// until no frequent extension remains).
	Delta int
	// CheckMode selects constraint maintenance (default CheckFast).
	CheckMode CheckMode
	// Measure selects support counting (default EmbeddingCount; use
	// GraphCount for transaction databases).
	Measure support.Measure
	// MaxEmbeddings caps stored embeddings per pattern (0 = unlimited).
	// Support (subgraph count) and GraphCount stay exact past the cap;
	// MNI and further growth work from the stored sample.
	MaxEmbeddings int
	// MaxPatterns bounds how many patterns Stage II may generate
	// (0 = unlimited); a safety valve for exploratory runs. Every
	// emitted pattern reserves one budget slot after canonical-code
	// dedup (duplicates never consume budget), and the cap is applied
	// to the final result only after ValidateOutput/ClosedOnly
	// filtering, so the run returns min(MaxPatterns, generated) of the
	// filtered patterns. Filtering can still leave fewer than
	// MaxPatterns results: slots consumed by patterns the filters later
	// dropped are not regenerated.
	MaxPatterns int
	// ClosedOnly keeps only closed patterns (no super-pattern in the
	// result with equal support), per Algorithm 3 line 12.
	ClosedOnly bool
	// GreedyGrow grows each canonical diameter maximally instead of
	// enumerating every valid edge subset: at each level, all valid
	// frequent extensions are absorbed into a single pattern. Output is
	// then one maximal pattern per seed rather than the complete result
	// set — the behavior the paper's pattern-recovery experiments
	// (Figures 4–10, Table 3) imply, since full subset enumeration of a
	// 40-vertex injected pattern is exponential while their reported
	// runtimes are sub-second.
	GreedyGrow bool
	// ValidateOutput re-verifies every emitted pattern against the
	// definition with a from-scratch canonical-diameter computation.
	// Cheap relative to mining; on by default via DefaultOptions.
	ValidateOutput bool
	// MaxLevels bounds growth when Delta < 0 (default 32).
	MaxLevels int
	// Concurrency bounds the worker pool used by both mining stages:
	// Stage I fans the per-label-sequence bucket joins of path doubling
	// and merging across workers, Stage II grows different canonical
	// diameters in parallel. 0 (or negative) means one worker per
	// available CPU (runtime.GOMAXPROCS(0)); 1 reproduces the sequential
	// path exactly. Output is byte-identical at every setting: results
	// are dedup'd against a shared canonical-code set and finally sorted
	// by (diameter length, canonical DFS code), so neither worker count
	// nor scheduling shows through. The one exception is MaxPatterns > 0
	// with Concurrency > 1, where which patterns win the budget race is
	// scheduling-dependent (the count still honors the cap).
	Concurrency int
	// SeedLengths, when non-empty, restricts mining to the canonical
	// diameter lengths in the set: Stage I materializes and Stage II
	// grows only those levels, skipping the band's other lengths
	// entirely. Every entry must lie within the band [MinLength or
	// Length, Length]; validate sorts and deduplicates the list.
	// Patterns partition by canonical diameter length and each length
	// mines independently, so the result is byte-identical to the
	// union of the per-length requests — the fork-at-seed-selection
	// hook the serving layer's shared-plan batch execution is built
	// on (one Stage I pass serves a family of band variants). nil
	// mines the whole band.
	SeedLengths []int

	// The three constraint-pushdown hooks below are how a declarative
	// pattern constraint (internal/constraint) reaches the mining hot
	// paths. All are optional; each must be safe for concurrent calls
	// from the worker pool and must be isomorphism-invariant (decide
	// from counts and labels, never from vertex identity), which keeps
	// pruning consistent with the shared canonical-code dedup and the
	// determinism guarantee above.

	// PrunePath is the Stage I pushdown hook: called with the vertex
	// label sequence of every candidate path assembled by the bucket
	// joins (in traversal order — the hook must be orientation-
	// invariant) and with every mined seed backbone before Stage II.
	// Returning true drops the candidate. Sound only for anti-monotone
	// predicates: a longer path contains every label of its sub-paths
	// and only adds vertices and edges, so a violated predicate stays
	// violated in everything assembled from the pruned path.
	PrunePath func(seq []graph.Label) bool
	// PrunePattern is the Stage II pushdown hook: called on every
	// candidate pattern that passed Constraints I–III and the frequency
	// threshold (seeds included), before dedup. Returning true drops
	// the pattern and its entire growth subtree. Sound only for anti-
	// monotone predicates over (vertices, edges, skinniness, support):
	// growth never shrinks the first three and never raises support.
	PrunePattern func(g *graph.Graph, skinniness int32, support int) bool
	// OutputFilter is the monotone-at-output side: evaluated once per
	// pattern surviving validation, before ClosedOnly (closedness is
	// judged within the constrained result set). Returning false drops
	// the pattern; rejections are counted in Stats.OutputFilterRejects.
	OutputFilter func(g *graph.Graph, skinniness int32, support int) bool

	// Tracer receives per-stage and per-level spans (Stage I edge /
	// concat / merge timings with candidate counts, Stage II growth
	// time). Nil means obs.Nop. Tracing is observation only: output is
	// byte-identical whether a recording trace or the no-op tracer is
	// attached — the refguards pin this.
	Tracer obs.Tracer
}

// DefaultOptions returns the recommended defaults for (l,δ)-SPM.
func DefaultOptions(sigma, length, delta int) Options {
	return Options{
		Support:        sigma,
		Length:         length,
		Delta:          delta,
		CheckMode:      CheckFast,
		Measure:        support.EmbeddingCount,
		ValidateOutput: true,
		MaxLevels:      32,
	}
}

// Stats reports what mining did; Figures 14, 16 and 17 are built from
// the stage timings and counts.
type Stats struct {
	DiamMineTime      time.Duration
	LevelGrowTime     time.Duration
	PathsMined        int    // |S0|
	ExtensionsTried   int    // candidate extensions examined
	Generated         int    // patterns passing constraints + frequency
	Duplicates        int    // canonical-code duplicates discarded
	ConstraintRejects [3]int // per Constraint I, II, III
	FrequencyRejects  int
	CheckMismatches   int // CheckVerify disagreements (fast vs naive)
	OutputInvalid     int // patterns failing final validation
	// PushdownRejects counts candidates cut by the constraint-pushdown
	// hooks: Stage I join candidates and seeds dropped by PrunePath
	// plus Stage II patterns (and their ungrown subtrees) dropped by
	// PrunePattern. OutputFilterRejects counts patterns dropped by the
	// per-pattern OutputFilter check.
	PushdownRejects     int
	OutputFilterRejects int
}

// Result is the output of a mining run.
type Result struct {
	Patterns []*Pattern
	Stats    Stats
}

type miner struct {
	graphs []*graph.Graph
	opt    Options
	check  checker
	stats  *statCounters
	codes  *codeSet
	maxN   int           // largest vertex count across graphs; sizes stamp tables
	budget *atomic.Int64 // remaining MaxPatterns budget; nil = unlimited
}

// consumeBudget reserves one output slot, reporting false when the
// MaxPatterns budget is exhausted. Shared across workers. Callers must
// dedup first: a reserved slot is never returned, so reserving for a
// pattern that is then discarded leaks budget.
func (m *miner) consumeBudget() bool {
	if m.budget == nil {
		return true
	}
	return m.budget.Add(-1) >= 0
}

// budgetExhausted reports whether the MaxPatterns budget has run dry,
// without consuming a slot.
func (m *miner) budgetExhausted() bool {
	return m.budget != nil && m.budget.Load() <= 0
}

// statCounters is the lock-free accumulator behind Stats: one miner is
// shared by every Stage II worker, so each counter is atomic. The
// public Stats snapshot is taken once, after the pool drains.
type statCounters struct {
	extensionsTried     atomic.Int64
	generated           atomic.Int64
	duplicates          atomic.Int64
	constraintRejects   [3]atomic.Int64
	frequencyRejects    atomic.Int64
	checkMismatches     atomic.Int64
	outputInvalid       atomic.Int64
	pushdownRejects     atomic.Int64
	outputFilterRejects atomic.Int64
}

func (c *statCounters) snapshot(s *Stats) {
	s.ExtensionsTried = int(c.extensionsTried.Load())
	s.Generated = int(c.generated.Load())
	s.Duplicates = int(c.duplicates.Load())
	for i := range s.ConstraintRejects {
		s.ConstraintRejects[i] = int(c.constraintRejects[i].Load())
	}
	s.FrequencyRejects = int(c.frequencyRejects.Load())
	s.CheckMismatches = int(c.checkMismatches.Load())
	s.OutputInvalid = int(c.outputInvalid.Load())
	s.PushdownRejects = int(c.pushdownRejects.Load())
	s.OutputFilterRejects = int(c.outputFilterRejects.Load())
}

// codeShards is the stripe count of the canonical-code dedup set. 64
// stripes keep lock contention negligible for any realistic worker
// count at a total cost of 4KB.
const codeShards = 64

// codeSet is the canonical-code dedup set shared by all workers,
// striped by key hash so parallel seed growth rarely contends.
type codeSet struct {
	shards [codeShards]codeShard
}

// dedupKey is a comparable (claimed diameter length, canonical code)
// pair. Keying the map on the struct instead of a concatenated string
// saves two allocations per dedup probe — the length-prefix slice and
// the joined string — on a path that runs once per generated pattern.
type dedupKey struct {
	diamLen int32
	code    string
}

// codeShard is padded to a cache line so adjacent stripes don't false-
// share under concurrent inserts.
type codeShard struct {
	mu sync.Mutex
	m  map[dedupKey]struct{}
	_  [64 - 16]byte
}

func newCodeSet() *codeSet {
	c := &codeSet{}
	for i := range c.shards {
		c.shards[i].m = make(map[dedupKey]struct{})
	}
	return c
}

func (c *codeSet) insert(key dedupKey) bool {
	// The stripe choice only spreads lock contention; folding the
	// length into the code hash keeps same-code/different-length keys
	// apart without re-materializing a combined string.
	s := &c.shards[(fnv1a(key.code)^uint32(key.diamLen))%codeShards]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.m[key]; dup {
		return false
	}
	s.m[key] = struct{}{}
	return true
}

// fnv1a is the 32-bit FNV-1a hash, used only to pick a dedup stripe.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Mine runs SkinnyMine on a single graph (Definition 8).
func Mine(g *graph.Graph, opt Options) (*Result, error) {
	return MineDB([]*graph.Graph{g}, opt)
}

// MineDB runs SkinnyMine on a graph database. With Measure GraphCount
// this is the graph-transaction setting; with the default embedding
// count, supports aggregate across graphs.
func MineDB(graphs []*graph.Graph, opt Options) (*Result, error) {
	if err := validate(graphs, &opt); err != nil {
		return nil, err
	}
	dm, err := NewDiamMiner(graphs, opt.Support)
	if err != nil {
		return nil, err
	}
	// The miner is request-private, so the Stage I pushdown may prune
	// inside the bucket joins themselves without corrupting a shared
	// level cache. MineWithIndex serves many requests from one miner
	// and therefore prunes at seed selection instead (same result set,
	// less Stage I work saved).
	dm.prune = opt.PrunePath
	return mineWithDiamMiner(dm, graphs, opt)
}

// MineWithIndex runs Stage II against a pre-built DiamMiner, the direct
// mining deployment of Figure 2: DiamMine results are computed once and
// shared across many requests with different l.
func MineWithIndex(dm *DiamMiner, opt Options) (*Result, error) {
	if err := validate(dm.graphs, &opt); err != nil {
		return nil, err
	}
	if dm.support != opt.Support {
		return nil, fmt.Errorf("core: index was built with support %d, request uses %d", dm.support, opt.Support)
	}
	return mineWithDiamMiner(dm, dm.graphs, opt)
}

func validate(graphs []*graph.Graph, opt *Options) error {
	if len(graphs) == 0 {
		return fmt.Errorf("core: no input graphs")
	}
	if opt.Support < 1 {
		return fmt.Errorf("core: support must be >= 1, got %d", opt.Support)
	}
	if opt.Length < 1 {
		return fmt.Errorf("core: length constraint must be >= 1, got %d", opt.Length)
	}
	if opt.MinLength > opt.Length {
		return fmt.Errorf("core: MinLength %d exceeds Length %d", opt.MinLength, opt.Length)
	}
	if opt.MaxLevels == 0 {
		opt.MaxLevels = 32
	}
	if len(opt.SeedLengths) > 0 {
		lo := opt.Length
		if opt.MinLength > 0 {
			lo = opt.MinLength
		}
		ls := append([]int(nil), opt.SeedLengths...)
		sort.Ints(ls)
		out := ls[:0]
		for i, l := range ls {
			if l < lo || l > opt.Length {
				return fmt.Errorf("core: seed length %d outside the band [%d, %d]", l, lo, opt.Length)
			}
			if i > 0 && l == ls[i-1] {
				continue
			}
			out = append(out, l)
		}
		opt.SeedLengths = out
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = runtime.GOMAXPROCS(0)
	}
	opt.Tracer = obs.Default(opt.Tracer)
	return nil
}

func mineWithDiamMiner(dm *DiamMiner, graphs []*graph.Graph, opt Options) (*Result, error) {
	m := &miner{
		graphs: graphs,
		opt:    opt,
		stats:  &statCounters{},
		codes:  newCodeSet(),
		maxN:   dm.maxN, // graphs == dm.graphs for every caller
	}
	if opt.MaxPatterns > 0 {
		m.budget = &atomic.Int64{}
		m.budget.Store(int64(opt.MaxPatterns))
	}
	m.check = checker{mode: opt.CheckMode, stats: m.stats}
	stats := Stats{}

	lo := opt.Length
	if opt.MinLength > 0 {
		lo = opt.MinLength
	}
	// The seed lengths to mine: the whole band, or the request's
	// explicit subset of it (validate already sorted and deduplicated).
	lengths := opt.SeedLengths
	if len(lengths) == 0 {
		lengths = make([]int, 0, opt.Length-lo+1)
		for l := lo; l <= opt.Length; l++ {
			lengths = append(lengths, l)
		}
	}

	// Stage I: mine canonical diameters, fanning bucket joins across
	// this request's worker budget. The count is passed per call — not
	// stored on the shared miner — so concurrent requests against a
	// warmed index stay race-free.
	tr := obs.Default(opt.Tracer)
	//lint:allow hotalloc stage-boundary timestamp, taken once per Mine call
	t0 := time.Now()
	sp1 := tr.Start("stage1")
	var seeds []*PathPattern
	for _, l := range lengths {
		ps, err := dm.mine(l, opt.Concurrency, tr)
		if err != nil {
			return nil, err
		}
		if opt.PrunePath == nil {
			seeds = append(seeds, ps...)
			continue
		}
		// Seed-level Stage I pushdown. On a request-private miner the
		// joins pruned these candidates already (this pass sees only
		// survivors); on a shared index the levels are complete and
		// this is where forbidden seeds — and every pattern that would
		// have grown from them — leave the search.
		for _, pp := range ps {
			if opt.PrunePath(pp.Seq) {
				m.stats.pushdownRejects.Add(1)
				continue
			}
			seeds = append(seeds, pp)
		}
	}
	if dm.prune != nil {
		m.stats.pushdownRejects.Add(dm.pruned.Load())
	}
	stats.DiamMineTime = time.Since(t0)
	stats.PathsMined = len(seeds)
	sp1.TagInt("seeds", int64(len(seeds))).End()

	// Stage II: grow each canonical diameter level by level, one seed's
	// cluster per task. Workers share the miner: the dedup set is
	// striped, counters are atomic, and everything else is read-only.
	//lint:allow hotalloc stage-boundary timestamp, taken once per Mine call
	t1 := time.Now()
	sp2 := tr.Start("stage2").TagInt("seeds", int64(len(seeds)))
	maxDelta := opt.Delta
	if maxDelta < 0 {
		maxDelta = opt.MaxLevels
	}
	perSeed := make([][]*Pattern, len(seeds))
	workers := opt.Concurrency
	if workers > len(seeds) {
		workers = len(seeds)
	}
	if workers < 2 {
		sc := m.newGrowScratch()
		for i, pp := range seeds {
			perSeed[i] = m.growSeed(pp, maxDelta, sc)
		}
	} else {
		var wg sync.WaitGroup
		var next atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := m.newGrowScratch()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(seeds) {
						return
					}
					perSeed[i] = m.growSeed(seeds[i], maxDelta, sc)
				}
			}()
		}
		wg.Wait()
	}
	var out []*Pattern
	for _, ps := range perSeed {
		out = append(out, ps...)
	}
	// Canonical output order: seeds race only through the shared dedup
	// set, so the merged set is scheduling-independent; sorting by
	// (diameter length, canonical code) makes the order so too.
	sort.Slice(out, func(i, j int) bool {
		if out[i].DiamLen != out[j].DiamLen {
			return out[i].DiamLen < out[j].DiamLen
		}
		return out[i].codeKey < out[j].codeKey
	})

	if opt.ValidateOutput {
		out = m.validateOutput(out, lo)
	}
	if opt.OutputFilter != nil {
		out = m.filterOutput(out)
	}
	if opt.ClosedOnly {
		out = closedOnly(out)
	}
	// The budget already bounds generation, so the filtered result can
	// only exceed MaxPatterns if filtering was disabled and generation
	// raced; clamp defensively AFTER the filters so valid patterns are
	// never discarded while invalid ones occupy the cap.
	if opt.MaxPatterns > 0 && len(out) > opt.MaxPatterns {
		out = out[:opt.MaxPatterns]
	}
	stats.LevelGrowTime = time.Since(t1)
	sp2.TagInt("patterns", int64(len(out))).End()
	m.stats.snapshot(&stats)
	return &Result{Patterns: out, Stats: stats}, nil
}

// growSeed grows one canonical diameter's cluster to completion (or
// until the shared MaxPatterns budget runs dry). Budget slots are
// reserved only after dedup succeeds — a duplicate seed must not leak a
// slot — and a seed that cannot reserve one is dropped.
func (m *miner) growSeed(pp *PathPattern, maxDelta int, sc *growScratch) []*Pattern {
	if m.budgetExhausted() {
		return nil
	}
	p0 := newPatternFromPath(pp, m.graphs, m.opt.MaxEmbeddings)
	// Support-dependent pushdown conjuncts could not run at seed
	// selection (path support measures differ from pattern support);
	// they cut the seed — and its whole cluster — here instead.
	if m.rejectPushdown(p0) {
		m.stats.pushdownRejects.Add(1)
		return nil
	}
	if !m.dedup(p0) {
		return nil
	}
	if !m.consumeBudget() {
		return nil
	}
	out := []*Pattern{p0}
	frontier := []*Pattern{p0}
	for level := int32(1); level <= int32(maxDelta); level++ {
		var next []*Pattern
		for _, p := range frontier {
			p.hasAnchor = false // Panchor ordering restarts per level
			next = append(next, m.levelGrow(p, level, sc)...)
		}
		if len(next) == 0 {
			break
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}

// dedup registers the pattern's canonical code, reporting true when new.
// The code is kept on the pattern for the final canonical output sort.
// The set key includes the claimed diameter length: in a band request
// two seeds of different lengths could otherwise grow isomorphic
// graphs (one of them violating the growth invariant, possible only if
// a fast check over-accepted), and whichever won the insert race would
// suppress the other — making output depend on scheduling and possibly
// discarding the valid claim. Keyed per length, the valid pattern
// always survives and validateOutput drops the deviant. A deviant
// claiming the SAME length as the valid pattern would still race —
// that case requires a same-length fast-check over-acceptance, i.e. a
// violation of Theorems 1–3, which is also the stated precondition of
// the determinism guarantee (see the package doc).
func (m *miner) dedup(p *Pattern) bool {
	p.codeKey = dfscode.MinCodeKey(p.G)
	return m.codes.insert(dedupKey{diamLen: p.DiamLen, code: p.codeKey})
}

// rejectPushdown applies the Stage II pushdown hook to a candidate
// pattern. True means the pattern and everything grown from it leave
// the search: the hook carries only anti-monotone predicates, so a
// violation here is a violation in the entire subtree.
func (m *miner) rejectPushdown(p *Pattern) bool {
	if m.opt.PrunePattern == nil {
		return false
	}
	return m.opt.PrunePattern(p.G, p.MaxLevel(), p.Embs.Count(m.opt.Measure))
}

// filterOutput applies the declarative output filter once per emitted
// pattern — the monotone-at-output side of constraint pushdown. It runs
// before closedOnly, so closedness is judged within the constrained
// result set.
func (m *miner) filterOutput(ps []*Pattern) []*Pattern {
	out := ps[:0]
	for _, p := range ps {
		if !m.opt.OutputFilter(p.G, p.MaxLevel(), p.Embs.Count(m.opt.Measure)) {
			m.stats.outputFilterRejects.Add(1)
			continue
		}
		out = append(out, p)
	}
	return out
}

// validateOutput drops patterns whose canonical diameter deviated from
// the growth invariant (possible only if the fast checks over-accepted;
// see constraints.go). The recomputed diameter must equal the length
// the pattern was stamped with at its seed — not merely fall inside the
// band — so a pattern never survives under a length it does not
// realize; this is also what makes a band mine exactly the union of
// its per-length mines (the partition SeedLengths and the serving
// layer's shared-plan forking rely on).
func (m *miner) validateOutput(ps []*Pattern, lo int) []*Pattern {
	out := ps[:0]
	for _, p := range ps {
		cd, diam := p.G.CanonicalDiameter()
		ok := diam == p.DiamLen && int(diam) >= lo && int(diam) <= m.opt.Length
		if ok {
			for i, v := range cd {
				if v != graph.V(i) {
					ok = false
					break
				}
			}
		}
		if !ok {
			m.stats.outputInvalid.Add(1)
			continue
		}
		out = append(out, p)
	}
	return out
}

// closedOnly keeps patterns with no strict super-pattern of equal
// support in the result set. It writes survivors to a fresh slice: the
// witness loop must read the *original* result set for every candidate,
// and filtering in place (out := ps[:0]) would overwrite slots the
// inner loop still reads — correct only via a fragile transitivity
// argument about equal-support chains.
func closedOnly(ps []*Pattern) []*Pattern {
	out := make([]*Pattern, 0, len(ps))
	for i, p := range ps {
		closed := true
		for j, q := range ps {
			if i == j || q.G.M() <= p.G.M() || q.Support() != p.Support() {
				continue
			}
			if graph.HasEmbedding(p.G, q.G) {
				closed = false
				break
			}
		}
		if closed {
			out = append(out, p)
		}
	}
	return out
}
