package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"skinnymine/internal/dfscode"
	"skinnymine/internal/graph"
	"skinnymine/internal/support"
)

// Options configures SkinnyMine.
type Options struct {
	// Support is the frequency threshold σ (>= 1).
	Support int
	// Length is the diameter length constraint l (>= 1). When MinLength
	// is set (> 0), lengths MinLength..Length are all mined, matching the
	// paper's "diameter between l1 and l2" request; otherwise exactly
	// Length.
	Length    int
	MinLength int
	// Delta is the skinniness bound δ. Negative means unbounded (grow
	// until no frequent extension remains).
	Delta int
	// CheckMode selects constraint maintenance (default CheckFast).
	CheckMode CheckMode
	// Measure selects support counting (default EmbeddingCount; use
	// GraphCount for transaction databases).
	Measure support.Measure
	// MaxEmbeddings caps stored embeddings per pattern (0 = unlimited).
	MaxEmbeddings int
	// MaxPatterns aborts mining after this many result patterns
	// (0 = unlimited); a safety valve for exploratory runs.
	MaxPatterns int
	// ClosedOnly keeps only closed patterns (no super-pattern in the
	// result with equal support), per Algorithm 3 line 12.
	ClosedOnly bool
	// GreedyGrow grows each canonical diameter maximally instead of
	// enumerating every valid edge subset: at each level, all valid
	// frequent extensions are absorbed into a single pattern. Output is
	// then one maximal pattern per seed rather than the complete result
	// set — the behavior the paper's pattern-recovery experiments
	// (Figures 4–10, Table 3) imply, since full subset enumeration of a
	// 40-vertex injected pattern is exponential while their reported
	// runtimes are sub-second.
	GreedyGrow bool
	// ValidateOutput re-verifies every emitted pattern against the
	// definition with a from-scratch canonical-diameter computation.
	// Cheap relative to mining; on by default via DefaultOptions.
	ValidateOutput bool
	// MaxLevels bounds growth when Delta < 0 (default 32).
	MaxLevels int
	// Workers runs Stage II growth of different canonical diameters in
	// parallel (0 or 1 = sequential). Results are deterministic: output
	// order follows seed order regardless of scheduling.
	Workers int
}

// DefaultOptions returns the recommended defaults for (l,δ)-SPM.
func DefaultOptions(sigma, length, delta int) Options {
	return Options{
		Support:        sigma,
		Length:         length,
		Delta:          delta,
		CheckMode:      CheckFast,
		Measure:        support.EmbeddingCount,
		ValidateOutput: true,
		MaxLevels:      32,
	}
}

// Stats reports what mining did; Figures 14, 16 and 17 are built from
// the stage timings and counts.
type Stats struct {
	DiamMineTime      time.Duration
	LevelGrowTime     time.Duration
	PathsMined        int    // |S0|
	ExtensionsTried   int    // candidate extensions examined
	Generated         int    // patterns passing constraints + frequency
	Duplicates        int    // canonical-code duplicates discarded
	ConstraintRejects [3]int // per Constraint I, II, III
	FrequencyRejects  int
	CheckMismatches   int // CheckVerify disagreements (fast vs naive)
	OutputInvalid     int // patterns failing final validation
}

// Result is the output of a mining run.
type Result struct {
	Patterns []*Pattern
	Stats    Stats
}

type miner struct {
	graphs []*graph.Graph
	opt    Options
	check  checker
	stats  *Stats
	codes  *codeSet
	budget *atomic.Int64 // remaining MaxPatterns budget; nil = unlimited
}

// consumeBudget reserves one output slot, reporting false when the
// MaxPatterns budget is exhausted. Shared across workers.
func (m *miner) consumeBudget() bool {
	if m.budget == nil {
		return true
	}
	return m.budget.Add(-1) >= 0
}

// codeSet is the canonical-code dedup set, mutex-guarded so parallel
// seed growth shares it.
type codeSet struct {
	mu sync.Mutex
	m  map[string]struct{}
}

func newCodeSet() *codeSet { return &codeSet{m: make(map[string]struct{})} }

func (c *codeSet) insert(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.m[key]; dup {
		return false
	}
	c.m[key] = struct{}{}
	return true
}

// add merges another stats accumulator (used when seeds grow in
// parallel; stage timings are handled by the caller).
func (s *Stats) add(o *Stats) {
	s.ExtensionsTried += o.ExtensionsTried
	s.Generated += o.Generated
	s.Duplicates += o.Duplicates
	for i := range s.ConstraintRejects {
		s.ConstraintRejects[i] += o.ConstraintRejects[i]
	}
	s.FrequencyRejects += o.FrequencyRejects
	s.CheckMismatches += o.CheckMismatches
	s.OutputInvalid += o.OutputInvalid
}

// Mine runs SkinnyMine on a single graph (Definition 8).
func Mine(g *graph.Graph, opt Options) (*Result, error) {
	return MineDB([]*graph.Graph{g}, opt)
}

// MineDB runs SkinnyMine on a graph database. With Measure GraphCount
// this is the graph-transaction setting; with the default embedding
// count, supports aggregate across graphs.
func MineDB(graphs []*graph.Graph, opt Options) (*Result, error) {
	if err := validate(graphs, &opt); err != nil {
		return nil, err
	}
	dm, err := NewDiamMiner(graphs, opt.Support)
	if err != nil {
		return nil, err
	}
	return mineWithDiamMiner(dm, graphs, opt)
}

// MineWithIndex runs Stage II against a pre-built DiamMiner, the direct
// mining deployment of Figure 2: DiamMine results are computed once and
// shared across many requests with different l.
func MineWithIndex(dm *DiamMiner, opt Options) (*Result, error) {
	if err := validate(dm.graphs, &opt); err != nil {
		return nil, err
	}
	if dm.support != opt.Support {
		return nil, fmt.Errorf("core: index was built with support %d, request uses %d", dm.support, opt.Support)
	}
	return mineWithDiamMiner(dm, dm.graphs, opt)
}

func validate(graphs []*graph.Graph, opt *Options) error {
	if len(graphs) == 0 {
		return fmt.Errorf("core: no input graphs")
	}
	if opt.Support < 1 {
		return fmt.Errorf("core: support must be >= 1, got %d", opt.Support)
	}
	if opt.Length < 1 {
		return fmt.Errorf("core: length constraint must be >= 1, got %d", opt.Length)
	}
	if opt.MinLength > opt.Length {
		return fmt.Errorf("core: MinLength %d exceeds Length %d", opt.MinLength, opt.Length)
	}
	if opt.MaxLevels == 0 {
		opt.MaxLevels = 32
	}
	return nil
}

func mineWithDiamMiner(dm *DiamMiner, graphs []*graph.Graph, opt Options) (*Result, error) {
	m := &miner{
		graphs: graphs,
		opt:    opt,
		stats:  &Stats{},
		codes:  newCodeSet(),
	}
	if opt.MaxPatterns > 0 {
		m.budget = &atomic.Int64{}
		m.budget.Store(int64(opt.MaxPatterns))
	}
	m.check = checker{mode: opt.CheckMode, stats: m.stats}

	lo := opt.Length
	if opt.MinLength > 0 {
		lo = opt.MinLength
	}

	// Stage I: mine canonical diameters.
	t0 := time.Now()
	var seeds []*PathPattern
	for l := lo; l <= opt.Length; l++ {
		ps, err := dm.Mine(l)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, ps...)
	}
	m.stats.DiamMineTime = time.Since(t0)
	m.stats.PathsMined = len(seeds)

	// Stage II: grow each canonical diameter level by level, optionally
	// across workers (one seed's cluster per task; output order follows
	// seed order, so results are deterministic).
	t1 := time.Now()
	maxDelta := opt.Delta
	if maxDelta < 0 {
		maxDelta = opt.MaxLevels
	}
	perSeed := make([][]*Pattern, len(seeds))
	workers := opt.Workers
	if workers < 2 || len(seeds) < 2 {
		for i, pp := range seeds {
			perSeed[i] = m.growSeed(pp, maxDelta)
		}
	} else {
		var wg sync.WaitGroup
		tasks := make(chan int)
		var mu sync.Mutex
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				local := &miner{graphs: graphs, opt: opt, stats: &Stats{}, codes: m.codes, budget: m.budget}
				local.check = checker{mode: opt.CheckMode, stats: local.stats}
				for i := range tasks {
					perSeed[i] = local.growSeed(seeds[i], maxDelta)
				}
				mu.Lock()
				m.stats.add(local.stats)
				mu.Unlock()
			}()
		}
		for i := range seeds {
			tasks <- i
		}
		close(tasks)
		wg.Wait()
	}
	var out []*Pattern
	for _, ps := range perSeed {
		out = append(out, ps...)
		if opt.MaxPatterns > 0 && len(out) >= opt.MaxPatterns {
			out = out[:opt.MaxPatterns]
			break
		}
	}

	if opt.ValidateOutput {
		out = m.validateOutput(out, lo)
	}
	if opt.ClosedOnly {
		out = closedOnly(out)
	}
	m.stats.LevelGrowTime = time.Since(t1)
	return &Result{Patterns: out, Stats: *m.stats}, nil
}

// growSeed grows one canonical diameter's cluster to completion (or
// until the shared MaxPatterns budget runs dry).
func (m *miner) growSeed(pp *PathPattern, maxDelta int) []*Pattern {
	if !m.consumeBudget() {
		return nil
	}
	p0 := newPatternFromPath(pp, m.graphs, m.opt.MaxEmbeddings)
	if !m.dedup(p0) {
		return nil
	}
	out := []*Pattern{p0}
	frontier := []*Pattern{p0}
	for level := int32(1); level <= int32(maxDelta); level++ {
		var next []*Pattern
		for _, p := range frontier {
			p.hasAnchor = false // Panchor ordering restarts per level
			next = append(next, m.levelGrow(p, level)...)
		}
		if len(next) == 0 {
			break
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}

// dedup registers the pattern's canonical code, reporting true when new.
func (m *miner) dedup(p *Pattern) bool {
	return m.codes.insert(dfscode.MinCodeKey(p.G))
}

// validateOutput drops patterns whose canonical diameter deviated from
// the growth invariant (possible only if the fast checks over-accepted;
// see constraints.go) or whose length fell outside the request.
func (m *miner) validateOutput(ps []*Pattern, lo int) []*Pattern {
	out := ps[:0]
	for _, p := range ps {
		cd, diam := p.G.CanonicalDiameter()
		ok := int(diam) >= lo && int(diam) <= m.opt.Length
		if ok {
			for i, v := range cd {
				if v != graph.V(i) {
					ok = false
					break
				}
			}
		}
		if !ok {
			m.stats.OutputInvalid++
			continue
		}
		out = append(out, p)
	}
	return out
}

// closedOnly keeps patterns with no strict super-pattern of equal
// support in the result set.
func closedOnly(ps []*Pattern) []*Pattern {
	out := ps[:0]
	for i, p := range ps {
		closed := true
		for j, q := range ps {
			if i == j || q.G.M() <= p.G.M() || q.Support() != p.Support() {
				continue
			}
			if graph.HasEmbedding(p.G, q.G) {
				closed = false
				break
			}
		}
		if closed {
			out = append(out, p)
		}
	}
	return out
}
