package core

import (
	"fmt"

	"skinnymine/internal/graph"
)

// ShardStage1 is the per-shard side of sharded Stage I mining
// (internal/shard): it runs the DiamMine path joins over ONE shard of a
// partitioned graph database and reports every candidate it assembles,
// leaving the frequency threshold to the cross-shard merge.
//
// The construction that makes sharding exact: Stage I joins only ever
// combine embeddings living in the same data graph, and each graph
// belongs to exactly one shard, so the union of per-shard candidate
// buckets for a level is precisely the unsharded candidate set,
// partitioned by graph ID — no candidate is lost and none is invented.
// A shard therefore holds the FULL graph slice (embeddings carry global
// graph IDs throughout; nothing is ever remapped during mining) but
// enumerates level-1 edges only from its own graphs, and each later
// level joins only the shard-local projections of the globally merged,
// globally thresholded previous level that internal/shard feeds back.
//
// Candidate generation is internally threshold-1 (every non-empty
// bucket survives collect), so per-pattern Support values returned here
// are shard-local subgraph counts; global supports are recomputed at
// the merge. A ShardStage1 never installs a Stage I pushdown hook:
// shard levels feed a shared engine serving many requests, so they must
// stay complete (constraints prune at seed selection instead, exactly
// like a shared DirectIndex).
//
// Ownership: a ShardStage1 is stateless between calls (no level cache —
// internal/shard owns all caching) and safe for one caller at a time;
// the engine runs the P shards on P goroutines, one call per shard per
// level.
type ShardStage1 struct {
	dm   *DiamMiner
	gids []int32
}

// NewShardStage1 returns the Stage I join runner for the shard owning
// the given graph IDs. graphs is the FULL database slice shared by all
// shards; gids selects this shard's members.
func NewShardStage1(graphs []*graph.Graph, gids []int32) (*ShardStage1, error) {
	dm, err := NewDiamMiner(graphs, 1)
	if err != nil {
		return nil, err
	}
	for _, gid := range gids {
		if int(gid) < 0 || int(gid) >= len(graphs) {
			return nil, fmt.Errorf("core: shard graph ID %d out of range [0, %d)", gid, len(graphs))
		}
	}
	return &ShardStage1{dm: dm, gids: append([]int32(nil), gids...)}, nil
}

// EdgeCandidates buckets every length-1 path of the shard's graphs:
// the level-1 candidates, sorted by canonical label sequence with
// embeddings sorted by (graph ID, vertex sequence) — the same canonical
// order collect gives the unsharded level.
func (s *ShardStage1) EdgeCandidates() []*PathPattern {
	return s.dm.edgeCandidates(s.gids)
}

// ConcatCandidates doubles the shard-local projections of the globally
// frequent length-L paths into the shard's length-2L candidates
// (Algorithm 2 lines 2–7), fanned across the given worker count.
func (s *ShardStage1) ConcatCandidates(prev []*PathPattern, workers int) []*PathPattern {
	if workers < 1 {
		workers = 1
	}
	return s.dm.concat(prev, workers)
}

// CountPathSubgraphs counts the distinct path subgraphs among oriented
// embeddings: Stage I stores both traversal orders of every subgraph,
// so counting the embeddings whose vertex sequence reads canonically in
// its stored direction counts each subgraph exactly once. This is the
// support a merged shard level recomputes (internal/shard) — exported
// from core so the "<= its own reversal" convention lives in exactly
// one place (PathEmb.canonicalForward, shared with the subgraph-hash
// dedup of the joins).
func CountPathSubgraphs(embs []PathEmb) int {
	n := 0
	for _, e := range embs {
		if e.canonicalForward() {
			n++
		}
	}
	return n
}

// MergeCandidates overlaps two length-m paths from the shard-local
// projections of the globally frequent level m into length-l candidates
// (Algorithm 2 lines 9–17). Requires m < l < 2m, the range the doubling
// schedule produces.
func (s *ShardStage1) MergeCandidates(pool []*PathPattern, l, m, workers int) []*PathPattern {
	if workers < 1 {
		workers = 1
	}
	return s.dm.merge(pool, l, m, workers)
}
