package core

import (
	"fmt"

	"skinnymine/internal/graph"
	"skinnymine/internal/support"
)

// Pattern is a graph pattern under growth. By construction its canonical
// diameter occupies pattern vertices 0..DiamLen in order: vertex 0 is the
// head v_H, vertex DiamLen is the tail v_T. Level, DH and DT are the
// paper's per-vertex indices: distance to the diameter (Definition 5) and
// shortest distances to head and tail (Section 3.4).
type Pattern struct {
	G       *graph.Graph
	DiamLen int32
	Level   []int32
	DH, DT  []int32
	Embs    *support.Set

	anchor    extDesc // last extension applied (Panchor, Algorithm 3)
	hasAnchor bool
	codeKey   string // canonical DFS code, set at dedup time
}

// CodeKey returns the pattern's canonical DFS code key (the dedup and
// output-ordering key); empty for patterns never passed through dedup.
func (p *Pattern) CodeKey() string { return p.codeKey }

// Diam returns the canonical diameter as a pattern path (vertices
// 0..DiamLen).
func (p *Pattern) Diam() graph.Path {
	d := make(graph.Path, p.DiamLen+1)
	for i := range d {
		d[i] = graph.V(i)
	}
	return d
}

// DiamSeq returns the label sequence of the canonical diameter.
func (p *Pattern) DiamSeq() []graph.Label {
	seq := make([]graph.Label, p.DiamLen+1)
	for i := range seq {
		seq[i] = p.G.Label(graph.V(i))
	}
	return seq
}

// Support returns the pattern's support (distinct embedding subgraphs,
// the paper's |E[P]|).
func (p *Pattern) Support() int { return p.Embs.Support() }

// MaxLevel returns the largest vertex level (the pattern's skinniness).
func (p *Pattern) MaxLevel() int32 {
	max := int32(0)
	for _, l := range p.Level {
		if l > max {
			max = l
		}
	}
	return max
}

// String renders a short summary.
func (p *Pattern) String() string {
	return fmt.Sprintf("Pattern(|V|=%d,|E|=%d,l=%d,δ=%d,sup=%d)",
		p.G.N(), p.G.M(), p.DiamLen, p.MaxLevel(), p.Support())
}

// newPatternFromPath seeds a Pattern from a frequent path mined by
// DiamMine: the minimal constraint-satisfying pattern whose canonical
// diameter is the path itself. Only oriented embeddings whose label
// sequence matches the canonical sequence become isomorphism maps (a
// palindromic sequence admits both orientations, which is exactly the
// automorphism set the embedding store must keep).
func newPatternFromPath(pp *PathPattern, graphs []*graph.Graph, maxEmb int) *Pattern {
	l := pp.Length()
	g := graph.New(l + 1)
	for _, lab := range pp.Seq {
		g.AddVertex(lab)
	}
	for i := 0; i < l; i++ {
		g.MustAddEdge(graph.V(i), graph.V(i+1))
	}
	p := &Pattern{
		G:       g,
		DiamLen: int32(l),
		Level:   make([]int32, l+1),
		DH:      make([]int32, l+1),
		DT:      make([]int32, l+1),
	}
	for i := 0; i <= l; i++ {
		p.DH[i] = int32(i)
		p.DT[i] = int32(l - i)
	}
	p.Embs = support.NewSet(g.Edges(), maxEmb)
	for _, e := range pp.Embs {
		if labelSeqMatches(graphs[e.GID], e.Seq, pp.Seq) {
			p.Embs.Add(support.Embedding{GID: e.GID, Map: e.Seq})
		}
	}
	return p
}

func labelSeqMatches(g *graph.Graph, seq graph.Path, want []graph.Label) bool {
	if len(seq) != len(want) {
		return false
	}
	for i, v := range seq {
		if g.Label(v) != want[i] {
			return false
		}
	}
	return true
}

// extDesc identifies one candidate extension of a pattern: either a
// backward edge between two existing pattern vertices (kind 0) or a
// forward edge attaching a fresh vertex with the given label (kind 1).
// Descriptors order totally; each pattern only extends with descriptors
// >= its anchor, which forces a single generation order per pattern
// within a canonical-diameter cluster.
type extDesc struct {
	kind  int8 // 0 backward, 1 forward
	src   int32
	dst   int32 // backward: other endpoint (src < dst); forward: -1
	label graph.Label
}

func (d extDesc) String() string {
	if d.kind == 0 {
		return fmt.Sprintf("back(%d,%d)", d.src, d.dst)
	}
	return fmt.Sprintf("fwd(%d)+label%d", d.src, d.label)
}

// compareDesc orders extension descriptors: backward edges before
// forward, then by source, destination, and label.
func compareDesc(a, b extDesc) int {
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	if a.src != b.src {
		if a.src < b.src {
			return -1
		}
		return 1
	}
	if a.dst != b.dst {
		if a.dst < b.dst {
			return -1
		}
		return 1
	}
	if a.label != b.label {
		if a.label < b.label {
			return -1
		}
		return 1
	}
	return 0
}
