package core

import (
	"math/rand"
	"testing"

	"skinnymine/internal/graph"
	"skinnymine/internal/testutil"
)

// bruteFrequentPaths enumerates every simple path of length l in the
// graphs by DFS, groups them by canonical label sequence, and counts
// distinct path subgraphs. It is the ground truth for DiamMine.
func bruteFrequentPaths(graphs []*graph.Graph, l, sigma int) map[string]int {
	counts := make(map[string]map[string]struct{})
	for gi, g := range graphs {
		var dfs func(p graph.Path)
		dfs = func(p graph.Path) {
			if p.Len() == l {
				seq := graph.CanonicalLabelSeq(p.LabelSeq(g))
				key := graph.LabelSeqKey(seq)
				if counts[key] == nil {
					counts[key] = make(map[string]struct{})
				}
				counts[key][PathEmb{GID: int32(gi), Seq: p}.subgraphKey()] = struct{}{}
				return
			}
			last := p[len(p)-1]
			for _, w := range g.Neighbors(last) {
				fresh := true
				for _, v := range p {
					if v == w {
						fresh = false
						break
					}
				}
				if fresh {
					dfs(append(p, w))
				}
			}
		}
		for v := 0; v < g.N(); v++ {
			dfs(graph.Path{graph.V(v)})
		}
	}
	out := make(map[string]int)
	for key, subs := range counts {
		if len(subs) >= sigma {
			out[key] = len(subs)
		}
	}
	return out
}

func minePathsMap(t *testing.T, graphs []*graph.Graph, l, sigma int) map[string]int {
	t.Helper()
	dm, err := NewDiamMiner(graphs, sigma)
	if err != nil {
		t.Fatalf("NewDiamMiner: %v", err)
	}
	ps, err := dm.Mine(l)
	if err != nil {
		t.Fatalf("Mine(%d): %v", l, err)
	}
	out := make(map[string]int)
	for _, p := range ps {
		out[graph.LabelSeqKey(p.Seq)] = p.Support
	}
	return out
}

func TestDiamMineFrequentEdges(t *testing.T) {
	// Path a-b-a-b: edges (a,b) x3.
	g := testutil.PathGraph(0, 1, 0, 1)
	got := minePathsMap(t, []*graph.Graph{g}, 1, 2)
	if len(got) != 1 {
		t.Fatalf("got %d patterns, want 1", len(got))
	}
	key := graph.LabelSeqKey([]graph.Label{0, 1})
	if got[key] != 3 {
		t.Errorf("support = %d, want 3", got[key])
	}
}

func TestDiamMineMatchesBruteForceSigma1(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		g := testutil.RandomConnectedGraph(rng, 5+rng.Intn(8), rng.Intn(4), 3)
		for l := 1; l <= 6; l++ {
			got := minePathsMap(t, []*graph.Graph{g}, l, 1)
			want := bruteFrequentPaths([]*graph.Graph{g}, l, 1)
			if len(got) != len(want) {
				t.Fatalf("trial %d l=%d: %d patterns, want %d", trial, l, len(got), len(want))
			}
			for k, sup := range want {
				if got[k] != sup {
					t.Fatalf("trial %d l=%d: support %d, want %d", trial, l, got[k], sup)
				}
			}
		}
	}
}

func TestDiamMineSigma2DisjointInjection(t *testing.T) {
	// Two vertex-disjoint copies of a distinctive path keep sub-path
	// supports intact, so doubling/merging finds them at σ=2.
	g := graph.New(20)
	labels := []graph.Label{5, 6, 7, 8, 9, 5}
	for copyi := 0; copyi < 2; copyi++ {
		base := g.N()
		for _, l := range labels {
			g.AddVertex(l)
		}
		for i := 1; i < len(labels); i++ {
			g.MustAddEdge(graph.V(base+i-1), graph.V(base+i))
		}
	}
	got := minePathsMap(t, []*graph.Graph{g}, 5, 2)
	key := graph.LabelSeqKey(graph.CanonicalLabelSeq(labels))
	if got[key] != 2 {
		t.Fatalf("injected path support = %d, want 2 (got %v)", got[key], got)
	}
	// Non-power-of-two length 3 (forces the merge step).
	got3 := minePathsMap(t, []*graph.Graph{g}, 3, 2)
	if len(got3) == 0 {
		t.Error("length-3 sub-paths should be frequent")
	}
	for k, sup := range got3 {
		want := bruteFrequentPaths([]*graph.Graph{g}, 3, 2)
		if want[k] != sup {
			t.Errorf("length-3 support mismatch: %d vs %d", sup, want[k])
		}
	}
}

func TestDiamMineTransactionSetting(t *testing.T) {
	g1 := testutil.PathGraph(1, 2, 3)
	g2 := testutil.PathGraph(1, 2, 3, 4)
	got := minePathsMap(t, []*graph.Graph{g1, g2}, 2, 2)
	key := graph.LabelSeqKey([]graph.Label{1, 2, 3})
	if got[key] != 2 {
		t.Errorf("cross-graph support = %d, want 2 (got %v)", got[key], got)
	}
	// No concatenation across graph boundaries: length-3 paths exist only
	// in g2, support 1 < 2.
	got3 := minePathsMap(t, []*graph.Graph{g1, g2}, 3, 2)
	if len(got3) != 0 {
		t.Errorf("length-3 should be infrequent, got %v", got3)
	}
}

func TestDiamMineCycleSelfOverlapRejected(t *testing.T) {
	// A 4-cycle has no simple path of length 4; concat/merge must not
	// wrap around.
	g := testutil.CycleGraph(0, 0, 0, 0)
	got := minePathsMap(t, []*graph.Graph{g}, 4, 1)
	if len(got) != 0 {
		t.Errorf("no simple length-4 path exists in C4, got %v", got)
	}
	got3 := minePathsMap(t, []*graph.Graph{g}, 3, 1)
	want := bruteFrequentPaths([]*graph.Graph{g}, 3, 1)
	key := graph.LabelSeqKey([]graph.Label{0, 0, 0, 0})
	if got3[key] != want[key] || got3[key] != 4 {
		t.Errorf("C4 length-3 support = %d, want 4", got3[key])
	}
}

func TestDiamMineCaching(t *testing.T) {
	g := testutil.PathGraph(0, 1, 0, 1, 0)
	dm, err := NewDiamMiner([]*graph.Graph{g}, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := dm.Mine(3)
	b, _ := dm.Mine(3)
	if len(a) != len(b) {
		t.Error("cached result differs")
	}
	if _, ok := dm.levels[2]; !ok {
		t.Error("power-of-two level 2 should be cached")
	}
}

func TestDiamMineErrors(t *testing.T) {
	if _, err := NewDiamMiner(nil, 2); err == nil {
		t.Error("no graphs should error")
	}
	g := testutil.PathGraph(0, 1)
	if _, err := NewDiamMiner([]*graph.Graph{g}, 0); err == nil {
		t.Error("support 0 should error")
	}
	dm, _ := NewDiamMiner([]*graph.Graph{g}, 1)
	if _, err := dm.Mine(0); err == nil {
		t.Error("length 0 should error")
	}
}

func TestMaxFrequentLength(t *testing.T) {
	g := testutil.PathGraph(0, 1, 2, 3, 4)
	dm, _ := NewDiamMiner([]*graph.Graph{g}, 1)
	got, err := dm.MaxFrequentLength(10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("MaxFrequentLength = %d, want 4", got)
	}
}

func TestPathEmbKeys(t *testing.T) {
	a := PathEmb{Seq: graph.Path{1, 2, 3}}
	b := PathEmb{Seq: graph.Path{3, 2, 1}}
	if a.key() == b.key() {
		t.Error("oriented keys should differ")
	}
	if a.subgraphKey() != b.subgraphKey() {
		t.Error("subgraph keys should match for reversed orientation")
	}
	c := PathEmb{GID: 1, Seq: graph.Path{1, 2, 3}}
	if a.subgraphKey() == c.subgraphKey() {
		t.Error("different GIDs should differ")
	}
}
