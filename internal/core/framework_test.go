package core

import (
	"math/rand"
	"testing"

	"skinnymine/internal/graph"
	"skinnymine/internal/testutil"
)

// smallUniverse enumerates a deterministic set of small connected
// patterns (paths, cycles, stars, random trees+chords) for property
// checking.
func smallUniverse() []*graph.Graph {
	var u []*graph.Graph
	u = append(u,
		testutil.PathGraph(0, 0),
		testutil.PathGraph(0, 0, 0),
		testutil.PathGraph(0, 1, 0),
		testutil.PathGraph(0, 0, 0, 0),
		testutil.PathGraph(0, 1, 2, 3),
		testutil.CycleGraph(0, 0, 0),
		testutil.CycleGraph(0, 0, 0, 0),
		testutil.CycleGraph(0, 1, 0, 1),
	)
	star := graph.New(4)
	for i := 0; i < 4; i++ {
		star.AddVertex(0)
	}
	star.MustAddEdge(0, 1)
	star.MustAddEdge(0, 2)
	star.MustAddEdge(0, 3)
	u = append(u, star)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 30; i++ {
		u = append(u, testutil.RandomConnectedGraph(rng, 3+rng.Intn(4), rng.Intn(3), 2))
	}
	return u
}

func TestSkinnyConstraintSatisfied(t *testing.T) {
	c := SkinnyConstraint{L: 2, Delta: 1}
	if !c.Satisfied(testutil.PathGraph(0, 0, 0)) {
		t.Error("bare length-2 path is 2-long 1-skinny")
	}
	if c.Satisfied(testutil.PathGraph(0, 0, 0, 0)) {
		t.Error("length-3 path is not 2-long")
	}
	if c.Name() == "" {
		t.Error("name empty")
	}
}

// TestSkinnyReducibleAndContinuousOnTrees: the paper's framework needs
// skinny to be reducible; the minimal patterns are exactly the bare
// l-paths. Continuity holds on the tree fragment of the universe (the
// cyclic gap is documented in TestGrowthParadigmGap).
func TestSkinnyReducibleAndContinuousOnTrees(t *testing.T) {
	c := SkinnyConstraint{L: 2, Delta: 1}
	wit := CheckReducible(c, smallUniverse())
	if len(wit) == 0 {
		t.Fatal("skinny constraint should be reducible")
	}
	sawBarePath := false
	for _, w := range wit {
		switch {
		case w.M() == 2 && w.N() == 3:
			sawBarePath = true // the bare l-path, Stage I's anchors
		case w.M() >= w.N():
			// Cyclic minimal patterns exist too (e.g. the labeled C4 of
			// TestGrowthParadigmGap): Stage I's frequent paths are not
			// the complete minimal-pattern set. See DESIGN.md §8.
		default:
			t.Errorf("unexpected acyclic non-path minimal pattern %v (edges %v)", w.Labels(), w.Edges())
		}
	}
	if !sawBarePath {
		t.Error("bare l-paths should be minimal skinny patterns")
	}
	var trees []*graph.Graph
	for _, p := range smallUniverse() {
		if p.M() == p.N()-1 {
			trees = append(trees, p)
		}
	}
	if v := CheckContinuous(c, trees); len(v) != 0 {
		t.Errorf("skinny constraint discontinuous on %d tree patterns", len(v))
	}
}

// TestMaxDegreeNotReducible reproduces the paper's Section 5.2 argument:
// MaxDegree < K has no minimal satisfying pattern with edges, because
// removing any edge keeps the constraint satisfied.
func TestMaxDegreeNotReducible(t *testing.T) {
	c := MaxDegreeConstraint{K: 3}
	if wit := CheckReducible(c, smallUniverse()); len(wit) != 0 {
		t.Errorf("MaxDegree should have no non-trivial minimal patterns, got %d", len(wit))
	}
}

// TestRegularDegenerate reproduces the paper's Section 5.3 argument
// about the equal-degree constraint. Removing any edge from a connected
// regular graph breaks regularity, so under the letter of Property 2
// every satisfying pattern is itself "minimal" — pattern clusters are
// singletons and constraint-preserving growth can never reach one
// satisfying pattern from another. The framework degenerates: stage 1
// would have to enumerate every target directly (minimal patterns of
// unbounded size), which is the failure the paper's informal "not
// continuous" claim points at.
func TestRegularNotContinuous(t *testing.T) {
	c := RegularConstraint{}
	for _, p := range smallUniverse() {
		// Skip the single edge: its single-vertex sub-pattern is
		// vacuously regular.
		if !c.Satisfied(p) || p.M() <= 1 {
			continue
		}
		if !IsMinimalPattern(c, p) {
			t.Errorf("regular pattern with a regular one-edge sub-pattern found (%v %v); "+
				"connected regular patterns should all be minimal", p.Labels(), p.Edges())
		}
	}
	// Minimal patterns of unbounded size exist (cycles of every length),
	// so no finite k bounds the stage-1 anchor set.
	for n := 3; n <= 6; n++ {
		labels := make([]graph.Label, n)
		cyc := testutil.CycleGraph(labels...)
		if !IsMinimalPattern(c, cyc) {
			t.Errorf("C%d should be a minimal equal-degree pattern", n)
		}
	}
	if !c.Satisfied(testutil.CycleGraph(0, 0, 0, 0)) {
		t.Error("cycle is regular")
	}
	if c.Satisfied(testutil.PathGraph(0, 0, 0)) {
		t.Error("path of 3 is not regular")
	}
	if !c.Satisfied(graph.New(0)) {
		t.Error("empty graph vacuously regular")
	}
}

func TestIsMinimalPattern(t *testing.T) {
	c := SkinnyConstraint{L: 2, Delta: 2}
	if !IsMinimalPattern(c, testutil.PathGraph(0, 1, 2)) {
		t.Error("bare 2-path is minimal")
	}
	withTwig := testutil.PathGraph(0, 1, 2)
	tw := withTwig.AddVertex(3)
	withTwig.MustAddEdge(1, tw)
	if IsMinimalPattern(c, withTwig) {
		t.Error("path+twig is not minimal (drop the twig)")
	}
}

func TestDirectIndexServesManyRequests(t *testing.T) {
	g := testutil.PathGraph(0, 1, 2, 3, 4, 5)
	ix, err := BuildIndex([]*graph.Graph{g}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for l := 2; l <= 5; l++ {
		mp, err := ix.MinimalPatterns(l)
		if err != nil {
			t.Fatalf("MinimalPatterns(%d): %v", l, err)
		}
		if len(mp) != 6-l {
			t.Errorf("l=%d: %d minimal patterns, want %d", l, len(mp), 6-l)
		}
		res, err := ix.Mine(DefaultOptions(1, l, 0))
		if err != nil {
			t.Fatalf("Mine(l=%d): %v", l, err)
		}
		if len(res.Patterns) != 6-l {
			t.Errorf("l=%d: %d patterns, want %d", l, len(res.Patterns), 6-l)
		}
	}
}

func TestBuildIndexErrors(t *testing.T) {
	if _, err := BuildIndex(nil, 1); err == nil {
		t.Error("empty graph list should error")
	}
}
