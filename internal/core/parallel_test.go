package core

import (
	"sync"
	"testing"

	"skinnymine/internal/graph"
	"skinnymine/internal/testutil"
)

// TestDeterminismAcrossConcurrency is the parallel-output regression
// test: mining the same synthetic graph at Concurrency 1 and 8 must
// produce identical canonical codes, supports, diameter lengths, and
// ordering.
func TestDeterminismAcrossConcurrency(t *testing.T) {
	g := testutil.SynthWorkload(42, 40)

	base := DefaultOptions(2, 4, 2)
	base.MinLength = 3
	seq := base
	seq.Concurrency = 1
	par := base
	par.Concurrency = 8

	rs, err := Mine(g, seq)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Mine(g, par)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Patterns) == 0 {
		t.Fatal("workload mined no patterns; determinism test is vacuous")
	}
	if len(rs.Patterns) != len(rp.Patterns) {
		t.Fatalf("Concurrency 1 mined %d patterns, Concurrency 8 mined %d",
			len(rs.Patterns), len(rp.Patterns))
	}
	for i := range rs.Patterns {
		ps, pp := rs.Patterns[i], rp.Patterns[i]
		if ps.CodeKey() != pp.CodeKey() {
			t.Fatalf("pattern %d: canonical code differs between Concurrency 1 and 8", i)
		}
		if ps.Support() != pp.Support() {
			t.Fatalf("pattern %d: support %d (sequential) vs %d (parallel)",
				i, ps.Support(), pp.Support())
		}
		if ps.DiamLen != pp.DiamLen {
			t.Fatalf("pattern %d: diameter length %d vs %d", i, ps.DiamLen, pp.DiamLen)
		}
	}
}

// TestConcurrentIndexRequests serves one warmed DirectIndex from
// several goroutines at different Concurrency settings — the direct
// mining deployment of Figure 2. Under -race this pins the promise
// that requests never write shared miner state; all results must be
// identical.
func TestConcurrentIndexRequests(t *testing.T) {
	g := testutil.SynthWorkload(42, 40)
	ix, err := BuildIndex([]*graph.Graph{g}, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(2, 4, 2)
	opt.Concurrency = 1
	want, err := ix.Mine(opt) // warms the path-level cache
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]*Result, 4)
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := opt
			req.Concurrency = i + 1
			results[i], errs[i] = ix.Mine(req)
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if len(res.Patterns) != len(want.Patterns) {
			t.Fatalf("request %d: %d patterns, want %d", i, len(res.Patterns), len(want.Patterns))
		}
		for j := range res.Patterns {
			if res.Patterns[j].CodeKey() != want.Patterns[j].CodeKey() {
				t.Fatalf("request %d: pattern %d differs from the warm sequential run", i, j)
			}
		}
	}
}

// TestStageIDeterminismAcrossConcurrency pins the DiamMine half alone:
// parallel bucket joins must yield the same frequent paths, supports,
// and embedding lists as the sequential ones.
func TestStageIDeterminismAcrossConcurrency(t *testing.T) {
	g := testutil.SynthWorkload(7, 250)
	for _, l := range []int{2, 3, 5, 7} {
		seq, err := NewDiamMiner([]*graph.Graph{g}, 2)
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewDiamMiner([]*graph.Graph{g}, 2)
		if err != nil {
			t.Fatal(err)
		}
		par.SetConcurrency(8)
		ps, err := seq.Mine(l)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := par.Mine(l)
		if err != nil {
			t.Fatal(err)
		}
		if len(ps) != len(pp) {
			t.Fatalf("l=%d: %d paths sequential vs %d parallel", l, len(ps), len(pp))
		}
		for i := range ps {
			a, b := ps[i], pp[i]
			if graph.CompareLabelSeqs(a.Seq, b.Seq) != 0 || a.Support != b.Support {
				t.Fatalf("l=%d path %d: (seq %v sup %d) vs (par %v sup %d)",
					l, i, a.Seq, a.Support, b.Seq, b.Support)
			}
			if len(a.Embs) != len(b.Embs) {
				t.Fatalf("l=%d path %d: %d embeddings vs %d", l, i, len(a.Embs), len(b.Embs))
			}
			for j := range a.Embs {
				if a.Embs[j].key() != b.Embs[j].key() {
					t.Fatalf("l=%d path %d: embedding order diverges at %d", l, i, j)
				}
			}
		}
	}
}
