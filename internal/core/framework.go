package core

import (
	"context"
	"fmt"

	"skinnymine/internal/graph"
)

// Direct mining framework (Section 5 of the paper). A constrained
// frequent pattern mining problem fits the framework when its constraint
// is reducible (Property 1: non-trivial minimal constraint-satisfying
// patterns exist) and continuous (Property 2: every satisfying pattern is
// reachable from a minimal one by single-edge steps through satisfying
// patterns). Stage 1 mines the minimal patterns (offline, indexable);
// Stage 2 grows them constraint-preservingly per request.

// Constraint is a boolean predicate f_C on the pattern space.
type Constraint interface {
	// Name identifies the constraint in diagnostics.
	Name() string
	// Satisfied reports f_C(P) for a candidate pattern graph.
	Satisfied(p *graph.Graph) bool
}

// SkinnyConstraint is the paper's running example: the pattern's
// canonical diameter has length exactly L and every vertex lies within
// Delta of it (Definition 7).
type SkinnyConstraint struct {
	L     int32
	Delta int32
}

// Name implements Constraint.
func (c SkinnyConstraint) Name() string {
	return fmt.Sprintf("%d-long %d-skinny", c.L, c.Delta)
}

// Satisfied implements Constraint.
func (c SkinnyConstraint) Satisfied(p *graph.Graph) bool {
	_, ok := p.IsLLongDeltaSkinny(c.L, c.Delta)
	return ok
}

// MaxDegreeConstraint demands every vertex degree be below K. The paper
// uses it as the canonical NON-reducible constraint: its only minimal
// satisfying patterns are single vertices, so no non-trivial anchor
// exists and direct mining degenerates to full enumeration.
type MaxDegreeConstraint struct{ K int }

// Name implements Constraint.
func (c MaxDegreeConstraint) Name() string { return fmt.Sprintf("MaxDegree<%d", c.K) }

// Satisfied implements Constraint.
func (c MaxDegreeConstraint) Satisfied(p *graph.Graph) bool {
	for v := 0; v < p.N(); v++ {
		if p.Degree(graph.V(v)) >= c.K {
			return false
		}
	}
	return true
}

// RegularConstraint demands all vertices share one degree. The paper
// uses it as the canonical NON-continuous constraint: removing one edge
// from a regular graph almost never leaves a regular graph, so pattern
// clusters are not connected under single-edge steps.
type RegularConstraint struct{}

// Name implements Constraint.
func (RegularConstraint) Name() string { return "EqualDegree" }

// Satisfied implements Constraint.
func (RegularConstraint) Satisfied(p *graph.Graph) bool {
	if p.N() == 0 {
		return true
	}
	d := p.Degree(0)
	for v := 1; v < p.N(); v++ {
		if p.Degree(graph.V(v)) != d {
			return false
		}
	}
	return true
}

// IsMinimalPattern reports whether p satisfies c while no single-edge-
// removed connected sub-pattern does (the minimal constraint-satisfying
// patterns of Section 5.2).
func IsMinimalPattern(c Constraint, p *graph.Graph) bool {
	if !c.Satisfied(p) {
		return false
	}
	for _, sub := range edgeDeletedSubpatterns(p) {
		if c.Satisfied(sub) {
			return false
		}
	}
	return true
}

// edgeDeletedSubpatterns returns every connected pattern obtained from p
// by deleting one edge (dropping vertices isolated by the deletion).
// Deleting the only edge of a single-edge pattern yields its two
// single-vertex sub-patterns, which count: Property 1 explicitly rules
// out trivial single-vertex minimality.
func edgeDeletedSubpatterns(p *graph.Graph) []*graph.Graph {
	var out []*graph.Graph
	for _, e := range p.Edges() {
		q := p.Clone()
		q.RemoveEdge(e.U, e.W)
		var keep []graph.V
		for v := 0; v < q.N(); v++ {
			if q.Degree(graph.V(v)) > 0 {
				keep = append(keep, graph.V(v))
			}
		}
		if len(keep) == 0 {
			for _, end := range []graph.V{e.U, e.W} {
				sv := graph.New(1)
				sv.AddVertex(p.Label(end))
				out = append(out, sv)
			}
			continue
		}
		sub, _ := q.InducedSubgraph(keep)
		if sub.M() != q.M() || !sub.Connected() {
			continue
		}
		out = append(out, sub)
	}
	return out
}

// CheckReducible empirically tests Property 1 over a finite universe of
// candidate patterns: it returns the minimal constraint-satisfying
// patterns with at least one edge found in the universe. A constraint is
// reducible on the universe when the witness list is non-empty.
func CheckReducible(c Constraint, universe []*graph.Graph) []*graph.Graph {
	var witnesses []*graph.Graph
	for _, p := range universe {
		if p.M() >= 1 && IsMinimalPattern(c, p) {
			witnesses = append(witnesses, p)
		}
	}
	return witnesses
}

// CheckContinuous empirically tests Property 2 over a universe: every
// satisfying pattern must either be minimal or have a one-edge-smaller
// satisfying sub-pattern. It returns the violating patterns (empty means
// continuous on the universe).
func CheckContinuous(c Constraint, universe []*graph.Graph) []*graph.Graph {
	var violations []*graph.Graph
	for _, p := range universe {
		if !c.Satisfied(p) || IsMinimalPattern(c, p) {
			continue
		}
		ok := false
		for _, sub := range edgeDeletedSubpatterns(p) {
			if c.Satisfied(sub) {
				ok = true
				break
			}
		}
		if !ok {
			violations = append(violations, p)
		}
	}
	return violations
}

// DirectIndex is the pre-computed side of the framework (Figure 2): one
// DiamMiner holding minimal-pattern results keyed by l, shared across
// mining requests. Requests with different l or δ reuse the index.
type DirectIndex struct {
	dm *DiamMiner
}

// BuildIndex pre-computes the minimal-pattern index for the graphs at
// threshold σ. The power-of-two path levels are materialized lazily on
// first use and cached.
func BuildIndex(graphs []*graph.Graph, sigma int) (*DirectIndex, error) {
	dm, err := NewDiamMiner(graphs, sigma)
	if err != nil {
		return nil, err
	}
	return &DirectIndex{dm: dm}, nil
}

// SetConcurrency bounds the worker pool for index materialization
// triggered directly through MinimalPatterns, with the Options
// convention: <= 0 means one worker per available CPU. Mine requests
// use their own Options.Concurrency without touching this setting.
func (ix *DirectIndex) SetConcurrency(n int) { ix.dm.SetConcurrency(n) }

// Concurrency reports the current materialization worker budget, always
// resolved to a positive count.
func (ix *DirectIndex) Concurrency() int { return ix.dm.Concurrency() }

// MinimalPatterns returns the minimal constraint-satisfying patterns for
// diameter length l (the frequent paths of that length).
func (ix *DirectIndex) MinimalPatterns(l int) ([]*PathPattern, error) {
	return ix.MinimalPatternsCtx(context.Background(), l)
}

// MinimalPatternsCtx is MinimalPatterns honoring request cancellation:
// an already-cancelled context returns before any materialization work
// starts. Level materialization itself is an indivisible cached
// computation — once begun its bytes are identical for every caller —
// so cancellation is only observed at the boundary.
func (ix *DirectIndex) MinimalPatternsCtx(ctx context.Context, l int) ([]*PathPattern, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return ix.dm.Mine(l)
}

// Mine serves one (l, δ) request from the index.
func (ix *DirectIndex) Mine(opt Options) (*Result, error) {
	return MineWithIndex(ix.dm, opt)
}
