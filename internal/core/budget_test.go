package core

import (
	"sync/atomic"
	"testing"

	"skinnymine/internal/graph"
	"skinnymine/internal/support"
	"skinnymine/internal/testutil"
)

// newTestMiner mirrors mineWithDiamMiner's miner construction so budget
// accounting can be probed at the growSeed/levelGrow granularity.
func newTestMiner(graphs []*graph.Graph, opt Options, budget int64) *miner {
	maxN := 0
	for _, g := range graphs {
		if g.N() > maxN {
			maxN = g.N()
		}
	}
	m := &miner{
		graphs: graphs,
		opt:    opt,
		stats:  &statCounters{},
		codes:  newCodeSet(),
		maxN:   maxN,
	}
	if budget > 0 {
		m.budget = &atomic.Int64{}
		m.budget.Store(budget)
	}
	m.check = checker{mode: opt.CheckMode, stats: m.stats}
	return m
}

// TestBudgetNotLeakedOnDuplicateSeed pins the growSeed ordering fix: a
// seed that fails canonical-code dedup must not consume a MaxPatterns
// slot, or duplicate seeds silently shrink the usable budget.
func TestBudgetNotLeakedOnDuplicateSeed(t *testing.T) {
	g := testutil.PathGraph(0, 1, 2)
	dm, err := NewDiamMiner([]*graph.Graph{g}, 1)
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := dm.Mine(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) < 2 {
		t.Fatalf("want >= 2 length-1 seeds, got %d", len(seeds))
	}
	opt := DefaultOptions(1, 1, 0)
	opt.Concurrency = 1
	m := newTestMiner([]*graph.Graph{g}, opt, 2)
	sc := m.newGrowScratch()

	if got := m.growSeed(seeds[0], 0, sc); len(got) != 1 {
		t.Fatalf("first grow emitted %d patterns, want 1", len(got))
	}
	if got := m.growSeed(seeds[0], 0, sc); got != nil {
		t.Fatalf("duplicate grow emitted %d patterns, want none", len(got))
	}
	if remaining := m.budget.Load(); remaining != 1 {
		t.Fatalf("duplicate seed leaked a budget slot: %d remaining, want 1", remaining)
	}
	if got := m.growSeed(seeds[1], 0, sc); len(got) != 1 {
		t.Fatalf("second distinct seed got %d patterns, want 1 (slot should be free)", len(got))
	}
}

// TestLevelGrowDropsChildThatFailedToReserve pins the levelGrow fix: a
// child generated after the budget ran dry must not appear in the
// result (the pre-fix code appended it, overshooting MaxPatterns).
func TestLevelGrowDropsChildThatFailedToReserve(t *testing.T) {
	// Diameter 0-1-2 with two pendant leaves (labels 3 and 4) on the
	// middle vertex: two distinct frequent level-1 forward extensions.
	g := graph.New(5)
	for _, l := range []graph.Label{0, 1, 2, 3, 4} {
		g.AddVertex(l)
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(1, 4)

	dm, err := NewDiamMiner([]*graph.Graph{g}, 1)
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := dm.Mine(2)
	if err != nil {
		t.Fatal(err)
	}
	var seed *PathPattern
	for _, s := range seeds {
		if len(s.Seq) == 3 && s.Seq[0] == 0 && s.Seq[1] == 1 && s.Seq[2] == 2 {
			seed = s
		}
	}
	if seed == nil {
		t.Fatal("seed (0,1,2) not mined")
	}

	opt := DefaultOptions(1, 2, 1)
	opt.Concurrency = 1
	m := newTestMiner([]*graph.Graph{g}, opt, 1)
	sc := m.newGrowScratch()
	p0 := newPatternFromPath(seed, m.graphs, 0)
	if !m.dedup(p0) {
		t.Fatal("fresh pattern failed dedup")
	}
	// Budget of 1: the first child takes the slot, the second is
	// generated but must be dropped, not returned.
	kids := m.levelGrow(p0, 1, sc)
	if len(kids) != 1 {
		t.Fatalf("levelGrow returned %d children with a budget of 1, want exactly 1", len(kids))
	}
	if m.budget.Load() > 0 {
		t.Fatalf("budget not consumed: %d remaining", m.budget.Load())
	}
}

// TestMaxPatternsReturnsExactCount pins the end-to-end guarantee: with
// validation on and no closed filtering, a sequential run returns
// exactly min(MaxPatterns, total) patterns — the cap must not discard
// valid patterns while invalid or over-budget ones occupied slots.
func TestMaxPatternsReturnsExactCount(t *testing.T) {
	g := testutil.SynthWorkload(21, 60)
	base := DefaultOptions(2, 3, 1)
	base.Concurrency = 1

	full, err := Mine(g, base)
	if err != nil {
		t.Fatal(err)
	}
	total := len(full.Patterns)
	if total < 4 {
		t.Fatalf("workload mined only %d patterns; test needs a few", total)
	}
	for _, k := range []int{1, 2, total - 1, total, total + 5} {
		opt := base
		opt.MaxPatterns = k
		res, err := Mine(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		want := k
		if total < k {
			want = total
		}
		if len(res.Patterns) != want {
			t.Errorf("MaxPatterns=%d: got %d patterns, want %d (total %d)",
				k, len(res.Patterns), want, total)
		}
	}
}

// TestClosedOnlyEqualSupportChain pins closedOnly on a chain
// P1 ⊂ P2 ⊂ P3 of equal support in every input order: only the maximal
// pattern is closed. The pre-fix in-place filter read partially
// overwritten state and was correct only by a transitivity accident.
func TestClosedOnlyEqualSupportChain(t *testing.T) {
	mk := func(labels ...graph.Label) *Pattern {
		pg := testutil.PathGraph(labels...)
		p := &Pattern{G: pg, DiamLen: int32(len(labels) - 1)}
		p.Embs = support.NewSet(pg.Edges(), 0)
		// Two synthetic embeddings -> support 2 for every pattern.
		for base := graph.V(0); base < 2; base++ {
			m := make([]graph.V, len(labels))
			for i := range m {
				m[i] = base*10 + graph.V(i)
			}
			p.Embs.Add(support.Embedding{GID: 0, Map: m})
		}
		return p
	}
	p1 := mk(5, 6)
	p2 := mk(5, 6, 7)
	p3 := mk(5, 6, 7, 8)

	orders := [][]*Pattern{
		{p1, p2, p3},
		{p3, p2, p1},
		{p2, p3, p1},
		{p3, p1, p2},
	}
	for oi, ps := range orders {
		in := append([]*Pattern(nil), ps...)
		got := closedOnly(in)
		if len(got) != 1 || got[0] != p3 {
			t.Errorf("order %d: closedOnly kept %d patterns, want exactly the maximal one", oi, len(got))
		}
		// The input slice must be left intact (no aliasing writes).
		for i := range ps {
			if in[i] != ps[i] {
				t.Errorf("order %d: closedOnly overwrote its input at %d", oi, i)
			}
		}
	}
}
