package core

import (
	"math/rand"
	"testing"

	"skinnymine/internal/graph"
	"skinnymine/internal/synth"
)

// Ablation benchmarks for the two design choices the paper argues for:
//
//   - maintaining the canonical diameter with the D_H/D_T indices
//     (CheckFast) versus recomputing it from scratch after every
//     extension (CheckNaive, the strawman of Section 3.3);
//   - mining frequent l-paths by doubling+merge (DiamMine) versus
//     depth-first path enumeration.

func ablationGraph() *graph.Graph {
	rng := rand.New(rand.NewSource(99))
	g := synth.ER(rng, 1500, 3, 40)
	for i := 0; i < 4; i++ {
		p := synth.RandomSkinnyPattern(rng, synth.SkinnySpec{
			V: 16, Diam: 8, Delta: 2, LabelBase: 30, LabelRange: 8,
		})
		synth.Inject(rng, g, p, 2, 0)
	}
	return g
}

func benchMineMode(b *testing.B, mode CheckMode) {
	g := ablationGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := DefaultOptions(2, 6, 1)
		opt.CheckMode = mode
		opt.MaxEmbeddings = 1000
		opt.MaxPatterns = 5000
		if _, err := Mine(g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_CheckFast measures mining with the paper's index-
// based constraint maintenance.
func BenchmarkAblation_CheckFast(b *testing.B) { benchMineMode(b, CheckFast) }

// BenchmarkAblation_CheckNaive measures mining with from-scratch
// canonical-diameter recomputation per extension.
func BenchmarkAblation_CheckNaive(b *testing.B) { benchMineMode(b, CheckNaive) }

// BenchmarkAblation_DiamMineDoubling measures Stage I as published
// (concatenate powers of two, merge overlaps).
func BenchmarkAblation_DiamMineDoubling(b *testing.B) {
	g := ablationGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dm, err := NewDiamMiner([]*graph.Graph{g}, 2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dm.Mine(7); err != nil { // non-power-of-two: exercises merge
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_PathDFS measures the alternative Stage I: plain
// depth-first enumeration of all simple paths of length l with support
// counting, i.e. incremental edge extension.
func BenchmarkAblation_PathDFS(b *testing.B) {
	g := ablationGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := make(map[string]map[string]struct{})
		var dfs func(p graph.Path)
		dfs = func(p graph.Path) {
			if p.Len() == 7 {
				seq := graph.CanonicalLabelSeq(p.LabelSeq(g))
				key := graph.LabelSeqKey(seq)
				if counts[key] == nil {
					counts[key] = make(map[string]struct{})
				}
				counts[key][PathEmb{Seq: p}.subgraphKey()] = struct{}{}
				return
			}
			last := p[len(p)-1]
			for _, w := range g.Neighbors(last) {
				fresh := true
				for _, v := range p {
					if v == w {
						fresh = false
						break
					}
				}
				if fresh {
					dfs(append(p, w))
				}
			}
		}
		for v := 0; v < g.N(); v++ {
			dfs(graph.Path{graph.V(v)})
		}
		frequent := 0
		for _, subs := range counts {
			if len(subs) >= 2 {
				frequent++
			}
		}
		_ = frequent
	}
}
