package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"skinnymine/internal/core"
	"skinnymine/internal/graph"
	"skinnymine/internal/support"
	"skinnymine/internal/synth"
)

// This file reproduces the real-data experiments of Section 6.3 on the
// simulated DBLP and Weibo corpora (see DESIGN.md §5 for the
// substitution rationale).

// RealDataResult summarizes one real-data mining run.
type RealDataResult struct {
	Graphs      int
	Patterns    int
	Runtime     time.Duration
	LongestDiam int
	// Examples renders a few long patterns in the domain's label
	// vocabulary, the analogue of the paper's Figures 21-22 and 24.
	Examples []string
}

// RunDBLP mines temporal collaboration patterns from the simulated DBLP
// author timelines: frequency threshold 2, diameter at least the length
// constraint (20 years in the paper; scaled here).
func RunDBLP(cfg Config) (*RealDataResult, error) {
	rng := cfg.rng()
	years := cfg.scaled(21, 9)
	authors := cfg.scaled(200, 12)
	db := synth.DBLP(rng, synth.DBLPOptions{
		Authors: authors, Years: years, Archetypes: authors / 4,
	})
	l := years - 1
	t0 := time.Now()
	opt := core.DefaultOptions(2, l, 1)
	opt.Concurrency = cfg.workers()
	opt.Measure = support.GraphCount
	opt.GreedyGrow = true
	res, err := core.MineDB(db, opt)
	if err != nil {
		return nil, err
	}
	out := &RealDataResult{
		Graphs:   len(db),
		Patterns: len(res.Patterns),
		Runtime:  time.Since(t0),
	}
	sort.Slice(res.Patterns, func(i, j int) bool {
		return res.Patterns[i].G.N() > res.Patterns[j].G.N()
	})
	for i, p := range res.Patterns {
		if int(p.DiamLen) > out.LongestDiam {
			out.LongestDiam = int(p.DiamLen)
		}
		if i < 3 {
			out.Examples = append(out.Examples, renderDBLPPattern(p))
		}
	}
	return out, nil
}

// renderDBLPPattern prints a timeline pattern as year slots with their
// attached collaboration labels, like Figures 21-22.
func renderDBLPPattern(p *core.Pattern) string {
	var b strings.Builder
	fmt.Fprintf(&b, "span=%d years, support=%d: ", p.DiamLen, p.Support())
	diam := p.Diam()
	onDiam := make(map[graph.V]int)
	for i, v := range diam {
		onDiam[v] = i
	}
	slots := make([][]string, len(diam))
	for v := 0; v < p.G.N(); v++ {
		if _, isYear := onDiam[graph.V(v)]; isYear {
			continue
		}
		for _, w := range p.G.Neighbors(graph.V(v)) {
			if yi, ok := onDiam[w]; ok {
				slots[yi] = append(slots[yi], synth.DBLPLabelName(p.G.Label(graph.V(v))))
			}
		}
	}
	for yi, s := range slots {
		if yi > 0 {
			b.WriteString("-")
		}
		if len(s) == 0 {
			b.WriteString("·")
		} else {
			sort.Strings(s)
			b.WriteString("[" + strings.Join(s, ",") + "]")
		}
	}
	return b.String()
}

// RunWeibo mines diffusion patterns from the simulated conversation
// corpus: length constraint 10 (long diffusion paths), frequency 2.
func RunWeibo(cfg Config) (*RealDataResult, error) {
	rng := cfg.rng()
	convs := cfg.scaled(500, 20)
	chainLen := cfg.scaled(13, 10)
	db := synth.Weibo(rng, synth.WeiboOptions{
		Conversations:      convs,
		AvgSize:            cfg.scaled(30, 12),
		ChainConversations: convs / 5,
		ChainLength:        chainLen,
	})
	t0 := time.Now()
	opt := core.DefaultOptions(2, chainLen, 3)
	opt.Concurrency = cfg.workers()
	opt.MinLength = 10
	if opt.MinLength > chainLen {
		opt.MinLength = chainLen
	}
	opt.Measure = support.GraphCount
	opt.GreedyGrow = true
	res, err := core.MineDB(db, opt)
	if err != nil {
		return nil, err
	}
	out := &RealDataResult{
		Graphs:   len(db),
		Patterns: len(res.Patterns),
		Runtime:  time.Since(t0),
	}
	sort.Slice(res.Patterns, func(i, j int) bool {
		return res.Patterns[i].G.N() > res.Patterns[j].G.N()
	})
	for i, p := range res.Patterns {
		if int(p.DiamLen) > out.LongestDiam {
			out.LongestDiam = int(p.DiamLen)
		}
		if i < 3 {
			out.Examples = append(out.Examples, renderWeiboPattern(p))
		}
	}
	return out, nil
}

// renderWeiboPattern prints a diffusion chain with its twigs, like
// Figure 24.
func renderWeiboPattern(p *core.Pattern) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chain=%d hops (δ=%d), support=%d: ", p.DiamLen, p.MaxLevel(), p.Support())
	diam := p.Diam()
	for i, v := range diam {
		if i > 0 {
			b.WriteString("->")
		}
		b.WriteString(synth.WeiboLabelName(p.G.Label(v)))
	}
	return b.String()
}
