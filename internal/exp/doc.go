// Package exp is the experiment harness: one entry point per table and
// figure of the paper's evaluation (Section 6), each returning typed
// rows/series that cmd/experiments renders in the paper's layout and
// bench_test.go wraps as benchmarks.
//
// # Paper correspondence
//
// RunPatternDistribution and RunTransaction cover Figures 4–10
// (pattern recovery vs the baselines, single-graph and transaction
// settings), RunVsMoSS/RunVsSUBDUE/RunVsSpiderMine and RunScalability
// the runtime curves of Figures 11–17, RunSkinninessConstraint Figure
// 18, RunRuntimeTable Figure 20's five-algorithm table, and
// RunDBLP/RunWeibo the case studies of Figures 21–24. Config.Scale
// shrinks graph sizes so the whole suite
// runs in seconds; Scale=1 reproduces the paper's parameters. Shapes
// (who wins, where curves bend) are preserved across scales; absolute
// numbers are not expected to match the authors' 2013 C++/testbed
// figures.
//
// # Concurrency and ownership
//
// Each Run* call is self-contained — it seeds its own generators from
// Config.Seed and owns everything it builds — so distinct calls may run
// concurrently. The harness defaults to the sequential mining path for
// fair baseline timings; Config.Concurrency opts into the parallel
// engine where a run measures it deliberately.
package exp
