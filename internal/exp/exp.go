package exp

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Config controls experiment sizing.
type Config struct {
	// Seed drives all RNGs; runs are reproducible per seed.
	Seed int64
	// Scale in (0,1] multiplies graph sizes. 1 = paper scale.
	Scale float64
	// Concurrency sets the worker count of every SkinnyMine run. The
	// zero value (and 1) means the paper's sequential algorithm, so the
	// runtime comparisons against the single-threaded baseline miners
	// stay fair by default; set >= 2 (or pass -concurrency 0 through
	// cmd/experiments for one worker per CPU) to time the parallel
	// engine. SkinnyMine's output is deterministic at every setting.
	Concurrency int
}

// workers resolves Concurrency for a mining run: any value below 2
// runs the sequential algorithm.
func (c Config) workers() int {
	if c.Concurrency < 2 {
		return 1
	}
	return c.Concurrency
}

// DefaultConfig is the quick, laptop-friendly configuration.
func DefaultConfig() Config { return Config{Seed: 1, Scale: 0.1} }

func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

// scaled applies the scale factor with a floor.
func (c Config) scaled(n, floor int) int {
	v := int(float64(n) * c.Scale)
	if v < floor {
		return floor
	}
	return v
}

// Series is one plotted line: X values and Y values.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Hist is a pattern-size histogram for one algorithm (Figures 4-10).
type Hist struct {
	Algo  string
	Sizes map[int]int // pattern |V| -> count
}

// Table is a rendered text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render writes the table in a fixed-width layout.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
}

// HistTable renders pattern-size histograms side by side.
func HistTable(title string, hists []Hist) *Table {
	sizes := map[int]struct{}{}
	for _, h := range hists {
		for s := range h.Sizes {
			sizes[s] = struct{}{}
		}
	}
	var order []int
	for s := range sizes {
		order = append(order, s)
	}
	sort.Ints(order)
	t := &Table{Title: title, Header: []string{"|V|"}}
	for _, h := range hists {
		t.Header = append(t.Header, h.Algo)
	}
	for _, s := range order {
		row := []string{fmt.Sprint(s)}
		for _, h := range hists {
			row = append(row, fmt.Sprint(h.Sizes[s]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// SeriesTable renders aligned series (one X column, one Y column each).
func SeriesTable(title string, xLabel string, series []Series) *Table {
	t := &Table{Title: title, Header: []string{xLabel}}
	for _, s := range series {
		t.Header = append(t.Header, s.Name)
	}
	if len(series) == 0 {
		return t
	}
	for i := range series[0].X {
		row := []string{trimFloat(series[0].X[i])}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, trimFloat(s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprint(int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

func seconds(d time.Duration) float64 { return d.Seconds() }
