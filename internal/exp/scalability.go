package exp

import (
	"time"

	"skinnymine/internal/core"
	"skinnymine/internal/graph"
	"skinnymine/internal/miners/moss"
	"skinnymine/internal/miners/spidermine"
	"skinnymine/internal/miners/subdue"
	"skinnymine/internal/synth"
)

// This file reproduces the scalability experiments: Figures 11-15
// (runtime against competing algorithms and against graph size) and
// Figures 16-19 (runtime against the l and δ constraints).

// RunVsMoSS reproduces Figure 11: SkinnyMine vs MoSS runtime on sparse
// graphs (deg=2, f=70) with |V| from 100 to 500.
func RunVsMoSS(cfg Config) ([]Series, error) {
	sizes := []int{100, 200, 300, 400, 500}
	f := 70 // label count stays at paper scale: shrinking it inflates label collisions
	sm := Series{Name: "SkinnyMine"}
	ms := Series{Name: "MoSS"}
	for _, n0 := range sizes {
		n := cfg.scaled(n0, 40)
		rng := cfg.rng()
		g := synth.ER(rng, n, 2, f)
		t0 := time.Now()
		opt := core.DefaultOptions(2, 4, 2)
		opt.Concurrency = cfg.workers()
		opt.MinLength = 2
		if _, err := core.Mine(g, opt); err != nil {
			return nil, err
		}
		sm.X = append(sm.X, float64(n0))
		sm.Y = append(sm.Y, seconds(time.Since(t0)))
		t0 = time.Now()
		if _, err := moss.Mine(g, moss.Options{Support: 2, MaxEdges: 8}); err != nil {
			return nil, err
		}
		ms.X = append(ms.X, float64(n0))
		ms.Y = append(ms.Y, seconds(time.Since(t0)))
	}
	return []Series{ms, sm}, nil
}

// RunVsSUBDUE reproduces Figure 12: runtime vs SUBDUE with deg=3,
// f=100, σ=2, |V| from 500 to 10500.
func RunVsSUBDUE(cfg Config) ([]Series, error) {
	sizes := []int{500, 1500, 3000, 4500, 6000, 7500, 9000, 10500}
	f := 100
	sk := Series{Name: "SkinnyMine"}
	sb := Series{Name: "SUBDUE"}
	for _, n0 := range sizes {
		n := cfg.scaled(n0, 100)
		rng := cfg.rng()
		g := synth.ER(rng, n, 3, f)
		t0 := time.Now()
		opt := core.DefaultOptions(2, 4, 2)
		opt.Concurrency = cfg.workers()
		opt.GreedyGrow = true
		if _, err := core.Mine(g, opt); err != nil {
			return nil, err
		}
		sk.X = append(sk.X, float64(n0))
		sk.Y = append(sk.Y, seconds(time.Since(t0)))
		t0 = time.Now()
		if _, err := subdue.Mine(g, subdue.Options{Beam: 4, Limit: 60, MaxSize: 10, Best: 10}); err != nil {
			return nil, err
		}
		sb.X = append(sb.X, float64(n0))
		sb.Y = append(sb.Y, seconds(time.Since(t0)))
	}
	return []Series{sb, sk}, nil
}

// RunVsSpiderMine reproduces Figure 13: runtime vs SpiderMine (K=10)
// with deg=3, f=100, σ=2, |V| from 1k to 50k.
func RunVsSpiderMine(cfg Config) ([]Series, error) {
	sizes := []int{1000, 5000, 10000, 20000, 30000, 40000, 50000}
	f := 100
	sk := Series{Name: "SkinnyMine"}
	sp := Series{Name: "SpiderMine"}
	for _, n0 := range sizes {
		n := cfg.scaled(n0, 150)
		rng := cfg.rng()
		g := synth.ER(rng, n, 3, f)
		t0 := time.Now()
		opt := core.DefaultOptions(2, 4, 2)
		opt.Concurrency = cfg.workers()
		opt.GreedyGrow = true
		if _, err := core.Mine(g, opt); err != nil {
			return nil, err
		}
		sk.X = append(sk.X, float64(n0))
		sk.Y = append(sk.Y, seconds(time.Since(t0)))
		t0 = time.Now()
		_, err := spidermine.Mine(g, spidermine.Options{
			K: 10, R: 1, Dmax: 4, Seeds: cfg.scaled(100, 20), Support: 2, Rng: rng,
		})
		if err != nil {
			return nil, err
		}
		sp.X = append(sp.X, float64(n0))
		sp.Y = append(sp.Y, seconds(time.Since(t0)))
	}
	return []Series{sp, sk}, nil
}

// ScalabilityPoint is one Figure 14/15 measurement.
type ScalabilityPoint struct {
	V          int
	DiamMine   time.Duration
	LevelGrow  time.Duration
	NumPattern int
}

// RunScalability reproduces Figures 14 and 15: SkinnyMine on graphs up
// to 300k vertices (deg=3, f=80), mining all l>=4 δ=3 patterns with
// σ=2, reporting per-stage runtime and pattern counts.
func RunScalability(cfg Config) ([]ScalabilityPoint, error) {
	sizes := []int{50000, 100000, 150000, 200000, 250000, 300000}
	f := 80
	var out []ScalabilityPoint
	for _, n0 := range sizes {
		n := cfg.scaled(n0, 300)
		rng := cfg.rng()
		g := synth.ER(rng, n, 3, f)
		opt := core.DefaultOptions(2, 8, 3)
		opt.Concurrency = cfg.workers()
		opt.MinLength = 4
		opt.MaxPatterns = 20000
		opt.MaxEmbeddings = 1000
		res, err := core.Mine(g, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, ScalabilityPoint{
			V:          n0,
			DiamMine:   res.Stats.DiamMineTime,
			LevelGrow:  res.Stats.LevelGrowTime,
			NumPattern: len(res.Patterns),
		})
	}
	return out, nil
}

// ConstraintPoint is one Figure 16/17 measurement: per-l stage runtime
// and output count.
type ConstraintPoint struct {
	L          int
	DiamMine   time.Duration
	NumPaths   int
	LevelGrow  time.Duration
	NumPattern int
}

// RunDiameterConstraint reproduces Figures 16 and 17: a 10k-vertex
// graph (deg=3, f=10, σ=2, δ=2); for each l from 2 to 18, the runtime
// and output size of DiamMine and LevelGrow. The minimal-pattern index
// is shared across requests, exactly the direct-mining deployment of
// Figure 2 — the plateau past l=8 comes from the cached power-of-two
// path levels (Reducibility at work), and LevelGrow's runtime tracks
// its output count (Continuity at work).
func RunDiameterConstraint(cfg Config, maxL int) ([]ConstraintPoint, error) {
	n := cfg.scaled(10000, 400)
	rng := cfg.rng()
	g := synth.ER(rng, n, 3, 10)
	ix, err := core.BuildIndex([]*graph.Graph{g}, 2)
	if err != nil {
		return nil, err
	}
	// The direct MinimalPatterns calls below materialize the path
	// levels, so the worker budget must be set on the index itself —
	// by the time ix.Mine threads its own Concurrency, the cache is
	// already populated.
	ix.SetConcurrency(cfg.workers())
	var out []ConstraintPoint
	for l := 2; l <= maxL; l++ {
		t0 := time.Now()
		paths, err := ix.MinimalPatterns(l)
		if err != nil {
			return nil, err
		}
		dmTime := time.Since(t0)
		opt := core.DefaultOptions(2, l, 2)
		opt.Concurrency = cfg.workers()
		opt.MaxPatterns = 5000
		opt.MaxEmbeddings = 500
		res, err := ix.Mine(opt)
		if err != nil {
			return nil, err
		}
		out = append(out, ConstraintPoint{
			L:          l,
			DiamMine:   dmTime,
			NumPaths:   len(paths),
			LevelGrow:  res.Stats.LevelGrowTime,
			NumPattern: len(res.Patterns),
		})
		if len(paths) == 0 {
			break // longer frequent paths cannot exist
		}
	}
	return out, nil
}

// DeltaPoint is one Figure 18/19 measurement.
type DeltaPoint struct {
	Delta      int
	LevelGrow  time.Duration
	NumPattern int
	MaxEdges   int // largest pattern size |E| (Figure 19)
}

// RunSkinninessConstraint reproduces Figures 18 and 19: a 200k-vertex
// graph (deg=3, f=100) with 250 injected patterns (l=20, δ=6, |V|=50,
// 5 embeddings each); LevelGrow runtime and the largest pattern size as
// δ grows from 0 to 6. DiamMine work is shared across all δ.
func RunSkinninessConstraint(cfg Config, maxDelta int) ([]DeltaPoint, error) {
	n := cfg.scaled(200000, 400)
	f := 100
	l := cfg.scaled(20, 6)
	nPat := cfg.scaled(250, 4)
	rng := cfg.rng()
	g := synth.ER(rng, n, 3, f)
	for i := 0; i < nPat; i++ {
		p := synth.RandomSkinnyPattern(rng, synth.SkinnySpec{
			V: cfg.scaled(50, l+8), Diam: l, Delta: 6,
			LabelBase: f * 3 / 4, LabelRange: f / 4,
		})
		synth.Inject(rng, g, p, 5, 0)
	}
	ix, err := core.BuildIndex([]*graph.Graph{g}, 2)
	if err != nil {
		return nil, err
	}
	var out []DeltaPoint
	for d := 0; d <= maxDelta; d++ {
		opt := core.DefaultOptions(2, l, d)
		opt.Concurrency = cfg.workers()
		opt.GreedyGrow = true
		res, err := ix.Mine(opt)
		if err != nil {
			return nil, err
		}
		pt := DeltaPoint{Delta: d, LevelGrow: res.Stats.LevelGrowTime, NumPattern: len(res.Patterns)}
		for _, p := range res.Patterns {
			if p.G.M() > pt.MaxEdges {
				pt.MaxEdges = p.G.M()
			}
		}
		out = append(out, pt)
	}
	return out, nil
}
