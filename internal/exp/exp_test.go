package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func tinyConfig() Config { return Config{Seed: 3, Scale: 0.05} }

// skipIfShort guards the experiment-harness tests, which regenerate
// paper figures and dominate the suite's runtime (tens of seconds);
// `go test -short ./...` runs only the fast shape/render tests.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("slow experiment reproduction; run without -short")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "333") {
		t.Errorf("render output:\n%s", out)
	}
}

func TestHistTableAndSeriesTable(t *testing.T) {
	ht := HistTable("h", []Hist{
		{Algo: "A", Sizes: map[int]int{3: 2, 5: 1}},
		{Algo: "B", Sizes: map[int]int{3: 4}},
	})
	if len(ht.Rows) != 2 || ht.Rows[0][0] != "3" {
		t.Errorf("hist table rows: %v", ht.Rows)
	}
	st := SeriesTable("s", "x", []Series{
		{Name: "A", X: []float64{1, 2}, Y: []float64{0.5, 1}},
		{Name: "B", X: []float64{1, 2}, Y: []float64{2, 3}},
	})
	if len(st.Rows) != 2 || st.Header[1] != "A" {
		t.Errorf("series table: %+v", st)
	}
	if SeriesTable("e", "x", nil).Rows != nil {
		t.Error("empty series table should have no rows")
	}
}

// TestFig4Distribution checks the Figure 4-8 shape at tiny scale:
// SkinnyMine recovers the injected long patterns (largest sizes), while
// SUBDUE and SEuS stay at small sizes.
func TestFig4Distribution(t *testing.T) {
	skipIfShort(t)
	res, err := RunPatternDistribution(tinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hists) != 4 {
		t.Fatalf("want 4 histograms, got %d", len(res.Hists))
	}
	maxOf := func(name string) int {
		for _, h := range res.Hists {
			if h.Algo == name {
				max := 0
				for s := range h.Sizes {
					if s > max {
						max = s
					}
				}
				return max
			}
		}
		t.Fatalf("histogram %s missing", name)
		return 0
	}
	skinnyMax := maxOf("SkinnyMine")
	if skinnyMax < 12 {
		t.Errorf("SkinnyMine largest pattern |V|=%d; should recover injected long patterns", skinnyMax)
	}
	if subdueMax := maxOf("SUBDUE"); subdueMax > skinnyMax {
		t.Errorf("SUBDUE largest %d should not exceed SkinnyMine's %d", subdueMax, skinnyMax)
	}
	if seusMax := maxOf("SEuS"); seusMax > 6 {
		t.Errorf("SEuS largest %d; node collapsing should keep it small", seusMax)
	}
	for _, a := range []string{"SkinnyMine", "SpiderMine", "SUBDUE", "SEuS", "MoSS"} {
		if _, ok := res.Runtimes[a]; !ok {
			t.Errorf("runtime missing for %s", a)
		}
	}
}

func TestFig4BadGID(t *testing.T) {
	if _, err := RunPatternDistribution(tinyConfig(), 0); err == nil {
		t.Error("GID 0 should error")
	}
}

func TestRuntimeTableShape(t *testing.T) {
	skipIfShort(t)
	tb, err := RunRuntimeTable(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 || len(tb.Header) != 6 {
		t.Errorf("runtime table %dx%d, want 5x6", len(tb.Rows), len(tb.Header))
	}
}

// TestSkinninessLadder checks the Table-3 contrast: SkinnyMine recovers
// the skinny patterns (PID 1-5); SpiderMine's best coverage on the
// fattest patterns exceeds its coverage on the skinniest.
func TestSkinninessLadder(t *testing.T) {
	skipIfShort(t)
	rows, err := RunSkinninessLadder(Config{Seed: 5, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("want 10 rows, got %d", len(rows))
	}
	skinnyHits := 0
	for _, r := range rows[:5] {
		if r.SkinnyHit {
			skinnyHits++
		}
	}
	if skinnyHits < 4 {
		t.Errorf("SkinnyMine recovered %d of the 5 skinny patterns; want >= 4", skinnyHits)
	}
	avg := func(rs []LadderRow) float64 {
		var s float64
		for _, r := range rs {
			s += r.SpiderBest
		}
		return s / float64(len(rs))
	}
	if avg(rows[5:]) <= avg(rows[:5]) {
		t.Errorf("SpiderMine coverage on fat patterns (%.2f) should exceed skinny (%.2f)",
			avg(rows[5:]), avg(rows[:5]))
	}
}

// TestTransactionShape checks Figures 9/10: SkinnyMine returns the
// largest patterns; ORIGAMI returns a scattered, smaller sample.
func TestTransactionShape(t *testing.T) {
	skipIfShort(t)
	hists, err := RunTransaction(tinyConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	var sk, or int
	for _, h := range hists {
		max := 0
		for s := range h.Sizes {
			if s > max {
				max = s
			}
		}
		switch h.Algo {
		case "SkinnyMine":
			sk = max
		case "ORIGAMI":
			or = max
		}
	}
	if sk < 8 {
		t.Errorf("SkinnyMine largest transaction pattern |V|=%d; should recover injections", sk)
	}
	// At paper scale ORIGAMI's scattered sample misses the large skinny
	// patterns; at test scale its walks can stumble onto one, so assert
	// only that it never exceeds SkinnyMine's recovery.
	if or > sk {
		t.Errorf("ORIGAMI largest %d should not exceed SkinnyMine's %d", or, sk)
	}
	// Figure 10 variant with extra small patterns.
	hists10, err := RunTransaction(tinyConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(hists10) != 3 {
		t.Errorf("want 3 histograms, got %d", len(hists10))
	}
}

func TestVsMoSSShape(t *testing.T) {
	skipIfShort(t)
	series, err := RunVsMoSS(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || len(series[0].X) != 5 {
		t.Fatalf("series shape wrong: %+v", series)
	}
}

func TestVsSUBDUEAndSpiderMineShapes(t *testing.T) {
	skipIfShort(t)
	s1, err := RunVsSUBDUE(Config{Seed: 2, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != 2 || len(s1[0].X) != 8 {
		t.Fatalf("SUBDUE series shape: %+v", s1)
	}
	s2, err := RunVsSpiderMine(Config{Seed: 2, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(s2) != 2 || len(s2[0].X) != 7 {
		t.Fatalf("SpiderMine series shape: %+v", s2)
	}
}

func TestScalabilityPoints(t *testing.T) {
	skipIfShort(t)
	pts, err := RunScalability(Config{Seed: 2, Scale: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("want 6 points, got %d", len(pts))
	}
	for _, p := range pts {
		if p.DiamMine < 0 || p.LevelGrow < 0 {
			t.Error("stage timings missing")
		}
	}
}

// TestDiameterConstraintShape checks the scale-robust Figure 16/17
// signals: the index serves every l, DiamMine cost tracks the path
// counts, and LevelGrow output covers its seeds (up to the harness
// cap). The paper's decreasing-path-count regime needs the full
// |V|/f ratio and is only visible near paper scale — see
// EXPERIMENTS.md.
func TestDiameterConstraintShape(t *testing.T) {
	skipIfShort(t)
	pts, err := RunDiameterConstraint(Config{Seed: 7, Scale: 0.05}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 {
		t.Fatalf("too few points: %d", len(pts))
	}
	if pts[0].NumPaths == 0 {
		t.Error("length-2 frequent paths should exist")
	}
	for _, p := range pts {
		// Every seed is itself a result pattern, so output >= #paths —
		// unless the harness output cap bound first.
		if p.NumPattern < p.NumPaths && p.NumPattern < 5000 {
			t.Errorf("l=%d: LevelGrow output %d below its seed count %d", p.L, p.NumPattern, p.NumPaths)
		}
		if p.DiamMine < 0 || p.LevelGrow < 0 {
			t.Error("stage timings missing")
		}
	}
}

// TestSkinninessConstraintShape checks Figures 18/19: the largest
// pattern size is non-decreasing in δ.
func TestSkinninessConstraintShape(t *testing.T) {
	skipIfShort(t)
	pts, err := RunSkinninessConstraint(Config{Seed: 9, Scale: 0.02}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("want 5 points, got %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].MaxEdges < pts[i-1].MaxEdges {
			t.Errorf("max pattern size dropped from δ=%d to δ=%d (%d -> %d)",
				pts[i-1].Delta, pts[i].Delta, pts[i-1].MaxEdges, pts[i].MaxEdges)
		}
	}
	if pts[len(pts)-1].MaxEdges <= pts[0].MaxEdges {
		t.Error("relaxing δ should let patterns grow")
	}
}

func TestDBLPExperiment(t *testing.T) {
	skipIfShort(t)
	res, err := RunDBLP(Config{Seed: 11, Scale: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if res.Patterns == 0 {
		t.Fatal("no DBLP patterns found")
	}
	if res.LongestDiam < 8 {
		t.Errorf("longest diameter %d; want the full timeline span", res.LongestDiam)
	}
	if len(res.Examples) == 0 {
		t.Fatal("no examples rendered")
	}
	for _, ex := range res.Examples {
		if !strings.Contains(ex, "support=") {
			t.Errorf("example missing support: %s", ex)
		}
	}
	if res.Runtime <= 0 || res.Runtime > time.Minute {
		t.Errorf("suspicious runtime %v", res.Runtime)
	}
}

func TestWeiboExperiment(t *testing.T) {
	skipIfShort(t)
	res, err := RunWeibo(Config{Seed: 13, Scale: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if res.Patterns == 0 {
		t.Fatal("no Weibo patterns found")
	}
	if res.LongestDiam < 10 {
		t.Errorf("longest diffusion chain %d; want >= 10", res.LongestDiam)
	}
	found := false
	for _, ex := range res.Examples {
		if strings.Contains(ex, "Root") && strings.Contains(ex, "Follower") {
			found = true
		}
	}
	if !found {
		t.Error("expected a diffusion chain mentioning Root and Follower")
	}
}
