package exp

import (
	"fmt"
	"time"

	"skinnymine/internal/core"
	"skinnymine/internal/graph"
	"skinnymine/internal/miners/moss"
	"skinnymine/internal/miners/origami"
	"skinnymine/internal/miners/seus"
	"skinnymine/internal/miners/spidermine"
	"skinnymine/internal/miners/subdue"
	"skinnymine/internal/support"
	"skinnymine/internal/synth"
)

// This file reproduces the effectiveness experiments: Figures 4-8
// (pattern-size distributions per algorithm on GID 1-5), Figure 20 (the
// runtime table on the same data sets), Table 3 (the skinniness ladder)
// and Figures 9-10 (the graph-transaction comparison).

// DistributionResult is one algorithm's histogram plus its runtime.
type DistributionResult struct {
	Hists    []Hist
	Runtimes map[string]time.Duration
}

// RunPatternDistribution reproduces Figure 4+gid-1 (and one row of
// Figure 20): mine GID <gid> with SkinnyMine, SpiderMine, SUBDUE and
// SEuS and report the pattern-size distribution of each.
func RunPatternDistribution(cfg Config, gid int) (*DistributionResult, error) {
	if gid < 1 || gid > 5 {
		return nil, fmt.Errorf("exp: GID must be 1..5, got %d", gid)
	}
	s := synth.GIDSettings[gid-1]
	scaleGID(&s, cfg)
	rng := cfg.rng()
	g, _ := synth.BuildGID(rng, s)

	res := &DistributionResult{Runtimes: make(map[string]time.Duration)}

	// SkinnyMine: the paper's request is "skinny patterns with diameter
	// l = Ld" — direct access to the long injected patterns without
	// visiting shorter diameters.
	t0 := time.Now()
	opt := core.DefaultOptions(2, s.Ld, 2)
	opt.Concurrency = cfg.workers()
	opt.GreedyGrow = true
	opt.MaxEmbeddings = 1000
	opt.MaxPatterns = 20000
	skres, err := core.Mine(g, opt)
	if err != nil {
		return nil, err
	}
	res.Runtimes["SkinnyMine"] = time.Since(t0)
	sk := Hist{Algo: "SkinnyMine", Sizes: map[int]int{}}
	for _, p := range skres.Patterns {
		sk.Sizes[p.G.N()]++
	}

	// SpiderMine: K=5, Dmax=4, up to 200 seeds (paper's setting).
	t0 = time.Now()
	spres, err := spidermine.Mine(g, spidermine.Options{
		K: 5, R: 1, Dmax: 4, Seeds: cfg.scaled(200, 30), Support: 2, Rng: rng,
	})
	if err != nil {
		return nil, err
	}
	res.Runtimes["SpiderMine"] = time.Since(t0)
	sp := Hist{Algo: "SpiderMine", Sizes: map[int]int{}}
	for _, p := range spres.Patterns {
		sp.Sizes[p.G.N()]++
	}

	// SUBDUE: beam search, best 10.
	t0 = time.Now()
	sbres, err := subdue.Mine(g, subdue.Options{Beam: 4, Limit: cfg.scaled(200, 40), MaxSize: 45, Best: 10})
	if err != nil {
		return nil, err
	}
	res.Runtimes["SUBDUE"] = time.Since(t0)
	sb := Hist{Algo: "SUBDUE", Sizes: map[int]int{}}
	for _, p := range sbres.Patterns {
		sb.Sizes[p.G.N()]++
	}

	// SEuS: summary-based, small structures.
	t0 = time.Now()
	seres, err := seus.Mine(g, seus.Options{Support: 2, MaxSize: 4, MaxCandidates: cfg.scaled(2000, 200)})
	if err != nil {
		return nil, err
	}
	res.Runtimes["SEuS"] = time.Since(t0)
	se := Hist{Algo: "SEuS", Sizes: map[int]int{}}
	for i, p := range seres.Patterns {
		if i >= 14 {
			break // the paper plots SEuS's handful of small patterns
		}
		se.Sizes[p.G.N()]++
	}

	// MoSS runtime only (Figure 20): complete mining, bounded so dense
	// settings terminate (the paper reports >5h there).
	t0 = time.Now()
	_, err = moss.Mine(g, moss.Options{Support: 2, MaxEdges: 6, MaxPatterns: cfg.scaled(30000, 2000)})
	if err != nil {
		return nil, err
	}
	res.Runtimes["MoSS"] = time.Since(t0)

	res.Hists = []Hist{sb, se, sp, sk}
	return res, nil
}

func scaleGID(s *synth.GIDSetting, cfg Config) {
	if cfg.Scale >= 1 {
		return
	}
	s.V = cfg.scaled(s.V, 120)
	s.VL = cfg.scaled(s.VL, 12)
	s.Ld = cfg.scaled(s.Ld, 6)
	s.VS = 4
	s.Sd = 2
}

// RunRuntimeTable reproduces Figure 20: runtimes of the five algorithms
// on GID 1-5.
func RunRuntimeTable(cfg Config) (*Table, error) {
	t := &Table{
		Title:  "Figure 20: runtime comparison (seconds)",
		Header: []string{"GID", "SkinnyMine", "SpiderMine", "SUBDUE", "SEuS", "MoSS"},
	}
	for gid := 1; gid <= 5; gid++ {
		r, err := RunPatternDistribution(cfg, gid)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprint(gid)}
		for _, a := range []string{"SkinnyMine", "SpiderMine", "SUBDUE", "SEuS", "MoSS"} {
			row = append(row, fmt.Sprintf("%.3f", seconds(r.Runtimes[a])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// LadderRow is one Table-3 pattern with per-algorithm recovery.
type LadderRow struct {
	PID        int
	V, Diam    int
	SkinnyHit  bool    // SkinnyMine recovered the pattern
	SpiderBest float64 // best vertex coverage by any SpiderMine pattern
}

// RunSkinninessLadder reproduces the Table-3 experiment: ten injected
// patterns of decreasing skinniness; SkinnyMine captures the skinny
// ones, SpiderMine's coverage rises with fatness.
func RunSkinninessLadder(cfg Config) ([]LadderRow, error) {
	rng := cfg.rng()
	g, inj := synth.BuildTable3(rng, cfg.Scale)
	rows := make([]LadderRow, 0, len(inj))

	spres, err := spidermine.Mine(g, spidermine.Options{
		K: 10, R: 1, Dmax: 8, Seeds: cfg.scaled(400, 60), Support: 2, Rng: rng,
	})
	if err != nil {
		return nil, err
	}

	for i, in := range inj {
		tp := synth.Table3Patterns[i]
		row := LadderRow{PID: tp.PID, V: in.Pattern.N(), Diam: int(in.Pattern.Diameter())}

		// SkinnyMine: mine at the pattern's exact diameter, greedy.
		delta := 3
		if tp.Diam >= 30 {
			delta = 1
		}
		opt := core.DefaultOptions(2, row.Diam, delta)
		opt.Concurrency = cfg.workers()
		opt.GreedyGrow = true
		opt.MaxEmbeddings = 1000
		opt.MaxPatterns = 20000
		skres, err := core.Mine(g, opt)
		if err != nil {
			return nil, err
		}
		for _, p := range skres.Patterns {
			if p.G.N() >= in.Pattern.N()*4/5 {
				row.SkinnyHit = true
				break
			}
		}

		// SpiderMine coverage: fraction of one injected copy's vertices
		// contained in the best-matching returned pattern.
		copySize := in.Pattern.N()
		base := in.Bases[0]
		inCopy := func(v graph.V) bool {
			return v >= base && v < base+graph.V(copySize)
		}
		for _, p := range spres.Patterns {
			hit := 0
			for _, v := range p.Vertices {
				if inCopy(v) {
					hit++
				}
			}
			if cov := float64(hit) / float64(copySize); cov > row.SpiderBest {
				row.SpiderBest = cov
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunTransaction reproduces Figures 9 (extraSmall=false) and 10
// (extraSmall=true): the graph-transaction comparison of SkinnyMine,
// SpiderMine and ORIGAMI with and without 120 extra small injections.
func RunTransaction(cfg Config, extraSmall bool) ([]Hist, error) {
	rng := cfg.rng()
	nGraphs := 10
	v := cfg.scaled(800, 100)
	f := 80 // label count stays at paper scale (see scalability.go)
	diam := cfg.scaled(20, 8)
	vl := cfg.scaled(40, diam+4)
	skinny := make([]synth.SkinnySpec, 5)
	for i := range skinny {
		skinny[i] = synth.SkinnySpec{
			V: vl, Diam: diam, Delta: 2,
			LabelBase: f * 3 / 4, LabelRange: f / 4,
		}
	}
	var small []synth.SkinnySpec
	smallSup := 0
	if extraSmall {
		for i := 0; i < cfg.scaled(120, 20); i++ {
			small = append(small, synth.SkinnySpec{
				V: 5, Diam: 2, Delta: 1, LabelBase: f / 2, LabelRange: f / 4,
			})
		}
		smallSup = 5
	}
	db, _ := synth.BuildTransactionDB(rng, nGraphs, v, 5, f, skinny, 5, small, smallSup)

	var hists []Hist

	// ORIGAMI.
	ores, err := origami.Mine(db, origami.Options{
		Support: 5, Walks: cfg.scaled(100, 25), Alpha: 0.6,
		MaxEdges: vl + 10, Rng: rng,
	})
	if err != nil {
		return nil, err
	}
	oh := Hist{Algo: "ORIGAMI", Sizes: map[int]int{}}
	for _, p := range ores.Patterns {
		oh.Sizes[p.G.N()]++
	}
	hists = append(hists, oh)

	// SpiderMine on the union graph (its published form is single-graph;
	// the SIGMOD'13 comparison does the same adaptation).
	union := unionGraph(db)
	spres, err := spidermine.Mine(union, spidermine.Options{
		K: 5, R: 1, Dmax: 4, Seeds: cfg.scaled(200, 30), Support: 5, Rng: rng,
	})
	if err != nil {
		return nil, err
	}
	sph := Hist{Algo: "SpiderMine", Sizes: map[int]int{}}
	for _, p := range spres.Patterns {
		sph.Sizes[p.G.N()]++
	}
	hists = append(hists, sph)

	// SkinnyMine in the transaction setting: graph-count support, the
	// injected diameter as the length constraint (the paper's request),
	// storage capped so dense backgrounds stay bounded.
	opt := core.DefaultOptions(5, diam, 2)
	opt.Concurrency = cfg.workers()
	opt.Measure = support.GraphCount
	opt.GreedyGrow = true
	opt.MaxEmbeddings = 500
	opt.MaxPatterns = 5000
	skres, err := core.MineDB(db, opt)
	if err != nil {
		return nil, err
	}
	skh := Hist{Algo: "SkinnyMine", Sizes: map[int]int{}}
	for _, p := range skres.Patterns {
		if p.G.N() >= 4 {
			skh.Sizes[p.G.N()]++
		}
	}
	hists = append(hists, skh)
	return hists, nil
}

func unionGraph(db []*graph.Graph) *graph.Graph {
	u := graph.New(0)
	for _, g := range db {
		base := u.N()
		for v := 0; v < g.N(); v++ {
			u.AddVertex(g.Label(graph.V(v)))
		}
		for _, e := range g.Edges() {
			u.MustAddEdge(graph.V(base)+e.U, graph.V(base)+e.W)
		}
	}
	return u
}
