package support

import "bytes"

// keyArena is an exact, string-free key set: keys are appended to one
// flat byte buffer and indexed by a 64-bit FNV-1a hash with intrusive
// collision chains. A hash hit always verifies the full key bytes, so
// membership semantics are exactly those of a map[string]struct{} while
// insertion allocates only amortized buffer growth — no per-key string.
// The zero value is ready to use.
type keyArena struct {
	buf   []byte
	ends  []uint64         // key i occupies buf[ends[i-1]:ends[i]]
	heads map[uint64]int32 // hash -> newest key index
	next  []int32          // per key: previous index with same hash
}

// Len returns the number of distinct keys inserted.
func (a *keyArena) Len() int { return len(a.ends) }

// keyAt returns key i's bytes. Offsets are uint64: counting is
// deliberately uncapped past MaxEmbeddings, so the arena must stay
// correct (not silently wrap) even past 4 GiB of accumulated keys.
func (a *keyArena) keyAt(i int32) []byte {
	lo := uint64(0)
	if i > 0 {
		lo = a.ends[i-1]
	}
	return a.buf[lo:a.ends[i]]
}

// insert records key if it is new, copying its bytes into the arena,
// and reports whether it was new. The caller may reuse key's backing
// array immediately.
func (a *keyArena) insert(key []byte) bool {
	h := hashBytes(key)
	if a.heads == nil {
		a.heads = make(map[uint64]int32, 8)
	}
	head, collide := a.heads[h]
	if collide {
		for i := head; i >= 0; i = a.next[i] {
			if bytes.Equal(a.keyAt(i), key) {
				return false
			}
		}
	}
	idx := int32(len(a.ends))
	a.buf = append(a.buf, key...)
	a.ends = append(a.ends, uint64(len(a.buf)))
	if collide {
		a.next = append(a.next, head)
	} else {
		a.next = append(a.next, -1)
	}
	a.heads[h] = idx
	return true
}

// hashBytes is 64-bit FNV-1a.
func hashBytes(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}
