// Package support provides embeddings and support counting for pattern
// mining. The paper defines an embedding of a pattern P in a graph G as a
// subgraph of G isomorphic to P, and the support of P in the single-graph
// setting as |E[P]|, the number of such subgraphs. Distinct isomorphism
// maps onto the same subgraph (pattern automorphisms) therefore count
// once; embeddings are deduplicated by their edge-set key.
package support

import (
	"sort"

	"skinnymine/internal/graph"
)

// Embedding maps pattern vertices (by index) to data-graph vertices. GID
// identifies the transaction graph for transaction databases and is 0 in
// the single-graph setting.
type Embedding struct {
	GID int32
	Map []graph.V
}

// Clone returns a deep copy of e.
func (e Embedding) Clone() Embedding {
	return Embedding{GID: e.GID, Map: append([]graph.V(nil), e.Map...)}
}

// SubgraphKey returns a canonical key identifying the subgraph an
// embedding occupies: the sorted list of mapped data edges (prefixed by
// the graph ID). Two embeddings with equal keys are the same subgraph.
// Patterns with no edges key on the mapped vertex set instead.
func SubgraphKey(patternEdges []graph.Edge, e Embedding) string {
	if len(patternEdges) == 0 {
		vs := append([]graph.V(nil), e.Map...)
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		b := make([]byte, 0, 4+len(vs)*4)
		b = appendInt32(b, e.GID)
		for _, v := range vs {
			b = appendInt32(b, v)
		}
		return string(b)
	}
	es := make([]graph.Edge, len(patternEdges))
	for i, pe := range patternEdges {
		es[i] = graph.Edge{U: e.Map[pe.U], W: e.Map[pe.W]}.Norm()
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].W < es[j].W
	})
	b := make([]byte, 0, 4+len(es)*8)
	b = appendInt32(b, e.GID)
	for _, e := range es {
		b = appendInt32(b, e.U)
		b = appendInt32(b, e.W)
	}
	return string(b)
}

func appendInt32(b []byte, v int32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// Set accumulates embeddings of one pattern. Support counts distinct
// subgraphs, but storage keeps every distinct isomorphism *map*: pattern
// automorphisms (e.g. a palindromic diameter) make several maps occupy
// one subgraph, and extension must proceed from all of them or patterns
// grown on the "other side" of a symmetry lose embeddings. The zero
// value is not ready; use NewSet.
type Set struct {
	patternEdges []graph.Edge
	embs         []Embedding
	keys         map[string]struct{} // subgraph keys (support)
	mapKeys      map[string]struct{} // exact map keys (storage dedup)
	limit        int                 // 0 = unlimited
	truncated    bool
}

// NewSet returns an embedding set for a pattern with the given edges.
// limit caps the number of *stored* embeddings (0 = unlimited); the
// support count keeps increasing past the cap, but extension then works
// from a sample, which mirrors practical miners under blow-up.
func NewSet(patternEdges []graph.Edge, limit int) *Set {
	return &Set{
		patternEdges: patternEdges,
		keys:         make(map[string]struct{}),
		mapKeys:      make(map[string]struct{}),
		limit:        limit,
	}
}

// Add records an embedding map if it is new, copying it. It reports
// whether the map was new. The subgraph it occupies is counted toward
// Support whether or not the map itself was stored.
func (s *Set) Add(e Embedding) bool {
	mk := mapKey(e)
	if _, dup := s.mapKeys[mk]; dup {
		return false
	}
	s.mapKeys[mk] = struct{}{}
	s.keys[SubgraphKey(s.patternEdges, e)] = struct{}{}
	if s.limit > 0 && len(s.embs) >= s.limit {
		s.truncated = true
		return true
	}
	s.embs = append(s.embs, e.Clone())
	return true
}

func mapKey(e Embedding) string {
	b := make([]byte, 0, 4+len(e.Map)*4)
	b = appendInt32(b, e.GID)
	for _, v := range e.Map {
		b = appendInt32(b, v)
	}
	return string(b)
}

// Support returns the number of distinct subgraphs recorded (the paper's
// |E[P]| in the single-graph setting).
func (s *Set) Support() int { return len(s.keys) }

// GraphSupport returns the number of distinct transaction graphs with at
// least one embedding.
func (s *Set) GraphSupport() int {
	gids := make(map[int32]struct{})
	for _, e := range s.embs {
		gids[e.GID] = struct{}{}
	}
	return len(gids)
}

// MNI returns the minimum-image-based support (Bringmann & Nijssen): the
// minimum over pattern vertices of the number of distinct data vertices
// it maps to. It is anti-monotone in the single-graph setting and
// provided as an alternative support measure.
func (s *Set) MNI() int {
	if len(s.embs) == 0 {
		return 0
	}
	k := len(s.embs[0].Map)
	minImg := -1
	seen := make(map[graph.V]struct{})
	for i := 0; i < k; i++ {
		clear(seen)
		for _, e := range s.embs {
			seen[e.Map[i]] = struct{}{}
		}
		if minImg < 0 || len(seen) < minImg {
			minImg = len(seen)
		}
	}
	return minImg
}

// Embeddings returns the stored embeddings. Callers must not modify.
func (s *Set) Embeddings() []Embedding { return s.embs }

// Truncated reports whether the storage cap dropped embeddings.
func (s *Set) Truncated() bool { return s.truncated }

// Measure selects how support is counted.
type Measure int

const (
	// EmbeddingCount counts distinct subgraphs (the paper's |E[P]|).
	EmbeddingCount Measure = iota
	// GraphCount counts transaction graphs containing the pattern.
	GraphCount
	// MNICount uses minimum-image-based support.
	MNICount
)

// Count returns the set's support under the given measure.
func (s *Set) Count(m Measure) int {
	switch m {
	case GraphCount:
		return s.GraphSupport()
	case MNICount:
		return s.MNI()
	default:
		return s.Support()
	}
}

// CountEmbeddings enumerates all embeddings of pattern p in each target
// graph and returns the filled Set. For transaction databases pass all
// graphs; for the single-graph setting pass one.
func CountEmbeddings(p *graph.Graph, targets []*graph.Graph, limit int) *Set {
	set := NewSet(p.Edges(), limit)
	for gi, t := range targets {
		gid := int32(gi)
		graph.EnumerateEmbeddings(p, t, func(mapped []graph.V) bool {
			set.Add(Embedding{GID: gid, Map: mapped})
			return true
		})
	}
	return set
}
