package support

import (
	"slices"

	"skinnymine/internal/graph"
)

// Embedding maps pattern vertices (by index) to data-graph vertices. GID
// identifies the transaction graph for transaction databases and is 0 in
// the single-graph setting.
type Embedding struct {
	GID int32
	Map []graph.V
}

// Clone returns a deep copy of e.
func (e Embedding) Clone() Embedding {
	return Embedding{GID: e.GID, Map: append([]graph.V(nil), e.Map...)}
}

// SubgraphKey returns a canonical key identifying the subgraph an
// embedding occupies: the sorted list of mapped data edges (prefixed by
// the graph ID). Two embeddings with equal keys are the same subgraph.
// Patterns with no edges key on the mapped vertex set instead. The Set
// hot path builds the same bytes into a reused scratch buffer and never
// materializes the string; this form exists for tests and external
// callers.
func SubgraphKey(patternEdges []graph.Edge, e Embedding) string {
	b, _, _ := appendSubgraphKey(nil, nil, nil, patternEdges, e)
	return string(b)
}

// appendSubgraphKey appends the canonical subgraph key bytes of e to
// dst, using (and returning) the caller's edge/vertex scratch slices so
// repeated calls allocate nothing once the buffers have grown.
func appendSubgraphKey(dst []byte, es []graph.Edge, vs []graph.V,
	patternEdges []graph.Edge, e Embedding) ([]byte, []graph.Edge, []graph.V) {
	if len(patternEdges) == 0 {
		vs = append(vs[:0], e.Map...)
		sortVertices(vs)
		dst = appendInt32(dst, e.GID)
		for _, v := range vs {
			dst = appendInt32(dst, v)
		}
		return dst, es, vs
	}
	es = es[:0]
	for _, pe := range patternEdges {
		es = append(es, graph.Edge{U: e.Map[pe.U], W: e.Map[pe.W]}.Norm())
	}
	sortEdges(es)
	dst = appendInt32(dst, e.GID)
	for _, de := range es {
		dst = appendInt32(dst, de.U)
		dst = appendInt32(dst, de.W)
	}
	return dst, es, vs
}

func sortVertices(vs []graph.V) { slices.Sort(vs) }

// sortEdges orders normalized edges by (U, W); slices.SortFunc is
// allocation-free, keeping the key scratch path alloc-free too.
func sortEdges(es []graph.Edge) {
	slices.SortFunc(es, func(a, b graph.Edge) int {
		if a.U != b.U {
			return int(a.U) - int(b.U)
		}
		return int(a.W) - int(b.W)
	})
}

func appendInt32(b []byte, v int32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// appendMapKey appends the exact isomorphism-map key bytes of e to dst.
func appendMapKey(dst []byte, e Embedding) []byte {
	dst = appendInt32(dst, e.GID)
	for _, v := range e.Map {
		dst = appendInt32(dst, v)
	}
	return dst
}

// Set accumulates embeddings of one pattern. Support counts distinct
// subgraphs, but storage keeps every distinct isomorphism *map*: pattern
// automorphisms (e.g. a palindromic diameter) make several maps occupy
// one subgraph, and extension must proceed from all of them or patterns
// grown on the "other side" of a symmetry lose embeddings.
//
// Storage is columnar: one flat []graph.V holding all stored maps back
// to back with a fixed stride (the pattern's vertex count) plus a
// parallel GID column, so a Set costs two slices rather than one heap
// slice per embedding. Dedup keys (exact map keys and canonical
// subgraph keys) live in hash-indexed byte arenas and are never
// materialized as strings.
//
// The zero value is not ready; use NewSet.
type Set struct {
	patternEdges []graph.Edge
	stride       int       // vertices per stored map (fixed per pattern)
	n            int       // stored embedding count
	gids         []int32   // per stored embedding
	vals         []graph.V // flat columnar storage, n*stride values
	keys         keyArena  // subgraph keys; Len() is the support
	mapKeys      keyArena  // exact map keys (storage dedup)
	gidSet       map[int32]struct{}
	limit        int // 0 = unlimited
	truncated    bool

	scratchKey   []byte
	scratchEdges []graph.Edge
	scratchVs    []graph.V
}

// NewSet returns an embedding set for a pattern with the given edges.
// limit caps the number of *stored* embeddings (0 = unlimited). The
// Support and GraphSupport counts stay exact past the cap — their key
// and GID sets are maintained on every Add — but extension and MNI then
// work from the stored sample, which mirrors practical miners under
// blow-up.
func NewSet(patternEdges []graph.Edge, limit int) *Set {
	return &Set{patternEdges: patternEdges, limit: limit}
}

// Add records an embedding map if it is new, copying it into the
// columnar store, and reports whether the map was new. The subgraph it
// occupies and the graph it lives in are counted toward Support and
// GraphSupport whether or not the map itself was stored (storage may be
// capped; counting never is). e.Map may alias a caller scratch buffer.
func (s *Set) Add(e Embedding) bool {
	s.scratchKey = appendMapKey(s.scratchKey[:0], e)
	if !s.mapKeys.insert(s.scratchKey) {
		return false
	}
	s.scratchKey, s.scratchEdges, s.scratchVs = appendSubgraphKey(
		s.scratchKey[:0], s.scratchEdges, s.scratchVs, s.patternEdges, e)
	s.keys.insert(s.scratchKey)
	if s.gidSet == nil {
		s.gidSet = make(map[int32]struct{}, 4)
	}
	s.gidSet[e.GID] = struct{}{}
	if s.limit > 0 && s.n >= s.limit {
		s.truncated = true
		return true
	}
	if s.n == 0 {
		s.stride = len(e.Map)
	} else if len(e.Map) != s.stride {
		panic("support: embedding map length differs within one Set")
	}
	s.gids = append(s.gids, e.GID)
	s.vals = append(s.vals, e.Map...)
	s.n++
	return true
}

// Support returns the number of distinct subgraphs recorded (the paper's
// |E[P]| in the single-graph setting). Exact even past the storage cap.
func (s *Set) Support() int { return s.keys.Len() }

// GraphSupport returns the number of distinct transaction graphs with at
// least one embedding. Exact even past the storage cap: the GID set is
// maintained at Add time regardless of whether the map was stored.
func (s *Set) GraphSupport() int { return len(s.gidSet) }

// MNI returns the minimum-image-based support (Bringmann & Nijssen): the
// minimum over pattern vertices of the number of distinct data vertices
// it maps to. It is anti-monotone in the single-graph setting and
// provided as an alternative support measure. When the storage cap
// truncated the set, MNI is computed over the stored sample and is
// therefore a lower bound on the exact value.
func (s *Set) MNI() int {
	if s.n == 0 {
		return 0
	}
	minImg := -1
	seen := make(map[graph.V]struct{}, s.n)
	for i := 0; i < s.stride; i++ {
		clear(seen)
		for j := 0; j < s.n; j++ {
			seen[s.vals[j*s.stride+i]] = struct{}{}
		}
		if minImg < 0 || len(seen) < minImg {
			minImg = len(seen)
		}
	}
	return minImg
}

// Len returns the number of stored embeddings.
func (s *Set) Len() int { return s.n }

// At returns the i-th stored embedding as a view into the columnar
// store: the Map aliases the Set's backing array and must not be
// modified or retained across Adds.
func (s *Set) At(i int) Embedding {
	lo, hi := i*s.stride, (i+1)*s.stride
	return Embedding{GID: s.gids[i], Map: s.vals[lo:hi:hi]}
}

// Embeddings returns the stored embeddings as views into the columnar
// store (see At). Callers must not modify the maps; hot paths should
// iterate with Len/At instead, which allocates nothing.
func (s *Set) Embeddings() []Embedding {
	out := make([]Embedding, s.n)
	for i := range out {
		out[i] = s.At(i)
	}
	return out
}

// Truncated reports whether the storage cap dropped embeddings.
func (s *Set) Truncated() bool { return s.truncated }

// Measure selects how support is counted.
type Measure int

const (
	// EmbeddingCount counts distinct subgraphs (the paper's |E[P]|).
	EmbeddingCount Measure = iota
	// GraphCount counts transaction graphs containing the pattern.
	GraphCount
	// MNICount uses minimum-image-based support.
	MNICount
)

// Count returns the set's support under the given measure.
func (s *Set) Count(m Measure) int {
	switch m {
	case GraphCount:
		return s.GraphSupport()
	case MNICount:
		return s.MNI()
	default:
		return s.Support()
	}
}

// CountEmbeddings enumerates all embeddings of pattern p in each target
// graph and returns the filled Set. For transaction databases pass all
// graphs; for the single-graph setting pass one.
func CountEmbeddings(p *graph.Graph, targets []*graph.Graph, limit int) *Set {
	set := NewSet(p.Edges(), limit)
	for gi, t := range targets {
		gid := int32(gi)
		graph.EnumerateEmbeddings(p, t, func(mapped []graph.V) bool {
			set.Add(Embedding{GID: gid, Map: mapped})
			return true
		})
	}
	return set
}
