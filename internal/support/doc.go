// Package support provides embeddings and support counting for pattern
// mining — the frequency side of every stage of SkinnyMine.
//
// # Paper correspondence
//
// The paper defines an embedding of a pattern P in a graph G as a
// subgraph of G isomorphic to P, and the support of P in the
// single-graph setting as |E[P]|, the number of such subgraphs
// (Section 2). Distinct isomorphism maps onto the same subgraph
// (pattern automorphisms) therefore count once; embeddings are
// deduplicated by their edge-set key. Measure selects between that
// subgraph count (EmbeddingCount), the graph-transaction count the
// evaluation's database experiments use (GraphCount), and the
// minimum-image-based support of Bringmann & Nijssen (MNICount).
//
// # Representation
//
// A Set stores a pattern's embeddings columnarly — one flat vertex
// slice with a fixed stride plus a graph-ID column — and dedups through
// hash-indexed byte arenas, so the Stage II hot paths iterate and
// insert without per-embedding allocations. MaxEmbeddings caps stored
// maps; Support() and GraphSupport() stay exact past the cap because
// their key/GID sets are maintained on every Add, while MNI and further
// growth work from the stored sample.
//
// # Concurrency and ownership
//
// A Set belongs to exactly one pattern and is written by exactly one
// goroutine (the worker growing that pattern's cluster); the mining
// engine never shares a Set across workers. Reads through Len/At/
// Embeddings return views into the columnar storage — valid until the
// next Add, never to be mutated. CountEmbeddings helpers construct
// private Sets and are safe to call concurrently.
package support
